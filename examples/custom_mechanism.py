#!/usr/bin/env python
"""Reconfiguring the platform: adding reflective memory at runtime.

§5 of the paper: "StarT-Voyager could emulate Shrimp's and Memory
Channel's reflective memory communication support.  The default
StarT-Voyager hardware is sufficient for the sP to implement this
functionality."

This example installs a *new* communication mechanism on a built
machine — a reflective window whose stores propagate to every
subscriber's memory — by (a) carving an uncached window out of DRAM,
(b) installing a custom aBIU handler (the model's "reprogram the FPGA"),
and (c) registering a firmware fan-out handler.  No core-NIU change is
needed, which is the paper's flexibility thesis in action.

Run:  python examples/custom_mechanism.py
"""

import repro
from repro.firmware.reflective import install_reflective  # repro: allow ARCH002 -- the example's whole point is custom firmware
from repro.lib.channels import TokenChannel

NODES = 3
WINDOW_BASE = 0x40000
WINDOW_BYTES = 4096


def main() -> None:
    machine = repro.StarTVoyager(repro.default_config(n_nodes=NODES))
    subscribers = list(range(NODES))
    handlers = [
        install_reflective(machine.node(n), WINDOW_BASE, WINDOW_BYTES,
                           subscribers)
        for n in range(NODES)
    ]
    channels = [TokenChannel(machine, n) for n in range(NODES)]

    def writer(api):
        # plain stores into the local window; the platform reflects them
        yield from api.store(WINDOW_BASE + 0x00, b"reflect0")
        yield from api.store(WINDOW_BASE + 0x40, b"reflect1")
        yield from api.store_u32(WINDOW_BASE + 0x80, 0xDEADBEEF)
        # tell the readers to look (Express token as the doorbell)
        for dst in range(1, NODES):
            yield from channels[0].send(api, dst, channel=1, value=3)

    def reader(api, rank: int):
        yield from channels[rank].recv(api, channel=1)
        # poll until the reflected stores have landed in local DRAM
        while True:
            word = yield from api.load_u32(WINDOW_BASE + 0x80)
            if word == 0xDEADBEEF:
                break
            yield from api.compute(50)
        a = yield from api.load(WINDOW_BASE + 0x00, 8)
        b = yield from api.load(WINDOW_BASE + 0x40, 8)
        return rank, a, b

    procs = [machine.spawn(0, writer)] + [
        machine.spawn(n, reader, n) for n in range(1, NODES)
    ]
    results = machine.run_all(procs)
    print(f"reflective window of {WINDOW_BYTES} B across {NODES} nodes:")
    for item in results[1:]:
        rank, a, b = item
        print(f"  node {rank} sees: {a.decode()} / {b.decode()}")
    for n, handler in enumerate(handlers):
        print(f"  node {n} aBIU handler captured {handler.captured} stores")
    print(f"  simulated time: {machine.now / 1000:.1f} us")


if __name__ == "__main__":
    main()
