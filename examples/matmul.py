#!/usr/bin/env python
"""Distributed matrix multiply: bulk DMA + mini-MPI coordination.

C = A x B over four nodes.  Node 0 owns A and B; it DMAs each worker its
row block of A and the whole of B (hardware block transfer — the bulk
path §6 motivates), workers compute their block of C on the aP (with
modeled FLOP time), and mini-MPI gathers the result.  The example shows
the message-passing and DMA mechanisms composing into a real kernel: a
control plane of small messages over a data plane of block transfers.

Run:  python examples/matmul.py
"""

import repro
from repro.lib.mpi import MiniMPI
from repro.mp.basic import BasicPort
from repro.mp.dma import DmaNotifier, dma_write

NODES = 4
N = 16  # NxN matrices of one-byte values (mod-256 arithmetic)
ROWS_PER_NODE = N // NODES
A_ADDR = 0x18000
B_ADDR = 0x19000
BLOCK_ADDR = 0x30000  # worker-side landing area
FLOPS_PER_MAC = 3  # modeled multiply-accumulate cost in instructions


def matrix_bytes(values):
    return bytes(v & 0xFF for row in values for v in row)


def main() -> None:
    machine = repro.StarTVoyager(repro.default_config(n_nodes=NODES))
    mpi = MiniMPI(machine)
    dma_port = BasicPort(machine.node(0), 1, 1)
    notifiers = [DmaNotifier(machine.node(n)) for n in range(NODES)]

    a = [[(i * 3 + j) % 251 for j in range(N)] for i in range(N)]
    b = [[(i * 7 + 2 * j) % 251 for j in range(N)] for i in range(N)]
    machine.node(0).dram.poke(A_ADDR, matrix_bytes(a))
    machine.node(0).dram.poke(B_ADDR, matrix_bytes(b))
    expected = [
        [sum(a[i][k] * b[k][j] for k in range(N)) & 0xFF for j in range(N)]
        for i in range(N)
    ]

    def coordinator(api):
        comm = mpi.rank(0)
        block = ROWS_PER_NODE * N
        # ship each worker its A rows and all of B, by hardware DMA
        for worker in range(1, NODES):
            yield from dma_write(api, dma_port, worker,
                                 A_ADDR + worker * block, BLOCK_ADDR, block)
            yield from dma_write(api, dma_port, worker,
                                 B_ADDR, BLOCK_ADDR + block, N * N)
        # compute the local block while the transfers stream
        local = yield from compute_block(api, 0, A_ADDR, B_ADDR)
        # gather everyone's block
        blocks = [None] * NODES
        blocks[0] = local
        for _ in range(NODES - 1):
            src, _tag, data = yield from comm.recv(api, tag=1)
            blocks[src] = data
        return b"".join(blocks)  # type: ignore[arg-type]

    def worker(api, rank):
        comm = mpi.rank(rank)
        # two DMA completions: the A block, then B
        yield from notifiers[rank].wait(api)
        yield from notifiers[rank].wait(api)
        block = ROWS_PER_NODE * N
        out = yield from compute_block(api, rank, BLOCK_ADDR,
                                       BLOCK_ADDR + block)
        yield from comm.send(api, 0, out, tag=1)

    def compute_block(api, rank, a_addr, b_addr):
        """Multiply this node's A rows against B (timed loads + FLOPs)."""
        a_rows = []
        for i in range(ROWS_PER_NODE):
            row = yield from api.load(a_addr + i * N, N)
            a_rows.append(row)
        b_cols = []
        b_flat = yield from api.load(b_addr, N * N)
        for j in range(N):
            b_cols.append(bytes(b_flat[k * N + j] for k in range(N)))
        out = bytearray()
        for row in a_rows:
            for col in b_cols:
                yield from api.compute(N * FLOPS_PER_MAC)
                out.append(sum(x * y for x, y in zip(row, col)) & 0xFF)
        return bytes(out)

    procs = [machine.spawn(0, coordinator)] + [
        machine.spawn(n, worker, n) for n in range(1, NODES)
    ]
    results = machine.run_all(procs)
    got = results[0]
    want = matrix_bytes(expected)
    print(f"{N}x{N} matmul over {NODES} nodes: "
          f"{'CORRECT' if got == want else 'WRONG'}")
    print(f"  simulated time: {machine.now / 1000:.1f} us")
    metrics = machine.metrics()
    occ = metrics["occupancy"]["1"]
    print(f"  worker 1 occupancy: aP {occ['ap']:.2f}, sP {occ['sp']:.3f}")
    blocks = sum(int(v) for k, v in metrics["counters"].items()
                 if "block_txs" in k)
    print(f"  hardware block transfers used: {blocks}")


if __name__ == "__main__":
    main()
