#!/usr/bin/env python
"""Shared-memory programming over S-COMA: a 1-D stencil relaxation.

Four nodes share one S-COMA region holding a vector of 64-bit values.
Each node owns a contiguous slice (its lines are homed there) and
repeatedly averages each element with its neighbours — reading across
the slice boundary pulls the neighbour's line through the coherence
protocol; writing back invalidates remote copies.  A mini-MPI barrier
separates iterations.

The example exercises exactly what §5 promises from S-COMA: an
application written with plain loads and stores, no message-passing code
in the compute loop, automatic replication of read-shared lines in local
DRAM, and ownership migration on writes.

Run:  python examples/scoma_stencil.py
"""

import repro
from repro.lib.mpi import MiniMPI
from repro.shm import ScomaRegion

NODES = 4
#: one 64-bit value per cache line keeps ownership conflicts visible.
VALUES_PER_NODE = 8
ITERATIONS = 3
LINE = 32


def main() -> None:
    machine = repro.StarTVoyager(repro.default_config(n_nodes=NODES))
    region = ScomaRegion(machine, n_lines=NODES * VALUES_PER_NODE * 4)
    mpi = MiniMPI(machine)
    total = NODES * VALUES_PER_NODE

    # initial condition: value i = 1000 * i, written at each line's home
    init = b"".join(
        (1000 * i).to_bytes(8, "big").ljust(LINE, b"\x00") for i in range(total)
    )
    region.init_data(0, init)

    def addr(i: int) -> int:
        return region.addr(i * LINE)

    def worker(api, rank: int):
        comm = mpi.rank(rank)
        lo, hi = rank * VALUES_PER_NODE, (rank + 1) * VALUES_PER_NODE
        for _ in range(ITERATIONS):
            updates = []
            for i in range(lo, hi):
                left = i - 1 if i > 0 else i
                right = i + 1 if i < total - 1 else i
                a = int.from_bytes((yield from api.load(addr(left), 8)), "big")
                b = int.from_bytes((yield from api.load(addr(i), 8)), "big")
                c = int.from_bytes((yield from api.load(addr(right), 8)), "big")
                updates.append((i, (a + b + c) // 3))
                yield from api.compute(12)
            yield from comm.barrier(api)  # read phase done everywhere
            for i, v in updates:
                yield from api.store(addr(i), v.to_bytes(8, "big"))
            yield from comm.barrier(api)  # write phase done everywhere
        if rank == 0:
            out = []
            for i in range(total):
                v = int.from_bytes((yield from api.load(addr(i), 8)), "big")
                out.append(v)
            return out

    procs = [machine.spawn(n, worker, n) for n in range(NODES)]
    results = machine.run_all(procs)
    final = results[0]
    print(f"after {ITERATIONS} relaxation steps over {NODES} nodes:")
    print("  " + " ".join(str(v) for v in final))
    smoothed = all(final[i] <= final[i + 1] for i in range(total - 1))
    print(f"  monotone (smoothing preserved order): {smoothed}")
    print(f"  simulated time: {machine.now / 1000:.1f} us")
    counters = machine.metrics()["counters"]
    checks = sum(v for k, v in counters.items() if k.startswith("ctrl")
                 and "msgs_sent" in k)
    print(f"  protocol messages exchanged: {int(checks)}")


if __name__ == "__main__":
    main()
