#!/usr/bin/env python
"""The paper's §6 experiment, end to end: five block-transfer approaches.

Copies 16 KB between two nodes five different ways — aP-managed Basic
messages, sP-managed TagOn packetization, hardware block operations, and
the two optimistic S-COMA-notification variants — and prints the
latency/bandwidth/occupancy comparison the paper's Figures 3/4 draw.

Run:  python examples/block_transfer.py
"""

import repro
from repro.core.blocktransfer import BlockTransferExperiment

SIZE = 16384


def main() -> None:
    print(f"block transfer of {SIZE} bytes, node 0 -> node 1\n")
    header = (f"{'approach':9} {'notify(us)':>11} {'ready(us)':>10} "
              f"{'bw(MB/s)':>9} {'sender aP':>10} {'sender sP':>10} "
              f"{'recv sP':>8} {'ok':>3}")
    print(header)
    print("-" * len(header))
    for approach in (1, 2, 3, 4, 5):
        machine = repro.StarTVoyager(repro.default_config(n_nodes=2))
        result = BlockTransferExperiment(machine).run(approach, SIZE)
        occ = result.occupancy_row()
        print(f"{approach:9} {result.notify_latency_ns / 1000:11.1f} "
              f"{result.data_ready_latency_ns / 1000:10.1f} "
              f"{result.bandwidth_mb_s:9.1f} {occ['sender_ap']:10.2f} "
              f"{occ['sender_sp']:10.2f} {occ['receiver_sp']:8.2f} "
              f"{'y' if result.verified else 'N':>3}")
    print(
        "\nExpected shape (paper §6): approach 1 is aP-bound and slowest;\n"
        "approach 2 shifts the load to the sPs; approach 3 approaches the\n"
        "hardware limit with near-zero occupancy; approaches 4/5 notify\n"
        "optimistically ~4x earlier, with 4 paying receiver-sP time that\n"
        "5's reconfigured aBIU hardware absorbs."
    )


if __name__ == "__main__":
    main()
