#!/usr/bin/env python
"""Mini-MPI on StarT-Voyager: ping-pong, broadcast, and allreduce.

The paper's layer-0 story: "we will provide an MPI library that presents
the usual MPI interface to the user code but uses the underlying NIU
support for the actual communication."  This example measures the
library's ping-pong latency across payload sizes (fragmentation above
78 bytes) and demonstrates the collectives on four nodes.

Run:  python examples/mpi_pingpong.py
"""

import repro
from repro.lib.mpi import MiniMPI

REPEATS = 10


def pingpong(payload_bytes: int) -> float:
    machine = repro.StarTVoyager(repro.default_config(n_nodes=2))
    mpi = MiniMPI(machine)
    payload = bytes(payload_bytes)

    def ping(api):
        comm = mpi.rank(0)
        for _ in range(REPEATS):
            yield from comm.send(api, 1, payload)
            yield from comm.recv(api, src=1)

    def pong(api):
        comm = mpi.rank(1)
        for _ in range(REPEATS):
            _src, _tag, data = yield from comm.recv(api, src=0)
            yield from comm.send(api, 0, data)

    t0 = machine.now
    machine.run_all([machine.spawn(0, ping), machine.spawn(1, pong)])
    return (machine.now - t0) / (2 * REPEATS)


def collectives() -> None:
    machine = repro.StarTVoyager(repro.default_config(n_nodes=4))
    mpi = MiniMPI(machine)

    def worker(api, rank: int):
        comm = mpi.rank(rank)
        greeting = yield from comm.bcast(
            api, b"hello from root" if rank == 0 else None, root=0)
        total = yield from comm.allreduce(api, (rank + 1) ** 2)
        yield from comm.barrier(api)
        return greeting.decode(), total

    procs = [machine.spawn(n, worker, n) for n in range(4)]
    results = machine.run_all(procs)
    print("collectives on 4 nodes:")
    for rank, (greeting, total) in enumerate(results):
        print(f"  rank {rank}: bcast={greeting!r} allreduce(sum of squares)={total}")


def main() -> None:
    print("mini-MPI ping-pong one-way latency:")
    for size in (8, 64, 256, 1024):
        latency = pingpong(size)
        print(f"  {size:5d} B: {latency / 1000:6.2f} us")
    print()
    collectives()


if __name__ == "__main__":
    main()
