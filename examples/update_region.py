#!/usr/bin/env python
"""Multiple-writer shared memory with the diff-ing TxU extension (§5).

Three nodes share a release-consistent update region.  Each node fills
its own column of a small shared table at full cached-write speed, then
releases; the diff-ing hardware ships only the words each node changed,
so the columns *merge* — the softDSM multiple-writer property — instead
of ping-ponging line ownership.

Run:  python examples/update_region.py
"""

import repro
from repro.lib.mpi import MiniMPI
from repro.mp.basic import BasicPort
from repro.shm.update import UpdateRegion

NODES = 3
BASE = 0x50000
ROWS = 4
LINE = 32


def main() -> None:
    machine = repro.StarTVoyager(repro.default_config(n_nodes=NODES))
    region = UpdateRegion(machine, base=BASE, size=4096)
    ports = [BasicPort(machine.node(n), 0, 0) for n in range(NODES)]
    mpi = MiniMPI(machine)

    def worker(api, rank):
        comm = mpi.rank(rank)
        # each node writes its own 8-byte column of every row — three
        # writers touching every line, disjoint words
        for row in range(ROWS):
            cell = f"r{row}n{rank}".ljust(8).encode()
            yield from api.store(region.addr(row * LINE + rank * 8), cell)
        yield from region.release(api, ports[rank], notify_queue=0)
        yield from comm.barrier(api)  # all releases delivered
        if rank == 0:
            table = []
            for row in range(ROWS):
                line = yield from api.load(region.addr(row * LINE), LINE)
                table.append(line)
            return table

    procs = [machine.spawn(n, worker, n) for n in range(NODES)]
    results = machine.run_all(procs)
    print("merged table as node 0 sees it (one row per line):")
    for row, line in enumerate(results[0]):
        cells = [line[i * 8 : i * 8 + 8].decode().strip() for i in range(3)]
        print(f"  row {row}: {cells}")
    unit = region.units[0]
    print(f"\nnode 0 diffed {unit.diffs_produced} lines, "
          f"saved {unit.bytes_saved} wire bytes vs whole-line sends")
    print(f"simulated time: {machine.now / 1000:.1f} us")


if __name__ == "__main__":
    main()
