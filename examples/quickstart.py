#!/usr/bin/env python
"""Quickstart: build a two-node StarT-Voyager, exchange messages.

Demonstrates the three lightweight §5 message-passing mechanisms on one
machine: a Basic message, an Express message, and a Basic+TagOn message,
all between two programs running on the nodes' application processors.

Run:  python examples/quickstart.py
"""

import repro
from repro.mp import EXPRESS_RX_LOGICAL, BasicPort, ExpressPort, vdst_for


def main() -> None:
    machine = repro.StarTVoyager(repro.default_config(n_nodes=2))
    port0 = BasicPort(machine.node(0), tx_index=0, rx_logical=0)
    port1 = BasicPort(machine.node(1), tx_index=0, rx_logical=0)
    express0 = ExpressPort(machine.node(0))
    express1 = ExpressPort(machine.node(1))
    tagon_staging = machine.node(0).niu.alloc_asram(80, align=16)

    def node0(api):
        # 1. Basic message: compose in aSRAM, one pointer store launches it
        yield from port0.send(api, vdst_for(1, 0), b"basic: hello node 1")

        # 2. Express message: a single uncached store sends five bytes
        yield from express0.send(api, vdst_for(1, EXPRESS_RX_LOGICAL),
                                 b"PING!")

        # 3. TagOn: stage 48 bytes in SRAM once, attach them to a message
        tag = yield from port0.stage_tagon(
            api, tagon_staging, b"tagon-attachment-from-sram".ljust(48, b"."))
        yield from port0.send(api, vdst_for(1, 0), b"basic+tagon:",
                              tagon=tag)

        src, reply = yield from port0.recv(api)
        print(f"  node0 <- node{src}: {reply.decode()}")

    def node1(api):
        src, basic = yield from port1.recv(api)
        print(f"  node1 <- node{src} (basic):   {basic.decode()}")

        esrc, express = yield from express1.recv_blocking(api)
        print(f"  node1 <- node{esrc} (express): {express.decode()}")

        src, tagged = yield from port1.recv(api)
        head, attachment = tagged[:12], tagged[12:]
        print(f"  node1 <- node{src} (tagon):   {head.decode()} "
              f"+ {len(attachment)}B attachment")

        yield from port1.send(api, vdst_for(0, 0), b"all three received")

    procs = [machine.spawn(0, node0), machine.spawn(1, node1)]
    machine.run_all(procs)
    print(f"done at t={machine.now / 1000:.2f} us simulated")


if __name__ == "__main__":
    main()
