"""Setup shim: enables editable installs on environments without the
``wheel`` package (PEP 660 editable wheels need it; ``setup.py develop``
does not)."""
from setuptools import setup

setup()
