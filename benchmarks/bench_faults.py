"""Experiment X-faults — goodput and latency under injected loss.

Sweeps seeded link-fault plans (drop + corrupt probability) against two
workloads, with and without the go-back-N ack/retransmit firmware:

* ``stream`` — a one-way Basic-message flood, rank 0 -> rank 1.  The
  unreliable rows lose messages in proportion to the loss rate; the
  reliable rows deliver 100% at the cost of retransmissions and
  latency-tail growth.
* ``allreduce`` — reliable tree allreduce on four nodes, showing a
  collective built from point-to-point surviving a lossy fabric.

Per point: delivered/sent goodput, retransmit and timeout counts,
corrupt-drop counts, and delivered-message latency percentiles (each
payload carries its send timestamp).  Everything is seeded — the sweep
is byte-identical for any ``--jobs`` value.

Also runnable directly (no pytest) for machine-readable output::

    python benchmarks/bench_faults.py --emit-metrics
    python benchmarks/bench_faults.py --jobs 4 --emit-metrics

The CLI exits nonzero if any reliable point fails 100% delivery, which
is what the CI chaos-smoke job checks.
"""

import os
import sys

# script execution (`python benchmarks/bench_faults.py`) has only
# benchmarks/ on sys.path; make the repo root and src/ importable
_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _p in (_ROOT, os.path.join(_ROOT, "src")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

from repro.bench import emit_json, fresh_machine, print_table, run_sweep
from repro.bench.harness import strip_wall
from repro.faults import FaultPlan
from repro.lib.mpi import MiniMPI
from repro.mp.basic import BasicPort
from repro.obs.snapshot import metrics_snapshot

HEADER = ["workload", "loss", "reliable", "sent", "delivered", "goodput",
          "retx", "timeouts", "corrupt", "p50_us", "p99_us"]

#: where the CLI drops its artifacts.
RESULTS_DIR = os.path.join(_ROOT, "benchmarks", "results")

#: the loss axis: per-packet drop probability (corrupt runs at half it).
LOSS_RATES = (0.0, 0.01, 0.05)

STREAM_COUNT = 120
STREAM_PAYLOAD = 32  # fits both plain (88) and reliable (84) payload caps
ALLREDUCE_NODES = 4
ALLREDUCE_REPEATS = 6
SYNC_NODES = 8
SYNC_BARRIER_ROUNDS = 4


def _plan(loss, seed=1):
    """The sweep's fault plan: drop at ``loss``, corrupt at half of it."""
    if loss <= 0.0:
        return None
    return FaultPlan.uniform_loss(loss, corrupt_p=loss / 2.0, seed=seed)


def _pctl(xs, q):
    """Nearest-rank percentile of a list (None when empty)."""
    if not xs:
        return None
    xs = sorted(xs)
    idx = min(len(xs) - 1, max(0, int(round(q / 100.0 * len(xs) + 0.5)) - 1))
    return xs[idx]


def _rel_counters(machine):
    rep = machine.stats.report()
    return {
        "retransmits": int(sum(v for k, v in rep.items()
                               if k.endswith(".rel.retransmits"))),
        "timeouts": int(sum(v for k, v in rep.items()
                            if k.endswith(".rel.timeouts"))),
        "corrupt_drops": int(sum(v for k, v in rep.items()
                                 if ".rx_drops." in k
                                 and k.endswith(".corrupt"))),
    }


def stream_point(spec):
    """One flood point: ``(loss, reliable)`` -> result row.

    Rank 0 sends ``STREAM_COUNT`` stamped messages to rank 1; the
    receiver polls until the line goes quiet (long enough to cover the
    maximum retransmit backoff), counting arrivals and their latencies.
    """
    loss, reliable = spec
    machine = fresh_machine(2, faults=_plan(loss))
    p0 = BasicPort(machine.node(0), 0, 0)
    p1 = BasicPort(machine.node(1), 0, 0)
    # reliable retransmission needs the line quiet for > max RTO before
    # the receiver may conclude nothing more is coming
    idle_ns = (2.5e6 if reliable else 1e5)

    def sender(api):
        for i in range(STREAM_COUNT):
            stamp = int(api.now * 1000)  # ps, fits 8 bytes
            payload = (i.to_bytes(4, "big") + stamp.to_bytes(8, "big"))
            payload = payload.ljust(STREAM_PAYLOAD, b"\x00")
            if reliable:
                yield from p0.send_reliable(api, 1, payload)
            else:
                from repro.mp import vdst_for
                yield from p0.send(api, vdst_for(1, 0), payload)

    def receiver(api):
        latencies = []
        last_rx = api.now
        while len(latencies) < STREAM_COUNT and api.now - last_rx < idle_ns:
            msg = yield from p1.poll(api)
            if msg is None:
                yield from api.compute(500)
                continue
            _src, payload = msg
            stamp = int.from_bytes(payload[4:12], "big")
            latencies.append(api.now - stamp / 1000.0)
            last_rx = api.now
        return latencies

    s = machine.spawn(0, sender)
    r = machine.spawn(1, receiver)
    results = machine.run_all([s, r], limit=1e10)
    latencies = results[1]
    row = {
        "workload": "stream",
        "loss": loss,
        "reliable": reliable,
        "sent": STREAM_COUNT,
        "delivered": len(latencies),
        "goodput": len(latencies) / STREAM_COUNT,
        "p50_latency_ns": _pctl(latencies, 50),
        "p99_latency_ns": _pctl(latencies, 99),
    }
    row.update(_rel_counters(machine))
    row["metrics"] = strip_wall(metrics_snapshot(machine,
                                                 include_config=False))
    return row


def allreduce_point(spec):
    """One collective point: ``(loss,)`` -> reliable tree allreduce."""
    (loss,) = spec
    machine = fresh_machine(ALLREDUCE_NODES, faults=_plan(loss))
    mpi = MiniMPI(machine, algo="tree", reliable=True)
    expect = sum(range(1, ALLREDUCE_NODES + 1))

    def worker(api, rank):
        comm = mpi.rank(rank)
        oks = 0
        for _ in range(ALLREDUCE_REPEATS):
            got = yield from comm.allreduce(api, rank + 1, op="sum")
            oks += int(got == expect)
        return oks

    t0 = machine.now
    procs = [machine.spawn(n, worker, n) for n in range(ALLREDUCE_NODES)]
    results = machine.run_all(procs, limit=1e10)
    total = ALLREDUCE_NODES * ALLREDUCE_REPEATS
    correct = sum(results)
    per_op_ns = (machine.now - t0) / ALLREDUCE_REPEATS
    row = {
        "workload": "allreduce",
        "loss": loss,
        "reliable": True,
        "sent": total,
        "delivered": correct,
        "goodput": correct / total,
        "p50_latency_ns": per_op_ns,
        "p99_latency_ns": per_op_ns,
    }
    row.update(_rel_counters(machine))
    row["metrics"] = strip_wall(metrics_snapshot(machine,
                                                 include_config=False))
    return row


def sync_barrier_point(spec):
    """One in-switch barrier point under injected loss: ``(loss,)``.

    Sync-tagged packets ride the fault-exempt protected channel (a
    dropped combined request would wedge decombine state fabric-wide),
    so the ``algo="switch"`` barrier must complete every round at any
    tested loss rate — that completion is the goodput this row gates.
    """
    (loss,) = spec
    machine = fresh_machine(SYNC_NODES, faults=_plan(loss, seed=3))
    mpi = MiniMPI(machine, algo="switch", reliable=True)

    def worker(api, rank):
        comm = mpi.rank(rank)
        done = 0
        for _ in range(SYNC_BARRIER_ROUNDS):
            yield from comm.barrier(api)
            done += 1
        return done

    t0 = machine.now
    procs = [machine.spawn(n, worker, n) for n in range(SYNC_NODES)]
    results = machine.run_all(procs, limit=1e10)
    total = SYNC_NODES * SYNC_BARRIER_ROUNDS
    per_op_ns = (machine.now - t0) / SYNC_BARRIER_ROUNDS
    row = {
        "workload": "sync_barrier",
        "loss": loss,
        "reliable": True,
        "sent": total,
        "delivered": sum(results),
        "goodput": sum(results) / total,
        "p50_latency_ns": per_op_ns,
        "p99_latency_ns": per_op_ns,
    }
    row.update(_rel_counters(machine))
    row["metrics"] = strip_wall(metrics_snapshot(machine,
                                                 include_config=False))
    return row


def fault_sweep(jobs=1, loss_rates=LOSS_RATES):
    """The full grid, in point order (byte-identical for any ``jobs``)."""
    stream_specs = [(loss, reliable)
                    for loss in loss_rates for reliable in (False, True)]
    allreduce_specs = [(loss,) for loss in loss_rates]
    points = run_sweep(stream_point, stream_specs, jobs=jobs)
    points += run_sweep(allreduce_point, allreduce_specs, jobs=jobs)
    points += run_sweep(sync_barrier_point, allreduce_specs, jobs=jobs)
    return points


def _us(v):
    return "-" if v is None else v / 1000.0


def _flags(parser):
    parser.add_argument("--out-dir", default=RESULTS_DIR,
                        help="artifact directory (default benchmarks/results)")


def run(args):
    if args.sanitize:
        from repro.analysis.sanitize import resolve_sanitizers

        resolve_sanitizers(args.sanitize, env="")  # fail fast on typos
        # the environment propagates to sweep pool workers, so every
        # point's machine comes up with the checkers installed
        os.environ["REPRO_SANITIZE"] = args.sanitize

    points = fault_sweep(jobs=args.jobs)
    rows = [[p["workload"], p["loss"], p["reliable"], p["sent"],
             p["delivered"], f"{p['goodput']:.3f}", p["retransmits"],
             p["timeouts"], p["corrupt_drops"], _us(p["p50_latency_ns"]),
             _us(p["p99_latency_ns"])] for p in points]
    print_table("X-faults: goodput and latency under injected loss",
                HEADER, rows)

    if args.emit_metrics or args.json:
        document = {
            "benchmark": "faults",
            "schema": "startv.metrics",
            "schema_version": 1,
            "points": points,
        }
        path = emit_json(
            args.json or os.path.join(args.out_dir, "faults_metrics.json"),
            document)
        print(f"metrics: {path}")

    undelivered = [p for p in points
                   if p["reliable"] and p["goodput"] < 1.0]
    if undelivered:
        for p in undelivered:
            print(f"FAIL: reliable {p['workload']} at loss={p['loss']} "
                  f"delivered {p['delivered']}/{p['sent']}", file=sys.stderr)
        return 1
    lossy_unreliable = [p for p in points
                        if not p["reliable"] and p["loss"] > 0.0]
    if lossy_unreliable and all(p["goodput"] >= 1.0
                                for p in lossy_unreliable):
        print("note: unreliable rows lost nothing this seed", file=sys.stderr)
    return 0


BENCH = {
    "summary": "Goodput and latency under injected loss, plain vs reliable",
    "flags": _flags,
    "run": run,
}


def main(argv=None):
    from repro.bench.cli import main as bench_main

    return bench_main(
        ["faults", *(sys.argv[1:] if argv is None else list(argv))])


if __name__ == "__main__":
    sys.exit(main())
