"""Experiment X-work — system-workload studies.

"Because it will be an actual running system, the investigations will
not be confined to single program simulations, but system workload
level studies."  These benches run the synthetic workload generators —
uniform random messaging, hotspot congestion, ring pipelines, and a
mixed messaging+DMA+S-COMA load — verifying integrity and reporting
delivered throughput.
"""

import pytest

from benchmarks.conftest import record
from repro.bench import fresh_machine
from repro.bench.workloads import hotspot, mixed, pipeline, uniform_random

HEADER = ["workload", "nodes", "metric", "value"]


def _run(machine, procs, verify):
    machine.run_all(procs, limit=1e11)
    done = machine.now  # workload completion, before the drain window
    machine.run(until=machine.now + 500_000)
    assert verify()
    return done


@pytest.mark.parametrize("n_nodes", [2, 4, 8])
def test_uniform_random(benchmark, n_nodes):
    def run():
        machine = fresh_machine(n_nodes)
        procs, verify = uniform_random(machine)
        elapsed = _run(machine, procs, verify)
        total_msgs = n_nodes * 20
        return total_msgs / (elapsed / 1e9)

    rate = benchmark.pedantic(run, rounds=1, iterations=1)
    record("System workloads", HEADER,
           ["uniform random", n_nodes, "msg/s", rate])


@pytest.mark.parametrize("n_nodes", [4, 8])
def test_hotspot(benchmark, n_nodes):
    def run():
        machine = fresh_machine(n_nodes)
        procs, verify = hotspot(machine)
        elapsed = _run(machine, procs, verify)
        total = (n_nodes - 1) * 20
        return total / (elapsed / 1e9)

    rate = benchmark.pedantic(run, rounds=1, iterations=1)
    record("System workloads", HEADER,
           ["hotspot (all -> node 0)", n_nodes, "msg/s at sink", rate])


def test_hotspot_does_not_lose_messages(benchmark):
    """Congestion at the hot node backpressures; nothing is dropped."""

    def run():
        machine = fresh_machine(8)
        procs, verify = hotspot(machine, messages_per_node=30)
        _run(machine, procs, verify)
        drops = sum(v for k, v in machine.stats.report().items()
                    if ".rx_drops." in k)
        return drops

    assert benchmark.pedantic(run, rounds=1, iterations=1) == 0


@pytest.mark.parametrize("n_nodes", [2, 4])
def test_pipeline(benchmark, n_nodes):
    def run():
        machine = fresh_machine(n_nodes)
        procs, verify = pipeline(machine)
        elapsed = _run(machine, procs, verify)
        return elapsed / 10 / n_nodes  # ns per hop

    per_hop = benchmark.pedantic(run, rounds=1, iterations=1)
    record("System workloads", HEADER,
           ["ring pipeline", n_nodes, "ns/hop", per_hop])
    assert per_hop < 10_000


def test_mixed_workload(benchmark):
    def run():
        machine = fresh_machine(2)
        procs, verify = mixed(machine)
        return _run(machine, procs, verify)

    elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    record("System workloads", HEADER,
           ["mixed msg+DMA+S-COMA", 2, "completion us", elapsed / 1000])


from repro.bench.cli import pytest_bench

BENCH = pytest_bench("workloads", __doc__)
