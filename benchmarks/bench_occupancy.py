"""Experiment T-occ — the §6 occupancy claims as a table.

The paper discusses per-approach processor occupancy qualitatively:

* A1 — the sender aP carries everything ("the aP incurs overheads to
  copy the data"); the sPs are idle;
* A2 — "shifts the overhead of managing the transfer from the aPs to
  the sPs ... leading to lower sP occupancy than aP occupancy under the
  first approach", and "a significant impact on sP occupancy";
* A3 — "occupancy of both the aP and sP is minimal to nil".

This bench regenerates that table for an 8 KB transfer and asserts each
claim.
"""

import pytest

from benchmarks.conftest import record
from repro.bench import run_block_transfer

SIZE = 8192
HEADER = ["approach", "sender_aP", "sender_sP", "recv_aP", "recv_sP"]


@pytest.fixture(scope="module")
def results():
    return {a: run_block_transfer(a, SIZE) for a in (1, 2, 3)}


@pytest.mark.parametrize("approach", [1, 2, 3])
def test_occupancy_rows(benchmark, approach):
    result = benchmark.pedantic(run_block_transfer, args=(approach, SIZE),
                                rounds=1, iterations=1)
    occ = result.occupancy_row()
    record("Occupancy during an 8 KB transfer (busy fraction)", HEADER,
           [f"A{approach}", occ["sender_ap"], occ["sender_sp"],
            occ["receiver_ap"], occ["receiver_sp"]])


def test_occupancy_claims(benchmark):
    def run():
        return {a: run_block_transfer(a, SIZE) for a in (1, 2, 3)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    occ1 = results[1].occupancy_row()
    occ2 = results[2].occupancy_row()
    occ3 = results[3].occupancy_row()
    # A1: aP-bound
    assert occ1["sender_ap"] > 0.5 and occ1["sender_sp"] < 0.05
    # A2: load moved to the sPs, and below what A1's aP needed
    assert occ2["sender_ap"] < 0.05
    assert occ2["sender_sp"] > 0.2
    assert occ2["sender_sp"] < occ1["sender_ap"]
    # A3: minimal to nil
    assert occ3["sender_ap"] < 0.05 and occ3["sender_sp"] < 0.10
    assert occ3["receiver_sp"] < 0.05


from repro.bench.cli import pytest_bench

BENCH = pytest_bench("occupancy", __doc__)
