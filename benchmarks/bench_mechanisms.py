"""Experiment X-mp — §5 mechanism microbenchmarks.

One-way latency and streaming rate of the default message-passing
mechanisms: Express (one store / one load), Basic, TagOn-augmented
Basic, and the mini-MPI library on top.  The paper presents these
mechanisms qualitatively; the expected shape is Express < Basic < MPI
for latency, and TagOn raising Basic's per-message data capacity
at marginal cost.
"""

import pytest

from benchmarks.conftest import record
from repro.bench import (
    basic_oneway_latency,
    basic_stream_rate,
    express_oneway_latency,
    fresh_machine,
    mpi_pingpong_latency,
)
from repro.mp.basic import BasicPort
from repro.mp import vdst_for

HEADER = ["mechanism", "metric", "value"]


def test_express_latency(benchmark):
    latency = benchmark.pedantic(express_oneway_latency, rounds=1,
                                 iterations=1)
    record("Mechanism microbenchmarks", HEADER,
           ["express", "one-way ns (5 B)", latency])
    assert latency < 2_000


@pytest.mark.parametrize("payload", [8, 88])
def test_basic_latency(benchmark, payload):
    latency = benchmark.pedantic(basic_oneway_latency, args=(payload,),
                                 rounds=1, iterations=1)
    record("Mechanism microbenchmarks", HEADER,
           ["basic", f"one-way ns ({payload} B)", latency])
    assert latency < 10_000


def test_express_beats_basic(benchmark):
    def both():
        return express_oneway_latency(), basic_oneway_latency(8)

    express, basic = benchmark.pedantic(both, rounds=1, iterations=1)
    assert express < basic


def test_tagon_amortizes_data(benchmark):
    """Per-byte cost of an 80-byte TagOn send beats eleven 8-byte sends."""

    def run():
        machine = fresh_machine(2)
        p0 = BasicPort(machine.node(0), 0, 0)
        p1 = BasicPort(machine.node(1), 0, 0)
        staging = machine.node(0).niu.alloc_asram(80, align=16)

        def sender(api):
            tag = yield from p0.stage_tagon(api, staging, bytes(80))
            for _ in range(20):
                yield from p0.send(api, vdst_for(1, 0), b"hdr", tagon=tag)

        def receiver(api):
            for _ in range(20):
                yield from p1.recv(api)

        t0 = machine.now
        machine.run_all([machine.spawn(0, sender),
                         machine.spawn(1, receiver)])
        return (machine.now - t0) / 20

    per_msg = benchmark.pedantic(run, rounds=1, iterations=1)
    record("Mechanism microbenchmarks", HEADER,
           ["basic+tagon", "per-message ns (83 B)", per_msg])
    # 83 bytes per message must cost far less than 11 separate sends
    assert per_msg < 5 * basic_oneway_latency(8)


def test_basic_stream_rate(benchmark):
    stats = benchmark.pedantic(basic_stream_rate, rounds=1, iterations=1)
    record("Mechanism microbenchmarks", HEADER,
           ["basic", "stream MB/s (64 B msgs)", stats["mb_per_s"]])
    record("Mechanism microbenchmarks", HEADER,
           ["basic", "stream msgs/s", stats["msgs_per_s"]])
    assert stats["mb_per_s"] > 30


def test_mpi_latency(benchmark):
    latency = benchmark.pedantic(mpi_pingpong_latency, rounds=1, iterations=1)
    record("Mechanism microbenchmarks", HEADER,
           ["mini-MPI", "one-way ns (64 B)", latency])
    # library layering costs something, but not an order of magnitude
    assert latency < 10 * basic_oneway_latency(64)


from repro.bench.cli import pytest_bench

BENCH = pytest_bench("mechanisms", __doc__)
