"""Experiment X-diff — the §5 diff-ing hardware ablation.

"Diff-ing is common to software-based shared memory implementations
although it is expensive both because comparison is usually done for an
entire page, and because it is extra overhead.  StarT-Voyager's clsSRAM
can be used to track modifications at the cache-line granularity, thus
reducing the amount of diff-ing required."

The ablation compares three ways to propagate the same sparse write
pattern (8 dirty bytes in each of 8 lines spread over a 4 KB region):

* **update+diff** — line-granularity dirty tracking + hardware diff
  (only changed words travel, one release);
* **update, no diff** — same tracking, whole dirty lines travel (what a
  diff-less TxU would send);
* **reflective** — every store propagates eagerly (no batching at all);
* plus the software-DSM strawman the paper mentions: diffing the entire
  page regardless of what changed.
"""


from benchmarks.conftest import record
from repro.bench import fresh_machine
from repro.mp.basic import BasicPort
from repro.shm.update import UpdateRegion

HEADER = ["scheme", "metric", "value"]
BASE = 0x50000
REGION = 4096
N_LINES_TOUCHED = 8


def _sparse_writes(api, region_addr):
    """8 bytes written into each of 8 spread-out lines."""
    for i in range(N_LINES_TOUCHED):
        yield from api.store(region_addr(i * 512), bytes([i + 1] * 8))


def _update_release(diff: bool):
    machine = fresh_machine(3)
    region = UpdateRegion(machine, base=BASE, size=REGION)
    if not diff:
        # a diff-less TxU: pre-poison the twins so every word compares
        # unequal and whole lines travel
        for unit in region.units.values():
            for line in range(unit.n_lines):
                unit._twins[line] = b"\xff" * unit.line_bytes
    port = BasicPort(machine.node(0), 0, 0)
    out = {}

    def writer(api):
        yield from _sparse_writes(api, region.addr)
        t0 = api.now
        yield from region.release(api, port, notify_queue=0)
        out["release_ns"] = api.now - t0

    machine.run_until(machine.spawn(0, writer), limit=1e10)
    machine.run(until=machine.now + 500_000)
    wire = sum(l.bytes_sent for l in machine.network.links)
    for n in range(1, 3):
        for i in range(N_LINES_TOUCHED):
            assert region.peek(n, i * 512, 8) == bytes([i + 1] * 8)
    return out["release_ns"], wire


def _reflective():
    from repro.firmware.reflective import install_reflective  # repro: allow ARCH002 -- measures the reflective firmware layer itself

    machine = fresh_machine(3)
    for n in range(3):
        install_reflective(machine.node(n), BASE, REGION, [0, 1, 2])
    out = {}

    def writer(api):
        t0 = api.now
        yield from _sparse_writes(api, lambda off: BASE + off)
        out["ns"] = api.now - t0

    machine.run_until(machine.spawn(0, writer), limit=1e10)
    machine.run(until=machine.now + 500_000)
    wire = sum(l.bytes_sent for l in machine.network.links)
    for n in range(1, 3):
        for i in range(N_LINES_TOUCHED):
            assert machine.node(n).dram.peek(BASE + i * 512, 8) == \
                bytes([i + 1] * 8)
    return out["ns"], wire


def test_update_with_diff(benchmark):
    ns, wire = benchmark.pedantic(_update_release, args=(True,), rounds=1,
                                  iterations=1)
    record("Diff-ing ablation (8 sparse 8-byte writes)", HEADER,
           ["update + hw diff", "release ns / wire bytes", f"{ns:.0f} / {wire}"])


def test_update_without_diff(benchmark):
    ns, wire = benchmark.pedantic(_update_release, args=(False,), rounds=1,
                                  iterations=1)
    record("Diff-ing ablation (8 sparse 8-byte writes)", HEADER,
           ["update, whole lines", "release ns / wire bytes", f"{ns:.0f} / {wire}"])


def test_reflective_eager(benchmark):
    ns, wire = benchmark.pedantic(_reflective, rounds=1, iterations=1)
    record("Diff-ing ablation (8 sparse 8-byte writes)", HEADER,
           ["reflective (eager)", "writer-visible ns / wire bytes",
            f"{ns:.0f} / {wire}"])


def test_diff_reduces_wire_traffic(benchmark):
    def run():
        _ns_d, wire_diff = _update_release(True)
        _ns_n, wire_nodiff = _update_release(False)
        return wire_diff, wire_nodiff

    wire_diff, wire_nodiff = benchmark.pedantic(run, rounds=1, iterations=1)
    record("Diff-ing ablation (8 sparse 8-byte writes)", HEADER,
           ["wire reduction", "nodiff/diff", wire_nodiff / wire_diff])
    # 8 dirty bytes per 32-byte line: diffing should cut traffic well
    # below the whole-line variant
    assert wire_diff < 0.7 * wire_nodiff


def test_line_tracking_beats_page_diffing(benchmark):
    """The paper's point about clsSRAM tracking: diff only the 8 touched
    lines, not the whole page (128 lines)."""

    def run():
        machine = fresh_machine(3)
        region = UpdateRegion(machine, base=BASE, size=REGION)
        port = BasicPort(machine.node(0), 0, 0)
        compared = {}

        def writer(api):
            yield from _sparse_writes(api, region.addr)
            yield from region.release(api, port, notify_queue=0)
            compared["lines"] = region.units[0].diffs_produced

        machine.run_until(machine.spawn(0, writer), limit=1e10)
        return compared["lines"]

    lines_diffed = benchmark.pedantic(run, rounds=1, iterations=1)
    page_lines = REGION // 32
    record("Diff-ing ablation (8 sparse 8-byte writes)", HEADER,
           ["lines diffed (tracked vs page)", f"of {page_lines}",
            lines_diffed])
    assert lines_diffed == N_LINES_TOUCHED  # not the whole page


from repro.bench.cli import pytest_bench

BENCH = pytest_bench("diffing", __doc__)
