"""Benchmark-suite plumbing.

Every benchmark both wall-clock-times the simulation (pytest-benchmark)
and prints the *simulated* metrics it regenerates — the rows/series of
the paper's tables and figures.  Run with ``-s`` to see the tables
inline; they are also summarized at session end.
"""

import pytest

_rows = {}


def record(table: str, header, row) -> None:
    """Collect one printed row for the end-of-session summary."""
    _rows.setdefault(table, (header, []))[1].append(row)


@pytest.fixture(scope="session", autouse=True)
def _summary():
    yield
    from repro.bench import print_table

    for title, (header, rows) in _rows.items():
        print_table(title, header, rows)
