"""Experiment X-A45 — approaches 4 and 5 (the paper's "under
investigation" variants, for which it had no numbers).

Optimistic early notification over S-COMA state: the receiver is told
"done" after ~25% of the data; touching unarrived lines stalls on
clsSRAM retries until the data lands.  Approach 4 flips line states in
receiver firmware (per-chunk sP wakeups); approach 5's reconfigured
aBIU does it in hardware.

Measured here: notification latency (should be ~4x earlier than A3),
consume-complete latency (no worse than A3), and the receiver-sP cost
that separates 4 from 5.
"""

import pytest

from benchmarks.conftest import record
from repro.bench import run_block_transfer

HEADER = ["approach", "size_B", "notify_us", "consume_us", "recv_sP"]
SIZES = [4096, 16384, 65536]


@pytest.mark.parametrize("approach", [3, 4, 5])
@pytest.mark.parametrize("size", SIZES)
def test_a45_rows(benchmark, approach, size):
    result = benchmark.pedantic(run_block_transfer, args=(approach, size),
                                rounds=1, iterations=1)
    assert result.verified
    occ = result.occupancy_row()
    record("Approaches 4/5: optimistic notification vs hardware DMA",
           HEADER,
           [f"A{approach}", size, result.notify_latency_ns / 1000.0,
            result.data_ready_latency_ns / 1000.0, occ["receiver_sp"]])


def test_a45_claims(benchmark):
    def run():
        return {a: run_block_transfer(a, 16384) for a in (3, 4, 5)}

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    # notification arrives far earlier than full completion
    assert r[4].notify_latency_ns < 0.55 * r[3].notify_latency_ns
    assert r[5].notify_latency_ns < 0.55 * r[3].notify_latency_ns
    # consuming through retries costs at most ~10% over waiting it out
    assert r[4].data_ready_latency_ns <= 1.10 * r[3].data_ready_latency_ns
    assert r[5].data_ready_latency_ns <= 1.10 * r[3].data_ready_latency_ns
    # approach 4 pays receiver-sP time; approach 5's hardware absorbs it
    assert r[4].occupancy_row()["receiver_sp"] > \
        5 * r[5].occupancy_row()["receiver_sp"]


from repro.bench.cli import pytest_bench

BENCH = pytest_bench("approach45", __doc__)
