"""Experiment X-coll — NIC-offloaded collectives vs host algorithms.

The ``repro.collectives`` subsystem claims that moving collective
combining into the sP firmware turns the O(N) flat algorithms into
O(log N) tree sweeps with a single aP enqueue + dequeue per call.  This
bench regenerates that scaling story: barrier / bcast / allreduce
completion time versus node count (2-32 nodes, crossing the 16-node
byte-vdst boundary into RAW addressing) for all three ``algo`` families.

The telltale is the *per-doubling increment*: doubling the node count
adds a roughly constant amount for a logarithmic algorithm but a
doubling amount for a linear one.  The NIC path carries a higher
constant (every hop pays sP dispatch + combining occupancy), so the
curves are about growth rates, not absolute crossover at these sizes.

Results also land in ``benchmarks/results/collectives.json`` via
:func:`repro.bench.emit_json` for plotting.

Also runnable directly, fanning the grid out over processes with
byte-identical output (every point is an independent seeded machine)::

    python benchmarks/bench_collectives.py --jobs 4
"""

import os
import sys

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _p in (_ROOT, os.path.join(_ROOT, "src")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

import pytest

from benchmarks.conftest import record
from repro.bench import (
    collective_latency,
    collective_metrics_sweep,
    emit_json,
    print_table,
)

HEADER = ["collective", "algo"] + [f"{n} nodes (us)" for n in (2, 4, 8, 16, 32)]
NODES = [2, 4, 8, 16, 32]
ALGOS = ["flat", "tree", "nic"]

_results = {}


def _sweep(name, algo):
    xs = [collective_latency(name, n, algo, repeats=2) for n in NODES]
    _results.setdefault(name, {})[algo] = dict(zip(NODES, xs))
    record("collective scaling", HEADER,
           [name, algo] + [x / 1000.0 for x in xs])
    return xs


@pytest.mark.parametrize("algo", ALGOS)
@pytest.mark.parametrize("name", ["barrier", "bcast", "allreduce"])
def test_collective_sweep(benchmark, name, algo):
    xs = benchmark.pedantic(_sweep, args=(name, algo), rounds=1,
                            iterations=1)
    assert all(x > 0 for x in xs)


def _increments(xs):
    return [b - a for a, b in zip(xs, xs[1:])]


@pytest.mark.parametrize("name", ["barrier", "allreduce"])
def test_nic_sublinear_flat_linear(benchmark, name):
    """The acceptance criterion: NIC grows sub-linearly, flat linearly.

    A linear algorithm's per-doubling increment doubles with N; a
    logarithmic one's stays roughly constant.  Measured flat ratios are
    ~6-7x, NIC ~1.5-1.7x; the thresholds leave generous margin.
    """

    def run():
        return (_sweep(name, "flat"), _sweep(name, "nic"))

    flat, nic = benchmark.pedantic(run, rounds=1, iterations=1)
    flat_inc, nic_inc = _increments(flat), _increments(nic)
    assert flat_inc[-1] > 3.0 * flat_inc[0], (
        f"flat {name} no longer grows linearly: increments {flat_inc}")
    assert nic_inc[-1] < 3.0 * nic_inc[0], (
        f"nic {name} no longer grows logarithmically: increments {nic_inc}")
    # and the NIC increment at the largest doubling is well below flat's
    assert nic_inc[-1] < flat_inc[-1]


def test_tree_allreduce_beats_flat(benchmark):
    """Recursive doubling beats the flat reduce+bcast well before 32
    nodes (every rank stays busy; log rounds)."""

    def run():
        return (_sweep("allreduce", "flat")[-1],
                _sweep("allreduce", "tree")[-1])

    flat32, tree32 = benchmark.pedantic(run, rounds=1, iterations=1)
    assert tree32 < flat32


@pytest.fixture(scope="module", autouse=True)
def _emit():
    yield
    if _results:
        emit_json(os.path.join(os.path.dirname(__file__), "results",
                               "collectives.json"),
                  {"unit": "ns", "nodes": NODES, "series": _results})


# ----------------------------------------------------------------------
# direct CLI (parallel sweep)
# ----------------------------------------------------------------------

def _flags(parser):
    parser.add_argument("--repeats", type=int, default=2,
                        help="back-to-back calls per point (default 2)")
    parser.add_argument("--out", default=os.path.join(
                            os.path.dirname(os.path.abspath(__file__)),
                            "results", "collectives.json"),
                        help="output JSON path")


def run(args):
    points = collective_metrics_sweep(
        ["barrier", "bcast", "allreduce"], NODES, ALGOS,
        repeats=args.repeats, jobs=args.jobs)

    series = {}
    for p in points:
        series.setdefault(p["collective"], {}).setdefault(
            p["algo"], {})[p["n_nodes"]] = p["latency_ns"]
    rows = [[name, algo] + [series[name][algo][n] / 1000.0 for n in NODES]
            for name in series for algo in series[name]]
    print_table("collective scaling (us)", HEADER, rows)
    path = emit_json(args.json or args.out,
                     {"unit": "ns", "nodes": NODES, "series": series})
    print(f"results: {path}")


BENCH = {
    "summary": "Collective latency scaling: flat vs tree vs NIC vs switch",
    "flags": _flags,
    "run": run,
}


def main(argv=None):
    from repro.bench.cli import main as bench_main

    return bench_main(
        ["collectives", *(sys.argv[1:] if argv is None else list(argv))])


if __name__ == "__main__":
    sys.exit(main())
