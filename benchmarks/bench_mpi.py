"""Experiment X-mpi — library-layer scaling: mini-MPI collectives.

Layer 0 exists so applications never touch the NIU directly; its cost
must stay proportional to the point-to-point messages it issues.  These
benches measure ping-pong vs payload (fragmentation) and collective
completion time vs node count on the linear-algorithm collectives.
"""

import pytest

from benchmarks.conftest import record
from repro.bench import fresh_machine
from repro.lib.mpi import MiniMPI

HEADER = ["operation", "scale", "us"]


def _pingpong(payload_bytes, repeats=10):
    machine = fresh_machine(2)
    mpi = MiniMPI(machine)
    payload = bytes(payload_bytes)

    def ping(api):
        comm = mpi.rank(0)
        for _ in range(repeats):
            yield from comm.send(api, 1, payload)
            yield from comm.recv(api, src=1)

    def pong(api):
        comm = mpi.rank(1)
        for _ in range(repeats):
            _s, _t, d = yield from comm.recv(api, src=0)
            yield from comm.send(api, 0, d)

    t0 = machine.now
    machine.run_all([machine.spawn(0, ping), machine.spawn(1, pong)],
                    limit=1e10)
    return (machine.now - t0) / (2 * repeats) / 1000.0


@pytest.mark.parametrize("payload", [8, 78, 256, 1024])
def test_pingpong_fragmentation(benchmark, payload):
    us = benchmark.pedantic(_pingpong, args=(payload,), rounds=1,
                            iterations=1)
    record("mini-MPI scaling", HEADER,
           ["ping-pong one-way", f"{payload} B", us])


def test_fragmentation_cost_linear(benchmark):
    """Above one fragment (78 B) latency grows roughly linearly with the
    fragment count, not worse."""

    def run():
        return _pingpong(78), _pingpong(4 * 78)

    one, four = benchmark.pedantic(run, rounds=1, iterations=1)
    assert four < 6 * one  # 4 fragments cost < 6x one fragment


def _collective(name, n_nodes):
    machine = fresh_machine(n_nodes)
    mpi = MiniMPI(machine)

    def worker(api, rank):
        comm = mpi.rank(rank)
        if name == "barrier":
            yield from comm.barrier(api)
        elif name == "bcast":
            yield from comm.bcast(
                api, b"x" * 64 if rank == 0 else None, root=0)
        elif name == "allreduce":
            yield from comm.allreduce(api, rank + 1)

    t0 = machine.now
    procs = [machine.spawn(n, worker, n) for n in range(n_nodes)]
    machine.run_all(procs, limit=1e10)
    return (machine.now - t0) / 1000.0


@pytest.mark.parametrize("name", ["barrier", "bcast", "allreduce"])
@pytest.mark.parametrize("n_nodes", [2, 4, 8])
def test_collectives(benchmark, name, n_nodes):
    us = benchmark.pedantic(_collective, args=(name, n_nodes), rounds=1,
                            iterations=1)
    record("mini-MPI scaling", HEADER, [name, f"{n_nodes} nodes", us])


def test_collective_scaling_linear(benchmark):
    """The linear-tree collectives scale ~linearly in node count (the
    expected cost of the simple algorithms, not a platform pathology)."""

    def run():
        return _collective("barrier", 2), _collective("barrier", 8)

    two, eight = benchmark.pedantic(run, rounds=1, iterations=1)
    assert eight < 8 * two


from repro.bench.cli import pytest_bench

BENCH = pytest_bench("mpi", __doc__)
