"""Experiment F3 — Figure 3: block-transfer **latency**, approaches 1-3.

Regenerates the latency-vs-size series of the paper's first §6 figure:
one block transfer per data point, latency measured from the sender
starting work to the receiver reading the completion message.

Expected shape (from the paper's text): approach 1's per-message aP
overhead makes it worst at scale but competitive for tiny transfers
(no firmware round-trip); approaches 2 and 3 amortize their setup and
win as size grows, with 3 ahead of 2.
"""

import pytest

from benchmarks.conftest import record
from repro.bench import FIG_SIZES, run_block_transfer

HEADER = ["approach", "size_B", "latency_us", "verified"]


@pytest.mark.parametrize("approach", [1, 2, 3])
@pytest.mark.parametrize("size", FIG_SIZES)
def test_fig3_latency(benchmark, approach, size):
    result = benchmark.pedantic(
        run_block_transfer, args=(approach, size), rounds=1, iterations=1
    )
    assert result.verified
    row = [f"A{approach}", size, result.notify_latency_ns / 1000.0,
           result.verified]
    record("Figure 3: block transfer latency (us)", HEADER, row)


def test_fig3_shape(benchmark):
    """The series' shape: A1 best at 256 B, worst at 64 KB."""

    def series():
        small = {a: run_block_transfer(a, 256) for a in (1, 2, 3)}
        large = {a: run_block_transfer(a, 65536) for a in (1, 2, 3)}
        return small, large

    small, large = benchmark.pedantic(series, rounds=1, iterations=1)
    assert small[1].notify_latency_ns < small[2].notify_latency_ns
    assert small[1].notify_latency_ns < small[3].notify_latency_ns
    assert large[3].notify_latency_ns < large[2].notify_latency_ns
    assert large[3].notify_latency_ns < large[1].notify_latency_ns
