"""Experiment F3 — Figure 3: block-transfer **latency**, approaches 1-3.

Regenerates the latency-vs-size series of the paper's first §6 figure:
one block transfer per data point, latency measured from the sender
starting work to the receiver reading the completion message.

Expected shape (from the paper's text): approach 1's per-message aP
overhead makes it worst at scale but competitive for tiny transfers
(no firmware round-trip); approaches 2 and 3 amortize their setup and
win as size grows, with 3 ahead of 2.

Also runnable directly (no pytest) for machine-readable output::

    python benchmarks/bench_fig3_latency.py --emit-metrics
    python benchmarks/bench_fig3_latency.py --jobs 4 --emit-metrics
    python benchmarks/bench_fig3_latency.py --trace --size 4096

``--emit-metrics`` writes the sweep with one schema-versioned
``machine.metrics()`` snapshot per data point (p50/p90/p99 included);
``--jobs N`` fans the grid out over N processes with byte-identical
output (each point is an independent seeded simulation — see
:func:`repro.bench.run_sweep`); ``--trace`` renders one transfer as a
Chrome/Perfetto trace_event file (open at ui.perfetto.dev).
"""

import os
import sys

# script execution (`python benchmarks/bench_fig3_latency.py`) has only
# benchmarks/ on sys.path; make the repo root and src/ importable
_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _p in (_ROOT, os.path.join(_ROOT, "src")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

import pytest

from benchmarks.conftest import record
from repro.bench import (
    FIG_SIZES,
    block_transfer_metrics_sweep,
    fresh_machine,
    print_table,
    run_block_transfer,
)
from repro.core.blocktransfer import BlockTransferExperiment
from repro.obs import write_metrics

HEADER = ["approach", "size_B", "latency_us", "verified"]

#: where the CLI drops its artifacts.
RESULTS_DIR = os.path.join(_ROOT, "benchmarks", "results")


@pytest.mark.parametrize("approach", [1, 2, 3])
@pytest.mark.parametrize("size", FIG_SIZES)
def test_fig3_latency(benchmark, approach, size):
    result = benchmark.pedantic(
        run_block_transfer, args=(approach, size), rounds=1, iterations=1
    )
    assert result.verified
    row = [f"A{approach}", size, result.notify_latency_ns / 1000.0,
           result.verified]
    record("Figure 3: block transfer latency (us)", HEADER, row)


def test_fig3_shape(benchmark):
    """The series' shape: A1 best at 256 B, worst at 64 KB."""

    def series():
        small = {a: run_block_transfer(a, 256) for a in (1, 2, 3)}
        large = {a: run_block_transfer(a, 65536) for a in (1, 2, 3)}
        return small, large

    small, large = benchmark.pedantic(series, rounds=1, iterations=1)
    assert small[1].notify_latency_ns < small[2].notify_latency_ns
    assert small[1].notify_latency_ns < small[3].notify_latency_ns
    assert large[3].notify_latency_ns < large[2].notify_latency_ns
    assert large[3].notify_latency_ns < large[1].notify_latency_ns


# ----------------------------------------------------------------------
# direct CLI
# ----------------------------------------------------------------------

def _traced_transfer(approach, size, path):
    """One transfer with full tracing on, rendered as a Perfetto file."""
    machine = fresh_machine(2)
    machine.obs.enable("ap", "sp", "niu", "net")
    sampler = machine.obs.start_sampler(period_ns=500.0)
    BlockTransferExperiment(machine).run(approach, size)
    machine.obs.stop_samplers()
    machine.obs.export_perfetto(path)
    del sampler
    return path


def _flags(parser):
    parser.add_argument("--approach", type=int, default=3, choices=(1, 2, 3),
                        help="approach for --trace (default 3)")
    parser.add_argument("--size", type=int, default=4096,
                        help="transfer size for --trace (default 4096)")
    parser.add_argument("--out-dir", default=RESULTS_DIR,
                        help="artifact directory (default benchmarks/results)")


def run(args):
    points = block_transfer_metrics_sweep((1, 2, 3), FIG_SIZES,
                                          jobs=args.jobs)
    rows = [[f"A{p['approach']}", p["size_bytes"],
             p["notify_latency_ns"] / 1000.0, p["verified"]] for p in points]
    print_table("Figure 3: block transfer latency (us)", HEADER, rows)

    if args.emit_metrics or args.json:
        document = {
            "benchmark": "fig3_latency",
            "schema": "startv.metrics",
            "schema_version": 1,
            "points": points,
        }
        path = write_metrics(
            args.json or os.path.join(args.out_dir, "fig3_metrics.json"),
            document)
        print(f"metrics: {path}")

    if args.trace:
        path = _traced_transfer(
            args.approach, args.size,
            os.path.join(args.out_dir, "fig3_trace.json"))
        print(f"trace:   {path}")


BENCH = {
    "summary": "Figure 3: block-transfer latency sweep, approaches 1-3",
    "flags": _flags,
    "run": run,
}


def main(argv=None):
    from repro.bench.cli import main as bench_main

    return bench_main(
        ["fig3_latency", *(sys.argv[1:] if argv is None else list(argv))])


if __name__ == "__main__":
    sys.exit(main())
