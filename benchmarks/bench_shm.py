"""Experiment X-shm — NUMA vs S-COMA remote access characteristics.

The paper builds both because their trade-off is the point: NUMA pays a
firmware round-trip on *every* remote access; S-COMA pays a coherence
miss once and then hits local DRAM ("a region of DRAM used as a level 3
cache").  Expected shape: S-COMA cold miss ~ NUMA read; S-COMA warm hit
orders of magnitude cheaper; NUMA flat regardless of reuse.
"""


from benchmarks.conftest import record
from repro.bench import fresh_machine
from repro.shm import NumaSpace, ScomaRegion

HEADER = ["mechanism", "access", "latency_ns"]


def _numa_read_latency(repeat):
    machine = fresh_machine(2)
    numa = NumaSpace(machine)
    out = {}

    def prog(api):
        yield from numa.write(api, 1, 0x100, b"x" * 8)
        t0 = api.now
        for _ in range(repeat):
            yield from numa.read(api, 1, 0x100, 8)
        out["ns"] = (api.now - t0) / repeat

    machine.run_until(machine.spawn(0, prog), limit=1e10)
    return out["ns"]


def _scoma_latencies():
    machine = fresh_machine(2)
    region = ScomaRegion(machine, n_lines=64)
    region.init_data(0, bytes(32))
    out = {}

    def prog(api):
        t0 = api.now
        yield from api.load(region.addr(0), 8)  # cold: remote fetch
        out["cold"] = api.now - t0
        t0 = api.now
        for _ in range(20):
            yield from api.load(region.addr(0), 8)  # warm: local (L2!)
        out["warm"] = (api.now - t0) / 20

    machine.run_until(machine.spawn(1, prog), limit=1e10)
    return out


def test_numa_remote_read(benchmark):
    latency = benchmark.pedantic(_numa_read_latency, args=(10,), rounds=1,
                                 iterations=1)
    record("Shared-memory access latency", HEADER,
           ["NUMA", "remote read (every access)", latency])
    assert latency > 1_000  # always a firmware round-trip


def test_scoma_cold_and_warm(benchmark):
    out = benchmark.pedantic(_scoma_latencies, rounds=1, iterations=1)
    record("Shared-memory access latency", HEADER,
           ["S-COMA", "cold miss (protocol fill)", out["cold"]])
    record("Shared-memory access latency", HEADER,
           ["S-COMA", "warm hit (local L3)", out["warm"]])
    assert out["warm"] < out["cold"] / 20


def test_scoma_amortizes_vs_numa(benchmark):
    """Ten reads of one remote location: S-COMA pays once, NUMA pays ten
    times."""

    def run():
        numa_total = _numa_read_latency(10) * 10
        machine = fresh_machine(2)
        region = ScomaRegion(machine, n_lines=64)
        region.init_data(0, bytes(32))
        out = {}

        def prog(api):
            t0 = api.now
            for _ in range(10):
                yield from api.load(region.addr(0), 8)
            out["total"] = api.now - t0

        machine.run_until(machine.spawn(1, prog), limit=1e10)
        return numa_total, out["total"]

    numa_total, scoma_total = benchmark.pedantic(run, rounds=1, iterations=1)
    record("Shared-memory access latency", HEADER,
           ["NUMA", "10 reads of one line (total)", numa_total])
    record("Shared-memory access latency", HEADER,
           ["S-COMA", "10 reads of one line (total)", scoma_total])
    assert scoma_total < numa_total / 2


def test_scoma_write_ownership_cost(benchmark):
    """First write takes ownership (recall/invalidate); later writes are
    local."""

    def run():
        machine = fresh_machine(2)
        region = ScomaRegion(machine, n_lines=64)
        region.init_data(0, bytes(32))
        out = {}

        def prog(api):
            t0 = api.now
            yield from api.store(region.addr(0), b"w" * 8)
            out["first"] = api.now - t0
            t0 = api.now
            for _ in range(10):
                yield from api.store(region.addr(0), b"v" * 8)
            out["rest"] = (api.now - t0) / 10

        machine.run_until(machine.spawn(1, prog), limit=1e10)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    record("Shared-memory access latency", HEADER,
           ["S-COMA", "first write (ownership)", out["first"]])
    record("Shared-memory access latency", HEADER,
           ["S-COMA", "owned write", out["rest"]])
    assert out["rest"] < out["first"] / 10


def _scoma_miss_under_load(background_dma: bool):
    """S-COMA cold-miss latency, optionally under a saturating DMA.

    The protocol rides the HIGH network priority, so bulk data on the
    LOW priority should inflate the miss only modestly — the reason the
    paper "require[s] that the network supports at least two priority
    levels"."""
    from repro.mp.basic import BasicPort
    from repro.mp.dma import dma_write

    machine = fresh_machine(2)
    region = ScomaRegion(machine, n_lines=64)
    region.init_data(0, bytes(range(32)))
    out = {}

    if background_dma:
        machine.node(0).dram.poke(0x10000, bytes(32768))
        port = BasicPort(machine.node(0), 1, 1)

        def bulk(api):
            # continuous low-priority bulk traffic 0 -> 1
            for _ in range(4):
                yield from dma_write(api, port, 1, 0x10000, 0x28000, 8192)
                yield from api.sleep(1_000)

        machine.spawn(0, bulk)
        machine.run(until=machine.now + 30_000)  # let the bulk stream start

    def prog(api):
        t0 = api.now
        yield from api.load(region.addr(0), 8)
        out["cold"] = api.now - t0

    machine.run_until(machine.spawn(1, prog), limit=1e10)
    return out["cold"]


def test_priority_isolates_protocol_from_bulk(benchmark):
    def run():
        return (_scoma_miss_under_load(False),
                _scoma_miss_under_load(True))

    quiet, loaded = benchmark.pedantic(run, rounds=1, iterations=1)
    record("Shared-memory access latency", HEADER,
           ["S-COMA", "cold miss, quiet network", quiet])
    record("Shared-memory access latency", HEADER,
           ["S-COMA", "cold miss, under bulk DMA", loaded])
    # the high-priority protocol path keeps the miss within ~3x even
    # while low-priority bulk saturates the same links (the home's bus
    # and command stream still share, so some inflation is real)
    assert loaded < 4.0 * quiet


# ----------------------------------------------------------------------
# the X-shm sweep CLI: sharing-pattern curves at cluster scale
# ----------------------------------------------------------------------

import os
import sys

SWEEP_HEADER = ["pattern", "nodes", "ns/access"]
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def _sweep_config(nodes, args):
    import repro

    cfg = repro.default_config(n_nodes=nodes)
    if args.sanitize:
        cfg.sanitize = args.sanitize
    return cfg


def _pattern_sweep(args):
    """ns-per-access for each sharing pattern at each node count — the
    four curves of the X-shm figure."""
    import repro
    from repro.shm.workloads import SHARING_PATTERNS

    curves = {}
    for pattern in SHARING_PATTERNS:
        points = curves[pattern] = []
        for nodes in args.nodes:
            run = repro.run(
                repro.scenario("shm_patterns", pattern=pattern,
                               rounds=args.rounds),
                config=_sweep_config(nodes, args))
            r = run.results[0]
            points.append({"nodes": nodes,
                           "ns_per_access": r["ns_per_access"]})
    return curves


def _workload_checks(args):
    """The two real shared-memory workloads at the sweep's largest
    machine: correctness booleans, not timing."""
    import repro

    nodes = max(args.nodes)
    results = {}
    run = repro.run(
        repro.scenario("shm_graph", n_vertices=6 * nodes),
        config=_sweep_config(nodes, args))
    g = run.results[0]
    results["graph"] = {"nodes": nodes, "levels": g["levels"],
                        "ok": bool(g["bfs_ok"])}
    run = repro.run(
        repro.scenario("shm_hash", keys_per_rank=2,
                       n_buckets=4 * nodes, stripes=8),
        config=_sweep_config(nodes, args))
    h = run.results[0]
    results["hash"] = {
        "nodes": nodes,
        "ok": bool(h["inserted"] and h["found"]
                   and all(h["inserted"].values())
                   and all(h["found"].values())),
    }
    return results


def _shm_flags(parser):
    parser.add_argument("--nodes", default="2,4,8,16",
                        help="comma-separated node counts for the sweep "
                             "(default 2,4,8,16)")
    parser.add_argument("--rounds", type=int, default=6,
                        help="rounds per sharing-pattern kernel (default 6)")
    parser.add_argument("--workload", default="patterns",
                        choices=("patterns", "workloads", "all"),
                        help="patterns = the four-curve sweep; workloads = "
                             "graph+hash correctness at the largest node "
                             "count; all = both (default patterns)")
    parser.add_argument("--out-dir", default=RESULTS_DIR,
                        help="artifact directory (default benchmarks/results)")


def run(args):
    from repro.bench import print_table
    from repro.obs import write_metrics

    if getattr(args, "shards", 1) > 1:
        # the S-COMA scenarios need the whole machine in one engine, so
        # say so instead of silently dropping the flag
        print(f"bench shm: --shards {args.shards} pinned to shards=1 "
              f"(coherent scenario)")
    args.nodes = sorted({int(tok) for tok in
                         str(args.nodes).replace(",", " ").split()})
    document = {
        "benchmark": "shm",
        "schema": "startv.bench_shm",
        "schema_version": 1,
        "nodes": args.nodes,
        "rounds": args.rounds,
    }
    if args.workload in ("patterns", "all"):
        curves = _pattern_sweep(args)
        document["patterns"] = curves
        rows = [[pattern, point["nodes"],
                 round(point["ns_per_access"], 1)]
                for pattern, points in curves.items() for point in points]
        print_table("X-shm: sharing-pattern sweep (ns per access)",
                    SWEEP_HEADER, rows)
    if args.workload in ("workloads", "all"):
        checks = document["workloads"] = _workload_checks(args)
        print_table("X-shm: shared-memory workloads",
                    ["workload", "nodes", "ok"],
                    [[name, c["nodes"], c["ok"]]
                     for name, c in checks.items()])
        if not all(c["ok"] for c in checks.values()):
            return 1
    path = write_metrics(
        args.json or os.path.join(args.out_dir, "BENCH_shm.json"), document)
    print(f"metrics: {path}")
    return 0


BENCH = {
    "summary": "X-shm: sharing-pattern sweep + shared-memory workloads "
               "over the S-COMA directory protocol",
    "flags": _shm_flags,
    "run": run,
}


def main(argv=None):
    from repro.bench.cli import main as bench_main

    return bench_main(["shm", *(sys.argv[1:] if argv is None else
                                list(argv))])


if __name__ == "__main__":
    sys.exit(main())
