"""Experiment X-layers — §2's claim that layering costs little.

"Adding layers introduces very little or no additional overhead since
most stages can be pipelined and very few additional stages are
required."

Measured: the aP-visible cost of an Express send (an uncached store
decoded by the layer-1 handler, with composition and launch pushed to
the background) versus a plain uncached store served by DRAM — the
handler indirection must cost at most a couple of bus cycles.  Also the
end-to-end layer budget: the one-way Express latency decomposed against
the raw network flight time of the same packet.
"""


from benchmarks.conftest import record
from repro.bench import express_oneway_latency, fresh_machine
from repro.firmware.reflective import install_reflective  # repro: allow ARCH002 -- compares firmware layers below the public API
from repro.mp.express import ExpressPort
from repro.mp import EXPRESS_RX_LOGICAL, vdst_for

HEADER = ["path", "metric", "ns"]


def _store_costs():
    """aP-visible cost of one uncached store: DRAM-backed (layer-0 only)
    vs Express window (through the layer-1 handler)."""
    machine = fresh_machine(2)
    # an uncached DRAM window without any handler: carve one
    machine.node(0).address_map.carve("plain", 0x48000, 0x1000,
                                      __import__("repro.mem.address",
                                                 fromlist=["AccessMode"]
                                                 ).AccessMode.UNCACHED)
    express = ExpressPort(machine.node(0))
    out = {}

    def prog(api):
        t0 = api.now
        for _ in range(10):
            yield from api.store(0x48000, b"1234")
        out["plain"] = (api.now - t0) / 10
        t0 = api.now
        for _ in range(10):
            yield from express.send(api, vdst_for(1, EXPRESS_RX_LOGICAL),
                                    b"abcde")
        out["express"] = (api.now - t0) / 10

    machine.run_until(machine.spawn(0, prog), limit=1e9)
    return out


def test_handler_indirection_cost(benchmark):
    out = benchmark.pedantic(_store_costs, rounds=1, iterations=1)
    record("Layering overhead", HEADER,
           ["uncached store to DRAM", "aP-visible", out["plain"]])
    record("Layering overhead", HEADER,
           ["Express send (layer-1 handler)", "aP-visible", out["express"]])
    overhead = out["express"] - out["plain"]
    record("Layering overhead", HEADER,
           ["layer-1 decode overhead", "delta", overhead])
    # "very little or no additional overhead": within a few bus cycles;
    # the Express path can even be CHEAPER than a DRAM store because the
    # capture FIFO acknowledges before the DRAM access time
    assert overhead < 4 * 15.2  # four 66 MHz bus cycles


def test_end_to_end_layer_budget(benchmark):
    """One-way Express latency vs the raw wire time of its packet."""

    def run():
        latency = express_oneway_latency(repeats=20)
        # the same packet's unavoidable network time: serialization on two
        # links (node->switch->node) + switch + wire latencies
        machine = fresh_machine(2)
        ncfg = machine.config.network
        wire = 2 * (16 * ncfg.ns_per_byte + ncfg.wire_latency_ns) \
            + ncfg.switch_latency_ns
        return latency, wire

    latency, wire = benchmark.pedantic(run, rounds=1, iterations=1)
    record("Layering overhead", HEADER,
           ["Express one-way", "total", latency])
    record("Layering overhead", HEADER,
           ["  of which raw network", "flight", wire])
    record("Layering overhead", HEADER,
           ["  of which NIU layers + polling", "overhead", latency - wire])
    # the full four-layer stack costs less than ~3x the raw flight time
    assert latency < wire + 700


def test_new_mechanism_does_not_tax_existing(benchmark):
    """Installing an extra layer-1 handler (reflective memory) must not
    slow unrelated Express traffic — handlers are per-region."""

    def run():
        base = express_oneway_latency(repeats=10)
        machine = fresh_machine(2)
        for n in range(2):
            install_reflective(machine.node(n), 0x40000, 4096, [0, 1])
        e0 = ExpressPort(machine.node(0))
        e1 = ExpressPort(machine.node(1))

        def ping(api):
            for _ in range(10):
                yield from e0.send(api, vdst_for(1, EXPRESS_RX_LOGICAL),
                                   b"01234")
                yield from e0.recv_blocking(api)

        def pong(api):
            for _ in range(10):
                yield from e1.recv_blocking(api)
                yield from e1.send(api, vdst_for(0, EXPRESS_RX_LOGICAL),
                                   b"43210")

        t0 = machine.now
        machine.run_all([machine.spawn(0, ping), machine.spawn(1, pong)],
                        limit=1e10)
        return base, (machine.now - t0) / 20

    base, with_handler = benchmark.pedantic(run, rounds=1, iterations=1)
    record("Layering overhead", HEADER,
           ["Express with extra handler installed", "one-way",
            with_handler])
    assert with_handler < 1.05 * base


from repro.bench.cli import pytest_bench

BENCH = pytest_bench("layering", __doc__)
