"""Experiment X-prio — transmit-queue priority arbitration (§4).

"Arbitration between multiple transmit queues using a dynamically
reconfigurable system register that specifies queue priorities."

Two aP queues stream to one destination.  With equal priorities the
round-robin arbiter splits service evenly; raising one queue's priority
makes it drain strictly first whenever both hold messages.
"""


from benchmarks.conftest import record
from repro.bench import fresh_machine
from repro.mp.basic import BasicPort
from repro.mp import vdst_for

HEADER = ["configuration", "queue", "drain_order_share"]
COUNT = 24


def _race(priorities):
    """Pre-fill two tx queues, then let CTRL drain them; returns the
    network delivery order.

    The queues are composed directly in SRAM before the arbiter gets to
    run (hardware-state setup, zero simulated time), so both queues hold
    a backlog and the arbitration policy — not the compose rate — decides
    who goes first.
    """
    from repro.niu.msgformat import MsgHeader, encode_header  # repro: allow ARCH002 -- crafts raw headers to exercise priority bits

    machine = fresh_machine(2)
    ctrl0 = machine.node(0).ctrl
    ctrl0.sysregs.write("tx_priority.0", priorities[0])
    ctrl0.sysregs.write("tx_priority.1", priorities[1])
    ra = BasicPort(machine.node(1), 0, 0)
    rb = BasicPort(machine.node(1), 1, 1)
    asram = machine.node(0).niu.asram
    for name, queue_idx, logical in (("A", 0, 0), ("B", 1, 1)):
        q = ctrl0.tx_queues[queue_idx]
        for i in range(COUNT // 2):
            payload = (f"{name}{i:02d}").encode()
            hdr = MsgHeader(vdst=vdst_for(1, logical), length=len(payload))
            asram.poke(q.slot_offset(i), encode_header(hdr) + payload)
        ctrl0.tx_producer_update(queue_idx, COUNT // 2)

    # observe the arbiter directly: the order messages enter the TxU FIFO
    # is CTRL's launch order (receive-side polling would interleave it)
    launched = []
    original_put = ctrl0.tx_fifo.put

    def tapped_put(pkt):
        launched.append(pkt.payload[:1].decode())
        return original_put(pkt)

    ctrl0.tx_fifo.put = tapped_put

    def rcv(api, port, tag):
        for _ in range(COUNT // 2):
            yield from port.recv(api)

    machine.run_all([machine.spawn(1, rcv, ra, "A"),
                     machine.spawn(1, rcv, rb, "B")], limit=1e10)
    return launched


def test_equal_priorities_interleave(benchmark):
    order = benchmark.pedantic(_race, args=((1, 1),), rounds=1, iterations=1)
    first_half = order[: COUNT // 2]
    share_a = first_half.count("A") / len(first_half)
    record("Transmit priority arbitration", HEADER,
           ["equal priorities", "A share of first half", share_a])
    assert 0.25 < share_a < 0.75  # round-robin interleaves


def test_prioritized_queue_drains_first(benchmark):
    order = benchmark.pedantic(_race, args=((5, 0),), rounds=1, iterations=1)
    first_half = order[: COUNT // 2]
    share_b = first_half.count("B") / len(first_half)
    record("Transmit priority arbitration", HEADER,
           ["B prioritized", "B share of first half", share_b])
    assert share_b > 0.8  # the high-priority queue dominates early service


def test_reconfiguration_takes_effect_dynamically(benchmark):
    """The register is 'dynamically reconfigurable': flipping it reverses
    the winner."""

    def run():
        o1 = _race((5, 0))
        o2 = _race((0, 5))
        return o1, o2

    o1, o2 = benchmark.pedantic(run, rounds=1, iterations=1)
    b_first = o1[: COUNT // 2].count("B") / (COUNT // 2)
    a_first = o2[: COUNT // 2].count("A") / (COUNT // 2)
    record("Transmit priority arbitration", HEADER,
           ["flipped registers", "winner share", min(a_first, b_first)])
    assert b_first > 0.8 and a_first > 0.8


from repro.bench.cli import pytest_bench

BENCH = pytest_bench("priority", __doc__)
