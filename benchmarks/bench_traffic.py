"""Experiment X-traffic — serving applications under open-loop load.

The platform benches measure mechanisms; this one measures what an
operator sees: offered load vs **goodput** (the within-SLO fraction of
offered requests) and the p50/p99/p99.9 latency tail, for the three
:mod:`repro.traffic` applications at cluster scale:

* **KV store** — Zipf-skewed open-loop load swept across an offered
  rate axis; the curve must show the SLO knee (goodput ~1 at low load,
  falling once the hot shards saturate);
* **parameter server vs allreduce** — one synchronous training step
  through the incast-prone central server and through the collective
  algos (``nic``/``switch`` need the whole machine in one engine, so
  those rows pin ``shards=1`` with a printed notice);
* **microservice fan-out** — depth-2 request trees, tail-at-scale.

Determinism is part of the contract and gated here: the mid-load KV
point is re-run at ``shards=2`` and through a ``jobs``-wide process
pool, and both wall-stripped snapshots must be byte-identical to the
inline ``shards=1`` run.

The document lands in ``BENCH_traffic.json`` at the repo root::

    python -m repro.bench traffic                 # 64 nodes
    python -m repro.bench traffic --nodes 128 --jobs 4
    python benchmarks/bench_traffic.py --rates 20000,200000
"""

import os
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _p in (_ROOT, os.path.join(_ROOT, "src")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

from repro.bench import comparable, emit_json, print_table, run_sweep
from repro.shard import run_scenario, scenario

DEFAULT_OUT = os.path.join(_ROOT, "BENCH_traffic.json")

#: offered-load axis (requests/second per node) for the KV sweep; spans
#: the comfortable region through well past the 64-node SLO knee.
DEFAULT_RATES = (20_000.0, 50_000.0, 100_000.0, 200_000.0, 400_000.0)

#: the training rows: (mode, algo); nic/switch pin shards=1.
TRAIN_ROWS = (("ps", "-"), ("allreduce", "flat"), ("allreduce", "tree"),
              ("allreduce", "nic"), ("allreduce", "switch"))
PINNED_ALGOS = ("nic", "switch")

KV_HEADER = ["rate/node", "offered", "goodput", "p50_ns", "p99_ns",
             "p999_ns", "max_ns"]
APP_HEADER = ["app", "variant", "offered", "goodput", "p50_ns", "p99_ns",
              "p999_ns"]


def traffic_point(spec):
    """One sweep point: build the scenario from a picklable spec, run it,
    return the traffic rollup plus the full snapshot."""
    name, kwargs, n_nodes, shards, seed, sanitize = spec
    config = None
    if sanitize:
        import repro

        config = repro.default_config(n_nodes=n_nodes)
        config.seed = seed
        config.shards = shards
        config.sanitize = sanitize
    t0 = time.monotonic()
    run = run_scenario(scenario(name, **kwargs), config=config,
                       n_nodes=n_nodes, shards=shards, seed=seed)
    wall = time.monotonic() - t0
    return {
        "scenario": name,
        "params": kwargs,
        "n_nodes": n_nodes,
        "shards": shards,
        "traffic": run.snapshot.get("traffic", {}),
        "wall_seconds": wall,
        "snapshot": run.snapshot,
    }


def _kv_spec(rate, args, shards=None):
    if shards is None:
        shards = max(args.shards, 1)
    return ("traffic_kv",
            {"per_node": args.per_node, "rate_rps": rate,
             "transport": args.transport, "reliable": args.reliable},
            args.nodes, shards, args.seed, args.sanitize)


def _app_row(app, variant, section):
    t = section.get(app)
    if not t:
        return [app, variant, 0, 0.0, "-", "-", "-"]
    lat = t["latency_ns"] or {}
    return [app, variant, t["offered"], t["goodput"],
            round(lat.get("p50", 0.0)), round(lat.get("p99", 0.0)),
            round(lat.get("p999", 0.0))]


def kv_sweep(args):
    """Offered-load vs goodput/tail for the KV store (jobs-parallel)."""
    specs = [_kv_spec(rate, args) for rate in args.rates]
    points = run_sweep(traffic_point, specs, jobs=args.jobs)
    for rate, p in zip(args.rates, points):
        p["rate_rps"] = rate
    return points


def parity_checks(args, baseline_point):
    """The determinism gate: the mid-load KV point must be byte-identical
    (wall-stripped, shard-fields-stripped) at shards=2 and when computed
    through a 4-wide process pool."""
    rate = baseline_point["rate_rps"]
    base = comparable(dict(baseline_point["snapshot"]))
    other = 1 if baseline_point["shards"] == 2 else 2
    sharded = traffic_point(_kv_spec(rate, args, shards=other))
    pooled = run_sweep(traffic_point, [_kv_spec(rate, args)], jobs=4)[0]
    return {
        "rate_rps": rate,
        "shards2_identical": comparable(sharded["snapshot"]) == base,
        "jobs4_identical": comparable(pooled["snapshot"]) == base,
    }


def train_points(args):
    """The training rows; hardware-assisted collectives pin shards=1."""
    points = []
    for mode, algo in TRAIN_ROWS:
        kwargs = {"mode": mode, "steps": args.steps,
                  "n_blocks": args.blocks}
        if mode == "allreduce":
            kwargs["algo"] = algo
        shards = args.shards
        if algo in PINNED_ALGOS and shards > 1:
            print(f"traffic_train[{algo}]: pinned to shards=1 "
                  f"(machine-wide collective state)")
            shards = 1
        spec = ("traffic_train", kwargs, args.nodes, max(shards, 1),
                args.seed, args.sanitize)
        p = traffic_point(spec)
        p["variant"] = f"{mode}/{algo}" if mode == "allreduce" else mode
        points.append(p)
    return points


def usvc_point(args):
    spec = ("traffic_usvc",
            {"per_node": args.per_node, "depth": args.depth,
             "fanout": args.fanout},
            args.nodes, max(args.shards, 1), args.seed, args.sanitize)
    return traffic_point(spec)


def _flags(parser):
    parser.add_argument("--nodes", type=int, default=64,
                        help="machine size (default 64)")
    parser.add_argument("--rates", default=None,
                        help="comma-separated KV offered-load axis in "
                             "req/s per node (default "
                             "20k,50k,100k,200k,400k)")
    parser.add_argument("--per-node", type=int, default=8,
                        help="requests per node per point (default 8)")
    parser.add_argument("--transport", default="basic",
                        choices=("basic", "tagon", "dma"),
                        help="KV PUT transport (default basic)")
    parser.add_argument("--reliable", action="store_true",
                        help="send KV requests over reliable delivery")
    parser.add_argument("--steps", type=int, default=2,
                        help="training steps per run (default 2)")
    parser.add_argument("--blocks", type=int, default=2,
                        help="parameter blocks per step (default 2)")
    parser.add_argument("--depth", type=int, default=2,
                        help="microservice fan-out depth (default 2)")
    parser.add_argument("--fanout", type=int, default=2,
                        help="children per microservice stage (default 2)")
    parser.add_argument("--min-goodput", type=float, default=0.99,
                        help="low-load KV goodput gate (default 0.99)")
    parser.add_argument("--skip-parity", action="store_true",
                        help="skip the shards/jobs determinism re-runs")
    parser.add_argument("--trace-in", default=None, metavar="FILE",
                        help="replay a recorded KV trace (JSON lines from "
                             "repro.traffic.dump_trace) instead of sweeping "
                             "the offered-load axis")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="output JSON path (default BENCH_traffic.json "
                             "at the repo root)")


def replay_trace_in(args):
    """``--trace-in``: run one KV point that replays a recorded trace
    (JSON lines from :func:`repro.traffic.dump_trace`) instead of
    sweeping the offered-load axis.  The same request schedule, byte for
    byte, drives the machine — the row a bug report or an explorer
    witness pins down is reproducible by anyone holding the file."""
    from repro.traffic import load_trace

    with open(args.trace_in, "r", encoding="utf-8") as fh:
        records = load_trace(fh.read())
    spec = ("traffic_kv",
            {"transport": args.transport, "reliable": args.reliable,
             "trace": records},
            args.nodes, max(args.shards, 1), args.seed, args.sanitize)
    point = traffic_point(spec)
    t = point["traffic"].get("kv", {})
    lat = t.get("latency_ns") or {}
    print_table(
        f"X-traffic: replay of {os.path.basename(args.trace_in)} "
        f"({len(records)} requests) @ {args.nodes} nodes",
        KV_HEADER[1:],
        [[t.get("offered", 0), t.get("goodput", 0.0),
          round(lat.get("p50", 0.0)), round(lat.get("p99", 0.0)),
          round(lat.get("p999", 0.0)), round(lat.get("max", 0.0))]])
    document = {
        "benchmark": "traffic",
        "schema": "startv.metrics",
        "schema_version": 1,
        "n_nodes": args.nodes,
        "transport": args.transport,
        "trace_in": os.path.basename(args.trace_in),
        "trace_requests": len(records),
        "replay_point": {k: v for k, v in point.items() if k != "snapshot"},
    }
    path = emit_json(args.json or args.out, document)
    print(f"results: {path}")
    if t.get("completed") != t.get("offered") or not t.get("offered"):
        print(f"FAIL: replay completed {t.get('completed')} of "
              f"{t.get('offered')} offered", file=sys.stderr)
        return 1
    return 0


def run(args):
    if args.trace_in:
        return replay_trace_in(args)
    args.rates = (DEFAULT_RATES if not args.rates else
                  tuple(sorted(float(tok) for tok in
                               str(args.rates).replace(",", " ").split())))

    kv_points = kv_sweep(args)
    kv_rows = []
    for p in kv_points:
        t = p["traffic"].get("kv", {})
        lat = t.get("latency_ns") or {}
        kv_rows.append([round(p["rate_rps"]), t.get("offered", 0),
                        t.get("goodput", 0.0), round(lat.get("p50", 0.0)),
                        round(lat.get("p99", 0.0)),
                        round(lat.get("p999", 0.0)),
                        round(lat.get("max", 0.0))])
    print_table(
        f"X-traffic: KV offered load vs goodput @ {args.nodes} nodes "
        f"({args.transport}{'/reliable' if args.reliable else ''})",
        KV_HEADER, kv_rows)

    trains = train_points(args)
    usvc = usvc_point(args)
    app_rows = [_app_row("ps", p["variant"], p["traffic"]) for p in trains]
    app_rows.append(_app_row("usvc", f"d{args.depth}xf{args.fanout}",
                             usvc["traffic"]))
    print_table(f"X-traffic: training + fan-out @ {args.nodes} nodes",
                APP_HEADER, app_rows)

    mid = kv_points[len(kv_points) // 2]
    parity = None
    if not args.skip_parity:
        parity = parity_checks(args, mid)
        print(f"parity @ {round(parity['rate_rps'])} req/s/node: "
              f"shards2={parity['shards2_identical']} "
              f"jobs4={parity['jobs4_identical']}")

    low, high = kv_points[0], kv_points[-1]
    low_goodput = low["traffic"].get("kv", {}).get("goodput", 0.0)
    high_goodput = high["traffic"].get("kv", {}).get("goodput", 1.0)

    document = {
        "benchmark": "traffic",
        "schema": "startv.metrics",
        "schema_version": 1,
        "n_nodes": args.nodes,
        "transport": args.transport,
        "kv_points": [{k: v for k, v in p.items() if k != "snapshot"}
                      for p in kv_points],
        "train_points": [{k: v for k, v in p.items() if k != "snapshot"}
                         for p in trains],
        "usvc_point": {k: v for k, v in usvc.items() if k != "snapshot"},
        "parity": parity,
        "low_load_goodput": low_goodput,
        "high_load_goodput": high_goodput,
        "knee_visible": high_goodput < low_goodput,
    }
    path = emit_json(args.json or args.out, document)
    print(f"results: {path}")

    failed = False
    if low_goodput <= args.min_goodput:
        print(f"FAIL: low-load KV goodput {low_goodput:.3f} <= "
              f"{args.min_goodput}", file=sys.stderr)
        failed = True
    if not document["knee_visible"]:
        print(f"FAIL: no SLO knee — goodput {high_goodput:.3f} at "
              f"{round(high['rate_rps'])} req/s/node is not below "
              f"{low_goodput:.3f} at {round(low['rate_rps'])}",
              file=sys.stderr)
        failed = True
    if parity is not None and not (parity["shards2_identical"]
                                   and parity["jobs4_identical"]):
        print(f"FAIL: traffic metrics not deterministic: {parity}",
              file=sys.stderr)
        failed = True
    for p in trains + [usvc]:
        app = "usvc" if p["scenario"] == "traffic_usvc" else "ps"
        t = p["traffic"].get(app, {})
        if t.get("offered", 0) and t["completed"] != t["offered"]:
            print(f"FAIL: {p['scenario']} completed {t['completed']} of "
                  f"{t['offered']} offered", file=sys.stderr)
            failed = True
    return 1 if failed else 0


BENCH = {
    "summary": "X-traffic: KV / parameter-server / microservice serving "
               "load with goodput + tail-latency SLO curves",
    "flags": _flags,
    "run": run,
}


def main(argv=None):
    from repro.bench.cli import main as bench_main

    return bench_main(
        ["traffic", *(sys.argv[1:] if argv is None else list(argv))])


if __name__ == "__main__":
    sys.exit(main())
