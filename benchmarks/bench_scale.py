"""Experiment SCALE — weak-scaling curve of the sharded engine.

Runs one workload on one machine size at several shard counts and
records, per shard count:

* **determinism** — the merged wall-stripped ``metrics()`` snapshot must
  be byte-identical to the ``shards=1`` baseline (hard failure if not);
* **parallelism** — ``total_events / busiest_shard_events``, the ideal
  speedup ceiling the partition's load balance allows.  This is what a
  parallel host achieves when every shard worker gets its own core, and
  it is the gate CI enforces (the container running this suite is
  single-core, so raw wall clock cannot show parallel speedup — wall
  numbers are recorded anyway, honestly labeled with the host core
  count);
* **wall seconds** and **window count** — the measured cost of the run
  and of the conservative barrier protocol.

The document lands in ``BENCH_scale.json`` at the repo root::

    python -m repro.bench scale                      # 128 nodes, k=1/2/4
    python -m repro.bench scale --nodes 512
    python benchmarks/bench_scale.py --shards 4      # k=1/4 only
"""

import os
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _p in (_ROOT, os.path.join(_ROOT, "src")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

from repro.bench import comparable, emit_json, print_table
from repro.shard import run_scenario, scenario, scenario_names

DEFAULT_OUT = os.path.join(_ROOT, "BENCH_scale.json")
DEFAULT_AXIS = (1, 2, 4)
HEADER = ["shards", "windows", "events", "parallelism", "wall_s",
          "identical"]


def scale_point(scn_name, n_nodes, shards, seed=0, backend="inline",
                rounds=2):
    """One (workload, shard count) measurement."""
    kwargs = {"rounds": rounds} if scn_name in ("mixed", "chaos") else {}
    t0 = time.monotonic()
    run = run_scenario(scenario(scn_name, **kwargs), n_nodes=n_nodes,
                       shards=shards, seed=seed, backend=backend)
    wall = time.monotonic() - t0
    return {
        "scenario": scn_name,
        "n_nodes": n_nodes,
        "shards": shards,
        "backend": backend,
        "windows": run.windows,
        "events": sum(run.shard_events),
        "shard_events": run.shard_events,
        "parallelism": run.parallelism,
        "wall_seconds": wall,
        "snapshot": run.snapshot,
    }


def scale_sweep(scn_name="mixed", n_nodes=128, axis=DEFAULT_AXIS, seed=0,
                backend="inline", rounds=2):
    """The weak-scaling sweep plus the determinism verdict per point."""
    points = [scale_point(scn_name, n_nodes, k, seed=seed, backend=backend,
                          rounds=rounds) for k in axis]
    baseline = comparable(points[0]["snapshot"])
    for p in points:
        p["identical_to_baseline"] = comparable(p["snapshot"]) == baseline
    return points


def _flags(parser):
    parser.add_argument("--nodes", type=int, default=128,
                        help="machine size (default 128; the paper-scale "
                             "curve uses 512)")
    parser.add_argument("--scenario", default="mixed",
                        choices=scenario_names(),
                        help="workload to scale (default mixed)")
    parser.add_argument("--rounds", type=int, default=2,
                        help="messaging rounds per rank (default 2)")
    parser.add_argument("--backend", default="inline",
                        choices=("inline", "process"),
                        help="shard execution backend (default inline)")
    parser.add_argument("--min-parallelism", type=float, default=1.3,
                        help="fail if the largest shard count's "
                             "parallelism falls below this (default 1.3)")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="output JSON path (default BENCH_scale.json "
                             "at the repo root)")


def run(args):
    axis = DEFAULT_AXIS if args.shards <= 1 else (1, args.shards)
    points = scale_sweep(args.scenario, args.nodes, axis, seed=args.seed,
                         backend=args.backend, rounds=args.rounds)

    rows = [[p["shards"], p["windows"], p["events"],
             f"{p['parallelism']:.2f}", f"{p['wall_seconds']:.2f}",
             p["identical_to_baseline"]] for p in points]
    print_table(
        f"weak scaling: {args.scenario} @ {args.nodes} nodes "
        f"({args.backend})", HEADER, rows)

    top = points[-1]
    document = {
        "benchmark": "scale",
        "schema": "startv.metrics",
        "schema_version": 1,
        "host_cpus": os.cpu_count(),
        "wall_note": "wall_seconds are measured on this host; parallel "
                     "wall speedup requires >= shards cores, parallelism "
                     "is the load-balance ceiling a parallel host reaches",
        "points": [{k: v for k, v in p.items() if k != "snapshot"}
                   for p in points],
        "deterministic": all(p["identical_to_baseline"] for p in points),
        "max_shards_parallelism": top["parallelism"],
    }
    path = emit_json(args.json or args.out, document)
    print(f"results: {path}")

    failed = False
    if not document["deterministic"]:
        bad = [p["shards"] for p in points if not p["identical_to_baseline"]]
        print(f"FAIL: metrics diverge from shards=1 at shards={bad}",
              file=sys.stderr)
        failed = True
    if top["parallelism"] < args.min_parallelism:
        print(f"FAIL: parallelism {top['parallelism']:.2f} at "
              f"shards={top['shards']} below {args.min_parallelism}",
              file=sys.stderr)
        failed = True
    return 1 if failed else 0


BENCH = {
    "summary": "Weak scaling of the sharded parallel-in-time engine",
    "flags": _flags,
    "run": run,
}


def main(argv=None):
    from repro.bench.cli import main as bench_main

    return bench_main(
        ["scale", *(sys.argv[1:] if argv is None else list(argv))])


if __name__ == "__main__":
    sys.exit(main())
