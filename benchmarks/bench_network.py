"""Experiment X-net — Arctic substrate sanity (ref. [1] of the paper).

The network must deliver what the paper assumes of it: per-link
bandwidth near 160 MB/s for full packets, aggregate bandwidth scaling
with node count under random traffic (fat-tree bisection), and the
high network priority overtaking congested low-priority traffic.

Also runnable directly; ``--jobs N`` fans the scenario grid out over
processes with byte-identical output::

    python benchmarks/bench_network.py --jobs 4
"""

import os
import sys

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _p in (_ROOT, os.path.join(_ROOT, "src")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

import pytest

from benchmarks.conftest import record
from repro.common.config import default_config
from repro.net.network import ArcticNetwork  # repro: allow ARCH002 -- raw-fabric benchmark bypasses the machine on purpose
from repro.net.packet import PRIORITY_HIGH, PRIORITY_LOW, Packet, PacketKind  # repro: allow ARCH002 -- raw-fabric benchmark bypasses the machine on purpose
from repro.sim.engine import Engine  # repro: allow ARCH002 -- raw-fabric benchmark bypasses the machine on purpose

HEADER = ["scenario", "metric", "value"]


def _raw_net(n_nodes):
    engine = Engine()
    config = default_config(n_nodes=max(2, n_nodes))
    net = ArcticNetwork(engine, config.network, n_nodes, seed=5)
    return engine, net


def _pkt(net, src, dst, nbytes, priority=PRIORITY_LOW):
    p = Packet(PacketKind.DATA, src, dst, 0, bytes(nbytes),
               priority=priority, route=net.route(src, dst))
    return p


def _stream(n_packets=100, payload=88):
    """One-directional full-packet stream between two adjacent nodes."""
    engine, net = _raw_net(2)

    def sender():
        for _ in range(n_packets):
            yield from net.port(0).inject(_pkt(net, 0, 1, payload))

    def receiver():
        for _ in range(n_packets):
            yield net.port(1).receive(PRIORITY_LOW)

    engine.process(sender())
    done = engine.process(receiver())
    engine.run_until_triggered(done, limit=1e10)
    total_bytes = n_packets * (payload + 8)
    return total_bytes / engine.now * 1000.0  # MB/s


def test_link_saturation(benchmark):
    mb_s = benchmark.pedantic(_stream, rounds=1, iterations=1)
    record("Arctic network", HEADER, ["2-node stream", "wire MB/s", mb_s])
    # store-and-forward pipeline sustains near the 160 MB/s link rate
    assert mb_s > 0.9 * 160.0


def _random_traffic(n_nodes, packets_per_node=40):
    """Each node streams full packets to random partners; returns
    aggregate delivered MB/s."""
    import random

    engine, net = _raw_net(n_nodes)
    rng = random.Random(42)
    # draw every destination up front so sender interleaving cannot
    # perturb the schedule the receivers were sized for
    dests = {}
    expected = [0] * n_nodes
    for src in range(n_nodes):
        picks = []
        for _ in range(packets_per_node):
            dst = rng.randrange(n_nodes - 1)
            dst = dst if dst < src else dst + 1
            picks.append(dst)
            expected[dst] += 1
        dests[src] = picks

    def sender(src):
        for dst in dests[src]:
            yield from net.port(src).inject(_pkt(net, src, dst, 88))

    def receiver(dst, count):
        for _ in range(count):
            yield net.port(dst).receive(PRIORITY_LOW)

    procs = []
    for src in range(n_nodes):
        engine.process(sender(src))
    for dst in range(n_nodes):
        procs.append(engine.process(receiver(dst, expected[dst])))
    from repro.sim.events import AllOf  # repro: allow ARCH002 -- raw-fabric benchmark bypasses the machine on purpose
    engine.run_until_triggered(AllOf(engine, procs), limit=1e10)
    total = n_nodes * packets_per_node * 96
    return total / engine.now * 1000.0


@pytest.mark.parametrize("n_nodes", [2, 4, 8, 16])
def test_bisection_scaling(benchmark, n_nodes):
    mb_s = benchmark.pedantic(_random_traffic, args=(n_nodes,), rounds=1,
                              iterations=1)
    record("Arctic network", HEADER,
           [f"random traffic, {n_nodes} nodes", "aggregate MB/s", mb_s])


def test_aggregate_grows_with_nodes(benchmark):
    def run():
        return _random_traffic(2), _random_traffic(8)

    two, eight = benchmark.pedantic(run, rounds=1, iterations=1)
    # a fat tree's aggregate bandwidth scales with the node count
    assert eight > 2.0 * two


def _oneway(n_nodes, cut_through):
    cfg = default_config(n_nodes=max(2, n_nodes))
    cfg.network.cut_through = cut_through
    engine = Engine()
    net = ArcticNetwork(engine, cfg.network, n_nodes, seed=1)
    got = {}

    def sender():
        pkt = _pkt(net, 0, n_nodes - 1, 88)
        pkt.route = net.route(0, n_nodes - 1)
        yield from net.port(0).inject(pkt)

    def receiver():
        yield net.port(n_nodes - 1).receive(PRIORITY_LOW)
        got["t"] = engine.now

    engine.process(sender())
    done = engine.process(receiver())
    engine.run_until_triggered(done, limit=1e9)
    return got["t"]


@pytest.mark.parametrize("n_nodes", [2, 4, 16])
def test_cut_through_latency(benchmark, n_nodes):
    """X-cutthru: the real Arctic forwarded cut-through; this ablation
    shows what store-and-forward (the model default) costs per hop."""

    def run():
        return _oneway(n_nodes, False), _oneway(n_nodes, True)

    sf, ct = benchmark.pedantic(run, rounds=1, iterations=1)
    record("Arctic network", HEADER,
           [f"{n_nodes}-node one-way 96B", "store&fwd / cut-through ns",
            f"{sf:.0f} / {ct:.0f}"])
    assert ct <= sf


def test_priority_overtakes_congestion(benchmark):
    """A high-priority packet injected behind a low-priority backlog
    arrives before the backlog drains."""

    def run():
        engine, net = _raw_net(2)
        arrivals = {}

        def sender():
            for i in range(10):
                yield from net.port(0).inject(_pkt(net, 0, 1, 88))
            yield from net.port(0).inject(
                _pkt(net, 0, 1, 8, priority=PRIORITY_HIGH))

        def low_receiver():
            for i in range(10):
                yield net.port(1).receive(PRIORITY_LOW)
            arrivals["low_done"] = engine.now

        def high_receiver():
            yield net.port(1).receive(PRIORITY_HIGH)
            arrivals["high"] = engine.now

        engine.process(sender())
        a = engine.process(low_receiver())
        b = engine.process(high_receiver())
        from repro.sim.events import AllOf  # repro: allow ARCH002 -- raw-fabric benchmark bypasses the machine on purpose
        engine.run_until_triggered(AllOf(engine, [a, b]), limit=1e10)
        return arrivals

    arrivals = benchmark.pedantic(run, rounds=1, iterations=1)
    record("Arctic network", HEADER,
           ["priority overtaking", "high_arrival/low_backlog_drain",
            arrivals["high"] / arrivals["low_done"]])
    assert arrivals["high"] < arrivals["low_done"]


# ----------------------------------------------------------------------
# direct CLI (parallel sweep)
# ----------------------------------------------------------------------

def _network_point(spec):
    """One sweep scenario -> a table row dict (module-level, picklable)."""
    kind = spec[0]
    if kind == "stream":
        return {"scenario": "2-node stream", "metric": "wire MB/s",
                "value": _stream()}
    if kind == "random":
        n_nodes = spec[1]
        return {"scenario": f"random traffic, {n_nodes} nodes",
                "metric": "aggregate MB/s",
                "value": _random_traffic(n_nodes)}
    if kind == "cut_through":
        n_nodes = spec[1]
        return {"scenario": f"{n_nodes}-node one-way 96B",
                "metric": "store&fwd / cut-through ns",
                "value": f"{_oneway(n_nodes, False):.0f} / "
                         f"{_oneway(n_nodes, True):.0f}"}
    raise ValueError(f"unknown scenario {spec!r}")


def _flags(parser):
    parser.add_argument("--out", default=os.path.join(
                            os.path.dirname(os.path.abspath(__file__)),
                            "results", "network.json"),
                        help="output JSON path")


def run(args):
    from repro.bench import emit_json, print_table, run_sweep

    specs = ([("stream",)]
             + [("random", n) for n in (2, 4, 8, 16)]
             + [("cut_through", n) for n in (2, 4, 16)])
    rows = run_sweep(_network_point, specs, jobs=args.jobs)
    print_table("Arctic network", HEADER,
                [[r["scenario"], r["metric"], r["value"]] for r in rows])
    path = emit_json(args.json or args.out, {"rows": rows})
    print(f"results: {path}")


BENCH = {
    "summary": "Arctic fabric: saturation, bisection scaling, cut-through",
    "flags": _flags,
    "run": run,
}


def main(argv=None):
    from repro.bench.cli import main as bench_main

    return bench_main(
        ["network", *(sys.argv[1:] if argv is None else list(argv))])


if __name__ == "__main__":
    sys.exit(main())
