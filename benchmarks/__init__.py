"""Benchmark suite: regenerates every table and figure (see DESIGN.md §4)."""
