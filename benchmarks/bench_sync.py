"""Experiment X-sync — synchronization latency vs. machine size.

The scalable-SMP question the `repro.sync` subsystem exists to answer:
what does a global synchronization cost as the machine grows, and how
much of that cost can the network absorb?  Two sweeps over a 64–1024
node axis:

* ``barrier`` — one global barrier, three ways: the pure-endpoint
  counting barrier (every arrival is a message to one sP), the NIC
  software tree (``MiniMPI barrier(algo="nic")``), and the in-switch
  combining tree (``algo="switch"`` riding the planned reduction tree).
* ``hotspot`` — a fetch-and-add storm on a single counter cell at two
  contention levels (1/16 of the machine, and every node), endpoint
  vs. in-switch combining.  The in-switch rows also report how many
  requests the fabric folded (``combine_hits``) — the Ultracomputer
  argument, measured.

Per point: completion time, per-operation latency, and (hot-spot) the
serialization ratio against the endpoint row.  Machines are built with
a shrunken cache/DRAM footprint — the sync paths never touch either,
and the full-size memory system dominates build time at 1024 nodes —
and with radix-8 switches so the 1024-node fat tree stays 5 levels.
Everything is seeded: the sweep is byte-identical for any ``--jobs``.

Also runnable directly (no pytest) for machine-readable output::

    python benchmarks/bench_sync.py --nodes 64 --sanitize combine
    python benchmarks/bench_sync.py --jobs 6 --emit-metrics

The summary artifact always lands in ``BENCH_sync.json`` at the repo
root; the CLI exits nonzero if in-switch combining fails to beat the
pure-endpoint implementation at any size >= 256 nodes, which is what
the CI sync-smoke job checks.
"""

import os
import sys

# script execution (`python benchmarks/bench_sync.py`) has only
# benchmarks/ on sys.path; make the repo root and src/ importable
_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _p in (_ROOT, os.path.join(_ROOT, "src")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

from repro.bench import emit_json, fresh_machine, print_table, run_sweep
from repro.bench.harness import strip_wall
from repro.common.config import CacheConfig, DRAMConfig, NetworkConfig
from repro.lib.mpi import MiniMPI
from repro.obs.snapshot import metrics_snapshot

BARRIER_HEADER = ["nodes", "algo", "rounds", "total_us", "per_barrier_us"]
HOTSPOT_HEADER = ["nodes", "contenders", "transport", "ops", "total_us",
                  "per_op_ns", "combine_hits"]

#: where the CLI drops the optional per-point metrics snapshots.
RESULTS_DIR = os.path.join(_ROOT, "benchmarks", "results")
#: the always-written summary artifact (acceptance checks read this).
SUMMARY_PATH = os.path.join(_ROOT, "BENCH_sync.json")

#: the machine-size axis (fat-tree leaves; radix 8 keeps 1024 at 5 levels).
NODE_AXIS = (64, 256, 1024)

BARRIER_ROUNDS = 3
HOTSPOT_ROUNDS = 2
#: hot-spot contention levels as a fraction of the machine.
CONTENTION = ((1, 16), (1, 1))


def sync_machine(n_nodes, **overrides):
    """A machine sized for sync sweeps: full network, skeletal memory."""
    overrides.setdefault("l2", CacheConfig(size_bytes=8 * 1024))
    overrides.setdefault("dram", DRAMConfig(size_bytes=64 * 1024))
    overrides.setdefault("network", NetworkConfig(radix=8))
    return fresh_machine(n_nodes, **overrides)


def _combine_hits(machine):
    rep = machine.stats.report()
    return int(sum(v for k, v in rep.items()
                   if k.endswith(".combine_hits")))


def barrier_point(spec):
    """One barrier point: ``(n_nodes, algo)`` -> result row.

    ``endpoint`` runs the counting barrier over the sP-served fallback
    transport; ``nic`` and ``switch`` go through MiniMPI so the row
    measures the same call an application would make.
    """
    n, algo = spec
    machine = sync_machine(n)
    if algo == "endpoint":
        bar = machine.sync_fabric().group(range(n), mode="endpoint") \
            .barrier(variant="counting")

        def prog(api, rank):
            for r in range(BARRIER_ROUNDS):
                yield from api.compute(50 * ((rank + r) % 7))
                yield from bar.wait(api, rank)
    else:
        mpi = MiniMPI(machine, algo=algo)

        def prog(api, rank):
            comm = mpi.rank(rank)
            for r in range(BARRIER_ROUNDS):
                yield from api.compute(50 * ((rank + r) % 7))
                yield from comm.barrier(api)

    t0 = machine.now
    procs = [machine.spawn(i, prog, i) for i in range(n)]
    machine.run_all(procs, limit=1e11)
    total_ns = machine.now - t0
    return {
        "workload": "barrier",
        "nodes": n,
        "algo": algo,
        "rounds": BARRIER_ROUNDS,
        "total_ns": total_ns,
        "per_barrier_ns": total_ns / BARRIER_ROUNDS,
        "combine_hits": _combine_hits(machine),
        "metrics": strip_wall(metrics_snapshot(machine,
                                               include_config=False)),
    }


def hotspot_point(spec):
    """One hot-spot point: ``(n_nodes, num, den, transport)`` -> row.

    ``num/den`` of the machine's nodes each issue ``HOTSPOT_ROUNDS``
    fetch-and-adds on the same counter cell; the row reports the wall
    from first request to last reply.  The final counter value is
    asserted, so a dropped or double-applied combine fails the sweep.
    """
    n, num, den, transport = spec
    contenders = max(2, n * num // den)
    machine = sync_machine(n)
    grp = machine.sync_fabric().group(range(n), mode=transport)
    ctr = grp.counter(cell=0)

    def prog(api, rank):
        for _ in range(HOTSPOT_ROUNDS):
            yield from ctr.add(api, rank, 1)
        return 1

    def check(api):
        return (yield from ctr.read(api, 0))

    t0 = machine.now
    procs = [machine.spawn(i, prog, i) for i in range(contenders)]
    machine.run_all(procs, limit=1e11)
    total_ns = machine.now - t0
    final = machine.run_until(machine.spawn(0, check), limit=1e11)
    ops = contenders * HOTSPOT_ROUNDS
    assert final == ops, f"hot spot lost updates: {final} != {ops}"
    return {
        "workload": "hotspot",
        "nodes": n,
        "contenders": contenders,
        "transport": transport,
        "ops": ops,
        "total_ns": total_ns,
        "per_op_ns": total_ns / ops,
        "combine_hits": _combine_hits(machine),
        "metrics": strip_wall(metrics_snapshot(machine,
                                               include_config=False)),
    }


def sync_sweep(jobs=1, node_axis=NODE_AXIS):
    """The full grid, in point order (byte-identical for any ``jobs``)."""
    barrier_specs = [(n, algo) for n in node_axis
                     for algo in ("endpoint", "nic", "switch")]
    hotspot_specs = [(n, num, den, transport) for n in node_axis
                     for (num, den) in CONTENTION
                     for transport in ("endpoint", "switch")]
    points = run_sweep(barrier_point, barrier_specs, jobs=jobs)
    points += run_sweep(hotspot_point, hotspot_specs, jobs=jobs)
    return points


def check_switch_wins(points, floor=256):
    """The acceptance claim: in-switch beats endpoint at >= ``floor``.

    Returns the list of violations (empty = the claim holds) comparing
    per-barrier latency and hot-spot completion time between the switch
    and endpoint rows of every size >= ``floor``.
    """
    bad = []
    barriers = {(p["nodes"], p["algo"]): p for p in points
                if p["workload"] == "barrier"}
    for (n, algo), p in barriers.items():
        if algo != "switch" or n < floor:
            continue
        rival = barriers[(n, "endpoint")]
        if p["per_barrier_ns"] >= rival["per_barrier_ns"]:
            bad.append(f"barrier at {n}: switch {p['per_barrier_ns']:.0f}ns "
                       f">= endpoint {rival['per_barrier_ns']:.0f}ns")
    spots = {(p["nodes"], p["contenders"], p["transport"]): p
             for p in points if p["workload"] == "hotspot"}
    for (n, c, transport), p in spots.items():
        if transport != "switch" or n < floor:
            continue
        rival = spots[(n, c, "endpoint")]
        if p["total_ns"] >= rival["total_ns"]:
            bad.append(f"hotspot at {n} ({c} contenders): switch "
                       f"{p['total_ns']:.0f}ns >= endpoint "
                       f"{rival['total_ns']:.0f}ns")
    return bad


def _flags(parser):
    parser.add_argument("--nodes", type=int, nargs="+", default=None,
                        metavar="N",
                        help="machine sizes to sweep (default: 64 256 1024)")
    parser.add_argument("--out-dir", default=RESULTS_DIR,
                        help="artifact directory (default benchmarks/results)")
    parser.add_argument("--summary", default=SUMMARY_PATH,
                        help="summary artifact path (default BENCH_sync.json "
                             "at the repo root)")


def run(args):
    if args.sanitize:
        from repro.analysis.sanitize import resolve_sanitizers

        resolve_sanitizers(args.sanitize, env="")  # fail fast on typos
        # the environment propagates to sweep pool workers, so every
        # point's machine comes up with the checkers installed
        os.environ["REPRO_SANITIZE"] = args.sanitize

    node_axis = tuple(args.nodes) if args.nodes else NODE_AXIS
    points = sync_sweep(jobs=args.jobs, node_axis=node_axis)

    barrier_rows = [[p["nodes"], p["algo"], p["rounds"],
                     f"{p['total_ns'] / 1e3:.1f}",
                     f"{p['per_barrier_ns'] / 1e3:.1f}"]
                    for p in points if p["workload"] == "barrier"]
    print_table("X-sync: global barrier latency", BARRIER_HEADER,
                barrier_rows)
    hotspot_rows = [[p["nodes"], p["contenders"], p["transport"], p["ops"],
                     f"{p['total_ns'] / 1e3:.1f}", f"{p['per_op_ns']:.0f}",
                     p["combine_hits"]]
                    for p in points if p["workload"] == "hotspot"]
    print_table("X-sync: fetch-and-add hot spot", HOTSPOT_HEADER,
                hotspot_rows)

    violations = check_switch_wins(points,
                                   floor=min(256, max(node_axis)))
    summary = {
        "benchmark": "sync",
        "schema": "startv.metrics",
        "schema_version": 1,
        "node_axis": list(node_axis),
        "switch_beats_endpoint": not violations,
        "violations": violations,
        "points": [{k: v for k, v in p.items() if k != "metrics"}
                   for p in points],
    }
    path = emit_json(args.json or args.summary, summary)
    print(f"summary: {path}")

    if args.emit_metrics:
        document = dict(summary, points=points)
        mpath = emit_json(os.path.join(args.out_dir, "sync_metrics.json"),
                          document)
        print(f"metrics: {mpath}")

    for v in violations:
        print(f"FAIL: {v}", file=sys.stderr)
    return 1 if violations else 0


BENCH = {
    "summary": "Scalable synchronization: barriers and hot spots at scale",
    "flags": _flags,
    "run": run,
}


def main(argv=None):
    from repro.bench.cli import main as bench_main

    return bench_main(
        ["sync", *(sys.argv[1:] if argv is None else list(argv))])


if __name__ == "__main__":
    sys.exit(main())
