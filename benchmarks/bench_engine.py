"""Experiment X-engine — simulation-kernel throughput microbenchmark.

Everything else in ``benchmarks/`` measures *simulated* time; this file
measures the **simulator itself**: how many scheduled events the kernel
executes per wall-clock second, and how many payload bytes the full
machine moves per wall-clock second.  It is the perf trajectory for the
fast-path kernel work — run it before and after touching ``repro.sim``
and compare.

Three workloads:

* ``timeout_storm``   — the pure kernel fast path: N processes doing
  nothing but ``yield engine.timeout(d)``.  No machine, no payload;
  this isolates heap + event + process-resume overhead.
* ``store_traffic``   — producer/consumer pairs through bounded
  :class:`~repro.sim.store.Store`\\ s: the put/get/callback path every
  hardware FIFO in the model rides.
* ``alltoall8``       — an 8-node machine where every node streams
  Basic messages to every other node: the end-to-end events/sec and
  bytes-moved/sec of the real data plane (SRAM, CTRL, network).

Direct CLI (also the CI smoke job)::

    python benchmarks/bench_engine.py --quick
    python benchmarks/bench_engine.py --record-as pre_refactor

Results merge into ``BENCH_engine.json`` (repo root by default) under
``runs[<label>]``; when both ``pre_refactor`` and ``post_refactor``
labels are present the document gains a ``speedup_events_per_s`` field —
the number the fast-path refactor is gated on.
"""

import os
import sys
import time

# script execution (`python benchmarks/bench_engine.py`) has only
# benchmarks/ on sys.path; make the repo root and src/ importable
_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _p in (_ROOT, os.path.join(_ROOT, "src")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

import json

from repro.mp.basic import BasicPort
from repro.mp import vdst_for
from repro.sim.engine import Engine  # repro: allow ARCH002 -- event-kernel microbenchmark drives the raw engine
from repro.sim.store import Store  # repro: allow ARCH002 -- event-kernel microbenchmark drives the raw engine

#: default artifact (repo root: this file is the perf trajectory).
DEFAULT_OUT = os.path.join(_ROOT, "BENCH_engine.json")


# ----------------------------------------------------------------------
# workloads
# ----------------------------------------------------------------------

def timeout_storm(n_procs: int = 50, steps: int = 2000) -> dict:
    """Pure-kernel timeout churn; returns events/sec and ns/event."""
    engine = Engine()

    def proc(i):
        delay = 1.0 + (i % 7)
        for _ in range(steps):
            yield engine.timeout(delay)

    for i in range(n_procs):
        engine.process(proc(i), name=f"storm{i}")
    t0 = time.perf_counter()
    engine.run()
    wall = time.perf_counter() - t0
    return {
        "events": engine.events_executed,
        "wall_s": wall,
        "events_per_s": engine.events_executed / wall,
        "ns_per_event": wall / engine.events_executed * 1e9,
    }


def store_traffic(n_pairs: int = 10, items: int = 2000) -> dict:
    """Bounded-store producer/consumer churn; returns events/sec."""
    engine = Engine()

    def producer(store):
        for i in range(items):
            yield store.put(i)
            yield engine.timeout(1.0)

    def consumer(store):
        for _ in range(items):
            yield store.get()
            yield engine.timeout(1.0)

    for p in range(n_pairs):
        store = Store(engine, capacity=4, name=f"bench{p}")
        engine.process(producer(store), name=f"prod{p}")
        engine.process(consumer(store), name=f"cons{p}")
    t0 = time.perf_counter()
    engine.run()
    wall = time.perf_counter() - t0
    return {
        "events": engine.events_executed,
        "wall_s": wall,
        "events_per_s": engine.events_executed / wall,
        "ns_per_event": wall / engine.events_executed * 1e9,
    }


def alltoall8(n_nodes: int = 8, msgs_per_peer: int = 2,
              payload_bytes: int = 64) -> dict:
    """Full-machine all-to-all Basic-message exchange.

    Every node sends ``msgs_per_peer`` messages of ``payload_bytes`` to
    every other node and receives everything addressed to it.  Returns
    kernel events/sec plus the data-plane figure: payload bytes moved
    end-to-end (DRAM-less Basic path: aP -> SRAM -> network -> SRAM ->
    aP) per wall second.
    """
    import repro

    machine = repro.StarTVoyager(repro.default_config(n_nodes=n_nodes))
    ports = [BasicPort(machine.node(n), 0, 0) for n in range(n_nodes)]
    payload = bytes(payload_bytes)
    incoming = (n_nodes - 1) * msgs_per_peer

    def worker(api, rank):
        for round_no in range(msgs_per_peer):
            for step in range(1, n_nodes):
                dst = (rank + step) % n_nodes
                yield from ports[rank].send(api, vdst_for(dst, 0), payload)
        for _ in range(incoming):
            yield from ports[rank].recv(api)

    procs = [machine.spawn(n, worker, n) for n in range(n_nodes)]
    t0 = time.perf_counter()
    machine.run_all(procs, limit=1e12)
    wall = time.perf_counter() - t0
    total_payload = n_nodes * incoming * payload_bytes
    events = machine.engine.events_executed
    return {
        "n_nodes": n_nodes,
        "messages": n_nodes * incoming,
        "payload_bytes_total": total_payload,
        "events": events,
        "wall_s": wall,
        "events_per_s": events / wall,
        "bytes_moved_per_s": total_payload / wall,
        "sim_ns": machine.now,
    }


def measure(quick: bool = False, repeats: int = 3) -> dict:
    """Run the three workloads (best-of-``repeats`` wall clock)."""
    if quick:
        repeats = 1
        storm_args = dict(n_procs=20, steps=400)
        store_args = dict(n_pairs=5, items=400)
        a2a_args = dict(msgs_per_peer=1)
    else:
        storm_args = {}
        store_args = {}
        a2a_args = {}

    def best(fn, **kwargs):
        runs = [fn(**kwargs) for _ in range(repeats)]
        return max(runs, key=lambda r: r["events_per_s"])

    storm = best(timeout_storm, **storm_args)
    store = best(store_traffic, **store_args)
    a2a = best(alltoall8, **a2a_args)
    return {
        "timeout_storm": storm,
        "store_traffic": store,
        "alltoall8": a2a,
        #: the headline gauge: pure-kernel event throughput.
        "events_per_s": storm["events_per_s"],
        "bytes_moved_per_s": a2a["bytes_moved_per_s"],
        "quick": quick,
    }


# ----------------------------------------------------------------------
# pytest entry points (collected with the rest of the benchmark suite)
# ----------------------------------------------------------------------

def test_engine_microbench(benchmark):
    from benchmarks.conftest import record

    results = benchmark.pedantic(measure, kwargs={"quick": True},
                                 rounds=1, iterations=1)
    record("engine kernel throughput",
           ["workload", "events/s", "ns/event"],
           ["timeout_storm", results["timeout_storm"]["events_per_s"],
            results["timeout_storm"]["ns_per_event"]])
    record("engine kernel throughput",
           ["workload", "events/s", "ns/event"],
           ["store_traffic", results["store_traffic"]["events_per_s"],
            results["store_traffic"]["ns_per_event"]])
    record("engine kernel throughput",
           ["workload", "events/s", "ns/event"],
           ["alltoall8", results["alltoall8"]["events_per_s"],
            results["alltoall8"]["events_per_s"]])
    assert results["events_per_s"] > 0
    assert results["bytes_moved_per_s"] > 0


# ----------------------------------------------------------------------
# direct CLI
# ----------------------------------------------------------------------

def _merge(path: str, label: str, results: dict) -> dict:
    """Fold one measurement into the trajectory document at ``path``."""
    doc = {
        "benchmark": "engine_kernel",
        "schema": "startv.bench_engine",
        "schema_version": 1,
        "runs": {},
    }
    if os.path.exists(path):
        with open(path) as fh:
            doc.update(json.load(fh))
    doc.setdefault("runs", {})[label] = results
    pre = doc["runs"].get("pre_refactor")
    post = doc["runs"].get("post_refactor")
    if pre and post:
        doc["speedup_events_per_s"] = (
            post["events_per_s"] / pre["events_per_s"])
        doc["speedup_bytes_moved_per_s"] = (
            post["bytes_moved_per_s"] / pre["bytes_moved_per_s"])
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc


def _flags(parser):
    parser.add_argument("--quick", action="store_true",
                        help="small sizes, single repeat (CI smoke)")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="trajectory JSON path (default BENCH_engine.json)")
    parser.add_argument("--record-as", default="current",
                        help="label for this run in the JSON document "
                             "(pre_refactor / post_refactor / current)")


def run(args):
    results = measure(quick=args.quick)
    from repro.bench import print_table

    rows = [
        ["timeout_storm", f"{results['timeout_storm']['events_per_s']:,.0f}",
         f"{results['timeout_storm']['ns_per_event']:.0f}", "-"],
        ["store_traffic", f"{results['store_traffic']['events_per_s']:,.0f}",
         f"{results['store_traffic']['ns_per_event']:.0f}", "-"],
        ["alltoall8", f"{results['alltoall8']['events_per_s']:,.0f}", "-",
         f"{results['alltoall8']['bytes_moved_per_s']:,.0f}"],
    ]
    print_table("engine kernel throughput (wall clock)",
                ["workload", "events/s", "ns/event", "payload B/s"], rows)

    out = args.json or args.out
    doc = _merge(out, args.record_as, results)
    print(f"\nrecorded as {args.record_as!r} in {out}")
    if "speedup_events_per_s" in doc:
        print(f"speedup (events/s, post/pre): "
              f"{doc['speedup_events_per_s']:.2f}x")


BENCH = {
    "summary": "Event-kernel wall-clock throughput microbenchmarks",
    "flags": _flags,
    "run": run,
}


def main(argv=None):
    from repro.bench.cli import main as bench_main

    return bench_main(
        ["engine", *(sys.argv[1:] if argv is None else list(argv))])


if __name__ == "__main__":
    sys.exit(main())
