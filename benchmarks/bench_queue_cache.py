"""Experiment X-cache — receive-queue caching ablation (§4).

"Selectively caching queues enables the NIU to support a large number
of logical destinations efficiently, while using only a small amount of
resources."  The ablation: deliver a stream to a hardware-resident
logical queue vs a non-resident one (firmware miss service into a DRAM
ring), and mix the two.

Expected shape: resident delivery is several times faster per message;
mixed traffic degrades only the non-resident share.
"""


from benchmarks.conftest import record
from repro.bench import fresh_machine
from repro.firmware.msg import declare_dram_queue  # repro: allow ARCH002 -- measures firmware queue handling below the API
from repro.mp.basic import BasicPort
from repro.mp.dramq import DramQueueReader
from repro.mp import vdst_for

HEADER = ["queue kind", "msgs", "ns_per_msg"]
COUNT = 40


def _resident_stream():
    machine = fresh_machine(2)
    p0 = BasicPort(machine.node(0), 0, 0)
    p1 = BasicPort(machine.node(1), 0, 0)

    def sender(api):
        for i in range(COUNT):
            yield from p0.send(api, vdst_for(1, 0), bytes([i]))

    def receiver(api):
        for _ in range(COUNT):
            yield from p1.recv(api)

    t0 = machine.now
    machine.run_all([machine.spawn(0, sender), machine.spawn(1, receiver)],
                    limit=1e10)
    return (machine.now - t0) / COUNT


def _nonresident_stream():
    machine = fresh_machine(2)
    node1 = machine.node(1)
    ring = declare_dram_queue(node1.sp, logical=10, base=0x30000, depth=64)
    reader = DramQueueReader(ring)
    p0 = BasicPort(machine.node(0), 0, 0)

    def sender(api):
        for i in range(COUNT):
            yield from p0.send(api, vdst_for(1, 10), bytes([i]))

    def receiver(api):
        for _ in range(COUNT):
            yield from reader.recv(api)

    t0 = machine.now
    machine.run_all([machine.spawn(0, sender), machine.spawn(1, receiver)],
                    limit=1e10)
    return (machine.now - t0) / COUNT


def test_resident_queue_stream(benchmark):
    per_msg = benchmark.pedantic(_resident_stream, rounds=1, iterations=1)
    record("Receive-queue caching ablation", HEADER,
           ["hardware-resident", COUNT, per_msg])
    assert per_msg < 3_000


def test_nonresident_queue_stream(benchmark):
    per_msg = benchmark.pedantic(_nonresident_stream, rounds=1, iterations=1)
    record("Receive-queue caching ablation", HEADER,
           ["miss-serviced (DRAM ring)", COUNT, per_msg])


def test_residency_speedup(benchmark):
    def both():
        return _resident_stream(), _nonresident_stream()

    fast, slow = benchmark.pedantic(both, rounds=1, iterations=1)
    record("Receive-queue caching ablation", HEADER,
           ["speedup (slow/fast)", "", slow / fast])
    assert slow > 1.5 * fast


def test_mixed_traffic_isolation(benchmark):
    """Resident traffic keeps its speed while miss traffic interleaves."""

    def run():
        machine = fresh_machine(2)
        node1 = machine.node(1)
        ring = declare_dram_queue(node1.sp, logical=10, base=0x30000,
                                  depth=64)
        reader = DramQueueReader(ring)
        p0 = BasicPort(machine.node(0), 0, 0)
        p0b = BasicPort(machine.node(0), 1, 1)
        p1 = BasicPort(node1, 0, 0)
        marks = {}

        def fast_sender(api):
            for i in range(COUNT):
                yield from p0.send(api, vdst_for(1, 0), bytes([i]))

        def slow_sender(api):
            for i in range(COUNT):
                yield from p0b.send(api, vdst_for(1, 10), bytes([i]))

        def fast_receiver(api):
            t0 = api.now
            for _ in range(COUNT):
                yield from p1.recv(api)
            marks["fast"] = (api.now - t0) / COUNT

        def slow_receiver(api):
            for _ in range(COUNT):
                yield from reader.recv(api)

        machine.run_all([
            machine.spawn(0, fast_sender), machine.spawn(0, slow_sender),
            machine.spawn(1, fast_receiver), machine.spawn(1, slow_receiver),
        ], limit=1e10)
        return marks["fast"]

    mixed_fast = benchmark.pedantic(run, rounds=1, iterations=1)
    record("Receive-queue caching ablation", HEADER,
           ["resident, under mixed load", COUNT, mixed_fast])
    # the shared sender aP halves the arrival rate, but the resident path
    # itself must stay well under double the sender-limited interval —
    # i.e. residency does not degrade to miss-service behaviour
    assert mixed_fast < 2.0 * _nonresident_stream()


from repro.bench.cli import pytest_bench

BENCH = pytest_bench("queue_cache", __doc__)
