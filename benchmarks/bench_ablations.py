"""Experiment X-abl — ablations of the design choices DESIGN.md calls out.

Three knobs whose values the implementation (and the real firmware team)
had to pick:

* **DMA piece size** — smaller pieces pipeline the block-read and
  block-transmit units better but pay per-piece firmware and command
  overhead; a page-sized piece serializes read against transmit;
* **queue depth** — shallow queues force flow-control stalls on
  streaming traffic; depth buys throughput until the network is the
  bottleneck;
* **receiver poll backoff** — a spinning receiver's uncached pointer
  loads steal memory-bus bandwidth from the NIU's DRAM writes (the §6
  remark that retry-spinning "prevents the aP from doing any useful
  work" generalizes to polling).
"""

import pytest

from benchmarks.conftest import record
from repro.bench import fresh_machine
from repro.core.blocktransfer import BlockTransferExperiment
from repro.mp.basic import BasicPort
from repro.mp import vdst_for

HEADER = ["knob", "value", "metric", "result"]
SIZE = 16384


def _a3_with_piece(piece_bytes):
    machine = fresh_machine(2)
    for node in machine.nodes:
        node.sp.state["dma_piece_bytes"] = piece_bytes
    result = BlockTransferExperiment(machine).run(3, SIZE)
    assert result.verified
    return result


@pytest.mark.parametrize("piece", [256, 512, 1024, 2048, 4096])
def test_dma_piece_size(benchmark, piece):
    result = benchmark.pedantic(_a3_with_piece, args=(piece,), rounds=1,
                                iterations=1)
    record("Ablations", HEADER,
           ["DMA piece bytes", piece, "A3 bandwidth MB/s",
            result.bandwidth_mb_s])


def test_piece_size_tradeoff(benchmark):
    """Both extremes lose to the middle: tiny pieces drown in per-piece
    overhead, page-sized pieces serialize read against transmit."""

    def run():
        return {p: _a3_with_piece(p).bandwidth_mb_s
                for p in (256, 1024, 4096)}

    bw = benchmark.pedantic(run, rounds=1, iterations=1)
    assert bw[1024] >= bw[256]
    assert bw[1024] >= bw[4096] * 0.95  # mid piece at least matches a page


def _stream_with_depth(depth, count=60):
    import repro
    cfg = repro.default_config(n_nodes=2)
    cfg.niu.queue_depth = depth
    machine = repro.StarTVoyager(cfg)
    p0 = BasicPort(machine.node(0), 0, 0)
    p1 = BasicPort(machine.node(1), 0, 0)

    def sender(api):
        for i in range(count):
            yield from p0.send(api, vdst_for(1, 0), bytes(64))

    def receiver(api):
        for _ in range(count):
            yield from p1.recv(api)

    t0 = machine.now
    machine.run_all([machine.spawn(0, sender), machine.spawn(1, receiver)],
                    limit=1e10)
    return count * 64 / (machine.now - t0) * 1000.0


@pytest.mark.parametrize("depth", [4, 16, 64])
def test_queue_depth(benchmark, depth):
    mb_s = benchmark.pedantic(_stream_with_depth, args=(depth,), rounds=1,
                              iterations=1)
    record("Ablations", HEADER,
           ["queue depth", depth, "stream MB/s (64 B)", mb_s])


def test_depth_helps_until_saturation(benchmark):
    def run():
        return {d: _stream_with_depth(d) for d in (4, 16, 64)}

    bw = benchmark.pedantic(run, rounds=1, iterations=1)
    assert bw[16] >= bw[4]  # more buffering absorbs burstiness
    assert bw[64] >= 0.9 * bw[16]  # but returns diminish


def _a3_with_poll(poll_insns):
    """A3 transfer with the receiver's notification poll loop tightness
    varied (0 = hammer the bus)."""
    machine = fresh_machine(2)
    exp = BlockTransferExperiment(machine)
    # monkeypatch the notifier's poll cadence through the port API
    original_recv = exp.notifier.port.recv

    def recv(api, poll_insns_=poll_insns):
        return original_recv(api, poll_insns=poll_insns_)

    exp.notifier.port.recv = recv
    result = exp.run(3, SIZE)
    assert result.verified
    return result


@pytest.mark.parametrize("poll", [0, 25, 200])
def test_poll_backoff(benchmark, poll):
    result = benchmark.pedantic(_a3_with_poll, args=(poll,), rounds=1,
                                iterations=1)
    record("Ablations", HEADER,
           ["receiver poll insns", poll, "A3 bandwidth MB/s",
            result.bandwidth_mb_s])


def _a3_with_dram(row_buffer):
    import repro

    cfg = repro.default_config(n_nodes=2)
    cfg.dram.row_buffer = row_buffer
    machine = repro.StarTVoyager(cfg)
    result = BlockTransferExperiment(machine).run(3, SIZE)
    assert result.verified
    return result


@pytest.mark.parametrize("row_buffer", [False, True])
def test_dram_open_page(benchmark, row_buffer):
    result = benchmark.pedantic(_a3_with_dram, args=(row_buffer,), rounds=1,
                                iterations=1)
    record("Ablations", HEADER,
           ["DRAM open-page", "on" if row_buffer else "off",
            "A3 bandwidth MB/s", result.bandwidth_mb_s])


def test_open_page_speeds_block_streams(benchmark):
    def run():
        return (_a3_with_dram(False).bandwidth_mb_s,
                _a3_with_dram(True).bandwidth_mb_s)

    flat, openpage = benchmark.pedantic(run, rounds=1, iterations=1)
    assert openpage > flat  # block streams are row-hit heavy


def test_tight_polling_steals_bus_bandwidth(benchmark):
    def run():
        return (_a3_with_poll(0).bandwidth_mb_s,
                _a3_with_poll(200).bandwidth_mb_s)

    tight, loose = benchmark.pedantic(run, rounds=1, iterations=1)
    record("Ablations", HEADER,
           ["polling contention", "0 vs 200", "bandwidth ratio",
            loose / tight])
    assert loose > tight  # backing off the poll loop speeds the transfer


from repro.bench.cli import pytest_bench

BENCH = pytest_bench("ablations", __doc__)
