"""Experiment F4 — Figure 4: block-transfer **bandwidth**, approaches 1-3.

Regenerates the bandwidth-vs-size series: delivered bytes over the time
to the completion message.

Expected shape (paper §6): "Approach 1 has the worst performance,
because the data needs to be moved over the aP bus twice on each side";
"Approach 2 performs better because data moves over the aP bus only
once on each side"; "Approach 3 has the best performance in terms of
bandwidth.  The block operations can read and transmit at almost
maximum hardware speeds."
"""

import pytest

from benchmarks.conftest import record
from repro.bench import FIG_SIZES, run_block_transfer

HEADER = ["approach", "size_B", "bandwidth_MB_s", "verified"]


@pytest.mark.parametrize("approach", [1, 2, 3])
@pytest.mark.parametrize("size", FIG_SIZES)
def test_fig4_bandwidth(benchmark, approach, size):
    result = benchmark.pedantic(
        run_block_transfer, args=(approach, size), rounds=1, iterations=1
    )
    assert result.verified
    record("Figure 4: block transfer bandwidth (MB/s)", HEADER,
           [f"A{approach}", size, result.bandwidth_mb_s, result.verified])


def test_fig4_shape(benchmark):
    """At 64 KB the paper's ordering holds: A3 > A2 > A1."""

    def series():
        return {a: run_block_transfer(a, 65536) for a in (1, 2, 3)}

    results = benchmark.pedantic(series, rounds=1, iterations=1)
    assert results[3].bandwidth_mb_s > results[2].bandwidth_mb_s
    assert results[2].bandwidth_mb_s > results[1].bandwidth_mb_s


from repro.bench.cli import pytest_bench

BENCH = pytest_bench("fig4_bandwidth", __doc__)
