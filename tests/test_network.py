"""Links, switches, and the assembled Arctic network."""

import pytest

from repro.common.config import default_config
from repro.net.link import Link
from repro.net.network import ArcticNetwork
from repro.net.packet import PRIORITY_HIGH, PRIORITY_LOW, Packet, PacketKind


def _pkt(src, dst, nbytes, priority=PRIORITY_LOW, route=None):
    p = Packet(PacketKind.DATA, src, dst, dst_queue=0,
               payload=bytes(nbytes), priority=priority)
    if route is not None:
        p.route = route
    return p


# -- links --------------------------------------------------------------------

def test_link_serialization_time(engine, config):
    link = Link(engine, config.network, "l")
    done = []

    def sender():
        yield from link.send(_pkt(0, 1, 88))  # 96 bytes on the wire
        done.append(engine.now)

    engine.process(sender())
    engine.run()
    assert done[0] == pytest.approx(96 * 6.25)


def test_link_delivers_after_wire_latency(engine, config):
    link = Link(engine, config.network, "l")
    got = []

    def sender():
        yield from link.send(_pkt(0, 1, 0))

    def receiver():
        yield link.receive(PRIORITY_LOW)
        got.append(engine.now)

    engine.process(sender())
    engine.process(receiver())
    engine.run()
    assert got[0] == pytest.approx(8 * 6.25 + config.network.wire_latency_ns)


def test_link_priority_wins_arbitration(engine, config):
    link = Link(engine, config.network, "l")
    order = []

    def hog():
        yield from link.send(_pkt(0, 1, 88))  # occupies the wire first

    def low():
        yield engine.timeout(1.0)
        yield from link.send(_pkt(0, 1, 0, PRIORITY_LOW))
        order.append("low")

    def high():
        yield engine.timeout(2.0)  # requests after low, but wins
        yield from link.send(_pkt(0, 1, 0, PRIORITY_HIGH))
        order.append("high")

    engine.process(hog())
    engine.process(low())
    engine.process(high())
    engine.run()
    assert order == ["high", "low"]


def test_link_backpressure(engine, config):
    config.network.buffer_packets = 2
    link = Link(engine, config.network, "l")
    sent = []

    def sender():
        for i in range(4):
            yield from link.send(_pkt(0, 1, 0))
            sent.append(engine.now)

    def late_receiver():
        yield engine.timeout(10_000.0)
        for _ in range(4):
            yield link.receive(PRIORITY_LOW)

    engine.process(sender())
    engine.process(late_receiver())
    engine.run()
    # first two fill the buffer; the rest wait for credits
    assert sent[1] < 10_000.0
    assert sent[2] >= 10_000.0


def test_link_priority_lanes_independent(engine, config):
    config.network.buffer_packets = 1
    link = Link(engine, config.network, "l")
    got = []

    def sender():
        yield from link.send(_pkt(0, 1, 0, PRIORITY_LOW))
        yield from link.send(_pkt(0, 1, 0, PRIORITY_LOW))  # lane full: waits
        yield from link.send(_pkt(0, 1, 0, PRIORITY_HIGH))

    def high_receiver():
        yield link.receive(PRIORITY_HIGH)
        got.append("high")

    engine.process(sender())
    engine.process(high_receiver())
    engine.run(until=100_000.0)
    # the HIGH packet cannot get past the blocked LOW sends in this
    # single sender process, but the low lane's fullness never consumed
    # the high lane's credits
    assert link.pending(PRIORITY_LOW) == 1


def test_bad_priority_rejected(engine, config):
    link = Link(engine, config.network, "l")
    p = _pkt(0, 1, 0)
    p.priority = 5

    def sender():
        yield from link.send(p)

    from repro.common.errors import SimulationError
    with pytest.raises(SimulationError):
        engine.run_until_triggered(engine.process(sender()))


# -- assembled network -------------------------------------------------------------

def _net(engine, n, config=None):
    config = config or default_config(n_nodes=max(n, 2))
    return ArcticNetwork(engine, config.network, n, seed=3)


def test_delivery_all_pairs(engine):
    net = _net(engine, 4)
    got = []

    def sender(s, d):
        pkt = _pkt(s, d, 16, route=net.route(s, d))
        pkt.payload = bytes([s, d] * 8)
        yield from net.port(s).inject(pkt)

    def receiver(d, count):
        for _ in range(count):
            pkt = yield net.port(d).receive(PRIORITY_LOW)
            got.append((pkt.src, pkt.dst, pkt.payload[:2]))

    for s in range(4):
        for d in range(4):
            if s != d:
                engine.process(sender(s, d))
    for d in range(4):
        engine.process(receiver(d, 3))
    engine.run()
    assert len(got) == 12
    for src, dst, head in got:
        assert head == bytes([src, dst])


def test_inject_requires_route(engine):
    net = _net(engine, 2)

    def sender():
        yield from net.port(0).inject(_pkt(0, 1, 0))

    from repro.common.errors import SimulationError
    with pytest.raises(SimulationError):
        engine.run_until_triggered(engine.process(sender()))


def test_self_send_rejected(engine):
    net = _net(engine, 2)

    def sender():
        yield from net.port(0).inject(_pkt(0, 0, 0, route=[0]))

    from repro.common.errors import SimulationError
    with pytest.raises(SimulationError):
        engine.run_until_triggered(engine.process(sender()))


def test_oversized_packet_rejected(engine):
    net = _net(engine, 2)

    def sender():
        yield from net.port(0).inject(_pkt(0, 1, 89, route=net.route(0, 1)))

    from repro.common.errors import SimulationError
    with pytest.raises(SimulationError):
        engine.run_until_triggered(engine.process(sender()))


def test_fifo_within_priority(engine):
    net = _net(engine, 2)
    got = []

    def sender():
        for i in range(8):
            pkt = _pkt(0, 1, 8, route=net.route(0, 1))
            pkt.payload = bytes([i] * 8)
            yield from net.port(0).inject(pkt)

    def receiver():
        for _ in range(8):
            pkt = yield net.port(1).receive(PRIORITY_LOW)
            got.append(pkt.payload[0])

    engine.process(sender())
    engine.process(receiver())
    engine.run()
    assert got == list(range(8))


def test_forward_counters(engine):
    net = _net(engine, 4)

    def sender():
        pkt = _pkt(0, 3, 8, route=net.route(0, 3))
        yield from net.port(0).inject(pkt)

    def receiver():
        yield net.port(3).receive(PRIORITY_LOW)

    engine.process(sender())
    engine.process(receiver())
    engine.run()
    assert net.total_packets_forwarded() == net.topology.hop_count(0, 3)
    assert net.max_link_utilization() > 0
