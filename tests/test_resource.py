"""Resources: FIFO grants, priority arbitration, utilization accounting."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.resource import PriorityResource, Resource


def test_grant_when_free(engine):
    res = Resource(engine)
    ev = res.request()
    assert ev.triggered
    assert res.in_use == 1


def test_fifo_grant_order(engine):
    res = Resource(engine)
    order = []

    def user(name, hold):
        yield res.request()
        order.append(("got", name, engine.now))
        yield engine.timeout(hold)
        res.release()

    for i in range(3):
        engine.process(user(i, 10.0))
    engine.run()
    assert [x[1] for x in order] == [0, 1, 2]
    assert [x[2] for x in order] == [0.0, 10.0, 20.0]


def test_capacity_two(engine):
    res = Resource(engine, capacity=2)
    times = []

    def user(hold):
        yield res.request()
        times.append(engine.now)
        yield engine.timeout(hold)
        res.release()

    for _ in range(4):
        engine.process(user(10.0))
    engine.run()
    assert times == [0.0, 0.0, 10.0, 10.0]


def test_release_idle_rejected(engine):
    res = Resource(engine)
    with pytest.raises(SimulationError):
        res.release()


def test_using_helper(engine):
    res = Resource(engine)

    def user():
        yield from res.using(25.0)
        return engine.now

    p = engine.process(user())
    assert engine.run_until_triggered(p) == 25.0
    assert res.in_use == 0


def test_utilization(engine):
    res = Resource(engine)

    def user():
        yield from res.using(40.0)
        yield engine.timeout(60.0)

    p = engine.process(user())
    engine.run_until_triggered(p)
    assert res.busy_time() == pytest.approx(40.0)
    assert res.utilization() == pytest.approx(0.4)


def test_priority_grant_order(engine):
    res = PriorityResource(engine)
    order = []

    def holder():
        yield res.request(0)
        yield engine.timeout(10.0)
        res.release()

    def waiter(name, priority):
        yield engine.timeout(1.0)  # queue up behind the holder
        yield res.request(priority)
        order.append(name)
        res.release()

    engine.process(holder())
    engine.process(waiter("low", 5))
    engine.process(waiter("high", 0))
    engine.process(waiter("mid", 2))
    engine.run()
    assert order == ["high", "mid", "low"]


def test_priority_fifo_among_equals(engine):
    res = PriorityResource(engine)
    order = []

    def holder():
        yield res.request(0)
        yield engine.timeout(5.0)
        res.release()

    def waiter(name):
        yield engine.timeout(1.0)
        yield res.request(1)
        order.append(name)
        res.release()

    engine.process(holder())
    for name in ("a", "b", "c"):
        engine.process(waiter(name))
    engine.run()
    assert order == ["a", "b", "c"]


def test_queue_length(engine):
    res = Resource(engine)
    res.request()
    res.request()
    res.request()
    assert res.queue_length == 2


def test_capacity_must_be_positive(engine):
    with pytest.raises(SimulationError):
        Resource(engine, capacity=0)
