"""The diff-ing update-based shared memory extension (§5)."""

import pytest

import repro
from repro.mp.basic import BasicPort
from repro.niu.diffunit import DiffUnit
from repro.shm.update import UpdateRegion

BASE = 0x50000
SIZE = 4096


# -- the diff unit in isolation ------------------------------------------------

def _unit(engine):
    return DiffUnit(engine, BASE, SIZE, line_bytes=32)


def _run(engine, gen):
    return engine.run_until_triggered(engine.process(gen))


def test_diff_against_zero_twin(engine):
    unit = _unit(engine)

    def body():
        data = b"\x01" * 8 + bytes(24)
        return (yield from unit.diff(0, data))

    runs = _run(engine, body())
    assert runs == [(0, b"\x01" * 8)]


def test_diff_no_change_empty(engine):
    unit = _unit(engine)

    def body():
        yield from unit.diff(0, bytes(32))
        return (yield from unit.diff(0, bytes(32)))

    assert _run(engine, body()) == []


def test_diff_merges_adjacent_words(engine):
    unit = _unit(engine)

    def body():
        data = bytes(8) + b"\x02" * 16 + bytes(8)
        return (yield from unit.diff(0, data))

    runs = _run(engine, body())
    assert runs == [(8, b"\x02" * 16)]


def test_diff_splits_separate_runs(engine):
    unit = _unit(engine)

    def body():
        data = b"\x03" * 8 + bytes(16) + b"\x04" * 8
        return (yield from unit.diff(0, data))

    runs = _run(engine, body())
    assert runs == [(0, b"\x03" * 8), (24, b"\x04" * 8)]


def test_diff_updates_twin(engine):
    unit = _unit(engine)

    def body():
        yield from unit.diff(0, b"\x05" * 32)
        # second diff against the updated twin: only the new change shows
        return (yield from unit.diff(0, b"\x06" * 8 + b"\x05" * 24))

    runs = _run(engine, body())
    assert runs == [(0, b"\x06" * 8)]
    assert unit.twin_of(0) == b"\x06" * 8 + b"\x05" * 24


def test_diff_timing(engine):
    unit = _unit(engine)

    def body():
        yield from unit.diff(0, bytes(32))

    _run(engine, body())
    assert engine.now == pytest.approx(4 * unit.compare_ns_per_beat)


def test_dirty_tracking():
    from repro.sim.engine import Engine
    unit = _unit(Engine())
    unit.mark_dirty(BASE + 5)
    unit.mark_dirty(BASE + 40)
    unit.mark_dirty(BASE + 33)  # same line as 40
    assert unit.take_dirty() == [0, 1]
    assert unit.take_dirty() == []


def test_bad_geometry(engine):
    from repro.common.errors import AddressError
    with pytest.raises(AddressError):
        DiffUnit(engine, BASE + 1, SIZE, 32)
    unit = _unit(engine)
    with pytest.raises(AddressError):
        unit.mark_dirty(BASE - 1)
    with pytest.raises(AddressError):
        unit.line_addr(unit.n_lines)


# -- the full mechanism ----------------------------------------------------------

@pytest.fixture
def rig():
    machine = repro.StarTVoyager(repro.default_config(n_nodes=3))
    region = UpdateRegion(machine, base=BASE, size=SIZE)
    ports = [BasicPort(machine.node(n), 0, 0) for n in range(3)]
    return machine, region, ports


def _settle(machine):
    machine.run(until=machine.now + 500_000)


def test_release_propagates_to_all_peers(rig):
    machine, region, ports = rig

    def writer(api):
        yield from api.store(region.addr(0), b"released")
        yield from region.release(api, ports[0], notify_queue=0)

    machine.run_until(machine.spawn(0, writer), limit=1e9)
    _settle(machine)
    for n in range(3):
        assert region.peek(n, 0, 8) == b"released"


def test_no_release_no_propagation(rig):
    machine, region, ports = rig

    def writer(api):
        yield from api.store(region.addr(0), b"unshared")

    machine.run_until(machine.spawn(0, writer), limit=1e9)
    _settle(machine)
    assert region.peek(0, 0, 8) == b"unshared"  # local only
    assert region.peek(1, 0, 8) == bytes(8)


def test_multiple_writers_merge(rig):
    """The defining property: disjoint writes to ONE line from two nodes
    merge everywhere instead of one overwriting the other."""
    machine, region, ports = rig

    def w0(api):
        yield from api.store(region.addr(0), b"N0N0N0N0")
        yield from region.release(api, ports[0], notify_queue=0)

    def w1(api):
        yield from api.store(region.addr(16), b"N1N1N1N1")
        yield from region.release(api, ports[1], notify_queue=0)

    machine.run_all([machine.spawn(0, w0), machine.spawn(1, w1)], limit=1e9)
    _settle(machine)
    expected = b"N0N0N0N0" + bytes(8) + b"N1N1N1N1" + bytes(8)
    for n in range(3):
        assert region.peek(n, 0, 32) == expected


def test_only_changed_words_travel(rig):
    machine, region, ports = rig

    def writer(api):
        yield from api.store(region.addr(0), b"x" * 8)  # 8 of 32 bytes
        yield from region.release(api, ports[0], notify_queue=0)

    machine.run_until(machine.spawn(0, writer), limit=1e9)
    _settle(machine)
    unit = region.units[0]
    assert unit.bytes_saved >= 24  # the untouched 24 bytes did not travel


def test_repeat_release_sends_nothing_new(rig):
    machine, region, ports = rig

    def writer(api):
        yield from api.store(region.addr(64), b"once....")
        yield from region.release(api, ports[0], notify_queue=0)
        sent_before = machine.node(0).ctrl.stats.counter(
            "ctrl0.msgs_sent").value
        yield from region.release(api, ports[0], notify_queue=0)
        return sent_before

    machine.run_until(machine.spawn(0, writer), limit=1e9)
    _settle(machine)
    # second release had no dirty lines: twins unchanged
    assert region.units[0].take_dirty() == []


def test_rewrite_after_release_redetected(rig):
    """The release FLUSH invalidates the L2 copy, so the next write
    re-acquires ownership and is tracked again."""
    machine, region, ports = rig

    def writer(api):
        yield from api.store(region.addr(0), b"first...")
        yield from region.release(api, ports[0], notify_queue=0)
        yield from api.store(region.addr(0), b"second..")
        yield from region.release(api, ports[0], notify_queue=0)

    machine.run_until(machine.spawn(0, writer), limit=1e9)
    _settle(machine)
    for n in range(3):
        assert region.peek(n, 0, 8) == b"second.."


def test_needs_two_peers():
    machine = repro.StarTVoyager(repro.default_config(n_nodes=2))
    from repro.common.errors import ProgramError
    with pytest.raises(ProgramError):
        UpdateRegion(machine, base=BASE, size=SIZE, nodes=[0])
