"""Destination translation and receive-queue caching."""

import pytest

from repro.common.errors import TranslationError
from repro.mem.sram import DualPortedSRAM
from repro.niu.translation import (
    RxQueueCache,
    TranslationEntry,
    TranslationTable,
    decode_entry,
    encode_entry,
)


def test_entry_roundtrip():
    e = TranslationEntry(True, dst_node=300, dst_queue=7, priority=1)
    out = decode_entry(encode_entry(e))
    assert (out.valid, out.dst_node, out.dst_queue, out.priority) == \
        (True, 300, 7, 1)


def test_invalid_entry_roundtrip():
    out = decode_entry(encode_entry(TranslationEntry(False, 0, 0, 0)))
    assert not out.valid


def test_decode_wrong_size():
    with pytest.raises(TranslationError):
        decode_entry(b"123")


@pytest.fixture
def table(engine):
    ssram = DualPortedSRAM(engine, 4096, access_ns=1.0)
    return TranslationTable(ssram, base=0, entries=16)


def test_install_lookup(table):
    table.install(5, TranslationEntry(True, 2, 3, 0))
    e = table.lookup(5)
    assert (e.dst_node, e.dst_queue) == (2, 3)


def test_lookup_invalid_raises(table):
    with pytest.raises(TranslationError):
        table.lookup(7)  # never installed


def test_invalidate(table):
    table.install(4, TranslationEntry(True, 1, 1, 0))
    table.invalidate(4)
    with pytest.raises(TranslationError):
        table.lookup(4)


def test_index_bounds(table):
    with pytest.raises(TranslationError):
        table.install(16, TranslationEntry(True, 0, 0, 0))
    with pytest.raises(TranslationError):
        table.lookup(-1)


# -- rx queue cache ------------------------------------------------------------

def test_cache_bind_lookup():
    c = RxQueueCache(n_hw=4, n_logical=64)
    c.bind(10, 2)
    assert c.lookup(10) == 2
    assert c.hits == 1


def test_cache_miss_counts():
    c = RxQueueCache(4, 64)
    assert c.lookup(33) is None
    assert c.misses == 1


def test_rebind_slot_evicts_old():
    c = RxQueueCache(4, 64)
    c.bind(10, 2)
    c.bind(11, 2)  # same slot: 10 evicted
    assert c.lookup(10) is None
    assert c.lookup(11) == 2


def test_rebind_logical_moves():
    c = RxQueueCache(4, 64)
    c.bind(10, 1)
    c.bind(10, 3)
    assert c.lookup(10) == 3
    assert c.resident() == {10: 3}


def test_unbind():
    c = RxQueueCache(4, 64)
    c.bind(10, 0)
    c.unbind(10)
    assert c.lookup(10) is None


def test_bounds():
    c = RxQueueCache(4, 64)
    with pytest.raises(TranslationError):
        c.bind(64, 0)
    with pytest.raises(TranslationError):
        c.bind(0, 4)
    with pytest.raises(TranslationError):
        RxQueueCache(8, 4)
