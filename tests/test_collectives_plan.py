"""Pure collective plans: spanning trees, schedules, ops, wire format."""

import pytest

from repro.collectives import wire
from repro.collectives.plan import (OPS, binomial_tree, kary_tree, op_by_code,
                                    op_by_name, recursive_doubling)
from repro.common.errors import ProgramError


# -- operators ---------------------------------------------------------------


def test_op_codes_bijective():
    codes = [code for code, _fn in OPS.values()]
    assert len(set(codes)) == len(OPS)
    for name, (code, fn) in OPS.items():
        assert op_by_name(name) == (code, fn)
        assert op_by_code(code) is fn


def test_unknown_ops_rejected():
    with pytest.raises(ProgramError):
        op_by_name("avg")
    with pytest.raises(ProgramError):
        op_by_code(99)


# -- spanning trees -------------------------------------------------------------


@pytest.mark.parametrize("builder", [binomial_tree,
                                     lambda n, r=0: kary_tree(n, r, 2),
                                     lambda n, r=0: kary_tree(n, r, 4)])
@pytest.mark.parametrize("n", [1, 2, 3, 5, 6, 8, 13, 16, 17, 32, 33])
def test_trees_are_spanning(builder, n):
    for root in {0, n // 2, n - 1}:
        plan = builder(n, root)
        plan.validate()  # spanning-tree invariants
        assert plan.parent[root] is None
        assert sum(len(c) for c in plan.children) == n - 1


def test_binomial_depth_logarithmic():
    assert binomial_tree(1).depth() == 0
    assert binomial_tree(2).depth() == 1
    assert binomial_tree(8).depth() == 3
    assert binomial_tree(16).depth() == 4
    # depth is the max popcount of a virtual rank, e.g. 15 = 0b1111
    assert binomial_tree(17).depth() == 4
    assert binomial_tree(32).depth() == 5


def test_kary_depth_logarithmic():
    assert kary_tree(15, k=2).depth() == 3
    assert kary_tree(16, k=2).depth() == 4
    assert kary_tree(21, k=4).depth() == 2


def test_binomial_subtree_contiguous():
    """The property the non-commutative reductions rely on: the subtree
    of virtual rank v spans [v, v + lowbit(v)), so own-first +
    ascending-children folds equal the ascending-rank fold."""
    plan = binomial_tree(16)

    def subtree(r):
        out = [r]
        for c in plan.children[r]:
            out.extend(subtree(c))
        return out

    for v in range(1, 16):
        low = v & -v
        assert sorted(subtree(v)) == list(range(v, v + low))
        # fold order is exactly ascending
        assert subtree(0) == list(range(16)) if v == 1 else True
    assert subtree(0) == list(range(16))


def test_rotation_maps_root():
    plan = binomial_tree(6, root=4)
    assert plan.root == 4
    assert plan.parent[4] is None
    # virtual rank v corresponds to real (v + 4) % 6
    ref = binomial_tree(6, root=0)
    for v in range(1, 6):
        pv = ref.parent[v]
        assert plan.parent[(v + 4) % 6] == (pv + 4) % 6


def test_tree_argument_errors():
    with pytest.raises(ProgramError):
        binomial_tree(0)
    with pytest.raises(ProgramError):
        binomial_tree(4, root=4)
    with pytest.raises(ProgramError):
        kary_tree(4, k=0)


# -- recursive doubling ----------------------------------------------------------


@pytest.mark.parametrize("n", [1, 2, 3, 5, 6, 8, 13, 16, 17, 32])
def test_rd_schedule_covers_everyone(n):
    sched = recursive_doubling(n)
    assert sched.pow2 <= n < 2 * sched.pow2
    extras = [r for r in range(n) if sched.is_extra(r)]
    assert extras == list(range(sched.pow2, n))
    for r in extras:
        # every extra is served by exactly its r - pow2 partner
        assert sched.extra_partner(r - sched.pow2) == r
    for r in range(sched.pow2):
        partners = sched.partners(r)
        assert len(partners) == len(sched.rounds)
        assert all(0 <= p < sched.pow2 and p != r for p in partners)
        # the exchange rounds form a hypercube: r reaches everyone
        reached = {r}
        for d in sched.rounds:
            reached |= {x ^ d for x in reached}
        assert reached == set(range(sched.pow2))


def test_rd_schedule_rejects_empty():
    with pytest.raises(ProgramError):
        recursive_doubling(0)


# -- wire format ----------------------------------------------------------------


def test_coll_wire_roundtrip():
    msg = wire.unpack_coll(wire.pack_coll(
        16, wire.KIND_ALLREDUCE, 3, comm=7, seq=0xDEADBEEF, root=5,
        reply_queue=2, tag=0x8123, data=wire.pack_value(-42)))
    assert (msg.kind, msg.op, msg.comm) == (wire.KIND_ALLREDUCE, 3, 7)
    assert (msg.seq, msg.root, msg.reply_queue) == (0xDEADBEEF, 5, 2)
    assert msg.tag == 0x8123
    assert wire.unpack_value(msg.data) == -42
    assert msg.key == (7, 0xDEADBEEF)


def test_coll_wire_data_cap():
    big = bytes(wire.COLL_MAX_DATA + 1)
    with pytest.raises(ProgramError):
        wire.pack_coll(16, wire.KIND_BCAST, 0, 0, 1, 0, 2, 0x8000, big)


def test_value_packing_signed_64():
    for v in (0, 1, -1, 2**63 - 1, -(2**63)):
        assert wire.unpack_value(wire.pack_value(v)) == v
