"""Statistics: counters, streaming accumulators, busy trackers."""

import math

import pytest

from repro.common.errors import SimulationError
from repro.sim.stats import Accumulator, BusyTracker, Counter, StatsRegistry


def test_counter_increments():
    c = Counter("x")
    c.incr()
    c.incr(5)
    assert c.value == 6
    assert int(c) == 6


def test_counter_rejects_decrease():
    with pytest.raises(SimulationError):
        Counter("x").incr(-1)


def test_accumulator_mean_min_max():
    a = Accumulator("lat")
    for x in (10.0, 20.0, 30.0):
        a.add(x)
    assert a.mean == pytest.approx(20.0)
    assert a.min == 10.0
    assert a.max == 30.0
    assert a.total == 60.0
    assert a.n == 3


def test_accumulator_welford_matches_direct():
    import random

    rng = random.Random(7)
    xs = [rng.uniform(0, 100) for _ in range(500)]
    a = Accumulator("v")
    for x in xs:
        a.add(x)
    mean = sum(xs) / len(xs)
    var = sum((x - mean) ** 2 for x in xs) / len(xs)
    assert a.mean == pytest.approx(mean, rel=1e-9)
    assert a.variance == pytest.approx(var, rel=1e-6)
    assert a.stddev == pytest.approx(math.sqrt(var), rel=1e-6)


def test_accumulator_empty():
    a = Accumulator("empty")
    assert a.mean == 0.0
    assert a.variance == 0.0


def test_busy_tracker_simple(engine):
    b = BusyTracker(engine, "ap")

    def worker():
        b.begin()
        yield engine.timeout(30.0)
        b.end()
        yield engine.timeout(70.0)

    p = engine.process(worker())
    engine.run_until_triggered(p)
    assert b.busy_ns == pytest.approx(30.0)
    assert b.occupancy() == pytest.approx(0.3)


def test_busy_tracker_nesting(engine):
    b = BusyTracker(engine, "sp")

    def worker():
        b.begin()
        yield engine.timeout(10.0)
        b.begin()  # nested
        yield engine.timeout(10.0)
        b.end()
        yield engine.timeout(10.0)
        b.end()

    p = engine.process(worker())
    engine.run_until_triggered(p)
    assert b.busy_ns == pytest.approx(30.0)  # no double counting


def test_busy_tracker_open_section_counts(engine):
    b = BusyTracker(engine, "x")

    def worker():
        b.begin()
        yield engine.timeout(40.0)

    engine.process(worker())
    engine.run()
    assert b.current() == pytest.approx(40.0)


def test_busy_end_without_begin(engine):
    with pytest.raises(SimulationError):
        BusyTracker(engine, "x").end()


def test_registry_reuses_and_reports(engine):
    reg = StatsRegistry(engine)
    reg.counter("a.b").incr(3)
    assert reg.counter("a.b").value == 3  # same instance
    reg.accumulator("lat").add(5.0)
    reg.busy_tracker("cpu")
    report = reg.report()
    assert report["count.a.b"] == 3.0
    assert report["mean.lat"] == 5.0
    assert "busy_ns.cpu" in report
    assert set(reg.names()) == {"a.b", "lat", "cpu"}
