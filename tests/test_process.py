"""Processes: fork/join, return values, interrupts, misuse."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.process import Interrupt


def test_return_value_via_join(engine):
    def child():
        yield engine.timeout(5.0)
        return "result"

    def parent():
        value = yield engine.process(child())
        return value

    p = engine.process(parent())
    assert engine.run_until_triggered(p) == "result"


def test_fork_join_many(engine):
    def child(n):
        yield engine.timeout(float(n))
        return n * n

    def parent():
        children = [engine.process(child(n)) for n in (3, 1, 2)]
        values = yield engine.all_of(children)
        return values

    p = engine.process(parent())
    assert engine.run_until_triggered(p) == [9, 1, 4]


def test_is_alive(engine):
    def body():
        yield engine.timeout(10.0)

    p = engine.process(body())
    assert p.is_alive
    engine.run()
    assert not p.is_alive


def test_interrupt_raises_inside(engine):
    caught = []

    def body():
        try:
            yield engine.timeout(1000.0)
        except Interrupt as exc:
            caught.append(exc.cause)

    p = engine.process(body())
    engine.run(until=10.0)
    p.interrupt("stop now")
    engine.run()
    assert caught == ["stop now"]


def test_interrupt_finished_process_rejected(engine):
    def body():
        yield engine.timeout(1.0)

    p = engine.process(body())
    engine.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_non_generator_rejected(engine):
    with pytest.raises(SimulationError, match="generator"):
        engine.process(lambda: None)  # type: ignore[arg-type]


def test_bad_yield_fails_process(engine):
    def body():
        yield 42  # not an Event

    engine.process(body())
    with pytest.raises(SimulationError):
        engine.run()


def test_child_failure_propagates_to_parent(engine):
    def child():
        yield engine.timeout(1.0)
        raise ValueError("inner")

    def parent():
        try:
            yield engine.process(child())
        except ValueError:
            return "handled"
        return "not handled"

    p = engine.process(parent())
    assert engine.run_until_triggered(p) == "handled"
