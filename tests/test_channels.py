"""Express-message token channels."""

import pytest

import repro
from repro.lib.channels import TokenChannel


@pytest.fixture
def m2():
    return repro.StarTVoyager(repro.default_config(n_nodes=2))


def test_token_roundtrip(m2):
    c0, c1 = TokenChannel(m2, 0), TokenChannel(m2, 1)

    def sender(api):
        yield from c0.send(api, 1, channel=5, value=0xABCD1234)

    def receiver(api):
        return (yield from c1.recv(api, channel=5))

    m2.spawn(0, sender)
    src, value = m2.run_until(m2.spawn(1, receiver), limit=1e8)
    assert (src, value) == (0, 0xABCD1234)


def test_channel_demultiplexing(m2):
    c0, c1 = TokenChannel(m2, 0), TokenChannel(m2, 1)

    def sender(api):
        yield from c0.send(api, 1, channel=1, value=111)
        yield from c0.send(api, 1, channel=2, value=222)
        yield from c0.send(api, 1, channel=1, value=112)

    def receiver(api):
        # ask for channel 2 first: channel-1 tokens get stashed
        _s, v2 = yield from c1.recv(api, channel=2)
        _s, v1a = yield from c1.recv(api, channel=1)
        _s, v1b = yield from c1.recv(api, channel=1)
        return v2, v1a, v1b

    m2.spawn(0, sender)
    assert m2.run_until(m2.spawn(1, receiver), limit=1e8) == (222, 111, 112)


def test_value_bounds(m2):
    c0 = TokenChannel(m2, 0)

    def prog(api):
        yield from c0.send(api, 1, channel=300, value=0)

    from repro.common.errors import SimulationError
    with pytest.raises(SimulationError):
        m2.run_until(m2.spawn(0, prog), limit=1e7)

    def prog2(api):
        yield from c0.send(api, 1, channel=0, value=1 << 33)

    with pytest.raises(SimulationError):
        m2.run_until(m2.spawn(0, prog2), limit=1e7)


def test_many_tokens_in_order(m2):
    c0, c1 = TokenChannel(m2, 0), TokenChannel(m2, 1)

    def sender(api):
        for i in range(30):
            yield from c0.send(api, 1, channel=0, value=i)

    def receiver(api):
        out = []
        for _ in range(30):
            _s, v = yield from c1.recv(api, channel=0)
            out.append(v)
        return out

    m2.spawn(0, sender)
    assert m2.run_until(m2.spawn(1, receiver), limit=1e9) == list(range(30))
