"""Smoke tests: every shipped example must run and self-verify.

Each example prints its own correctness evidence; these tests run them
in-process (import + main) and check the key lines, so a regression in
any public API surfaces here even if no unit test covers the exact
composition an example uses.
"""

import importlib.util
import io
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run_example(name: str) -> str:
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)  # type: ignore[union-attr]
    out = io.StringIO()
    with redirect_stdout(out):
        module.main()
    return out.getvalue()


def test_quickstart():
    out = _run_example("quickstart")
    assert "basic: hello node 1" in out
    assert "PING!" in out
    assert "48B attachment" in out
    assert "all three received" in out


def test_block_transfer():
    out = _run_example("block_transfer")
    for approach in "12345":
        assert f"\n        {approach} " in out or f"{approach} " in out
    assert out.count(" y") >= 5  # every approach verified


def test_mpi_pingpong():
    out = _run_example("mpi_pingpong")
    assert "allreduce(sum of squares)=30" in out
    assert "hello from root" in out


def test_custom_mechanism():
    out = _run_example("custom_mechanism")
    assert "node 1 sees: reflect0 / reflect1" in out
    assert "node 2 sees: reflect0 / reflect1" in out


def test_update_region():
    out = _run_example("update_region")
    assert "['r0n0', 'r0n1', 'r0n2']" in out
    assert "saved" in out


def test_matmul():
    out = _run_example("matmul")
    assert "CORRECT" in out
    assert "hardware block transfers used: 6" in out


@pytest.mark.slow
def test_scoma_stencil():
    out = _run_example("scoma_stencil")
    assert "monotone (smoothing preserved order): True" in out
