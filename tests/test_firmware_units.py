"""Firmware internals: DMA paging, BT2 dispatcher, arm handler, protocol
packing."""

import pytest

import repro
from repro.firmware import proto
from repro.firmware.blockxfer import pack_bt45_arm, unpack_bt45_arm
from repro.firmware.dma import split_pages
from repro.niu.clssram import CLS_PENDING


# -- split_pages ---------------------------------------------------------------

def test_split_single_piece():
    assert split_pages(0x1000, 100, 4096) == [(0x1000, 100)]


def test_split_at_boundary():
    assert split_pages(0x0, 8192, 4096) == [(0x0, 4096), (0x1000, 4096)]


def test_split_unaligned_start():
    pieces = split_pages(0xF00, 8192, 4096)
    assert pieces[0] == (0xF00, 4096 - 0xF00)
    assert sum(n for _a, n in pieces) == 8192
    # every piece stays inside one page
    for addr, n in pieces:
        assert addr // 4096 == (addr + n - 1) // 4096


def test_split_tiny_pieces_pipeline():
    pieces = split_pages(0x0, 4096, 1024)
    assert len(pieces) == 4
    assert all(n == 1024 for _a, n in pieces)


# -- protocol packing ------------------------------------------------------------

def test_dma_req_roundtrip():
    p = proto.pack_dma_req(0x123456, 3, 0xABCDEF, 70000, 7, 4)
    assert proto.unpack_dma_req(p) == (0x123456, 3, 0xABCDEF, 70000, 7, 4)
    assert len(p) <= 88


def test_bt2_chunk_roundtrip():
    p = proto.pack_bt2_chunk(0xDEAD00)
    addr, data = proto.unpack_bt2_chunk(p + b"payload")
    assert addr == 0xDEAD00
    assert data == b"payload"


def test_bt2_done_roundtrip():
    p = proto.pack_bt2_done(7, 123456)
    assert proto.unpack_bt2_done(p) == (7, 123456)


def test_numa_packing_roundtrips():
    assert proto.unpack_numa_rreq(proto.pack_numa_rreq(0x42, 8)) == (0x42, 8)
    assert proto.unpack_numa_rrep(proto.pack_numa_rrep(0x42, b"abc")) == \
        (0x42, b"abc")
    assert proto.unpack_numa_wreq(proto.pack_numa_wreq(0x42, b"xyz")) == \
        (0x42, b"xyz")


def test_scoma_packing_roundtrips():
    assert proto.unpack_scoma_req(proto.pack_scoma_req(True, 0x40, 2)) == \
        (True, 0x40, 2)
    assert proto.unpack_scoma_req(proto.pack_scoma_req(False, 0x40, 2)) == \
        (False, 0x40, 2)
    assert proto.unpack_scoma_inv(proto.pack_scoma_inv(0x80)) == 0x80
    assert proto.unpack_scoma_invack(proto.pack_scoma_invack(0x80)) == 0x80
    assert proto.unpack_scoma_wbreq(proto.pack_scoma_wbreq(0x80, True)) == \
        (0x80, True)
    line = bytes(range(32))
    assert proto.unpack_scoma_wbdata(proto.pack_scoma_wbdata(0x80, line)) == \
        (0x80, line)


def test_wrong_type_rejected():
    from repro.common.errors import FirmwareError
    with pytest.raises(FirmwareError):
        proto.unpack_dma_req(bytes([99]) + bytes(30))
    with pytest.raises(FirmwareError):
        proto.unpack_numa_rreq(bytes([1, 2, 3]))


def test_address_width_guard():
    from repro.common.errors import FirmwareError
    with pytest.raises(FirmwareError):
        proto.pack_numa_rreq(1 << 48, 8)


def test_arm_roundtrip():
    p = pack_bt45_arm(0x700000, 16384, 5)
    assert unpack_bt45_arm(p) == (0x700000, 16384, 5)


# -- arm handler behaviour -----------------------------------------------------------

@pytest.fixture
def m2():
    return repro.StarTVoyager(repro.default_config(n_nodes=2))


def _arm(m2, mode):
    from repro.mp.basic import BasicPort
    from repro.niu.niu import SP_SERVICE_QUEUE, vdst_for

    node = m2.node(1)
    base = node.scoma_base
    port = BasicPort(node, 0, 0)

    def prog(api):
        yield from port.send(api, vdst_for(1, SP_SERVICE_QUEUE),
                             pack_bt45_arm(base, 256, mode))

    m2.run_until(m2.spawn(1, prog), limit=1e8)
    m2.run(until=m2.now + 200_000)
    return node.niu.cls


@pytest.mark.parametrize("mode", [4, 5])
def test_arm_sets_pending(m2, mode):
    cls = _arm(m2, mode)
    for line in range(8):  # 256 bytes = 8 lines
        assert cls.state(line) == CLS_PENDING
    # untouched lines keep their initial state
    assert cls.state(9) != CLS_PENDING or cls.state(9) == 0


def test_arm_mode5_uses_block_machinery(m2):
    """Mode 5 arms via one CmdSetClsState instead of per-line firmware."""
    sp = m2.node(1).sp
    busy4_machine = repro.StarTVoyager(repro.default_config(n_nodes=2))
    _arm(busy4_machine, 4)
    busy4 = busy4_machine.node(1).sp.busy.busy_ns
    _arm(m2, 5)
    busy5 = sp.busy.busy_ns
    assert busy5 < busy4  # hardware bulk set beats the firmware walk


# -- DMA request validation --------------------------------------------------------

def test_unknown_dma_mode_crashes_firmware(m2):
    from repro.mp.basic import BasicPort
    from repro.niu.niu import SP_SERVICE_QUEUE, vdst_for

    port = BasicPort(m2.node(0), 0, 0)

    def prog(api):
        yield from port.send(
            api, vdst_for(0, SP_SERVICE_QUEUE),
            proto.pack_dma_req(0x10000, 1, 0x20000, 64, 7, mode=9))

    m2.run_until(m2.spawn(0, prog), limit=1e8)
    from repro.common.errors import SimulationError
    with pytest.raises(SimulationError):
        m2.run(until=m2.now + 200_000)
