"""Queue state: pointer arithmetic, wrap, overrun protection, masks."""

import pytest

from repro.common.errors import QueueError
from repro.niu.queues import BANK_A, FullPolicy, QueueKind, QueueState


def _q(depth=8, kind=QueueKind.TX):
    return QueueState(kind, 0, BANK_A, base=0x100, depth=depth,
                      entry_bytes=96)


def test_initial_state():
    q = _q()
    assert q.is_empty and not q.is_full
    assert q.occupancy == 0 and q.space == 8
    assert q.enabled


def test_producer_advance():
    q = _q()
    assert q.advance_producer(3) == 3
    assert q.occupancy == 3


def test_consumer_advance():
    q = _q()
    q.advance_producer(5)
    assert q.advance_consumer(2) == 2
    assert q.occupancy == 3


def test_producer_overrun_rejected():
    q = _q(depth=4)
    q.advance_producer(4)
    assert q.is_full
    with pytest.raises(QueueError):
        q.advance_producer(5)


def test_consumer_past_producer_rejected():
    q = _q()
    q.advance_producer(2)
    with pytest.raises(QueueError):
        q.advance_consumer(3)


def test_backwards_rejected():
    q = _q()
    q.advance_producer(4)
    q.advance_consumer(2)
    with pytest.raises(QueueError):
        q.advance_producer(3)
    with pytest.raises(QueueError):
        q.advance_consumer(1)


def test_slot_offsets_wrap():
    q = _q(depth=4)
    assert q.slot_offset(0) == 0x100
    assert q.slot_offset(3) == 0x100 + 3 * 96
    assert q.slot_offset(4) == 0x100  # wraps
    assert q.slot_offset(7) == q.slot_offset(3)


def test_long_run_wraparound():
    q = _q(depth=4)
    for n in range(1, 101):
        q.advance_producer(n)
        q.advance_consumer(n)
    assert q.is_empty
    assert q.producer == q.consumer == 100


def test_depth_must_be_power_of_two():
    with pytest.raises(QueueError):
        _q(depth=6)
    with pytest.raises(QueueError):
        _q(depth=1)


def test_base_alignment():
    with pytest.raises(QueueError):
        QueueState(QueueKind.TX, 0, BANK_A, base=0x101, depth=8)


def test_translate_vdst_masks():
    q = _q()
    q.and_mask = 0x0F
    q.or_mask = 0x30
    # confined to table slots 0x30..0x3F whatever the vdst says
    assert q.translate_vdst(0xFF) == 0x3F
    assert q.translate_vdst(0x02) == 0x32
    assert q.translate_vdst(0xF5) == 0x35


def test_default_masks_identity():
    q = _q()
    assert q.translate_vdst(0xAB) == 0xAB


def test_shutdown():
    q = _q()
    q.shutdown()
    assert not q.enabled


def test_full_policies_exist():
    assert {p.value for p in FullPolicy} == {"drop", "block", "divert"}
