"""Message header encode/decode and validity rules."""

import pytest

from repro.common.errors import QueueError
from repro.niu.msgformat import (
    FLAG_RAW,
    FLAG_TAGON,
    HEADER_BYTES,
    MAX_PAYLOAD,
    TAGON_LARGE_UNITS,
    TAGON_SMALL_UNITS,
    MsgHeader,
    decode_header,
    decode_rx_header,
    encode_header,
    encode_rx_header,
)


def test_roundtrip_plain():
    h = MsgHeader(vdst=0x42, length=17, src_node=3)
    out = decode_header(encode_header(h))
    assert (out.vdst, out.length, out.src_node) == (0x42, 17, 3)
    assert not out.is_raw and not out.has_tagon


def test_roundtrip_tagon():
    h = MsgHeader(flags=FLAG_TAGON, vdst=1, length=8,
                  tagon_bank=1, tagon_offset=0x1230 & ~7,
                  tagon_units=TAGON_LARGE_UNITS)
    out = decode_header(encode_header(h))
    assert out.has_tagon
    assert out.tagon_bank == 1
    assert out.tagon_offset == h.tagon_offset
    assert out.tagon_bytes == 80


def test_tagon_sizes_match_paper():
    # "an additional 1.5 or 2.5 cache-lines of SRAM data"
    assert TAGON_SMALL_UNITS * 16 == 48  # 1.5 x 32B lines
    assert TAGON_LARGE_UNITS * 16 == 80  # 2.5 x 32B lines


def test_raw_flag():
    h = MsgHeader(flags=FLAG_RAW, vdst=5, dst_queue=9, length=0)
    out = decode_header(encode_header(h))
    assert out.is_raw
    assert out.dst_queue == 9


def test_payload_cap():
    with pytest.raises(QueueError):
        MsgHeader(length=MAX_PAYLOAD + 1).validate()


def test_payload_plus_tagon_cap():
    # payload + tagon must fit a single packet payload
    h = MsgHeader(flags=FLAG_TAGON, length=40, tagon_units=TAGON_LARGE_UNITS)
    with pytest.raises(QueueError):
        h.validate()
    h2 = MsgHeader(flags=FLAG_TAGON, length=8, tagon_units=TAGON_LARGE_UNITS)
    h2.validate()  # 8 + 80 = 88: exactly fits


def test_bad_tagon_units():
    with pytest.raises(QueueError):
        MsgHeader(flags=FLAG_TAGON, tagon_units=4).validate()


def test_tagon_alignment():
    with pytest.raises(QueueError):
        MsgHeader(flags=FLAG_TAGON, tagon_offset=13,
                  tagon_units=TAGON_SMALL_UNITS).validate()


def test_decode_wrong_length():
    with pytest.raises(QueueError):
        decode_header(b"short")


def test_rx_header_roundtrip():
    raw = encode_rx_header(src_node=7, length=33, flags=2)
    assert len(raw) == HEADER_BYTES
    assert decode_rx_header(raw) == (7, 33, 2)


def test_rx_header_length_cap():
    with pytest.raises(QueueError):
        encode_rx_header(0, MAX_PAYLOAD + 1)


# ----------------------------------------------------------------------
# wide addressing (node numbers past one byte; machines past 256 nodes)
# ----------------------------------------------------------------------


def test_wide_roundtrip():
    h = MsgHeader(flags=FLAG_RAW, vdst=777, dst_queue=5, length=44,
                  src_node=1023)
    raw = encode_header(h)
    assert len(raw) == HEADER_BYTES
    back = decode_header(raw)
    assert (back.vdst, back.dst_queue, back.length, back.src_node) \
        == (777, 5, 44, 1023)
    assert back.is_raw and not back.has_tagon


def test_wide_requires_raw():
    with pytest.raises(QueueError, match="use RAW"):
        MsgHeader(vdst=300).validate()


def test_wide_excludes_tagon():
    with pytest.raises(QueueError, match="mutually exclusive"):
        MsgHeader(flags=FLAG_RAW | FLAG_TAGON, vdst=300,
                  tagon_units=TAGON_SMALL_UNITS).validate()


def test_wide_node_cap():
    with pytest.raises(QueueError, match="outside two bytes"):
        MsgHeader(flags=FLAG_RAW, vdst=0x10000).validate()


def test_narrow_encoding_unchanged_by_wide_support():
    """Headers for nodes <= 255 must not grow the flag — byte-exact
    compatibility with every pre-wide trace."""
    raw = encode_header(MsgHeader(flags=FLAG_RAW, vdst=255, dst_queue=3,
                                  length=8))
    assert raw[0] == FLAG_RAW and raw[4] == 0 and raw[6] == 0


def test_wide_rx_header_roundtrip():
    raw = encode_rx_header(src_node=900, length=21, flags=2)
    assert len(raw) == HEADER_BYTES
    assert decode_rx_header(raw) == (900, 21, 2)
    # narrow sources keep the legacy single-byte shape
    assert encode_rx_header(17, 21, 2)[4] == 0
