"""The observability layer: histograms, spans, exporters, shims.

Covers the repro.obs subsystem end to end: log-bucket arithmetic at
power-of-two edges, span nesting and Perfetto rendering, the
schema-versioned metrics snapshot, the deprecation shims left behind by
the API consolidation, and the zero-overhead-when-off guarantee on the
Basic-message hot path.
"""

import json
import warnings

import pytest

import repro
from repro.core.blocktransfer import BlockTransferExperiment
from repro.mp.basic import BasicPort
from repro.niu.niu import vdst_for
from repro.obs import (
    Histogram,
    bucket_bounds,
    bucket_index,
    bucket_mid,
    export_perfetto,
    metrics_snapshot,
    trace_events,
)
from repro.sim.trace import NULL_SPAN


@pytest.fixture
def m2():
    return repro.StarTVoyager(repro.default_config(n_nodes=2))


def _pingpong(machine, repeats=6):
    p0 = BasicPort(machine.node(0), 0, 0)
    p1 = BasicPort(machine.node(1), 0, 0)

    def ping(api):
        for _ in range(repeats):
            yield from p0.send(api, vdst_for(1, 0), b"payload")
            yield from p0.recv(api)

    def pong(api):
        for _ in range(repeats):
            yield from p1.recv(api)
            yield from p1.send(api, vdst_for(0, 0), b"payload")

    machine.run_all([machine.spawn(0, ping), machine.spawn(1, pong)],
                    limit=1e9)


# ----------------------------------------------------------------------
# histogram
# ----------------------------------------------------------------------

def test_bucket_edges_at_powers_of_two():
    # 8 sub-buckets per octave: index(2^k) == 8k exactly
    for k in range(0, 20):
        assert bucket_index(float(2 ** k)) == 8 * k
    lo, hi = bucket_bounds(8)
    assert lo == pytest.approx(2.0)
    assert hi == pytest.approx(2.0 * 2 ** 0.125)
    assert lo < bucket_mid(8) < hi


def test_bucket_width_bounds_relative_error():
    h = Histogram("t")
    for x in (3.0, 100.0, 12345.0, 9.9e6):
        h.add(x)
        # a lone sample's percentile is its bucket mid, clamped to the
        # observed range — within one sub-bucket (~9%) of the true value
        assert h.percentile(50) == pytest.approx(x, rel=0.09)
        h = Histogram("t")


def test_histogram_percentiles_uniform():
    h = Histogram("u")
    for i in range(1, 1001):
        h.add(float(i))
    assert h.n == 1000
    assert h.min == 1.0 and h.max == 1000.0
    assert h.p50 == pytest.approx(500.0, rel=0.10)
    assert h.p90 == pytest.approx(900.0, rel=0.10)
    assert h.p99 == pytest.approx(990.0, rel=0.10)
    # percentiles never escape the observed range
    assert h.min <= h.p50 <= h.p90 <= h.p99 <= h.max


def test_histogram_nonpositive_and_empty():
    h = Histogram("e")
    assert h.percentile(50) == 0.0
    h.add(0.0)
    h.add(-5.0)
    assert h.n == 2
    assert h.percentile(50) <= 0.0
    d = h.to_dict()
    assert d["n"] == 2


def test_histogram_merge():
    a, b = Histogram("a"), Histogram("b")
    for i in range(100):
        a.add(float(i + 1))
        b.add(float(i + 101))
    a.merge(b)
    assert a.n == 200
    assert a.max == 200.0
    assert a.p50 == pytest.approx(100.0, rel=0.10)


def test_accumulator_reports_percentiles(m2):
    acc = m2.stats.accumulator("x_ns")
    for v in (10.0, 20.0, 30.0, 40.0):
        acc.add(v)
    assert acc.p50 == pytest.approx(20.0, rel=0.09)
    assert acc.percentile(100) == pytest.approx(40.0, rel=0.09)


def test_stats_report_includes_min_total_and_empty(m2):
    acc = m2.stats.accumulator("seen_ns")
    acc.add(5.0)
    acc.add(15.0)
    m2.stats.accumulator("never_hit_ns")  # registered, no samples
    report = m2.stats.report()
    assert report["min.seen_ns"] == 5.0
    assert report["total.seen_ns"] == 20.0
    assert report["n.never_hit_ns"] == 0.0
    assert "mean.never_hit_ns" not in report


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------

def test_span_nesting_records_both(m2):
    tr = m2.tracer
    tr.enable("niu")

    def prog(api):
        outer = tr.span("niu.outer", node=0, track="t")
        yield from api.compute(100)
        inner = tr.span("niu.inner", node=0, track="t")
        yield from api.compute(100)
        inner.end()
        outer.end()

    m2.run_until(m2.spawn(0, prog))
    spans = tr.spans(kind_prefix="niu.")
    kinds = [s.kind for s in spans]
    assert kinds == ["niu.outer", "niu.inner"]
    outer, inner = spans[0], spans[1]
    assert outer.start <= inner.start and inner.end <= outer.end


def test_span_category_filter(m2):
    tr = m2.tracer
    tr.enable("niu")
    assert tr.span("net.something") is NULL_SPAN
    s = tr.span("niu.something")
    assert s is not NULL_SPAN
    s.end()


def test_machine_traffic_produces_spans(m2):
    m2.obs.enable("niu", "sp", "net")
    # a block transfer exercises every layer, including sP firmware
    BlockTransferExperiment(m2).run(3, 1024)
    assert m2.tracer.spans(kind_prefix="niu.tx")
    assert m2.tracer.spans(kind_prefix="niu.rx")
    assert m2.tracer.spans(kind_prefix="sp.")
    assert m2.tracer.spans(kind_prefix="net.inject")


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------

def test_metrics_snapshot_schema(m2):
    _pingpong(m2)
    snap = metrics_snapshot(m2)
    assert snap["schema"] == "startv.metrics"
    assert snap["schema_version"] == 4
    assert snap["n_nodes"] == 2
    assert snap["shards"] == 1
    assert snap["sim"]["events_executed"] > 0
    assert snap["counters"]["ctrl0.msgs_sent"] >= 6
    lat = snap["accumulators"]["net.latency_ns"]
    for key in ("n", "mean", "min", "max", "p50", "p90", "p99", "p999",
                "stddev"):
        assert key in lat
    # v4: the traffic SLO section exists and is empty when no
    # repro.traffic application ran
    assert snap["traffic"] == {}
    assert set(snap["occupancy"]) == {"0", "1"}
    # v3: the directory section always exists; a messaging-only run has
    # zero protocol traffic and no sharer-occupancy samples
    directory = snap["directory"]
    assert directory["invalidations_sent"] == 0
    assert directory["forwards"] == 0
    assert directory["ack_rounds"] == 0
    assert directory["sharer_occupancy"] is None
    json.dumps(snap)  # JSON-clean without coercion


def test_perfetto_export_valid_json(m2, tmp_path):
    m2.obs.enable("ap", "sp", "niu", "net")
    BlockTransferExperiment(m2).run(3, 1024)
    path = str(tmp_path / "trace.json")
    m2.obs.export_perfetto(path)
    doc = json.loads(open(path).read())
    events = doc["traceEvents"]
    assert events, "trace must not be empty"
    # metadata first, then monotonically sorted timestamps
    ts = [e["ts"] for e in events if e.get("ph") != "M"]
    assert ts == sorted(ts)
    # per-node aP/sP/queue tracks announced as thread metadata
    tracks = {(e["pid"], e["args"]["name"]) for e in events
              if e.get("ph") == "M" and e["name"] == "thread_name"}
    names0 = {name for pid, name in tracks if pid == 0}
    assert "aP" in names0 and "sP" in names0
    assert any(n.startswith("txq") for n in names0)
    durations = [e for e in events if e.get("ph") == "X"]
    assert durations and all(e["dur"] >= 0 for e in durations)


def test_trace_events_without_file(m2):
    m2.obs.enable("niu")
    _pingpong(m2)
    events = trace_events(m2)
    assert any(e.get("ph") == "X" for e in events)
    doc = export_perfetto(m2)
    assert doc["otherData"]["schema"] == "startv.trace"


def test_queue_sampler_counters(m2):
    m2.obs.enable("niu")
    sampler = m2.obs.start_sampler(period_ns=200.0)
    _pingpong(m2)
    m2.obs.stop_samplers()
    series = sampler.series("txq0.depth", node=0)
    assert series, "sampler must record tx queue depth"
    assert all(v >= 0 for _t, v in series)


# ----------------------------------------------------------------------
# finished deprecations
# ----------------------------------------------------------------------

def test_machine_report_removed(m2):
    # the deprecation cycle is over: metrics() is the snapshot, and the
    # flat legacy view lives only on the registry itself
    assert not hasattr(m2, "report")
    assert isinstance(m2.stats.report(), dict)


def test_machine_occupancies_removed(m2):
    def prog(api):
        yield from api.compute(1000)

    m2.run_until(m2.spawn(0, prog))
    assert not hasattr(m2, "occupancies")
    occ = m2.metrics(include_config=False)["occupancy"]
    assert occ["0"]["ap"] > 0.0


def test_ctor_kwargs_removed():
    # the deprecated loose kwargs are gone: MachineConfig owns the fields
    with pytest.raises(TypeError):
        repro.StarTVoyager(repro.default_config(n_nodes=2),
                           install_firmware=False)


def test_config_fields_replace_ctor_kwargs():
    cfg = repro.default_config(n_nodes=2)
    cfg.install_firmware = False
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        m = repro.StarTVoyager(cfg)  # no warning on the new spelling
    assert not m.node(0).sp._handlers


def test_scoma_home_of_validated():
    from repro.common.errors import ConfigError
    cfg = repro.default_config(n_nodes=2)
    cfg.scoma_home_of = [0, 1, 99]
    with pytest.raises(ConfigError):
        cfg.validate()


# ----------------------------------------------------------------------
# zero overhead when off
# ----------------------------------------------------------------------

def test_tracing_off_allocates_no_records(m2):
    assert m2.tracer.active is False
    _pingpong(m2)
    # hot paths ran messages end to end without creating a single record
    assert len(m2.tracer) == 0
    assert m2.tracer.span("niu.tx") is NULL_SPAN


def test_disable_restores_null_path(m2):
    m2.obs.enable("niu")
    assert m2.tracer.active is True
    m2.obs.disable("*")
    assert m2.tracer.active is False
    _pingpong(m2)
    assert len(m2.tracer) == 0
