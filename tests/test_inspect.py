"""Machine introspection output."""

import pytest

import repro
from repro.core.inspect import describe_machine, describe_node


@pytest.fixture(scope="module")
def m2():
    return repro.StarTVoyager(repro.default_config(n_nodes=2))


def test_header_line(m2):
    text = describe_machine(m2)
    assert "2 node(s)" in text
    assert "166 MHz" in text
    assert "160 MB/s" in text


def test_network_summary(m2):
    assert "fat tree" in describe_machine(m2)


def test_single_node_no_network():
    m = repro.StarTVoyager(1)
    assert "network: none" in describe_machine(m)


def test_address_map_regions_listed(m2):
    text = describe_machine(m2)
    for name in ("dram", "dram.scoma", "niu0.ptr", "niu0.asram",
                 "niu0.extx", "niu0.numa"):
        assert name in text


def test_queue_plan_listed(m2):
    lines = describe_node(m2.node(0))
    text = "\n".join(lines)
    assert "tx0:" in text and "tx6:" in text
    assert "logical 7" in text  # the notify queue
    assert "irq" in text  # sP queues interrupt on arrival


def test_handlers_listed(m2):
    text = "\n".join(describe_node(m2.node(0)))
    for handler in ("ptr-window", "sram-window", "express-tx",
                    "express-rx", "numa", "scoma"):
        assert handler in text


def test_firmware_events_listed(m2):
    text = "\n".join(describe_node(m2.node(0)))
    assert "rxmsg" in text
    assert "scoma_miss" in text
    assert "missq" in text


def test_shutdown_flag_shows():
    m = repro.StarTVoyager(2)
    m.node(0).ctrl.tx_queues[0].shutdown()
    assert "SHUTDOWN" in "\n".join(describe_node(m.node(0)))


def test_stable_across_builds():
    a = describe_machine(repro.StarTVoyager(2))
    b = describe_machine(repro.StarTVoyager(2))
    assert a == b
