"""CTRL: transmit engine, translation/protection, receive policies."""

import pytest

import repro
from repro.mp.basic import BasicPort
from repro.niu.msgformat import FLAG_RAW, MsgHeader, encode_header
from repro.niu.niu import SP_PROTOCOL_QUEUE, vdst_for
from repro.niu.queues import FullPolicy, QueueKind


@pytest.fixture
def m2():
    return repro.StarTVoyager(repro.default_config(n_nodes=2))


def _send_raw_entry(machine, node, header, payload=b""):
    """Compose an entry directly in SRAM and bump the producer (bypasses
    the user library so malformed headers can be injected)."""
    ctrl = machine.node(node).ctrl
    q = ctrl.tx_queues[0]
    slot = q.slot_offset(q.producer)
    machine.node(node).niu.asram.poke(slot, header + payload)
    ctrl.tx_producer_update(0, q.producer + 1)


def test_loopback_delivery(m2):
    """A message to a local queue never touches the network."""
    port = BasicPort(m2.node(0), 0, 0)
    net_before = m2.network.total_packets_forwarded()

    def prog(api):
        yield from port.send(api, vdst_for(0, 0), b"to-myself")
        return (yield from port.recv(api))

    src, payload = m2.run_until(m2.spawn(0, prog), limit=1e7)
    assert (src, payload) == (0, b"to-myself")
    assert m2.network.total_packets_forwarded() == net_before


def test_invalid_translation_shuts_queue(m2):
    ctrl = m2.node(0).ctrl
    hdr = MsgHeader(vdst=0xFF, length=0)  # vdst 255: never installed
    _send_raw_entry(m2, 0, encode_header(hdr))
    m2.run(until=m2.now + 10_000)
    assert not ctrl.tx_queues[0].enabled
    # firmware was interrupted
    assert m2.node(0).sp.state.get("protection_log")


def test_raw_message_without_permission_shuts_queue(m2):
    ctrl = m2.node(0).ctrl
    hdr = MsgHeader(flags=FLAG_RAW, vdst=1, dst_queue=0, length=0)
    _send_raw_entry(m2, 0, encode_header(hdr))
    m2.run(until=m2.now + 10_000)
    assert not ctrl.tx_queues[0].enabled


def test_raw_message_with_permission_delivers(m2):
    ctrl = m2.node(0).ctrl
    ctrl.tx_queues[0].allow_raw = True
    port1 = BasicPort(m2.node(1), 0, 0)
    hdr = MsgHeader(flags=FLAG_RAW, vdst=1, dst_queue=0, length=4)
    _send_raw_entry(m2, 0, encode_header(hdr), b"raw!")

    def reader(api):
        return (yield from port1.recv(api))

    src, payload = m2.run_until(m2.spawn(1, reader), limit=1e7)
    assert (src, payload) == (0, b"raw!")
    assert ctrl.tx_queues[0].enabled


def test_and_or_masks_confine_destination(m2):
    """The protection masks redirect whatever vdst the sender names."""
    ctrl = m2.node(0).ctrl
    q = ctrl.tx_queues[0]
    # confine queue 0 to exactly vdst_for(1, 0): AND 0, OR the target
    q.and_mask = 0x00
    q.or_mask = vdst_for(1, 0)
    port0 = BasicPort(m2.node(0), 0, 0)
    port1 = BasicPort(m2.node(1), 0, 0)

    def prog(api):
        # the program *claims* to target node 0's protocol queue...
        yield from port0.send(api, vdst_for(0, SP_PROTOCOL_QUEUE), b"caged")

    def reader(api):
        return (yield from port1.recv(api))

    m2.spawn(0, prog)
    src, payload = m2.run_until(m2.spawn(1, reader), limit=1e7)
    # ...but the mask delivered it to node 1 queue 0
    assert payload == b"caged"


def test_malformed_header_shuts_queue(m2):
    ctrl = m2.node(0).ctrl
    bad = bytes([0x02, 0, 0, 200, 0, 0, 9, 0])  # length 200 is illegal
    _send_raw_entry(m2, 0, bad)
    m2.run(until=m2.now + 10_000)
    assert not ctrl.tx_queues[0].enabled


def test_tx_priority_arbitration(m2):
    """Lower priority value drains first when both queues hold messages."""
    node = m2.node(0)
    ctrl = node.ctrl
    p_low = BasicPort(node, 0, 0)   # will get priority 5
    p_high = BasicPort(node, 1, 1)  # will get priority 0
    ctrl.sysregs.write("tx_priority.0", 5)
    ctrl.sysregs.write("tx_priority.1", 0)
    BasicPort(m2.node(1), 0, 0)
    BasicPort(m2.node(1), 1, 1)

    def stuff(api):
        # compose into both queues before CTRL can drain either: the
        # pointer updates land back to back
        for i in range(3):
            yield from p_low.send(api, vdst_for(1, 0), b"L%d" % i)
        for i in range(3):
            yield from p_high.send(api, vdst_for(1, 1), b"H%d" % i)

    m2.run_until(m2.spawn(0, stuff), limit=1e8)
    m2.run(until=m2.now + 100_000)
    # check CTRL message accounting: both delivered
    assert ctrl.tx_queues[0].messages == 3
    assert ctrl.tx_queues[1].messages == 3


def test_sysreg_hook_updates_priority(m2):
    ctrl = m2.node(0).ctrl
    ctrl.sysregs.write("tx_priority.2", 7)
    assert ctrl.tx_queues[2].priority == 7


def test_rx_drop_policy(m2):
    node1 = m2.node(1)
    q = node1.niu.ap_rx_slot(0)
    q.full_policy = FullPolicy.DROP
    port0 = BasicPort(m2.node(0), 0, 0)

    def flood(api):
        for i in range(q.depth + 4):
            yield from port0.send(api, vdst_for(1, 0), bytes([i]))

    m2.run_until(m2.spawn(0, flood), limit=1e9)
    m2.run(until=m2.now + 300_000)
    assert q.drops >= 1
    assert q.occupancy == q.depth


def test_rx_divert_policy_to_missq(m2):
    node1 = m2.node(1)
    q = node1.niu.ap_rx_slot(0)
    q.full_policy = FullPolicy.DIVERT
    port0 = BasicPort(m2.node(0), 0, 0)

    def flood(api):
        for i in range(q.depth + 3):
            yield from port0.send(api, vdst_for(1, 0), bytes([i]))

    m2.run_until(m2.spawn(0, flood), limit=1e9)
    m2.run(until=m2.now + 300_000)
    # the overflow went to firmware; with no DRAM ring declared for
    # logical 0 it is logged as dropped by the miss service
    assert node1.sp.state.get("missq_dropped")


def test_pointer_shadows_track(m2):
    ctrl = m2.node(0).ctrl
    port = BasicPort(m2.node(0), 0, 0)

    def prog(api):
        yield from port.send(api, vdst_for(0, 0), b"x")
        yield from port.recv(api)

    m2.run_until(m2.spawn(0, prog), limit=1e7)
    m2.run(until=m2.now + 10_000)
    q = ctrl.tx_queues[0]
    prod, cons = ctrl.read_shadow(q)
    assert (prod, cons) == (q.producer, q.consumer) == (1, 1)


def test_read_pointer_bounds(m2):
    from repro.common.errors import QueueError
    with pytest.raises(QueueError):
        m2.node(0).ctrl.read_pointer(QueueKind.TX, 99, "producer")
