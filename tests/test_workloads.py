"""The synthetic workload generators (unit level)."""


import repro
from repro.bench.workloads import hotspot, mixed, pipeline, uniform_random


def _run(machine, procs, verify):
    machine.run_all(procs, limit=1e11)
    machine.run(until=machine.now + 500_000)
    return verify()


def test_uniform_random_verifies():
    machine = repro.StarTVoyager(repro.default_config(n_nodes=4))
    procs, verify = uniform_random(machine, messages_per_node=10)
    assert _run(machine, procs, verify)


def test_uniform_random_deterministic_plan():
    """The same seed produces the same traffic plan (and simulated time)."""

    def run(seed):
        machine = repro.StarTVoyager(repro.default_config(n_nodes=4))
        procs, verify = uniform_random(machine, messages_per_node=8,
                                       seed=seed)
        assert _run(machine, procs, verify)
        return machine.now

    assert run(3) == run(3)
    assert run(3) != run(4)  # different plan, different schedule


def test_hotspot_counts_all():
    machine = repro.StarTVoyager(repro.default_config(n_nodes=4))
    procs, verify = hotspot(machine, messages_per_node=12)
    assert _run(machine, procs, verify)


def test_hotspot_custom_hot_node():
    machine = repro.StarTVoyager(repro.default_config(n_nodes=4))
    procs, verify = hotspot(machine, messages_per_node=5, hot_node=2)
    assert _run(machine, procs, verify)


def test_pipeline_transform_chain():
    machine = repro.StarTVoyager(repro.default_config(n_nodes=4))
    procs, verify = pipeline(machine, rounds=6)
    assert _run(machine, procs, verify)


def test_mixed_workload_integrity():
    machine = repro.StarTVoyager(repro.default_config(n_nodes=2))
    procs, verify = mixed(machine)
    assert _run(machine, procs, verify)


def test_print_table_formatting(capsys):
    from repro.bench import print_table

    print_table("My Table", ["a", "long header"], [[1, 2.34567], ["xx", 9]])
    out = capsys.readouterr().out
    assert "== My Table ==" in out
    assert "long header" in out
    assert "2.35" in out  # floats formatted to 2 places
    assert "xx" in out
