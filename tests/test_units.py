"""Unit conversion and alignment helpers."""

import pytest

from repro.common import units


def test_mhz_to_ns_166():
    assert units.mhz_to_ns(166.0) == pytest.approx(6.0241, rel=1e-3)


def test_mhz_to_ns_66():
    assert units.mhz_to_ns(66.0) == pytest.approx(15.1515, rel=1e-3)


def test_mhz_to_ns_rejects_nonpositive():
    with pytest.raises(ValueError):
        units.mhz_to_ns(0)
    with pytest.raises(ValueError):
        units.mhz_to_ns(-5)


def test_arctic_link_serialization():
    # the paper's 160 MB/s/direction link is 6.25 ns per byte
    assert units.mbps_to_ns_per_byte(160.0) == pytest.approx(6.25)


def test_bandwidth_roundtrip():
    rate_bytes_per_ns = 1.0 / units.mbps_to_ns_per_byte(160.0)
    assert units.bytes_per_ns_to_mbps(rate_bytes_per_ns) == pytest.approx(160.0)


def test_mbps_rejects_nonpositive():
    with pytest.raises(ValueError):
        units.mbps_to_ns_per_byte(0)


def test_time_constants():
    assert units.US == 1_000
    assert units.MS == 1_000_000
    assert units.S == 1_000_000_000
    assert units.ns_to_us(2_500.0) == pytest.approx(2.5)


def test_align_down_up():
    assert units.align_down(0x107, 0x100) == 0x100
    assert units.align_up(0x101, 0x100) == 0x200
    assert units.align_up(0x100, 0x100) == 0x100
    assert units.align_down(0x100, 0x100) == 0x100


def test_alignment_rejects_non_power_of_two():
    for fn in (units.align_down, units.align_up, units.is_aligned):
        with pytest.raises(ValueError):
            fn(0x100, 3)
        with pytest.raises(ValueError):
            fn(0x100, 0)


def test_is_aligned():
    assert units.is_aligned(64, 32)
    assert not units.is_aligned(65, 32)


def test_is_power_of_two():
    assert units.is_power_of_two(1)
    assert units.is_power_of_two(4096)
    assert not units.is_power_of_two(0)
    assert not units.is_power_of_two(96)
    assert not units.is_power_of_two(-8)


def test_sizes():
    assert units.KB == 1024
    assert units.MB == 1024 * 1024
