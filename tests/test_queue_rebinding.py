"""Runtime receive-queue rebinding: the software-managed cache fill.

Firmware decides which logical queues are hardware-resident; rebinding
at runtime (evicting one logical queue for another) must redirect
traffic correctly mid-stream — the multitasking scenario §4's
queue-caching design exists for.
"""

import pytest

import repro
from repro.firmware.msg import declare_dram_queue
from repro.mp.basic import BasicPort
from repro.mp.dramq import DramQueueReader
from repro.niu.niu import vdst_for


@pytest.fixture
def m2():
    return repro.StarTVoyager(repro.default_config(n_nodes=2))


def test_rebind_redirects_traffic(m2):
    """Evict logical 3 from its slot and cache logical 9 there instead:
    new traffic to 9 goes hardware, traffic to 3 goes to its DRAM ring."""
    node1 = m2.node(1)
    ctrl = node1.ctrl
    slot = ctrl.rx_cache.resident()[3]
    ring = declare_dram_queue(node1.sp, logical=3, base=0x30000, depth=8)
    reader3 = DramQueueReader(ring)
    # the rebinding itself (firmware would do this on a residency miss
    # policy decision)
    ctrl.rx_cache.bind(9, slot)
    q = ctrl.rx_queues[slot]
    q.logical_id = 9

    port0a = BasicPort(m2.node(0), 0, 0)
    port0b = BasicPort(m2.node(0), 1, 1)
    port9 = BasicPort(node1, 0, 9)

    def sender(api):
        yield from port0a.send(api, vdst_for(1, 9), b"to-nine")
        yield from port0b.send(api, vdst_for(1, 3), b"to-three")

    def recv_hw(api):
        return (yield from port9.recv(api))

    def recv_ring(api):
        return (yield from reader3.recv(api))

    m2.spawn(0, sender)
    hw = m2.spawn(1, recv_hw)
    ring_p = m2.spawn(1, recv_ring)
    results = m2.run_all([hw, ring_p], limit=1e10)
    assert results[0] == (0, b"to-nine")
    assert results[1] == (0, b"to-three")


def test_rebind_preserves_buffered_offset_semantics(m2):
    """Rebinding an *empty* queue is safe; the pointers keep advancing
    monotonically for the new logical owner."""
    node1 = m2.node(1)
    ctrl = node1.ctrl
    port0 = BasicPort(m2.node(0), 0, 0)
    port_before = BasicPort(node1, 0, 0)

    def send1(api):
        yield from port0.send(api, vdst_for(1, 0), b"first")

    def recv1(api):
        return (yield from port_before.recv(api))

    m2.spawn(0, send1)
    assert m2.run_until(m2.spawn(1, recv1), limit=1e9)[1] == b"first"

    slot = ctrl.rx_cache.resident()[0]
    q = ctrl.rx_queues[slot]
    producer_before = q.producer
    ctrl.rx_cache.bind(11, slot)
    q.logical_id = 11
    port_after = BasicPort(node1, 0, 11)

    def send2(api):
        yield from port0.send(api, vdst_for(1, 11), b"second")

    def recv2(api):
        return (yield from port_after.recv(api))

    m2.spawn(0, send2)
    assert m2.run_until(m2.spawn(1, recv2), limit=1e9)[1] == b"second"
    assert q.producer == producer_before + 1


def test_two_mpi_jobs_isolated(m2):
    """Two library-level jobs on the same machine, different queue pairs
    and pids: both make progress, neither sees the other's traffic."""
    from repro.lib.mpi import MiniMPI

    job_a = MiniMPI(m2, tx_index=2, rx_logical=2)
    job_b = MiniMPI(m2, tx_index=3, rx_logical=3)
    for node in m2.nodes:
        node.ctrl.tx_queues[2].owner_pid = 1
        node.niu.ap_rx_slot(2).owner_pid = 1
        node.ctrl.tx_queues[3].owner_pid = 2
        node.niu.ap_rx_slot(3).owner_pid = 2

    def worker(api, job, payload):
        comm = job.rank(api.node_id)
        if api.node_id == 0:
            yield from comm.send(api, 1, payload)
            _s, _t, echo = yield from comm.recv(api, src=1)
            return echo
        _s, _t, data = yield from comm.recv(api, src=0)
        yield from comm.send(api, 0, data)

    procs = [
        m2.spawn(0, worker, job_a, b"job-A-data", pid=1),
        m2.spawn(1, worker, job_a, b"", pid=1),
        m2.spawn(0, worker, job_b, b"job-B-data", pid=2),
        m2.spawn(1, worker, job_b, b"", pid=2),
    ]
    results = m2.run_all(procs, limit=1e10)
    assert results[0] == b"job-A-data"
    assert results[2] == b"job-B-data"
    # every queue is still healthy: no protection violations occurred
    for node in m2.nodes:
        assert node.ctrl.tx_queues[2].enabled
        assert node.ctrl.tx_queues[3].enabled
        assert not node.sp.state.get("protection_log")
