"""Runtime sanitizers (:mod:`repro.analysis.sanitize`).

Every checker must prove it detects a *seeded* violation — a sanitizer
that never fires is indistinguishable from one that is broken — and the
layer as a whole must be metrics-invisible: identical simulated results
with and without checkers installed.
"""

import pytest

import repro
from repro.analysis.sanitize import SANITIZER_NAMES, resolve_sanitizers
from repro.common.config import MachineConfig
from repro.common.errors import ConfigError, DeadlockError, SanitizerError
from repro.firmware.reliable import _Flow
from repro.mp import BasicPort
from repro.niu.clssram import CLS_INVALID, CLS_RO, CLS_RW, ClsAction
from repro.bus.ops import BusOpType
from repro.niu.niu import vdst_for
from repro.shm import ScomaRegion


def machine_with(*names, n_nodes=2):
    return repro.StarTVoyager(
        repro.default_config(n_nodes=n_nodes, sanitize=tuple(names)))


def pingpong(machine):
    """One Basic-message round trip between nodes 0 and 1."""
    port0 = BasicPort(machine.node(0), tx_index=0, rx_logical=0)
    port1 = BasicPort(machine.node(1), tx_index=0, rx_logical=0)

    def node0(api):
        yield from port0.send(api, vdst_for(1, 0), b"ping")
        src, reply = yield from port0.recv(api)
        return src, reply

    def node1(api):
        src, msg = yield from port1.recv(api)
        yield from port1.send(api, vdst_for(0, 0), b"pong-" + msg)

    procs = [machine.spawn(0, node0), machine.spawn(1, node1)]
    return machine.run_all(procs, limit=1e9)


# ----------------------------------------------------------------------
# selection
# ----------------------------------------------------------------------


def test_resolve_accepts_names_strings_and_all():
    assert resolve_sanitizers((), env="") == ()
    assert resolve_sanitizers("credit,queue", env="") == ("credit", "queue")
    assert resolve_sanitizers(("queue", "credit"), env="") == ("credit", "queue")
    assert resolve_sanitizers("all", env="") == SANITIZER_NAMES
    assert resolve_sanitizers((), env="all") == SANITIZER_NAMES


def test_resolve_merges_config_and_env():
    assert resolve_sanitizers("credit", env="deadlock") == ("credit", "deadlock")


def test_resolve_rejects_unknown_names():
    with pytest.raises(ConfigError, match="unknown sanitizer"):
        resolve_sanitizers("credits", env="")


def test_env_variable_installs_layer(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "credit")
    machine = repro.StarTVoyager(repro.default_config(n_nodes=2))
    assert machine.sanitizers is not None
    assert machine.sanitizers.names == ("credit",)


def test_unsanitized_machine_carries_no_checker_state(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    machine = repro.StarTVoyager(repro.default_config(n_nodes=2))
    assert machine.sanitizers is None
    assert machine.engine.drain_hooks == []
    assert machine.node(0).sp.sanitizer is None
    assert machine.node(0).ctrl.cls.sanitizer is None


def test_config_validation_normalizes_sequences():
    cfg = MachineConfig(sanitize=["queue", "credit"])
    cfg.validate()
    assert cfg.sanitize == ("queue", "credit")


# ----------------------------------------------------------------------
# credit conservation
# ----------------------------------------------------------------------


def test_credit_clean_run_balances(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    machine = machine_with("credit")
    pingpong(machine)
    machine.run()  # full drain runs the conservation check
    report = machine.sanitizers.report()["credit"]
    assert report["acquires"] > 0
    assert report["acquires"] == report["returns"]


def test_credit_leak_detected_at_drain():
    machine = machine_with("credit")
    # seed the leak: steal a credit that will never be returned — the
    # signature of a drop path that forgot to hand its credit back
    machine.network.links[0]._credits[0].try_get()
    with pytest.raises(SanitizerError, match="credit leak"):
        machine.run()


def test_credit_double_return_detected():
    machine = machine_with("credit")
    credits = machine.network.links[0]._credits[0]
    # a buggy internal path re-issuing a credit it never held bypasses
    # the pool's capacity gate; the ledger must still catch it
    with pytest.raises(SanitizerError, match="double-return"):
        credits._accept(object())


# ----------------------------------------------------------------------
# queue overwrites + reliable windows
# ----------------------------------------------------------------------


def test_queue_overwrite_of_unconsumed_slot_detected():
    machine = machine_with("queue")
    ctrl = machine.node(0).ctrl
    q = ctrl.tx_queues[0]
    q.producer = q.consumer + 1  # one live, unconsumed entry
    sram = ctrl.asram if q.bank == 0 else ctrl.ssram
    with pytest.raises(SanitizerError, match="overwrites unconsumed entry"):
        sram.backing.write(q.slot_offset(q.consumer), b"\xee")
    q.producer = q.consumer


def test_queue_write_to_consumed_slot_passes():
    machine = machine_with("queue")
    ctrl = machine.node(0).ctrl
    q = ctrl.tx_queues[0]
    sram = ctrl.asram if q.bank == 0 else ctrl.ssram
    sram.backing.write(q.slot_offset(q.consumer), b"\xee")  # empty queue: fine
    assert machine.sanitizers.checker("queue").writes_checked > 0


def test_reliable_window_overflow_detected():
    machine = machine_with("queue")
    sp = machine.node(0).sp
    window = sp.ctrl.config.reliability.window
    flow = _Flow(dst=1, rto=1000.0)
    for seq in range(window + 1):
        flow.pending.append((seq, 0, b"x"))
    san = machine.sanitizers.checker("queue")
    with pytest.raises(SanitizerError, match="unacked segments"):
        san.on_rel_tx(sp, flow)


def test_reliable_window_gap_detected():
    machine = machine_with("queue")
    sp = machine.node(0).sp
    flow = _Flow(dst=1, rto=1000.0)
    flow.pending.append((0, 0, b"x"))
    flow.pending.append((2, 0, b"x"))  # seq 1 went missing from the window
    san = machine.sanitizers.checker("queue")
    with pytest.raises(SanitizerError, match="not consecutive"):
        san.on_rel_tx(sp, flow)


def test_reliable_rx_beyond_horizon_detected():
    machine = machine_with("queue")
    sp = machine.node(0).sp
    window = sp.ctrl.config.reliability.window
    san = machine.sanitizers.checker("queue")
    san.on_rel_rx(sp, src=1, seq=window, expected=0)  # on the horizon: legal
    with pytest.raises(SanitizerError, match="beyond the legal window"):
        san.on_rel_rx(sp, src=1, seq=window + 1, expected=0)


# ----------------------------------------------------------------------
# clsSRAM coherence
# ----------------------------------------------------------------------


def test_coherence_illegal_hardware_transition_detected():
    machine = machine_with("coherence")
    cls = machine.node(0).ctrl.cls
    # reprogram the aBIU table with a nonsense reaction: reads of owned
    # lines silently drop to INVALID
    cls.set_action(BusOpType.READ, CLS_RW, ClsAction(next_state=CLS_INVALID))
    cls.set_state(0, CLS_RW)
    with pytest.raises(SanitizerError, match="illegal clsSRAM hardware"):
        cls.check(BusOpType.READ, cls.addr_of(0))


def test_coherence_downgrading_fill_detected():
    machine = machine_with("coherence")
    cls = machine.node(0).ctrl.cls
    cls.set_state(0, CLS_RW)  # the local aP owns (and modified) the line
    with pytest.raises(SanitizerError, match="illegal clsSRAM fill"):
        cls.set_state(0, CLS_RO, fill=True)  # stale re-grant lands on it


def test_coherence_streaming_refill_and_plain_writes_legal():
    machine = machine_with("coherence")
    cls = machine.node(0).ctrl.cls
    cls.set_state(0, CLS_RW)
    cls.set_state(0, CLS_RW, fill=True)   # straddling chunk re-fill
    cls.set_state(0, CLS_RO)              # protocol downgrade, no data
    cls.set_state(0, CLS_INVALID)
    cls.set_state(0, CLS_RO, fill=True)   # fill onto a non-owned line
    assert machine.sanitizers.report()["coherence"]["fw_checked"] >= 5


def test_coherence_custom_protocol_states_ignored():
    machine = machine_with("coherence")
    cls = machine.node(0).ctrl.cls
    cls.set_state(0, 7)             # experimental protocol state
    cls.set_state(0, CLS_RW, fill=True)
    cls.set_state(0, 9, fill=True)  # leaving S-COMA space is not checked


def test_coherence_clean_scoma_run_passes():
    machine = machine_with("coherence")
    region = ScomaRegion(machine, n_lines=64)
    region.init_data(0, bytes(range(32)))

    def reader(api):
        return (yield from api.load(region.addr(0), 8))

    assert machine.run_until(machine.spawn(1, reader), limit=1e9) \
        == bytes(range(8))
    assert machine.sanitizers.report()["coherence"]["fw_checked"] > 0


# ----------------------------------------------------------------------
# deadlock watchdog
# ----------------------------------------------------------------------


def test_deadlock_detected_with_waitfor_graph():
    machine = machine_with("deadlock")

    def stuck():
        yield machine.engine.event(name="never-fires")

    machine.engine.process(stuck(), name="stuck-waiter")
    with pytest.raises(DeadlockError) as exc:
        machine.run()
    assert "stuck-waiter" in str(exc.value)
    assert "wait-for graph" in str(exc.value)


def test_deadlock_ignores_daemon_service_loops():
    machine = machine_with("deadlock")
    pingpong(machine)
    machine.run()  # only daemon pumps remain blocked: a clean drain


def test_deadlock_names_appear_in_run_until_error():
    machine = machine_with("deadlock")

    def waiter(api):
        yield machine.engine.event(name="nobody-signals")

    proc = machine.spawn(0, waiter)
    with pytest.raises(DeadlockError):
        machine.run_until(proc)


# ----------------------------------------------------------------------
# the layer
# ----------------------------------------------------------------------


def test_all_sanitizers_run_clean_and_report(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    machine = machine_with("all")
    assert machine.sanitizers.names == SANITIZER_NAMES
    pingpong(machine)
    machine.run()
    report = machine.sanitizers.report()
    assert set(report) == set(SANITIZER_NAMES)
    assert report["credit"]["acquires"] > 0
    assert report["queue"]["writes_checked"] > 0


def test_checker_lookup_raises_on_missing(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    machine = machine_with("credit")
    with pytest.raises(ConfigError, match="not installed"):
        machine.sanitizers.checker("queue")


def test_sanitizers_do_not_change_results(monkeypatch):
    """The whole layer must be invisible to the simulation itself."""
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)

    def run(names):
        machine = repro.StarTVoyager(
            repro.default_config(n_nodes=2, sanitize=names))
        result = pingpong(machine)
        machine.run()
        metrics = machine.metrics(include_config=False)
        del metrics["sim"]["wall"]  # host-load noise, not simulated state
        return result, machine.now, metrics

    assert run(()) == run(("all",))


def test_oracle_report_resets_between_runs(monkeypatch):
    """Back-to-back sanitized runs on one machine must report
    independently: the second report reflects only the second run's
    activity, not a running total (the explorer's per-schedule oracle
    depends on this)."""
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    machine = machine_with("all")
    pingpong(machine)
    machine.run()
    first = machine.sanitizers.oracle_report()
    pingpong(machine)
    machine.run()
    second = machine.sanitizers.oracle_report()
    assert first["credit"]["acquires"] > 0
    assert second["credit"]["acquires"] == first["credit"]["acquires"]
    assert second["queue"]["writes_checked"] == first["queue"]["writes_checked"]
    # without the reset the second pass would have doubled the totals
    third = machine.sanitizers.report()
    assert third["credit"]["acquires"] == 0


def test_reset_keeps_live_ledgers(monkeypatch):
    """reset() zeroes activity counters but must not forget live machine
    state: credits still held and coherence mirrors survive, so a leak
    spanning the reset is still caught at the next drain."""
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    machine = machine_with("credit")
    pingpong(machine)
    machine.run()
    checker = machine.sanitizers.checker("credit")
    held_before = {lane.name: lane.held for lane in checker.lanes}
    checker.reset()
    assert {lane.name: lane.held for lane in checker.lanes} == held_before
    assert all(lane.acquires == 0 for lane in checker.lanes)
