"""The systematic interleaving explorer (:mod:`repro.explore`).

Three layers under test: the POR conflict relation (unit), single
schedule execution + trace round-trips (integration), and the two
historical races re-opened as behavior models — the explorer must find
each on the pre-fix model and sweep clean on current code.
"""

import pytest

from repro.common.errors import ConfigError
from repro.explore import (
    GuidedPolicy,
    behavior_model,
    conflict_key,
    dump_trace,
    explore_scenario,
    keys_conflict,
    normalize_choices,
    parse_trace,
    replay_trace,
    run_schedule,
    trace_document,
)

# ----------------------------------------------------------------------
# the conflict relation
# ----------------------------------------------------------------------


def test_same_node_processes_conflict():
    assert keys_conflict(("proc", ("ap0.writer",)), ("proc", ("ctrl0.tx",)))
    assert keys_conflict(("proc", ("sp1.kernel",)), ("ev", "sbiu1.cmd"))


def test_cross_node_processes_commute():
    assert not keys_conflict(("proc", ("ap0.writer",)),
                             ("proc", ("ap1.writer",)))
    assert not keys_conflict(("ev", "ctrl0.rx"), ("ev", "ctrl1.rx"))


def test_identical_keys_always_conflict():
    key = ("store", "switch.inbuf")
    assert keys_conflict(key, key)


def test_unclassifiable_is_conservative():
    assert keys_conflict(None, ("proc", ("ap0.writer",)))
    assert keys_conflict(None, None)
    # names with no index carry no placement info: assume shared
    assert keys_conflict(("ev", "fw.dram"), ("proc", ("ap0.writer",)))


def test_noop_never_conflicts():
    assert not keys_conflict(("noop", ""), None)
    assert not keys_conflict(("noop", ""), ("proc", ("ap0.writer",)))


def test_conflict_key_classifies_heap_kinds():
    class Ev:
        name = "put:niu0.txq"

    assert conflict_key((0.0, 1, 1, Ev(), None)) == ("store", "niu0.txq")


# ----------------------------------------------------------------------
# traces
# ----------------------------------------------------------------------


def test_normalize_strips_canonical_suffix():
    assert normalize_choices([0, 2, 1, 0, 0]) == [0, 2, 1]
    assert normalize_choices([0, 0]) == []


def test_trace_round_trip():
    doc = trace_document("shm_takeover", {}, 2, 0, "all", "kill_grant",
                         [0, 1], verdict={"error_kind": "CheckFailure"})
    parsed = parse_trace(dump_trace(doc))
    assert parsed["scenario"] == "shm_takeover"
    assert parsed["choices"] == [0, 1]
    assert parsed["model"] == "kill_grant"


def test_parse_trace_rejects_wrong_schema():
    with pytest.raises(ConfigError):
        parse_trace('{"schema": "startv.other/v1"}')
    with pytest.raises(ConfigError):
        parse_trace('{"schema": "startv.explore_trace/v1"}')  # no fields


# ----------------------------------------------------------------------
# one schedule
# ----------------------------------------------------------------------


def test_canonical_schedule_is_deterministic():
    a = run_schedule("shm_takeover", n_nodes=2)
    b = run_schedule("shm_takeover", n_nodes=2)
    assert a.ok and b.ok
    assert a.schedule_hash == b.schedule_hash
    assert a.snapshot == b.snapshot
    assert len(a.decisions) > 0


def test_liveness_budget_flags_nonquiescing_schedule():
    out = run_schedule("shm_takeover", n_nodes=2, max_decisions=5)
    assert out.error_kind == "DeadlockError"
    assert "budget" in out.error


def test_explorer_rejects_large_machines():
    with pytest.raises(ConfigError):
        explore_scenario("shm_takeover", n_nodes=8, max_schedules=1)


# ----------------------------------------------------------------------
# the headline sweep: >= 100 distinct schedules, POR pruning, 3 oracles
# ----------------------------------------------------------------------


def test_coherence_sweep_100_distinct_schedules_clean():
    res = explore_scenario("shm_takeover", n_nodes=2, max_schedules=110)
    assert res.schedules_run == 110
    assert len(res.distinct) >= 100
    assert res.pruned > 0          # POR actually pruned commuting pairs
    assert res.clean               # sanitizers + check + invariance
    assert res.baseline is not None


# ----------------------------------------------------------------------
# PR 7 regression: sP service-queue overflow barrier hang
# ----------------------------------------------------------------------

_BURST = {"queue_depth": 2}


def test_overflow_drop_model_found_by_explorer():
    res = explore_scenario("sync_burst", params=_BURST, n_nodes=4,
                           model="overflow_drop", max_schedules=2)
    assert res.violations
    assert res.violations[0].error_kind == "DeadlockError"


def test_overflow_witness_replays_to_same_violation():
    res = explore_scenario("sync_burst", params=_BURST, n_nodes=4,
                           model="overflow_drop", max_schedules=1)
    witness = res.violations[0]
    doc = parse_trace(dump_trace(trace_document(
        "sync_burst", _BURST, 4, 0, "all", "overflow_drop",
        witness.choices)))
    replayed = replay_trace(doc)
    assert replayed.error_kind == "DeadlockError"
    assert replayed.error == witness.error


def test_sync_burst_clean_sweep_on_current_code():
    res = explore_scenario("sync_burst", params=_BURST, n_nodes=2,
                           max_schedules=15)
    assert res.clean
    assert res.baseline.result["all_released"]


# ----------------------------------------------------------------------
# PR 9 regression: FLUSH-vs-KILL Modified-line loss at the home
# ----------------------------------------------------------------------


def test_kill_grant_model_found_by_explorer():
    res = explore_scenario("shm_takeover", n_nodes=2, model="kill_grant",
                           max_schedules=2)
    assert res.violations
    v = res.violations[0]
    assert v.error_kind == "CheckFailure"
    assert "home stores lost" in v.error


def test_kill_grant_witness_replays_deterministically():
    res = explore_scenario("shm_takeover", n_nodes=2, model="kill_grant",
                           max_schedules=1)
    witness = res.violations[0]
    doc = parse_trace(dump_trace(trace_document(
        "shm_takeover", {}, 2, 0, "all", "kill_grant", witness.choices)))
    first, second = replay_trace(doc), replay_trace(doc)
    assert first.error_kind == second.error_kind == "CheckFailure"
    assert first.error == second.error == witness.error


def test_shm_takeover_clean_without_model():
    res = explore_scenario("shm_takeover", n_nodes=2, max_schedules=15)
    assert res.clean
    assert res.baseline.result["ok"]


# ----------------------------------------------------------------------
# behavior models restore their flags
# ----------------------------------------------------------------------


def test_behavior_model_restores_flags():
    import repro.firmware.msg as msg
    import repro.firmware.scoma as scoma

    with behavior_model("overflow_drop"):
        assert msg.REDELIVER_SP_OVERFLOW is False
    assert msg.REDELIVER_SP_OVERFLOW is True
    with behavior_model("kill_grant"):
        assert scoma.GRANT_PRESERVES_HOME_STORES is False
    assert scoma.GRANT_PRESERVES_HOME_STORES is True
    with pytest.raises(ConfigError):
        with behavior_model("unknown"):
            pass


def test_guided_policy_prefix_divergence_detected():
    # a prefix choice past the ready-set size must fail loudly, not
    # silently clamp — that is how stale traces surface
    out = run_schedule("shm_takeover", n_nodes=2, prefix=[99])
    assert out.error_kind == "SimulationError"
    assert "diverged" in out.error


def test_guided_policy_records_decisions():
    policy = GuidedPolicy()
    assert policy.decisions == []
    assert policy.schedule_hash == policy.schedule_hash  # stable
