"""Packets: sizing, routing digits, priorities."""

import pytest

from repro.common.errors import NetworkError
from repro.net.packet import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    Packet,
    PacketKind,
    check_packet_size,
)
from repro.niu.commands import CmdNotify, CmdWriteDram


def _pkt(payload=b"", **kw):
    defaults = dict(kind=PacketKind.DATA, src=0, dst=1, dst_queue=3,
                    payload=payload)
    defaults.update(kw)
    return Packet(**defaults)


def test_wire_bytes_data():
    assert _pkt(b"x" * 40).wire_bytes == 48  # 8 header + 40


def test_wire_bytes_command():
    cmd = CmdWriteDram(0x1000, b"d" * 80)
    p = _pkt(kind=PacketKind.COMMAND, command=cmd)
    assert p.wire_bytes == 8 + 8 + 80  # header + command word + data
    assert p.wire_bytes == 96  # exactly the Arctic maximum


def test_notify_command_wire_bytes():
    cmd = CmdNotify(7, b"abcd")
    p = _pkt(kind=PacketKind.COMMAND, command=cmd)
    assert p.wire_bytes == 8 + 8 + 4


def test_size_check():
    check_packet_size(_pkt(b"x" * 88), 96)  # exactly full: fine
    with pytest.raises(NetworkError):
        check_packet_size(_pkt(b"x" * 89), 96)


def test_route_consumption():
    p = _pkt(route=[2, 3, 0])
    assert p.next_port() == 2
    assert p.next_port() == 3
    assert not p.at_last_hop
    assert p.next_port() == 0
    assert p.at_last_hop
    with pytest.raises(NetworkError):
        p.next_port()


def test_priority_validation():
    _pkt(priority=PRIORITY_HIGH)
    _pkt(priority=PRIORITY_LOW)
    with pytest.raises(NetworkError):
        _pkt(priority=7)


def test_endpoint_validation():
    with pytest.raises(NetworkError):
        Packet(PacketKind.DATA, -1, 0, 0, b"")


def test_sequence_numbers_unique():
    a, b = _pkt(), _pkt()
    assert b.seq == a.seq + 1
