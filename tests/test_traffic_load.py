"""Load generation (`repro.traffic.load`): the determinism contract.

Every schedule must depend only on ``(seed, node, params)`` — that is
what makes the traffic workloads byte-identical across ``--jobs`` and
shard counts — plus the statistical sanity of each arrival shape.
"""

import statistics

import pytest

from repro.common.errors import ConfigError
from repro.traffic.load import (
    MmppArrivals,
    PoissonArrivals,
    TraceRecord,
    ZipfKeys,
    dump_trace,
    load_trace,
    make_kv_trace,
    node_rng,
    node_slice,
)


def test_poisson_schedule_deterministic_per_seed_and_node():
    a = PoissonArrivals(100_000.0, seed=7, node=3).schedule(50)
    b = PoissonArrivals(100_000.0, seed=7, node=3).schedule(50)
    assert a == b
    assert PoissonArrivals(100_000.0, seed=8, node=3).schedule(50) != a
    assert PoissonArrivals(100_000.0, seed=7, node=4).schedule(50) != a


def test_poisson_schedule_ascending_with_mean_gap():
    rate = 200_000.0
    sched = PoissonArrivals(rate, seed=1, node=0).schedule(400)
    assert all(t1 > t0 for t0, t1 in zip(sched, sched[1:]))
    assert sched[0] >= 0.0
    mean_gap = sched[-1] / len(sched)
    # exponential gaps: the empirical mean sits near 1e9/rate
    assert 0.5 * 1e9 / rate < mean_gap < 2.0 * 1e9 / rate


def test_poisson_start_offset():
    sched = PoissonArrivals(100_000.0, seed=1, start_ns=5_000.0).schedule(5)
    assert sched[0] > 5_000.0


def test_mmpp_deterministic_and_burstier_than_poisson():
    m = MmppArrivals(100_000.0, seed=3, node=1, burst_factor=10.0)
    sched = m.schedule(600)
    assert sched == MmppArrivals(100_000.0, seed=3, node=1,
                                 burst_factor=10.0).schedule(600)
    assert all(t1 > t0 for t0, t1 in zip(sched, sched[1:]))
    # burstiness: the squared coefficient of variation of the
    # inter-arrival gaps must exceed the Poisson baseline (CV^2 = 1)
    def cv2(times):
        gaps = [t1 - t0 for t0, t1 in zip(times, times[1:])]
        mean = statistics.fmean(gaps)
        return statistics.pvariance(gaps) / (mean * mean)

    poisson = PoissonArrivals(100_000.0, seed=3, node=1).schedule(600)
    assert cv2(sched) > 1.3 * cv2(poisson)


def test_arrival_parameter_validation():
    with pytest.raises(ConfigError):
        PoissonArrivals(0.0)
    with pytest.raises(ConfigError):
        MmppArrivals(100.0, burst_factor=0.5)
    with pytest.raises(ConfigError):
        MmppArrivals(100.0, quiet_ns=0.0)


def test_zipf_keys_deterministic_and_skewed():
    draws_a = [ZipfKeys(64, skew=1.1, seed=5, node=2).draw()
               for _ in range(1)]
    keys = ZipfKeys(64, skew=1.1, seed=5, node=2)
    draws = [keys.draw() for _ in range(2000)]
    again = ZipfKeys(64, skew=1.1, seed=5, node=2)
    assert [again.draw() for _ in range(2000)] == draws
    assert all(0 <= k < 64 for k in draws)
    # key 0 is the hottest rank; with skew 1.1 it must dominate the tail
    hot = draws.count(0)
    assert hot > draws.count(32) and hot > len(draws) // 20
    del draws_a


def test_zipf_zero_skew_is_roughly_uniform():
    keys = ZipfKeys(8, skew=0.0, seed=1)
    draws = [keys.draw() for _ in range(4000)]
    counts = [draws.count(k) for k in range(8)]
    assert min(counts) > 300  # uniform expectation is 500 each


def test_make_kv_trace_sorted_sliced_and_op_mixed():
    trace = make_kv_trace(4, 32, 100_000.0, seed=9, put_fraction=0.5,
                          range_fraction=0.25, value_bytes=16)
    assert len(trace) == 4 * 32
    assert trace == sorted(trace, key=lambda r: (r.time_ns, r.node))
    ops = {r.op for r in trace}
    assert ops == {"get", "put", "range"}
    assert all(r.size == 16 for r in trace if r.op == "put")
    assert all(r.size == 0 for r in trace if r.op != "put")
    for node in range(4):
        sub = node_slice(trace, node)
        assert len(sub) == 32
        assert all(r.node == node for r in sub)
        assert sub == sorted(sub, key=lambda r: r.time_ns)


def test_make_kv_trace_seed_separates_runs():
    a = make_kv_trace(4, 16, 100_000.0, seed=0)
    assert make_kv_trace(4, 16, 100_000.0, seed=0) == a
    assert make_kv_trace(4, 16, 100_000.0, seed=1) != a
    # mmpp process draws a different (still deterministic) schedule
    m = make_kv_trace(4, 16, 100_000.0, seed=0, process="mmpp")
    assert m != a
    assert make_kv_trace(4, 16, 100_000.0, seed=0, process="mmpp") == m


def test_make_kv_trace_validation():
    with pytest.raises(ConfigError):
        make_kv_trace(2, 4, 1000.0, put_fraction=0.8, range_fraction=0.4)
    with pytest.raises(ConfigError):
        make_kv_trace(2, 4, 1000.0, process="bogus")


def test_trace_roundtrip():
    trace = make_kv_trace(3, 8, 50_000.0, seed=2, put_fraction=0.5)
    assert load_trace(dump_trace(trace)) == trace
    assert load_trace("") == []
    assert load_trace('[1.5, 0, "get", 7, 0]\n\n') == [
        TraceRecord(1.5, 0, "get", 7, 0)]


def test_node_rng_salt_separates_streams():
    assert node_rng(1, 2, salt=0).random() != node_rng(1, 2, salt=1).random()
    assert node_rng(1, 2, salt=0).random() == node_rng(1, 2, salt=0).random()
