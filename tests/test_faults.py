"""Fault injection and reliable delivery: seeded loss, go-back-N, crash.

Covers the ``repro.faults`` plan/injector pair (seeded drops, corrupt
packets, timed link up/down, sP stalls, node crash) and the firmware
ack/retransmit engine recovering from all of it: exact delivery under
loss, window wrap, duplicate-ack behaviour, retransmit-buffer
backpressure, up/down re-routing around downed links, and survivor
consistency when a node dies mid-S-COMA.
"""

import repro
from repro.bench.harness import run_sweep
from repro.faults import FaultPlan, LinkEvent, LinkFault, NodeCrash, SpStall
from repro.firmware.reliable import SEQ_MOD, seq_lt
from repro.lib.mpi import MiniMPI
from repro.mp.basic import BasicPort
from repro.niu.niu import vdst_for


def _machine(n, plan=None):
    cfg = repro.default_config(n_nodes=n)
    cfg.faults = plan
    return repro.StarTVoyager(cfg)


def _flood(machine, count, reliable, payload_bytes=16, idle_ns=None):
    """Rank 0 floods rank 1; returns the delivered payload list."""
    p0 = BasicPort(machine.node(0), 0, 0)
    p1 = BasicPort(machine.node(1), 0, 0)
    if idle_ns is None:
        # reliable delivery must out-wait the maximum retransmit backoff
        idle_ns = 3e6 if reliable else 1e5

    def sender(api):
        for i in range(count):
            payload = i.to_bytes(4, "big").ljust(payload_bytes, b"\x00")
            if reliable:
                yield from p0.send_reliable(api, 1, payload)
            else:
                yield from p0.send(api, vdst_for(1, 0), payload)

    def receiver(api):
        got = []
        last_rx = api.now
        while len(got) < count and api.now - last_rx < idle_ns:
            msg = yield from p1.poll(api)
            if msg is None:
                yield from api.compute(500)
                continue
            got.append(bytes(msg[1]))
            last_rx = api.now
        return got

    s = machine.spawn(0, sender)
    r = machine.spawn(1, receiver)
    return machine.run_all([s, r], limit=1e10)[1]


def _rel_count(machine, suffix):
    rep = machine.stats.report()
    return int(sum(v for k, v in rep.items() if k.endswith(suffix)))


# ----------------------------------------------------------------------
# sequence arithmetic
# ----------------------------------------------------------------------

def test_seq_lt_serial_arithmetic():
    assert seq_lt(0, 1)
    assert seq_lt(SEQ_MOD - 1, 0)  # wrap
    assert seq_lt(SEQ_MOD - 3, 4)
    assert not seq_lt(1, 0)
    assert not seq_lt(0, 0)
    assert not seq_lt(0, SEQ_MOD - 1)  # that's "behind", not ahead


# ----------------------------------------------------------------------
# injection + detection
# ----------------------------------------------------------------------

def test_lossless_baseline_with_zero_prob_plan():
    """A plan of all-zero probabilities behaves exactly like no plan."""
    count = 12
    base = _machine(2)
    faulted = _machine(2, FaultPlan.uniform_loss(0.0, seed=9))
    got_a = _flood(base, count, reliable=False)
    got_b = _flood(faulted, count, reliable=False)
    assert got_a == got_b
    strip = ("sim.wall", "wall.")
    rep_a = {k: v for k, v in base.stats.report().items()
             if not any(s in k for s in strip)}
    rep_b = {k: v for k, v in faulted.stats.report().items()
             if not any(s in k for s in strip)}
    assert rep_a == rep_b


def test_unreliable_loses_and_reliable_does_not():
    """Under 1% seeded loss the raw path measurably loses messages
    while the go-back-N path delivers every one, in order."""
    count = 150
    plan = FaultPlan.uniform_loss(0.01, corrupt_p=0.005, seed=2)
    lossy = _machine(2, plan.copy())
    got = _flood(lossy, count, reliable=False)
    assert len(got) < count  # measurably lossy

    rel = _machine(2, plan.copy())
    got = _flood(rel, count, reliable=True)
    assert [int.from_bytes(p[:4], "big") for p in got] == list(range(count))
    assert _rel_count(rel, ".rel.delivered") == count


def test_corrupt_packets_detected_and_counted():
    """Corrupted packets fail the CRC at the receiving CTRL and land in
    the per-reason drop counters; nothing corrupt is ever delivered."""
    count = 60
    plan = FaultPlan(seed=5, link_faults=[
        LinkFault(pattern="n0->sw1.0", drop_p=0.0, corrupt_p=0.25),
    ])
    m = _machine(2, plan)
    got = _flood(m, count, reliable=False)
    corrupt = _rel_count(m, ".corrupt")
    assert corrupt > 0
    assert len(got) == count - corrupt
    # delivered payloads are exactly the uncorrupted originals
    for p in got:
        assert p[4:] == bytes(len(p) - 4)


def test_seeded_faults_deterministic_across_jobs():
    """The same fault seed produces byte-identical outcomes whether the
    sweep runs inline or fanned out over processes."""
    specs = [(0.03, 2), (0.03, 3), (0.0, 2)]
    a = run_sweep(_loss_point, specs, jobs=1)
    b = run_sweep(_loss_point, specs, jobs=2)
    assert a == b
    assert a[0] != a[1]  # different seeds, different loss patterns


def _loss_point(spec):
    loss, seed = spec
    plan = FaultPlan.uniform_loss(loss, corrupt_p=loss / 2, seed=seed)
    m = _machine(2, plan)
    got = _flood(m, 80, reliable=True)
    rep = {k: v for k, v in m.stats.report().items() if "wall" not in k}
    return got, sorted(rep.items())


def test_fault_sweep_byte_identical_across_jobs():
    """The full benchmark grid (``benchmarks/bench_faults.fault_sweep``)
    merges byte-identically whether run inline or over worker processes
    — the wall-clock gauges are stripped per point, everything else is
    seeded simulation."""
    import os
    import sys

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    if root not in sys.path:
        sys.path.insert(0, root)
    from benchmarks.bench_faults import fault_sweep

    a = fault_sweep(jobs=1, loss_rates=(0.02,))
    b = fault_sweep(jobs=2, loss_rates=(0.02,))
    assert a == b


def test_minimpi_reliable_multifragment_over_lossy_fabric():
    """``MiniMPI(reliable=True)`` reassembles a multi-fragment message
    exactly even when the fabric drops and corrupts packets."""
    plan = FaultPlan.uniform_loss(0.02, corrupt_p=0.01, seed=4)
    m = _machine(2, plan)
    mpi = MiniMPI(m, reliable=True)
    data = bytes(range(256)) * 2  # 512 B -> 7 fragments of <= 74 B

    def tx(api):
        yield from mpi.rank(0).send(api, 1, data, tag=3)

    def rx(api):
        return (yield from mpi.rank(1).recv(api, src=0, tag=3))

    m.spawn(0, tx)
    src, tag, got = m.run_until(m.spawn(1, rx), limit=1e10)
    assert (src, tag) == (0, 3)
    assert got == data


# ----------------------------------------------------------------------
# go-back-N edge cases
# ----------------------------------------------------------------------

def test_window_wraps_across_seq_space():
    """Flows starting near SEQ_MOD wrap without reordering or loss."""
    count = 20
    m = _machine(2, FaultPlan.uniform_loss(0.05, seed=7))
    start = SEQ_MOD - 5
    st0 = m.node(0).sp.state["rel"]
    st0.flow(1, m.config.reliability.timeout_ns).seq_next = start
    m.node(1).sp.state["rel"].rx_expected[0] = start
    got = _flood(m, count, reliable=True)
    assert [int.from_bytes(p[:4], "big") for p in got] == list(range(count))
    assert st0.flows[1].seq_next == (start + count) % SEQ_MOD


def test_ack_loss_causes_duplicates_not_loss():
    """Dropping only the ACK direction forces timeout retransmissions of
    already-delivered segments; the receiver counts the duplicates and
    the delivered stream stays exact."""
    count = 15
    plan = FaultPlan(seed=11, link_faults=[
        LinkFault(pattern="n1->sw1.0", drop_p=0.5, corrupt_p=0.0),
    ])
    m = _machine(2, plan)
    p0 = BasicPort(m.node(0), 0, 0)
    p1 = BasicPort(m.node(1), 0, 0)

    def sender(api):
        for i in range(count):
            yield from p0.send_reliable(api, 1, i.to_bytes(4, "big"))
            # out-wait the base RTO so a lost ACK means a retransmission
            # of a segment the receiver already has
            while api.now < (i + 1) * 100_000:
                yield from api.compute(2000)

    def receiver(api):
        got = []
        last_rx = api.now
        while len(got) < count and api.now - last_rx < 3e6:
            msg = yield from p1.poll(api)
            if msg is None:
                yield from api.compute(500)
                continue
            got.append(bytes(msg[1]))
            last_rx = api.now
        return got

    s = m.spawn(0, sender)
    r = m.spawn(1, receiver)
    got = m.run_all([s, r], limit=1e10)[1]
    assert [int.from_bytes(p, "big") for p in got] == list(range(count))
    assert _rel_count(m, ".rel.duplicates") > 0
    assert _rel_count(m, ".rel.retransmits") > 0
    assert _rel_count(m, ".rel.delivered") == count


def test_window_full_backpressures_the_ap():
    """A tiny window forces the tx dispatcher to leave requests queued
    (counted) and stalls the aP rather than dropping anything."""
    count = 30
    cfg = repro.default_config(n_nodes=2)
    cfg.reliability.window = 2
    m = repro.StarTVoyager(cfg)
    got = _flood(m, count, reliable=True)
    assert [int.from_bytes(p[:4], "big") for p in got] == list(range(count))
    assert _rel_count(m, ".rel.backpressured") > 0


# ----------------------------------------------------------------------
# link down / re-routing
# ----------------------------------------------------------------------

def test_reroute_around_downed_spine_link():
    """Downing the up-link the default route uses diverts traffic over
    the fat tree's other copy; messages still arrive."""
    m = _machine(4)
    topo = m.network.topology
    ports = topo.route(0, 2)
    d = topo.down_degree
    up_port = next(p for p in ports if p >= d) - d
    name = topo.up_link_name(1, topo.leaf_switch(0), up_port)
    m.network.down_links.add(name)  # no plan armed; drive the network directly

    p0 = BasicPort(m.node(0), 0, 0)
    p2 = BasicPort(m.node(2), 0, 0)

    def sender(api):
        yield from p0.send(api, vdst_for(2, 0), b"detour")

    def receiver(api):
        return (yield from p2.recv(api))

    m.spawn(0, sender)
    src, payload = m.run_until(m.spawn(2, receiver), limit=1e9)
    assert (src, bytes(payload)) == (0, b"detour")
    alt = topo.route(0, 2, avoid=m.network.down_links)
    assert alt != ports


def test_timed_link_down_then_up_with_reliable_traffic():
    """A link that dies mid-stream and comes back later only delays the
    reliable flow (retransmissions bridge the outage)."""
    count = 30
    plan = FaultPlan(seed=1, link_events=[
        LinkEvent(time_ns=50_000.0, link="n0->sw1.0", up=False),
        LinkEvent(time_ns=450_000.0, link="n0->sw1.0", up=True),
    ])
    m = _machine(2, plan)
    got = _flood(m, count, reliable=True)
    assert [int.from_bytes(p[:4], "big") for p in got] == list(range(count))
    assert _rel_count(m, ".rel.retransmits") > 0


# ----------------------------------------------------------------------
# sP stall and node crash
# ----------------------------------------------------------------------

def test_sp_stall_delays_but_does_not_lose():
    """A stalled receiver sP parks incoming reliable traffic until the
    stall window ends; everything is delivered afterwards."""
    stall_ns = 80_000.0
    plan = FaultPlan(seed=1, sp_stalls=[
        SpStall(node=1, time_ns=1_000.0, duration_ns=stall_ns),
    ])
    m = _machine(2, plan)
    got = _flood(m, 5, reliable=True)
    assert len(got) == 5
    assert m.now > stall_ns


def test_crash_mid_scoma_survivors_stay_consistent():
    """Killing a node mid-run leaves lines homed at survivors coherent;
    the survivors' workload completes with the right values."""
    from repro.shm import ScomaRegion

    plan = FaultPlan(seed=1, node_crashes=[NodeCrash(node=2, time_ns=30_000.0)])
    cfg = repro.default_config(n_nodes=3)
    cfg.faults = plan
    m = repro.StarTVoyager(cfg)
    region = ScomaRegion(m, n_lines=16)
    assert region.home_of(0) == 0  # survivors only touch survivor-homed lines
    region.init_data(0, bytes(32))

    def victim(api):  # busy on its *own* lines until the crash takes it
        for i in range(1000):
            yield from api.compute(5000)

    def survivor(api, who):
        for i in range(6):
            yield from api.store(region.addr(0), bytes([who + i]) * 8)
            yield from api.compute(20_000)
        return (yield from api.load(region.addr(0), 8))

    m.spawn(2, victim)
    s0 = m.spawn(0, survivor, 0x10)
    s1 = m.spawn(1, survivor, 0x60)
    results = m.run_all([s0, s1], limit=1e10)
    # both survivors finished, and each read back a value some survivor
    # wrote (coherence: never a torn or stale-zero line)
    legal = {bytes([0x10 + i]) * 8 for i in range(6)} | \
            {bytes([0x60 + i]) * 8 for i in range(6)}
    assert set(results) <= legal
    assert m.node(2).ctrl.crashed
    assert m.node(2).sp.halted


def test_crashed_node_is_unreachable_but_counted():
    """Traffic toward a crashed node is dropped at the sender's CTRL
    (unroutable) instead of wedging the simulation."""
    plan = FaultPlan(seed=1, node_crashes=[NodeCrash(node=1, time_ns=100.0)])
    m = _machine(2, plan)
    p0 = BasicPort(m.node(0), 0, 0)

    def sender(api):
        yield from api.compute(10_000)  # let the crash land first
        yield from p0.send(api, vdst_for(1, 0), b"into-the-void")

    m.run_until(m.spawn(0, sender), limit=1e9)
    m.run(until=m.now + 100_000)  # let the tx pump hit the routing wall
    assert _rel_count(m, ".tx_unroutable") == 1
