"""The reflective-memory extension: a new mechanism added at runtime."""

import pytest

import repro
from repro.firmware.reflective import install_reflective

BASE = 0x40000
BYTES = 4096


@pytest.fixture
def m3():
    m = repro.StarTVoyager(repro.default_config(n_nodes=3))
    handlers = [install_reflective(m.node(n), BASE, BYTES, [0, 1, 2])
                for n in range(3)]
    return m, handlers


def _settle(m):
    m.run(until=m.now + 200_000)


def test_store_reflected_everywhere(m3):
    m, handlers = m3

    def writer(api):
        yield from api.store(BASE + 0x10, b"mirrored")

    m.run_until(m.spawn(0, writer), limit=1e8)
    _settle(m)
    for n in range(3):
        assert m.node(n).dram.peek(BASE + 0x10, 8) == b"mirrored"
    assert handlers[0].captured == 1


def test_local_copy_applied_immediately(m3):
    m, _ = m3

    def writer(api):
        yield from api.store(BASE, b"local!!!")
        return (yield from api.load(BASE, 8))

    assert m.run_until(m.spawn(0, writer), limit=1e8) == b"local!!!"


def test_loads_not_reflected(m3):
    m, handlers = m3

    def reader(api):
        return (yield from api.load(BASE + 0x20, 8))

    m.run_until(m.spawn(1, reader), limit=1e8)
    assert handlers[1].captured == 0


def test_reflection_from_any_node(m3):
    m, _ = m3

    def writer(api):
        yield from api.store(BASE + 0x100, b"from-2!!")

    m.run_until(m.spawn(2, writer), limit=1e8)
    _settle(m)
    assert m.node(0).dram.peek(BASE + 0x100, 8) == b"from-2!!"
    assert m.node(1).dram.peek(BASE + 0x100, 8) == b"from-2!!"


def test_last_writer_wins_locally(m3):
    m, _ = m3

    def writer(api):
        yield from api.store(BASE + 0x200, b"AAAA")
        yield from api.store(BASE + 0x200, b"BBBB")

    m.run_until(m.spawn(0, writer), limit=1e8)
    _settle(m)
    for n in range(3):
        assert m.node(n).dram.peek(BASE + 0x200, 4) == b"BBBB"


def test_window_outside_user_dram_rejected():
    m = repro.StarTVoyager(repro.default_config(n_nodes=2))
    from repro.common.errors import SimulationError
    with pytest.raises(SimulationError):
        install_reflective(m.node(0), m.node(0).scoma_base, 4096, [0, 1])
