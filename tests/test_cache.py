"""The snooping write-back L2: hits, fills, evictions, coherence."""

import pytest

from repro.bus.bus import MemoryBus
from repro.bus.ops import BusOpType, BusTransaction
from repro.common.config import default_config
from repro.mem.address import AccessMode, AddressMap, Region
from repro.mem.cache import LineState, SnoopingL2
from repro.mem.dram import DRAM


@pytest.fixture
def rig(engine):
    config = default_config()
    config.l2.size_bytes = 4096  # small cache so evictions are reachable
    config.l2.ways = 2
    amap = AddressMap()
    dram = DRAM(engine, config.dram, config.bus, base=0)
    amap.add(Region("dram", 0, config.dram.size_bytes, AccessMode.CACHED,
                    owner=dram))
    bus = MemoryBus(engine, config.bus, amap)
    l2 = SnoopingL2(engine, config.l2, bus, dram)
    return engine, bus, dram, l2


def _run(engine, gen):
    return engine.run_until_triggered(engine.process(gen))


def test_miss_then_hit(rig):
    engine, bus, dram, l2 = rig
    dram.poke(0x100, b"mem-data")

    def body():
        a = yield from l2.load(0x100, 8)
        b = yield from l2.load(0x100, 8)
        return a, b

    a, b = _run(engine, body())
    assert a == b == b"mem-data"
    assert l2.stats()["misses"] == 1
    assert l2.stats()["hits"] == 1


def test_store_makes_modified(rig):
    engine, _, dram, l2 = rig

    def body():
        yield from l2.store(0x200, b"dirty!!!")

    _run(engine, body())
    assert l2.state_of(0x200) is LineState.MODIFIED
    # write-back: DRAM not yet updated
    assert dram.peek(0x200, 8) == bytes(8)


def test_load_fill_is_shared(rig):
    engine, _, _, l2 = rig

    def body():
        yield from l2.load(0x300, 4)

    _run(engine, body())
    assert l2.state_of(0x300) is LineState.SHARED


def test_upgrade_issues_kill(rig):
    engine, bus, _, l2 = rig
    kills = []

    class Watch:
        snooper_name = "watch"

        def snoop(self, txn):
            if txn.op is BusOpType.KILL:
                kills.append(txn.addr)
            from repro.bus.snoop import SnoopResult
            return SnoopResult.OK

    bus.attach_snooper(Watch())

    def body():
        yield from l2.load(0x400, 8)  # S
        yield from l2.store(0x400, b"x")  # upgrade

    _run(engine, body())
    assert kills == [0x400]
    assert l2.state_of(0x400) is LineState.MODIFIED
    assert l2.stats()["upgrades"] == 1


def test_eviction_writes_back(rig):
    engine, _, dram, l2 = rig
    n_sets = l2.config.n_sets
    stride = n_sets * l2.config.line_bytes  # same set, different tags

    def body():
        yield from l2.store(0x0, b"victim!!")
        yield from l2.store(0x0 + stride, b"way2")
        yield from l2.store(0x0 + 2 * stride, b"evictor")  # evicts LRU

    _run(engine, body())
    assert l2.stats()["writebacks"] == 1
    assert dram.peek(0x0, 8) == b"victim!!"


def test_snoop_foreign_read_pushes_and_downgrades(rig):
    engine, bus, dram, l2 = rig

    def body():
        yield from l2.store(0x500, b"mine....")
        t = BusTransaction(BusOpType.READ, 0x500, 8, master="niu")
        yield from bus.transact(t)
        return t.data

    assert _run(engine, body()) == b"mine...."
    assert l2.state_of(0x500) is LineState.SHARED
    assert l2.stats()["snoop_pushes"] == 1


def test_snoop_rwitm_invalidates(rig):
    engine, bus, dram, l2 = rig

    def body():
        yield from l2.store(0x600, b"gone....")
        t = BusTransaction(BusOpType.RWITM, 0x600, 32, master="niu")
        yield from bus.transact(t)
        return t.data

    data = _run(engine, body())
    assert data[:8] == b"gone...."  # pushed before serving
    assert l2.state_of(0x600) is LineState.INVALID


def test_snoop_foreign_write_invalidates_shared(rig):
    engine, bus, _, l2 = rig

    def body():
        yield from l2.load(0x700, 8)
        t = BusTransaction(BusOpType.WRITE, 0x700, 8, b"newdata!",
                           master="niu")
        yield from bus.transact(t)
        d = yield from l2.load(0x700, 8)  # re-fills from DRAM
        return d

    assert _run(engine, body()) == b"newdata!"


def test_snoop_kill_invalidates(rig):
    engine, bus, _, l2 = rig

    def body():
        yield from l2.load(0x800, 8)
        t = BusTransaction(BusOpType.KILL, 0x800, 32, master="niu")
        yield from bus.transact(t)

    _run(engine, body())
    assert l2.state_of(0x800) is LineState.INVALID


def test_snoop_flush_pushes_and_invalidates(rig):
    engine, bus, dram, l2 = rig

    def body():
        yield from l2.store(0x900, b"flushme!")
        t = BusTransaction(BusOpType.FLUSH, 0x900, 32, master="niu")
        yield from bus.transact(t)

    _run(engine, body())
    assert dram.peek(0x900, 8) == b"flushme!"
    assert l2.state_of(0x900) is LineState.INVALID


def test_own_transactions_not_snooped(rig):
    engine, bus, _, l2 = rig

    def body():
        yield from l2.store(0xA00, b"selfsafe")
        yield from l2.load(0xA20, 8)  # same line? no: +0x20 next line, fills
        return l2.state_of(0xA00)

    assert _run(engine, body()) is LineState.MODIFIED


def test_straddling_access_rejected(rig):
    engine, _, _, l2 = rig

    def body():
        yield from l2.load(0x1E, 8)  # crosses the 32-byte boundary

    from repro.common.errors import SimulationError
    with pytest.raises(SimulationError):
        _run(engine, body())


def test_hit_does_not_use_bus(rig):
    engine, bus, _, l2 = rig

    def body():
        yield from l2.load(0xB00, 8)
        before = bus.busy_ns()
        yield from l2.load(0xB00, 8)
        return before, bus.busy_ns()

    before, after = _run(engine, body())
    assert before == after


def test_snoop_foreign_partial_write_merges(rig):
    """A foreign partial write to a line we hold Modified must merge with
    our modifications, not destroy them (the snoop pushes our line to
    DRAM before the foreign data tenure applies).

    Regression guard: without the push, a remote update landing in the
    same line as unflushed local writes silently dropped them — caught by
    the update-region convergence property test.
    """
    engine, bus, dram, l2 = rig

    def body():
        # we modify the second word of the line
        yield from l2.store(0xC08, b"LOCALMOD")
        # a foreign master writes the FIRST word of the same line
        t = BusTransaction(BusOpType.WRITE, 0xC00, 8, b"FOREIGN!",
                           master="niu")
        yield from bus.transact(t)
        # both survive in DRAM; our copy was invalidated
        return dram.peek(0xC00, 16)

    merged = _run(engine, body())
    assert merged == b"FOREIGN!LOCALMOD"
    assert l2.state_of(0xC00) is LineState.INVALID
