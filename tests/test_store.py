"""Stores: blocking FIFO semantics, capacity backpressure, statistics."""

import pytest

from repro.common.errors import QueueEmptyError, QueueFullError, SimulationError
from repro.sim.store import Store


def test_put_get_fifo(engine):
    s = Store(engine)
    for i in range(5):
        s.try_put(i)
    got = [s.try_get() for _ in range(5)]
    assert got == [0, 1, 2, 3, 4]


def test_get_blocks_until_put(engine):
    s = Store(engine)
    result = []

    def consumer():
        item = yield s.get()
        result.append((item, engine.now))

    def producer():
        yield engine.timeout(50.0)
        yield s.put("late")

    engine.process(consumer())
    engine.process(producer())
    engine.run()
    assert result == [("late", 50.0)]


def test_put_blocks_when_full(engine):
    s = Store(engine, capacity=2)
    s.try_put(1)
    s.try_put(2)
    done = []

    def producer():
        yield s.put(3)
        done.append(engine.now)

    def consumer():
        yield engine.timeout(30.0)
        s.try_get()

    engine.process(producer())
    engine.process(consumer())
    engine.run()
    assert done == [30.0]
    assert s.snapshot() == [2, 3]


def test_try_put_full_raises(engine):
    s = Store(engine, capacity=1)
    s.try_put("x")
    with pytest.raises(QueueFullError):
        s.try_put("y")


def test_try_get_empty_raises(engine):
    s = Store(engine)
    with pytest.raises(QueueEmptyError):
        s.try_get()


def test_peek(engine):
    s = Store(engine)
    s.try_put("first")
    s.try_put("second")
    assert s.peek() == "first"
    assert len(s) == 2


def test_peek_empty_raises(engine):
    with pytest.raises(QueueEmptyError):
        Store(engine).peek()


def test_waiting_getters_served_fifo(engine):
    s = Store(engine)
    got = []

    def consumer(name):
        item = yield s.get()
        got.append((name, item))

    for name in ("a", "b"):
        engine.process(consumer(name))

    def producer():
        yield engine.timeout(10.0)
        yield s.put(1)
        yield s.put(2)

    engine.process(producer())
    engine.run()
    assert got == [("a", 1), ("b", 2)]


def test_statistics(engine):
    s = Store(engine, capacity=8)
    for i in range(5):
        s.try_put(i)
    for _ in range(3):
        s.try_get()
    assert s.total_put == 5
    assert s.total_got == 3
    assert s.peak_depth == 5


def test_flags(engine):
    s = Store(engine, capacity=1)
    assert s.is_empty and not s.is_full
    s.try_put(0)
    assert s.is_full and not s.is_empty


def test_capacity_validation(engine):
    with pytest.raises(SimulationError):
        Store(engine, capacity=0)


def test_unbounded_never_full(engine):
    s = Store(engine)
    for i in range(1000):
        s.try_put(i)
    assert not s.is_full
