"""Whole-machine determinism: identical runs produce identical histories.

Mechanism comparisons are only meaningful if repeated runs are
bit-identical — the paper's whole premise is "keeping all other
parameters constant", and scheduling noise would break it.

Also guards the zero-copy data plane: payloads ride as memoryviews of
live buffers until a protection boundary pins them, so these tests pin
down exactly which side of each boundary aliases and which copies.
"""


import pytest

import repro
from repro.core.blocktransfer import BlockTransferExperiment
from repro.lib.mpi import MiniMPI
from repro.mem.backing import ByteBacking
from repro.mp.basic import BasicPort
from repro.net.packet import Packet, PacketKind
from repro.niu.niu import vdst_for


def _messaging_trace():
    machine = repro.StarTVoyager(repro.default_config(n_nodes=4))
    ports = [BasicPort(machine.node(n), 0, 0) for n in range(4)]
    log = []

    def worker(api, rank):
        for i in range(6):
            dst = (rank + 1 + i) % 4
            if dst != rank:
                yield from ports[rank].send(api, vdst_for(dst, 0),
                                            bytes([rank, i]))
        for _ in range(_incoming(rank)):
            src, payload = yield from ports[rank].recv(api)
            log.append((api.now, rank, src, bytes(payload)))

    def _incoming(rank):
        count = 0
        for sender in range(4):
            for i in range(6):
                if (sender + 1 + i) % 4 == rank and rank != sender:
                    count += 1
        return count

    procs = [machine.spawn(n, worker, n) for n in range(4)]
    machine.run_all(procs, limit=1e10)
    return log, machine.now


def test_messaging_history_identical():
    (log1, t1) = _messaging_trace()
    (log2, t2) = _messaging_trace()
    assert t1 == t2
    assert log1 == log2


def test_block_transfer_identical():
    def run():
        machine = repro.StarTVoyager(repro.default_config(n_nodes=2))
        r = BlockTransferExperiment(machine).run(3, 4096)
        return (r.notify_latency_ns, r.data_ready_latency_ns,
                r.sender_sp_busy_ns, r.receiver_sp_busy_ns)

    assert run() == run()


def test_statistics_identical():
    def run():
        machine = repro.StarTVoyager(repro.default_config(n_nodes=2))
        BlockTransferExperiment(machine).run(2, 2048)
        return machine.stats.report()

    assert run() == run()


def _mixed_workload():
    """Basic + DMA/block hardware + S-COMA + NIC collective, one machine.

    Exercises every data-plane mechanism back to back so the full
    metrics snapshot covers the kernel's fast paths, the zero-copy
    SRAM/DRAM moves, the S-COMA landing window, and the sP collective
    firmware in a single event history.
    """
    machine = repro.StarTVoyager(repro.default_config(n_nodes=2))
    mpi = MiniMPI(machine, algo="nic")
    exp = BlockTransferExperiment(machine)
    exp.run(1, 1024)   # Basic messages, aP does everything
    exp.run(3, 2048)   # DMA request + hardware block units
    exp.run(4, 1024)   # S-COMA landing window, optimistic notify

    def worker(api, rank):
        comm = mpi.rank(rank)
        yield from comm.barrier(api)
        return (yield from comm.allreduce(api, rank + 1, op="sum"))

    procs = [machine.spawn(n, worker, n) for n in range(2)]
    sums = machine.run_all(procs, limit=1e10)
    snap = machine.metrics()
    # sim.wall holds host wall-clock gauges — nondeterministic by
    # design, and documented as strip-before-compare (obs/snapshot.py)
    snap["sim"].pop("wall")
    return sums, snap


def test_mixed_workload_metrics_identical():
    """The acceptance bar: two identical mixed runs produce identical
    *full* metrics snapshots — counters, percentiles, busy times,
    occupancies, everything but the wall-clock gauges."""
    sums1, snap1 = _mixed_workload()
    sums2, snap2 = _mixed_workload()
    assert sums1 == sums2 == [3, 3]
    assert snap1 == snap2


def test_parallel_sweep_matches_serial():
    """run_sweep's determinism contract: merged results are identical
    for any job count (here: inline vs a 2-process pool)."""
    from repro.bench import block_transfer_point, run_sweep

    specs = [(1, 256), (3, 1024)]
    assert (run_sweep(block_transfer_point, specs, jobs=1)
            == run_sweep(block_transfer_point, specs, jobs=2))


def test_seed_changes_routing_not_results():
    """Different fat-tree seeds change routes but not message contents."""

    def run(seed):
        cfg = repro.default_config(n_nodes=8)
        cfg.seed = seed
        machine = repro.StarTVoyager(cfg)
        p0 = BasicPort(machine.node(0), 0, 0)
        p7 = BasicPort(machine.node(7), 0, 0)

        def s(api):
            yield from p0.send(api, vdst_for(7, 0), b"seeded")

        def r(api):
            return (yield from p7.recv(api))

        machine.spawn(0, s)
        return machine.run_until(machine.spawn(7, r), limit=1e9)

    assert run(1) == run(99) == (0, b"seeded")


# ----------------------------------------------------------------------
# zero-copy aliasing boundaries
# ----------------------------------------------------------------------

def test_backing_view_is_live_readonly_alias():
    """ByteBacking.view aliases the live store (later writes show
    through) but cannot be written through — the producer side of the
    zero-copy contract."""
    backing = ByteBacking(64)
    backing.write(0, b"abcd")
    view = backing.view(0, 4)
    assert bytes(view) == b"abcd"
    backing.write(0, b"wxyz")
    assert bytes(view) == b"wxyz"
    with pytest.raises(TypeError):
        view[0] = 0


def test_packet_pins_mutable_payload():
    """Packet construction is a protection boundary: a mutable buffer
    (or view of one) is materialized, so mutating it afterwards cannot
    corrupt the in-flight packet."""
    buf = bytearray(b"hello-wire")
    pkt = Packet(PacketKind.DATA, 0, 1, 0, memoryview(buf))
    wire_before = pkt.wire_bytes
    buf[:] = b"XXXXXXXXXX"
    assert pkt.payload == b"hello-wire"
    assert pkt.wire_bytes == wire_before


def test_queue_slot_recycling_keeps_payloads_intact():
    """Streaming more distinct messages than the rx queue holds forces
    every SRAM slot to be recycled; each delivered payload must still
    match what was sent (guards the tx/rx slot-view discipline)."""
    machine = repro.StarTVoyager(repro.default_config(n_nodes=2))
    p0 = BasicPort(machine.node(0), 0, 0)
    p1 = BasicPort(machine.node(1), 0, 0)
    count = 32
    payloads = [bytes([i] * 24) for i in range(count)]

    def sender(api):
        for p in payloads:
            yield from p0.send(api, vdst_for(1, 0), p)

    def receiver(api):
        got = []
        for _ in range(count):
            _src, payload = yield from p1.recv(api)
            got.append(bytes(payload))
        return got

    machine.spawn(0, sender)
    got = machine.run_until(machine.spawn(1, receiver), limit=1e10)
    assert got == payloads
