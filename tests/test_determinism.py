"""Whole-machine determinism: identical runs produce identical histories.

Mechanism comparisons are only meaningful if repeated runs are
bit-identical — the paper's whole premise is "keeping all other
parameters constant", and scheduling noise would break it.
"""


import repro
from repro.core.blocktransfer import BlockTransferExperiment
from repro.mp.basic import BasicPort
from repro.niu.niu import vdst_for


def _messaging_trace():
    machine = repro.StarTVoyager(repro.default_config(n_nodes=4))
    ports = [BasicPort(machine.node(n), 0, 0) for n in range(4)]
    log = []

    def worker(api, rank):
        for i in range(6):
            dst = (rank + 1 + i) % 4
            if dst != rank:
                yield from ports[rank].send(api, vdst_for(dst, 0),
                                            bytes([rank, i]))
        for _ in range(_incoming(rank)):
            src, payload = yield from ports[rank].recv(api)
            log.append((api.now, rank, src, bytes(payload)))

    def _incoming(rank):
        count = 0
        for sender in range(4):
            for i in range(6):
                if (sender + 1 + i) % 4 == rank and rank != sender:
                    count += 1
        return count

    procs = [machine.spawn(n, worker, n) for n in range(4)]
    machine.run_all(procs, limit=1e10)
    return log, machine.now


def test_messaging_history_identical():
    (log1, t1) = _messaging_trace()
    (log2, t2) = _messaging_trace()
    assert t1 == t2
    assert log1 == log2


def test_block_transfer_identical():
    def run():
        machine = repro.StarTVoyager(repro.default_config(n_nodes=2))
        r = BlockTransferExperiment(machine).run(3, 4096)
        return (r.notify_latency_ns, r.data_ready_latency_ns,
                r.sender_sp_busy_ns, r.receiver_sp_busy_ns)

    assert run() == run()


def test_statistics_identical():
    def run():
        machine = repro.StarTVoyager(repro.default_config(n_nodes=2))
        BlockTransferExperiment(machine).run(2, 2048)
        return machine.stats.report()

    assert run() == run()


def test_seed_changes_routing_not_results():
    """Different fat-tree seeds change routes but not message contents."""

    def run(seed):
        cfg = repro.default_config(n_nodes=8)
        cfg.seed = seed
        machine = repro.StarTVoyager(cfg)
        p0 = BasicPort(machine.node(0), 0, 0)
        p7 = BasicPort(machine.node(7), 0, 0)

        def s(api):
            yield from p0.send(api, vdst_for(7, 0), b"seeded")

        def r(api):
            return (yield from p7.recv(api))

        machine.spawn(0, s)
        return machine.run_until(machine.spawn(7, r), limit=1e9)

    assert run(1) == run(99) == (0, b"seeded")
