"""The service processor kernel and the firmware base library."""

import pytest

import repro
from repro.common.errors import FirmwareError
from repro.firmware.base import (
    fw_dram_read,
    fw_dram_write,
    fw_recv_all,
    fw_send,
    fw_wait,
    register_msg_handler,
)
from repro.firmware.msg import declare_dram_queue
from repro.mp.basic import BasicPort
from repro.mp.dramq import DramQueueReader
from repro.niu.niu import SP_SERVICE_QUEUE, vdst_for


@pytest.fixture
def m2():
    return repro.StarTVoyager(repro.default_config(n_nodes=2))


def test_kernel_dispatches_events(m2):
    sp = m2.node(0).sp
    seen = []

    def handler(sp_, event):
        seen.append(event)
        yield sp_.compute(10)

    sp.register("custom", handler)
    sp.sbiu.post_event(("custom", 1, 2))
    m2.run(until=m2.now + 10_000)
    assert seen == [("custom", 1, 2)]
    assert sp.dispatched >= 1


def test_unhandled_event_counted(m2):
    sp = m2.node(0).sp
    sp.sbiu.post_event(("nobody-home",))
    m2.run(until=m2.now + 10_000)
    assert sp.unhandled >= 1


def test_handler_for_missing_raises(m2):
    with pytest.raises(FirmwareError):
        m2.node(0).sp.handler_for("missing")


def test_compute_cost(m2):
    sp = m2.node(0).sp
    t0 = m2.now
    done = []

    def handler(sp_, event):
        yield sp_.compute(166)  # 1000 ns at 166 MHz
        done.append(m2.now)

    sp.register("timed", handler)
    sp.sbiu.post_event(("timed",))
    m2.run(until=m2.now + 100_000)
    dispatch_ns = sp.proc.insn_ns(sp.fw.dispatch_insns)
    assert done[0] - t0 == pytest.approx(1000.0 + dispatch_ns, abs=1.0)


def test_occupancy_counts_handler_time(m2):
    sp = m2.node(0).sp

    def handler(sp_, event):
        yield sp_.compute(1000)

    sp.register("busywork", handler)
    sp.sbiu.post_event(("busywork",))
    m2.run(until=m2.now + 100_000)
    assert sp.busy.busy_ns > sp.proc.insn_ns(1000) * 0.9


def test_fw_wait_excludes_occupancy(m2):
    sp = m2.node(0).sp
    results = {}

    def handler(sp_, event):
        ev = m2.engine.timeout(50_000.0)
        yield from fw_wait(sp_, ev)
        results["accrued"] = None  # marker

    sp.register("waits", handler)
    sp.sbiu.post_event(("waits",))
    m2.run(until=m2.now + 200_000)
    assert "accrued" in results
    # busy time must be far below the 50us wait
    assert sp.busy.busy_ns < 10_000


def test_fw_send_and_recv_all(m2):
    """Firmware on node 0 sends to node 1's service queue; node 1
    firmware receives it through fw_recv_all (exercised via a custom
    protocol type)."""
    got = []

    def on_msg(sp, src, payload):
        got.append((src, payload))
        yield sp.compute(1)

    register_msg_handler(m2.node(1).sp, 0x70, on_msg)
    sp0 = m2.node(0).sp

    def trigger(sp_, event):
        yield from fw_send(sp_, vdst_for(1, SP_SERVICE_QUEUE),
                           bytes([0x70]) + b"firmware-to-firmware")

    sp0.register("go", trigger)
    sp0.sbiu.post_event(("go",))
    m2.run(until=m2.now + 200_000)
    assert got == [(0, bytes([0x70]) + b"firmware-to-firmware")]


def test_fw_dram_roundtrip(m2):
    sp = m2.node(0).sp
    staging = m2.node(0).niu.alloc_ssram(64)
    out = {}

    def handler(sp_, event):
        yield from fw_dram_write(sp_, 0x7700, b"fw-dram-data")
        out["data"] = yield from fw_dram_read(sp_, 0x7700, 12, staging)

    sp.register("drw", handler)
    sp.sbiu.post_event(("drw",))
    m2.run(until=m2.now + 200_000)
    assert out["data"] == b"fw-dram-data"
    assert m2.node(0).dram.peek(0x7700, 12) == b"fw-dram-data"


def test_missq_to_dram_ring(m2):
    """Messages for a non-resident logical queue land in the declared
    DRAM ring and are readable by the aP."""
    node1 = m2.node(1)
    ring = declare_dram_queue(node1.sp, logical=12, base=0x30000, depth=8)
    reader = DramQueueReader(ring)
    port0 = BasicPort(m2.node(0), 0, 0)
    # logical 12 has no hardware slot on node 1: install a translation so
    # the sender can name it (machine installed 0..15 already)

    def sender(api):
        yield from port0.send(api, vdst_for(1, 12), b"to-dram-ring-1")
        yield from port0.send(api, vdst_for(1, 12), b"to-dram-ring-2")

    def receiver(api):
        a = yield from reader.recv(api)
        b = yield from reader.recv(api)
        return a, b

    m2.spawn(0, sender)
    (s1, p1), (s2, p2) = m2.run_until(m2.spawn(1, receiver), limit=1e9)
    assert (s1, p1) == (0, b"to-dram-ring-1")
    assert (s2, p2) == (0, b"to-dram-ring-2")
    assert node1.ctrl.rx_cache.misses >= 2


def test_missq_without_ring_drops_and_logs(m2):
    port0 = BasicPort(m2.node(0), 0, 0)

    def sender(api):
        yield from port0.send(api, vdst_for(1, 13), b"lost")

    m2.run_until(m2.spawn(0, sender), limit=1e8)
    m2.run(until=m2.now + 100_000)
    dropped = m2.node(1).sp.state.get("missq_dropped", [])
    assert any(entry[1] == 13 for entry in dropped)
