"""The mini-MPI library: point-to-point, fragmentation, collectives."""

import pytest

import repro
from repro.lib.mpi import FRAG_DATA, MiniMPI


@pytest.fixture
def m2():
    return repro.StarTVoyager(repro.default_config(n_nodes=2))


@pytest.fixture
def m4():
    return repro.StarTVoyager(repro.default_config(n_nodes=4))


def test_send_recv_small(m2):
    mpi = MiniMPI(m2)

    def a(api):
        yield from mpi.rank(0).send(api, 1, b"tiny", tag=3)

    def b(api):
        return (yield from mpi.rank(1).recv(api))

    m2.spawn(0, a)
    src, tag, data = m2.run_until(m2.spawn(1, b), limit=1e9)
    assert (src, tag, data) == (0, 3, b"tiny")


def test_fragmentation_roundtrip(m2):
    mpi = MiniMPI(m2)
    big = bytes((i * 11 + 3) & 0xFF for i in range(5 * FRAG_DATA + 17))

    def a(api):
        yield from mpi.rank(0).send(api, 1, big)

    def b(api):
        return (yield from mpi.rank(1).recv(api, src=0))

    m2.spawn(0, a)
    _src, _tag, data = m2.run_until(m2.spawn(1, b), limit=1e10)
    assert data == big


def test_empty_message(m2):
    mpi = MiniMPI(m2)

    def a(api):
        yield from mpi.rank(0).send(api, 1, b"")

    def b(api):
        return (yield from mpi.rank(1).recv(api))

    m2.spawn(0, a)
    _src, _tag, data = m2.run_until(m2.spawn(1, b), limit=1e9)
    assert data == b""


def test_tag_matching_out_of_order(m2):
    mpi = MiniMPI(m2)

    def a(api):
        yield from mpi.rank(0).send(api, 1, b"first", tag=1)
        yield from mpi.rank(0).send(api, 1, b"second", tag=2)

    def b(api):
        r = mpi.rank(1)
        # ask for tag 2 first: tag 1 gets buffered
        _s, _t, d2 = yield from r.recv(api, tag=2)
        _s, _t, d1 = yield from r.recv(api, tag=1)
        return d1, d2

    m2.spawn(0, a)
    d1, d2 = m2.run_until(m2.spawn(1, b), limit=1e9)
    assert (d1, d2) == (b"first", b"second")


def test_wildcard_source(m4):
    mpi = MiniMPI(m4)

    def sender(api, rank):
        yield from mpi.rank(rank).send(api, 0, bytes([rank]), tag=9)

    def collector(api):
        got = set()
        r = mpi.rank(0)
        for _ in range(3):
            src, _tag, data = yield from r.recv(api, tag=9)
            got.add((src, data[0]))
        return got

    for n in (1, 2, 3):
        m4.spawn(n, sender, n)
    got = m4.run_until(m4.spawn(0, collector), limit=1e10)
    assert got == {(1, 1), (2, 2), (3, 3)}


def test_barrier_synchronizes(m4):
    mpi = MiniMPI(m4)
    after = []

    def worker(api, rank):
        comm = mpi.rank(rank)
        yield from api.compute(rank * 5000)  # skewed arrival
        yield from comm.barrier(api)
        after.append((rank, api.now))

    procs = [m4.spawn(n, worker, n) for n in range(4)]
    m4.run_all(procs, limit=1e10)
    times = [t for _r, t in after]
    # nobody leaves the barrier much before the slowest arrives
    slowest_arrival = m4.config.ap.insn_ns(3 * 5000)
    assert min(times) >= slowest_arrival


def test_bcast(m4):
    mpi = MiniMPI(m4)

    def worker(api, rank):
        comm = mpi.rank(rank)
        data = yield from comm.bcast(
            api, b"broadcast-data" if rank == 0 else None, root=0)
        return data

    procs = [m4.spawn(n, worker, n) for n in range(4)]
    assert m4.run_all(procs, limit=1e10) == [b"broadcast-data"] * 4


def test_gather(m4):
    mpi = MiniMPI(m4)

    def worker(api, rank):
        comm = mpi.rank(rank)
        return (yield from comm.gather(api, bytes([rank * 2]), root=0))

    procs = [m4.spawn(n, worker, n) for n in range(4)]
    results = m4.run_all(procs, limit=1e10)
    assert results[0] == [b"\x00", b"\x02", b"\x04", b"\x06"]
    assert results[1] is None


def test_reduce_and_allreduce(m4):
    mpi = MiniMPI(m4)

    def worker(api, rank):
        comm = mpi.rank(rank)
        total = yield from comm.reduce(api, rank + 1, root=0)
        yield from comm.barrier(api)
        everyone = yield from comm.allreduce(api, rank + 1)
        return total, everyone

    procs = [m4.spawn(n, worker, n) for n in range(4)]
    results = m4.run_all(procs, limit=1e10)
    assert results[0][0] == 10  # 1+2+3+4 at the root
    assert all(r[1] == 10 for r in results)


def test_allreduce_custom_op(m2):
    mpi = MiniMPI(m2)

    def worker(api, rank):
        comm = mpi.rank(rank)
        return (yield from comm.allreduce(api, rank + 3,
                                          op=lambda a, b: a * b))

    procs = [m2.spawn(n, worker, n) for n in range(2)]
    assert m2.run_all(procs, limit=1e10) == [12, 12]


def test_bad_rank_rejected(m2):
    mpi = MiniMPI(m2)

    def a(api):
        yield from mpi.rank(0).send(api, 7, b"x")

    from repro.common.errors import SimulationError
    with pytest.raises(SimulationError):
        m2.run_until(m2.spawn(0, a), limit=1e8)
