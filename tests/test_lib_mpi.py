"""The mini-MPI library: point-to-point, fragmentation, collectives."""

import pytest

import repro
from repro.lib.mpi import FRAG_DATA, MiniMPI


@pytest.fixture
def m2():
    return repro.StarTVoyager(repro.default_config(n_nodes=2))


@pytest.fixture
def m4():
    return repro.StarTVoyager(repro.default_config(n_nodes=4))


def test_send_recv_small(m2):
    mpi = MiniMPI(m2)

    def a(api):
        yield from mpi.rank(0).send(api, 1, b"tiny", tag=3)

    def b(api):
        return (yield from mpi.rank(1).recv(api))

    m2.spawn(0, a)
    src, tag, data = m2.run_until(m2.spawn(1, b), limit=1e9)
    assert (src, tag, data) == (0, 3, b"tiny")


def test_fragmentation_roundtrip(m2):
    mpi = MiniMPI(m2)
    big = bytes((i * 11 + 3) & 0xFF for i in range(5 * FRAG_DATA + 17))

    def a(api):
        yield from mpi.rank(0).send(api, 1, big)

    def b(api):
        return (yield from mpi.rank(1).recv(api, src=0))

    m2.spawn(0, a)
    _src, _tag, data = m2.run_until(m2.spawn(1, b), limit=1e10)
    assert data == big


def test_empty_message(m2):
    mpi = MiniMPI(m2)

    def a(api):
        yield from mpi.rank(0).send(api, 1, b"")

    def b(api):
        return (yield from mpi.rank(1).recv(api))

    m2.spawn(0, a)
    _src, _tag, data = m2.run_until(m2.spawn(1, b), limit=1e9)
    assert data == b""


def test_tag_matching_out_of_order(m2):
    mpi = MiniMPI(m2)

    def a(api):
        yield from mpi.rank(0).send(api, 1, b"first", tag=1)
        yield from mpi.rank(0).send(api, 1, b"second", tag=2)

    def b(api):
        r = mpi.rank(1)
        # ask for tag 2 first: tag 1 gets buffered
        _s, _t, d2 = yield from r.recv(api, tag=2)
        _s, _t, d1 = yield from r.recv(api, tag=1)
        return d1, d2

    m2.spawn(0, a)
    d1, d2 = m2.run_until(m2.spawn(1, b), limit=1e9)
    assert (d1, d2) == (b"first", b"second")


def test_wildcard_source(m4):
    mpi = MiniMPI(m4)

    def sender(api, rank):
        yield from mpi.rank(rank).send(api, 0, bytes([rank]), tag=9)

    def collector(api):
        got = set()
        r = mpi.rank(0)
        for _ in range(3):
            src, _tag, data = yield from r.recv(api, tag=9)
            got.add((src, data[0]))
        return got

    for n in (1, 2, 3):
        m4.spawn(n, sender, n)
    got = m4.run_until(m4.spawn(0, collector), limit=1e10)
    assert got == {(1, 1), (2, 2), (3, 3)}


def test_barrier_synchronizes(m4):
    mpi = MiniMPI(m4)
    after = []

    def worker(api, rank):
        comm = mpi.rank(rank)
        yield from api.compute(rank * 5000)  # skewed arrival
        yield from comm.barrier(api)
        after.append((rank, api.now))

    procs = [m4.spawn(n, worker, n) for n in range(4)]
    m4.run_all(procs, limit=1e10)
    times = [t for _r, t in after]
    # nobody leaves the barrier much before the slowest arrives
    slowest_arrival = m4.config.ap.insn_ns(3 * 5000)
    assert min(times) >= slowest_arrival


def test_bcast(m4):
    mpi = MiniMPI(m4)

    def worker(api, rank):
        comm = mpi.rank(rank)
        data = yield from comm.bcast(
            api, b"broadcast-data" if rank == 0 else None, root=0)
        return data

    procs = [m4.spawn(n, worker, n) for n in range(4)]
    assert m4.run_all(procs, limit=1e10) == [b"broadcast-data"] * 4


def test_gather(m4):
    mpi = MiniMPI(m4)

    def worker(api, rank):
        comm = mpi.rank(rank)
        return (yield from comm.gather(api, bytes([rank * 2]), root=0))

    procs = [m4.spawn(n, worker, n) for n in range(4)]
    results = m4.run_all(procs, limit=1e10)
    assert results[0] == [b"\x00", b"\x02", b"\x04", b"\x06"]
    assert results[1] is None


def test_reduce_and_allreduce(m4):
    mpi = MiniMPI(m4)

    def worker(api, rank):
        comm = mpi.rank(rank)
        total = yield from comm.reduce(api, rank + 1, root=0)
        yield from comm.barrier(api)
        everyone = yield from comm.allreduce(api, rank + 1)
        return total, everyone

    procs = [m4.spawn(n, worker, n) for n in range(4)]
    results = m4.run_all(procs, limit=1e10)
    assert results[0][0] == 10  # 1+2+3+4 at the root
    assert all(r[1] == 10 for r in results)


def test_allreduce_custom_op(m2):
    mpi = MiniMPI(m2)

    def worker(api, rank):
        comm = mpi.rank(rank)
        return (yield from comm.allreduce(api, rank + 3,
                                          op=lambda a, b: a * b))

    procs = [m2.spawn(n, worker, n) for n in range(2)]
    assert m2.run_all(procs, limit=1e10) == [12, 12]


def test_bad_rank_rejected(m2):
    mpi = MiniMPI(m2)

    def a(api):
        yield from mpi.rank(0).send(api, 7, b"x")

    from repro.common.errors import SimulationError
    with pytest.raises(SimulationError):
        m2.run_until(m2.spawn(0, a), limit=1e8)


# -- flat-collective edge cases ---------------------------------------------------


def test_size_one_collectives():
    """A single-rank communicator completes every collective locally."""
    m1 = repro.StarTVoyager(repro.default_config(n_nodes=1))
    mpi = MiniMPI(m1)

    def worker(api):
        comm = mpi.rank(0)
        yield from comm.barrier(api)
        data = yield from comm.bcast(api, b"solo")
        total = yield from comm.reduce(api, 7)
        big = yield from comm.allreduce(api, 7, op="max")
        parts = yield from comm.gather(api, b"only")
        return data, total, big, parts

    result = m1.run_until(m1.spawn(0, worker), limit=1e9)
    assert result == (b"solo", 7, 7, [b"only"])


def test_non_power_of_two_collectives():
    """Flat collectives at sizes 3 and 6 (nothing assumes powers of two)."""
    for n in (3, 6):
        m = repro.StarTVoyager(repro.default_config(n_nodes=n))
        mpi = MiniMPI(m)

        def worker(api, rank):
            comm = mpi.rank(rank)
            total = yield from comm.allreduce(api, rank + 1)
            yield from comm.barrier(api)
            low = yield from comm.allreduce(api, rank, op="min")
            return total, low

        procs = [m.spawn(i, worker, i) for i in range(n)]
        expected = n * (n + 1) // 2
        assert m.run_all(procs, limit=1e10) == [(expected, 0)] * n


def test_zero_byte_bcast(m4):
    mpi = MiniMPI(m4)

    def worker(api, rank):
        comm = mpi.rank(rank)
        return (yield from comm.bcast(api, b"" if rank == 0 else None))

    procs = [m4.spawn(n, worker, n) for n in range(4)]
    assert m4.run_all(procs, limit=1e10) == [b""] * 4


def test_flat_reduce_noncommutative_covers_everyone(m4):
    """The flat path folds in arrival order, so a non-commutative op
    gives *an* order — but every contribution appears exactly once and
    the root's own value leads the fold."""
    mpi = MiniMPI(m4)
    cat = lambda a, b: int(str(a) + str(b))  # noqa: E731

    def worker(api, rank):
        comm = mpi.rank(rank)
        return (yield from comm.reduce(api, rank + 1, root=0, op=cat))

    procs = [m4.spawn(n, worker, n) for n in range(4)]
    results = m4.run_all(procs, limit=1e10)
    digits = str(results[0])
    assert sorted(digits) == list("1234")
    assert digits[0] == "1"  # root's own value folds first


def test_reserved_tag_space_rejected(m2):
    """User tags stay below 0x8000; the upper half belongs to collective
    sequencing (the old 8-bit wrap masked this entirely)."""
    mpi = MiniMPI(m2)

    def a(api):
        yield from mpi.rank(0).send(api, 1, b"x", tag=0x8000)

    from repro.common.errors import SimulationError
    with pytest.raises(SimulationError):
        m2.run_until(m2.spawn(0, a), limit=1e8)


def test_many_collectives_no_tag_aliasing(m2):
    """Far more than 256 back-to-back collectives: the widened sequence
    space keeps consecutive calls from stealing each other's messages
    (the original _coll_tag wrapped at 8 bits)."""
    mpi = MiniMPI(m2)
    rounds = 300

    def worker(api, rank):
        comm = mpi.rank(rank)
        out = []
        for i in range(rounds):
            out.append((yield from comm.allreduce(api, rank + i)))
        return out

    procs = [m2.spawn(n, worker, n) for n in range(2)]
    results = m2.run_all(procs, limit=1e11)
    expected = [2 * i + 1 for i in range(rounds)]
    assert results == [expected, expected]
