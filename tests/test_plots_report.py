"""The ASCII figure renderer and the report CLI."""


from repro.bench.plots import _fmt_size, figure3, figure4, render_figure
from repro.core.blocktransfer import TransferResult


def test_render_empty():
    out = render_figure("t", {})
    assert "no data" in out


def test_render_basic_structure():
    out = render_figure("My Chart", {"A": [(1, 1.0), (10, 2.0)],
                                     "B": [(1, 2.0), (10, 4.0)]},
                        width=40, height=8, y_label="things")
    lines = out.splitlines()
    assert "My Chart" in lines[0]
    assert "1=A" in lines[0] and "2=B" in lines[0]
    assert any("1" in line for line in lines[1:])
    assert any("2" in line for line in lines[1:])
    assert "y: things" in out


def test_render_collision_marker():
    out = render_figure("t", {"A": [(1, 1.0)], "B": [(1, 1.0)]},
                        width=20, height=5)
    assert "*" in out  # both series share the cell


def test_size_ticks():
    assert _fmt_size(256) == "256"
    assert _fmt_size(1024) == "1K"
    assert _fmt_size(65536) == "64K"
    assert _fmt_size(1 << 20) == "1M"


def _fake_result(approach, size, lat_us, bw):
    return TransferResult(
        approach=approach, size=size,
        notify_latency_ns=lat_us * 1000.0,
        data_ready_latency_ns=lat_us * 1000.0,
    )


def test_figure3_groups_series():
    results = [_fake_result(a, s, 10.0 * a, 0)
               for a in (1, 2) for s in (256, 1024)]
    out = figure3(results)
    assert "1=A1" in out and "2=A2" in out
    assert "latency" in out


def test_figure4_uses_bandwidth():
    results = [_fake_result(1, 1024, 10.0, 0), _fake_result(1, 4096, 20.0, 0)]
    out = figure4(results)
    assert "MB/s" in out


def test_report_cli_mechanisms(capsys):
    from repro.bench.report import main
    assert main(["--only", "mechanisms"]) == 0
    out = capsys.readouterr().out
    assert "Mechanism microbenchmarks" in out
    assert "express" in out


def test_report_cli_shm(capsys):
    from repro.bench.report import main
    assert main(["--only", "shm"]) == 0
    out = capsys.readouterr().out
    assert "S-COMA" in out and "NUMA" in out
