"""The DRAM open-page (row buffer) model."""

import pytest

from repro.bus.bus import MemoryBus
from repro.bus.ops import BusOpType, BusTransaction
from repro.common.config import default_config
from repro.common.errors import ConfigError
from repro.mem.address import AccessMode, AddressMap, Region
from repro.mem.dram import DRAM


def _rig(engine, row_buffer=True):
    config = default_config()
    config.dram.row_buffer = row_buffer
    config.dram.validate()
    amap = AddressMap()
    dram = DRAM(engine, config.dram, config.bus, base=0)
    amap.add(Region("dram", 0, config.dram.size_bytes, AccessMode.CACHED,
                    owner=dram))
    bus = MemoryBus(engine, config.bus, amap)
    return engine, bus, dram


def _read(engine, bus, addr):
    def body():
        txn = BusTransaction(BusOpType.READ_LINE, addr, 32, master="m")
        t0 = engine.now
        yield from bus.transact(txn)
        return engine.now - t0

    return engine.run_until_triggered(engine.process(body()))


def test_sequential_hits_open_row(engine):
    engine, bus, dram = _rig(engine)
    _read(engine, bus, 0x0)  # opens the row
    assert dram.row_misses == 1
    _read(engine, bus, 0x20)
    _read(engine, bus, 0x40)
    assert dram.row_hits == 2


def test_hit_is_faster_than_miss(engine):
    engine, bus, dram = _rig(engine)
    miss_ns = _read(engine, bus, 0x0)
    hit_ns = _read(engine, bus, 0x20)
    assert hit_ns < miss_ns
    cyc = bus.config.cycle_ns
    assert miss_ns - hit_ns == pytest.approx(
        (dram.config.first_beat_cycles
         - dram.config.row_hit_first_beat_cycles) * cyc)


def test_row_conflict_closes_row(engine):
    engine, bus, dram = _rig(engine)
    _read(engine, bus, 0x0)
    # same bank, different row: stride = row_bytes * n_banks
    stride = dram.config.row_bytes * dram.config.n_banks
    _read(engine, bus, stride)
    assert dram.row_misses == 2
    _read(engine, bus, 0x0)  # original row was evicted
    assert dram.row_misses == 3


def test_banks_hold_independent_rows(engine):
    engine, bus, dram = _rig(engine)
    _read(engine, bus, 0x0)  # bank 0
    _read(engine, bus, dram.config.row_bytes)  # bank 1
    _read(engine, bus, 0x0)  # bank 0 row still open
    assert dram.row_hits == 1
    assert dram.row_misses == 2


def test_flat_timing_when_disabled(engine):
    engine, bus, dram = _rig(engine, row_buffer=False)
    a = _read(engine, bus, 0x0)
    b = _read(engine, bus, 0x20)
    assert a == b
    assert dram.row_hits == dram.row_misses == 0


def test_config_validation():
    cfg = default_config()
    cfg.dram.row_buffer = True
    cfg.dram.row_bytes = 1000  # not a power of two
    with pytest.raises(ConfigError):
        cfg.validate()
    cfg.dram.row_bytes = 2048
    cfg.dram.row_hit_first_beat_cycles = 99  # above miss latency
    with pytest.raises(ConfigError):
        cfg.validate()


def test_block_read_benefits_from_open_page():
    """The NIU's block read streams a page: mostly row hits, so open-page
    timing speeds it measurably."""
    import repro
    from repro.core.blocktransfer import BlockTransferExperiment

    def a3(row_buffer):
        cfg = repro.default_config(n_nodes=2)
        cfg.dram.row_buffer = row_buffer
        machine = repro.StarTVoyager(cfg)
        r = BlockTransferExperiment(machine).run(3, 8192)
        assert r.verified
        return r.notify_latency_ns

    flat = a3(False)
    openpage = a3(True)
    assert openpage < flat
