"""Shared-memory workloads over the directory protocol, at scale.

The tentpole acceptance tests: real programs (parallel BFS, a striped
shared hash table, the sharing-pattern kernels) running on 16-node
machines with every runtime sanitizer installed — each S-COMA line
migration, invalidation round, and writeback is machine-checked against
the protocol tables while the workload checks its own answer.
"""

import pytest

import repro
from repro.shm.workloads import (
    SHARING_PATTERNS,
    UNVISITED,
    hash_keys_for_rank,
    hash_value_of,
    make_graph,
    pattern_ns_per_access,
    sequential_bfs,
    vertex_slices,
)


def _config(n, sanitize="all"):
    cfg = repro.default_config(n_nodes=n)
    cfg.sanitize = sanitize
    return cfg


# ----------------------------------------------------------------------
# workload building blocks (pure, no machine)
# ----------------------------------------------------------------------

def test_make_graph_deterministic_and_connected():
    a = make_graph(64, 2, seed=5)
    b = make_graph(64, 2, seed=5)
    assert a == b
    assert a != make_graph(64, 2, seed=6)
    dist = sequential_bfs(a)
    assert all(d != UNVISITED for d in dist)  # backbone connects everything
    # undirected: every edge exists both ways
    for v, neighbors in enumerate(a):
        for u in neighbors:
            assert v in a[u]


def test_sequential_bfs_reference():
    #   0 - 1 - 2
    #    \-3
    adj = [[1, 3], [0, 2], [1], [0]]
    assert sequential_bfs(adj) == [0, 1, 2, 1]


def test_vertex_slices_cover_exactly():
    slices = vertex_slices(10, 4)
    assert [len(s) for s in slices] == [3, 3, 2, 2]
    flat = [v for s in slices for v in s]
    assert flat == list(range(10))


def test_hash_key_spaces_disjoint():
    seen = set()
    for rank in range(16):
        keys = hash_keys_for_rank(rank, 8)
        assert 0 not in keys
        assert not seen.intersection(keys)
        seen.update(keys)
        assert all(hash_value_of(k) == (k * 7 + 3) & 0xFFFFFFFF
                   for k in keys)


def test_pattern_aggregate():
    out = {0: (4, 1000.0), 1: (4, 3000.0)}
    assert pattern_ns_per_access(out) == 500.0
    assert pattern_ns_per_access({}) == 0.0


# ----------------------------------------------------------------------
# the 16-node acceptance runs (sanitizers on)
# ----------------------------------------------------------------------

def test_graph_traversal_16_nodes_sanitized():
    """Parallel BFS at 16 nodes: the distance array a parallel traversal
    produces over migrating/invalidating lines equals the sequential
    reference — with every protocol transition machine-checked."""
    run = repro.run(repro.scenario("shm_graph", n_vertices=96),
                    config=_config(16))
    result = run.results[0]
    assert result["bfs_ok"], result
    assert result["levels"] >= 2  # a real multi-level traversal


def test_shared_hash_table_16_nodes_sanitized():
    """Striped-lock hash table at 16 nodes: every rank's inserts land
    and every key reads back its value through the coherence protocol."""
    run = repro.run(
        repro.scenario("shm_hash", keys_per_rank=2, n_buckets=64,
                       stripes=8),
        config=_config(16))
    result = run.results[0]
    assert len(result["inserted"]) == 16
    assert all(result["inserted"].values()), result
    assert len(result["found"]) == 16
    assert all(result["found"].values()), result


def test_hash_table_endpoint_locks_small():
    """The endpoint-mode lock path still works at small scale (it is the
    fallback when no switch fabric exists)."""
    run = repro.run(
        repro.scenario("shm_hash", keys_per_rank=2, n_buckets=32,
                       lock_mode="endpoint"),
        config=_config(4))
    result = run.results[0]
    assert all(result["inserted"].values())
    assert all(result["found"].values())


@pytest.mark.parametrize("pattern", SHARING_PATTERNS)
def test_sharing_patterns_sanitized(pattern):
    """Each sharing-pattern kernel completes under full sanitizing and
    reports a positive ns-per-access."""
    run = repro.run(repro.scenario("shm_patterns", pattern=pattern,
                                   rounds=3),
                    config=_config(4))
    result = run.results[0]
    assert result["ranks"] == 4
    assert result["ns_per_access"] > 0


def test_pattern_ordering_private_cheapest():
    """The sweep's physical sanity check: uncontended private lines are
    far cheaper per access than the all-writers hotspot."""
    cost = {}
    for pattern in ("private", "hotspot"):
        run = repro.run(
            repro.scenario("shm_patterns", pattern=pattern, rounds=3),
            config=_config(4, sanitize=""))
        cost[pattern] = run.results[0]["ns_per_access"]
    assert cost["private"] * 3 < cost["hotspot"]
