"""The tracing ring buffer: category filters, bounded capacity."""

from repro.sim.trace import Tracer


def test_disabled_by_default(engine):
    t = Tracer(engine)
    t.emit("bus0", "bus.read", (1, 2))
    assert len(t) == 0


def test_enable_category(engine):
    t = Tracer(engine)
    t.enable("bus")
    t.emit("bus0", "bus.read", "a")
    t.emit("net0", "net.send", "b")  # different category: dropped
    assert len(t) == 1
    assert t.records()[0].kind == "bus.read"


def test_enable_all(engine):
    t = Tracer(engine)
    t.enable("*")
    t.emit("x", "bus.read")
    t.emit("y", "net.send")
    assert len(t) == 2


def test_disable(engine):
    t = Tracer(engine)
    t.enable("bus", "net")
    t.disable("bus")
    t.emit("x", "bus.read")
    t.emit("y", "net.send")
    assert [r.kind for r in t.records()] == ["net.send"]
    t.disable("*")
    t.emit("y", "net.send")
    assert len(t.records()) == 1


def test_filtering(engine):
    t = Tracer(engine)
    t.enable("*")
    t.emit("bus0", "bus.read")
    t.emit("bus0", "bus.write")
    t.emit("bus1", "bus.read")
    assert len(t.records(kind_prefix="bus.read")) == 2
    assert len(t.records(source="bus0")) == 2
    assert len(t.records(kind_prefix="bus.read", source="bus1")) == 1


def test_bounded_capacity(engine):
    t = Tracer(engine, capacity=10)
    t.enable("*")
    for i in range(25):
        t.emit("s", "k.x", i)
    records = t.records()
    assert len(records) == 10
    assert records[0].detail == 15  # oldest entries evicted


def test_timestamps(engine):
    t = Tracer(engine)
    t.enable("k")
    ev = engine.timeout(42.0)
    ev.add_callback(lambda _e: t.emit("s", "k.late"))
    engine.run()
    assert t.records()[0].time == 42.0
    t.clear()
    assert len(t) == 0
