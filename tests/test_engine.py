"""The discrete-event engine: ordering, determinism, deadlock detection."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.engine import Engine


def test_time_starts_at_zero(engine):
    assert engine.now == 0.0


def test_timeout_advances_time(engine):
    ev = engine.timeout(100.0, value="done")
    assert engine.run_until_triggered(ev) == "done"
    assert engine.now == 100.0


def test_same_time_fifo_order(engine):
    order = []
    for i in range(5):
        engine.timeout(10.0).add_callback(lambda _e, i=i: order.append(i))
    engine.run()
    assert order == [0, 1, 2, 3, 4]


def test_events_run_in_time_order(engine):
    order = []
    for delay in (30.0, 10.0, 20.0):
        engine.timeout(delay, delay).add_callback(
            lambda e: order.append(e.value))
    engine.run()
    assert order == [10.0, 20.0, 30.0]


def test_run_until_limit(engine):
    engine.timeout(100.0)
    engine.timeout(500.0)
    t = engine.run(until=200.0)
    assert t == 200.0
    assert engine.pending_events == 1


def test_run_until_backwards_rejected(engine):
    engine.timeout(100.0)
    engine.run()
    with pytest.raises(SimulationError):
        engine.run(until=50.0)


def test_run_until_triggered_deadlock(engine):
    forever = engine.event()
    with pytest.raises(SimulationError, match="deadlock"):
        engine.run_until_triggered(forever)


def test_run_until_triggered_time_limit(engine):
    def proc():
        yield engine.timeout(1000.0)

    p = engine.process(proc())
    with pytest.raises(SimulationError, match="limit"):
        engine.run_until_triggered(p, limit=100.0)


def test_process_crash_surfaces(engine):
    def bad():
        yield engine.timeout(10.0)
        raise RuntimeError("boom")

    engine.process(bad())
    with pytest.raises(SimulationError, match="crashed"):
        engine.run()


def test_crash_suppressed_when_not_strict(engine):
    engine.strict = False

    def bad():
        yield engine.timeout(10.0)
        raise RuntimeError("boom")

    engine.process(bad())
    engine.run()  # does not raise
    assert engine.now == 10.0


def test_determinism_across_engines():
    def build():
        eng = Engine()
        log = []

        def worker(name, delay):
            yield eng.timeout(delay)
            log.append((eng.now, name))
            yield eng.timeout(delay)
            log.append((eng.now, name))

        for i in range(4):
            eng.process(worker(f"p{i}", 5.0 + i))
        eng.run()
        return log

    assert build() == build()


def test_negative_delay_rejected(engine):
    with pytest.raises(SimulationError):
        engine.timeout(-1.0)


def test_zero_delay_timeout_runs(engine):
    ev = engine.timeout(0.0, "now")
    assert engine.run_until_triggered(ev) == "now"
    assert engine.now == 0.0
