"""The discrete-event engine: ordering, determinism, deadlock detection."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.engine import Engine, SchedulePolicy


def test_time_starts_at_zero(engine):
    assert engine.now == 0.0


def test_timeout_advances_time(engine):
    ev = engine.timeout(100.0, value="done")
    assert engine.run_until_triggered(ev) == "done"
    assert engine.now == 100.0


def test_same_time_fifo_order(engine):
    order = []
    for i in range(5):
        engine.timeout(10.0).add_callback(lambda _e, i=i: order.append(i))
    engine.run()
    assert order == [0, 1, 2, 3, 4]


def test_events_run_in_time_order(engine):
    order = []
    for delay in (30.0, 10.0, 20.0):
        engine.timeout(delay, delay).add_callback(
            lambda e: order.append(e.value))
    engine.run()
    assert order == [10.0, 20.0, 30.0]


def test_run_until_limit(engine):
    engine.timeout(100.0)
    engine.timeout(500.0)
    t = engine.run(until=200.0)
    assert t == 200.0
    assert engine.pending_events == 1


def test_run_until_backwards_rejected(engine):
    engine.timeout(100.0)
    engine.run()
    with pytest.raises(SimulationError):
        engine.run(until=50.0)


def test_run_until_triggered_deadlock(engine):
    forever = engine.event()
    with pytest.raises(SimulationError, match="deadlock"):
        engine.run_until_triggered(forever)


def test_run_until_triggered_time_limit(engine):
    def proc():
        yield engine.timeout(1000.0)

    p = engine.process(proc())
    with pytest.raises(SimulationError, match="limit"):
        engine.run_until_triggered(p, limit=100.0)


def test_process_crash_surfaces(engine):
    def bad():
        yield engine.timeout(10.0)
        raise RuntimeError("boom")

    engine.process(bad())
    with pytest.raises(SimulationError, match="crashed"):
        engine.run()


def test_crash_suppressed_when_not_strict(engine):
    engine.strict = False

    def bad():
        yield engine.timeout(10.0)
        raise RuntimeError("boom")

    engine.process(bad())
    engine.run()  # does not raise
    assert engine.now == 10.0


def test_determinism_across_engines():
    def build():
        eng = Engine()
        log = []

        def worker(name, delay):
            yield eng.timeout(delay)
            log.append((eng.now, name))
            yield eng.timeout(delay)
            log.append((eng.now, name))

        for i in range(4):
            eng.process(worker(f"p{i}", 5.0 + i))
        eng.run()
        return log

    assert build() == build()


def test_negative_delay_rejected(engine):
    with pytest.raises(SimulationError):
        engine.timeout(-1.0)


def test_zero_delay_timeout_runs(engine):
    ev = engine.timeout(0.0, "now")
    assert engine.run_until_triggered(ev) == "now"
    assert engine.now == 0.0


# ----------------------------------------------------------------------
# the schedule-policy hook
# ----------------------------------------------------------------------


class _Recorder(SchedulePolicy):
    """Canonical choices, recording every tie group it is offered."""

    def __init__(self):
        self.groups = []

    def choose(self, time, ready):
        self.groups.append((time, len(ready)))
        return 0


class _Reverser(SchedulePolicy):
    """Always pick the last ready item — maximal reordering."""

    def choose(self, time, ready):
        return len(ready) - 1


def _tie_run(policy):
    eng = Engine()
    eng.schedule_policy = policy
    order = []
    for i in range(4):
        eng.timeout(10.0).add_callback(lambda _e, i=i: order.append(i))
    eng.timeout(20.0).add_callback(lambda _e: order.append("late"))
    eng.run()
    return order


def test_policy_none_is_default_and_canonical():
    assert Engine().schedule_policy is None
    assert _tie_run(None) == [0, 1, 2, 3, "late"]


def test_base_policy_matches_policy_free_order():
    # SchedulePolicy's canonical choice must be byte-identical to the
    # plain heap order, so installing a policy is observable only if it
    # deviates
    assert _tie_run(SchedulePolicy()) == _tie_run(None)


def test_policy_receives_same_time_groups_only():
    rec = _Recorder()
    _tie_run(rec)
    # one 4-way group at t=10; the lone t=20 item never reaches choose
    assert (10.0, 4) in rec.groups
    assert all(t != 20.0 for t, _n in rec.groups)


def test_policy_reordering_takes_effect():
    order = _tie_run(_Reverser())
    assert order[:4] == [3, 2, 1, 0]
    assert order[-1] == "late"


def test_policy_bad_index_raises():
    class Bad(SchedulePolicy):
        def choose(self, time, ready):
            return len(ready)  # one past the end

    with pytest.raises(SimulationError):
        _tie_run(Bad())


def test_policy_applies_in_run_until_triggered():
    eng = Engine()
    eng.schedule_policy = _Reverser()
    order = []
    for i in range(3):
        eng.timeout(5.0).add_callback(lambda _e, i=i: order.append(i))
    done = eng.timeout(6.0, "done")
    assert eng.run_until_triggered(done) == "done"
    assert order == [2, 1, 0]
