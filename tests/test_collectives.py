"""The collectives subsystem end to end: flat vs tree vs NIC-offloaded.

Every algorithm family must produce identical results — including on
non-power-of-two machines — and the NIC path must actually run in the
sP firmware (combining counters move, the aP does one enqueue + one
dequeue).
"""

import pytest

import repro
from repro.collectives.firmware import ensure_collectives
from repro.collectives.plan import kary_tree
from repro.common.errors import ProgramError, SimulationError
from repro.lib.mpi import MiniMPI


def _machine(n):
    return repro.StarTVoyager(repro.default_config(n_nodes=n))


def _run_suite(machine, mpi):
    """One of everything on every rank; returns the per-rank results."""
    n = machine.config.n_nodes

    def worker(api, rank):
        comm = mpi.rank(rank)
        yield from comm.barrier(api)
        data = yield from comm.bcast(
            api, b"payload-42" if rank == 0 else None, root=0)
        total = yield from comm.reduce(api, rank + 1, root=0, op="sum")
        yield from comm.barrier(api)
        big = yield from comm.allreduce(api, rank + 1, op="max")
        parts = yield from comm.gather(api, bytes([rank]) * (rank + 1),
                                       root=0)
        return data, total, big, parts

    procs = [machine.spawn(i, worker, i) for i in range(n)]
    return machine.run_all(procs, limit=1e10)


@pytest.mark.parametrize("algo", ["flat", "tree", "nic"])
@pytest.mark.parametrize("n", [4, 6])
def test_algos_agree(algo, n):
    """All algorithm families give the same answers, also at the
    non-power-of-two size 6 (the acceptance-criterion case)."""
    machine = _machine(n)
    results = _run_suite(machine, MiniMPI(machine, algo=algo))
    expected_gather = [bytes([r]) * (r + 1) for r in range(n)]
    for rank, (data, total, big, parts) in enumerate(results):
        assert data == b"payload-42"
        assert total == (n * (n + 1) // 2 if rank == 0 else None)
        assert big == n
        assert parts == (expected_gather if rank == 0 else None)


@pytest.mark.parametrize("algo", ["tree", "nic"])
def test_kary_tree_shape(algo):
    machine = _machine(6)
    results = _run_suite(machine, MiniMPI(machine, algo=algo, tree="kary",
                                          arity=3))
    assert all(r[2] == 6 for r in results)


def test_nic_firmware_combines():
    """The offloaded path runs in the sP: combining state completes at
    the root and every node delivers exactly one result per collective,
    while the aP issues a single send and a single recv."""
    machine = _machine(4)
    mpi = MiniMPI(machine, algo="nic")

    def worker(api, rank):
        comm = mpi.rank(rank)
        got = yield from comm.allreduce(api, rank, op="sum")
        return got, comm.port.sent, comm.port.received

    procs = [machine.spawn(i, worker, i) for i in range(4)]
    results = machine.run_all(procs, limit=1e10)
    for got, sent, received in results:
        assert got == 0 + 1 + 2 + 3
        assert sent == 1  # one enqueue ...
        assert received == 1  # ... one dequeue per collective
    root = mpi.nic_plan.root
    assert machine.stats.counter(f"sp{root}.coll_completed").value == 1
    for i in range(4):
        assert machine.stats.counter(f"sp{i}.coll_delivered").value == 1


def test_nic_reduce_root_only_delivery():
    machine = _machine(4)
    mpi = MiniMPI(machine, algo="nic")

    def worker(api, rank):
        comm = mpi.rank(rank)
        return (yield from comm.reduce(api, 2 ** rank, root=0, op="sum"))

    procs = [machine.spawn(i, worker, i) for i in range(4)]
    results = machine.run_all(procs, limit=1e10)
    assert results == [15, None, None, None]
    assert machine.stats.counter("sp0.coll_delivered").value == 1
    assert machine.stats.counter("sp1.coll_delivered").value == 0


def test_nic_rejects_callable_op():
    machine = _machine(2)
    mpi = MiniMPI(machine, algo="nic")

    def worker(api, rank):
        comm = mpi.rank(rank)
        yield from comm.allreduce(api, 1, op=lambda a, b: a + b)

    with pytest.raises(SimulationError):
        machine.run_until(machine.spawn(0, worker, 0), limit=1e9)


def test_nic_rejects_arbitrary_root():
    machine = _machine(4)
    mpi = MiniMPI(machine, algo="nic")

    def worker(api, rank):
        comm = mpi.rank(rank)
        yield from comm.bcast(api, b"x", root=2)

    with pytest.raises(SimulationError):
        machine.run_until(machine.spawn(2, worker, 2), limit=1e9)


def test_nic_bcast_payload_cap():
    machine = _machine(2)
    mpi = MiniMPI(machine, algo="nic")

    def worker(api, rank):
        yield from mpi.rank(rank).bcast(api, bytes(100), root=0)

    with pytest.raises(SimulationError):
        machine.run_until(machine.spawn(0, worker, 0), limit=1e9)


def test_ensure_collectives_replaces_idle_plan():
    machine = _machine(4)
    # the default image ships a binomial plan; an explicit different
    # plan reinstalls cluster-wide while nothing is in flight
    assert ensure_collectives(machine).kind == "binomial"
    plan = ensure_collectives(machine, kary_tree(4, k=3))
    assert plan.kind == "kary3"
    assert machine.node(2).sp.state["collectives"].plan is plan
    # and asking again without a plan keeps it
    assert ensure_collectives(machine) is plan


def test_invalid_algo_rejected():
    machine = _machine(2)
    with pytest.raises(ProgramError):
        MiniMPI(machine, algo="quantum")
    with pytest.raises(ProgramError):
        MiniMPI(machine, tree="fractal")


def test_tree_reduce_canonical_order():
    """Non-commutative op on the tree path: the binomial fold equals the
    ascending-rank fold (decimal concatenation makes order visible)."""
    machine = _machine(6)
    mpi = MiniMPI(machine, algo="tree")
    cat = lambda a, b: int(str(a) + str(b))  # noqa: E731

    def worker(api, rank):
        comm = mpi.rank(rank)
        return (yield from comm.reduce(api, rank + 1, root=0, op=cat))

    procs = [machine.spawn(i, worker, i) for i in range(6)]
    results = machine.run_all(procs, limit=1e10)
    assert results[0] == 123456


def test_tree_allreduce_deterministic_noncommutative():
    machine = _machine(6)
    mpi = MiniMPI(machine, algo="tree")
    cat = lambda a, b: int(str(a) + str(b))  # noqa: E731

    def worker(api, rank):
        comm = mpi.rank(rank)
        return (yield from comm.allreduce(api, rank + 1, op=cat))

    procs = [machine.spawn(i, worker, i) for i in range(6)]
    results = machine.run_all(procs, limit=1e10)
    # every rank agrees, and every contribution appears exactly once
    assert len(set(results)) == 1
    assert sorted(str(results[0])) == list("123456")


@pytest.mark.parametrize("algo", ["flat", "tree", "nic"])
def test_wide_machine_collectives(algo):
    """Beyond the 16-node vdst convention: RAW addressing carries the
    same collectives on a 17-node machine."""
    machine = _machine(17)
    mpi = MiniMPI(machine, algo=algo)
    assert mpi.wide

    def worker(api, rank):
        comm = mpi.rank(rank)
        yield from comm.barrier(api)
        return (yield from comm.allreduce(api, rank, op="sum"))

    procs = [machine.spawn(i, worker, i) for i in range(17)]
    results = machine.run_all(procs, limit=1e10)
    assert results == [sum(range(17))] * 17
