"""The S-COMA directory protocol: sharing, ownership, invalidation."""

import pytest

import repro
from repro.niu.clssram import CLS_INVALID, CLS_RO, CLS_RW
from repro.shm import ScomaRegion


@pytest.fixture
def m2():
    return repro.StarTVoyager(repro.default_config(n_nodes=2))


@pytest.fixture
def m3():
    return repro.StarTVoyager(repro.default_config(n_nodes=3))


def _region(machine, n_lines=256):
    region = ScomaRegion(machine, n_lines=n_lines)
    return region


def test_home_lines_start_valid(m2):
    region = _region(m2)
    # line 0 is homed on node 0 (page round-robin)
    assert region.home_of(0) == 0
    assert region.cls_state(0, 0) == CLS_RW
    assert region.cls_state(1, 0) == CLS_INVALID


def test_home_read_is_local(m2):
    region = _region(m2)
    region.init_data(0, b"\x11" * 32)
    sp1_busy = m2.node(1).sp.busy.busy_ns

    def prog(api):
        return (yield from api.load(region.addr(0), 8))

    assert m2.run_until(m2.spawn(0, prog), limit=1e8) == b"\x11" * 8
    # no protocol traffic: the remote sP never woke
    assert m2.node(1).sp.busy.busy_ns == sp1_busy


def test_remote_read_fetches_and_caches(m2):
    region = _region(m2)
    region.init_data(0, bytes(range(32)))

    def prog(api):
        a = yield from api.load(region.addr(0), 8)
        b = yield from api.load(region.addr(8), 8)  # same line: now local
        return a, b

    a, b = m2.run_until(m2.spawn(1, prog), limit=1e9)
    assert a == bytes(range(8))
    assert b == bytes(range(8, 16))
    assert region.cls_state(1, 0) == CLS_RO
    # the home downgraded its own copy to read-only
    assert region.cls_state(0, 0) == CLS_RO


def test_remote_write_takes_ownership(m2):
    region = _region(m2)
    region.init_data(0, b"\x00" * 32)

    def writer(api):
        yield from api.store(region.addr(0), b"OWNED!!!")

    m2.run_until(m2.spawn(1, writer), limit=1e9)
    m2.run(until=m2.now + 100_000)
    assert region.cls_state(1, 0) == CLS_RW
    assert region.cls_state(0, 0) == CLS_INVALID  # home gave it up


def test_dirty_recall_returns_data(m2):
    region = _region(m2)
    region.init_data(0, b"\x00" * 32)

    def writer(api):
        yield from api.store(region.addr(0), b"DIRTYDAT")

    def reader(api):
        return (yield from api.load(region.addr(0), 8))

    m2.run_until(m2.spawn(1, writer), limit=1e9)
    # home reads it back: recall from the remote owner
    assert m2.run_until(m2.spawn(0, reader), limit=1e9) == b"DIRTYDAT"
    m2.run(until=m2.now + 100_000)
    assert region.cls_state(0, 0) == CLS_RO
    assert region.cls_state(1, 0) == CLS_RO


def test_write_invalidates_sharers(m3):
    region = _region(m3)
    region.init_data(0, b"\xaa" * 32)

    def read(api):
        return (yield from api.load(region.addr(0), 8))

    # nodes 1 and 2 both share the line
    m3.run_until(m3.spawn(1, read), limit=1e9)
    m3.run_until(m3.spawn(2, read), limit=1e9)
    assert region.cls_state(1, 0) == CLS_RO
    assert region.cls_state(2, 0) == CLS_RO

    def write(api):
        yield from api.store(region.addr(0), b"newvalue")

    m3.run_until(m3.spawn(1, write), limit=1e9)
    m3.run(until=m3.now + 200_000)
    assert region.cls_state(1, 0) == CLS_RW
    assert region.cls_state(2, 0) == CLS_INVALID
    assert region.cls_state(0, 0) == CLS_INVALID

    # node 2 re-reads: sees the new value through a recall
    got = m3.run_until(m3.spawn(2, read), limit=1e9)
    assert got == b"newvalue"


def test_value_propagation_chain(m2):
    """Alternating writers: every write must be seen by the next reader."""
    region = _region(m2)
    region.init_data(0, b"\x00" * 32)

    def rmw(api, who):
        v = yield from api.load(region.addr(0), 8)
        n = int.from_bytes(v, "big") + 1
        yield from api.store(region.addr(0), n.to_bytes(8, "big"))
        return n

    values = []
    for round_ in range(6):
        node = round_ % 2
        values.append(m2.run_until(m2.spawn(node, rmw, node), limit=1e10))
    assert values == [1, 2, 3, 4, 5, 6]


def test_second_page_homed_remotely(m2):
    region = _region(m2)
    page_lines = m2.config.dram.page_bytes // 32
    offset = page_lines * 32  # first line of page 1: home is node 1
    assert region.home_of(offset) == 1
    region.init_data(offset, b"\x42" * 32)

    def prog(api):
        return (yield from api.load(region.addr(offset), 8))

    # node 0 reads a line homed on node 1
    assert m2.run_until(m2.spawn(0, prog), limit=1e9) == b"\x42" * 8
    assert region.cls_state(0, offset) == CLS_RO


def test_l2_invalidated_on_protocol_invalidate(m2):
    """A cached copy in the reader's L2 must die with its cls state."""
    region = _region(m2)
    region.init_data(0, b"\x10" * 32)

    def read(api):
        return (yield from api.load(region.addr(0), 8))

    m2.run_until(m2.spawn(1, read), limit=1e9)  # node 1 caches in L2 + frame

    def write(api):
        yield from api.store(region.addr(0), b"FRESHEST")

    m2.run_until(m2.spawn(0, write), limit=1e9)  # home upgrade invalidates
    m2.run(until=m2.now + 200_000)
    got = m2.run_until(m2.spawn(1, read), limit=1e9)
    assert got == b"FRESHEST"


def test_concurrent_readers_converge(m3):
    region = _region(m3)
    region.init_data(0, b"\x07" * 32)

    def read(api):
        return (yield from api.load(region.addr(0), 8))

    procs = [m3.spawn(n, read) for n in (1, 2)]
    results = m3.run_all(procs, limit=1e10)
    assert results == [b"\x07" * 8, b"\x07" * 8]


def test_region_bounds(m2):
    region = _region(m2, n_lines=4)
    from repro.common.errors import ProgramError
    with pytest.raises(ProgramError):
        region.addr(4 * 32)
    with pytest.raises(ProgramError):
        ScomaRegion(m2, n_lines=10**9)
