"""System registers: definition, protection split, write hooks."""

import pytest

from repro.common.errors import ProtectionViolation, QueueError
from repro.niu.sysregs import SystemRegisters


def test_define_read_write():
    r = SystemRegisters()
    r.define("tx_priority.0", 3)
    assert r.read("tx_priority.0") == 3
    r.write("tx_priority.0", 1)
    assert r.read("tx_priority.0") == 1


def test_redefine_rejected():
    r = SystemRegisters()
    r.define("x")
    with pytest.raises(QueueError):
        r.define("x")


def test_unknown_register():
    r = SystemRegisters()
    with pytest.raises(QueueError):
        r.read("nope")
    with pytest.raises(QueueError):
        r.write("nope", 1)
    with pytest.raises(QueueError):
        r.on_write("nope", lambda n, v: None)


def test_untrusted_write_blocked():
    r = SystemRegisters()
    r.define("secret", user_writable=False)
    with pytest.raises(ProtectionViolation):
        r.write("secret", 1, trusted=False)
    r.write("secret", 1, trusted=True)  # trusted path fine


def test_user_writable():
    r = SystemRegisters()
    r.define("knob", user_writable=True)
    r.write("knob", 9, trusted=False)
    assert r.read("knob") == 9


def test_write_hooks_fire():
    r = SystemRegisters()
    r.define("p")
    seen = []
    r.on_write("p", lambda name, value: seen.append((name, value)))
    r.on_write("p", lambda name, value: seen.append("second"))
    r.write("p", 5)
    assert seen == [("p", 5), "second"]


def test_names_sorted():
    r = SystemRegisters()
    r.define("b")
    r.define("a")
    assert r.names() == ["a", "b"]
