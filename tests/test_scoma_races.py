"""S-COMA protocol races: concurrent conflicting requests.

These drive the directory's BUSY/waiters machinery — requests arriving
while an invalidation or recall is in flight must queue and replay, and
the outcome must still be per-location coherent.
"""


import repro
from repro.niu.clssram import CLS_RO, CLS_RW
from repro.shm import ScomaRegion


def _machine(n):
    return repro.StarTVoyager(repro.default_config(n_nodes=n))


def test_concurrent_writers_same_line():
    """Two nodes write the same remote-homed line simultaneously; both
    writes serialize through the home and the final state is coherent."""
    m = _machine(3)
    region = ScomaRegion(m, n_lines=16)
    region.init_data(0, bytes(32))

    def writer(api, who):
        yield from api.store(region.addr(0), bytes([who]) * 8)

    procs = [m.spawn(1, writer, 0xA1), m.spawn(2, writer, 0xB2)]
    m.run_all(procs, limit=1e10)
    m.run(until=m.now + 500_000)
    # exactly one node ends RW; the other was invalidated
    states = {n: region.cls_state(n, 0) for n in range(3)}
    rw_holders = [n for n, s in states.items() if s == CLS_RW]
    assert len(rw_holders) == 1
    winner = rw_holders[0]
    assert winner in (1, 2)
    # the winner's frame holds its own value (its write was last)
    value = region.frame_peek(winner, 0, 8)
    assert value in (bytes([0xA1]) * 8, bytes([0xB2]) * 8)

    # a subsequent read from node 0 sees the final value
    def reader(api):
        return (yield from api.load(region.addr(0), 8))

    got = m.run_until(m.spawn(0, reader), limit=1e10)
    assert got == value


def test_reader_during_write_transition():
    """A read arriving while the home is invalidating for a writer queues
    and completes with the writer's data."""
    m = _machine(3)
    region = ScomaRegion(m, n_lines=16)
    region.init_data(0, b"\x0f" * 32)

    def preload(api):  # make node 2 a sharer so the write must invalidate
        return (yield from api.load(region.addr(0), 8))

    m.run_until(m.spawn(2, preload), limit=1e10)

    def writer(api):
        yield from api.store(region.addr(0), b"WRITER!!")

    def racer(api):
        yield from api.compute(10)  # start a hair later
        return (yield from api.load(region.addr(0), 8))

    w = m.spawn(1, writer)
    r = m.spawn(2, racer)
    results = m.run_all([w, r], limit=1e10)
    # the racing reader saw either the old value (before invalidation
    # took effect at node 2) or the new one — never garbage
    assert results[1] in (b"\x0f" * 8, b"WRITER!!")

    def reader(api):
        return (yield from api.load(region.addr(0), 8))

    m.run(until=m.now + 500_000)
    assert m.run_until(m.spawn(0, reader), limit=1e10) == b"WRITER!!"


def test_write_storm_converges():
    """Many alternating writers on one line: every round trip works and
    the last write wins everywhere."""
    m = _machine(2)
    region = ScomaRegion(m, n_lines=8)
    region.init_data(0, bytes(32))
    last = {}

    def writer(api, node, round_):
        value = bytes([node * 16 + round_]) * 8
        yield from api.store(region.addr(0), value)
        last["value"] = value

    for round_ in range(5):
        for node in (0, 1):
            m.run_until(m.spawn(node, writer, node, round_), limit=1e10)
    m.run(until=m.now + 500_000)

    def reader(api):
        return (yield from api.load(region.addr(0), 8))

    for node in (0, 1):
        assert m.run_until(m.spawn(node, reader), limit=1e10) == last["value"]


def test_concurrent_misses_distinct_lines_independent():
    """Misses on different lines must not serialize through each other's
    directory entries."""
    m = _machine(2)
    region = ScomaRegion(m, n_lines=16)
    region.init_data(0, bytes(range(32)) + bytes(range(32)) + bytes(64))

    def reader(api, line):
        return (yield from api.load(region.addr(line * 32), 8))

    procs = [m.spawn(1, reader, line) for line in range(4)]
    results = m.run_all(procs, limit=1e10)
    assert results[0] == bytes(range(8))
    assert results[1] == bytes(range(8))
    assert all(region.cls_state(1, l * 32) == CLS_RO for l in range(4))


def test_upgrade_race_with_invalidate():
    """Node A holds RO and upgrades while home invalidates it for node
    B's write: A's KILL stalls, loses the line, refetches, and still
    completes its store coherently after B's."""
    m = _machine(3)
    region = ScomaRegion(m, n_lines=8)
    region.init_data(0, bytes(32))

    def share(api):
        return (yield from api.load(region.addr(0), 8))

    m.run_until(m.spawn(1, share), limit=1e10)
    m.run_until(m.spawn(2, share), limit=1e10)
    assert region.cls_state(1, 0) == CLS_RO
    assert region.cls_state(2, 0) == CLS_RO

    def upgrade(api, who):
        yield from api.store(region.addr(0), bytes([who]) * 8)

    procs = [m.spawn(1, upgrade, 0x11), m.spawn(2, upgrade, 0x22)]
    m.run_all(procs, limit=1e10)
    m.run(until=m.now + 500_000)
    holders = [n for n in range(3) if region.cls_state(n, 0) == CLS_RW]
    assert len(holders) == 1
    final = region.frame_peek(holders[0], 0, 8)
    assert final in (bytes([0x11]) * 8, bytes([0x22]) * 8)


# ----------------------------------------------------------------------
# machine-checked interleavings (sanitizers on)
# ----------------------------------------------------------------------

import random

import pytest

from repro.mp.basic import BasicPort


def _sanitized_machine(n):
    cfg = repro.default_config(n_nodes=n)
    cfg.sanitize = "all"
    return repro.StarTVoyager(cfg)


def test_writeback_install_is_fenced():
    """Regression: a read recalling a dirty line must not be granted
    before the writeback data has committed to the home frame.

    Node 1 takes exclusive ownership of a line homed at node 0 and
    dirties it; node 0's subsequent read recalls the line and must see
    node 1's data, not the stale home frame (the original install used
    an unfenced DRAM write, so the home's own retrying load could slip
    in ahead of the data)."""
    m = _sanitized_machine(2)
    region = ScomaRegion(m, n_lines=8)
    region.init_data(0, bytes(32))
    assert region.home_of(0) == 0

    def dirty(api):
        yield from api.store(region.addr(0), b"\xd1" * 8)

    m.run_until(m.spawn(1, dirty), limit=1e10)
    assert region.cls_state(1, 0) == CLS_RW

    def reread(api):
        return (yield from api.load(region.addr(0), 8))

    got = m.run_until(m.spawn(0, reread), limit=1e10)
    assert got == b"\xd1" * 8


@pytest.mark.parametrize("seed", [7, 23, 101])
def test_seeded_interleaving_read_write_evict(seed):
    """Randomized (but seeded) concurrent read/write/evict storms on one
    line across 4 nodes, machine-checked by every sanitizer.

    The schedule is deterministic per seed; the assertions are the
    protocol's end-state guarantees: at most one RW holder, every node
    agrees on the final value, and the coherence sanitizer audited a
    non-trivial number of directory transitions along the way."""
    rng = random.Random(seed)
    m = _sanitized_machine(4)
    region = ScomaRegion(m, n_lines=8)
    region.init_data(0, bytes(8 * 32))
    ports = {n: BasicPort(m.node(n), 0, 0) for n in range(4)}
    plans = {
        node: [(rng.choice(("load", "store", "store", "evict")),
                rng.randrange(200, 3_000))
               for _ in range(5)]
        for node in range(4)
    }

    def prog(api, node, ops):
        for op, gap in ops:
            yield from api.sleep(gap)
            if op == "load":
                yield from api.load(region.addr(0), 8)
            elif op == "store":
                yield from api.store(region.addr(0), bytes([node + 1]) * 8)
            else:
                yield from region.evict(api, ports[node], 0)

    procs = [m.spawn(node, prog, node, plans[node]) for node in range(4)]
    m.run_all(procs, limit=1e10)
    m.run(until=m.now + 1_000_000)  # let in-flight protocol settle

    holders = [n for n in range(4) if region.cls_state(n, 0) == CLS_RW]
    assert len(holders) <= 1

    def reader(api):
        return (yield from api.load(region.addr(0), 8))

    values = {n: m.run_until(m.spawn(n, reader), limit=1e10)
              for n in range(4)}
    assert len(set(values.values())) == 1
    report = m.sanitizers.report()["coherence"]
    assert report["dir_checked"] > 10
    assert report["cause_checked"] > 10


def test_home_stores_survive_remote_takeover():
    """Regression: the home's own stores must not be lost when a remote
    node takes the line over.

    The home aP writes through its write-back L2, so its newest bytes
    can sit Modified above a stale DRAM frame.  The original grant path
    snapshotted the frame first and revoked the home's access last with
    a data-destroying KILL — a home store landing in that window (into a
    line the directory had already promised away) vanished.  Every byte
    below has a single writer, so after the dust settles the line must
    hold every value written."""
    m = _sanitized_machine(2)
    region = ScomaRegion(m, n_lines=8)
    region.init_data(0, bytes(32))
    assert region.home_of(0) == 0

    def home_writer(api):
        # byte i <- 0xA0+i, spaced so the stream straddles the takeover
        for i in range(16):
            yield from api.store(region.addr(i), bytes([0xA0 + i]))
            yield from api.sleep(150)

    def thief(api):
        # grab exclusive ownership mid-stream
        yield from api.sleep(1_200)
        yield from api.store(region.addr(16), b"\xbb")

    m.run_all([m.spawn(0, home_writer), m.spawn(1, thief)], limit=1e10)
    m.run(until=m.now + 1_000_000)

    def reader(api):
        return (yield from api.load(region.addr(0), 17))

    for node in (0, 1):
        got = m.run_until(m.spawn(node, reader), limit=1e10)
        want = bytes(0xA0 + i for i in range(16)) + b"\xbb"
        assert got == want, f"node {node}: {got.hex()} != {want.hex()}"
