"""Reduction-tree planning (`repro.sync.plan`) against the fat tree.

Every plan is validated structurally (`validate_plan` walks the
topology's wiring), including the awkward shapes the planner must get
right: non-power-of-two member sets, single-member groups, groups that
span only one leaf switch, and machines large enough to need three
switch levels.
"""

import pytest

from repro.common.errors import ConfigError
from repro.net.combine import GroupProgram
from repro.net.topology import FatTreeTopology
from repro.sync.plan import plan_group, validate_plan


def test_single_member_plan_is_one_leaf_switch():
    topo = FatTreeTopology(8, radix=4)
    plan = plan_group(topo, 1, [5])
    assert plan.members == (5,)
    assert plan.root == (1, topo.leaf_switch(5))
    assert set(plan.programs) == {plan.root}
    prog = plan.programs[plan.root]
    assert prog.is_root
    assert prog.down == ((5 % topo.down_degree, 5),)
    validate_plan(topo, plan)


def test_same_leaf_members_root_at_their_leaf_switch():
    topo = FatTreeTopology(8, radix=4)
    plan = plan_group(topo, 1, [2, 3])  # both under leaf switch 1
    assert plan.root == (1, 1)
    assert set(plan.programs) == {(1, 1)}
    validate_plan(topo, plan)


def test_full_machine_plan_roots_at_top_level():
    topo = FatTreeTopology(8, radix=4)
    plan = plan_group(topo, 1, range(8))
    assert plan.root[0] == topo.levels
    # every leaf switch participates
    leaf_keys = {k for k in plan.programs if k[0] == 1}
    assert leaf_keys == {(1, i) for i in range(4)}
    validate_plan(topo, plan)


def test_non_power_of_two_members_validate():
    topo = FatTreeTopology(16, radix=4)
    for members in ([0, 3, 7], [1, 2, 5, 9, 14], list(range(11))):
        plan = plan_group(topo, 2, members)
        assert plan.members == tuple(sorted(members))
        validate_plan(topo, plan)


def test_plan_is_canonical_for_a_member_set():
    topo = FatTreeTopology(16, radix=4)
    a = plan_group(topo, 7, [9, 2, 5, 2, 14])
    b = plan_group(topo, 7, [14, 5, 9, 2])
    assert a.describe() == b.describe()


def test_plan_rejects_bad_members():
    topo = FatTreeTopology(8, radix=4)
    with pytest.raises(ConfigError):
        plan_group(topo, 1, [])
    with pytest.raises(ConfigError):
        plan_group(topo, 1, [8])
    with pytest.raises(ConfigError):
        plan_group(topo, 1, [-1])


def test_concurrent_groups_spread_over_redundant_roots():
    """Full-machine groups pick their root copy by a seeded hash of the
    group id, so concurrent groups don't all pile onto copy 0."""
    topo = FatTreeTopology(16, radix=4)
    roots = {plan_group(topo, gid, range(16)).root for gid in range(1, 9)}
    assert len(roots) > 1
    # but each (gid, seed) choice is itself deterministic
    assert plan_group(topo, 3, range(16)).root \
        == plan_group(topo, 3, range(16)).root


def test_plan_sweep_validates_across_shapes():
    """Property sweep: every plan is wiring-consistent for a grid of
    machine sizes, radices and member sets."""
    cases = [
        (4, 4), (8, 4), (16, 4), (13, 4), (27, 6), (64, 8), (1024, 8),
    ]
    checked = 0
    for n_nodes, radix in cases:
        topo = FatTreeTopology(n_nodes, radix=radix)
        member_sets = [
            [0],
            [n_nodes - 1],
            list(range(n_nodes)),
            list(range(0, n_nodes, 3)),
            [0, n_nodes // 2, n_nodes - 1],
        ]
        for gid, members in enumerate(member_sets, start=1):
            for seed in (0, 1):
                plan = plan_group(topo, gid, members, seed=seed)
                validate_plan(topo, plan)
                checked += 1
    assert checked == len(cases) * 5 * 2


def test_validate_plan_catches_corruption():
    topo = FatTreeTopology(8, radix=4)
    plan = plan_group(topo, 1, range(8))
    # break a non-root switch's up port
    victim = next(k for k, p in plan.programs.items()
                  if p.up_port is not None)
    good = plan.programs[victim]
    plan.programs[victim] = GroupProgram(good.group, None, good.down)
    with pytest.raises(ConfigError):
        validate_plan(topo, plan)
