"""MachineConfig defaults, validation, and copying."""

import pytest

from repro.common.config import (
    BusConfig,
    CacheConfig,
    MachineConfig,
    NetworkConfig,
    NIUConfig,
    ProcessorConfig,
    default_config,
)
from repro.common.errors import ConfigError


def test_default_is_valid():
    cfg = default_config()
    assert cfg.n_nodes == 2
    assert cfg.ap.clock_mhz == 166.0
    assert cfg.bus.clock_mhz == 66.0
    assert cfg.network.link_mb_per_s == 160.0


def test_paper_constants():
    cfg = default_config()
    # 96-byte Arctic packets leave 88 bytes of payload, the Basic cap
    assert cfg.network.max_packet_bytes == 96
    assert cfg.network.max_payload_bytes == 88
    assert cfg.niu.basic_max_payload == 88
    # 16 hardware queues each way
    assert cfg.niu.n_hw_tx_queues == 16
    assert cfg.niu.n_hw_rx_queues == 16
    # at least two network priorities are required by the paper
    assert cfg.network.priorities >= 2


def test_processor_timing():
    p = ProcessorConfig(clock_mhz=166.0, cpi=1.0)
    assert p.insn_ns(166) == pytest.approx(1000.0, rel=1e-6)


def test_bus_beats_per_line():
    b = BusConfig()
    assert b.beats_per_line == 4  # 32-byte line over a 64-bit bus


def test_nodes_must_be_positive():
    with pytest.raises(ConfigError):
        MachineConfig(n_nodes=0).validate()


def test_bad_bus_width():
    cfg = default_config()
    cfg.bus.width_bytes = 7
    with pytest.raises(ConfigError):
        cfg.validate()


def test_line_mismatch_rejected():
    cfg = default_config()
    cfg.l2.line_bytes = 64
    with pytest.raises(ConfigError):
        cfg.validate()


def test_payload_exceeding_packet_rejected():
    cfg = default_config()
    cfg.niu.basic_max_payload = 96
    with pytest.raises(ConfigError):
        cfg.validate()


def test_priorities_minimum_two():
    with pytest.raises(ConfigError):
        NetworkConfig(priorities=1).validate()


def test_queue_depth_power_of_two():
    with pytest.raises(ConfigError):
        NIUConfig(queue_depth=12).validate()


def test_cache_geometry():
    c = CacheConfig()
    assert c.n_lines == 512 * 1024 // 32
    assert c.n_sets * c.ways == c.n_lines
    c.validate()


def test_copy_is_deep():
    cfg = default_config()
    dup = cfg.copy()
    dup.bus.clock_mhz = 100.0
    assert cfg.bus.clock_mhz == 66.0


def test_copy_with_override():
    cfg = default_config()
    dup = cfg.copy(n_nodes=8)
    assert dup.n_nodes == 8
    assert cfg.n_nodes == 2


def test_describe_flat():
    d = default_config().describe()
    assert d["bus"]["clock_mhz"] == 66.0
    assert d["network"]["radix"] == 4


def test_firmware_costs_nonnegative():
    cfg = default_config()
    cfg.firmware.dispatch_insns = -1
    with pytest.raises(ConfigError):
        cfg.validate()
