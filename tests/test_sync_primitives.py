"""The scalable-synchronization library (`repro.sync.api`).

Every primitive is exercised over both transports — in-switch combining
and the pure-endpoint sP fallback — plus the cross-cutting guarantees:
ticket-lock FIFO fairness deterministic across machine seeds, sweep
results byte-identical for any ``--jobs`` value, and identical behaviour
with and without the combine sanitizer armed.
"""

import pytest

import repro
from repro.bench.harness import run_sweep, strip_wall
from repro.common.errors import ConfigError, ProgramError
from repro.lib.mpi import MiniMPI
from repro.obs.snapshot import metrics_snapshot
from repro.sync import OP_ADD, OP_MAX

MODES = ("switch", "endpoint")


def _machine(n, **overrides):
    return repro.StarTVoyager(repro.default_config(n_nodes=n, **overrides))


def _group(machine, mode, members=None):
    if members is None:
        members = range(machine.config.n_nodes)
    return machine.sync_fabric().group(members, mode=mode)


# ----------------------------------------------------------------------
# the two verbs
# ----------------------------------------------------------------------


@pytest.mark.parametrize("mode", MODES)
def test_counter_is_serializable(mode):
    """Concurrent fetch-and-adds return the values of *some* serial
    order: the pre-op values are a permutation of 0..N*rounds-1."""
    n, rounds = 4, 3
    machine = _machine(n)
    ctr = _group(machine, mode).counter(cell=0)

    def prog(api, rank):
        olds = []
        for _ in range(rounds):
            olds.append((yield from ctr.add(api, rank, 1)))
        return olds

    procs = [machine.spawn(i, prog, i) for i in range(n)]
    results = machine.run_all(procs, limit=1e9)
    assert sorted(v for olds in results for v in olds) \
        == list(range(n * rounds))


@pytest.mark.parametrize("mode", MODES)
def test_tree_op_allreduces(mode):
    n = 4
    machine = _machine(n)
    grp = _group(machine, mode)

    def prog(api, rank):
        s = yield from grp.tree_op(api, rank, OP_ADD, rank + 1)
        mx = yield from grp.tree_op(api, rank, OP_MAX, rank)
        return s, mx

    procs = [machine.spawn(i, prog, i) for i in range(n)]
    results = machine.run_all(procs, limit=1e9)
    assert results == [(sum(range(1, n + 1)), n - 1)] * n


def test_subgroup_membership_enforced():
    machine = _machine(4)
    grp = _group(machine, "switch", members=[0, 2, 3])

    def outsider(api):
        yield from grp.counter().add(api, 1, 1)

    proc = machine.spawn(1, outsider)
    with pytest.raises(Exception) as exc:
        machine.run_until(proc, limit=1e9)
    assert isinstance(exc.value.__cause__ or exc.value, ProgramError)


# ----------------------------------------------------------------------
# barriers
# ----------------------------------------------------------------------


@pytest.mark.parametrize("variant", ("counting", "tree", "switch"))
def test_barrier_separates_phases(variant):
    """Nobody may leave the barrier before everyone has entered: after
    the wait, every member sees the full pre-barrier count."""
    n = 5  # non-power-of-two exercises the odd tree shapes
    machine = _machine(n)
    grp = _group(machine, "switch", members=range(n))
    ctr = grp.counter(cell=7)
    bar = grp.barrier(variant=variant)

    def prog(api, rank):
        yield from api.compute(300 * rank)  # staggered arrivals
        yield from ctr.add(api, rank, 1)
        yield from bar.wait(api, rank)
        return (yield from ctr.read(api, rank))

    procs = [machine.spawn(i, prog, i) for i in range(n)]
    results = machine.run_all(procs, limit=1e9)
    assert all(v >= n for v in results)


def test_barrier_reusable_across_rounds():
    n, rounds = 4, 3
    machine = _machine(n)
    bar = _group(machine, "switch").barrier(variant="switch")

    def prog(api, rank):
        for r in range(rounds):
            yield from api.compute(100 * ((rank + r) % n))
            yield from bar.wait(api, rank)
        return rounds

    procs = [machine.spawn(i, prog, i) for i in range(n)]
    assert machine.run_all(procs, limit=1e9) == [rounds] * n


def test_unknown_variant_rejected():
    machine = _machine(2)
    with pytest.raises(ConfigError):
        _group(machine, "switch").barrier(variant="hybrid")
    with pytest.raises(ConfigError):
        machine.sync_fabric().group([0, 1], mode="bogus")


def test_single_node_machine_degrades_to_endpoint():
    """No network: switch mode falls back to the sP-served transport and
    everything still works through the CTRL loopback."""
    machine = _machine(1)
    grp = _group(machine, "switch")
    assert grp.mode == "endpoint" and grp.plan is None
    ctr = grp.counter()
    bar = grp.barrier(variant="switch")

    def prog(api):
        yield from ctr.add(api, 0, 5)
        yield from bar.wait(api, 0)
        return (yield from ctr.read(api, 0))

    assert machine.run_until(machine.spawn(0, prog), limit=1e9) == 5


def test_service_queue_burst_overflow_redelivered():
    """A simultaneous-arrival burst deeper than the sP service queue
    diverts to the miss queue; firmware re-dispatches those entries
    through the normal handler table instead of dropping them (a
    dropped arrival would hang the counting barrier forever)."""
    from repro.common.config import NIUConfig

    n = 16
    machine = _machine(n, niu=NIUConfig(queue_depth=4))
    bar = _group(machine, "endpoint").barrier(variant="counting")

    def prog(api, rank):
        yield from bar.wait(api, rank)
        return 1

    procs = [machine.spawn(i, prog, i) for i in range(n)]
    assert machine.run_all(procs, limit=1e9) == [1] * n
    counters = machine.metrics(include_config=False)["counters"]
    redelivered = sum(v for k, v in counters.items()
                      if k.endswith(".missq_redelivered"))
    dropped = sum(v for k, v in counters.items()
                  if k.endswith(".missq_dropped"))
    assert redelivered > 0 and dropped == 0


# ----------------------------------------------------------------------
# locks
# ----------------------------------------------------------------------


def _exclusion_log(machine, lock, n, rounds=2):
    log = []

    def prog(api, rank):
        for _ in range(rounds):
            yield from lock.acquire(api, rank)
            log.append(("enter", rank))
            yield from api.compute(400)
            log.append(("exit", rank))
            yield from lock.release(api, rank)

    procs = [machine.spawn(i, prog, i) for i in range(n)]
    machine.run_all(procs, limit=1e10)
    return log


def _assert_mutual_exclusion(log, n, rounds):
    assert len(log) == 2 * n * rounds
    inside = None
    for kind, rank in log:
        if kind == "enter":
            assert inside is None, f"{rank} entered while {inside} held"
            inside = rank
        else:
            assert inside == rank
            inside = None


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("kind", ("tas", "ticket", "mcs"))
def test_locks_are_mutually_exclusive(mode, kind):
    n, rounds = 4, 2
    machine = _machine(n)
    grp = _group(machine, mode)
    lock = {"tas": grp.tas_lock, "ticket": grp.ticket_lock,
            "mcs": grp.mcs_lock}[kind](cell=0)
    log = _exclusion_log(machine, lock, n, rounds)
    _assert_mutual_exclusion(log, n, rounds)


@pytest.mark.parametrize("seed", (0, 1, 7))
def test_ticket_lock_fifo_fair_across_seeds(seed):
    """Tickets grant in issue order — staggered requesters enter in
    exactly their arrival order, whatever the machine seed does to route
    spreading and tree placement."""
    n = 4
    machine = _machine(n, seed=seed)
    grp = _group(machine, "switch")
    lock = grp.ticket_lock(cell=0)
    order = []

    def prog(api, rank):
        yield from api.compute(5000 * rank)  # well-separated requests
        ticket = yield from lock.acquire(api, rank)
        order.append((ticket, rank))
        yield from api.compute(200)
        yield from lock.release(api, rank)

    procs = [machine.spawn(i, prog, i) for i in range(n)]
    machine.run_all(procs, limit=1e10)
    assert order == [(i, i) for i in range(n)]


# ----------------------------------------------------------------------
# work stealing
# ----------------------------------------------------------------------


@pytest.mark.parametrize("mode", MODES)
def test_deque_pop_lifo_steal_fifo(mode):
    machine = _machine(4)
    dq = _group(machine, mode).deque(owner_rank=0)

    def owner(api):
        for v in (10, 11, 12):
            depth = yield from dq.push(api, 0, v)
        assert depth == 3
        popped = yield from dq.pop(api, 0)
        return popped

    def thief(api):
        yield from api.compute(20000)  # after the owner's pushes/pop
        a = yield from dq.steal(api, 2)
        b = yield from dq.steal(api, 2)
        c = yield from dq.steal(api, 2)
        return a, b, c

    po = machine.spawn(0, owner)
    pt = machine.spawn(2, thief)
    popped, stolen = machine.run_all([po, pt], limit=1e9)
    assert popped == 12  # owner pops the newest (LIFO)
    assert stolen == (10, 11, None)  # thieves drain the oldest (FIFO)


# ----------------------------------------------------------------------
# determinism: jobs parity and sanitizer transparency
# ----------------------------------------------------------------------


def _sync_point(spec):
    """Module-level (picklable) sweep worker: one contended machine."""
    n, mode, sanitize = spec
    machine = _machine(n, sanitize=sanitize)
    grp = _group(machine, mode)
    ctr = grp.counter(cell=0)
    bar = grp.barrier(variant="switch")

    def prog(api, rank):
        old = yield from ctr.add(api, rank, 1)
        yield from bar.wait(api, rank)
        total = yield from ctr.read(api, rank)
        return old, total

    procs = [machine.spawn(i, prog, i) for i in range(n)]
    results = machine.run_all(procs, limit=1e9)
    snap = strip_wall(metrics_snapshot(machine, include_config=False))
    return results, snap


def test_sync_sweep_byte_identical_across_jobs():
    specs = [(4, "switch", ()), (4, "endpoint", ()), (3, "switch", ())]
    a = run_sweep(_sync_point, specs, jobs=1)
    b = run_sweep(_sync_point, specs, jobs=4)
    assert a == b


def test_sanitizers_do_not_perturb_the_simulation():
    """Arming the combine checker changes nothing observable: same
    results, same simulated time, same counters."""
    plain_res, plain_snap = _sync_point((4, "switch", ()))
    armed_res, armed_snap = _sync_point((4, "switch", ("combine",)))
    assert plain_res == armed_res
    assert plain_snap == armed_snap


# ----------------------------------------------------------------------
# MiniMPI integration (the collectives face of the same machinery)
# ----------------------------------------------------------------------


def test_minimpi_switch_barrier_and_allreduce():
    n = 4
    machine = _machine(n)
    mpi = MiniMPI(machine, algo="switch")

    def worker(api, rank):
        comm = mpi.rank(rank)
        yield from comm.barrier(api)
        total = yield from comm.allreduce(api, rank + 1, op="sum")
        # per-call override onto another algorithm stays consistent
        mx = yield from comm.allreduce(api, rank, op="max", algo="flat")
        return total, mx

    procs = [machine.spawn(i, worker, i) for i in range(n)]
    results = machine.run_all(procs, limit=1e9)
    assert results == [(sum(range(1, n + 1)), n - 1)] * n


def test_minimpi_switch_rejects_unnamed_ops():
    machine = _machine(2)
    mpi = MiniMPI(machine, algo="switch")

    def worker(api, rank):
        comm = mpi.rank(rank)
        got = yield from comm.allreduce(api, rank, op=lambda a, b: a + b)
        return got

    procs = [machine.spawn(i, worker, i) for i in range(2)]
    with pytest.raises(Exception) as exc:
        machine.run_all(procs, limit=1e9)
    assert isinstance(exc.value.__cause__ or exc.value, ProgramError)
