"""Command queues, the command processors, and the block units.

Built against a full node so that the commands exercise the real aBIU
bus-mastering path into DRAM and the real IBus/SRAM timings.
"""

import pytest

import repro
from repro.bus.ops import BusOpType
from repro.common.errors import QueueError
from repro.niu.clssram import CLS_RW
from repro.niu.commands import (
    LOCAL_CMDQ_0,
    LOCAL_CMDQ_1,
    CmdBlockRead,
    CmdBlockTx,
    CmdBusOp,
    CmdCall,
    CmdCopySram,
    CmdForward,
    CmdNotify,
    CmdReadDram,
    CmdSendMessage,
    CmdSetClsState,
    CmdWriteDram,
    CmdWriteDramFromSram,
    CommandQueue,
)
from repro.niu.queues import BANK_A, BANK_S


@pytest.fixture
def m2():
    return repro.StarTVoyager(repro.default_config(n_nodes=2))


def _exec(machine, node, *cmds, queue=LOCAL_CMDQ_0):
    """Enqueue commands in order and run until a fence fires."""
    ctrl = machine.node(node).ctrl
    done = machine.engine.event()
    for cmd in cmds:
        ctrl.cmdqs[queue].try_enqueue(cmd)
    ctrl.cmdqs[queue].try_enqueue(CmdCall(done.succeed))
    machine.run_until(done, limit=1e9)


def test_write_dram(m2):
    _exec(m2, 0, CmdWriteDram(0x3000, b"written-by-command"))
    assert m2.node(0).dram.peek(0x3000, 18) == b"written-by-command"


def test_write_dram_unaligned(m2):
    data = bytes(range(100))
    _exec(m2, 0, CmdWriteDram(0x3005, data))
    assert m2.node(0).dram.peek(0x3005, 100) == data


def test_read_dram_to_sram(m2):
    m2.node(0).dram.poke(0x4000, b"dram->sram")
    off = m2.node(0).niu.alloc_asram(64)
    _exec(m2, 0, CmdReadDram(0x4000, 10, BANK_A, off))
    assert m2.node(0).niu.asram.peek(off, 10) == b"dram->sram"


def test_copy_sram(m2):
    niu = m2.node(0).niu
    src = niu.alloc_asram(64)
    dst = niu.alloc_ssram(64)
    niu.asram.poke(src, b"cross-ibus-copy")
    _exec(m2, 0, CmdCopySram(BANK_A, src, BANK_S, dst, 15))
    assert niu.ssram.peek(dst, 15) == b"cross-ibus-copy"


def test_write_dram_from_sram(m2):
    niu = m2.node(0).niu
    off = niu.alloc_ssram(64)
    niu.ssram.poke(off, b"sram-to-dram-direct")
    _exec(m2, 0, CmdWriteDramFromSram(BANK_S, off, 0x5000, 19))
    assert m2.node(0).dram.peek(0x5000, 19) == b"sram-to-dram-direct"


def test_set_cls_state(m2):
    # lines in the second page are homed on node 1, so they start INVALID
    # on node 0 (the default S-COMA firmware initializes home lines RW)
    cls = m2.node(0).niu.cls
    first = m2.config.dram.page_bytes // m2.config.bus.line_bytes
    assert cls.state(first) == 0
    _exec(m2, 0, CmdSetClsState(first + 1, 3, CLS_RW))
    states = [cls.state(first + i) for i in range(5)]
    assert states == [0, CLS_RW, CLS_RW, CLS_RW, 0]


def test_bus_op_kill(m2):
    # prime the L2 with a modified line, then KILL it via command
    node = m2.node(0)

    def prime(api):
        yield from api.store(0x6000, b"cachedat")

    m2.run_until(m2.spawn(0, prime), limit=1e7)
    from repro.mem.cache import LineState
    assert node.l2.state_of(0x6000) is LineState.MODIFIED
    _exec(m2, 0, CmdBusOp(BusOpType.FLUSH, 0x6000, 32))
    assert node.l2.state_of(0x6000) is LineState.INVALID
    assert node.dram.peek(0x6000, 8) == b"cachedat"


def test_in_order_execution(m2):
    # two writes to the same address: the later one must win
    _exec(m2, 0,
          CmdWriteDram(0x7000, b"AAAA"),
          CmdWriteDram(0x7000, b"BBBB"))
    assert m2.node(0).dram.peek(0x7000, 4) == b"BBBB"


def test_notify_delivers_locally(m2):
    from repro.mp.basic import BasicPort
    port = BasicPort(m2.node(0), 0, 0)
    _exec(m2, 0, CmdNotify(0, b"local-note", src_node=0))

    def reader(api):
        return (yield from port.recv(api))

    src, payload = m2.run_until(m2.spawn(0, reader), limit=1e7)
    assert payload == b"local-note"


def test_forward_to_remote(m2):
    _exec(m2, 0, CmdForward(1, CmdWriteDram(0x8000, b"cross-node-forward")))
    m2.run(until=m2.now + 100_000)
    assert m2.node(1).dram.peek(0x8000, 18) == b"cross-node-forward"


def test_send_message_command(m2):
    from repro.mp.basic import BasicPort
    from repro.niu.msgformat import MsgHeader
    from repro.niu.niu import SP_TX_GENERAL, vdst_for

    port = BasicPort(m2.node(1), 0, 0)
    hdr = MsgHeader(vdst=vdst_for(1, 0), length=9)
    _exec(m2, 0, CmdSendMessage(SP_TX_GENERAL, hdr, b"cmd-send!"))

    def reader(api):
        return (yield from port.recv(api))

    src, payload = m2.run_until(m2.spawn(1, reader), limit=1e8)
    assert (src, payload) == (0, b"cmd-send!")


def test_unknown_command_rejected(m2):
    class Weird:  # not a Command
        pass

    with pytest.raises(QueueError):
        m2.node(0).ctrl.cmdqs[0].try_enqueue(Weird())


def test_block_read_page_limit(m2):
    unit = m2.node(0).ctrl.block_read_unit
    page = m2.config.dram.page_bytes
    with pytest.raises(QueueError):
        unit.submit(CmdBlockRead(0, page + 1, BANK_A, 0))
    with pytest.raises(QueueError):
        unit.submit(CmdBlockRead(page - 64, 128, BANK_A, 0))  # crosses page


def test_block_read_and_tx_chained(m2):
    engine = m2.engine
    node0 = m2.node(0)
    data = bytes((i * 3) & 0xFF for i in range(1024))
    node0.dram.poke(0x9000, data)
    buf = node0.niu.alloc_asram(1024)
    read_done = engine.event()
    tx_done = engine.event()
    _exec(m2, 0,
          CmdBlockRead(0x9000, 1024, BANK_A, buf, done=read_done),
          CmdBlockTx(BANK_A, buf, 1024, dst_node=1, dst_addr=0xA000,
                     after=read_done, done=tx_done),
          queue=LOCAL_CMDQ_1)
    m2.run_until(tx_done, limit=1e9)
    m2.run(until=m2.now + 200_000)  # let the remote writes land
    assert m2.node(1).dram.peek(0xA000, 1024) == data
    assert node0.ctrl.block_read_unit.completed == 1
    assert node0.ctrl.block_tx_unit.completed == 1


def test_block_tx_notify_follows_data(m2):
    from repro.mp.dma import DmaNotifier
    node0 = m2.node(0)
    data = bytes(512)
    node0.dram.poke(0xB000, data)
    buf = node0.niu.alloc_asram(512)
    engine = m2.engine
    read_done = engine.event()
    _exec(m2, 0,
          CmdBlockRead(0xB000, 512, BANK_A, buf, done=read_done),
          CmdBlockTx(BANK_A, buf, 512, dst_node=1, dst_addr=0xC000,
                     after=read_done, notify_queue=7,
                     notify_payload=(512).to_bytes(4, "big")),
          queue=LOCAL_CMDQ_1)
    notifier = DmaNotifier(m2.node(1))

    def waiter(api):
        src, length = yield from notifier.wait(api)
        # when the notification is readable, the data must already be there
        d = m2.node(1).dram.peek(0xC000, 512)
        return src, length, d == data

    src, length, ok = m2.run_until(m2.spawn(1, waiter), limit=1e9)
    assert (src, length, ok) == (0, 512, True)


def test_command_queue_capacity(engine):
    q = CommandQueue(engine, depth=2, name="t")
    q.try_enqueue(CmdCall(lambda: None))
    q.try_enqueue(CmdCall(lambda: None))
    from repro.common.errors import QueueFullError
    with pytest.raises(QueueFullError):
        q.try_enqueue(CmdCall(lambda: None))
    assert len(q) == 2
