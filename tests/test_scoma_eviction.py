"""S-COMA capacity management: voluntary frame eviction."""

import pytest

import repro
from repro.mp.basic import BasicPort
from repro.niu.clssram import CLS_INVALID, CLS_RO, CLS_RW
from repro.shm import ScomaRegion


@pytest.fixture
def rig():
    machine = repro.StarTVoyager(repro.default_config(n_nodes=2))
    region = ScomaRegion(machine, n_lines=32)
    region.init_data(0, bytes(range(32)) * 4)
    ports = [BasicPort(machine.node(n), 0, 0) for n in range(2)]
    return machine, region, ports


def _settle(machine):
    machine.run(until=machine.now + 300_000)


def test_clean_eviction_leaves_sharer_set(rig):
    machine, region, ports = rig

    def reader(api):
        yield from api.load(region.addr(0), 8)  # become a sharer
        yield from region.evict(api, ports[1], 0)

    machine.run_until(machine.spawn(1, reader), limit=1e9)
    _settle(machine)
    assert region.cls_state(1, 0) == CLS_INVALID
    # home no longer tracks node 1: a later home write needs no INV
    home_dir = machine.node(0).sp.state["scoma"].entry(0)
    assert 1 not in home_dir.sharers


def test_reread_after_clean_eviction_refetches(rig):
    machine, region, ports = rig

    def prog(api):
        first = yield from api.load(region.addr(0), 8)
        yield from region.evict(api, ports[1], 0)
        yield from api.sleep(50_000)  # let the eviction complete
        second = yield from api.load(region.addr(0), 8)  # miss again
        return first, second

    first, second = machine.run_until(machine.spawn(1, prog), limit=1e10)
    assert first == second == bytes(range(8))
    assert region.cls_state(1, 0) == CLS_RO


def test_dirty_eviction_writes_back_home(rig):
    machine, region, ports = rig

    def writer(api):
        yield from api.store(region.addr(0), b"DIRTYEVC")
        yield from region.evict(api, ports[1], 0)

    machine.run_until(machine.spawn(1, writer), limit=1e10)
    _settle(machine)
    assert region.cls_state(1, 0) == CLS_INVALID
    assert region.cls_state(0, 0) == CLS_RW  # home owns its frame again
    assert region.frame_peek(0, 0, 8) == b"DIRTYEVC"
    home_dir = machine.node(0).sp.state["scoma"].entry(0)
    assert home_dir.owner is None

    # any node reading now sees the evicted data
    def reader(api):
        return (yield from api.load(region.addr(0), 8))

    assert machine.run_until(machine.spawn(1, reader), limit=1e10) == \
        b"DIRTYEVC"


def test_evict_home_line_is_noop(rig):
    machine, region, ports = rig

    def prog(api):  # node 0 is home for line 0
        yield from region.evict(api, ports[0], 0)
        return (yield from api.load(region.addr(0), 8))

    assert machine.run_until(machine.spawn(0, prog), limit=1e9) == \
        bytes(range(8))
    assert region.cls_state(0, 0) == CLS_RW


def test_evict_uncached_line_is_noop(rig):
    machine, region, ports = rig

    def prog(api):  # node 1 never touched the line
        yield from region.evict(api, ports[1], 0)
        return True

    assert machine.run_until(machine.spawn(1, prog), limit=1e9)
    _settle(machine)
    assert region.cls_state(1, 0) == CLS_INVALID


def test_eviction_under_write_storm_stays_coherent(rig):
    """Evictions interleaved with remote writes: every read still sees
    the latest write (the recall/eviction race resolves cleanly)."""
    machine, region, ports = rig

    def cycle(api, value):
        yield from api.store(region.addr(0), bytes([value]) * 8)
        yield from region.evict(api, ports[1], 0)
        yield from api.sleep(30_000)

    for v in (1, 2, 3):
        machine.run_until(machine.spawn(1, cycle, v), limit=1e10)
    _settle(machine)

    def reader(api):
        return (yield from api.load(region.addr(0), 8))

    for node in (0, 1):
        assert machine.run_until(machine.spawn(node, reader),
                                 limit=1e10) == bytes([3]) * 8
