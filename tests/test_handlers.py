"""aBIU handler state machines and the BIU frameworks."""

import pytest

import repro
from repro.bus.snoop import SnoopResult
from repro.common.errors import SimulationError
from repro.mem.address import AccessMode, NIU_CTL_BASE, Region
from repro.niu.abiu import BusHandler
from repro.niu.handlers import pointer_offset
from repro.niu.niu import EXPRESS_RX_LOGICAL, PTR_WINDOW_OFF, vdst_for
from repro.niu.queues import QueueKind


@pytest.fixture
def m2():
    return repro.StarTVoyager(repro.default_config(n_nodes=2))


# -- pointer window -----------------------------------------------------------

def test_pointer_offsets_distinct():
    offsets = set()
    for kind in (QueueKind.TX, QueueKind.RX):
        for idx in range(16):
            for which in ("producer", "consumer"):
                offsets.add(pointer_offset(kind, idx, which))
    assert len(offsets) == 64


def test_pointer_read_write_roundtrip(m2):
    base = NIU_CTL_BASE + PTR_WINDOW_OFF

    def prog(api):
        # producer starts at zero
        p0 = yield from api.load_u32(
            base + pointer_offset(QueueKind.TX, 0, "producer"))
        # compose nothing; just bump the producer illegally? No -- bump by
        # zero entries is legal (same value)
        yield from api.store_u32(
            base + pointer_offset(QueueKind.TX, 0, "producer"), 0)
        return p0

    assert m2.run_until(m2.spawn(0, prog), limit=1e7) == 0


def test_pointer_readonly_slots(m2):
    base = NIU_CTL_BASE + PTR_WINDOW_OFF

    def prog(api):
        yield from api.store_u32(
            base + pointer_offset(QueueKind.TX, 0, "consumer"), 1)

    with pytest.raises(SimulationError):
        m2.run_until(m2.spawn(0, prog), limit=1e7)


def test_pointer_write_to_disabled_queue_dropped(m2):
    ctrl = m2.node(0).ctrl
    ctrl.tx_queues[0].shutdown()
    base = NIU_CTL_BASE + PTR_WINDOW_OFF

    def prog(api):
        yield from api.store_u32(
            base + pointer_offset(QueueKind.TX, 0, "producer"), 1)
        return "survived"

    # hardware silently drops the write; the program continues
    assert m2.run_until(m2.spawn(0, prog), limit=1e7) == "survived"
    assert ctrl.tx_queues[0].producer == 0


# -- SRAM window -----------------------------------------------------------------

def test_sram_window_burst_and_single(m2):
    from repro.mem.address import ASRAM_BASE
    niu = m2.node(0).niu
    off = niu.alloc_asram(128)

    def prog(api):
        yield from api.store(ASRAM_BASE + off, b"A" * 64)  # bursts
        yield from api.store(ASRAM_BASE + off + 64, b"tail")  # singles
        return (yield from api.load(ASRAM_BASE + off, 68))

    data = m2.run_until(m2.spawn(0, prog), limit=1e7)
    assert data == b"A" * 64 + b"tail"
    assert niu.asram.peek(off, 68) == data


# -- express handlers -------------------------------------------------------------

def test_express_roundtrip_remote(m2):
    from repro.mp.express import ExpressPort
    e0 = ExpressPort(m2.node(0))
    e1 = ExpressPort(m2.node(1))

    def sender(api):
        yield from e0.send(api, vdst_for(1, EXPRESS_RX_LOGICAL), b"\x99wxyz")

    def receiver(api):
        return (yield from e1.recv_blocking(api))

    m2.spawn(0, sender)
    src, payload = m2.run_until(m2.spawn(1, receiver), limit=1e8)
    assert src == 0
    assert payload == b"\x99wxyz"  # first byte rode in the address


def test_express_empty_returns_none(m2):
    from repro.mp.express import ExpressPort
    e = ExpressPort(m2.node(0))

    def prog(api):
        return (yield from e.recv(api))

    assert m2.run_until(m2.spawn(0, prog), limit=1e7) is None


def test_express_fifo_order(m2):
    from repro.mp.express import ExpressPort
    e0 = ExpressPort(m2.node(0))
    e1 = ExpressPort(m2.node(1))

    def sender(api):
        for i in range(10):
            yield from e0.send(api, vdst_for(1, EXPRESS_RX_LOGICAL),
                               bytes([i, i, 0, 0, 0]))

    def receiver(api):
        out = []
        for _ in range(10):
            src, payload = yield from e1.recv_blocking(api)
            out.append(payload[0])
        return out

    m2.spawn(0, sender)
    assert m2.run_until(m2.spawn(1, receiver), limit=1e8) == list(range(10))


def test_express_payload_cap(m2):
    from repro.mp.express import ExpressPort
    e = ExpressPort(m2.node(0))

    def prog(api):
        yield from e.send(api, 0, b"toolong")

    with pytest.raises(SimulationError):
        m2.run_until(m2.spawn(0, prog), limit=1e7)


# -- sysreg window ---------------------------------------------------------------

def test_sysreg_window_write(m2):
    from repro.niu.niu import SYSREG_OFF
    ctrl = m2.node(0).ctrl

    def prog(api):
        # offset q*8 maps tx_priority.q
        yield from api.store_u32(NIU_CTL_BASE + SYSREG_OFF + 3 * 8, 6)
        return (yield from api.load_u32(NIU_CTL_BASE + SYSREG_OFF + 3 * 8))

    assert m2.run_until(m2.spawn(0, prog), limit=1e7) == 6
    assert ctrl.tx_queues[3].priority == 6


# -- handler installation / reconfiguration ------------------------------------------

class CountingHandler(BusHandler):
    handler_name = "counting"

    def __init__(self, engine):
        self.engine = engine
        self.count = 0

    def decide(self, txn):
        return SnoopResult.CLAIM

    def serve(self, txn):
        self.count += 1
        yield self.engine.timeout(1.0)
        if txn.op.is_read:
            return b"\x00" * txn.size
        return None


def test_install_and_replace_handler(m2):
    node = m2.node(0)
    abiu = node.niu.abiu
    region = node.address_map.carve("custom", 0x50000, 0x1000,
                                    AccessMode.UNCACHED)
    h1 = CountingHandler(m2.engine)
    assert abiu.install(region, h1) is None

    def prog(api):
        yield from api.load(0x50000, 8)

    m2.run_until(m2.spawn(0, prog), limit=1e7)
    assert h1.count == 1
    # replacing over the same region returns the old handler
    h2 = CountingHandler(m2.engine)
    assert abiu.install(region, h2) is h1
    m2.run_until(m2.spawn(0, prog), limit=1e7)
    assert h2.count == 1 and h1.count == 1


def test_install_overlap_rejected(m2):
    node = m2.node(0)
    region = Region("overlapping", NIU_CTL_BASE + PTR_WINDOW_OFF + 8, 16,
                    AccessMode.UNCACHED)
    with pytest.raises(SimulationError):
        node.niu.abiu.install(region, CountingHandler(m2.engine))


def test_handler_for_lookup(m2):
    abiu = m2.node(0).niu.abiu
    assert abiu.handler_for(NIU_CTL_BASE + PTR_WINDOW_OFF) is not None
    assert abiu.handler_for(0x12345) is None  # plain DRAM: no handler
