"""The NUMA protocol: local/remote reads and writes, ordering."""

import pytest

import repro
from repro.shm import NumaSpace


@pytest.fixture
def m2():
    return repro.StarTVoyager(repro.default_config(n_nodes=2))


@pytest.fixture
def m4():
    return repro.StarTVoyager(repro.default_config(n_nodes=4))


def test_write_read_local_home(m2):
    numa = NumaSpace(m2)

    def prog(api):
        yield from numa.write(api, 0, 0x40, b"homelocl")
        return (yield from numa.read(api, 0, 0x40, 8))

    assert m2.run_until(m2.spawn(0, prog), limit=1e9) == b"homelocl"


def test_write_read_remote_home(m2):
    numa = NumaSpace(m2)

    def prog(api):
        yield from numa.write(api, 1, 0x80, b"remote!!")
        return (yield from numa.read(api, 1, 0x80, 8))

    assert m2.run_until(m2.spawn(0, prog), limit=1e9) == b"remote!!"
    assert numa.home_peek(1, 0x80, 8) == b"remote!!"


def test_cross_node_visibility(m2):
    numa = NumaSpace(m2)

    def writer(api):
        yield from numa.write(api, 0, 0x100, b"shared!!")

    def reader(api):
        # spin until the writer's value becomes visible at the home
        while True:
            v = yield from numa.read(api, 0, 0x100, 8)
            if v == b"shared!!":
                return v
            yield from api.compute(100)

    m2.spawn(0, writer)
    assert m2.run_until(m2.spawn(1, reader), limit=1e9) == b"shared!!"


def test_same_node_write_then_read_ordering(m2):
    """A node's own write must be visible to its own subsequent read,
    even for a remote home (FIFO queues serialize through the home)."""
    numa = NumaSpace(m2)

    def prog(api):
        for i in range(5):
            data = bytes([i] * 8)
            yield from numa.write(api, 1, 0x200, data)
            got = yield from numa.read(api, 1, 0x200, 8)
            assert got == data, (i, got)
        return True

    assert m2.run_until(m2.spawn(0, prog), limit=1e10)


def test_small_accesses(m2):
    numa = NumaSpace(m2)

    def prog(api):
        yield from numa.write(api, 1, 0x300, b"ab")
        return (yield from numa.read(api, 1, 0x300, 2))

    assert m2.run_until(m2.spawn(0, prog), limit=1e9) == b"ab"


def test_access_beyond_span_fails(m2):
    numa = NumaSpace(m2)
    from repro.common.errors import FirmwareError
    with pytest.raises(FirmwareError):
        numa.addr(5, 0)  # no node 5


def test_four_node_all_to_all(m4):
    numa = NumaSpace(m4)

    def writer(api, me):
        # each node writes a slot in every home
        for home in range(4):
            yield from numa.write(api, home, 0x400 + me * 8,
                                  bytes([me] * 8))

    procs = [m4.spawn(n, writer, n) for n in range(4)]
    m4.run_all(procs, limit=1e10)
    m4.run(until=m4.now + 500_000)  # let posted writes land
    for home in range(4):
        for me in range(4):
            assert numa.home_peek(home, 0x400 + me * 8, 8) == bytes([me] * 8)


def test_numa_occupies_firmware(m2):
    """NUMA's defining cost: every access burns sP time."""
    numa = NumaSpace(m2)

    def prog(api):
        for i in range(10):
            yield from numa.write(api, 1, 0x500 + i * 8, bytes([i] * 8))
            yield from numa.read(api, 1, 0x500 + i * 8, 8)

    m2.run_until(m2.spawn(0, prog), limit=1e10)
    assert m2.node(0).sp.busy.busy_ns > 0
    assert m2.node(1).sp.busy.busy_ns > 0
