"""The project lint pass (:mod:`repro.analysis.lint`).

Every rule must fire on a seeded violation, stay quiet on the idiomatic
alternative, and honour the ``# repro: allow RULE`` suppression — a rule
that can't demonstrably fire is a rule that silently rotted.
"""

import json
import pathlib
import subprocess
import sys
import textwrap

from repro.analysis.lint import (
    RULES,
    check_source,
    classify,
    iter_py_files,
    lint_paths,
    main,
)

# a repro-package path in each category the scoping logic distinguishes
SIM = "src/repro/sim/engine.py"
NET = "src/repro/net/link.py"
MEM = "src/repro/mem/backing.py"
HARNESS = "src/repro/bench/harness.py"
TESTFILE = "tests/test_something.py"
BENCHFILE = "benchmarks/bench_something.py"


def rules_of(source, relpath=NET):
    return [v.rule for v in check_source(textwrap.dedent(source), relpath)]


# ----------------------------------------------------------------------
# classify
# ----------------------------------------------------------------------


def test_classify_splits_repro_paths():
    assert classify(NET) == ("repro", ("net", "link.py"))
    assert classify("src/repro/__init__.py") == ("repro", ("__init__.py",))
    assert classify(TESTFILE) == ("other", ("tests", "test_something.py"))


# ----------------------------------------------------------------------
# DET001 — wall clock
# ----------------------------------------------------------------------


def test_det001_time_call_fires():
    assert rules_of("import time\nt = time.time()\n") == ["DET001"]


def test_det001_perf_counter_import_and_call():
    src = "from time import perf_counter\nt = perf_counter()\n"
    assert rules_of(src) == ["DET001", "DET001"]  # the import and the call


def test_det001_datetime_now_fires():
    assert "DET001" in rules_of(
        "from datetime import datetime\nstamp = datetime.now()\n")
    assert "DET001" in rules_of(
        "import datetime\nstamp = datetime.datetime.now()\n")


def test_det001_exempt_in_sim_and_harness():
    src = "import time\nt = time.perf_counter()\n"
    assert rules_of(src, SIM) == []
    assert rules_of(src, HARNESS) == []
    assert rules_of(src, TESTFILE) == []  # tests may time themselves
    assert rules_of(src, NET) == ["DET001"]


def test_det001_ignores_simulated_time():
    # attribute access that isn't a wall-clock module doesn't count
    assert rules_of("t = engine.time()\nu = self.now\n") == []


# ----------------------------------------------------------------------
# DET002 — global random
# ----------------------------------------------------------------------


def test_det002_module_level_random_fires():
    assert rules_of("import random\nx = random.random()\n") == ["DET002"]
    assert rules_of("from random import randint\n") == ["DET002"]


def test_det002_seeded_random_instance_ok():
    src = "import random\nrng = random.Random(42)\nx = rng.random()\n"
    assert rules_of(src) == []
    assert rules_of("from random import Random\n") == []


def test_det002_applies_to_benchmarks_not_tests():
    src = "import random\nx = random.random()\n"
    assert rules_of(src, BENCHFILE) == ["DET002"]
    assert rules_of(src, TESTFILE) == []


# ----------------------------------------------------------------------
# DET003 — set iteration
# ----------------------------------------------------------------------


def test_det003_for_over_set_literal_fires():
    assert rules_of("for x in {1, 2, 3}:\n    pass\n") == ["DET003"]


def test_det003_tracked_set_variable_fires():
    src = """\
    sharers = set()
    for node in sharers:
        pass
    """
    assert rules_of(src) == ["DET003"]


def test_det003_annotated_attribute_fires():
    src = """\
    class Directory:
        def __init__(self):
            self.sharers: set = set()

        def walk(self):
            for node in self.sharers:
                pass
    """
    assert rules_of(src) == ["DET003"]


def test_det003_list_conversion_fires():
    src = "s = {1, 2}\nxs = list(s)\n"
    assert rules_of(src) == ["DET003"]


def test_det003_sorted_and_membership_ok():
    src = """\
    s = {1, 2}
    for x in sorted(s):
        pass
    present = 1 in s
    n = len(s)
    """
    assert rules_of(src) == []


def test_det003_set_arithmetic_result_fires():
    src = "a = {1, 2}\nb = {2}\nfor x in a - b:\n    pass\n"
    assert rules_of(src) == ["DET003"]


def test_det003_only_in_repro():
    assert rules_of("for x in {1, 2}:\n    pass\n", TESTFILE) == []


# ----------------------------------------------------------------------
# DET004 — id() ordering
# ----------------------------------------------------------------------


def test_det004_id_dict_key_fires():
    assert rules_of("d = {}\nd[id(obj)] = 1\n") == ["DET004"]


def test_det004_id_sort_key_fires():
    assert rules_of("xs.sort(key=id)\n") == ["DET004"]
    assert rules_of("ys = sorted(xs, key=lambda o: id(o))\n") == ["DET004"]


def test_det004_id_comparison_fires():
    assert rules_of("first = id(a) < id(b)\n") == ["DET004", "DET004"]


def test_det004_identity_check_ok():
    # plain identity tests don't derive an ordering
    assert rules_of("same = id(a) == id(b)\nprint(id(a))\n") == []


def test_det004_applies_everywhere():
    assert rules_of("d = {}\nd[id(obj)] = 1\n", TESTFILE) == ["DET004"]


# ----------------------------------------------------------------------
# DET005 — heap entries need a seq tie-breaker
# ----------------------------------------------------------------------


def test_det005_bare_priority_tuple_fires():
    assert rules_of("heapq.heappush(heap, (time, item))\n") == ["DET005"]
    assert rules_of("heappush(heap, (t, kind, payload))\n") == ["DET005"]
    assert rules_of("heapq.heappushpop(heap, (t, item))\n") == ["DET005"]


def test_det005_seq_element_satisfies():
    assert rules_of("heapq.heappush(heap, (time, seq, item))\n") == []
    assert rules_of("heappush(heap, (t, self._seq, ev))\n") == []
    assert rules_of("heappush(heap, (t, next(seq_counter), ev))\n") == []


def test_det005_non_tuple_and_single_element_exempt():
    # opaque entries and bare priorities can't tie on a payload compare
    assert rules_of("heapq.heappush(heap, item)\n") == []
    assert rules_of("heapq.heappush(heap, (t,))\n") == []


def test_det005_engine_exempt_tests_covered():
    src = "heapq.heappush(heap, (time, item))\n"
    assert rules_of(src, SIM) == []
    assert rules_of(src, TESTFILE) == ["DET005"]


def test_det005_suppressible():
    src = ("heapq.heappush(heap, (time, item))"
           "  # repro: allow DET005 -- items are totally ordered\n")
    assert rules_of(src) == []


# ----------------------------------------------------------------------
# ARCH001 — layering
# ----------------------------------------------------------------------


def test_arch001_sim_may_only_import_sim_and_common():
    assert rules_of("from repro.net.link import Link\n", SIM) == ["ARCH001"]
    assert rules_of("from repro.obs.core import Observability\n", SIM) \
        == ["ARCH001"]
    assert rules_of("from repro.common.histogram import Histogram\n", SIM) \
        == []
    src = "from repro.sim.events import Event\nfrom repro.common.errors import ReproError\n"
    assert rules_of(src, SIM) == []


def test_arch001_net_must_not_import_niu_or_firmware():
    assert rules_of("import repro.niu.queues\n", NET) == ["ARCH001"]
    assert rules_of("from repro.firmware import reliable\n", NET) == ["ARCH001"]
    assert rules_of("from repro.sim.store import Store\n", NET) == []


def test_arch001_mem_must_not_import_mp_or_shm():
    assert rules_of("from repro.mp import channel\n", MEM) == ["ARCH001"]
    assert rules_of("from repro.common.errors import AddressError\n", MEM) == []


def test_arch001_type_checking_imports_exempt():
    src = """\
    from typing import TYPE_CHECKING
    if TYPE_CHECKING:
        from repro.net.link import Link
    """
    assert rules_of(src, SIM) == []


# ----------------------------------------------------------------------
# ARCH002 — examples/benchmarks stay on the public surface
# ----------------------------------------------------------------------

BENCHMARK = "benchmarks/bench_demo.py"
EXAMPLE = "examples/demo.py"


def test_arch002_internal_import_fires():
    assert rules_of("from repro.niu.niu import vdst_for\n", BENCHMARK) \
        == ["ARCH002"]
    assert rules_of("import repro.sim.engine\n", EXAMPLE) == ["ARCH002"]
    assert rules_of("from repro.firmware.msg import MsgFw\n", EXAMPLE) \
        == ["ARCH002"]


def test_arch002_public_surface_allowed():
    src = """\
    import repro
    from repro.bench import fresh_machine
    from repro.mp import BasicPort, vdst_for
    from repro.lib.mpi import MiniMPI
    from repro.shard import run_scenario
    from repro.core.blocktransfer import BlockTransferEngine
    """
    assert rules_of(src, BENCHMARK) == []


def test_arch002_only_applies_to_user_facing_dirs():
    assert rules_of("from repro.niu.niu import vdst_for\n",
                    "tests/test_demo.py") == []
    assert rules_of("from repro.niu.queues import QueueState\n",
                    "src/repro/mp/basic.py") == []


def test_arch002_suppressible_with_justification():
    src = ("from repro.sim.engine import Engine"
           "  # repro: allow ARCH002 -- raw engine microbenchmark\n")
    assert rules_of(src, BENCHMARK) == []


# ----------------------------------------------------------------------
# PERF001 — hot classes need __slots__
# ----------------------------------------------------------------------


def test_perf001_registered_class_without_slots_fires():
    src = "class Packet:\n    def __init__(self):\n        self.size = 0\n"
    assert rules_of(src, "src/repro/net/packet.py") == ["PERF001"]


def test_perf001_slots_satisfies():
    src = "class Packet:\n    __slots__ = ('size',)\n"
    assert rules_of(src, "src/repro/net/packet.py") == []


def test_perf001_unregistered_class_exempt():
    src = "class Helper:\n    pass\n"
    assert rules_of(src, "src/repro/net/packet.py") == []


# ----------------------------------------------------------------------
# suppression, parse errors, driver
# ----------------------------------------------------------------------


def test_inline_suppression_silences_one_line():
    src = """\
    for x in {1, 2}:  # repro: allow DET003
        pass
    for y in {3, 4}:
        pass
    """
    violations = check_source(textwrap.dedent(src), NET)
    assert [v.rule for v in violations] == ["DET003"]
    assert violations[0].line == 3


def test_inline_suppression_multiple_rules():
    src = "import time\nd = {id(a): time.time()}  # repro: allow DET001, DET004\n"
    assert rules_of(src) == []


def test_suppression_is_rule_specific():
    src = "for x in {1, 2}:  # repro: allow DET004\n    pass\n"
    assert rules_of(src) == ["DET003"]


def test_syntax_error_reported_not_crashed():
    violations = check_source("def broken(:\n", NET)
    assert [v.rule for v in violations] == ["PARSE"]


def test_violation_render_is_location_prefixed():
    (v,) = check_source("import time\nt = time.time()\n", NET)
    assert v.render().startswith(f"{NET}:2:")
    assert "DET001" in v.render()


def test_iter_py_files_deterministic_and_filtered(tmp_path):
    (tmp_path / "b.py").write_text("x = 1\n")
    (tmp_path / "a.py").write_text("x = 1\n")
    (tmp_path / "notes.txt").write_text("not python\n")
    sub = tmp_path / "__pycache__"
    sub.mkdir()
    (sub / "cached.py").write_text("x = 1\n")
    files = list(iter_py_files([str(tmp_path)]))
    assert [f.rsplit("/", 1)[-1] for f in files] == ["a.py", "b.py"]


def test_main_json_report(tmp_path, capsys):
    bad = tmp_path / "src" / "repro" / "net" / "clocky.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\nt = time.time()\n")
    rc = main(["lint", "--json", str(tmp_path)])
    report = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert report["schema"] == "startv.lint"
    assert report["checked_files"] == 1
    assert report["rules"] == RULES
    (violation,) = report["violations"]
    assert violation["rule"] == "DET001"
    assert violation["line"] == 2


def test_main_clean_tree_exits_zero(tmp_path, capsys):
    good = tmp_path / "fine.py"
    good.write_text("x = 1\n")
    rc = main(["lint", str(tmp_path)])
    capsys.readouterr()
    assert rc == 0


REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_module_entry_point_runs():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "lint", "--json",
         "src/repro/analysis"],
        capture_output=True, text=True, cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert json.loads(proc.stdout)["violations"] == []


def test_repo_lints_clean():
    """The enforced CI property: the shipped tree has zero violations."""
    paths = [str(REPO_ROOT / p)
             for p in ("src", "tests", "benchmarks", "examples")]
    violations, n_files = lint_paths(paths)
    assert n_files > 100
    assert violations == [], "\n".join(v.render() for v in violations)
