"""The memory bus, DRAM, and SRAM models: timing, routing, retries."""

import pytest

from repro.bus.bus import MemoryBus
from repro.bus.ops import BusOpType, BusTransaction
from repro.bus.snoop import Snooper, SnoopResult
from repro.common.errors import AddressError, SimulationError
from repro.mem.address import AccessMode, AddressMap, Region
from repro.mem.dram import DRAM
from repro.mem.sram import PORT_BUS, PORT_IBUS, DualPortedSRAM


@pytest.fixture
def rig(engine, config):
    amap = AddressMap()
    dram = DRAM(engine, config.dram, config.bus, base=0)
    amap.add(Region("dram", 0, config.dram.size_bytes, AccessMode.CACHED,
                    owner=dram))
    bus = MemoryBus(engine, config.bus, amap)
    return engine, bus, dram


def _run(engine, gen):
    return engine.run_until_triggered(engine.process(gen))


def test_write_then_read(rig):
    engine, bus, dram = rig

    def body():
        w = BusTransaction(BusOpType.WRITE, 0x100, 8, b"ABCDEFGH", master="m")
        yield from bus.transact(w)
        r = BusTransaction(BusOpType.READ, 0x100, 8, master="m")
        yield from bus.transact(r)
        return r.data

    assert _run(engine, body()) == b"ABCDEFGH"


def test_burst_roundtrip(rig):
    engine, bus, dram = rig
    line = bytes(range(32))

    def body():
        w = BusTransaction(BusOpType.WRITE_LINE, 0x200, 32, line, master="m")
        yield from bus.transact(w)
        r = BusTransaction(BusOpType.READ_LINE, 0x200, 32, master="m")
        yield from bus.transact(r)
        return r.data

    assert _run(engine, body()) == line


def test_single_beat_timing(rig):
    engine, bus, dram = rig
    cyc = bus.config.cycle_ns

    def body():
        r = BusTransaction(BusOpType.READ, 0x0, 8, master="m")
        yield from bus.transact(r)

    _run(engine, body())
    # arb(1) + addr(1) + snoop(1) + DRAM first beat (6)
    assert engine.now == pytest.approx(9 * cyc, rel=1e-6)


def test_burst_timing(rig):
    engine, bus, dram = rig
    cyc = bus.config.cycle_ns

    def body():
        r = BusTransaction(BusOpType.READ_LINE, 0x0, 32, master="m")
        yield from bus.transact(r)

    _run(engine, body())
    # arb + addr + snoop + first(6) + 3 more beats
    assert engine.now == pytest.approx(12 * cyc, rel=1e-6)


def test_burst_size_checked_at_transact(rig):
    engine, bus, _ = rig

    def body():
        t = BusTransaction(BusOpType.READ_LINE, 0x0, 16, master="m")
        yield from bus.transact(t)

    with pytest.raises(SimulationError):
        _run(engine, body())


def test_burst_alignment_checked_at_transact(rig):
    engine, bus, _ = rig

    def body():
        t = BusTransaction(BusOpType.READ_LINE, 0x8, 32, master="m")
        yield from bus.transact(t)

    with pytest.raises(SimulationError):
        _run(engine, body())


def test_unmapped_address(rig):
    engine, bus, _ = rig

    def body():
        t = BusTransaction(BusOpType.READ, 0x9000_0000, 8, master="m")
        yield from bus.transact(t)

    with pytest.raises(SimulationError):  # crash wraps AddressError
        _run(engine, body())


class RetryNTimes(Snooper):
    """Retries the first N snooped transactions."""

    snooper_name = "retrier"

    def __init__(self, n):
        self.n = n

    def snoop(self, txn):
        if self.n > 0:
            self.n -= 1
            return SnoopResult.RETRY
        return SnoopResult.OK


def test_retry_then_success(rig):
    engine, bus, dram = rig
    bus.attach_snooper(RetryNTimes(3))

    def body():
        t = BusTransaction(BusOpType.READ, 0x0, 8, master="m")
        yield from bus.transact(t)
        return t.retries

    assert _run(engine, body()) == 3


def test_retry_cap(rig):
    engine, bus, dram = rig
    bus.config.max_retries = 5
    bus.attach_snooper(RetryNTimes(10**6))

    def body():
        t = BusTransaction(BusOpType.READ, 0x0, 8, master="m")
        yield from bus.transact(t)

    with pytest.raises(SimulationError):
        _run(engine, body())


class AlwaysClaim(Snooper):
    snooper_name = "claimer"

    def __init__(self, engine):
        self.engine = engine

    def snoop(self, txn):
        return SnoopResult.CLAIM

    def serve(self, txn):
        yield self.engine.timeout(1.0)
        if txn.op.is_read:
            return b"\xee" * txn.size
        return None


def test_claim_overrides_owner(rig):
    engine, bus, dram = rig
    dram.poke(0, b"\x11" * 8)
    bus.attach_snooper(AlwaysClaim(engine))

    def body():
        t = BusTransaction(BusOpType.READ, 0x0, 8, master="m")
        yield from bus.transact(t)
        return t.data, t.intervened

    data, intervened = _run(engine, body())
    assert data == b"\xee" * 8
    assert intervened


def test_double_claim_is_error(rig):
    engine, bus, dram = rig
    bus.attach_snooper(AlwaysClaim(engine))
    bus.attach_snooper(AlwaysClaim(engine))

    def body():
        t = BusTransaction(BusOpType.READ, 0x0, 8, master="m")
        yield from bus.transact(t)

    with pytest.raises(SimulationError):
        _run(engine, body())


def test_arbitration_serializes(rig):
    engine, bus, dram = rig
    times = []

    def master(name):
        t = BusTransaction(BusOpType.READ, 0x0, 8, master=name)
        yield from bus.transact(t)
        times.append(engine.now)

    engine.process(master("a"))
    engine.process(master("b"))
    engine.run()
    assert times[1] > times[0]
    assert bus.utilization() > 0.9  # back-to-back transactions


def test_wrong_size_handler_result(rig):
    engine, bus, dram = rig

    class BadClaim(AlwaysClaim):
        def serve(self, txn):
            yield self.engine.timeout(1.0)
            return b"xx"  # wrong size

    bus2 = MemoryBus(engine, bus.config, bus.address_map)
    bus2.attach_snooper(BadClaim(engine))

    def body():
        t = BusTransaction(BusOpType.READ, 0x0, 8, master="m")
        yield from bus2.transact(t)

    with pytest.raises(SimulationError):
        _run(engine, body())


# -- DRAM/SRAM specifics ------------------------------------------------------

def test_dram_peek_poke(rig):
    _, _, dram = rig
    dram.poke(0x40, b"zzz")
    assert dram.peek(0x40, 3) == b"zzz"


def test_sram_ports_independent(engine):
    sram = DualPortedSRAM(engine, 1024, access_ns=10.0)
    times = {}

    def user(port, name):
        yield from sram.read(port, 0, 8)
        times[name] = engine.now

    engine.process(user(PORT_BUS, "bus"))
    engine.process(user(PORT_IBUS, "ibus"))
    engine.run()
    # different ports proceed in parallel
    assert times["bus"] == times["ibus"] == pytest.approx(10.0)


def test_sram_same_port_serializes(engine):
    sram = DualPortedSRAM(engine, 1024, access_ns=10.0)
    times = []

    def user():
        yield from sram.read(PORT_BUS, 0, 8)
        times.append(engine.now)

    engine.process(user())
    engine.process(user())
    engine.run()
    assert times == [pytest.approx(10.0), pytest.approx(20.0)]


def test_sram_beat_timing(engine):
    sram = DualPortedSRAM(engine, 1024, access_ns=10.0, width_bytes=8)

    def user():
        yield from sram.write(PORT_BUS, 0, bytes(33))  # 5 beats

    p = engine.process(user())
    engine.run_until_triggered(p)
    assert engine.now == pytest.approx(50.0)


def test_sram_data_roundtrip(engine):
    sram = DualPortedSRAM(engine, 128, access_ns=1.0)

    def body():
        yield from sram.write(PORT_IBUS, 16, b"from-ibus")
        return (yield from sram.read(PORT_BUS, 16, 9))

    p = engine.process(body())
    assert engine.run_until_triggered(p) == b"from-ibus"
    assert sram.peek(16, 9) == b"from-ibus"
