"""User-level DMA: integrity across sizes, alignments, and modes."""

import pytest

import repro
from repro.mp.basic import BasicPort
from repro.mp.dma import DmaNotifier, dma_write


@pytest.fixture
def m2():
    return repro.StarTVoyager(repro.default_config(n_nodes=2))


def _dma(m2, size, src_addr=0x10000, dst_addr=0x20000, mode=3):
    pattern = bytes((i * 13 + 7) & 0xFF for i in range(size))
    m2.node(0).dram.poke(src_addr, pattern)
    port = BasicPort(m2.node(0), 1, 1)
    notifier = DmaNotifier(m2.node(1))

    def requester(api):
        yield from dma_write(api, port, 1, src_addr, dst_addr, size, mode=mode)

    def waiter(api):
        return (yield from notifier.wait(api))

    m2.spawn(0, requester)
    src, length = m2.run_until(m2.spawn(1, waiter), limit=1e10)
    got = m2.node(1).dram.peek(dst_addr, size)
    return src, length, got == pattern


@pytest.mark.parametrize("size", [1, 80, 100, 1024, 4096, 4097, 10000])
def test_dma_integrity_sizes(m2, size):
    src, length, ok = _dma(m2, size)
    assert (src, length, ok) == (0, size, True)


def test_dma_unaligned_addresses(m2):
    src, length, ok = _dma(m2, 777, src_addr=0x10003, dst_addr=0x20005)
    assert ok and length == 777


def test_dma_multi_page(m2):
    # crosses three page boundaries
    size = 3 * 4096 + 123
    src, length, ok = _dma(m2, size, src_addr=0x10800)
    assert ok and length == size


def test_dma_zero_length_rejected(m2):
    port = BasicPort(m2.node(0), 1, 1)

    def requester(api):
        yield from dma_write(api, port, 1, 0x10000, 0x20000, 0)

    from repro.common.errors import SimulationError
    with pytest.raises(SimulationError):
        m2.run_until(m2.spawn(0, requester), limit=1e7)


def test_dma_notification_after_data(m2):
    """The completion message must not be readable before the data."""
    size = 2048
    pattern = bytes((i * 31) & 0xFF for i in range(size))
    m2.node(0).dram.poke(0x11000, pattern)
    port = BasicPort(m2.node(0), 1, 1)
    notifier = DmaNotifier(m2.node(1))

    def requester(api):
        yield from dma_write(api, port, 1, 0x11000, 0x21000, size)

    def waiter(api):
        yield from notifier.wait(api)
        data = m2.node(1).dram.peek(0x21000, size)
        return data == pattern

    m2.spawn(0, requester)
    assert m2.run_until(m2.spawn(1, waiter), limit=1e10)


def test_dma_back_to_back(m2):
    """Two DMAs through the same engine stay ordered and intact."""
    a = bytes((i * 3) & 0xFF for i in range(1000))
    b = bytes((i * 5 + 1) & 0xFF for i in range(1500))
    m2.node(0).dram.poke(0x12000, a)
    m2.node(0).dram.poke(0x13000, b)
    port = BasicPort(m2.node(0), 1, 1)
    notifier = DmaNotifier(m2.node(1))

    def requester(api):
        yield from dma_write(api, port, 1, 0x12000, 0x22000, len(a))
        yield from dma_write(api, port, 1, 0x13000, 0x23000, len(b))

    def waiter(api):
        yield from notifier.wait(api)
        yield from notifier.wait(api)

    m2.spawn(0, requester)
    m2.run_until(m2.spawn(1, waiter), limit=1e10)
    assert m2.node(1).dram.peek(0x22000, len(a)) == a
    assert m2.node(1).dram.peek(0x23000, len(b)) == b


def test_dma_mode2_firmware_path(m2):
    """Approach-2 transport (sP packetization) delivers identical bytes."""
    src, length, ok = _dma(m2, 3000, mode=2)
    assert (src, length, ok) == (0, 3000, True)
