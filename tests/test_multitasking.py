"""Queue ownership protection: the multitasking story of §4/§7.

"By providing simple protection, translation and multiple queues ...
[the NIU] allows for more general parallel computing and more flexible
job-scheduling in multitasking of the parallel system."

Two "processes" (pids) share one node; each owns its queues.  Touching
another process's queue pointer shuts the queue down and interrupts
firmware, while the victim's *other* resources keep working.
"""

import pytest

import repro
from repro.mem.address import NIU_CTL_BASE
from repro.mp.basic import BasicPort
from repro.niu.handlers import pointer_offset
from repro.niu.niu import PTR_WINDOW_OFF, vdst_for
from repro.niu.queues import QueueKind


@pytest.fixture
def m2():
    return repro.StarTVoyager(repro.default_config(n_nodes=2))


def _own(machine, node, tx_idx, logical, pid):
    niu = machine.node(node).niu
    niu.ctrl.tx_queues[tx_idx].owner_pid = pid
    niu.ap_rx_slot(logical).owner_pid = pid


def test_owner_can_use_queue(m2):
    _own(m2, 0, 0, 0, pid=7)
    _own(m2, 1, 0, 0, pid=0)
    port0 = BasicPort(m2.node(0), 0, 0)
    port1 = BasicPort(m2.node(1), 0, 0)

    def sender(api):
        yield from port0.send(api, vdst_for(1, 0), b"owned-queue")

    def receiver(api):
        return (yield from port1.recv(api))

    m2.spawn(0, sender, pid=7)
    src, payload = m2.run_until(m2.spawn(1, receiver), limit=1e9)
    assert payload == b"owned-queue"
    assert m2.node(0).ctrl.tx_queues[0].enabled


def test_kernel_pid_accepted_everywhere(m2):
    _own(m2, 0, 0, 0, pid=7)
    port0 = BasicPort(m2.node(0), 0, 0)
    port1 = BasicPort(m2.node(1), 0, 0)

    def sender(api):  # pid 0 = kernel
        yield from port0.send(api, vdst_for(1, 0), b"kernel-send")

    def receiver(api):
        return (yield from port1.recv(api))

    m2.spawn(0, sender)  # default pid 0
    _src, payload = m2.run_until(m2.spawn(1, receiver), limit=1e9)
    assert payload == b"kernel-send"


def test_intruder_shuts_queue_down(m2):
    _own(m2, 0, 0, 0, pid=7)
    ctrl = m2.node(0).ctrl
    base = NIU_CTL_BASE + PTR_WINDOW_OFF

    def intruder(api):
        # pid 9 pokes pid 7's transmit producer
        yield from api.store_u32(
            base + pointer_offset(QueueKind.TX, 0, "producer"), 1)
        return "intruder survives"

    result = m2.run_until(m2.spawn(0, intruder, pid=9), limit=1e8)
    assert result == "intruder survives"
    assert not ctrl.tx_queues[0].enabled  # the attacked queue is dead
    assert ctrl.tx_queues[0].producer == 0  # the write never landed
    # firmware was interrupted with the violation
    m2.run(until=m2.now + 50_000)
    log = m2.node(0).sp.state.get("protection_log", [])
    assert any("pid 9" in entry[3] for entry in log)


def test_violation_leaves_other_process_running(m2):
    _own(m2, 0, 0, 0, pid=7)
    _own(m2, 0, 1, 1, pid=9)
    base = NIU_CTL_BASE + PTR_WINDOW_OFF
    victim_port = BasicPort(m2.node(0), 1, 1)
    rx_port = BasicPort(m2.node(1), 1, 1)

    def attacker(api):
        yield from api.store_u32(
            base + pointer_offset(QueueKind.TX, 0, "producer"), 1)

    def victim(api):
        yield from victim_port.send(api, vdst_for(1, 1), b"still-alive")

    def receiver(api):
        return (yield from rx_port.recv(api))

    m2.spawn(0, attacker, pid=9)
    m2.spawn(0, victim, pid=9)
    _src, payload = m2.run_until(m2.spawn(1, receiver), limit=1e9)
    assert payload == b"still-alive"
    ctrl = m2.node(0).ctrl
    assert not ctrl.tx_queues[0].enabled
    assert ctrl.tx_queues[1].enabled


def test_rx_consumer_also_protected(m2):
    _own(m2, 0, 0, 2, pid=7)
    q = m2.node(0).niu.ap_rx_slot(2)
    base = NIU_CTL_BASE + PTR_WINDOW_OFF

    def intruder(api):
        yield from api.store_u32(
            base + pointer_offset(QueueKind.RX, q.index, "consumer"), 1)

    m2.run_until(m2.spawn(0, intruder, pid=3), limit=1e8)
    assert not q.enabled


def test_os_can_rearm_queue(m2):
    """After a violation the OS (trusted path) re-enables the queue."""
    _own(m2, 0, 0, 0, pid=7)
    ctrl = m2.node(0).ctrl
    base = NIU_CTL_BASE + PTR_WINDOW_OFF

    def intruder(api):
        yield from api.store_u32(
            base + pointer_offset(QueueKind.TX, 0, "producer"), 1)

    m2.run_until(m2.spawn(0, intruder, pid=9), limit=1e8)
    assert not ctrl.tx_queues[0].enabled
    # OS response: re-arm (model-level trusted operation)
    ctrl.tx_queues[0].enabled = True
    port0 = BasicPort(m2.node(0), 0, 0)
    port1 = BasicPort(m2.node(1), 0, 0)

    def sender(api):
        yield from port0.send(api, vdst_for(1, 0), b"rearmed")

    def receiver(api):
        return (yield from port1.recv(api))

    m2.spawn(0, sender, pid=7)
    _src, payload = m2.run_until(m2.spawn(1, receiver), limit=1e9)
    assert payload == b"rearmed"


def test_express_queue_ownership(m2):
    """Express sends are protected too: the wrong pid's store completes
    (stores are posted) but the message never launches and the queue
    shuts down."""
    from repro.mp.express import ExpressPort
    from repro.niu.niu import EXPRESS_RX_LOGICAL, EXPRESS_TX_IDX

    ctrl = m2.node(0).ctrl
    ctrl.tx_queues[EXPRESS_TX_IDX].owner_pid = 7
    e0 = ExpressPort(m2.node(0))
    e1 = ExpressPort(m2.node(1))

    def intruder(api):
        yield from e0.send(api, vdst_for(1, EXPRESS_RX_LOGICAL), b"STEAL")
        return "done"

    assert m2.run_until(m2.spawn(0, intruder, pid=9), limit=1e8) == "done"
    m2.run(until=m2.now + 200_000)
    assert not ctrl.tx_queues[EXPRESS_TX_IDX].enabled
    # nothing arrived at node 1
    def check(api):
        return (yield from e1.recv(api))

    assert m2.run_until(m2.spawn(1, check), limit=1e8) is None


def test_express_owner_still_works(m2):
    from repro.mp.express import ExpressPort
    from repro.niu.niu import EXPRESS_RX_LOGICAL, EXPRESS_TX_IDX

    m2.node(0).ctrl.tx_queues[EXPRESS_TX_IDX].owner_pid = 7
    e0 = ExpressPort(m2.node(0))
    e1 = ExpressPort(m2.node(1))

    def owner(api):
        yield from e0.send(api, vdst_for(1, EXPRESS_RX_LOGICAL), b"MINE!")

    def receiver(api):
        return (yield from e1.recv_blocking(api))

    m2.spawn(0, owner, pid=7)
    src, payload = m2.run_until(m2.spawn(1, receiver), limit=1e9)
    assert payload == b"MINE!"
