"""Switch-resident combining (`repro.net.combine`): units and machine
integration.

Covers the tag wire format, the op fold semantics, the protocol-byte
mirror between the net and firmware layers (ARCH001 forces the
duplication; this file is the test the combine module's docstring
promises), combine-hit counters flowing into ``machine.metrics()``, and
the decombine-exactly-once sanitizer — both a clean pass and a seeded
violation (a forged stale reply) that must raise.
"""

import os

import pytest

import repro
from repro.common.errors import NetworkError, SanitizerError, SimulationError
from repro.firmware import proto
from repro.net import combine
from repro.net.combine import (
    MODE_FETCH,
    OP_ADD,
    OP_CSWAP,
    OP_MAX,
    OP_MIN,
    OP_OR,
    OP_SWAP,
    PHASE_DOWN,
    SyncTag,
    apply_op,
    unpack_tag,
)
from repro.net.packet import PRIORITY_HIGH, Packet, PacketKind


def test_reply_bytes_mirror_firmware_proto():
    """The net layer cannot import firmware (ARCH001), so the reply type
    bytes are defined twice; the two registries must agree."""
    assert combine.SYNC_REP_BYTE == proto.MSG_SYNC_REP
    assert combine.SYNC_TREE_REP_BYTE == proto.MSG_SYNC_TREE_REP


def test_sync_tag_roundtrip():
    tag = SyncTag(PHASE_DOWN, MODE_FETCH, group=9, op=OP_ADD, value=-17,
                  cell=3, seq=11, aux=-2, token=42, origin=6,
                  reply_queue=3, count=5)
    raw = tag.pack()
    assert len(raw) == combine.TAG_WIRE_BYTES
    back = unpack_tag(raw)
    for field in SyncTag.__slots__:
        assert getattr(back, field) == getattr(tag, field), field
    # combined packets carry origin -1
    anon = SyncTag(PHASE_DOWN, MODE_FETCH, group=1, op=OP_ADD)
    assert unpack_tag(anon.pack()).origin == -1
    with pytest.raises(NetworkError):
        unpack_tag(raw[:10])


def test_apply_op_semantics():
    assert apply_op(OP_ADD, 5, -3) == 2
    assert apply_op(OP_MIN, 5, 9) == 5
    assert apply_op(OP_MAX, 5, 9) == 9
    assert apply_op(OP_OR, 0b100, 0b001) == 0b101
    assert apply_op(OP_SWAP, 5, 9) == 9
    with pytest.raises(NetworkError):
        apply_op(OP_CSWAP, 0, 1)  # not associative, never combines


def _switch_machine(n=4, **overrides):
    machine = repro.StarTVoyager(repro.default_config(n_nodes=n,
                                                      **overrides))
    grp = machine.sync_fabric().group(range(n), mode="switch")
    return machine, grp


def _contend(machine, grp, n, rounds=3):
    ctr = grp.counter(cell=0)

    def prog(api, rank):
        olds = []
        for _ in range(rounds):
            old = yield from ctr.add(api, rank, 1)
            olds.append(old)
        return olds

    procs = [machine.spawn(i, prog, i) for i in range(n)]
    return machine.run_all(procs, limit=1e9)


def test_combine_counters_reach_machine_metrics():
    machine, grp = _switch_machine(4)
    results = _contend(machine, grp, 4)
    # serializable fetch-and-add: the pre-op values are a permutation
    assert sorted(v for olds in results for v in olds) == list(range(12))
    counters = machine.metrics(include_config=False)["counters"]
    root = "sw%d.%d" % grp.plan.root
    assert counters[f"{root}.cell_ops"] >= 1
    hits = sum(v for k, v in counters.items() if k.endswith(".combine_hits"))
    folds = sum(v for k, v in counters.items()
                if k.endswith(".combine_folds"))
    decombines = sum(v for k, v in counters.items()
                     if k.endswith(".decombines"))
    assert hits > 0 and folds > 0 and decombines > 0


def test_clean_run_passes_combine_sanitizer():
    machine, grp = _switch_machine(4, sanitize=("combine",))
    _contend(machine, grp, 4)
    machine.run()  # drain: the exactly-once ledger must be empty
    rep = machine.sanitizers.checker("combine").report()
    assert rep["flushes"] == rep["closes"] > 0
    assert rep["replies"] > 0


def _forge_stale_reply(machine, grp):
    """A decombined reply whose token nobody recorded — the exact bug
    class (duplicate / stale decombine) the sanitizer exists to catch."""
    root_key = grp.plan.root
    stage = machine.network.switches[root_key].combiner
    tag = SyncTag(PHASE_DOWN, MODE_FETCH, grp.gid, OP_ADD, value=7,
                  cell=0, token=0xDEAD)
    pkt = Packet(PacketKind.DATA, src=0, dst=0, dst_queue=0,
                 payload=tag.pack(), priority=PRIORITY_HIGH,
                 header_bytes=machine.config.network.header_bytes,
                 sync=tag)
    machine.engine.process(stage.accept(0, pkt))
    return stage


def test_seeded_violation_trips_combine_sanitizer():
    machine, grp = _switch_machine(4, sanitize=("combine",))
    _contend(machine, grp, 4)
    _forge_stale_reply(machine, grp)
    # the stage crashes inside a simulation process; strict mode re-raises
    # with the sanitizer's verdict as the cause
    with pytest.raises(SimulationError) as exc:
        machine.run()
    assert isinstance(exc.value.__cause__, SanitizerError)
    assert "nobody is waiting" in str(exc.value.__cause__)


@pytest.mark.skipif(bool(os.environ.get("REPRO_SANITIZE")),
                    reason="asserts the unsanitized counting path; "
                           "REPRO_SANITIZE forces checkers on")
def test_unsanitized_orphan_is_counted_and_dropped():
    machine, grp = _switch_machine(4)
    _contend(machine, grp, 4)
    _forge_stale_reply(machine, grp)
    machine.run()
    counters = machine.metrics(include_config=False)["counters"]
    orphans = sum(v for k, v in counters.items()
                  if k.endswith(".orphan_replies"))
    assert orphans == 1


def test_sanitizer_duplicate_reply_and_short_close():
    """Unit drive of the ledger: a reply duplicated onto one port and a
    close with contributors still unreplied both fail."""
    from repro.analysis.sanitize import CombineSanitizer

    chk = CombineSanitizer(machine=None)
    chk.note_open("sw1.0", ("k",))
    chk.note_flush("sw1.0", ("k",), token=1, expected=2)
    chk.note_reply("sw1.0", 1, port=0)
    with pytest.raises(SanitizerError, match="twice onto"):
        chk.note_reply("sw1.0", 1, port=0)

    chk = CombineSanitizer(machine=None)
    chk.note_flush("sw1.0", ("k",), token=1, expected=2)
    chk.note_reply("sw1.0", 1, port=0)
    with pytest.raises(SanitizerError, match="contributors lost"):
        chk.note_close("sw1.0", 1, expected=2)


def test_unprogrammed_group_is_rejected_loudly():
    machine, grp = _switch_machine(4)
    root_key = grp.plan.root
    stage = machine.network.switches[root_key].combiner
    tag = SyncTag(PHASE_DOWN, MODE_FETCH, group=999, op=OP_ADD, token=1)
    pkt = Packet(PacketKind.DATA, src=0, dst=0, dst_queue=0,
                 payload=tag.pack(), priority=PRIORITY_HIGH,
                 header_bytes=machine.config.network.header_bytes,
                 sync=tag)
    machine.engine.process(stage.accept(0, pkt))
    with pytest.raises(SimulationError) as exc:
        machine.run()
    assert isinstance(exc.value.__cause__, NetworkError)
    assert "unprogrammed group" in str(exc.value.__cause__)
