"""Shared fixtures: engines, configurations, machines.

Machines are expensive to build, so tests that only read behaviour share
module-scoped instances where safe; anything that mutates state builds
its own via the factories here.
"""

import pytest

import repro
from repro.common.config import default_config
from repro.sim.engine import Engine


@pytest.fixture
def engine():
    """A fresh simulation engine."""
    return Engine()


@pytest.fixture
def config():
    """The standard validated machine configuration."""
    return default_config()


@pytest.fixture
def machine2():
    """A fresh two-node machine with default firmware."""
    return repro.StarTVoyager(repro.default_config(n_nodes=2))


@pytest.fixture
def machine4():
    """A fresh four-node machine with default firmware."""
    return repro.StarTVoyager(repro.default_config(n_nodes=4))


def run_proc(engine, gen, limit=None):
    """Start a generator as a process and run it to completion."""
    proc = engine.process(gen)
    return engine.run_until_triggered(proc, limit)
