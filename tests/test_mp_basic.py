"""Basic and TagOn messages through the user-level port."""

import pytest

import repro
from repro.mp.basic import BasicPort
from repro.niu.niu import vdst_for


@pytest.fixture
def m2():
    return repro.StarTVoyager(repro.default_config(n_nodes=2))


def _pair(m2):
    return BasicPort(m2.node(0), 0, 0), BasicPort(m2.node(1), 0, 0)


def test_send_recv(m2):
    p0, p1 = _pair(m2)

    def s(api):
        yield from p0.send(api, vdst_for(1, 0), b"payload-bytes")

    def r(api):
        return (yield from p1.recv(api))

    m2.spawn(0, s)
    src, payload = m2.run_until(m2.spawn(1, r), limit=1e8)
    assert (src, payload) == (0, b"payload-bytes")


def test_empty_payload(m2):
    p0, p1 = _pair(m2)

    def s(api):
        yield from p0.send(api, vdst_for(1, 0), b"")

    def r(api):
        return (yield from p1.recv(api))

    m2.spawn(0, s)
    src, payload = m2.run_until(m2.spawn(1, r), limit=1e8)
    assert payload == b""


def test_max_payload(m2):
    p0, p1 = _pair(m2)
    data = bytes(range(88))

    def s(api):
        yield from p0.send(api, vdst_for(1, 0), data)

    def r(api):
        return (yield from p1.recv(api))

    m2.spawn(0, s)
    _, payload = m2.run_until(m2.spawn(1, r), limit=1e8)
    assert payload == data


def test_oversized_payload_rejected(m2):
    p0, _ = _pair(m2)

    def s(api):
        yield from p0.send(api, vdst_for(1, 0), bytes(89))

    from repro.common.errors import SimulationError
    with pytest.raises(SimulationError):
        m2.run_until(m2.spawn(0, s), limit=1e7)


def test_fifo_order_many(m2):
    p0, p1 = _pair(m2)
    count = 50  # several times the queue depth: exercises flow control

    def s(api):
        for i in range(count):
            yield from p0.send(api, vdst_for(1, 0), bytes([i, 255 - i]))

    def r(api):
        out = []
        for _ in range(count):
            _src, payload = yield from p1.recv(api)
            out.append(payload[0])
        return out

    m2.spawn(0, s)
    assert m2.run_until(m2.spawn(1, r), limit=1e9) == list(range(count))


def test_sender_blocks_on_full_tx_queue(m2):
    """With no receiver, the sender fills the pipeline and stalls rather
    than losing messages."""
    p0, p1 = _pair(m2)
    sent_counter = []

    def s(api):
        for i in range(100):
            yield from p0.send(api, vdst_for(1, 0), bytes([i]))
            sent_counter.append(i)

    m2.spawn(0, s)
    m2.run(until=3e6)
    stalled_at = len(sent_counter)
    assert stalled_at < 100  # backpressure kicked in

    def r(api):
        out = []
        for _ in range(100):
            _src, payload = yield from p1.recv(api)
            out.append(payload[0])
        return out

    got = m2.run_until(m2.spawn(1, r), limit=1e9)
    assert got == list(range(100))  # nothing lost, order kept


def test_poll_nonblocking(m2):
    _, p1 = _pair(m2)

    def r(api):
        return (yield from p1.poll(api))

    assert m2.run_until(m2.spawn(1, r), limit=1e7) is None


def test_tagon_small_and_large(m2):
    p0, p1 = _pair(m2)
    staging = m2.node(0).niu.alloc_asram(160, align=16)

    def s(api):
        t48 = yield from p0.stage_tagon(api, staging, b"S" * 48)
        yield from p0.send(api, vdst_for(1, 0), b"head48:", tagon=t48)
        t80 = yield from p0.stage_tagon(api, staging + 80, b"L" * 80)
        yield from p0.send(api, vdst_for(1, 0), b"head80:", tagon=t80)

    def r(api):
        a = yield from p1.recv(api)
        b = yield from p1.recv(api)
        return a, b

    m2.spawn(0, s)
    (s1, m1), (s2, m2_) = m2.run_until(m2.spawn(1, r), limit=1e9)
    assert m1 == b"head48:" + b"S" * 48
    assert m2_ == b"head80:" + b"L" * 80


def test_tagon_padding(m2):
    p0, p1 = _pair(m2)
    staging = m2.node(0).niu.alloc_asram(80, align=16)

    def s(api):
        tag = yield from p0.stage_tagon(api, staging, b"short")  # pads to 48
        yield from p0.send(api, vdst_for(1, 0), b"x", tagon=tag)

    def r(api):
        return (yield from p1.recv(api))

    m2.spawn(0, s)
    _, payload = m2.run_until(m2.spawn(1, r), limit=1e9)
    assert len(payload) == 1 + 48
    assert payload[1:6] == b"short"


def test_tagon_oversized_rejected(m2):
    p0, _ = _pair(m2)
    staging = m2.node(0).niu.alloc_asram(96, align=16)

    def s(api):
        yield from p0.stage_tagon(api, staging, bytes(81))

    from repro.common.errors import SimulationError
    with pytest.raises(SimulationError):
        m2.run_until(m2.spawn(0, s), limit=1e7)


def test_tagon_payload_budget(m2):
    p0, _ = _pair(m2)
    staging = m2.node(0).niu.alloc_asram(80, align=16)

    def s(api):
        tag = yield from p0.stage_tagon(api, staging, bytes(80))
        # 9 + 80 > 88: hardware could not fit this in one packet
        yield from p0.send(api, vdst_for(1, 0), bytes(9), tagon=tag)

    from repro.common.errors import SimulationError
    with pytest.raises(SimulationError):
        m2.run_until(m2.spawn(0, s), limit=1e7)


def test_bidirectional_concurrent(m2):
    p0, p1 = _pair(m2)

    def side(api, me, port):
        other = 1 - me
        for i in range(10):
            yield from port.send(api, vdst_for(other, 0), bytes([me, i]))
        out = []
        for _ in range(10):
            _src, payload = yield from port.recv(api)
            out.append(tuple(payload))
        return out

    a = m2.spawn(0, side, 0, p0)
    b = m2.spawn(1, side, 1, p1)
    ra, rb = m2.run_all([a, b], limit=1e9)
    assert ra == [(1, i) for i in range(10)]
    assert rb == [(0, i) for i in range(10)]
