"""System-level property tests: whole-machine invariants under random
workloads (small example counts — each example builds a machine)."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.mp.basic import BasicPort
from repro.mp.dma import DmaNotifier, dma_write
from repro.niu.niu import vdst_for
from repro.shm import ScomaRegion

_slow = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@_slow
@given(
    size=st.integers(min_value=1, max_value=9000),
    src_off=st.integers(min_value=0, max_value=63),
    dst_off=st.integers(min_value=0, max_value=63),
    mode=st.sampled_from([2, 3]),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_dma_byte_exact_any_geometry(size, src_off, dst_off, mode, seed):
    """DMA delivers byte-exact data for any size/alignment/transport."""
    import random

    rng = random.Random(seed)
    data = bytes(rng.randrange(256) for _ in range(size))
    machine = repro.StarTVoyager(repro.default_config(n_nodes=2))
    machine.node(0).dram.poke(0x10000 + src_off, data)
    port = BasicPort(machine.node(0), 1, 1)
    notifier = DmaNotifier(machine.node(1))

    def req(api):
        yield from dma_write(api, port, 1, 0x10000 + src_off,
                             0x20000 + dst_off, size, mode=mode)

    def wait(api):
        yield from notifier.wait(api)

    machine.spawn(0, req)
    machine.run_until(machine.spawn(1, wait), limit=1e10)
    assert machine.node(1).dram.peek(0x20000 + dst_off, size) == data


@_slow
@given(
    ops=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1),  # node
            st.booleans(),  # write?
            st.integers(min_value=0, max_value=3),  # line
            st.integers(min_value=0, max_value=255),  # value
        ),
        min_size=1,
        max_size=12,
    ),
)
def test_scoma_sequential_trace_coherent(ops):
    """A serialized random access trace over shared lines behaves exactly
    like a single flat memory (per-location sequential consistency)."""
    machine = repro.StarTVoyager(repro.default_config(n_nodes=2))
    region = ScomaRegion(machine, n_lines=8)
    region.init_data(0, bytes(8 * 32))
    reference = bytearray(8 * 32)

    for node, is_write, line, value in ops:
        addr = region.addr(line * 32)
        if is_write:
            data = bytes([value] * 8)

            def w(api, a=addr, d=data):
                yield from api.store(a, d)

            machine.run_until(machine.spawn(node, w), limit=1e10)
            reference[line * 32 : line * 32 + 8] = data
        else:
            def r(api, a=addr):
                return (yield from api.load(a, 8))

            got = machine.run_until(machine.spawn(node, r), limit=1e10)
            assert got == bytes(reference[line * 32 : line * 32 + 8]), \
                (node, line, ops)


@_slow
@given(
    n_msgs=st.integers(min_value=1, max_value=30),
    payloads=st.data(),
)
def test_basic_messages_fifo_no_loss(n_msgs, payloads):
    """Any stream of Basic messages arrives complete and in order."""
    bodies = [
        payloads.draw(st.binary(min_size=0, max_size=88))
        for _ in range(n_msgs)
    ]
    machine = repro.StarTVoyager(repro.default_config(n_nodes=2))
    p0 = BasicPort(machine.node(0), 0, 0)
    p1 = BasicPort(machine.node(1), 0, 0)

    def sender(api):
        for body in bodies:
            yield from p0.send(api, vdst_for(1, 0), body)

    def receiver(api):
        out = []
        for _ in range(n_msgs):
            _src, body = yield from p1.recv(api)
            out.append(body)
        return out

    machine.spawn(0, sender)
    got = machine.run_until(machine.spawn(1, receiver), limit=1e10)
    assert got == bodies


@_slow
@given(
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),  # writer node
            st.integers(min_value=0, max_value=15),  # word index
            st.integers(min_value=1, max_value=255),  # value
        ),
        min_size=1,
        max_size=10,
    ),
)
def test_update_region_matches_reference(writes):
    """Release-consistent updates converge to a reference model in which
    each release applies that node's writes to a global array.

    Writers are confined to disjoint words (word % 3 == node) so that
    the outcome is order-independent — the multiple-writer guarantee.
    """
    from repro.mp.basic import BasicPort
    from repro.shm.update import UpdateRegion

    machine = repro.StarTVoyager(repro.default_config(n_nodes=3))
    region = UpdateRegion(machine, base=0x50000, size=1024)
    ports = [BasicPort(machine.node(n), 0, 0) for n in range(3)]
    reference = bytearray(1024)
    by_node = {0: [], 1: [], 2: []}
    for node, word, value in writes:
        word = word - (word % 3) + node  # confine to the node's words
        if word > 15:
            word -= 3
        offset = word * 8
        data = bytes([value]) * 8
        by_node[node].append((offset, data))
        reference[offset : offset + 8] = data

    def writer(api, node):
        for offset, data in by_node[node]:
            yield from api.store(region.addr(offset), data)
        if by_node[node]:
            yield from region.release(api, ports[node], notify_queue=0)

    procs = [machine.spawn(n, writer, n) for n in range(3)]
    machine.run_all(procs, limit=1e10)
    machine.run(until=machine.now + 500_000)
    for n in range(3):
        got = region.peek(n, 0, 128)
        assert got == bytes(reference[:128]), (n, writes)
