"""The serving-traffic applications (`repro.traffic`).

Correctness of the three applications over every transport, the
``traffic`` metrics section, the hot-key incast regression, and the
determinism contract: byte-identical wall-stripped metrics across
``--jobs`` 1/4 and shards 1/2, distinct seeds giving distinct runs.
"""

import pytest

import repro
from repro.bench.harness import comparable, run_sweep
from repro.common.config import NIUConfig
from repro.common.errors import ConfigError
from repro.traffic import KvClient, TrainJob, UsvcClient, home_node
from repro.traffic.load import TraceRecord, make_kv_trace, node_slice
from repro.traffic.train import block_home


def _machine(n, **overrides):
    return repro.StarTVoyager(repro.default_config(n_nodes=n, **overrides))


def _run_kv(machine, trace, **client_kwargs):
    clients = []
    procs = []
    for node in range(machine.config.n_nodes):
        client = KvClient(machine, machine.node(node), **client_kwargs)
        clients.append(client)
        for prog in client.open_loop(node_slice(trace, node)):
            procs.append(machine.spawn(node, prog))
    machine.run_all(procs, limit=1e10)
    return clients


def _store(machine, node):
    return machine.node(node).sp.state["traffic"].store


# ----------------------------------------------------------------------
# KV store
# ----------------------------------------------------------------------


@pytest.mark.parametrize("transport,reliable", [
    ("basic", False), ("basic", True), ("tagon", False),
    ("dma", False), ("dma", True),
])
def test_kv_put_then_get_every_transport(transport, reliable):
    """A PUT lands in the home shard's store and a later GET completes;
    TagOn/DMA values travel out-of-band but hit the same handler."""
    n = 4
    machine = _machine(n)
    key = 5
    trace = [TraceRecord(1_000.0 * (i + 1), node, op, key, size)
             for i, (node, op, size) in enumerate(
                 [(0, "put", 8), (1, "get", 0), (2, "put", 8),
                  (3, "get", 0)])]
    clients = _run_kv(machine, trace, transport=transport,
                      reliable=reliable)
    home = home_node(key, n)
    stored = _store(machine, home)[key]
    assert len(stored) >= 8  # tagon pads values to the 48-byte unit
    for c in clients:
        assert c.slo.completed.value == c.slo.offered.value
        assert not c.inflight


def test_kv_get_miss_and_range_complete():
    machine = _machine(2)
    trace = [TraceRecord(1_000.0, 0, "get", 99, 0),
             TraceRecord(2_000.0, 1, "range", 0, 0)]
    clients = _run_kv(machine, trace)
    assert sum(c.slo.completed.value for c in clients) == 2


def test_kv_client_rejects_bad_configs():
    machine = _machine(2)
    with pytest.raises(ConfigError):
        KvClient(machine, machine.node(0), transport="carrier-pigeon")
    with pytest.raises(ConfigError):
        KvClient(machine, machine.node(0), transport="tagon", reliable=True)


def test_kv_closed_loop_self_throttles():
    machine = _machine(2)
    trace = make_kv_trace(2, 12, 200_000.0, seed=3, put_fraction=0.5)
    procs = []
    clients = []
    for node in range(2):
        client = KvClient(machine, machine.node(node))
        clients.append(client)
        procs.append(machine.spawn(
            node, client.closed_loop(node_slice(trace, node), window=2)))
    machine.run_all(procs, limit=1e10)
    assert sum(c.slo.completed.value for c in clients) == len(trace)


def test_kv_slo_section_in_metrics():
    machine = _machine(4)
    trace = make_kv_trace(4, 8, 100_000.0, seed=1, put_fraction=0.5)
    _run_kv(machine, trace)
    section = machine.metrics(include_config=False)["traffic"]
    kv = section["kv"]
    assert kv["offered"] == len(trace) == 32
    assert kv["completed"] == 32
    assert 0.0 <= kv["goodput"] <= 1.0
    lat = kv["latency_ns"]
    assert lat["n"] == 32
    for k in ("p50", "p99", "p999", "max"):
        assert lat[k] > 0
    assert "ps" not in section  # only apps that ran appear


def test_kv_incast_hot_key_survives_shallow_service_queue():
    """64 clients fan into one home node's sP service queue at once;
    the miss-queue redelivery path must absorb the burst (a drop would
    leave a client hanging forever)."""
    n = 64
    machine = _machine(n, niu=NIUConfig(queue_depth=4))
    key = 0
    trace = [TraceRecord(100.0, node, "put" if node % 2 else "get", key,
                         8 if node % 2 else 0)
             for node in range(n)]
    clients = _run_kv(machine, trace)
    assert sum(c.slo.completed.value for c in clients) == n
    counters = machine.metrics(include_config=False)["counters"]
    redelivered = sum(v for k, v in counters.items()
                      if k.endswith(".missq_redelivered"))
    dropped = sum(v for k, v in counters.items()
                  if k.endswith(".missq_dropped"))
    assert redelivered > 0 and dropped == 0
    served = sum(v for k, v in counters.items()
                 if k.startswith("traffic.kv.s") and k.endswith(".served"))
    assert served == n


# ----------------------------------------------------------------------
# training
# ----------------------------------------------------------------------


def test_ps_training_weights_are_exact():
    """Every worker's gradient for every (step, block) lands exactly
    once: the final weights equal the closed-form sum."""
    n, steps, blocks = 4, 3, 2
    machine = _machine(n)
    job = TrainJob(machine, mode="ps", n_blocks=blocks, steps=steps)
    procs = [machine.spawn(i, job.worker(i)) for i in range(n)]
    machine.run_all(procs, limit=1e10)
    for block in range(blocks):
        expected = sum(node + step + block + 1
                       for node in range(n) for step in range(steps))
        home = block_home(block, n)
        st = machine.node(home).sp.state["traffic"]
        assert st.ps_weights[block] == expected
    t = machine.metrics(include_config=False)["traffic"]["ps"]
    assert t["offered"] == t["completed"] == n * steps


@pytest.mark.parametrize("algo", ["flat", "tree", "nic", "switch"])
def test_allreduce_training_completes(algo):
    machine = _machine(4)
    job = TrainJob(machine, mode="allreduce", algo=algo, n_blocks=2,
                   steps=2)
    procs = [machine.spawn(i, job.worker(i)) for i in range(4)]
    machine.run_all(procs, limit=1e10)
    t = machine.metrics(include_config=False)["traffic"]["ps"]
    assert t["offered"] == t["completed"] == 8
    assert t["slo_violations"] == 0


def test_train_job_rejects_unknown_mode():
    with pytest.raises(ConfigError):
        TrainJob(_machine(2), mode="federated")


# ----------------------------------------------------------------------
# microservice fan-out
# ----------------------------------------------------------------------


def test_usvc_trees_complete_and_touch_many_stages():
    n = 8
    machine = _machine(n)
    procs = []
    clients = []
    for node in range(n):
        client = UsvcClient(machine, machine.node(node), depth=2, fanout=2)
        clients.append(client)
        records = [TraceRecord(1_000.0 * (node + 1), node, "tree",
                               node, 0)]
        for prog in client.open_loop(records):
            procs.append(machine.spawn(node, prog))
    machine.run_all(procs, limit=1e10)
    for c in clients:
        assert c.slo.completed.value == 1
        assert not c.inflight
    counters = machine.metrics(include_config=False)["counters"]
    stages = sum(v for k, v in counters.items()
                 if k.startswith("traffic.usvc.s"))
    # each depth-2 fanout-2 tree executes 1 + 2 + 4 = 7 service stages
    assert stages == 7 * n


# ----------------------------------------------------------------------
# determinism: jobs 1/4, shards 1/2, seeds apart
# ----------------------------------------------------------------------


def _kv_metrics_point(spec):
    """Module-level (picklable) sweep worker: comparable KV metrics."""
    shards, seed = spec
    run = repro.run(repro.scenario("traffic_kv", per_node=4,
                                   rate_rps=100_000.0, put_fraction=0.5),
                    n_nodes=8, shards=shards, seed=seed)
    return comparable(run.snapshot)


def test_kv_metrics_identical_across_jobs_and_shards():
    specs = [(1, 0), (2, 0)]
    serial = run_sweep(_kv_metrics_point, specs, jobs=1)
    pooled = run_sweep(_kv_metrics_point, specs, jobs=4)
    assert serial == pooled  # jobs 1 vs 4: byte-identical
    assert serial[0] == serial[1]  # shards 1 vs 2: byte-identical
    assert serial[0]["traffic"]["kv"]["offered"] == 32


def test_kv_metrics_distinct_across_seeds():
    a = _kv_metrics_point((1, 0))
    b = _kv_metrics_point((1, 1))
    assert a != b
    assert a["traffic"]["kv"]["latency_ns"] != \
        b["traffic"]["kv"]["latency_ns"]


def test_train_scenario_pins_hw_collectives_to_one_shard():
    with pytest.raises(ConfigError):
        repro.run(repro.scenario("traffic_train", mode="allreduce",
                                 algo="switch"),
                  n_nodes=4, shards=2)
    run = repro.run(repro.scenario("traffic_train", mode="ps", steps=2,
                                   n_blocks=2),
                    n_nodes=4, shards=2)
    assert run.snapshot["traffic"]["ps"]["completed"] == 8


def test_usvc_scenario_shard_invariant():
    runs = [repro.run(repro.scenario("traffic_usvc", per_node=2),
                      n_nodes=8, shards=k, seed=0) for k in (1, 2)]
    assert comparable(runs[0].snapshot) == comparable(runs[1].snapshot)
    assert runs[0].snapshot["traffic"]["usvc"]["completed"] == 16
