"""Cross-mechanism integration: the workloads the platform exists for.

The paper's pitch is that many communication abstractions coexist on one
NIU "simultaneously" under protection.  These tests run them together.
"""

import pytest

import repro
from repro.lib.mpi import MiniMPI
from repro.mp.basic import BasicPort
from repro.mp.dma import DmaNotifier, dma_write
from repro.mp.express import ExpressPort
from repro.niu.niu import EXPRESS_RX_LOGICAL, vdst_for
from repro.shm import NumaSpace, ScomaRegion


@pytest.fixture
def m2():
    return repro.StarTVoyager(repro.default_config(n_nodes=2))


def test_all_mechanisms_concurrently(m2):
    """Basic + Express + DMA + NUMA + S-COMA in flight at once, all
    byte-exact."""
    basic0 = BasicPort(m2.node(0), 0, 0)
    basic1 = BasicPort(m2.node(1), 0, 0)
    dma_port = BasicPort(m2.node(0), 1, 1)
    express0 = ExpressPort(m2.node(0))
    express1 = ExpressPort(m2.node(1))
    notifier = DmaNotifier(m2.node(1))
    numa = NumaSpace(m2)
    scoma = ScomaRegion(m2, n_lines=64)
    scoma.init_data(0, bytes(range(32)))

    dma_data = bytes((i * 7) & 0xFF for i in range(2048))
    m2.node(0).dram.poke(0x14000, dma_data)
    results = {}

    def node0(api):
        yield from basic0.send(api, vdst_for(1, 0), b"basic-concurrent")
        yield from express0.send(api, vdst_for(1, EXPRESS_RX_LOGICAL),
                                 b"exprs")
        yield from dma_write(api, dma_port, 1, 0x14000, 0x24000,
                             len(dma_data))
        yield from numa.write(api, 1, 0x0, b"numawrit")
        results["scoma0"] = yield from api.load(scoma.addr(0), 8)

    def node1(api):
        _s, basic_msg = yield from basic1.recv(api)
        results["basic"] = basic_msg
        _s, express_msg = yield from express1.recv_blocking(api)
        results["express"] = express_msg
        _s, length = yield from notifier.wait(api)
        results["dma_len"] = length
        results["scoma1"] = yield from api.load(scoma.addr(0), 8)

    m2.run_all([m2.spawn(0, node0), m2.spawn(1, node1)], limit=1e10)
    m2.run(until=m2.now + 500_000)  # drain posted NUMA writes
    assert results["basic"] == b"basic-concurrent"
    assert results["express"] == b"exprs"
    assert results["dma_len"] == len(dma_data)
    assert m2.node(1).dram.peek(0x24000, len(dma_data)) == dma_data
    assert numa.home_peek(1, 0x0, 8) == b"numawrit"
    assert results["scoma0"] == results["scoma1"] == bytes(range(8))


def test_protection_isolates_queues(m2):
    """A protection violation on one queue leaves every other queue and
    the other mechanisms running."""
    from repro.niu.msgformat import FLAG_RAW, MsgHeader, encode_header

    ctrl = m2.node(0).ctrl
    good_port = BasicPort(m2.node(0), 1, 1)
    good_rx = BasicPort(m2.node(1), 1, 1)

    # inject an illegal raw message into queue 0
    q0 = ctrl.tx_queues[0]
    hdr = MsgHeader(flags=FLAG_RAW, vdst=1, dst_queue=0, length=0)
    m2.node(0).niu.asram.poke(q0.slot_offset(0), encode_header(hdr))
    ctrl.tx_producer_update(0, 1)

    def sender(api):
        yield from good_port.send(api, vdst_for(1, 1), b"unaffected")

    def receiver(api):
        return (yield from good_rx.recv(api))

    m2.spawn(0, sender)
    src, payload = m2.run_until(m2.spawn(1, receiver), limit=1e9)
    assert payload == b"unaffected"
    assert not ctrl.tx_queues[0].enabled  # the offender is dead
    assert ctrl.tx_queues[1].enabled


def test_queue_cache_many_logical_queues(m2):
    """Traffic to resident and non-resident logical queues interleaves;
    resident queues stay fast, non-resident ones arrive via firmware."""
    from repro.firmware.msg import declare_dram_queue
    from repro.mp.dramq import DramQueueReader

    node1 = m2.node(1)
    rings = {
        logical: declare_dram_queue(node1.sp, logical,
                                    0x30000 + i * 0x2000, depth=8)
        for i, logical in enumerate((11, 12, 13))
    }
    readers = {q: DramQueueReader(r) for q, r in rings.items()}
    port0 = BasicPort(m2.node(0), 0, 0)
    port1 = BasicPort(node1, 0, 0)

    def sender(api):
        for i in range(12):
            logical = (11, 12, 13, 0)[i % 4]
            yield from port0.send(api, vdst_for(1, logical),
                                  bytes([logical, i]))

    def receiver(api):
        fast, slow = [], []
        for _ in range(3):
            _s, p = yield from port1.recv(api)
            fast.append(tuple(p))
        for logical in (11, 12, 13):
            for _ in range(3):
                _s, p = yield from readers[logical].recv(api)
                slow.append(tuple(p))
        return fast, slow

    m2.spawn(0, sender)
    fast, slow = m2.run_until(m2.spawn(1, receiver), limit=1e10)
    assert all(p[0] == 0 for p in fast)
    assert sorted(p[0] for p in slow) == [11, 11, 11, 12, 12, 12, 13, 13, 13]
    assert node1.ctrl.rx_cache.misses >= 9


def test_mpi_over_shared_machine_with_dma(m2):
    """The MPI library and raw DMA share the NIU without interference."""
    mpi = MiniMPI(m2)
    dma_port = BasicPort(m2.node(0), 3, 3)
    notifier = DmaNotifier(m2.node(1))
    payload = bytes(200)
    m2.node(0).dram.poke(0x15000, bytes([9] * 512))

    def r0(api):
        yield from dma_write(api, dma_port, 1, 0x15000, 0x25000, 512)
        yield from mpi.rank(0).send(api, 1, payload, tag=4)
        yield from mpi.rank(0).barrier(api)

    def r1(api):
        _s, _t, data = yield from mpi.rank(1).recv(api, tag=4)
        yield from notifier.wait(api)
        yield from mpi.rank(1).barrier(api)
        return data

    procs = [m2.spawn(0, r0), m2.spawn(1, r1)]
    results = m2.run_all(procs, limit=1e10)
    assert results[1] == payload
    assert m2.node(1).dram.peek(0x25000, 512) == bytes([9] * 512)


def test_four_node_ring_pipeline(machine4):
    """A pipeline around four nodes: each forwards what it receives."""
    m = machine4
    ports = [BasicPort(m.node(n), 0, 0) for n in range(4)]

    def stage(api, rank):
        if rank == 0:
            yield from ports[0].send(api, vdst_for(1, 0), b"token-0")
            _s, final = yield from ports[0].recv(api)
            return final
        _s, msg = yield from ports[rank].recv(api)
        nxt = (rank + 1) % 4
        yield from ports[rank].send(api, vdst_for(nxt, 0),
                                    msg + b"-%d" % rank)

    procs = [m.spawn(n, stage, n) for n in range(4)]
    results = m.run_all(procs, limit=1e10)
    assert results[0] == b"token-0-1-2-3"


def test_protocol_latency_isolated_from_bulk(m2):
    """Shared-memory protocol traffic keeps its latency while bulk DMA
    saturates the network — the paper's two-priority requirement plus
    the split remote command queue and the background DMA engine.

    Regression guard: before the high-priority remote command queue and
    the background firmware task existed, this ratio was ~60x.
    """
    from repro.shm import ScomaRegion

    def miss_ns(background):
        machine = repro.StarTVoyager(repro.default_config(n_nodes=2))
        region = ScomaRegion(machine, n_lines=64)
        region.init_data(0, bytes(range(32)))
        if background:
            machine.node(0).dram.poke(0x10000, bytes(16384))
            port = BasicPort(machine.node(0), 1, 1)

            def bulk(api):
                for _ in range(2):
                    yield from dma_write(api, port, 1, 0x10000, 0x28000,
                                         8192)

            machine.spawn(0, bulk)
            machine.run(until=machine.now + 30_000)
        out = {}

        def prog(api):
            t0 = api.now
            yield from api.load(region.addr(0), 8)
            out["ns"] = api.now - t0

        machine.run_until(machine.spawn(1, prog), limit=1e10)
        return out["ns"]

    quiet = miss_ns(False)
    loaded = miss_ns(True)
    assert loaded < 4.0 * quiet
