"""The §6 block-transfer experiments: integrity and qualitative shape.

The shape assertions encode what the paper's text claims about its
Figures 3/4 — who wins, what each approach's occupancy profile is —
using a 16 KB transfer, where the orderings are stable.
"""

import pytest

import repro
from repro.core.blocktransfer import BlockTransferExperiment, sweep

SIZE = 16384


def _run(approach, size=SIZE):
    machine = repro.StarTVoyager(repro.default_config(n_nodes=2))
    return BlockTransferExperiment(machine).run(approach, size)


@pytest.fixture(scope="module")
def results():
    return {a: _run(a) for a in (1, 2, 3, 4, 5)}


@pytest.mark.parametrize("approach", [1, 2, 3, 4, 5])
def test_data_integrity(results, approach):
    assert results[approach].verified


def test_bandwidth_ordering(results):
    """Approach 3 beats 2 beats 1 on completion bandwidth at 16 KB."""
    assert results[3].bandwidth_mb_s > results[2].bandwidth_mb_s
    assert results[2].bandwidth_mb_s > results[1].bandwidth_mb_s


def test_approach1_ap_bound(results):
    """A1: the sender aP does all the work (high occupancy); sP idle."""
    occ = results[1].occupancy_row()
    assert occ["sender_ap"] > 0.5
    assert occ["sender_sp"] < 0.05


def test_approach2_shifts_to_sp(results):
    """A2: sender aP is free; both sPs carry significant load — and the
    receiver's sP occupancy stays below the aP occupancy A1 needed."""
    occ1 = results[1].occupancy_row()
    occ2 = results[2].occupancy_row()
    assert occ2["sender_ap"] < 0.05
    assert occ2["sender_sp"] > 0.2
    assert occ2["receiver_sp"] > 0.2
    assert occ2["sender_sp"] < occ1["sender_ap"]


def test_approach3_minimal_occupancy(results):
    """A3: 'occupancy of both the aP and sP is minimal to nil'."""
    occ = results[3].occupancy_row()
    assert occ["sender_ap"] < 0.05
    assert occ["sender_sp"] < 0.10
    assert occ["receiver_sp"] < 0.05


def test_optimistic_notification_is_early(results):
    """A4/A5 notify at ~25% of the data: far earlier than A3."""
    assert results[4].notify_latency_ns < 0.55 * results[3].notify_latency_ns
    assert results[5].notify_latency_ns < 0.55 * results[3].notify_latency_ns


def test_approach4_pays_receiver_sp(results):
    """A4's per-chunk firmware wakeups cost receiver-sP time that A5's
    reconfigured aBIU hardware absorbs."""
    occ4 = results[4].occupancy_row()
    occ5 = results[5].occupancy_row()
    assert occ4["receiver_sp"] > 0.3
    assert occ5["receiver_sp"] < 0.05


def test_optimistic_consumption_no_slower(results):
    """Consuming through S-COMA stalls must not lose to waiting for the
    full completion (the good case the paper hopes for)."""
    assert results[4].data_ready_latency_ns <= \
        1.10 * results[3].data_ready_latency_ns
    assert results[5].data_ready_latency_ns <= \
        1.10 * results[3].data_ready_latency_ns


def test_latency_small_transfers_favor_direct_send():
    """At small sizes the request/firmware setup of A2/A3 dominates and
    plain aP sends (A1) win — the crossover the latency figure shows."""
    r1 = _run(1, 256)
    r3 = _run(3, 256)
    assert r1.notify_latency_ns < r3.notify_latency_ns


def test_sweep_helper():
    results = sweep(lambda: repro.StarTVoyager(2), [1], [256, 1024])
    assert len(results) == 2
    assert all(r.verified for r in results)
    assert [r.size for r in results] == [256, 1024]


def test_invalid_approach_rejected():
    machine = repro.StarTVoyager(2)
    exp = BlockTransferExperiment(machine)
    from repro.common.errors import ProgramError
    with pytest.raises(ProgramError):
        exp.run(6, 1024)


def test_needs_two_nodes():
    from repro.common.errors import ProgramError
    with pytest.raises(ProgramError):
        BlockTransferExperiment(repro.StarTVoyager(1))


def test_two_pairs_share_network():
    """Two simultaneous hardware transfers (0->1 and 2->3) both complete
    byte-exact while sharing the fat tree."""
    machine = repro.StarTVoyager(repro.default_config(n_nodes=4))
    # BlockTransferExperiment.run() drives the machine globally, so the
    # concurrent version launches the transfers by hand
    from repro.mp.basic import BasicPort
    from repro.mp.dma import DmaNotifier, dma_write

    size = 8192
    patterns = {}
    procs = []
    for i, (src, dst) in enumerate([(0, 1), (2, 3)]):
        pattern = bytes((i * 31 + j) & 0xFF for j in range(size))
        patterns[dst] = pattern
        machine.node(src).dram.poke(0x10000, pattern)
        port = BasicPort(machine.node(src), 1, 1)
        notifier = DmaNotifier(machine.node(dst))

        def requester(api, p=port, d=dst):
            yield from dma_write(api, p, d, 0x10000, 0x20000, size)

        def waiter(api, n=notifier):
            yield from n.wait(api)

        procs.append(machine.spawn(src, requester))
        procs.append(machine.spawn(dst, waiter))
    machine.run_all(procs, limit=1e10)
    for dst, pattern in patterns.items():
        assert machine.node(dst).dram.peek(0x20000, size) == pattern
