"""Active Messages: handler dispatch and the am_store pattern."""

import pytest

import repro
from repro.lib.activemsg import STORE_HANDLER_BASE, AmEndpoint
from repro.mp.basic import BasicPort


@pytest.fixture
def m2():
    return repro.StarTVoyager(repro.default_config(n_nodes=2))


def test_handler_runs_on_receiver(m2):
    ep0 = AmEndpoint(m2.node(0))
    ep1 = AmEndpoint(m2.node(1))
    ran = []

    def handler(api, src, args):
        ran.append((api.node_id, src, args))
        yield from api.compute(10)

    ep1.register(5, handler)

    def sender(api):
        yield from ep0.send(api, 1, 5, b"am-args")

    def receiver(api):
        yield from ep1.poll_wait(api)

    m2.spawn(0, sender)
    m2.run_until(m2.spawn(1, receiver), limit=1e9)
    assert ran == [(1, 0, b"am-args")]  # ran on node 1, from node 0


def test_multiple_handlers_by_id(m2):
    ep0 = AmEndpoint(m2.node(0))
    ep1 = AmEndpoint(m2.node(1))
    order = []

    def make(tag):
        def handler(api, src, args):
            order.append(tag)
            yield from api.compute(1)
        return handler

    ep1.register(1, make("one"))
    ep1.register(2, make("two"))

    def sender(api):
        yield from ep0.send(api, 1, 2)
        yield from ep0.send(api, 1, 1)
        yield from ep0.send(api, 1, 2)

    def receiver(api):
        for _ in range(3):
            yield from ep1.poll_wait(api)

    m2.spawn(0, sender)
    m2.run_until(m2.spawn(1, receiver), limit=1e9)
    assert order == ["two", "one", "two"]


def test_unregistered_handler_is_error(m2):
    ep0 = AmEndpoint(m2.node(0))
    ep1 = AmEndpoint(m2.node(1))

    def sender(api):
        yield from ep0.send(api, 1, 77)

    def receiver(api):
        yield from ep1.poll_wait(api)

    m2.spawn(0, sender)
    from repro.common.errors import SimulationError
    with pytest.raises(SimulationError):
        m2.run_until(m2.spawn(1, receiver), limit=1e9)


def test_poll_returns_false_when_idle(m2):
    ep = AmEndpoint(m2.node(0))

    def prog(api):
        return (yield from ep.poll(api))

    assert m2.run_until(m2.spawn(0, prog), limit=1e8) is False


def test_am_store_runs_handler_after_data(m2):
    """The §6 pattern: bulk data lands, then the handler runs and can
    read it immediately."""
    ep0 = AmEndpoint(m2.node(0))
    ep1 = AmEndpoint(m2.node(1))
    req_port = BasicPort(m2.node(0), 1, 1)
    data = bytes((i * 3 + 1) & 0xFF for i in range(2048))
    m2.node(0).dram.poke(0x12000, data)
    seen = {}

    def on_store(api, src, args):
        addr = int.from_bytes(args[0:6], "big")
        length = int.from_bytes(args[6:10], "big")
        first = yield from api.load(addr, 8)
        seen["first"] = first
        seen["meta"] = (src, addr, length)

    ep1.register(STORE_HANDLER_BASE, on_store)

    def sender(api):
        yield from ep0.announce_store_handler(
            api, 1, STORE_HANDLER_BASE, 0x22000, len(data))
        yield from ep0.am_store(api, req_port, 1, 0x12000, 0x22000,
                                len(data), STORE_HANDLER_BASE)

    def receiver(api):
        yield from ep1.poll_wait(api)  # the announcement (internal)
        yield from ep1.poll_wait(api)  # the store completion -> handler

    m2.spawn(0, sender)
    m2.run_until(m2.spawn(1, receiver), limit=1e10)
    assert seen["meta"] == (0, 0x22000, len(data))
    assert seen["first"] == data[:8]
    assert m2.node(1).dram.peek(0x22000, len(data)) == data


def test_bad_ids_rejected(m2):
    ep = AmEndpoint(m2.node(0))
    from repro.common.errors import ProgramError
    with pytest.raises(ProgramError):
        ep.register(300, lambda api, s, a: None)

    def prog(api):
        yield from ep.am_store(api, None, 1, 0, 0, 8, handler_id=3)

    from repro.common.errors import SimulationError
    with pytest.raises(SimulationError):
        m2.run_until(m2.spawn(0, prog), limit=1e8)
