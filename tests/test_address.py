"""Address maps: registration, lookup, overlap rejection, carving."""

import pytest

from repro.common.errors import AddressError
from repro.mem.address import AccessMode, AddressMap, Region


def _map():
    m = AddressMap()
    m.add(Region("dram", 0x0, 0x1000, AccessMode.CACHED, owner="dram"))
    m.add(Region("niu", 0x7000_0000, 0x1000, AccessMode.UNCACHED))
    return m


def test_lookup_hits():
    m = _map()
    assert m.lookup(0x0).name == "dram"
    assert m.lookup(0xFFF).name == "dram"
    assert m.lookup(0x7000_0010, 8).name == "niu"


def test_lookup_unmapped():
    m = _map()
    with pytest.raises(AddressError, match="not mapped"):
        m.lookup(0x2000)
    with pytest.raises(AddressError):
        m.lookup(0x6FFF_FFFF)


def test_lookup_straddle_rejected():
    m = _map()
    with pytest.raises(AddressError, match="straddles"):
        m.lookup(0xFFC, 8)


def test_overlap_rejected():
    m = _map()
    with pytest.raises(AddressError, match="overlaps"):
        m.add(Region("bad", 0x800, 0x1000, AccessMode.CACHED))
    with pytest.raises(AddressError, match="overlaps"):
        m.add(Region("bad2", 0x6FFF_FF00, 0x200, AccessMode.CACHED))


def test_adjacent_allowed():
    m = _map()
    m.add(Region("next", 0x1000, 0x1000, AccessMode.CACHED))
    assert m.lookup(0x1000).name == "next"


def test_find_by_name():
    m = _map()
    assert m.find("niu").base == 0x7000_0000
    with pytest.raises(AddressError):
        m.find("nothere")


def test_region_offset_and_contains():
    r = Region("r", 0x100, 0x100, AccessMode.CACHED)
    assert r.contains(0x100)
    assert r.contains(0x1FF)
    assert not r.contains(0x200)
    assert not r.contains(0x1F0, 0x20)
    assert r.offset(0x180) == 0x80
    with pytest.raises(AddressError):
        r.offset(0x200)


def test_region_validation():
    with pytest.raises(ValueError):
        Region("r", 0, 0, AccessMode.CACHED)
    with pytest.raises(ValueError):
        Region("r", -4, 16, AccessMode.CACHED)


def test_carve_middle():
    m = _map()
    carved = m.carve("window", 0x400, 0x200, AccessMode.UNCACHED)
    assert carved.mode is AccessMode.UNCACHED
    assert carved.owner == "dram"  # inherited
    assert m.lookup(0x0).name == "dram"
    assert m.lookup(0x500).name == "window"
    assert m.lookup(0x700).name == "dram+"
    assert m.lookup(0x700).owner == "dram"


def test_carve_at_start():
    m = _map()
    m.carve("w", 0x0, 0x100, AccessMode.BURST)
    assert m.lookup(0x0).name == "w"
    assert m.lookup(0x100).name == "dram+"


def test_carve_at_end():
    m = _map()
    m.carve("w", 0xF00, 0x100, AccessMode.BURST)
    assert m.lookup(0xEFF).name == "dram"
    assert m.lookup(0xF00).name == "w"


def test_carve_with_new_owner():
    m = _map()
    carved = m.carve("w", 0x400, 0x100, AccessMode.UNCACHED, owner="custom")
    assert carved.owner == "custom"


def test_regions_sorted():
    m = _map()
    m.add(Region("mid", 0x2000, 0x100, AccessMode.CACHED))
    bases = [r.base for r in m.regions()]
    assert bases == sorted(bases)
