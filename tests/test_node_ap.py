"""The application processor: access routing, decomposition, occupancy."""

import pytest

import repro
from repro.mem.address import ASRAM_BASE


@pytest.fixture
def m2():
    return repro.StarTVoyager(repro.default_config(n_nodes=2))


def test_cached_roundtrip(m2):
    def prog(api):
        yield from api.store(0x1000, b"cached-path-data")
        return (yield from api.load(0x1000, 16))

    assert m2.run_until(m2.spawn(0, prog), limit=1e7) == b"cached-path-data"


def test_cached_access_spans_lines(m2):
    data = bytes(range(100))

    def prog(api):
        yield from api.store(0x1010, data)  # straddles several lines
        return (yield from api.load(0x1010, 100))

    assert m2.run_until(m2.spawn(0, prog), limit=1e7) == data


def test_uncached_region_split_at_8(m2):
    # the pointer window is uncached: accesses of > 8 bytes would straddle
    # pointer slots, but 4-byte accesses work anywhere
    from repro.niu.niu import PTR_WINDOW_OFF
    from repro.mem.address import NIU_CTL_BASE

    def prog(api):
        return (yield from api.load(NIU_CTL_BASE + PTR_WINDOW_OFF, 4))

    assert len(m2.run_until(m2.spawn(0, prog), limit=1e7)) == 4


def test_burst_region_mixes_bursts_and_singles(m2):
    niu = m2.node(0).niu
    off = niu.alloc_asram(128)

    def prog(api):
        # 3 unaligned + 64 burst (2 lines) + 5 tail
        yield from api.store(ASRAM_BASE + off + 29, bytes(72))

    m2.run_until(m2.spawn(0, prog), limit=1e7)
    assert niu.asram.peek(off + 29, 72) == bytes(72)


def test_unmapped_address_fails_program(m2):
    def prog(api):
        yield from api.load(0x5500_0000, 4)

    from repro.common.errors import SimulationError
    with pytest.raises(SimulationError):
        m2.run_until(m2.spawn(0, prog), limit=1e7)


def test_zero_size_rejected(m2):
    def prog(api):
        yield from api.load(0x0, 0)

    from repro.common.errors import SimulationError
    with pytest.raises(SimulationError):
        m2.run_until(m2.spawn(0, prog), limit=1e7)


def test_compute_time(m2):
    def prog(api):
        t0 = api.now
        yield from api.compute(166)
        return api.now - t0

    assert m2.run_until(m2.spawn(0, prog), limit=1e7) == \
        pytest.approx(1000.0, rel=1e-3)


def test_occupancy_tracking(m2):
    ap = m2.node(0).ap

    def prog(api):
        yield from api.compute(100)
        yield from api.sleep(10_000.0)  # idle: not occupancy

    m2.run_until(m2.spawn(0, prog), limit=1e8)
    busy = ap.busy.current()
    assert busy == pytest.approx(m2.config.ap.insn_ns(100), rel=0.01)


def test_wait_does_not_accrue_occupancy(m2):
    ap = m2.node(0).ap

    def prog(api):
        yield from api.wait(m2.engine.timeout(50_000.0))

    m2.run_until(m2.spawn(0, prog), limit=1e8)
    assert ap.busy.current() < 1.0


def test_u32_helpers(m2):
    def prog(api):
        yield from api.store_u32(0x2000, 0xCAFEBABE)
        return (yield from api.load_u32(0x2000))

    assert m2.run_until(m2.spawn(0, prog), limit=1e7) == 0xCAFEBABE


def test_program_return_value_and_counters(m2):
    ap = m2.node(0).ap

    def prog(api, x):
        yield from api.load(0x0, 8)
        yield from api.store(0x8, b"12345678")
        return x * 2

    assert m2.run_until(m2.spawn(0, prog, 21), limit=1e7) == 42
    assert ap.loads == 1 and ap.stores == 1
