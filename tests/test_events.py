"""Events: triggering, callbacks, combinators."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.events import AllOf, AnyOf


def test_succeed_delivers_value(engine):
    ev = engine.event()
    ev.succeed(42)
    assert ev.triggered and ev.ok
    assert ev.value == 42


def test_fail_raises_on_value(engine):
    ev = engine.event()
    ev.fail(ValueError("nope"))
    assert ev.triggered and not ev.ok
    with pytest.raises(ValueError):
        _ = ev.value


def test_pending_value_raises(engine):
    ev = engine.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_double_trigger_rejected(engine):
    ev = engine.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)
    with pytest.raises(SimulationError):
        ev.fail(ValueError())


def test_fail_requires_exception(engine):
    ev = engine.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_callback_after_trigger_runs_immediately(engine):
    ev = engine.event()
    ev.succeed("x")
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    assert seen == ["x"]


def test_callbacks_scheduled_through_engine(engine):
    ev = engine.event()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    ev.succeed("y")
    assert seen == []  # not yet: runs via the event loop
    engine.run()
    assert seen == ["y"]


def test_all_of_collects_in_order(engine):
    evs = [engine.timeout(d, d) for d in (30.0, 10.0, 20.0)]
    combined = AllOf(engine, evs)
    values = engine.run_until_triggered(combined)
    assert values == [30.0, 10.0, 20.0]  # given order, not trigger order
    assert engine.now == 30.0


def test_all_of_empty_succeeds_immediately(engine):
    assert AllOf(engine, []).triggered


def test_all_of_fails_on_child_failure(engine):
    good = engine.timeout(10.0)
    bad = engine.event()
    combined = AllOf(engine, [good, bad])
    bad.fail(RuntimeError("child died"))
    engine.run()
    assert combined.triggered and not combined.ok


def test_any_of_first_wins(engine):
    evs = [engine.timeout(d, f"v{d}") for d in (30.0, 5.0, 20.0)]
    combined = AnyOf(engine, evs)
    index, value = engine.run_until_triggered(combined)
    assert (index, value) == (1, "v5.0")
    assert engine.now == 5.0


def test_any_of_requires_children(engine):
    with pytest.raises(SimulationError):
        AnyOf(engine, [])
