"""clsSRAM state bits and the (bus op x state) action table."""

import pytest

from repro.bus.ops import BusOpType
from repro.common.errors import AddressError, ConfigError
from repro.niu.clssram import (
    CLS_INVALID,
    CLS_PENDING,
    CLS_RO,
    CLS_RW,
    ClsAction,
    ClsSram,
    install_scoma_default_table,
)


def _cls(n_lines=16):
    return ClsSram(cover_base=0x1000, n_lines=n_lines, line_bytes=32)


def test_coverage():
    c = _cls()
    assert c.covers(0x1000)
    assert c.covers(0x1000 + 16 * 32 - 1)
    assert not c.covers(0x1000 + 16 * 32)
    assert not c.covers(0xFFF)


def test_line_addressing():
    c = _cls()
    assert c.line_of(0x1000) == 0
    assert c.line_of(0x1000 + 33) == 1
    assert c.addr_of(2) == 0x1040
    with pytest.raises(AddressError):
        c.line_of(0x0)
    with pytest.raises(AddressError):
        c.addr_of(99)


def test_state_bits():
    c = _cls()
    assert c.state(0) == CLS_INVALID  # default
    c.set_state(0, CLS_RW)
    assert c.state(0) == CLS_RW
    with pytest.raises(AddressError):
        c.set_state(0, 16)  # needs 4 bits


def test_set_range():
    c = _cls()
    c.set_range(2, 4, CLS_RO)
    assert [c.state(i) for i in range(8)] == \
        [0, 0, CLS_RO, CLS_RO, CLS_RO, CLS_RO, 0, 0]


def test_unprogrammed_pairs_pass():
    c = _cls()
    action = c.check(BusOpType.READ, 0x1000)
    assert not action.retry and not action.pass_to_sp


def test_action_table_lookup():
    c = _cls()
    c.set_action(BusOpType.READ, CLS_INVALID, ClsAction(retry=True,
                                                        pass_to_sp=True))
    a = c.check(BusOpType.READ, 0x1000)
    assert a.retry and a.pass_to_sp
    # a different state is a different table slot
    c.set_state(1, CLS_RW)
    a2 = c.check(BusOpType.READ, 0x1020)
    assert not a2.retry


def test_next_state_transition():
    c = _cls()
    install_scoma_default_table(c)
    # first read of an INVALID line: retry + notify, flips to PENDING
    a1 = c.check(BusOpType.READ, 0x1000)
    assert a1.retry and a1.pass_to_sp
    assert c.state(0) == CLS_PENDING
    # retries of the PENDING line stay quiet
    a2 = c.check(BusOpType.READ, 0x1000)
    assert a2.retry and not a2.pass_to_sp


def test_default_table_write_paths():
    c = _cls()
    install_scoma_default_table(c)
    c.set_state(0, CLS_RO)
    a = c.check(BusOpType.KILL, 0x1000)  # store upgrade against RO
    assert a.retry and a.pass_to_sp
    assert c.state(0) == CLS_PENDING
    c.set_state(1, CLS_RW)
    a2 = c.check(BusOpType.RWITM, 0x1020)  # owned: passes
    assert not a2.retry


def test_default_table_valid_reads_pass():
    c = _cls()
    install_scoma_default_table(c)
    for state in (CLS_RO, CLS_RW):
        c.set_state(3, state)
        a = c.check(BusOpType.READ_LINE, 0x1060)
        assert not a.retry and not a.pass_to_sp


def test_statistics():
    c = _cls()
    install_scoma_default_table(c)
    c.check(BusOpType.READ, 0x1000)
    c.check(BusOpType.READ, 0x1000)
    assert c.checks == 2
    assert c.retries == 2


def test_construction_validation():
    with pytest.raises(ConfigError):
        ClsSram(0x1000, 0, 32)
    with pytest.raises(ConfigError):
        ClsSram(0x1001, 4, 32)


# ----------------------------------------------------------------------
# the protocol cause envelopes (repro.coherence.protocol.CACHE_TABLE)
# ----------------------------------------------------------------------

from repro.coherence.protocol import (
    CACHE_TABLE,
    l2_snoop_reaction,
    cache_transition_legal,
)


def test_cause_envelopes_legal_paths():
    assert cache_transition_legal("grant", CLS_PENDING, CLS_RO)
    assert cache_transition_legal("grant", CLS_PENDING, CLS_RW)
    assert cache_transition_legal("downgrade", CLS_RW, CLS_RO)
    assert cache_transition_legal("inv", CLS_RO, CLS_INVALID)
    assert cache_transition_legal("relinquish", CLS_RW, CLS_INVALID)
    assert cache_transition_legal("wb_install", CLS_INVALID, CLS_RO)
    assert cache_transition_legal("evict", CLS_RW, CLS_INVALID)
    assert cache_transition_legal("settle", CLS_PENDING, CLS_RW)


def test_cause_envelopes_reject_offtable():
    # an invalidation may never produce a readable copy
    assert not cache_transition_legal("inv", CLS_RO, CLS_RW)
    # only the exclusive owner can downgrade
    assert not cache_transition_legal("downgrade", CLS_RO, CLS_RO)
    # recalled data re-validates the home read-only, never exclusive
    assert not cache_transition_legal("wb_install", CLS_INVALID, CLS_RW)


def test_cause_envelopes_unknown_cause_is_a_bug():
    with pytest.raises(KeyError):
        cache_transition_legal("made_up_cause", CLS_RO, CLS_INVALID)


def test_cause_envelopes_ignore_offprotocol_states():
    # experimental 4-bit values outside MSI are not audited
    assert cache_transition_legal("inv", 0x7, 0x9)


def test_every_cause_envelope_nonempty():
    for cause, (legal_old, legal_new) in CACHE_TABLE.items():
        assert legal_old and legal_new, cause


def test_l2_snoop_table_matches_msi():
    # a foreign read demotes Modified to Shared, pushing the dirty line
    reaction = l2_snoop_reaction("M", BusOpType.READ_LINE)
    assert reaction.push and reaction.next_state == "S"
    # a KILL drops the line without writeback (the killer owns it now)
    reaction = l2_snoop_reaction("M", BusOpType.KILL)
    assert not reaction.push and reaction.next_state == "I"
    # Shared lines never push
    reaction = l2_snoop_reaction("S", BusOpType.RWITM)
    assert not reaction.push and reaction.next_state == "I"
    # no reaction for unrelated pairs
    assert l2_snoop_reaction("S", BusOpType.READ) is None


def test_sanitizer_rejects_illegal_cause_transition():
    """A cause-tagged clsSRAM write outside its envelope is a protocol
    violation the coherence sanitizer must flag."""
    import repro
    from repro.common.errors import SanitizerError

    cfg = repro.default_config(n_nodes=2)
    cfg.sanitize = "coherence"
    m = repro.StarTVoyager(cfg)
    cls = m.node(0).niu.cls
    with pytest.raises(SanitizerError):
        cls.set_state(0, CLS_RW, cause="inv")
    with pytest.raises(SanitizerError):
        cls.set_state(1, CLS_RO, cause="no_such_cause")
