"""sBIU and aBIU unit behaviour not covered by mechanism tests."""

import pytest

import repro
from repro.bus.ops import BusOpType, BusTransaction
from repro.niu.commands import LOCAL_CMDQ_0, CmdCall
from repro.niu.queues import QueueKind


@pytest.fixture
def m2():
    return repro.StarTVoyager(repro.default_config(n_nodes=2))


def _run_gen(m2, gen):
    return m2.engine.run_until_triggered(m2.engine.process(gen), limit=1e9)


# -- sBIU -----------------------------------------------------------------------

def test_sbiu_ssram_roundtrip(m2):
    sbiu = m2.node(0).niu.sbiu
    off = m2.node(0).niu.alloc_ssram(64)

    def body():
        yield from sbiu.write_ssram(off, b"sp-visible")
        return (yield from sbiu.read_ssram(off, 10))

    assert _run_gen(m2, body()) == b"sp-visible"


def test_sbiu_access_is_timed(m2):
    sbiu = m2.node(0).niu.sbiu
    off = m2.node(0).niu.alloc_ssram(64)

    def body():
        t0 = m2.engine.now
        yield from sbiu.write_ssram(off, bytes(8))
        return m2.engine.now - t0

    assert _run_gen(m2, body()) > 0


def test_sbiu_immediate_interface(m2):
    sbiu = m2.node(0).niu.sbiu
    ctrl = m2.node(0).ctrl

    def body():
        return (yield from sbiu.immediate(
            lambda: ctrl.read_pointer(QueueKind.TX, 0, "producer")))

    assert _run_gen(m2, body()) == 0


def test_sbiu_command_enqueue_ordered(m2):
    sbiu = m2.node(0).niu.sbiu
    order = []

    def body():
        yield from sbiu.enqueue_command(LOCAL_CMDQ_0,
                                        CmdCall(lambda: order.append(1)))
        yield from sbiu.enqueue_command(LOCAL_CMDQ_0,
                                        CmdCall(lambda: order.append(2)))

    _run_gen(m2, body())
    m2.run(until=m2.now + 10_000)
    assert order == [1, 2]


def test_sbiu_event_fifo(m2):
    sbiu = m2.node(0).niu.sbiu
    seen = []
    m2.node(0).sp.register("ev", _collector(seen))
    for i in range(5):
        sbiu.post_event(("ev", i))
    m2.run(until=m2.now + 50_000)
    assert seen == [("ev", i) for i in range(5)]


def _collector(seen):
    def handler(sp, event):
        seen.append(event)
        yield sp.compute(1)
    return handler


# -- aBIU -------------------------------------------------------------------------

def test_abiu_master_issue_sets_master_name(m2):
    abiu = m2.node(0).niu.abiu

    def body():
        txn = BusTransaction(BusOpType.WRITE, 0x100, 8, b"frm-abiu",
                             master="whatever")
        yield from abiu.issue(txn)
        return txn.master

    assert _run_gen(m2, body()) == "niu0"
    assert m2.node(0).dram.peek(0x100, 8) == b"frm-abiu"


def test_abiu_own_transactions_not_observed(m2):
    abiu = m2.node(0).niu.abiu
    before = abiu.observed

    def body():
        # a NIU-mastered op over the NUMA window would deadlock if the
        # aBIU snooped its own grants; the master check prevents that
        txn = BusTransaction(BusOpType.WRITE, 0x200, 8, bytes(8),
                             master="x")
        yield from abiu.issue(txn)

    _run_gen(m2, body())
    assert abiu.observed == before


def test_abiu_observes_ap_traffic_to_windows(m2):
    abiu = m2.node(0).niu.abiu
    before = abiu.observed

    def prog(api):
        from repro.mem.address import ASRAM_BASE
        yield from api.store(ASRAM_BASE + 0x8000, bytes(8))

    m2.run_until(m2.spawn(0, prog), limit=1e8)
    assert abiu.observed == before + 1


def test_abiu_ignores_plain_dram_traffic(m2):
    abiu = m2.node(0).niu.abiu
    before = abiu.observed

    def prog(api):
        yield from api.store(0x3000, bytes(8))

    m2.run_until(m2.spawn(0, prog), limit=1e8)
    assert abiu.observed == before  # no handler covers user DRAM


def test_serve_without_claim_is_error(m2):
    from repro.common.errors import SimulationError
    abiu = m2.node(0).niu.abiu
    txn = BusTransaction(BusOpType.READ, 0x0, 8, master="ap0")

    def body():
        yield from abiu.serve(txn)

    with pytest.raises(SimulationError):
        _run_gen(m2, body())
