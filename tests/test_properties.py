"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given
from hypothesis import strategies as st

from repro.common import units
from repro.mem.backing import ByteBacking
from repro.net.topology import FatTreeTopology
from repro.niu.msgformat import (
    FLAG_RAW,
    FLAG_TAGON,
    TAGON_LARGE_UNITS,
    TAGON_SMALL_UNITS,
    MsgHeader,
    decode_header,
    encode_header,
)
from repro.niu.queues import BANK_A, QueueKind, QueueState
from repro.niu.translation import TranslationEntry, decode_entry, encode_entry

# -- fat tree routing ---------------------------------------------------------

@given(
    n=st.integers(min_value=2, max_value=64),
    src=st.integers(min_value=0, max_value=63),
    dst=st.integers(min_value=0, max_value=63),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_fat_tree_routes_always_valid(n, src, dst, seed):
    src %= n
    dst %= n
    if src == dst:
        return
    topo = FatTreeTopology(n, radix=4, seed=seed)
    route = topo.route(src, dst)
    assert topo.validate_route(src, dst, route)
    # route length is odd up-down symmetric: 2m+1 switches for turn at m+1
    assert 1 <= len(route) <= 2 * topo.levels - 1


@given(
    n=st.integers(min_value=2, max_value=32),
    src=st.integers(min_value=0, max_value=31),
    dst=st.integers(min_value=0, max_value=31),
)
def test_fat_tree_routes_minimal_height(n, src, dst):
    """The route never climbs higher than the first common subtree."""
    src %= n
    dst %= n
    if src == dst:
        return
    topo = FatTreeTopology(n, radix=4, seed=0)
    d = topo.down_degree
    route = topo.route(src, dst)
    ups = sum(1 for p in route if p >= d)
    # ups = m where level m+1 is the lowest common subtree
    s, t = src, dst
    m = 0
    for level in range(topo.levels):
        if s // (d ** (level + 1)) == t // (d ** (level + 1)):
            m = level
            break
    assert ups == m


# -- queue pointer arithmetic ----------------------------------------------------

@given(
    depth_log=st.integers(min_value=1, max_value=6),
    ops=st.lists(st.integers(min_value=0, max_value=5), max_size=200),
)
def test_queue_pointers_never_corrupt(depth_log, ops):
    """Random interleavings of produce/consume keep 0 <= occupancy <= depth
    and slot offsets inside the buffer."""
    depth = 1 << depth_log
    q = QueueState(QueueKind.TX, 0, BANK_A, base=0, depth=depth)
    for op in ops:
        if op % 2 == 0 and q.space > 0:
            q.advance_producer(q.producer + min(op // 2 + 1, q.space))
        elif q.occupancy > 0:
            q.advance_consumer(q.consumer + min(op // 2 + 1, q.occupancy))
        assert 0 <= q.occupancy <= depth
        off = q.slot_offset(q.consumer)
        assert 0 <= off < depth * q.entry_bytes


# -- header encode/decode ----------------------------------------------------------

_tagon_units = st.sampled_from([0, TAGON_SMALL_UNITS, TAGON_LARGE_UNITS])


@given(
    vdst=st.integers(min_value=0, max_value=255),
    dst_queue=st.integers(min_value=0, max_value=255),
    length=st.integers(min_value=0, max_value=88),
    src=st.integers(min_value=0, max_value=255),
    units_=_tagon_units,
    offset8=st.integers(min_value=0, max_value=0x7FFF),
    bank=st.integers(min_value=0, max_value=1),
    raw=st.booleans(),
)
def test_header_roundtrip_property(vdst, dst_queue, length, src, units_,
                                   offset8, bank, raw):
    flags = (FLAG_RAW if raw else 0) | (FLAG_TAGON if units_ else 0)
    tagon_bytes = units_ * 16
    if length + tagon_bytes > 88:
        length = 88 - tagon_bytes
    h = MsgHeader(flags=flags, vdst=vdst, dst_queue=dst_queue, length=length,
                  tagon_offset=offset8 * 8, tagon_bank=bank,
                  tagon_units=units_, src_node=src)
    out = decode_header(encode_header(h))
    assert out.vdst == vdst
    assert out.length == length
    assert out.src_node == src
    assert out.is_raw == raw
    if units_:
        assert out.tagon_offset == offset8 * 8
        assert out.tagon_bank == bank
        assert out.tagon_bytes == tagon_bytes


@given(
    node=st.integers(min_value=0, max_value=65535),
    queue=st.integers(min_value=0, max_value=255),
    priority=st.integers(min_value=0, max_value=1),
    valid=st.booleans(),
)
def test_translation_entry_roundtrip(node, queue, priority, valid):
    e = TranslationEntry(valid, node, queue, priority)
    out = decode_entry(encode_entry(e))
    assert out.valid == valid
    if valid:
        assert (out.dst_node, out.dst_queue, out.priority) == \
            (node, queue, priority)


# -- backing stores -----------------------------------------------------------------

@given(
    size=st.integers(min_value=1, max_value=4096),
    writes=st.lists(
        st.tuples(st.integers(min_value=0, max_value=4095), st.binary(max_size=64)),
        max_size=30,
    ),
)
def test_backing_matches_reference(size, writes):
    """The backing store behaves exactly like a plain bytearray."""
    backing = ByteBacking(size)
    reference = bytearray(size)
    for offset, data in writes:
        offset %= size
        data = data[: size - offset]
        backing.write(offset, data)
        reference[offset : offset + len(data)] = data
    assert backing.read(0, size) == bytes(reference)


# -- masks -----------------------------------------------------------------------------

@given(
    vdst=st.integers(min_value=0, max_value=255),
    and_mask=st.integers(min_value=0, max_value=255),
    or_mask=st.integers(min_value=0, max_value=255),
)
def test_mask_confinement_property(vdst, and_mask, or_mask):
    """Whatever the vdst, the translated index carries every OR bit and
    no bit outside (AND | OR) — the protection guarantee."""
    q = QueueState(QueueKind.TX, 0, BANK_A, base=0, depth=4)
    q.and_mask, q.or_mask = and_mask, or_mask
    idx = q.translate_vdst(vdst)
    assert idx & or_mask == or_mask
    assert idx & ~(and_mask | or_mask) == 0


# -- alignment helpers ---------------------------------------------------------------------

@given(
    addr=st.integers(min_value=0, max_value=2**40),
    align_log=st.integers(min_value=0, max_value=20),
)
def test_alignment_properties(addr, align_log):
    align = 1 << align_log
    down = units.align_down(addr, align)
    up = units.align_up(addr, align)
    assert down <= addr <= up
    assert down % align == 0 and up % align == 0
    assert up - down in (0, align)
    assert units.is_aligned(down, align)
