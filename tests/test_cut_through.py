"""Virtual cut-through switching (the real Arctic's forwarding mode)."""

import pytest

from repro.common.config import default_config
from repro.net.network import ArcticNetwork
from repro.net.packet import PRIORITY_LOW, Packet, PacketKind
from repro.sim.engine import Engine


def _oneway_latency(n_nodes, cut_through, payload=88):
    cfg = default_config(n_nodes=max(2, n_nodes))
    cfg.network.cut_through = cut_through
    engine = Engine()
    net = ArcticNetwork(engine, cfg.network, n_nodes, seed=1)
    got = {}

    def sender():
        pkt = Packet(PacketKind.DATA, 0, n_nodes - 1, 0, bytes(payload),
                     route=net.route(0, n_nodes - 1))
        yield from net.port(0).inject(pkt)

    def receiver():
        yield net.port(n_nodes - 1).receive(PRIORITY_LOW)
        got["t"] = engine.now

    engine.process(sender())
    done = engine.process(receiver())
    engine.run_until_triggered(done, limit=1e9)
    return got["t"]


def test_cut_through_beats_store_and_forward_multihop():
    sf = _oneway_latency(16, False)
    ct = _oneway_latency(16, True)
    assert ct < 0.5 * sf  # 5 link hops collapse to ~1 serialization


def test_cut_through_gain_grows_with_hops():
    gain2 = _oneway_latency(2, False) / _oneway_latency(2, True)
    gain16 = _oneway_latency(16, False) / _oneway_latency(16, True)
    assert gain16 > gain2


def test_final_hop_still_waits_for_tail():
    """Even cut-through cannot deliver a packet to the node before its
    full serialization time on at least one link."""
    ct = _oneway_latency(2, True)
    full_packet_ns = 96 * 6.25
    assert ct >= full_packet_ns


def test_bandwidth_unchanged_by_cut_through():
    """Cut-through shortens latency, not link occupancy: a saturating
    stream delivers the same rate either way."""

    def stream(cut):
        cfg = default_config(n_nodes=2)
        cfg.network.cut_through = cut
        engine = Engine()
        net = ArcticNetwork(engine, cfg.network, 2, seed=1)

        def sender():
            for _ in range(60):
                pkt = Packet(PacketKind.DATA, 0, 1, 0, bytes(88),
                             route=net.route(0, 1))
                yield from net.port(0).inject(pkt)

        def receiver():
            for _ in range(60):
                yield net.port(1).receive(PRIORITY_LOW)

        engine.process(sender())
        done = engine.process(receiver())
        engine.run_until_triggered(done, limit=1e10)
        return 60 * 96 / engine.now * 1000.0

    sf, ct = stream(False), stream(True)
    assert ct == pytest.approx(sf, rel=0.10)


def test_data_integrity_with_cut_through():
    """Cut-through must not reorder or corrupt anything end-to-end."""
    import repro

    cfg = repro.default_config(n_nodes=4)
    cfg.network.cut_through = True
    machine = repro.StarTVoyager(cfg)
    from repro.mp.basic import BasicPort
    from repro.niu.niu import vdst_for

    p0 = BasicPort(machine.node(0), 0, 0)
    p3 = BasicPort(machine.node(3), 0, 0)

    def sender(api):
        for i in range(20):
            yield from p0.send(api, vdst_for(3, 0), bytes([i]) * 30)

    def receiver(api):
        out = []
        for _ in range(20):
            _s, body = yield from p3.recv(api)
            out.append(body[0])
            assert body == bytes([body[0]]) * 30
        return out

    machine.spawn(0, sender)
    got = machine.run_until(machine.spawn(3, receiver), limit=1e10)
    assert got == list(range(20))


def test_dma_works_with_cut_through():
    import repro
    from repro.mp.basic import BasicPort
    from repro.mp.dma import DmaNotifier, dma_write

    cfg = repro.default_config(n_nodes=2)
    cfg.network.cut_through = True
    machine = repro.StarTVoyager(cfg)
    data = bytes((i * 5) & 0xFF for i in range(3000))
    machine.node(0).dram.poke(0x10000, data)
    port = BasicPort(machine.node(0), 1, 1)
    notifier = DmaNotifier(machine.node(1))

    def req(api):
        yield from dma_write(api, port, 1, 0x10000, 0x20000, len(data))

    def wait(api):
        yield from notifier.wait(api)

    machine.spawn(0, req)
    machine.run_until(machine.spawn(1, wait), limit=1e10)
    assert machine.node(1).dram.peek(0x20000, len(data)) == data
