"""Shard-count parity: the sharded engine's determinism contract.

The headline requirement of the conservative parallel-in-time runner is
that sharding is *invisible* in the results: the merged, wall-stripped
metrics snapshot must be byte-identical at any shard count, for healthy
and faulted machines alike, in both the inline and the forked-worker
backend.  These tests pin that down with ``shards=1`` as the baseline.
"""

import json

import pytest

import repro
from repro.bench import comparable
from repro.common.errors import ConfigError, SimulationError
from repro.shard import (
    MixedScenario,
    PingScenario,
    ShardPlan,
    SyncScenario,
    boundary_link_names,
    run_scenario,
    scenario,
)
from repro.sim.engine import Engine, INFINITY

N_NODES = 8


def _canon(snapshot):
    """Wall-stripped snapshot as canonical bytes (byte-identity check)."""
    return json.dumps(comparable(snapshot), sort_keys=True, default=repr)


def _run(scn, shards, backend="inline"):
    return run_scenario(scn, n_nodes=N_NODES, shards=shards, backend=backend)


# ----------------------------------------------------------------------
# the partitioner
# ----------------------------------------------------------------------

def test_plan_blocks_cover_all_nodes_contiguously():
    cfg = repro.default_config(n_nodes=N_NODES)
    for k in (1, 2, 3, 4, 8):
        cfg.shards = k
        plan = ShardPlan(cfg)
        nodes = [n for s in range(k) for n in plan.nodes_of(s)]
        assert nodes == list(range(N_NODES))
        for s in range(k):
            assert all(plan.node_shard(n) == s for n in plan.nodes_of(s))


def test_plan_assigns_every_switch():
    cfg = repro.default_config(n_nodes=N_NODES)
    cfg.shards = 2
    plan = ShardPlan(cfg)
    for level, index in plan.topology.switch_ids():
        assert 0 <= plan.switch_shard(level, index) < 2


def test_config_rejects_bad_shard_counts():
    cfg = repro.default_config(n_nodes=4)
    cfg.shards = 0
    with pytest.raises(ConfigError):
        cfg.validate()
    cfg.shards = 5
    with pytest.raises(ConfigError):
        cfg.validate()


def test_sharded_config_requires_shard_view():
    cfg = repro.default_config(n_nodes=4)
    cfg.shards = 2
    with pytest.raises(ConfigError):
        repro.StarTVoyager(cfg)


# ----------------------------------------------------------------------
# engine window primitives
# ----------------------------------------------------------------------

def test_engine_inject_rejects_lookahead_violation():
    eng = Engine()
    eng._schedule_call(lambda: None, delay=10.0)
    eng.run()
    assert eng.now == 10.0
    with pytest.raises(SimulationError):
        eng.inject(5.0, lambda: None)


def test_engine_window_stops_strictly_before_bound():
    eng = Engine()
    hits = []
    for t in (1.0, 2.0, 3.0):
        eng.inject(t, lambda t=t: hits.append(t))
    assert eng.run_window(3.0) == 3.0
    assert hits == [1.0, 2.0]
    assert eng.run_window(INFINITY) == INFINITY
    assert hits == [1.0, 2.0, 3.0]


def test_engine_advance_to_refuses_to_skip_work():
    eng = Engine()
    eng.inject(7.0, lambda: None)
    with pytest.raises(SimulationError):
        eng.advance_to(8.0)
    eng.run()
    eng.advance_to(11.0)
    assert eng.now == 11.0


# ----------------------------------------------------------------------
# the parity matrix (the acceptance bar)
# ----------------------------------------------------------------------

def test_mixed_workload_parity_matrix():
    """shards=1/2/4 on the mixed workload: byte-identical snapshots and
    identical message histories."""
    base = _run(MixedScenario(), 1)
    base_bytes = _canon(base.snapshot)
    base_log = sorted(sum(base.results, []))
    assert base_log, "mixed workload must actually deliver messages"
    for k in (2, 4):
        run = _run(MixedScenario(), k)
        assert run.snapshot["shards"] == k
        assert _canon(run.snapshot) == base_bytes
        assert sorted(sum(run.results, [])) == base_log


def test_fig3_latency_parity():
    base = _run(PingScenario(sizes=(4, 64), pings=2), 1)
    rtts = [r["rtts"] for r in base.results if r["rtts"] is not None]
    assert rtts and all(r["echo_ok"] is not False for r in base.results)
    run = _run(PingScenario(sizes=(4, 64), pings=2), 4)
    assert _canon(run.snapshot) == _canon(base.snapshot)
    assert [r["rtts"] for r in run.results if r["rtts"] is not None] == rtts


def test_sync_collectives_parity():
    base = _run(SyncScenario(), 1)
    sums = {k: v for r in base.results for k, v in r.items()}
    assert sums == {r: N_NODES * (N_NODES + 1) // 2 for r in range(N_NODES)}
    run = _run(SyncScenario(), 2)
    assert _canon(run.snapshot) == _canon(base.snapshot)
    assert {k: v for r in run.results for k, v in r.items()} == sums


def test_chaos_link_down_crossing_shard_boundary():
    """A fault plan that downs a link cut by the shard boundary must
    produce the identical history at every shard count."""
    base = _run(scenario("chaos"), 1)
    assert base.snapshot["counters"].get("faults.link_down", 0) > 0
    # the downed links really do cross the boundary at shards=2
    cfg = repro.default_config(n_nodes=N_NODES)
    cfg.shards = 2
    plan = ShardPlan(cfg)
    victims = boundary_link_names(cfg)[:2]
    assert victims
    for name in victims:
        a, b = name.split("->")
        def side(tag):
            if tag.startswith("n"):
                return plan.node_shard(int(tag[1:]))
            level, index = tag[2:].split(".")
            return plan.switch_shard(int(level), int(index))
        assert side(a) != side(b), name
    run = _run(scenario("chaos"), 2)
    assert _canon(run.snapshot) == _canon(base.snapshot)
    assert sorted(sum(run.results, [])) == sorted(sum(base.results, []))


def test_process_backend_matches_inline():
    """The forked-worker backend replays the exact inline history (only
    boundary messages and exports cross the pipes)."""
    base = _run(MixedScenario(rounds=3), 1)
    run = _run(MixedScenario(rounds=3), 2, backend="process")
    assert _canon(run.snapshot) == _canon(base.snapshot)
    assert sorted(sum(run.results, [])) == sorted(sum(base.results, []))


def test_sharded_run_reports_plan_and_windows():
    run = _run(MixedScenario(rounds=2), 2)
    assert run.plan["shards"] == 2
    assert [b for b in run.plan["blocks"]] == [[0, 4], [4, 8]]
    assert run.windows > 0
