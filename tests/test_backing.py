"""Byte backing stores: bounds checks, word accessors."""

import pytest

from repro.common.errors import AddressError
from repro.mem.backing import ByteBacking


def test_read_write_roundtrip():
    b = ByteBacking(256)
    b.write(10, b"hello")
    assert b.read(10, 5) == b"hello"
    assert b.read(0, 10) == bytes(10)


def test_bounds_low():
    b = ByteBacking(16)
    with pytest.raises(AddressError):
        b.read(-1, 4)


def test_bounds_high():
    b = ByteBacking(16)
    with pytest.raises(AddressError):
        b.write(14, b"toolong")
    with pytest.raises(AddressError):
        b.read(16, 1)


def test_exact_end_allowed():
    b = ByteBacking(16)
    b.write(12, b"abcd")
    assert b.read(12, 4) == b"abcd"


def test_negative_length():
    with pytest.raises(AddressError):
        ByteBacking(16).read(0, -1)


def test_u32_big_endian():
    b = ByteBacking(16)
    b.write_u32(4, 0x0102_0304)
    assert b.read(4, 4) == b"\x01\x02\x03\x04"
    assert b.read_u32(4) == 0x0102_0304


def test_u64_big_endian():
    b = ByteBacking(16)
    b.write_u64(8, 0x1122_3344_5566_7788)
    assert b.read_u64(8) == 0x1122_3344_5566_7788


def test_u32_truncates():
    b = ByteBacking(8)
    b.write_u32(0, 0x1_0000_0001)
    assert b.read_u32(0) == 1


def test_fill():
    b = ByteBacking(32)
    b.fill(8, 16, 0xAB)
    assert b.read(8, 16) == b"\xab" * 16
    assert b.read(0, 8) == bytes(8)
    with pytest.raises(AddressError):
        b.fill(0, 4, 300)


def test_fill_constructor():
    b = ByteBacking(8, fill=0x5A)
    assert b.read(0, 8) == b"\x5a" * 8


def test_size_validation():
    with pytest.raises(AddressError):
        ByteBacking(0)
