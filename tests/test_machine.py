"""Cluster assembly: construction, translation install, execution."""

import pytest

import repro
from repro.niu.niu import SP_PROTOCOL_QUEUE, SP_SERVICE_QUEUE, vdst_for
from repro.net.packet import PRIORITY_HIGH, PRIORITY_LOW


def test_single_node_has_no_network():
    m = repro.StarTVoyager(1)
    assert m.network is None
    assert len(m.nodes) == 1


def test_int_shorthand():
    m = repro.StarTVoyager(4)
    assert m.config.n_nodes == 4
    assert len(m.nodes) == 4


def test_default_constructor():
    m = repro.StarTVoyager()
    assert m.config.n_nodes == 2


def test_translation_tables_installed():
    m = repro.StarTVoyager(3)
    for node in m.nodes:
        for dst in range(3):
            e = node.ctrl.table.lookup(vdst_for(dst, 0))
            assert (e.dst_node, e.dst_queue) == (dst, 0)
            # protocol queues ride the high priority
            ep = node.ctrl.table.lookup(vdst_for(dst, SP_PROTOCOL_QUEUE))
            assert ep.priority == PRIORITY_HIGH
            es = node.ctrl.table.lookup(vdst_for(dst, SP_SERVICE_QUEUE))
            assert es.priority == PRIORITY_HIGH
            e0 = node.ctrl.table.lookup(vdst_for(dst, 1))
            assert e0.priority == PRIORITY_LOW


def test_spawn_and_run_all():
    m = repro.StarTVoyager(2)

    def prog(api, n):
        yield from api.compute(n)
        return api.node_id * 100 + n

    results = m.run_all([m.spawn(0, prog, 5), m.spawn(1, prog, 7)])
    assert results == [5, 107]


def test_run_until_limit():
    m = repro.StarTVoyager(1)

    def forever(api):
        while True:
            yield from api.compute(1000)

    m.spawn(0, forever)
    t = m.run(until=50_000.0)
    assert t == 50_000.0
    assert m.now == 50_000.0


def test_occupancy_in_metrics():
    m = repro.StarTVoyager(2)

    def prog(api):
        yield from api.compute(10_000)

    m.run_until(m.spawn(0, prog))
    occ = m.metrics()["occupancy"]["0"]
    assert 0.0 < occ["ap"] <= 1.0
    assert occ["sp"] >= 0.0


def test_metrics_contains_bus_stats():
    m = repro.StarTVoyager(2)

    def prog(api):
        yield from api.store(0x100, b"x" * 8)

    m.run_until(m.spawn(0, prog))
    snap = m.metrics()
    assert snap["schema"] == "startv.metrics"
    assert snap["counters"].get("bus0.txns", 0) >= 1


def test_firmware_optional():
    cfg = repro.default_config(n_nodes=2)
    cfg.install_firmware = False
    m = repro.StarTVoyager(cfg)
    # no firmware image: the sP has no handlers
    assert not m.node(0).sp._handlers


def test_invalid_config_rejected():
    cfg = repro.default_config()
    cfg.n_nodes = 0
    from repro.common.errors import ConfigError
    with pytest.raises(ConfigError):
        repro.StarTVoyager(cfg)


def test_sixteen_node_machine_end_to_end():
    """The vdst convention's full scale: 16 nodes, fat tree of 32
    switches, an MPI allreduce across all of them."""
    from repro.lib.mpi import MiniMPI

    m = repro.StarTVoyager(16)
    assert m.network.topology.levels == 4
    mpi = MiniMPI(m)

    def worker(api, rank):
        comm = mpi.rank(rank)
        total = yield from comm.allreduce(api, rank + 1)
        return total

    procs = [m.spawn(n, worker, n) for n in range(16)]
    results = m.run_all(procs, limit=1e10)
    assert results == [sum(range(1, 17))] * 16


def test_seventeen_nodes_skips_default_tables():
    """Beyond 16 nodes the byte-vdst convention cannot cover the
    namespace; the machine builds but leaves translation to software."""
    m = repro.StarTVoyager(17)
    assert len(m.nodes) == 17
    from repro.common.errors import TranslationError
    with pytest.raises(TranslationError):
        m.node(0).ctrl.table.lookup(0)
