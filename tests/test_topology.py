"""The fat-tree topology: wiring consistency and route validity."""

import pytest

from repro.common.errors import NetworkError
from repro.net.topology import FatTreeTopology


def test_two_nodes_single_switch():
    t = FatTreeTopology(2, radix=4)
    assert t.levels == 1
    assert t.switches_per_level == 1
    assert t.leaf_slots == 2
    assert t.route(0, 1) == [1]  # one switch, descend on digit 1
    assert t.hop_count(0, 1) == 1


def test_four_nodes():
    t = FatTreeTopology(4, radix=4)
    assert t.levels == 2
    assert t.switches_per_level == 2
    # same level-1 switch: one hop
    assert t.hop_count(0, 1) == 1
    # across the tree: up one, down two
    assert t.hop_count(0, 3) == 3


def test_sixteen_nodes():
    t = FatTreeTopology(16, radix=4)
    assert t.levels == 4
    assert t.leaf_slots == 16
    assert t.switches_per_level == 8


def test_non_power_padded():
    t = FatTreeTopology(5, radix=4)
    assert t.leaf_slots == 8
    assert t.levels == 3


def test_all_routes_valid_small():
    for n in (2, 3, 4, 6, 8, 16):
        t = FatTreeTopology(n, radix=4, seed=11)
        for s in range(n):
            for d in range(n):
                if s == d:
                    continue
                route = t.route(s, d)
                assert t.validate_route(s, d, route), (n, s, d, route)


def test_route_shape_up_then_down():
    t = FatTreeTopology(8, radix=4)
    for s in range(8):
        for d in range(8):
            if s == d:
                continue
            route = t.route(s, d)
            ups = [p >= t.down_degree for p in route]
            # once a route starts descending it never ascends again
            descending = False
            for up in ups:
                if not up:
                    descending = True
                assert not (descending and up)


def test_self_route_rejected():
    t = FatTreeTopology(4)
    with pytest.raises(NetworkError):
        t.route(2, 2)


def test_leaf_bounds():
    t = FatTreeTopology(4)
    with pytest.raises(NetworkError):
        t.route(0, 99)


def test_leaf_switch_assignment():
    t = FatTreeTopology(8, radix=4)
    assert t.leaf_switch(0) == 0
    assert t.leaf_switch(1) == 0
    assert t.leaf_switch(2) == 1
    assert t.leaf_switch(7) == 3


def test_up_down_wiring_inverse():
    t = FatTreeTopology(16, radix=4)
    for level in range(1, t.levels):
        for index in range(t.switches_per_level):
            for b in range(t.down_degree):
                p_level, p_index = t.up_target(level, index, b)
                # the parent's down port equal to the child's digit leads back
                d = t.down_degree
                child_digit = (index // (d ** (level - 1))) % d
                kind, back_level, back_index = t.down_target(
                    p_level, p_index, child_digit)
                assert kind == "switch"
                assert (back_level, back_index) == (level, index)


def test_level1_down_reaches_leaves():
    t = FatTreeTopology(8, radix=4)
    for index in range(t.switches_per_level):
        for c in range(t.down_degree):
            kind, leaf, _ = t.down_target(1, index, c)
            assert kind == "leaf"
            assert t.leaf_switch(leaf) == index


def test_top_level_has_no_parents():
    t = FatTreeTopology(4, radix=4)
    with pytest.raises(NetworkError):
        t.up_target(t.levels, 0, 0)


def test_seed_spreads_up_links():
    # different seeds may pick different up-link copies; both remain valid
    routes = set()
    for seed in range(8):
        t = FatTreeTopology(16, radix=4, seed=seed)
        routes.add(tuple(t.route(0, 15)))
        assert t.validate_route(0, 15, t.route(0, 15))
    assert len(routes) >= 2  # the spread actually spreads


def test_describe():
    d = FatTreeTopology(8, radix=4).describe()
    assert d["nodes"] == 8
    assert d["levels"] == 3
    assert d["radix"] == 4
