"""Exception hierarchy for the StarT-Voyager simulator.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch simulator-originated failures without masking genuine
Python bugs (``TypeError`` etc. propagate unchanged).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all simulator errors."""


class ConfigError(ReproError):
    """An invalid or inconsistent :class:`~repro.common.config.MachineConfig`."""


class SimulationError(ReproError):
    """The simulation kernel reached an illegal state."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still waiting."""


class AddressError(ReproError):
    """A physical address fell outside every mapped region."""


class AlignmentError(AddressError):
    """An access violated the alignment its bus operation requires."""


class ProtectionViolation(ReproError):
    """A message or bus operation violated NIU protection.

    Mirrors the hardware behaviour described in the paper: on violation the
    offending queue is shut down and firmware/OS is notified by interrupt.
    The exception is what the *user-level* API surfaces when it attempts to
    use a queue that hardware has shut down.
    """


class QueueError(ReproError):
    """Illegal queue manipulation (bad index, pointer out of range...)."""


class QueueFullError(QueueError):
    """A non-blocking enqueue found the queue full."""


class QueueEmptyError(QueueError):
    """A non-blocking dequeue found the queue empty."""


class TranslationError(ReproError):
    """Destination translation failed (missing table entry, bad vdst)."""


class NetworkError(ReproError):
    """Malformed packet or impossible route."""


class FirmwareError(ReproError):
    """A firmware handler raised or was mis-registered."""


class ProgramError(ReproError):
    """A user program performed an illegal operation on the aP."""


class SanitizerError(ReproError):
    """A runtime invariant checker caught a protocol violation.

    Raised by the :mod:`repro.analysis.sanitize` checkers (credit
    conservation, queue overwrite, coherence legality, deadlock
    watchdog) the moment the invariant breaks, so the failure points at
    the offending transition rather than at a corrupted result later.
    """
