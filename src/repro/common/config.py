"""Machine configuration.

All timing and sizing parameters of the simulated StarT-Voyager cluster
live here, in one validated, immutable-ish tree of dataclasses.  Defaults
are the 1998-plausible values documented in DESIGN.md §5:

* aP / sP: PowerPC 604e at 166 MHz;
* memory bus: 66 MHz, 64-bit data path, 32-byte cache lines;
* Arctic network: 160 MB/s/direction/link, 96-byte packets, radix-4
  fat tree, two priorities;
* NIU: 16 hardware transmit + 16 hardware receive queues out of a larger
  logical namespace, dual-ported aSRAM/sSRAM, single-ported clsSRAM.

Every experiment records the ``MachineConfig`` it ran with so that results
are reproducible and parameter sweeps are explicit.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.common.errors import ConfigError
from repro.common.units import KB, MB, is_power_of_two, mbps_to_ns_per_byte, mhz_to_ns
from repro.faults.plan import FaultPlan


@dataclass
class ProcessorConfig:
    """A 604-class processor clock/cost model.

    The simulator does not emulate the PowerPC pipeline; it charges
    ``cpi`` cycles per "instruction" of modeled work.  This is the
    substitution DESIGN.md §2 documents for both the application
    processor (aP) and the NIU's embedded service processor (sP).
    """

    clock_mhz: float = 166.0
    #: average cycles per modeled instruction (compute work, not bus ops).
    cpi: float = 1.0

    @property
    def cycle_ns(self) -> float:
        """Clock period in nanoseconds."""
        return mhz_to_ns(self.clock_mhz)

    def insn_ns(self, n: int) -> float:
        """Simulated time to execute ``n`` instructions of straight-line code."""
        return n * self.cpi * self.cycle_ns

    def validate(self) -> None:
        if self.clock_mhz <= 0:
            raise ConfigError(f"processor clock must be positive: {self.clock_mhz}")
        if self.cpi <= 0:
            raise ConfigError(f"CPI must be positive: {self.cpi}")


@dataclass
class BusConfig:
    """The 60X-style coherent memory bus shared by aP, L2 and the NIU."""

    clock_mhz: float = 66.0
    #: data path width in bytes (64-bit bus).
    width_bytes: int = 8
    #: coherence granularity; the 604e uses 32-byte lines.
    line_bytes: int = 32
    #: bus cycles to win arbitration when the bus is free.
    arbitration_cycles: int = 1
    #: bus cycles for the address tenure (address + transfer attributes).
    address_cycles: int = 1
    #: bus cycles for the snoop response window.
    snoop_cycles: int = 1
    #: bus cycles a retried master waits before re-requesting.
    retry_backoff_cycles: int = 4
    #: hard cap on consecutive retries of one transaction (deadlock guard);
    #: 0 means unlimited.
    max_retries: int = 0

    @property
    def cycle_ns(self) -> float:
        """Bus clock period in nanoseconds."""
        return mhz_to_ns(self.clock_mhz)

    @property
    def beats_per_line(self) -> int:
        """Data beats needed to move one cache line."""
        return self.line_bytes // self.width_bytes

    def validate(self) -> None:
        if self.clock_mhz <= 0:
            raise ConfigError(f"bus clock must be positive: {self.clock_mhz}")
        if not is_power_of_two(self.width_bytes):
            raise ConfigError(f"bus width must be a power of two: {self.width_bytes}")
        if not is_power_of_two(self.line_bytes):
            raise ConfigError(f"line size must be a power of two: {self.line_bytes}")
        if self.line_bytes % self.width_bytes:
            raise ConfigError("line size must be a multiple of the bus width")
        for name in ("arbitration_cycles", "address_cycles", "snoop_cycles"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")
        if self.retry_backoff_cycles < 1:
            raise ConfigError("retry backoff must be at least one cycle")


@dataclass
class DRAMConfig:
    """Main memory behind the standard SMP memory controller.

    An optional open-page (row buffer) model: an access to the currently
    open row of a bank pays ``row_hit_first_beat_cycles`` to the first
    beat instead of the full ``first_beat_cycles`` — sequential streams
    (block operations!) get most of the benefit.  Disabled by default so
    the shipped experiment numbers stay flat-timing; the X-abl ablations
    turn it on.
    """

    size_bytes: int = 8 * MB
    #: bus cycles from data tenure start to the first beat (row miss).
    first_beat_cycles: int = 6
    #: bus cycles per subsequent beat.
    next_beat_cycles: int = 1
    #: OS page size, the granularity of NIU block operations ("up to one
    #: aligned page").
    page_bytes: int = 4 * KB
    #: open-page policy (False = flat timing).
    row_buffer: bool = False
    #: DRAM row size and bank interleave granularity.
    row_bytes: int = 2 * KB
    n_banks: int = 4
    #: first-beat cycles when the access hits the open row.
    row_hit_first_beat_cycles: int = 3

    def validate(self) -> None:
        if self.size_bytes <= 0:
            raise ConfigError("DRAM size must be positive")
        if not is_power_of_two(self.page_bytes):
            raise ConfigError("page size must be a power of two")
        if self.first_beat_cycles < 1 or self.next_beat_cycles < 1:
            raise ConfigError("DRAM beat timings must be at least one cycle")
        if self.row_buffer:
            if not is_power_of_two(self.row_bytes):
                raise ConfigError("DRAM row size must be a power of two")
            if self.n_banks < 1:
                raise ConfigError("DRAM needs at least one bank")
            if not (1 <= self.row_hit_first_beat_cycles
                    <= self.first_beat_cycles):
                raise ConfigError(
                    "row-hit latency must be between 1 and the miss latency"
                )


@dataclass
class CacheConfig:
    """The aP's in-line L2 cache (512 KB on the real machine)."""

    size_bytes: int = 512 * KB
    line_bytes: int = 32
    ways: int = 1
    #: bus cycles for a hit supplied by the cache model (used only for
    #: occupancy accounting; hits do not occupy the memory bus).
    hit_cycles: int = 1
    enabled: bool = True

    @property
    def n_lines(self) -> int:
        """Total line frames in the cache."""
        return self.size_bytes // self.line_bytes

    @property
    def n_sets(self) -> int:
        """Number of sets given the associativity."""
        return self.n_lines // self.ways

    def validate(self) -> None:
        if not is_power_of_two(self.size_bytes):
            raise ConfigError("cache size must be a power of two")
        if not is_power_of_two(self.line_bytes):
            raise ConfigError("cache line size must be a power of two")
        if self.ways < 1 or self.n_lines % self.ways:
            raise ConfigError("cache associativity must divide the line count")
        if not is_power_of_two(self.n_sets):
            raise ConfigError("cache set count must be a power of two")


@dataclass
class NIUConfig:
    """The StarT-Voyager network interface unit (CTRL + BIUs + sP + SRAMs)."""

    #: hardware-resident transmit/receive queues in CTRL.
    n_hw_tx_queues: int = 16
    n_hw_rx_queues: int = 16
    #: size of the logical receive-queue namespace; queues beyond the
    #: hardware-cached set spill to the miss queue, serviced by firmware.
    n_logical_rx_queues: int = 256
    #: per-queue buffer capacity in messages.
    queue_depth: int = 16
    #: dual-ported SRAM sizes.
    asram_bytes: int = 128 * KB
    ssram_bytes: int = 128 * KB
    #: SRAM port access time in bus cycles.
    sram_cycles: int = 1
    #: IBus: 64-bit path clocked with the bus.
    ibus_width_bytes: int = 8
    #: clsSRAM keeps 4 state bits per cache line of a coverage window.
    clssram_lines: int = 64 * KB // 32 * 8
    #: Basic message maximum payload (paper: "up to 88 bytes").
    basic_max_payload: int = 88
    #: Express message payload (paper: "five-byte payload": 4 data bytes on
    #: the data bus + 1 byte encoded in the store address).
    express_payload: int = 5
    #: TagOn attachment sizes in cache lines (paper: 1.5 or 2.5 lines).
    tagon_small_lines: float = 1.5
    tagon_large_lines: float = 2.5
    #: depth of each CTRL command queue (2 local + 1 remote) in commands.
    cmdq_depth: int = 32
    #: depth of the rx miss/overflow queue in messages.
    missq_depth: int = 64
    #: CTRL internal pipeline latency per operation, in bus cycles.
    ctrl_op_cycles: int = 2

    def validate(self) -> None:
        if not (1 <= self.n_hw_tx_queues <= 64):
            raise ConfigError("hardware tx queue count out of range")
        if not (1 <= self.n_hw_rx_queues <= 64):
            raise ConfigError("hardware rx queue count out of range")
        if self.n_logical_rx_queues < self.n_hw_rx_queues:
            raise ConfigError("logical rx namespace smaller than hardware set")
        if self.queue_depth < 2 or not is_power_of_two(self.queue_depth):
            raise ConfigError("queue depth must be a power of two >= 2")
        if self.basic_max_payload <= 0 or self.basic_max_payload % 8:
            raise ConfigError("basic payload cap must be a positive multiple of 8")
        if self.cmdq_depth < 1 or self.missq_depth < 1:
            raise ConfigError("command/miss queue depths must be positive")


@dataclass
class NetworkConfig:
    """The MIT Arctic fat-tree network."""

    #: link bandwidth per direction (paper: 160 MB/s/direction/link).
    link_mb_per_s: float = 160.0
    #: fixed fall-through latency of one Arctic switch.
    switch_latency_ns: float = 40.0
    #: wire/propagation latency per link hop.
    wire_latency_ns: float = 5.0
    #: switch radix (Arctic is a 4x4 packet-routing chip).
    radix: int = 4
    #: input buffering per (link, priority) in packets; bounds in-flight
    #: traffic and creates backpressure.
    buffer_packets: int = 4
    #: maximum packet size, header included (Arctic: 96 bytes).
    max_packet_bytes: int = 96
    #: packet header size (route, logical dst queue, priority, length ...).
    header_bytes: int = 8
    #: number of priority levels; the paper requires at least two.
    priorities: int = 2
    #: virtual cut-through forwarding (the real Arctic's mode): a switch
    #: may start forwarding once the header has arrived, so multi-hop
    #: latency pays full serialization once plus per-hop header time.
    #: False = store-and-forward (conservative default; the shipped
    #: experiment numbers use it).
    cut_through: bool = False
    #: switch-resident combining: how long a fetch-and-op combining slot
    #: stays open for later colliding requests before the combined packet
    #: is forwarded (Ultracomputer-style window).  Tree-mode collectives
    #: ignore it — they wait for their planned contribution count.
    combine_window_ns: float = 80.0
    #: per-packet processing latency of a switch's combining ALU stage,
    #: charged on top of the ordinary fall-through latency.
    combine_latency_ns: float = 15.0

    @property
    def ns_per_byte(self) -> float:
        """Serialization delay per byte on one link."""
        return mbps_to_ns_per_byte(self.link_mb_per_s)

    @property
    def max_payload_bytes(self) -> int:
        """Largest payload one packet can carry."""
        return self.max_packet_bytes - self.header_bytes

    def validate(self) -> None:
        if self.link_mb_per_s <= 0:
            raise ConfigError("link bandwidth must be positive")
        if self.radix < 2:
            raise ConfigError("switch radix must be at least 2")
        if self.priorities < 2:
            raise ConfigError("the paper requires at least two network priorities")
        if self.header_bytes >= self.max_packet_bytes:
            raise ConfigError("header cannot fill the whole packet")
        if self.buffer_packets < 1:
            raise ConfigError("links need at least one packet of buffering")
        if self.combine_window_ns < 0 or self.combine_latency_ns < 0:
            raise ConfigError("combining latencies must be non-negative")


@dataclass
class FirmwareCostConfig:
    """Instruction budgets for sP firmware handlers.

    These are the modeled costs of the firmware code paths that the real
    machine runs on its embedded 604.  They are deliberately explicit and
    centralized: the paper's experiments hinge on firmware occupancy, so
    these knobs are first-class experiment parameters.
    """

    #: dispatch loop: poll queues, decode message type, call handler.
    dispatch_insns: int = 40
    #: compose + launch one message from firmware.
    send_msg_insns: int = 60
    #: receive/drain one message in firmware.
    recv_msg_insns: int = 40
    #: set up one block-operation command (either block unit).
    block_setup_insns: int = 50
    #: DMA request parsing and per-page loop overhead.
    dma_request_insns: int = 120
    dma_per_page_insns: int = 80
    #: NUMA protocol: handle one aP bus op, one remote request, one reply.
    numa_local_insns: int = 150
    numa_home_insns: int = 180
    numa_reply_insns: int = 100
    #: S-COMA protocol handler costs.
    scoma_miss_insns: int = 160
    scoma_home_insns: int = 180
    scoma_fill_insns: int = 120
    #: clsSRAM state update issued from firmware (per line).
    cls_update_insns: int = 12
    #: rx miss-queue service: move one message to its DRAM-resident queue.
    missq_service_insns: int = 90
    #: CollectiveUnit: parse one aP collective request.
    coll_request_insns: int = 70
    #: CollectiveUnit: fold one contribution into the accumulator.
    coll_combine_insns: int = 30
    #: CollectiveUnit: forward the result one tree hop on the down sweep.
    coll_forward_insns: int = 45
    #: reliable delivery: wrap + launch one go-back-N segment.
    rel_send_insns: int = 70
    #: reliable delivery: receive one DATA segment (seq check + deliver).
    rel_data_insns: int = 55
    #: reliable delivery: process one cumulative ACK.
    rel_ack_insns: int = 35
    #: reliable delivery: one retransmit-timer firing (window walk).
    rel_timer_insns: int = 50
    #: repro.sync endpoint fallback: apply one fetch-and-op at a cell's
    #: home sP (decode, read-modify-write, compose reply).
    sync_cell_insns: int = 55
    #: repro.sync: inject one tagged packet toward the switch fabric
    #: (the NIC is the combining tree's leaf).
    sync_inject_insns: int = 35
    #: repro.sync central (hot-spot) barrier: count one arrival / send
    #: one release at the home sP.
    sync_barrier_insns: int = 40
    #: repro.sync work-stealing deque: one push/pop/steal served by the
    #: owning sP.
    sync_deque_insns: int = 60
    #: repro.traffic KV store: serve one get/put (decode, hash-table
    #: probe or install, compose reply).
    kv_op_insns: int = 90
    #: repro.traffic KV store: per-key scan cost of a range request, on
    #: top of the base op cost.
    kv_range_per_key_insns: int = 25
    #: repro.traffic parameter server: fold one pushed gradient into a
    #: block accumulator.
    ps_push_insns: int = 60
    #: repro.traffic parameter server: apply the folded gradient and
    #: compose the per-contributor replies once a block's step is full.
    ps_apply_insns: int = 80
    #: repro.traffic microservice: fixed dispatch overhead of one stage
    #: (the request's own per-stage service time rides in the message).
    usvc_dispatch_insns: int = 50

    def validate(self) -> None:
        for f in dataclasses.fields(self):
            if getattr(self, f.name) < 0:
                raise ConfigError(f"firmware cost {f.name} must be non-negative")


@dataclass
class ReliabilityConfig:
    """The firmware go-back-N ack/retransmit protocol's knobs."""

    #: sender window (unacked segments in flight per destination); also
    #: the retransmit-buffer bound — sends past it backpressure in sP.
    window: int = 8
    #: initial retransmit timeout.
    timeout_ns: float = 30_000.0
    #: exponential backoff factor applied on every timer expiry.
    backoff: float = 2.0
    #: cap on the backed-off timeout.
    max_timeout_ns: float = 500_000.0

    def validate(self) -> None:
        if self.window < 1:
            raise ConfigError("reliability window must be at least 1")
        if self.timeout_ns <= 0:
            raise ConfigError("reliability timeout must be positive")
        if self.backoff < 1.0:
            raise ConfigError("reliability backoff factor must be >= 1")
        if self.max_timeout_ns < self.timeout_ns:
            raise ConfigError(
                "reliability max timeout cannot undercut the initial timeout"
            )


@dataclass
class MachineConfig:
    """Complete configuration of a StarT-Voyager cluster."""

    n_nodes: int = 2
    ap: ProcessorConfig = field(default_factory=ProcessorConfig)
    sp: ProcessorConfig = field(default_factory=ProcessorConfig)
    bus: BusConfig = field(default_factory=BusConfig)
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    l2: CacheConfig = field(default_factory=CacheConfig)
    niu: NIUConfig = field(default_factory=NIUConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    firmware: FirmwareCostConfig = field(default_factory=FirmwareCostConfig)
    reliability: ReliabilityConfig = field(default_factory=ReliabilityConfig)
    #: declarative fault schedule (None = the network never lies; the
    #: machine then builds with zero fault-path state).
    faults: Optional[FaultPlan] = None
    #: seed for any randomized choices (e.g. fat-tree up-link spreading).
    seed: int = 0
    #: number of conservative parallel-simulation shards the machine's
    #: nodes are partitioned into.  ``1`` (the default) is the classic
    #: single-event-queue path; ``K > 1`` machines are driven through
    #: :class:`repro.shard.ShardedMachine`, which builds one sub-machine
    #: per shard and synchronizes them on Arctic wire latency.  Metrics
    #: are byte-identical at any shard count.
    shards: int = 1
    #: load the shipped sP firmware image at machine assembly (tests that
    #: install firmware piecemeal turn this off).
    install_firmware: bool = True
    #: S-COMA home node per covered line (None = round-robin by page).
    scoma_home_of: Optional[List[int]] = None
    #: runtime invariant checkers to install at machine assembly: a tuple
    #: of names from :data:`repro.analysis.sanitize.SANITIZER_NAMES`
    #: (``credit``, ``queue``, ``coherence``, ``deadlock``,
    #: ``combine``), or the
    #: string ``"all"``, or a comma-separated string.  Merged with the
    #: ``REPRO_SANITIZE`` environment variable; empty (the default)
    #: installs nothing and costs nothing.
    sanitize: Union[str, Tuple[str, ...]] = ()

    def validate(self) -> "MachineConfig":
        """Check cross-field consistency; returns self for chaining."""
        if self.n_nodes < 1:
            raise ConfigError("need at least one node")
        if self.shards < 1:
            raise ConfigError("need at least one shard")
        if self.shards > self.n_nodes:
            raise ConfigError(
                f"cannot split {self.n_nodes} nodes into {self.shards} shards"
            )
        if not isinstance(self.sanitize, str):
            self.sanitize = tuple(self.sanitize)
        if self.scoma_home_of is not None:
            bad = [h for h in self.scoma_home_of
                   if not (0 <= h < self.n_nodes)]
            if bad:
                raise ConfigError(
                    f"scoma_home_of names nonexistent nodes: {bad[:4]}"
                )
        self.ap.validate()
        self.sp.validate()
        self.bus.validate()
        self.dram.validate()
        self.l2.validate()
        self.niu.validate()
        self.network.validate()
        self.firmware.validate()
        self.reliability.validate()
        if self.faults is not None:
            self.faults.validate(self.n_nodes)
        if self.l2.line_bytes != self.bus.line_bytes:
            raise ConfigError("L2 line size must match the bus coherence line")
        if self.niu.basic_max_payload > self.network.max_payload_bytes:
            raise ConfigError(
                "basic message payload cannot exceed the network packet payload"
            )
        if self.dram.page_bytes % self.bus.line_bytes:
            raise ConfigError("page size must be a multiple of the line size")
        return self

    def describe(self) -> Dict[str, Any]:
        """Flat dict of every parameter, for experiment logs."""
        return dataclasses.asdict(self)

    def copy(self, **overrides: Any) -> "MachineConfig":
        """Deep copy with top-level field overrides."""
        dup = dataclasses.replace(
            self,
            ap=dataclasses.replace(self.ap),
            sp=dataclasses.replace(self.sp),
            bus=dataclasses.replace(self.bus),
            dram=dataclasses.replace(self.dram),
            l2=dataclasses.replace(self.l2),
            niu=dataclasses.replace(self.niu),
            network=dataclasses.replace(self.network),
            firmware=dataclasses.replace(self.firmware),
            reliability=dataclasses.replace(self.reliability),
            faults=None if self.faults is None else self.faults.copy(),
            scoma_home_of=(None if self.scoma_home_of is None
                           else list(self.scoma_home_of)),
        )
        return dataclasses.replace(dup, **overrides) if overrides else dup


def default_config(n_nodes: int = 2, **overrides: Any) -> MachineConfig:
    """The standard 1998-plausible configuration used throughout the repo."""
    cfg = MachineConfig(n_nodes=n_nodes, **overrides)
    return cfg.validate()
