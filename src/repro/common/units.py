"""Unit helpers.

The simulator's canonical time unit is the **nanosecond**, carried as a
float.  The canonical data unit is the **byte**.  These helpers keep unit
conversions explicit and self-documenting at call sites, following the
"make it work reliably" guidance: a bare ``166`` in the code is a bug
waiting to happen, ``mhz_to_ns(166)`` is not.
"""

from __future__ import annotations

#: One nanosecond (the canonical unit).
NS = 1.0
#: One microsecond in nanoseconds.
US = 1_000.0
#: One millisecond in nanoseconds.
MS = 1_000_000.0
#: One second in nanoseconds.
S = 1_000_000_000.0

#: One kibibyte / mebibyte in bytes.
KB = 1024
MB = 1024 * 1024


def mhz_to_ns(mhz: float) -> float:
    """Clock period in ns of a clock running at ``mhz`` MHz."""
    if mhz <= 0:
        raise ValueError(f"clock frequency must be positive, got {mhz}")
    return 1_000.0 / mhz


def mbps_to_ns_per_byte(mb_per_s: float) -> float:
    """Serialization cost in ns/byte of a link carrying ``mb_per_s`` MB/s.

    The paper quotes Arctic links at 160 MB/s/direction; that is
    160 * 10^6 bytes per second -> 6.25 ns per byte.
    """
    if mb_per_s <= 0:
        raise ValueError(f"bandwidth must be positive, got {mb_per_s}")
    return 1_000.0 / mb_per_s


def bytes_per_ns_to_mbps(bytes_per_ns: float) -> float:
    """Convert a measured rate in bytes/ns back to MB/s (decimal MB)."""
    return bytes_per_ns * 1_000.0


def ns_to_us(ns: float) -> float:
    """Nanoseconds to microseconds."""
    return ns / US


def align_down(addr: int, align: int) -> int:
    """Largest multiple of ``align`` that is <= ``addr``."""
    if align <= 0 or align & (align - 1):
        raise ValueError(f"alignment must be a positive power of two, got {align}")
    return addr & ~(align - 1)


def align_up(addr: int, align: int) -> int:
    """Smallest multiple of ``align`` that is >= ``addr``."""
    if align <= 0 or align & (align - 1):
        raise ValueError(f"alignment must be a positive power of two, got {align}")
    return (addr + align - 1) & ~(align - 1)


def is_aligned(addr: int, align: int) -> bool:
    """True when ``addr`` is a multiple of ``align`` (a power of two)."""
    if align <= 0 or align & (align - 1):
        raise ValueError(f"alignment must be a positive power of two, got {align}")
    return (addr & (align - 1)) == 0


def is_power_of_two(n: int) -> bool:
    """True when ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0
