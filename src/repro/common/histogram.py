"""Log-bucketed histogram with exact-enough percentiles.

The observability layer's latency primitive: geometric buckets, eight
per octave, so every recorded value lands in a bucket whose bounds are
within ~9% of the true value — accurate enough for p50/p90/p99 of
latency distributions spanning nanoseconds to milliseconds, at the cost
of one ``log2`` and one dict increment per sample.

Buckets are sparse (a dict keyed by bucket index), so an idle histogram
costs a few hundred bytes regardless of the value range.  Zero and
negative samples are counted separately and sort before every positive
bucket when percentiles are computed.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterator, List, Tuple

#: sub-bucket resolution: 2**(1/8) growth => <= ~9% relative bucket width.
SUB_BUCKET_BITS = 3
BUCKETS_PER_OCTAVE = 1 << SUB_BUCKET_BITS  # 8


def bucket_index(x: float) -> int:
    """Bucket index of a positive value (floor of log2(x) * 8)."""
    return math.floor(math.log2(x) * BUCKETS_PER_OCTAVE)


def bucket_bounds(index: int) -> Tuple[float, float]:
    """Half-open value range ``[lo, hi)`` covered by bucket ``index``."""
    return (2.0 ** (index / BUCKETS_PER_OCTAVE),
            2.0 ** ((index + 1) / BUCKETS_PER_OCTAVE))


def bucket_mid(index: int) -> float:
    """Geometric midpoint of bucket ``index`` (its reported value)."""
    return 2.0 ** ((index + 0.5) / BUCKETS_PER_OCTAVE)


class Histogram:
    """Streaming log-bucketed sample distribution.

    Tracks exact n/min/max/total alongside the bucket counts, so means
    are exact and percentile estimates are clamped into ``[min, max]``
    (single-bucket distributions therefore report exact percentiles).
    """

    __slots__ = ("name", "n", "total", "min", "max", "_counts", "_nonpos")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.n = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._counts: Dict[int, int] = {}
        #: samples <= 0 (latencies should not produce these, but a
        #: histogram must not lose them if they happen).
        self._nonpos = 0

    # -- recording ---------------------------------------------------------

    def add(self, x: float) -> None:
        """Record one sample."""
        self.n += 1
        self.total += x
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x
        if x <= 0.0:
            self._nonpos += 1
            return
        idx = math.floor(math.log2(x) * BUCKETS_PER_OCTAVE)
        self._counts[idx] = self._counts.get(idx, 0) + 1

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s samples into this histogram."""
        self.n += other.n
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self._nonpos += other._nonpos
        for idx, count in other._counts.items():
            self._counts[idx] = self._counts.get(idx, 0) + count

    # -- reading -----------------------------------------------------------

    @property
    def mean(self) -> float:
        """Exact sample mean (0.0 when empty)."""
        return self.total / self.n if self.n else 0.0

    def percentile(self, q: float) -> float:
        """Value at percentile ``q`` (0..100), bucket-resolution accurate."""
        if not (0.0 <= q <= 100.0):
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.n == 0:
            return 0.0
        target = max(1, math.ceil(self.n * q / 100.0))
        cum = self._nonpos
        if target <= cum:
            # all non-positive samples report the true minimum
            return self.min
        for idx in sorted(self._counts):
            cum += self._counts[idx]
            if cum >= target:
                mid = bucket_mid(idx)
                return min(max(mid, self.min), self.max)
        return self.max  # pragma: no cover - cum == n always hits above

    @property
    def p50(self) -> float:
        """Median estimate."""
        return self.percentile(50.0)

    @property
    def p90(self) -> float:
        """90th-percentile estimate."""
        return self.percentile(90.0)

    @property
    def p99(self) -> float:
        """99th-percentile estimate."""
        return self.percentile(99.0)

    @property
    def p999(self) -> float:
        """99.9th-percentile estimate (the SLO-reporting tail)."""
        return self.percentile(99.9)

    def percentiles(self) -> Dict[str, float]:
        """The standard latency-reporting quantile set, max included.

        SLO dashboards read the deep tail: p99 alone hides the worst
        0.1% of requests, so the set runs p50/p90/p99/p99.9 plus the
        exact observed maximum.
        """
        return {
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "p999": self.p999,
            "max": self.max if self.n else 0.0,
        }

    def buckets(self) -> Iterator[Tuple[float, float, int]]:
        """Yield ``(lo, hi, count)`` for every occupied bucket, ascending."""
        for idx in sorted(self._counts):
            lo, hi = bucket_bounds(idx)
            yield lo, hi, self._counts[idx]

    def to_dict(self, include_buckets: bool = False) -> Dict[str, Any]:
        """JSON-ready summary (the metrics-snapshot accumulator schema)."""
        out: Dict[str, Any] = {
            "n": self.n,
            "mean": self.mean,
            "min": self.min if self.n else 0.0,
            "max": self.max if self.n else 0.0,
            "total": self.total,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "p999": self.p999,
        }
        if include_buckets:
            rows: List[List[float]] = [[lo, hi, c] for lo, hi, c in self.buckets()]
            if self._nonpos:
                rows.insert(0, [0.0, 0.0, self._nonpos])
            out["buckets"] = rows
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return (f"Histogram({self.name}: n={self.n} p50={self.p50:.2f} "
                f"p99={self.p99:.2f})")
