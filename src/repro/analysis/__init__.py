"""Static and runtime correctness tooling.

Two halves, one goal — keeping the simulator's results trustworthy:

* :mod:`repro.analysis.lint` — a project-specific AST lint pass
  (determinism rules DET001–DET005, layering rule ARCH001, hot-path
  ``__slots__`` rule PERF001), runnable as
  ``python -m repro.analysis lint [--json] PATH...``;
* :mod:`repro.analysis.sanitize` — pluggable runtime invariant
  checkers (credit conservation, queue overwrites, clsSRAM coherence
  legality, deadlock watchdog) installed via
  ``MachineConfig(sanitize=...)`` or the ``REPRO_SANITIZE`` environment
  variable.
"""

from repro.analysis.sanitize import SANITIZER_NAMES, SanitizerLayer, resolve_sanitizers

__all__ = [
    "SANITIZER_NAMES",
    "SanitizerLayer",
    "resolve_sanitizers",
]
