"""Project-specific AST lint pass: determinism + architecture rules.

The simulator's results are only trustworthy if every run is
bit-deterministic and the layering that makes the NIU model auditable
stays intact.  Generic linters cannot check either, so this pass
encodes the project's own rules over the Python AST:

======== ==============================================================
rule     meaning
======== ==============================================================
DET001   wall-clock call (``time.time``/``perf_counter``/
         ``datetime.now``...) outside ``sim/`` and ``bench/harness.py``
DET002   module-level (unseeded) ``random`` use — construct a seeded
         ``random.Random(seed)`` instead
DET003   iteration over a ``set``/``frozenset`` value in simulation
         code (nondeterministic order; ``sorted(s)`` is fine)
DET004   ``id()``-derived ordering or dict keys (address-dependent,
         differs run to run)
DET005   ``heappush`` of a ``(priority, ...)`` tuple with no sequence
         tie-breaker — equal priorities then compare the payloads,
         which is either a crash (unorderable types) or an
         address-dependent order; only ``sim/engine.py`` (whose heap
         discipline the schedule-policy hook audits) is exempt
ARCH001  layering violation: ``sim/`` imports only ``sim``/``common``;
         ``net/`` never imports ``niu``/``firmware``; ``mem/`` never
         imports ``mp``/``shm``
ARCH002  ``examples/``/``benchmarks/`` import of a repro internal —
         user-facing code sticks to the curated public surface
         (``repro``, ``repro.bench``, the programming layers); a
         deliberate internals poke needs a justifying suppression
PERF001  class registered as hot-path (engine events, packets, queue
         state...) missing ``__slots__``
======== ==============================================================

Any violation can be suppressed on its line with a justifying comment::

    for x in legal_states:  # repro: allow DET003 -- order-independent sum

Run as ``python -m repro.analysis lint [--json] PATH...``; exit status
is nonzero when violations remain, so CI can gate on it.
"""

from __future__ import annotations

import ast
import json
import os
import re
import sys
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Set, Tuple

#: rule id -> one-line description (the JSON report embeds this table).
RULES: Dict[str, str] = {
    "DET001": "wall-clock call outside sim/ and bench/harness.py",
    "DET002": "module-level (unseeded) random use",
    "DET003": "iteration over a set/frozenset (nondeterministic order)",
    "DET004": "id()-derived ordering or dict key",
    "DET005": "heap push of a priority tuple without a seq tie-breaker",
    "ARCH001": "import violates the layering rules",
    "ARCH002": "examples/benchmarks must import the public surface only",
    "PERF001": "hot-path class must declare __slots__",
}

#: inline suppression: ``# repro: allow DET003`` (comma-separate several).
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow\s+([A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)"
)

#: wall-clock functions in the ``time`` module (DET001).
_WALL_TIME_FNS = frozenset({
    "time", "time_ns",
    "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns",
    "process_time", "process_time_ns",
})
#: wall-clock constructors on datetime/date classes (DET001).
_WALL_DATETIME_FNS = frozenset({"now", "utcnow", "today"})

#: module-level functions of ``random`` (DET002); anything that is not
#: the seedable ``Random`` class shares the hidden global generator.
_RANDOM_OK = frozenset({"Random"})

#: set methods that return another set (DET003 value tracking).
_SET_RETURNING_METHODS = frozenset({
    "difference", "union", "intersection", "symmetric_difference", "copy",
})
#: conversions whose output order mirrors set iteration order (DET003).
_ORDER_SENSITIVE_CONVERTERS = frozenset({"list", "tuple", "iter", "enumerate"})

#: layering constraints: subpackage -> (mode, subpackages).  ``allow``
#: lists the only repro subpackages the layer may import; ``deny`` lists
#: the ones it must not.  (``common`` intentionally has no rule: it
#: hosts the config tree, which references the fault plan type.)
_LAYER_RULES: Dict[str, Tuple[str, Set[str]]] = {
    "sim": ("allow", {"sim", "common"}),
    "net": ("deny", {"niu", "firmware"}),
    "mem": ("deny", {"mp", "shm"}),
    # the protocol core is pure tables + bookkeeping: it may not grow a
    # dependency on the simulator, firmware, or fabric (bus is allowed —
    # the snoop table is keyed by bus-op type)
    "coherence": ("allow", {"coherence", "common", "bus"}),
    # user-level shared memory speaks to firmware through messages, not
    # by reaching into the fabric
    "shm": ("deny", {"net"}),
    # the serving applications are clients of the messaging layers; they
    # must not reach into the fabric either
    "traffic": ("deny", {"net"}),
}

#: the curated public surface (ARCH002): what user-facing code —
#: ``examples/`` and ``benchmarks/`` — may import.  Prefixes bless a
#: whole subtree (the programming layers); exact entries bless a single
#: module.  Everything else (``sim``, ``net``, ``niu``, ``firmware``,
#: ``mem``, machine internals) is simulator guts: an example that needs
#: one documents why with ``# repro: allow ARCH002 -- reason``.
_PUBLIC_PREFIXES: Tuple[str, ...] = (
    "repro.analysis", "repro.bench", "repro.coherence", "repro.common",
    "repro.explore", "repro.faults", "repro.lib", "repro.mp", "repro.obs",
    "repro.shard", "repro.shm", "repro.sync", "repro.traffic",
)
_PUBLIC_EXACT: Tuple[str, ...] = (
    "repro", "repro.core.blocktransfer", "repro.core.inspect",
)

#: hot-path class registry (PERF001): repro-relative module -> classes
#: that are allocated or touched on the simulator's inner loops.
HOT_CLASSES: Dict[Tuple[str, ...], Set[str]] = {
    ("sim", "engine.py"): {"Engine", "SchedulePolicy"},
    ("explore", "policy.py"): {"GuidedPolicy"},
    ("sim", "events.py"): {"Event", "Timeout"},
    ("sim", "process.py"): {"Process"},
    ("sim", "store.py"): {"Store"},
    ("sim", "resource.py"): {"Resource", "PriorityResource"},
    ("net", "packet.py"): {"Packet"},
    ("net", "combine.py"): {"SyncTag", "GroupProgram", "_Slot", "CombineStage"},
    ("sync", "api.py"): {
        "_NodeClient", "SyncFabric", "SyncGroup", "Counter", "Barrier",
        "TasLock", "TicketLock", "McsLock", "WorkDeque",
    },
    ("sync", "firmware.py"): {"SyncFwState", "_CentralOp"},
    ("sync", "plan.py"): {"SwitchTreePlan"},
    ("niu", "queues.py"): {"QueueState"},
    ("niu", "clssram.py"): {"ClsSram"},
    ("coherence", "directory.py"): {"DirectoryController", "DirEntry"},
    ("faults", "inject.py"): {"LinkFaultState"},
    ("firmware", "reliable.py"): {"_Flow"},
    ("traffic", "firmware.py"): {"TrafficState"},
    ("traffic", "slo.py"): {"SloRecorder"},
}


class Violation(NamedTuple):
    """One lint finding."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def classify(relpath: str) -> Tuple[str, Tuple[str, ...]]:
    """Split a path into (category, repro-relative parts).

    Files under a ``repro`` package directory are category ``"repro"``
    with their package-relative parts (``("net", "link.py")``);
    everything else (tests, benchmarks, examples, scripts) is
    ``"other"`` with its path parts.
    """
    parts = os.path.normpath(relpath).replace(os.sep, "/").split("/")
    if "repro" in parts:
        i = parts.index("repro")
        return "repro", tuple(parts[i + 1:])
    return "other", tuple(parts)


def _suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rule ids suppressed on that line."""
    out: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(line)
        if m:
            out[lineno] = {r.strip() for r in m.group(1).split(",")}
    return out


def _parent_map(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _type_checking_linenos(tree: ast.AST) -> Set[int]:
    """Line numbers inside ``if TYPE_CHECKING:`` blocks (ARCH001 skips
    them: typing-only references are erased at runtime)."""
    lines: Set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        name = ""
        if isinstance(test, ast.Name):
            name = test.id
        elif isinstance(test, ast.Attribute):
            name = test.attr
        if name == "TYPE_CHECKING":
            for sub in node.body:
                for inner in ast.walk(sub):
                    if hasattr(inner, "lineno"):
                        lines.add(inner.lineno)
    return lines


# ----------------------------------------------------------------------
# DET001 — wall clock
# ----------------------------------------------------------------------


def _check_wall_clock(tree: ast.AST, path: str) -> List[Violation]:
    time_aliases: Set[str] = set()
    datetime_mod_aliases: Set[str] = set()
    datetime_cls_aliases: Set[str] = set()
    direct_wall: Set[str] = set()
    out: List[Violation] = []

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    time_aliases.add(alias.asname or "time")
                elif alias.name == "datetime":
                    datetime_mod_aliases.add(alias.asname or "datetime")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "time":
                for alias in node.names:
                    if alias.name in _WALL_TIME_FNS:
                        direct_wall.add(alias.asname or alias.name)
                        out.append(Violation(
                            "DET001", path, node.lineno, node.col_offset,
                            f"imports wall-clock time.{alias.name}",
                        ))
            elif node.module == "datetime":
                for alias in node.names:
                    if alias.name in ("datetime", "date"):
                        datetime_cls_aliases.add(alias.asname or alias.name)

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id in direct_wall:
            out.append(Violation(
                "DET001", path, node.lineno, node.col_offset,
                f"wall-clock call {func.id}()",
            ))
        elif isinstance(func, ast.Attribute):
            base = func.value
            if (isinstance(base, ast.Name) and base.id in time_aliases
                    and func.attr in _WALL_TIME_FNS):
                out.append(Violation(
                    "DET001", path, node.lineno, node.col_offset,
                    f"wall-clock call {base.id}.{func.attr}()",
                ))
            elif func.attr in _WALL_DATETIME_FNS:
                if isinstance(base, ast.Name) and base.id in datetime_cls_aliases:
                    out.append(Violation(
                        "DET001", path, node.lineno, node.col_offset,
                        f"wall-clock call {base.id}.{func.attr}()",
                    ))
                elif (isinstance(base, ast.Attribute)
                        and base.attr in ("datetime", "date")
                        and isinstance(base.value, ast.Name)
                        and base.value.id in datetime_mod_aliases):
                    out.append(Violation(
                        "DET001", path, node.lineno, node.col_offset,
                        f"wall-clock call datetime.{base.attr}.{func.attr}()",
                    ))
    return out


# ----------------------------------------------------------------------
# DET002 — module-level random
# ----------------------------------------------------------------------


def _check_global_random(tree: ast.AST, path: str) -> List[Violation]:
    random_aliases: Set[str] = set()
    out: List[Violation] = []
    seen: Set[Tuple[int, int]] = set()

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    random_aliases.add(alias.asname or "random")
        elif isinstance(node, ast.ImportFrom) and node.module == "random":
            for alias in node.names:
                if alias.name not in _RANDOM_OK:
                    out.append(Violation(
                        "DET002", path, node.lineno, node.col_offset,
                        f"imports module-level random.{alias.name}; "
                        "use a seeded random.Random instance",
                    ))

    for node in ast.walk(tree):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id in random_aliases
                and node.attr not in _RANDOM_OK):
            key = (node.lineno, node.col_offset)
            if key not in seen:
                seen.add(key)
                out.append(Violation(
                    "DET002", path, node.lineno, node.col_offset,
                    f"module-level random.{node.attr}; "
                    "use a seeded random.Random instance",
                ))
    return out


# ----------------------------------------------------------------------
# DET003 — set iteration
# ----------------------------------------------------------------------

_SET_ANNOTATION_RE = re.compile(
    r"\b(set|frozenset|Set|FrozenSet|MutableSet|AbstractSet)\b"
)


def _is_set_annotation(annotation: ast.AST) -> bool:
    try:
        text = ast.unparse(annotation)
    except Exception:  # pragma: no cover - malformed annotation
        return False
    return bool(_SET_ANNOTATION_RE.search(text))


class _SetScanner:
    """Two-pass set-typed-value tracker, scoped per function."""

    def __init__(self, tree: ast.Module, path: str) -> None:
        self.tree = tree
        self.path = path
        #: attribute names known set-typed anywhere in the module
        #: (``self.sharers = set()``, ``sharers: Set[int]`` fields).
        self.set_attrs: Set[str] = set()
        self.module_names: Set[str] = set()
        self.out: List[Violation] = []

    def run(self) -> List[Violation]:
        self._collect_attrs(self.tree)
        self.module_names = self._collect_names(self.tree)
        self._check_scope(self.tree, self.module_names)
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                local = self._collect_names(node)
                self._check_scope(node, self.module_names | local)
        return self.out

    # -- collection --------------------------------------------------------

    def _collect_attrs(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Attribute) and self._is_set_expr(
                            node.value, set()):
                        self.set_attrs.add(target.attr)
            elif isinstance(node, ast.AnnAssign):
                if (isinstance(node.target, ast.Attribute)
                        and _is_set_annotation(node.annotation)):
                    self.set_attrs.add(node.target.attr)
                elif (isinstance(node.target, ast.Name)
                        and _is_set_annotation(node.annotation)
                        and self._in_class_body(node)):
                    # annotated class attribute / dataclass field
                    self.set_attrs.add(node.target.id)

    def _in_class_body(self, node: ast.AST) -> bool:
        # cheap approximation: an AnnAssign Name target at class scope is
        # listed in some ClassDef body
        for cls in ast.walk(self.tree):
            if isinstance(cls, ast.ClassDef) and node in cls.body:
                return True
        return False

    def _iter_scope(self, scope: ast.AST) -> Iterable[ast.AST]:
        """Walk a scope without descending into nested functions."""
        body = scope.body if hasattr(scope, "body") else []
        stack = list(body)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # a nested scope checks itself
            stack.extend(ast.iter_child_nodes(node))

    def _collect_names(self, scope: ast.AST) -> Set[str]:
        names: Set[str] = set()
        # two sweeps so chained assignment (a = b | c after b = set())
        # converges within a scope
        for _ in range(2):
            for node in self._iter_scope(scope):
                if isinstance(node, ast.Assign) and self._is_set_expr(
                        node.value, names):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
                elif (isinstance(node, ast.AnnAssign)
                        and isinstance(node.target, ast.Name)
                        and _is_set_annotation(node.annotation)):
                    names.add(node.target.id)
        return names

    # -- the predicate ------------------------------------------------------

    def _is_set_expr(self, node: ast.AST, names: Set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if (isinstance(func, ast.Attribute)
                    and func.attr in _SET_RETURNING_METHODS
                    and self._is_set_expr(func.value, names)):
                return True
            return False
        if isinstance(node, ast.Name):
            return node.id in names
        if isinstance(node, ast.Attribute):
            return node.attr in self.set_attrs
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Sub, ast.BitOr, ast.BitAnd, ast.BitXor)):
            return (self._is_set_expr(node.left, names)
                    or self._is_set_expr(node.right, names))
        return False

    # -- checking -----------------------------------------------------------

    def _flag(self, node: ast.AST, what: str) -> None:
        self.out.append(Violation(
            "DET003", self.path, node.lineno, node.col_offset,
            f"{what} iterates a set/frozenset (nondeterministic order); "
            "sort it first",
        ))

    def _check_scope(self, scope: ast.AST, names: Set[str]) -> None:
        for node in self._iter_scope(scope):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if self._is_set_expr(node.iter, names):
                    self._flag(node, "for loop")
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for gen in node.generators:
                    if self._is_set_expr(gen.iter, names):
                        self._flag(node, "comprehension")
            elif isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Name)
                        and func.id in _ORDER_SENSITIVE_CONVERTERS
                        and node.args
                        and self._is_set_expr(node.args[0], names)):
                    self._flag(node, f"{func.id}()")


def _check_set_iteration(tree: ast.Module, path: str) -> List[Violation]:
    return _SetScanner(tree, path).run()


# ----------------------------------------------------------------------
# DET004 — id()-derived order
# ----------------------------------------------------------------------

_ORDERING_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)


def _check_id_ordering(tree: ast.AST, path: str) -> List[Violation]:
    parents = _parent_map(tree)
    out: List[Violation] = []

    def flag(node: ast.AST, why: str) -> None:
        out.append(Violation(
            "DET004", path, node.lineno, node.col_offset,
            f"id() used as {why} (address-derived, varies across runs)",
        ))

    for node in ast.walk(tree):
        # sorted(xs, key=id) / list.sort(key=id)
        if (isinstance(node, ast.keyword) and node.arg == "key"
                and isinstance(node.value, ast.Name)
                and node.value.id == "id"):
            flag(node.value, "a sort key")
            continue
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id"):
            continue
        child: ast.AST = node
        parent = parents.get(child)
        # tuples are transparent: (id(a), x) as a dict key or subscript
        while isinstance(parent, ast.Tuple):
            child, parent = parent, parents.get(parent)
        if parent is None:
            continue
        if isinstance(parent, ast.Dict) and child in parent.keys:
            flag(node, "a dict key")
        elif isinstance(parent, ast.Subscript) and child is parent.slice:
            flag(node, "a subscript key")
        elif isinstance(parent, ast.Compare) and any(
                isinstance(op, _ORDERING_OPS) for op in parent.ops):
            flag(node, "an ordering comparison")
        elif (isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id in ("sorted", "min", "max")
                and child in parent.args):
            flag(node, f"a {parent.func.id}() argument")
        else:
            # inside a key= lambda body?
            walk = parent
            while walk is not None:
                if isinstance(walk, ast.keyword) and walk.arg == "key":
                    flag(node, "a sort key")
                    break
                walk = parents.get(walk)
    return out


# ----------------------------------------------------------------------
# DET005 — heap entries need a seq tie-breaker
# ----------------------------------------------------------------------

_HEAP_PUSH_FNS = frozenset({"heappush", "heappushpop"})


def _mentions_seq(node: ast.AST) -> bool:
    """Whether an expression references a sequence-counter identifier."""
    for sub in ast.walk(node):
        ident = None
        if isinstance(sub, ast.Name):
            ident = sub.id
        elif isinstance(sub, ast.Attribute):
            ident = sub.attr
        if ident is not None and "seq" in ident.lower():
            return True
    return False


def _check_heap_ties(tree: ast.AST, path: str) -> List[Violation]:
    """Flag ``heappush(heap, (priority, payload...))`` with no element
    naming a sequence counter.  Ties on the priority then compare the
    payloads: a crash for unorderable types, an address-dependent order
    otherwise — either way the heap's pop order is not a deterministic
    function of the push history."""
    out: List[Violation] = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call) and len(node.args) >= 2):
            continue
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        else:
            continue
        if name not in _HEAP_PUSH_FNS:
            continue
        entry = node.args[1]
        if not isinstance(entry, ast.Tuple) or len(entry.elts) < 2:
            continue
        if any(_mentions_seq(el) for el in entry.elts):
            continue
        out.append(Violation(
            "DET005", path, node.lineno, node.col_offset,
            "heap entry tuple has no seq tie-breaker: equal priorities "
            "fall through to comparing the payloads (crash or "
            "address-dependent order); add a monotonic counter after "
            "the priority",
        ))
    return out


# ----------------------------------------------------------------------
# ARCH001 — layering
# ----------------------------------------------------------------------


def _check_layering(tree: ast.AST, path: str,
                    module_parts: Tuple[str, ...]) -> List[Violation]:
    layer = module_parts[0] if module_parts else ""
    rule = _LAYER_RULES.get(layer)
    if rule is None:
        return []
    mode, subpackages = rule
    skip_lines = _type_checking_linenos(tree)
    out: List[Violation] = []

    def check(target: str, node: ast.AST) -> None:
        if node.lineno in skip_lines:
            return
        parts = target.split(".")
        if parts[0] != "repro":
            return
        sub = parts[1] if len(parts) > 1 else None
        if sub is None:
            bad, why = True, "imports the repro package root"
        elif mode == "allow":
            bad = sub not in subpackages
            why = (f"{layer}/ may only import "
                   f"{{{', '.join(sorted(subpackages))}}}, not repro.{sub}")
        else:
            bad = sub in subpackages
            why = f"{layer}/ must not import repro.{sub}"
        if bad:
            out.append(Violation(
                "ARCH001", path, node.lineno, node.col_offset, why,
            ))

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                check(alias.name, node)
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            check(node.module, node)
    return out


# ----------------------------------------------------------------------
# ARCH002 — examples/benchmarks stay on the public surface
# ----------------------------------------------------------------------


def _is_public_module(target: str) -> bool:
    if target in _PUBLIC_EXACT:
        return True
    return any(target == p or target.startswith(p + ".")
               for p in _PUBLIC_PREFIXES)


def _check_public_surface(tree: ast.AST, path: str) -> List[Violation]:
    out: List[Violation] = []

    def check(target: str, node: ast.AST) -> None:
        if target.split(".")[0] != "repro":
            return
        if not _is_public_module(target):
            out.append(Violation(
                "ARCH002", path, node.lineno, node.col_offset,
                f"{target} is a simulator internal, not public surface; "
                "use the curated API or justify with a suppression",
            ))

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                check(alias.name, node)
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            check(node.module, node)
    return out


# ----------------------------------------------------------------------
# PERF001 — hot classes need __slots__
# ----------------------------------------------------------------------


def _check_slots(tree: ast.AST, path: str,
                 module_parts: Tuple[str, ...]) -> List[Violation]:
    wanted = HOT_CLASSES.get(module_parts)
    if not wanted:
        return []
    out: List[Violation] = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.ClassDef) and node.name in wanted):
            continue
        has_slots = any(
            (isinstance(stmt, ast.Assign)
             and any(isinstance(t, ast.Name) and t.id == "__slots__"
                     for t in stmt.targets))
            or (isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == "__slots__")
            for stmt in node.body
        )
        if not has_slots:
            out.append(Violation(
                "PERF001", path, node.lineno, node.col_offset,
                f"hot-path class {node.name} must declare __slots__",
            ))
    return out


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------


def check_source(source: str, relpath: str) -> List[Violation]:
    """Lint one file's source; returns unsuppressed violations."""
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        return [Violation("PARSE", relpath, exc.lineno or 1, 0,
                          f"syntax error: {exc.msg}")]
    category, module_parts = classify(relpath)
    in_repro = category == "repro"
    violations: List[Violation] = []

    if in_repro and module_parts[0:1] != ("sim",) \
            and module_parts != ("bench", "harness.py"):
        violations += _check_wall_clock(tree, relpath)
    if in_repro or module_parts[0:1] in (("benchmarks",), ("examples",)):
        violations += _check_global_random(tree, relpath)
    if module_parts[0:1] in (("benchmarks",), ("examples",)):
        violations += _check_public_surface(tree, relpath)
    if in_repro:
        violations += _check_set_iteration(tree, relpath)
        violations += _check_layering(tree, relpath, module_parts)
        violations += _check_slots(tree, relpath, module_parts)
    violations += _check_id_ordering(tree, relpath)
    if module_parts != ("sim", "engine.py"):
        violations += _check_heap_ties(tree, relpath)

    suppressed = _suppressions(source)
    kept = [v for v in violations
            if v.rule not in suppressed.get(v.line, frozenset())]
    kept.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return kept


def iter_py_files(paths: Sequence[str]) -> Iterable[str]:
    """Expand files/directories into .py files, deterministically."""
    skip_dirs = {"__pycache__", ".git", "results", "build", "dist"}
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in skip_dirs and not d.endswith(".egg-info")
            )
            for fn in sorted(filenames):
                if fn.endswith(".py"):
                    yield os.path.join(dirpath, fn)


def lint_paths(paths: Sequence[str]) -> Tuple[List[Violation], int]:
    """Lint every .py file under ``paths``; returns (violations, n_files)."""
    violations: List[Violation] = []
    n_files = 0
    for path in iter_py_files(paths):
        n_files += 1
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
        violations += check_source(source, os.path.normpath(path))
    return violations, n_files


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="StarT-Voyager project lint: determinism and "
                    "architecture rules (see DESIGN.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    lint_p = sub.add_parser("lint", help="run the AST lint pass")
    lint_p.add_argument("paths", nargs="+", help="files or directories")
    lint_p.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable report on stdout")
    args = parser.parse_args(argv)

    violations, n_files = lint_paths(args.paths)
    if args.as_json:
        print(json.dumps({
            "schema": "startv.lint",
            "schema_version": 1,
            "checked_files": n_files,
            "rules": RULES,
            "violations": [v._asdict() for v in violations],
        }, indent=2, sort_keys=True))
    else:
        for v in violations:
            print(v.render())
        print(f"{len(violations)} violation(s) in {n_files} file(s) checked.",
              file=sys.stderr)
    return 1 if violations else 0
