"""Runtime invariant checkers ("sanitizers") for the simulated machine.

Where :mod:`repro.analysis.lint` checks the *source*, this module checks
the *running machine*: pluggable engine checkers that watch protocol
state as the simulation executes and raise
:class:`~repro.common.errors.SanitizerError` the moment an invariant
breaks — at the offending transition, not at a corrupted result three
experiments later.

=========== ==========================================================
name        invariant
=========== ==========================================================
credit      per-link, per-priority flow-control credits are conserved:
            never returned twice, and every credit drained from the
            pool is accounted for (in flight or buffered) whenever the
            event queue fully drains — including the fault-injection
            drop path, which must hand its credit back
queue       no SRAM write lands on an unconsumed hardware-queue entry
            (producer overrun corrupting live messages), and reliable
            go-back-N flows keep their windows legal: at most
            ``window`` unacked segments with consecutive sequence
            numbers, and no received DATA sequence beyond
            ``expected + window``
coherence   every observed MSI transition is machine-checked against
            the protocol tables in :mod:`repro.coherence.protocol`:
            directory decisions must match a DIR_TABLE rule replayed
            over an independent mirror (single owner, no stale
            re-grant, invalidation-ack conservation, no BUSY entries
            or queued waiters left at drain); cause-tagged clsSRAM
            writes must sit inside their CACHE_TABLE envelope;
            hardware (the aBIU table walk) may only mark lines
            PENDING from INVALID or RO; and no data-carrying fill
            *downgrades* an RW line — the owner holds the only
            up-to-date copy, so such a fill is a re-granted duplicate
            request overwriting modified data with stale home data
deadlock    when the event queue drains while non-daemon processes are
            still blocked, fail with a wait-for graph instead of
            silently returning
combine     switch-resident combining decombines *exactly once*: every
            flushed combining slot is answered by exactly one reply
            per recorded contribution (no duplicates, no leftovers),
            no reply arrives for a token nobody is waiting on, and no
            combining stage holds open slots or unreturned decombine
            records when the event queue drains
=========== ==========================================================

Enable via ``MachineConfig(sanitize=("credit", "queue"))``, the string
``"all"``, or the ``REPRO_SANITIZE`` environment variable (same syntax;
merged with the config).  An unsanitized machine installs nothing: the
hooks this module attaches to are ``None``-guarded attributes, so the
off path costs one attribute test on a handful of rare operations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.common.errors import ConfigError, DeadlockError, SanitizerError
from repro.mem.backing import ByteBacking
from repro.niu.clssram import CLS_INVALID, CLS_PENDING, CLS_RO, CLS_RW
from repro.sim.store import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import StarTVoyager
    from repro.firmware.reliable import _Flow
    from repro.net.link import Link
    from repro.niu.clssram import ClsSram
    from repro.niu.queues import QueueState
    from repro.niu.sp import ServiceProcessor
    from repro.sim.process import Process

#: installable checkers, in install order.
SANITIZER_NAMES: Tuple[str, ...] = ("credit", "queue", "coherence",
                                    "deadlock", "combine")


def _parse(spec: Union[str, Iterable[str], None]) -> Tuple[str, ...]:
    if not spec:
        return ()
    if isinstance(spec, str):
        spec = spec.split(",")
    chosen = set()
    for raw in spec:
        name = raw.strip().lower()
        if not name:
            continue
        if name == "all":
            chosen.update(SANITIZER_NAMES)
        elif name in SANITIZER_NAMES:
            chosen.add(name)
        else:
            raise ConfigError(
                f"unknown sanitizer {name!r}; choose from "
                f"{', '.join(SANITIZER_NAMES)} or 'all'"
            )
    return tuple(n for n in SANITIZER_NAMES if n in chosen)


def resolve_sanitizers(
    spec: Union[str, Iterable[str], None] = (),
    env: Optional[str] = None,
) -> Tuple[str, ...]:
    """Union of the config spec and the ``REPRO_SANITIZE`` environment
    variable, normalized to canonical order.  ``env`` overrides the real
    environment (testing)."""
    if env is None:
        import os

        env = os.environ.get("REPRO_SANITIZE", "")
    chosen = set(_parse(spec)) | set(_parse(env))
    return tuple(n for n in SANITIZER_NAMES if n in chosen)


# ----------------------------------------------------------------------
# credit conservation
# ----------------------------------------------------------------------


class _CreditLane:
    """Conservation ledger for one (link, priority) flow-control lane."""

    __slots__ = ("name", "capacity", "buffer_store", "held", "acquires", "returns")

    def __init__(self, name: str, capacity: int, buffer_store: Store) -> None:
        self.name = name
        self.capacity = capacity
        self.buffer_store = buffer_store
        #: credits currently out of the pool (in flight or buffered).
        self.held = 0
        self.acquires = 0
        self.returns = 0

    def on_acquire(self) -> None:
        self.held += 1
        self.acquires += 1

    def on_return(self) -> None:
        self.held -= 1
        self.returns += 1
        if self.held < 0:
            raise SanitizerError(
                f"credit double-return on lane {self.name}: more credits "
                f"returned ({self.returns}) than acquired ({self.acquires})"
            )

    def on_drain(self) -> None:
        # With the event queue fully drained nothing is in flight, so
        # every outstanding credit must correspond to a packet still
        # sitting unconsumed in the receive buffer.
        buffered = len(self.buffer_store)
        if self.held != buffered:
            raise SanitizerError(
                f"credit leak on lane {self.name}: {self.held} credit(s) "
                f"outstanding but {buffered} packet(s) buffered at drain "
                f"(capacity {self.capacity}, {self.acquires} acquired / "
                f"{self.returns} returned)"
            )


class _TapCreditStore(Store):
    """Credit :class:`Store` that notifies its lane on every movement."""

    __slots__ = ("_san_lane",)

    def _accept(self, item: Any) -> None:
        # A put that hands off directly to a blocked sender re-issues the
        # credit in the same step: return + acquire, net zero held.
        handoff = any(not ev.triggered for ev in self._getters)
        super()._accept(item)
        if not handoff:
            self._san_lane.on_return()

    def _pop(self) -> Any:
        item = super()._pop()
        self._san_lane.on_acquire()
        return item


class CreditSanitizer:
    """Per-link flow-control credit conservation."""

    name = "credit"

    def __init__(self, machine: "StarTVoyager") -> None:
        self.machine = machine
        self.lanes: List[_CreditLane] = []

    def install(self) -> None:
        network = self.machine.network
        if network is None:
            return
        for link in network.links:
            # a link cut at a shard boundary splits credits (tx shard)
            # from buffers (rx shard); the conservation lane needs both
            # sides, so half-links are not tapped.
            if getattr(link, "is_cut_half", False):
                continue
            self._tap_link(link)

    def _tap_link(self, link: "Link") -> None:
        for priority, credits in enumerate(link._credits):
            lane = _CreditLane(
                f"{link.name}.p{priority}",
                credits.capacity,
                link._buffers[priority],
            )
            tap = _TapCreditStore(credits.engine, credits.capacity, credits.name)
            tap._items.extend(credits._items)
            tap._getters.extend(credits._getters)
            tap._putters.extend(credits._putters)
            tap.total_put = credits.total_put
            tap.total_got = credits.total_got
            tap.peak_depth = credits.peak_depth
            tap._san_lane = lane
            link._credits[priority] = tap
            self.lanes.append(lane)

    def on_drain(self) -> None:
        for lane in self.lanes:
            lane.on_drain()

    def reset(self) -> None:
        """Zero the activity counters; ``held`` is live machine state
        (credits still out of the pool) and must survive."""
        for lane in self.lanes:
            lane.acquires = 0
            lane.returns = 0

    def report(self) -> Dict[str, int]:
        return {
            "lanes": len(self.lanes),
            "acquires": sum(lane.acquires for lane in self.lanes),
            "returns": sum(lane.returns for lane in self.lanes),
        }


# ----------------------------------------------------------------------
# queue overwrites + reliable-protocol windows
# ----------------------------------------------------------------------


class _TapBacking(ByteBacking):
    """SRAM backing that routes every write past a bank guard first."""

    __slots__ = ("_san_guard",)

    def write(self, offset: int, data: bytes) -> None:
        self._san_guard.check(offset, len(data))
        super().write(offset, data)

    def write_parts(self, offset: int, parts: Iterable[bytes]) -> int:
        parts = tuple(parts)
        self._san_guard.check(offset, sum(len(p) for p in parts))
        return super().write_parts(offset, parts)

    def fill(self, offset: int, length: int, value: int = 0) -> None:
        self._san_guard.check(offset, length)
        super().fill(offset, length, value)


class _BankGuard:
    """Watches one SRAM bank for writes into unconsumed queue entries."""

    __slots__ = ("sanitizer", "ctrl", "bank")

    def __init__(self, sanitizer: "QueueSanitizer", ctrl: Any, bank: int) -> None:
        self.sanitizer = sanitizer
        self.ctrl = ctrl
        self.bank = bank

    def check(self, offset: int, length: int) -> None:
        if length <= 0:
            return
        self.sanitizer.writes_checked += 1
        for q in self.ctrl.tx_queues:
            if q.bank == self.bank:
                self._check_queue(q, offset, length)
        for q in self.ctrl.rx_queues:
            if q.bank == self.bank:
                self._check_queue(q, offset, length)

    def _check_queue(self, q: "QueueState", offset: int, length: int) -> None:
        consumer, producer = q.consumer, q.producer
        if consumer == producer:
            return
        end = offset + length
        span_base = q.base
        span_end = q.base + q.depth * q.entry_bytes
        if end <= span_base or offset >= span_end:
            return
        for entry in range(consumer, producer):
            slot = q.slot_offset(entry)
            if offset < slot + q.entry_bytes and end > slot:
                raise SanitizerError(
                    f"{self.ctrl.name}: SRAM write [{offset:#x}, {end:#x}) "
                    f"overwrites unconsumed entry {entry} of "
                    f"{q.kind.value}{q.index} (slot [{slot:#x}, "
                    f"{slot + q.entry_bytes:#x}), occupancy {q.occupancy})"
                )


class QueueSanitizer:
    """Unconsumed-slot overwrites and reliable-window legality."""

    name = "queue"

    def __init__(self, machine: "StarTVoyager") -> None:
        self.machine = machine
        self.writes_checked = 0
        self.rel_tx_checked = 0
        self.rel_rx_checked = 0

    def install(self) -> None:
        for node in self.machine.nodes:
            if node is None:  # sharded view: not every slot is local
                continue
            ctrl = node.ctrl
            for bank, sram in enumerate((ctrl.asram, ctrl.ssram)):
                guard = _BankGuard(self, ctrl, bank)
                sram.backing = self._tap(sram.backing, guard)
            node.sp.sanitizer = self

    @staticmethod
    def _tap(backing: ByteBacking, guard: _BankGuard) -> _TapBacking:
        # Shares the live bytearray/memoryview: views handed out earlier
        # keep aliasing the same storage, only the write path changes.
        tap = _TapBacking.__new__(_TapBacking)
        tap.size = backing.size
        tap.name = backing.name
        tap._data = backing._data
        tap._mv = backing._mv
        tap._san_guard = guard
        return tap

    # -- reliable-protocol hooks (called from firmware/reliable.py) --------

    def on_rel_tx(self, sp: "ServiceProcessor", flow: "_Flow") -> None:
        """After a segment enters the window: bounded and consecutive."""
        from repro.firmware.reliable import SEQ_MOD

        self.rel_tx_checked += 1
        window = sp.ctrl.config.reliability.window
        pending = flow.pending
        if len(pending) > window:
            raise SanitizerError(
                f"{sp.name}: reliable flow to node {flow.dst} holds "
                f"{len(pending)} unacked segments (window {window})"
            )
        first = pending[0][0]
        for i, (seq, _q, _payload) in enumerate(pending):
            if seq != (first + i) % SEQ_MOD:
                raise SanitizerError(
                    f"{sp.name}: reliable flow to node {flow.dst} window "
                    f"is not consecutive: entry {i} has seq {seq}, "
                    f"expected {(first + i) % SEQ_MOD}"
                )

    def on_rel_rx(self, sp: "ServiceProcessor", src: int, seq: int,
                  expected: int) -> None:
        """A DATA arrival must sit at or behind ``expected + window``."""
        from repro.firmware.reliable import SEQ_MOD, seq_lt

        self.rel_rx_checked += 1
        window = sp.ctrl.config.reliability.window
        horizon = (expected + window) % SEQ_MOD
        if seq_lt(horizon, seq):
            raise SanitizerError(
                f"{sp.name}: reliable DATA from node {src} carries seq "
                f"{seq}, beyond the legal window [{expected}, {horizon}] "
                f"— sender violated go-back-N"
            )

    def on_drain(self) -> None:
        pass

    def reset(self) -> None:
        self.writes_checked = 0
        self.rel_tx_checked = 0
        self.rel_rx_checked = 0

    def report(self) -> Dict[str, int]:
        return {
            "writes_checked": self.writes_checked,
            "rel_tx_checked": self.rel_tx_checked,
            "rel_rx_checked": self.rel_rx_checked,
        }


# ----------------------------------------------------------------------
# MSI coherence legality (clsSRAM writes + directory decisions)
# ----------------------------------------------------------------------

#: the four S-COMA states the default protocol uses; transitions among
#: other 4-bit values belong to experimental protocols and are ignored.
_SCOMA_STATES = frozenset({CLS_INVALID, CLS_PENDING, CLS_RO, CLS_RW})

#: hardware (aBIU table walk) may only mark a fetch/upgrade in flight.
_HW_LEGAL = frozenset({
    (CLS_INVALID, CLS_PENDING),  # read/write miss -> fetch pending
    (CLS_RO, CLS_PENDING),       # write upgrade -> upgrade pending
})

#: data-carrying fills (a grant or push writing data into the frame as
#: it sets the state) must never *downgrade* an RW line.  An RW line
#: holds the only up-to-date copy; depositing data while taking write
#: permission away is the stale-grant race the home firmware's
#: duplicate-request drop exists to prevent — home data silently
#: overwriting the owner's modifications.  RW -> RW fills stay legal:
#: Approach-4/5 block transfer streams 80-byte chunks over 32-byte
#: lines, so a straddling chunk re-fills a line the previous chunk just
#: flipped RW.  Untagged (cause-less) data-free state writes are
#: outside the protocol tables (machine setup, block-transfer arming,
#: experimental protocols); cause-tagged writes are checked against
#: :data:`repro.coherence.protocol.CACHE_TABLE`.


def _state_name(state: int) -> str:
    return {CLS_INVALID: "INVALID", CLS_PENDING: "PENDING",
            CLS_RO: "RO", CLS_RW: "RW"}.get(state, f"custom({state})")


class _DirMirror:
    """Independently tracked home-side truth for one (home, line)."""

    __slots__ = ("state", "owner", "expected_acks", "waiters")

    def __init__(self) -> None:
        from repro.coherence import protocol as cp

        self.state: str = cp.HOME_VALID
        self.owner = None
        self.expected_acks = 0
        self.waiters = 0


class CoherenceSanitizer:
    """Machine-checks every observed MSI transition against the tables.

    Two vantage points, one protocol definition
    (:mod:`repro.coherence.protocol`):

    * **cache side** — every clsSRAM state write (hardware table walk or
      firmware command) must be a legal transition; cause-tagged writes
      must additionally sit inside their ``CACHE_TABLE`` envelope.
    * **directory side** — every decision a
      :class:`~repro.coherence.directory.DirectoryController` takes is
      replayed against ``DIR_TABLE`` over an *independent mirror* of
      state/owner/ack/waiter bookkeeping, enforcing: the fired
      (action, next-state) exists for the observed (state, event); at
      most one owner at a time, and ownership only moves through a
      relinquishing event from the old owner; a line is never re-granted
      to the node the mirror still records as owner (stale duplicate);
      invalidation acks are conserved (a write grant releases only after
      exactly the acks the invalidation round opened); and at drain no
      line is BUSY, owes acks, or holds queued waiters.
    """

    name = "coherence"

    def __init__(self, machine: "StarTVoyager") -> None:
        self.machine = machine
        self.hw_checked = 0
        self.fw_checked = 0
        self.cause_checked = 0
        self.dir_checked = 0
        #: (home node id, line) -> independent mirror.
        self.mirrors: Dict[Tuple[int, int], _DirMirror] = {}

    def install(self) -> None:
        for node in self.machine.nodes:
            if node is None:
                continue
            cls = node.ctrl.cls
            if cls is not None:
                cls.sanitizer = self
            scoma = node.sp.state.get("scoma")
            if scoma is not None:
                scoma.dir.sanitizer = self

    # -- cache side --------------------------------------------------------

    def on_hw_transition(self, cls: "ClsSram", line: int, old: int,
                         new: int, op: Any) -> None:
        self.hw_checked += 1
        if old == new:
            return
        if old not in _SCOMA_STATES or new not in _SCOMA_STATES:
            return
        if (old, new) not in _HW_LEGAL:
            raise SanitizerError(
                f"illegal clsSRAM hardware transition on line {line} "
                f"(addr {cls.addr_of(line):#x}): {_state_name(old)} -> "
                f"{_state_name(new)} on {op} — the aBIU may only mark "
                f"INVALID/RO lines PENDING"
            )

    def on_fw_transition(self, cls: "ClsSram", line: int, old: int,
                         new: int, fill: bool = False,
                         cause: Optional[str] = None) -> None:
        from repro.coherence.protocol import cache_transition_legal

        self.fw_checked += 1
        if old not in _SCOMA_STATES or new not in _SCOMA_STATES:
            return
        if fill and old == CLS_RW and new != CLS_RW:
            raise SanitizerError(
                f"illegal clsSRAM fill on line {line} "
                f"(addr {cls.addr_of(line):#x}): data-carrying "
                f"{_state_name(old)} -> {_state_name(new)} downgrade "
                f"would overwrite the owner's modified frame with stale "
                f"home data (re-granted duplicate request?)"
            )
        if cause is None:
            return
        self.cause_checked += 1
        try:
            legal = cache_transition_legal(cause, old, new)
        except KeyError:
            raise SanitizerError(
                f"clsSRAM write on line {line} carries unknown protocol "
                f"cause {cause!r} (not a CACHE_TABLE key — firmware bug)"
            ) from None
        if not legal:
            raise SanitizerError(
                f"illegal clsSRAM transition on line {line} "
                f"(addr {cls.addr_of(line):#x}): {_state_name(old)} -> "
                f"{_state_name(new)} is outside the {cause!r} envelope "
                f"of the protocol CACHE_TABLE"
            )

    # -- directory side ----------------------------------------------------

    def _mirror(self, ctl: Any, line: int) -> _DirMirror:
        key = (ctl.node_id, line)
        mirror = self.mirrors.get(key)
        if mirror is None:
            mirror = self.mirrors[key] = _DirMirror()
        return mirror

    def on_dir_transition(self, ctl: Any, line: int, old: str, new: str,
                          event: str, action: str, detail: Dict) -> None:
        """Replay one directory decision against the protocol table."""
        from repro.coherence import protocol as cp

        self.dir_checked += 1
        mirror = self._mirror(ctl, line)
        where = f"home {ctl.node_id}, line {line}"
        if mirror.state != old:
            raise SanitizerError(
                f"directory mirror divergence ({where}): controller is in "
                f"{cp.dir_state_name(old)} but the mirror says "
                f"{cp.dir_state_name(mirror.state)}"
            )
        rules = cp.DIR_TABLE.get((old, event))
        if rules is None or (action, new) not in \
                {(r.action, r.next_state) for r in rules}:
            raise SanitizerError(
                f"off-table directory transition ({where}): "
                f"{cp.dir_state_name(old)} --{event}/{action}--> "
                f"{cp.dir_state_name(new)} matches no DIR_TABLE rule"
            )
        requester, src = detail["requester"], detail["src"]
        if action in cp.GRANT_ACTIONS:
            # single-owner: ownership may only move once the recorded
            # owner relinquished (its WBDATA / dirty eviction is `src`)
            if mirror.owner is not None and mirror.owner != src:
                raise SanitizerError(
                    f"single-owner violation ({where}): {action} to node "
                    f"{requester} while node {mirror.owner} still owns "
                    f"the line"
                )
            # no stale re-grant: the recorded owner's own duplicate
            # request must be dropped, never re-answered with home data
            if mirror.owner is not None and mirror.owner == requester \
                    and requester != src:
                raise SanitizerError(
                    f"stale re-grant ({where}): {action} re-answers "
                    f"owner {requester}'s duplicate request with home "
                    f"data"
                )
            if event == cp.EV_ACK:
                if mirror.expected_acks != 1:
                    raise SanitizerError(
                        f"ack-count conservation violated ({where}): "
                        f"write grant released with "
                        f"{mirror.expected_acks} invalidation ack(s) "
                        f"outstanding (expected exactly 1 remaining)"
                    )
                mirror.expected_acks = 0
            elif mirror.expected_acks != 0:
                raise SanitizerError(
                    f"ack-count conservation violated ({where}): {action} "
                    f"on {event!r} with {mirror.expected_acks} "
                    f"invalidation ack(s) still outstanding"
                )
            mirror.owner = requester if action in cp.OWNER_GRANT_ACTIONS \
                else None
        elif action == "start_invalidate":
            if mirror.expected_acks != 0:
                raise SanitizerError(
                    f"ack-count conservation violated ({where}): new "
                    f"invalidation round opened with "
                    f"{mirror.expected_acks} ack(s) outstanding"
                )
            mirror.expected_acks = len(detail["targets"])
        elif action == "count_ack":
            mirror.expected_acks -= 1
            if mirror.expected_acks < 1:
                raise SanitizerError(
                    f"ack-count conservation violated ({where}): "
                    f"count_ack left {mirror.expected_acks} ack(s) — the "
                    f"final ack must release the grant instead"
                )
        elif action == "install_settle":
            if mirror.owner is not None and mirror.owner != src:
                raise SanitizerError(
                    f"single-owner violation ({where}): dirty eviction "
                    f"from node {src} settled the line node "
                    f"{mirror.owner} owns"
                )
            mirror.owner = None
        elif action == "queue":
            mirror.waiters += 1
        mirror.state = new

    def on_waiter_pop(self, ctl: Any, line: int) -> None:
        mirror = self._mirror(ctl, line)
        mirror.waiters -= 1
        if mirror.waiters < 0:
            raise SanitizerError(
                f"directory waiter underflow (home {ctl.node_id}, line "
                f"{line}): more queued requests replayed than were queued"
            )

    def on_drain(self) -> None:
        from repro.coherence import protocol as cp

        for (home, line), mirror in sorted(self.mirrors.items()):
            if mirror.state == cp.BUSY or mirror.expected_acks \
                    or mirror.waiters:
                raise SanitizerError(
                    f"directory not quiescent at drain (home {home}, "
                    f"line {line}): state "
                    f"{cp.dir_state_name(mirror.state)}, "
                    f"{mirror.expected_acks} ack(s) outstanding, "
                    f"{mirror.waiters} waiter(s) queued"
                )

    def reset(self) -> None:
        """Zero the activity counters; the directory mirrors track live
        protocol state (they must keep pace with the machine) and stay."""
        self.hw_checked = 0
        self.fw_checked = 0
        self.cause_checked = 0
        self.dir_checked = 0

    def report(self) -> Dict[str, int]:
        return {"hw_checked": self.hw_checked, "fw_checked": self.fw_checked,
                "cause_checked": self.cause_checked,
                "dir_checked": self.dir_checked}


# ----------------------------------------------------------------------
# deadlock watchdog
# ----------------------------------------------------------------------


class DeadlockWatchdog:
    """Wait-for-graph dump when the event queue drains with work stuck."""

    name = "deadlock"

    def __init__(self, machine: "StarTVoyager") -> None:
        self.machine = machine

    def install(self) -> None:
        engine = self.machine.engine
        if engine.process_registry is None:
            engine.process_registry = []
        engine.deadlock_dump = self.dump

    def _alive(self) -> List["Process"]:
        registry = self.machine.engine.process_registry
        if registry is None:
            return []
        alive = [p for p in registry if p.is_alive]
        registry[:] = alive  # prune finished processes as we go
        return alive

    def dump(self) -> str:
        """Render the wait-for graph of every live registered process."""
        lines = []
        for proc in self._alive():
            target = proc._waiting_on
            kind = "daemon " if proc.daemon else ""
            if target is None:
                waits = "(not waiting — never started or mid-step)"
            else:
                waits = f"-> {type(target).__name__} {target.name!r}"
            lines.append(f"  {kind}process {proc.name!r} {waits}")
        lines.extend(self._directory_edges())
        if not lines:
            return ""
        return "wait-for graph at drain:\n" + "\n".join(lines)

    def _directory_edges(self) -> List[str]:
        """Unsettled coherence transactions are wait-for edges too: a
        BUSY directory line means some requester is spinning on PENDING
        until the home's invalidation/recall round completes."""
        from repro.coherence.protocol import BUSY, dir_state_name

        lines = []
        for node in self.machine.nodes:
            if node is None:
                continue
            scoma = node.sp.state.get("scoma")
            if scoma is None:
                continue
            for line, entry in sorted(scoma.dir.directory.items()):
                if entry.state != BUSY and not entry.waiters:
                    continue
                want_rw, requester = entry.pending or (None, None)
                lines.append(
                    f"  directory home {node.node_id} line {line}: "
                    f"{dir_state_name(entry.state)}, pending "
                    f"{'write' if want_rw else 'read'} for node "
                    f"{requester}, {entry.pending_acks} ack(s) "
                    f"outstanding, {len(entry.waiters)} waiter(s) queued"
                )
        return lines

    def on_drain(self) -> None:
        blocked = [p for p in self._alive() if not p.daemon]
        if blocked:
            names = ", ".join(repr(p.name) for p in blocked[:8])
            raise DeadlockError(
                f"event queue drained with {len(blocked)} blocked "
                f"process(es): {names}\n{self.dump()}"
            )

    def reset(self) -> None:
        self._alive()  # prune finished processes from the registry

    def report(self) -> Dict[str, int]:
        return {"tracked": len(self._alive())}


# ----------------------------------------------------------------------
# combine sanitizer (decombine exactly once)
# ----------------------------------------------------------------------


class _CombineRecord:
    """One flushed combining slot awaiting its replies."""

    __slots__ = ("expected", "replied", "ports")

    def __init__(self, expected: int) -> None:
        self.expected = expected
        self.replied = 0
        self.ports: List[int] = []


class CombineSanitizer:
    """Decombine-exactly-once for switch-resident combining.

    The combining stages (:class:`repro.net.combine.CombineStage`) call
    in at every slot open, flush, reply and close; the checker keeps
    the mirror ledger and fails the moment a reply is duplicated,
    missing at close, or aimed at a token nobody recorded.  Stages pick
    the checker up through ``machine.sanitizers.checker("combine")``
    when :class:`repro.sync.api.SyncFabric` programs them.
    """

    name = "combine"

    def __init__(self, machine: "StarTVoyager") -> None:
        self.machine = machine
        #: open (un-flushed) combining slots: (switch, key).
        self.open: set = set()
        #: flushed slots awaiting replies: (switch, token) -> record.
        self.records: Dict[Tuple[str, Any], _CombineRecord] = {}
        self.opens = 0
        self.flushes = 0
        self.replies = 0
        self.closes = 0

    def install(self) -> None:
        """Nothing to hook at install time: combining stages are created
        when sync groups are planned, and find this checker then."""

    # -- stage-facing protocol ---------------------------------------------

    def note_open(self, switch: str, key: Any) -> None:
        self.opens += 1
        self.open.add((switch, key))

    def note_flush(self, switch: str, key: Any, token: Any,
                   expected: int) -> None:
        self.flushes += 1
        self.open.discard((switch, key))
        rkey = (switch, token)
        if rkey in self.records:
            raise SanitizerError(
                f"combine: {switch} reused live decombine token {token!r}"
            )
        self.records[rkey] = _CombineRecord(expected)

    def note_reply(self, switch: str, token: Any, port: int) -> None:
        self.replies += 1
        rec = self.records.get((switch, token))
        if rec is None:
            raise SanitizerError(
                f"combine: {switch} replied on port {port} for unknown "
                f"token {token!r}"
            )
        if port in rec.ports:
            raise SanitizerError(
                f"combine: {switch} decombined token {token!r} twice onto "
                f"port {port} (exactly-once violated)"
            )
        rec.ports.append(port)
        rec.replied += 1
        if rec.replied > rec.expected:
            raise SanitizerError(
                f"combine: {switch} emitted {rec.replied} replies for "
                f"token {token!r}, expected {rec.expected}"
            )

    def note_close(self, switch: str, token: Any, expected: int) -> None:
        self.closes += 1
        rec = self.records.pop((switch, token), None)
        if rec is None:
            raise SanitizerError(
                f"combine: {switch} closed unknown token {token!r}"
            )
        if rec.replied != expected:
            raise SanitizerError(
                f"combine: {switch} closed token {token!r} after "
                f"{rec.replied}/{expected} replies (contributors lost)"
            )

    def orphan(self, switch: str, tag: Any) -> None:
        raise SanitizerError(
            f"combine: {switch} received a reply nobody is waiting for: "
            f"{tag!r} (duplicate or stale decombine)"
        )

    # -- drain check -------------------------------------------------------

    def on_drain(self) -> None:
        left = len(self.open) + len(self.records)
        if left:
            sample = sorted(map(repr, self.open))[:4] \
                + sorted(map(repr, self.records))[:4]
            raise SanitizerError(
                f"combine: event queue drained with {left} combining "
                f"slot(s)/record(s) outstanding (wedged reduction tree?): "
                f"{sample}"
            )
        net = self.machine.network
        if net is not None:
            for sw in net.switches.values():
                stage = sw.combiner
                if stage is not None and stage.outstanding():
                    raise SanitizerError(
                        f"combine: {sw.name} drained with "
                        f"{stage.outstanding()} slot(s) outstanding"
                    )

    def reset(self) -> None:
        """Zero counters and drop the slot ledger.  A clean drain leaves
        ``open``/``records`` empty already; after an *aborted* run they
        may not be, and carrying them into the next run would charge it
        with the previous run's wreckage."""
        self.open.clear()
        self.records.clear()
        self.opens = 0
        self.flushes = 0
        self.replies = 0
        self.closes = 0

    def report(self) -> Dict[str, int]:
        return {"opens": self.opens, "flushes": self.flushes,
                "replies": self.replies, "closes": self.closes}


# ----------------------------------------------------------------------
# the layer
# ----------------------------------------------------------------------

_FACTORIES = {
    "credit": CreditSanitizer,
    "queue": QueueSanitizer,
    "coherence": CoherenceSanitizer,
    "deadlock": DeadlockWatchdog,
    "combine": CombineSanitizer,
}


class SanitizerLayer:
    """The machine's installed checkers (``machine.sanitizers``)."""

    def __init__(self, machine: "StarTVoyager",
                 names: Union[str, Iterable[str]]) -> None:
        self.machine = machine
        self.names = resolve_sanitizers(names, env="")
        self.checkers = [_FACTORIES[name](machine) for name in self.names]

    def install(self) -> None:
        for checker in self.checkers:
            checker.install()
        # The watchdog drains first: a stuck process is usually the root
        # cause behind any credit/queue imbalance seen at the same drain.
        order = sorted(
            self.checkers,
            key=lambda c: 0 if isinstance(c, DeadlockWatchdog) else 1,
        )
        if self.checkers:
            self.machine.engine.drain_hooks.append(
                lambda: [c.on_drain() for c in order]
            )

    def checker(self, name: str) -> Any:
        """The installed checker named ``name`` (raises when absent)."""
        for c in self.checkers:
            if c.name == name:
                return c
        raise ConfigError(f"sanitizer {name!r} is not installed")

    def report(self) -> Dict[str, Dict[str, int]]:
        """Per-checker activity counters (proof the checkers ran)."""
        return {c.name: c.report() for c in self.checkers}

    def reset(self) -> None:
        """Re-baseline every checker for an independent follow-up run.

        Activity counters drop to zero; ledgers that mirror *live*
        machine state (credits out of the pool, directory mirrors) are
        kept — they must stay in lockstep with the machine they watch.
        """
        for checker in self.checkers:
            checker.reset()

    def oracle_report(self) -> Dict[str, Dict[str, int]]:
        """The explorer's per-schedule oracle adapter: snapshot every
        checker's counters, then :meth:`reset` so the next schedule (or
        any follow-up run on this machine) reports independently."""
        report = self.report()
        self.reset()
        return report
