"""CLI entry point: ``python -m repro.analysis lint [--json] PATH...``."""

import sys

from repro.analysis.lint import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
