"""Firmware wire protocol: message type bytes and field packing.

Every message bound for an sP service/protocol queue starts with a type
byte; the rest of the payload packs the fields below (big-endian,
fixed-width).  Addresses travel as 6 bytes — comfortably covering the
model's 32-bit physical space — and every message fits the 88-byte
payload cap.
"""

from __future__ import annotations

from typing import Tuple

from repro.common.errors import FirmwareError

# message types ---------------------------------------------------------------
MSG_DMA_REQ = 1  #: aP -> local sP: perform a block memory transfer
MSG_BT2_CHUNK = 3  #: sender sP -> receiver sP: Approach-2 data chunk
MSG_BT2_DONE = 4  #: sender sP -> receiver sP: Approach-2 final notification
MSG_NUMA_RREQ = 5  #: requester sP -> home sP: NUMA read
MSG_NUMA_RREP = 6  #: home sP -> requester sP: NUMA read data
MSG_NUMA_WREQ = 7  #: requester sP -> home sP: NUMA (posted) write
MSG_SCOMA_RREQ = 8  #: requester sP -> home sP: S-COMA read-shared request
MSG_SCOMA_WREQ = 9  #: requester sP -> home sP: S-COMA write-owned request
MSG_SCOMA_INV = 10  #: home sP -> sharer sP: invalidate line
MSG_SCOMA_INVACK = 11  #: sharer sP -> home sP: invalidation done
MSG_SCOMA_WBREQ = 12  #: home sP -> owner sP: recall (writeback) line
MSG_SCOMA_WBDATA = 13  #: owner sP -> home sP: recalled line data
# 14/15 are the S-COMA eviction types declared further down.
MSG_COLL_REQ = 16  #: aP -> local sP: contribute to / start a collective
MSG_COLL_UP = 17  #: child sP -> parent sP: combined subtree contribution
MSG_COLL_DOWN = 18  #: parent sP -> child sP: collective result going down
MSG_REL_SEND = 19  #: aP -> local sP: submit one reliable-delivery segment
MSG_REL_DATA = 20  #: sender sP -> receiver sP: go-back-N DATA segment
MSG_REL_ACK = 21  #: receiver sP -> sender sP: cumulative acknowledgement
MSG_SYNC_REQ = 22  #: requester -> home sP: endpoint fetch-and-op request
MSG_SYNC_REP = 23  #: home sP / switch -> requester: fetch-and-op reply
MSG_SYNC_INJECT = 24  #: aP -> local sP: inject a sync tag into the fabric
MSG_SYNC_DEQUE = 25  #: aP/sP -> owner sP: work-stealing deque operation
MSG_SYNC_TREE_REP = 26  #: tree root (sP or switch) -> member: collective result
MSG_SYNC_CBAR = 27  #: member -> home sP: central counting-barrier arrival
MSG_USER = 64  #: first type value free for applications/libraries


def _addr6(addr: int) -> bytes:
    if not (0 <= addr < 1 << 48):
        raise FirmwareError(f"address {addr:#x} does not fit 6 bytes")
    return addr.to_bytes(6, "big")


def pack_dma_req(src_addr: int, dst_node: int, dst_addr: int, length: int,
                 notify_queue: int, mode: int = 3) -> bytes:
    """DMA request: fits one Basic message."""
    return (bytes([MSG_DMA_REQ]) + _addr6(src_addr) + dst_node.to_bytes(2, "big")
            + _addr6(dst_addr) + length.to_bytes(4, "big")
            + bytes([notify_queue, mode]))


def unpack_dma_req(p: bytes) -> Tuple[int, int, int, int, int, int]:
    """Returns (src_addr, dst_node, dst_addr, length, notify_queue, mode)."""
    if p[0] != MSG_DMA_REQ or len(p) < 21:
        raise FirmwareError(f"not a DMA request: {p!r}")
    return (int.from_bytes(p[1:7], "big"), int.from_bytes(p[7:9], "big"),
            int.from_bytes(p[9:15], "big"), int.from_bytes(p[15:19], "big"),
            p[19], p[20])


def pack_bt2_chunk(dst_addr: int) -> bytes:
    """Approach-2 chunk descriptor (data arrives as the TagOn attachment)."""
    return bytes([MSG_BT2_CHUNK, 0]) + _addr6(dst_addr)


def unpack_bt2_chunk(p: bytes) -> Tuple[int, bytes]:
    """Returns (dst_addr, data)."""
    if p[0] != MSG_BT2_CHUNK or len(p) < 8:
        raise FirmwareError(f"not a BT2 chunk: {p!r}")
    return int.from_bytes(p[2:8], "big"), p[8:]


def pack_bt2_done(notify_queue: int, token: int) -> bytes:
    """Approach-2 completion marker."""
    return bytes([MSG_BT2_DONE, notify_queue]) + token.to_bytes(4, "big")


def unpack_bt2_done(p: bytes) -> Tuple[int, int]:
    """Returns (notify_queue, token)."""
    if p[0] != MSG_BT2_DONE or len(p) < 6:
        raise FirmwareError(f"not a BT2 done: {p!r}")
    return p[1], int.from_bytes(p[2:6], "big")


def pack_numa_rreq(addr: int, size: int) -> bytes:
    """NUMA read request."""
    return bytes([MSG_NUMA_RREQ, size]) + _addr6(addr)


def unpack_numa_rreq(p: bytes) -> Tuple[int, int]:
    """Returns (addr, size)."""
    if p[0] != MSG_NUMA_RREQ:
        raise FirmwareError(f"not a NUMA read request: {p!r}")
    return int.from_bytes(p[2:8], "big"), p[1]


def pack_numa_rrep(addr: int, data: bytes) -> bytes:
    """NUMA read reply."""
    return bytes([MSG_NUMA_RREP, len(data)]) + _addr6(addr) + data


def unpack_numa_rrep(p: bytes) -> Tuple[int, bytes]:
    """Returns (addr, data)."""
    if p[0] != MSG_NUMA_RREP:
        raise FirmwareError(f"not a NUMA read reply: {p!r}")
    return int.from_bytes(p[2:8], "big"), p[8 : 8 + p[1]]


def pack_numa_wreq(addr: int, data: bytes) -> bytes:
    """NUMA posted-write request."""
    return bytes([MSG_NUMA_WREQ, len(data)]) + _addr6(addr) + data


def unpack_numa_wreq(p: bytes) -> Tuple[int, bytes]:
    """Returns (addr, data)."""
    if p[0] != MSG_NUMA_WREQ:
        raise FirmwareError(f"not a NUMA write request: {p!r}")
    return int.from_bytes(p[2:8], "big"), p[8 : 8 + p[1]]


def pack_scoma_req(want_rw: bool, line_offset: int, requester: int) -> bytes:
    """S-COMA read/write ownership request (line offset in the window)."""
    t = MSG_SCOMA_WREQ if want_rw else MSG_SCOMA_RREQ
    return bytes([t, requester]) + line_offset.to_bytes(4, "big")


def unpack_scoma_req(p: bytes) -> Tuple[bool, int, int]:
    """Returns (want_rw, line_offset, requester)."""
    if p[0] not in (MSG_SCOMA_RREQ, MSG_SCOMA_WREQ):
        raise FirmwareError(f"not an S-COMA request: {p!r}")
    return p[0] == MSG_SCOMA_WREQ, int.from_bytes(p[2:6], "big"), p[1]


def pack_scoma_inv(line_offset: int) -> bytes:
    """Invalidate one line at a sharer."""
    return bytes([MSG_SCOMA_INV, 0]) + line_offset.to_bytes(4, "big")


def unpack_scoma_inv(p: bytes) -> int:
    """Returns line_offset."""
    if p[0] != MSG_SCOMA_INV:
        raise FirmwareError(f"not an S-COMA invalidate: {p!r}")
    return int.from_bytes(p[2:6], "big")


def pack_scoma_invack(line_offset: int) -> bytes:
    """Acknowledge an invalidation."""
    return bytes([MSG_SCOMA_INVACK, 0]) + line_offset.to_bytes(4, "big")


def unpack_scoma_invack(p: bytes) -> int:
    """Returns line_offset."""
    if p[0] != MSG_SCOMA_INVACK:
        raise FirmwareError(f"not an S-COMA inv-ack: {p!r}")
    return int.from_bytes(p[2:6], "big")


def pack_scoma_wbreq(line_offset: int, downgrade_to_ro: bool) -> bytes:
    """Recall a modified line from its owner."""
    return bytes([MSG_SCOMA_WBREQ, 1 if downgrade_to_ro else 0]) + \
        line_offset.to_bytes(4, "big")


def unpack_scoma_wbreq(p: bytes) -> Tuple[int, bool]:
    """Returns (line_offset, downgrade_to_ro)."""
    if p[0] != MSG_SCOMA_WBREQ:
        raise FirmwareError(f"not an S-COMA writeback request: {p!r}")
    return int.from_bytes(p[2:6], "big"), bool(p[1])


def pack_scoma_wbdata(line_offset: int, data: bytes) -> bytes:
    """Recalled line data back to home (one 32-byte line fits easily)."""
    return bytes([MSG_SCOMA_WBDATA, len(data)]) + \
        line_offset.to_bytes(4, "big") + data


def unpack_scoma_wbdata(p: bytes) -> Tuple[int, bytes]:
    """Returns (line_offset, data)."""
    if p[0] != MSG_SCOMA_WBDATA:
        raise FirmwareError(f"not S-COMA writeback data: {p!r}")
    return int.from_bytes(p[2:6], "big"), p[6 : 6 + p[1]]


# -- reliable delivery (go-back-N ack/retransmit) -------------------------------


def pack_rel_send(dst_queue: int, dst_node: int) -> bytes:
    """Reliable-send request header (user payload follows)."""
    return bytes([MSG_REL_SEND, dst_queue]) + dst_node.to_bytes(2, "big")


def unpack_rel_send(p: bytes) -> Tuple[int, int, bytes]:
    """Returns (dst_queue, dst_node, user_payload)."""
    if p[0] != MSG_REL_SEND or len(p) < 4:
        raise FirmwareError(f"not a reliable-send request: {p!r}")
    return p[1], int.from_bytes(p[2:4], "big"), p[4:]


def pack_rel_data(dst_queue: int, seq: int) -> bytes:
    """Go-back-N DATA segment header (user payload follows)."""
    return bytes([MSG_REL_DATA, dst_queue]) + seq.to_bytes(2, "big")


def unpack_rel_data(p: bytes) -> Tuple[int, int, bytes]:
    """Returns (dst_queue, seq, user_payload)."""
    if p[0] != MSG_REL_DATA or len(p) < 4:
        raise FirmwareError(f"not a reliable DATA segment: {p!r}")
    return p[1], int.from_bytes(p[2:4], "big"), p[4:]


def pack_rel_ack(ack: int) -> bytes:
    """Cumulative ACK: every seq serially below ``ack`` is delivered."""
    return bytes([MSG_REL_ACK, 0]) + ack.to_bytes(2, "big")


def unpack_rel_ack(p: bytes) -> int:
    """Returns the cumulative ack value (receiver's next expected seq)."""
    if p[0] != MSG_REL_ACK or len(p) < 4:
        raise FirmwareError(f"not a reliable ACK: {p!r}")
    return int.from_bytes(p[2:4], "big")


# -- scalable synchronization (repro.sync) --------------------------------------
#
# The endpoint fallback path of the sync library: fetch-and-op requests
# served by a home sP, a central counting barrier, and the work-stealing
# deque.  ``MSG_SYNC_REP`` / ``MSG_SYNC_TREE_REP`` values are mirrored by
# ``repro.net.combine`` (``SYNC_REP_BYTE`` / ``SYNC_TREE_REP_BYTE``):
# the switch-resident combining stage emits the *same* reply format, so
# a waiting member cannot tell (and need not care) whether its reply
# came from firmware or from the fabric.


def pack_sync_req(group: int, cell: int, op: int, origin: int, req: int,
                  reply_queue: int, value: int, aux: int = 0) -> bytes:
    """Endpoint fetch-and-op request toward the cell's home sP."""
    return (bytes([MSG_SYNC_REQ]) + group.to_bytes(4, "big")
            + cell.to_bytes(4, "big") + bytes([op])
            + origin.to_bytes(4, "big") + req.to_bytes(4, "big")
            + bytes([reply_queue]) + value.to_bytes(8, "big", signed=True)
            + aux.to_bytes(8, "big", signed=True))


def unpack_sync_req(p: bytes) -> Tuple[int, int, int, int, int, int, int, int]:
    """Returns (group, cell, op, origin, req, reply_queue, value, aux)."""
    if p[0] != MSG_SYNC_REQ or len(p) < 35:
        raise FirmwareError(f"not a sync request: {p!r}")
    return (int.from_bytes(p[1:5], "big"), int.from_bytes(p[5:9], "big"),
            p[9], int.from_bytes(p[10:14], "big"),
            int.from_bytes(p[14:18], "big"), p[18],
            int.from_bytes(p[19:27], "big", signed=True),
            int.from_bytes(p[27:35], "big", signed=True))


def pack_sync_rep(req: int, value: int, ok: bool = True) -> bytes:
    """Fetch-and-op reply (also emitted by the combining switches)."""
    return (bytes([MSG_SYNC_REP]) + req.to_bytes(4, "big")
            + (b"\x01" if ok else b"\x00")
            + value.to_bytes(8, "big", signed=True))


def unpack_sync_rep(p: bytes) -> Tuple[int, bool, int]:
    """Returns (req, ok, value)."""
    if p[0] != MSG_SYNC_REP or len(p) < 14:
        raise FirmwareError(f"not a sync reply: {p!r}")
    return (int.from_bytes(p[1:5], "big"), bool(p[5]),
            int.from_bytes(p[6:14], "big", signed=True))


def pack_sync_inject(tag_bytes: bytes) -> bytes:
    """aP -> local sP: hand one packed SyncTag to the leaf injector."""
    return bytes([MSG_SYNC_INJECT]) + tag_bytes


def unpack_sync_inject(p: bytes) -> bytes:
    """Returns the packed tag."""
    if p[0] != MSG_SYNC_INJECT or len(p) < 2:
        raise FirmwareError(f"not a sync inject: {p!r}")
    return p[1:]


#: work-stealing deque verbs (``MSG_SYNC_DEQUE``).
DEQUE_PUSH = 0
DEQUE_POP = 1
DEQUE_STEAL = 2


def pack_sync_deque(group: int, verb: int, origin: int, req: int,
                    reply_queue: int, value: int = 0) -> bytes:
    """Deque operation toward the deque owner's sP."""
    return (bytes([MSG_SYNC_DEQUE]) + group.to_bytes(4, "big")
            + bytes([verb]) + origin.to_bytes(4, "big")
            + req.to_bytes(4, "big") + bytes([reply_queue])
            + value.to_bytes(8, "big", signed=True))


def unpack_sync_deque(p: bytes) -> Tuple[int, int, int, int, int, int]:
    """Returns (group, verb, origin, req, reply_queue, value)."""
    if p[0] != MSG_SYNC_DEQUE or len(p) < 23:
        raise FirmwareError(f"not a deque operation: {p!r}")
    return (int.from_bytes(p[1:5], "big"), p[5],
            int.from_bytes(p[6:10], "big"), int.from_bytes(p[10:14], "big"),
            p[14], int.from_bytes(p[15:23], "big", signed=True))


def pack_sync_tree_rep(group: int, seq: int, value: int) -> bytes:
    """Collective result delivered to one member (matches the combining
    switch's fan-out payload byte for byte)."""
    return (bytes([MSG_SYNC_TREE_REP]) + group.to_bytes(4, "big")
            + seq.to_bytes(4, "big") + value.to_bytes(8, "big", signed=True))


def unpack_sync_tree_rep(p: bytes) -> Tuple[int, int, int]:
    """Returns (group, seq, value)."""
    if p[0] != MSG_SYNC_TREE_REP or len(p) < 17:
        raise FirmwareError(f"not a tree reply: {p!r}")
    return (int.from_bytes(p[1:5], "big"), int.from_bytes(p[5:9], "big"),
            int.from_bytes(p[9:17], "big", signed=True))


def pack_sync_cbar(group: int, seq: int, origin: int, n: int,
                   reply_queue: int, op: int = 0, value: int = 0) -> bytes:
    """Central collective arrival at the group's home sP.

    Carries an op code and a contribution value, so the same serialized
    server implements both the counting barrier (op=add, value=0) and
    the endpoint-fallback allreduce — the hot-spot baseline the
    switch-resident tree is measured against.
    """
    return (bytes([MSG_SYNC_CBAR]) + group.to_bytes(4, "big")
            + seq.to_bytes(4, "big") + origin.to_bytes(4, "big")
            + n.to_bytes(4, "big") + bytes([reply_queue, op])
            + value.to_bytes(8, "big", signed=True))


def unpack_sync_cbar(p: bytes) -> Tuple[int, int, int, int, int, int, int]:
    """Returns (group, seq, origin, n, reply_queue, op, value)."""
    if p[0] != MSG_SYNC_CBAR or len(p) < 27:
        raise FirmwareError(f"not a barrier arrival: {p!r}")
    return (int.from_bytes(p[1:5], "big"), int.from_bytes(p[5:9], "big"),
            int.from_bytes(p[9:13], "big"), int.from_bytes(p[13:17], "big"),
            p[17], p[18], int.from_bytes(p[19:27], "big", signed=True))


# -- S-COMA eviction (capacity management) -------------------------------------
#
# A node may voluntarily drop a cached line to reclaim its L3 frame:
# clean (RO) evictions just tell the home to forget the sharer; dirty
# (RW) evictions carry the line data home.  Type values sit above the
# base protocol block.

MSG_SCOMA_EVICT = 14  #: sharer -> home: drop me from the sharer set
MSG_SCOMA_EVICT_DIRTY = 15  #: owner -> home: here is the data, I'm out


def pack_scoma_evict(line_offset: int) -> bytes:
    """Clean eviction notice."""
    return bytes([MSG_SCOMA_EVICT, 0]) + line_offset.to_bytes(4, "big")


def unpack_scoma_evict(p: bytes) -> int:
    """Returns line_offset."""
    if p[0] != MSG_SCOMA_EVICT:
        raise FirmwareError(f"not an S-COMA eviction: {p!r}")
    return int.from_bytes(p[2:6], "big")


def pack_scoma_evict_dirty(line_offset: int, data: bytes) -> bytes:
    """Dirty eviction: the line data travels home."""
    return bytes([MSG_SCOMA_EVICT_DIRTY, len(data)]) + \
        line_offset.to_bytes(4, "big") + data


def unpack_scoma_evict_dirty(p: bytes):
    """Returns (line_offset, data)."""
    if p[0] != MSG_SCOMA_EVICT_DIRTY:
        raise FirmwareError(f"not a dirty S-COMA eviction: {p!r}")
    return int.from_bytes(p[2:6], "big"), p[6 : 6 + p[1]]
