"""S-COMA firmware: a home-based MSI directory protocol over clsSRAM.

"A simple, cache only memory access mechanism (S-COMA) allows a region
of DRAM to be used as a level 3 (L3) cache.  The single ported SRAM
(clsSRAM) is used to maintain cache-line state bits that are checked by
the aBIU.  If the check fails, the bus operation is passed to firmware
for servicing.  Data supplied by a remote node for a pending read can be
received via the remote command queue to avoid firmware execution on the
return."

Protocol summary (line granularity, home = assigned per line):

* every node's S-COMA DRAM window holds a frame per line; the home's
  frame is the memory copy;
* a read miss sends ``RREQ`` to the home, which forwards the line as a
  ``CmdWriteDram(set_cls_state=RO)`` straight into the requester's frame
  — the requester's retried bus operation then completes with **no
  requester-side firmware on the return path** (the paper's key trick);
* a write miss/upgrade sends ``WREQ``; the home invalidates the sharers
  (``INV``/``INVACK``) or recalls the exclusive owner (``WBREQ``/
  ``WBDATA``) before granting ownership;
* the home's own aP participates as an implicit sharer whose "frame"
  *is* memory, so home-side transitions only flip clsSRAM bits and kill
  stale L2 lines.

Requests that hit a line mid-transition queue on the directory entry and
replay in arrival order, so the protocol is free of request/request
races; all protocol traffic uses the high network priority, keeping
replies from deadlocking behind bulk data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Generator, List, Optional, Set, Tuple

from repro.bus.ops import BusOpType
from repro.common.errors import FirmwareError
from repro.firmware import proto
from repro.firmware.base import (
    fw_dram_read,
    fw_dram_write,
    fw_send,
    register_msg_handler,
)
from repro.niu.clssram import CLS_INVALID, CLS_RO, CLS_RW
from repro.niu.commands import (
    LOCAL_CMDQ_0,
    CmdBusOp,
    CmdForward,
    CmdWriteDram,
)
from repro.niu.niu import SP_PROTOCOL_QUEUE, SP_TX_PROTOCOL, vdst_for

if TYPE_CHECKING:  # pragma: no cover
    from repro.niu.sp import ServiceProcessor
    from repro.sim.events import Event

# directory states
HOME_VALID = "home"  #: home frame is the memory copy; ``sharers`` may read
EXCLUSIVE = "excl"  #: one remote owner holds the only valid (RW) copy
BUSY = "busy"  #: invalidation or recall in flight


@dataclass
class DirEntry:
    """Home-side directory state for one line."""

    state: str = HOME_VALID
    sharers: Set[int] = field(default_factory=set)
    owner: Optional[int] = None
    pending_acks: int = 0
    #: the request being completed while BUSY: (want_rw, requester).
    pending: Optional[Tuple[bool, int]] = None
    #: recalled data captured by WBDATA for the pending grant.
    wb_data: Optional[bytes] = None
    #: queued requests that arrived while BUSY.
    waiters: List[Tuple[bool, int]] = field(default_factory=list)


class ScomaState:
    """Per-node S-COMA firmware state."""

    def __init__(self, home_of: List[int], scoma_base: int, line_bytes: int,
                 staging: int) -> None:
        self.home_of = home_of
        self.scoma_base = scoma_base
        self.line_bytes = line_bytes
        self.staging = staging
        self.directory: Dict[int, DirEntry] = {}

    def line_of_offset(self, offset: int) -> int:
        return offset // self.line_bytes

    def frame_addr(self, line: int) -> int:
        return self.scoma_base + line * self.line_bytes

    def entry(self, line: int) -> DirEntry:
        if line not in self.directory:
            self.directory[line] = DirEntry()
        return self.directory[line]


def setup_scoma(sp: "ServiceProcessor", home_of: List[int]) -> None:
    """Install S-COMA firmware and initialize clsSRAM home states."""
    niu = sp.state["niu"]
    cls = niu.cls
    staging = niu.alloc_ssram(64)
    st = ScomaState(home_of, cls.cover_base, cls.line_bytes, staging)
    sp.state["scoma"] = st
    for line, home in enumerate(home_of):
        cls.set_state(line, CLS_RW if home == sp.node_id else CLS_INVALID)
    sp.register("scoma_miss", handle_miss)
    register_msg_handler(sp, proto.MSG_SCOMA_RREQ, handle_request_msg)
    register_msg_handler(sp, proto.MSG_SCOMA_WREQ, handle_request_msg)
    register_msg_handler(sp, proto.MSG_SCOMA_INV, handle_invalidate)
    register_msg_handler(sp, proto.MSG_SCOMA_INVACK, handle_invack)
    register_msg_handler(sp, proto.MSG_SCOMA_WBREQ, handle_writeback_req)
    register_msg_handler(sp, proto.MSG_SCOMA_WBDATA, handle_writeback_data)
    install_eviction(sp)


# ----------------------------------------------------------------------
# requester side
# ----------------------------------------------------------------------

_WRITE_OPS = (BusOpType.WRITE, BusOpType.WRITE_LINE, BusOpType.RWITM,
              BusOpType.KILL)


def handle_miss(sp: "ServiceProcessor", event: Tuple
                ) -> Generator["Event", None, None]:
    """An aP access failed the clsSRAM check: request the line."""
    _kind, op, line_base = event
    yield sp.compute(sp.fw.scoma_miss_insns)
    st: ScomaState = sp.state["scoma"]
    line = (line_base - st.scoma_base) // st.line_bytes
    want_rw = op in _WRITE_OPS
    home = st.home_of[line]
    if home == sp.node_id:
        yield from home_request(sp, want_rw, line, sp.node_id)
    else:
        yield from fw_send(
            sp, vdst_for(home, SP_PROTOCOL_QUEUE),
            proto.pack_scoma_req(want_rw, line * st.line_bytes, sp.node_id),
            queue=SP_TX_PROTOCOL,
        )


# ----------------------------------------------------------------------
# home side
# ----------------------------------------------------------------------

def handle_request_msg(sp: "ServiceProcessor", src: int, payload: bytes
                       ) -> Generator["Event", None, None]:
    """RREQ/WREQ arriving at the home node."""
    want_rw, offset, requester = proto.unpack_scoma_req(payload)
    yield sp.compute(sp.fw.scoma_home_insns)
    st: ScomaState = sp.state["scoma"]
    yield from home_request(sp, want_rw, st.line_of_offset(offset), requester)


def home_request(sp: "ServiceProcessor", want_rw: bool, line: int,
                 requester: int) -> Generator["Event", None, None]:
    """Serve (or queue) one coherence request at the home."""
    st: ScomaState = sp.state["scoma"]
    if st.home_of[line] != sp.node_id:
        raise FirmwareError(f"node {sp.node_id} is not home for line {line}")
    entry = st.entry(line)
    if entry.state == BUSY:
        entry.waiters.append((want_rw, requester))
        return
    if entry.state == HOME_VALID:
        if not want_rw:
            yield from _grant(sp, line, False, requester, None)
            return
        # write request: invalidate every other sharer first
        targets = entry.sharers - {requester}
        if targets:
            entry.state = BUSY
            entry.pending = (True, requester)
            entry.pending_acks = len(targets)
            for sharer in sorted(targets):
                yield from fw_send(
                    sp, vdst_for(sharer, SP_PROTOCOL_QUEUE),
                    proto.pack_scoma_inv(line * st.line_bytes),
                    queue=SP_TX_PROTOCOL,
                )
            return
        yield from _grant(sp, line, True, requester, None)
        return
    # EXCLUSIVE: recall the line from its owner
    if entry.owner == requester:
        # stale duplicate: the requester was invalidated after sending its
        # first request and re-missed before the (in-flight) grant landed.
        # The grant will satisfy the retrying access; dropping the
        # duplicate here is the only safe response — re-granting would
        # overwrite the owner's (possibly modified) frame with stale home
        # data.
        sp.stats.counter(f"{sp.name}.scoma_dup_requests").incr()
        return
    entry.state = BUSY
    entry.pending = (want_rw, requester)
    yield from fw_send(
        sp, vdst_for(entry.owner, SP_PROTOCOL_QUEUE),
        proto.pack_scoma_wbreq(line * st.line_bytes,
                               downgrade_to_ro=not want_rw),
        queue=SP_TX_PROTOCOL,
    )


def _grant(sp: "ServiceProcessor", line: int, want_rw: bool, requester: int,
           data: Optional[bytes]) -> Generator["Event", None, None]:
    """Complete a request at the home: move data, set states, update dir."""
    st: ScomaState = sp.state["scoma"]
    cls = sp.state["niu"].cls
    entry = st.entry(line)
    frame = st.frame_addr(line)
    if requester != sp.node_id:
        if data is None:
            data = yield from fw_dram_read(sp, frame, st.line_bytes, st.staging)
        new_state = CLS_RW if want_rw else CLS_RO
        yield from sp.sbiu.enqueue_command(
            LOCAL_CMDQ_0,
            CmdForward(requester, CmdWriteDram(frame, data,
                                               set_cls_state=new_state)),
        )
    if want_rw:
        if requester == sp.node_id:
            yield from _set_own_cls(sp, line, CLS_RW)
        else:
            # home loses its copy: state bits + stale L2 line
            yield from _set_own_cls(sp, line, CLS_INVALID, kill_l2=True)
            entry.state = EXCLUSIVE
            entry.owner = requester
            entry.sharers = set()
            return
        entry.state = HOME_VALID
        entry.owner = None
        entry.sharers = set()
        return
    # read grant: home frame stays the memory copy, readable by all
    if requester == sp.node_id:
        yield from _set_own_cls(sp, line, CLS_RO)
    else:
        entry.sharers.add(requester)
        if cls.state(line) == CLS_RW:
            yield from _set_own_cls(sp, line, CLS_RO)
    entry.state = HOME_VALID
    entry.owner = None


def _set_own_cls(sp: "ServiceProcessor", line: int, state: int,
                 kill_l2: bool = False) -> Generator["Event", None, None]:
    st: ScomaState = sp.state["scoma"]
    cls = sp.state["niu"].cls
    yield sp.compute(sp.fw.cls_update_insns)
    yield from sp.sbiu.immediate(lambda: cls.set_state(line, state))
    if kill_l2:
        yield from sp.sbiu.enqueue_command(
            LOCAL_CMDQ_0,
            CmdBusOp(BusOpType.KILL, st.frame_addr(line), st.line_bytes),
        )


def _drain_waiters(sp: "ServiceProcessor", line: int
                   ) -> Generator["Event", None, None]:
    """Replay requests queued while the line was BUSY."""
    st: ScomaState = sp.state["scoma"]
    entry = st.entry(line)
    while entry.waiters and entry.state != BUSY:
        want_rw, requester = entry.waiters.pop(0)
        yield from home_request(sp, want_rw, line, requester)


# ----------------------------------------------------------------------
# sharer / owner sides
# ----------------------------------------------------------------------

def handle_invalidate(sp: "ServiceProcessor", src: int, payload: bytes
                      ) -> Generator["Event", None, None]:
    """A sharer drops its copy and acknowledges."""
    offset = proto.unpack_scoma_inv(payload)
    yield sp.compute(sp.fw.cls_update_insns)
    st: ScomaState = sp.state["scoma"]
    line = st.line_of_offset(offset)
    yield from _set_own_cls(sp, line, CLS_INVALID, kill_l2=True)
    yield from fw_send(
        sp, vdst_for(src, SP_PROTOCOL_QUEUE),
        proto.pack_scoma_invack(offset), queue=SP_TX_PROTOCOL,
    )


def handle_invack(sp: "ServiceProcessor", src: int, payload: bytes
                  ) -> Generator["Event", None, None]:
    """Home collects invalidation acks; the last one releases the grant."""
    offset = proto.unpack_scoma_invack(payload)
    yield sp.compute(sp.fw.scoma_home_insns)
    st: ScomaState = sp.state["scoma"]
    line = st.line_of_offset(offset)
    entry = st.entry(line)
    if entry.state != BUSY or entry.pending is None:
        raise FirmwareError(f"unexpected INVACK for line {line}")
    entry.pending_acks -= 1
    if entry.pending_acks > 0:
        return
    want_rw, requester = entry.pending
    entry.pending = None
    entry.sharers = set()
    entry.state = HOME_VALID
    yield from _grant(sp, line, want_rw, requester, None)
    yield from _drain_waiters(sp, line)


def handle_writeback_req(sp: "ServiceProcessor", src: int, payload: bytes
                         ) -> Generator["Event", None, None]:
    """The exclusive owner returns its (possibly dirty) line to the home."""
    offset, downgrade_to_ro = proto.unpack_scoma_wbreq(payload)
    yield sp.compute(sp.fw.scoma_fill_insns)
    st: ScomaState = sp.state["scoma"]
    line = st.line_of_offset(offset)
    frame = st.frame_addr(line)
    # force any newer L2 data into the DRAM frame, then read it
    yield from sp.sbiu.enqueue_command(
        LOCAL_CMDQ_0, CmdBusOp(BusOpType.FLUSH, frame, st.line_bytes)
    )
    data = yield from fw_dram_read(sp, frame, st.line_bytes, st.staging)
    if downgrade_to_ro:
        yield from _set_own_cls(sp, line, CLS_RO)
    else:
        yield from _set_own_cls(sp, line, CLS_INVALID)
    yield from fw_send(
        sp, vdst_for(src, SP_PROTOCOL_QUEUE),
        proto.pack_scoma_wbdata(offset, data), queue=SP_TX_PROTOCOL,
    )


def handle_writeback_data(sp: "ServiceProcessor", src: int, payload: bytes
                          ) -> Generator["Event", None, None]:
    """Home installs recalled data and completes the pending request."""
    offset, data = proto.unpack_scoma_wbdata(payload)
    yield sp.compute(sp.fw.scoma_home_insns)
    st: ScomaState = sp.state["scoma"]
    line = st.line_of_offset(offset)
    entry = st.entry(line)
    if entry.state != BUSY or entry.pending is None:
        # a dirty eviction raced ahead of the recall and already settled
        # the line; this WBDATA is the recall's late echo — drop it
        sp.stats.counter(f"{sp.name}.scoma_stale_wbdata").incr()
        return
    want_rw, requester = entry.pending
    old_owner = entry.owner
    entry.pending = None
    entry.owner = None
    entry.state = HOME_VALID
    entry.sharers = set() if want_rw else {old_owner}
    yield from fw_dram_write(sp, st.frame_addr(line), data, fence=False)
    if not want_rw:
        # the home frame is the memory copy again: home may read it
        yield from _set_own_cls(sp, line, CLS_RO)
    yield from _grant(sp, line, want_rw, requester, data)
    yield from _drain_waiters(sp, line)


# ----------------------------------------------------------------------
# capacity management: voluntary frame eviction
# ----------------------------------------------------------------------
#
# The L3 "cache" is local DRAM; when the OS wants a frame back it asks
# firmware to evict the line.  Clean (RO) copies silently leave the
# sharer set; a dirty (RW) copy carries its data home first.  Evictions
# race benignly with the home's own invalidations/recalls: the home
# treats an eviction that crosses a recall as the recall's writeback,
# and late WBDATA for an already-settled line is counted and dropped.

#: request type for the local "evict this line" ask (application range).
MSG_SCOMA_EVICT_REQ = proto.MSG_USER + 2


def pack_evict_req(line_offset: int) -> bytes:
    """Local eviction request (aP -> own sP service queue)."""
    return bytes([MSG_SCOMA_EVICT_REQ, 0]) + line_offset.to_bytes(4, "big")


def install_eviction(sp: "ServiceProcessor") -> None:
    """Enable eviction support (registered by setup_scoma)."""
    register_msg_handler(sp, MSG_SCOMA_EVICT_REQ, handle_evict_request)
    register_msg_handler(sp, proto.MSG_SCOMA_EVICT, handle_evict_notice)
    register_msg_handler(sp, proto.MSG_SCOMA_EVICT_DIRTY, handle_evict_dirty)


def handle_evict_request(sp: "ServiceProcessor", src: int, payload: bytes
                         ) -> Generator["Event", None, None]:
    """Local side: drop the line, telling the home what it needs to know."""
    offset = int.from_bytes(payload[2:6], "big")
    yield sp.compute(sp.fw.scoma_miss_insns)
    st: ScomaState = sp.state["scoma"]
    cls = sp.state["niu"].cls
    line = st.line_of_offset(offset)
    home = st.home_of[line]
    state = cls.state(line)
    if home == sp.node_id:
        # the home frame IS memory; nothing to evict
        return
    if state == CLS_RO:
        yield from _set_own_cls(sp, line, CLS_INVALID, kill_l2=True)
        yield from fw_send(
            sp, vdst_for(home, SP_PROTOCOL_QUEUE),
            proto.pack_scoma_evict(offset), queue=SP_TX_PROTOCOL,
        )
    elif state == CLS_RW:
        # flush newer L2 data into the frame, read it, ship it home
        yield from sp.sbiu.enqueue_command(
            LOCAL_CMDQ_0,
            CmdBusOp(BusOpType.FLUSH, st.frame_addr(line), st.line_bytes),
        )
        data = yield from fw_dram_read(sp, st.frame_addr(line),
                                       st.line_bytes, st.staging)
        yield from _set_own_cls(sp, line, CLS_INVALID)
        yield from fw_send(
            sp, vdst_for(home, SP_PROTOCOL_QUEUE),
            proto.pack_scoma_evict_dirty(offset, data),
            queue=SP_TX_PROTOCOL,
        )
    # INVALID/PENDING: nothing cached here; the request is a no-op


def handle_evict_notice(sp: "ServiceProcessor", src: int, payload: bytes
                        ) -> Generator["Event", None, None]:
    """Home side: a sharer dropped its clean copy."""
    offset = proto.unpack_scoma_evict(payload)
    yield sp.compute(sp.fw.scoma_home_insns)
    st: ScomaState = sp.state["scoma"]
    entry = st.entry(st.line_of_offset(offset))
    entry.sharers.discard(src)


def handle_evict_dirty(sp: "ServiceProcessor", src: int, payload: bytes
                       ) -> Generator["Event", None, None]:
    """Home side: the owner evicted; its data re-validates the home frame.

    If a recall (WBREQ) was already in flight for this line, the eviction
    *is* the writeback: complete the pending request with this data.
    """
    offset, data = proto.unpack_scoma_evict_dirty(payload)
    yield sp.compute(sp.fw.scoma_home_insns)
    st: ScomaState = sp.state["scoma"]
    line = st.line_of_offset(offset)
    entry = st.entry(line)
    yield from fw_dram_write(sp, st.frame_addr(line), data, fence=False)
    if entry.state == BUSY and entry.pending is not None:
        want_rw, requester = entry.pending
        entry.pending = None
        entry.owner = None
        entry.state = HOME_VALID
        entry.sharers = set()
        if not want_rw:
            yield from _set_own_cls(sp, line, CLS_RO)
        yield from _grant(sp, line, want_rw, requester, data)
        yield from _drain_waiters(sp, line)
        return
    if entry.owner == src:
        entry.owner = None
        entry.state = HOME_VALID
        entry.sharers = set()
    yield from _set_own_cls(sp, line, CLS_RW)
