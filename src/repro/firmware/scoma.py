"""S-COMA firmware: a home-based MSI directory protocol over clsSRAM.

"A simple, cache only memory access mechanism (S-COMA) allows a region
of DRAM to be used as a level 3 (L3) cache.  The single ported SRAM
(clsSRAM) is used to maintain cache-line state bits that are checked by
the aBIU.  If the check fails, the bus operation is passed to firmware
for servicing.  Data supplied by a remote node for a pending read can be
received via the remote command queue to avoid firmware execution on the
return."

Protocol summary (line granularity, home = assigned per line):

* every node's S-COMA DRAM window holds a frame per line; the home's
  frame is the memory copy;
* a read miss sends ``RREQ`` to the home, which forwards the line as a
  ``CmdWriteDram(set_cls_state=RO)`` straight into the requester's frame
  — the requester's retried bus operation then completes with **no
  requester-side firmware on the return path** (the paper's key trick);
* a write miss/upgrade sends ``WREQ``; the home invalidates the sharers
  (``INV``/``INVACK``) or recalls the exclusive owner (``WBREQ``/
  ``WBDATA``) before granting ownership;
* the home's own aP participates as an implicit sharer whose "frame"
  *is* memory, so home-side transitions only flip clsSRAM bits and kill
  stale L2 lines.

This module is the protocol's *mechanism*: it moves data, sends
messages, and flips clsSRAM bits.  Every *decision* — grant, queue,
invalidate, recall, drop — comes from the per-node
:class:`repro.coherence.directory.DirectoryController`, which applies
the data-driven transition tables in :mod:`repro.coherence.protocol`.
Requests that hit a line mid-transition queue on the directory entry
and replay in arrival order, so the protocol is free of request/request
races; all protocol traffic uses the high network priority, keeping
replies from deadlocking behind bulk data.

Late echoes of already-settled transitions (a recall crossing a dirty
eviction, an eviction from a previous ownership epoch) are detected by
the controller's owner check and counted+dropped without touching the
frame — re-applying them would overwrite newer data or resurrect a
relinquished copy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, List, Tuple

from repro.bus.ops import BusOpType
from repro.coherence.directory import DirectoryController
from repro.common.errors import FirmwareError
from repro.firmware import proto
from repro.firmware.base import (
    fw_dram_read,
    fw_dram_write,
    fw_send,
    register_msg_handler,
)
from repro.niu.clssram import CLS_INVALID, CLS_RO, CLS_RW
from repro.niu.commands import (
    LOCAL_CMDQ_0,
    CmdBusOp,
    CmdForward,
    CmdWriteDram,
)
from repro.niu.niu import (
    SP_PROTOCOL_QUEUE,
    SP_TX_PROTOCOL,
    needs_raw_addressing,
    vdst_for,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.niu.sp import ServiceProcessor
    from repro.sim.events import Event

# directory states, re-exported for callers that predate the coherence
# package (tests, inspection tooling).
from repro.coherence.protocol import BUSY, EXCLUSIVE, HOME_VALID  # noqa: F401
from repro.coherence.directory import DirEntry  # noqa: F401

#: Behavior-model switch for the interleaving explorer
#: (:mod:`repro.explore.models`, model ``"kill_grant"``).  When False,
#: a remote RW grant at a home that still holds the line Modified
#: revokes with a blunt KILL instead of a FLUSH — the pre-fix bug that
#: destroys home stores still sitting dirty in L2 before the frame
#: snapshot, which the explorer re-finds as a regression.  Always True
#: in normal runs.
GRANT_PRESERVES_HOME_STORES = True


class ScomaState:
    """Per-node S-COMA firmware state."""

    __slots__ = ("home_of", "scoma_base", "line_bytes", "staging", "dir",
                 "wide")

    def __init__(self, home_of: List[int], scoma_base: int, line_bytes: int,
                 staging: int, node_id: int, wide: bool = False) -> None:
        self.home_of = home_of
        self.scoma_base = scoma_base
        self.line_bytes = line_bytes
        self.staging = staging
        #: this node's directory controller (lines it is home for).
        self.dir = DirectoryController(node_id)
        #: kernel-mode RAW addressing (machines beyond the 16-node
        #: byte-vdst translation convention).
        self.wide = wide

    @property
    def directory(self):
        """Line -> :class:`DirEntry` (inspection/test compatibility)."""
        return self.dir.directory

    def entry(self, line: int) -> DirEntry:
        return self.dir.entry(line)

    def line_of_offset(self, offset: int) -> int:
        return offset // self.line_bytes

    def frame_addr(self, line: int) -> int:
        return self.scoma_base + line * self.line_bytes


def setup_scoma(sp: "ServiceProcessor", home_of: List[int]) -> None:
    """Install S-COMA firmware and initialize clsSRAM home states."""
    niu = sp.state["niu"]
    cls = niu.cls
    staging = niu.alloc_ssram(64)
    node = sp.state.get("node")
    n_nodes = (node.config.n_nodes if node is not None
               else max(home_of, default=0) + 1)
    st = ScomaState(home_of, cls.cover_base, cls.line_bytes, staging,
                    sp.node_id, wide=needs_raw_addressing(n_nodes))
    sp.state["scoma"] = st
    for line, home in enumerate(home_of):
        cls.set_state(line, CLS_RW if home == sp.node_id else CLS_INVALID)
    sp.register("scoma_miss", handle_miss)
    register_msg_handler(sp, proto.MSG_SCOMA_RREQ, handle_request_msg)
    register_msg_handler(sp, proto.MSG_SCOMA_WREQ, handle_request_msg)
    register_msg_handler(sp, proto.MSG_SCOMA_INV, handle_invalidate)
    register_msg_handler(sp, proto.MSG_SCOMA_INVACK, handle_invack)
    register_msg_handler(sp, proto.MSG_SCOMA_WBREQ, handle_writeback_req)
    register_msg_handler(sp, proto.MSG_SCOMA_WBDATA, handle_writeback_data)
    install_eviction(sp)


def _send_proto(sp: "ServiceProcessor", dst: int, payload: bytes
                ) -> Generator["Event", None, None]:
    """Send one protocol message to ``dst``'s SP_PROTOCOL_QUEUE (always
    the high network priority; RAW addressing beyond 16 nodes)."""
    st: ScomaState = sp.state["scoma"]
    if st.wide:
        yield from fw_send(sp, dst, payload, queue=SP_TX_PROTOCOL,
                           raw_queue=SP_PROTOCOL_QUEUE)
    else:
        yield from fw_send(sp, vdst_for(dst, SP_PROTOCOL_QUEUE), payload,
                           queue=SP_TX_PROTOCOL)


# ----------------------------------------------------------------------
# requester side
# ----------------------------------------------------------------------

_WRITE_OPS = (BusOpType.WRITE, BusOpType.WRITE_LINE, BusOpType.RWITM,
              BusOpType.KILL)


def handle_miss(sp: "ServiceProcessor", event: Tuple
                ) -> Generator["Event", None, None]:
    """An aP access failed the clsSRAM check: request the line."""
    _kind, op, line_base = event
    yield sp.compute(sp.fw.scoma_miss_insns)
    st: ScomaState = sp.state["scoma"]
    line = (line_base - st.scoma_base) // st.line_bytes
    want_rw = op in _WRITE_OPS
    home = st.home_of[line]
    if home == sp.node_id:
        yield from home_request(sp, want_rw, line, sp.node_id)
    else:
        yield from _send_proto(
            sp, home, proto.pack_scoma_req(want_rw, line * st.line_bytes, sp.node_id))


# ----------------------------------------------------------------------
# home side
# ----------------------------------------------------------------------

def handle_request_msg(sp: "ServiceProcessor", src: int, payload: bytes
                       ) -> Generator["Event", None, None]:
    """RREQ/WREQ arriving at the home node."""
    want_rw, offset, requester = proto.unpack_scoma_req(payload)
    yield sp.compute(sp.fw.scoma_home_insns)
    st: ScomaState = sp.state["scoma"]
    yield from home_request(sp, want_rw, st.line_of_offset(offset), requester)


def home_request(sp: "ServiceProcessor", want_rw: bool, line: int,
                 requester: int) -> Generator["Event", None, None]:
    """Serve (or queue) one coherence request at the home."""
    st: ScomaState = sp.state["scoma"]
    if st.home_of[line] != sp.node_id:
        raise FirmwareError(f"node {sp.node_id} is not home for line {line}")
    action = st.dir.request(line, want_rw, requester)
    kind = action[0]
    if kind == "queue":
        return
    if kind == "dup":
        # stale duplicate: the requester was invalidated after sending its
        # first request and re-missed before the (in-flight) grant landed.
        # The grant will satisfy the retrying access; dropping the
        # duplicate here is the only safe response — re-granting would
        # overwrite the owner's (possibly modified) frame with stale home
        # data.
        sp.stats.counter(f"{sp.name}.scoma_dup_requests").incr()
        return
    if kind == "invalidate":
        # write request: invalidate every other sharer first
        targets = action[1]
        sp.stats.counter(f"{sp.name}.scoma_inv_sent").incr(len(targets))
        for sharer in targets:
            yield from _send_proto(
                sp, sharer, proto.pack_scoma_inv(line * st.line_bytes))
        return
    if kind == "recall":
        owner, downgrade_to_ro = action[1], action[2]
        yield from _send_proto(
            sp, owner, proto.pack_scoma_wbreq(line * st.line_bytes,
                                   downgrade_to_ro=downgrade_to_ro))
        return
    # ("grant", want_rw, requester, keep_ro): the directory has settled;
    # move the data and flip the state bits.
    yield from _grant(sp, line, action[1], action[2], None)


def _grant(sp: "ServiceProcessor", line: int, want_rw: bool, requester: int,
           data) -> Generator["Event", None, None]:
    """Execute a grant at the home: move data and set line states.

    Pure mechanism — the directory bookkeeping already happened in the
    controller when the grant action was decided.
    """
    st: ScomaState = sp.state["scoma"]
    cls = sp.state["niu"].cls
    frame = st.frame_addr(line)
    if requester == sp.node_id:
        if want_rw:
            yield from _set_own_cls(sp, line, CLS_RW, cause="grant")
            return
        yield from _set_own_cls(sp, line, CLS_RO, cause="grant")
        sp.stats.accumulator("scoma.sharer_occupancy").add(
            float(st.dir.sharer_count(line)))
        return
    # Remote requester.  Revoke/downgrade the home's own access BEFORE
    # snapshotting the frame: the home aP writes through its own
    # write-back L2, so a store landing between the frame read and a
    # later state flip would exist only in a copy the grant no longer
    # covers.  Flipped first, any straggler store either still hits the
    # Modified L2 line (flushed into the granted bytes below) or misses
    # and queues at the directory behind this grant.
    home_had_rw = cls.state(line) == CLS_RW
    if not GRANT_PRESERVES_HOME_STORES and data is None and want_rw \
            and home_had_rw:
        # behavior model: revoke with a blunt KILL instead of the FLUSH
        # below — stores still Modified in the home's L2 are destroyed
        # (a KILL invalidates without a push), so the frame read returns
        # whatever subset had already been written back
        yield from _set_own_cls(sp, line, CLS_INVALID, cause="yield_owner",
                                kill_l2=True)
        data = yield from fw_dram_read(sp, frame, st.line_bytes, st.staging)
    elif want_rw:
        yield from _set_own_cls(sp, line, CLS_INVALID, cause="yield_owner",
                                kill_l2=not home_had_rw)
    elif home_had_rw:
        yield from _set_own_cls(sp, line, CLS_RO, cause="downgrade")
    if data is None:
        if home_had_rw:
            # the newest bytes may sit Modified in the home's L2: FLUSH
            # pushes them into the frame and invalidates the copy (a
            # KILL would destroy them — the WBREQ/evict paths agree)
            yield from sp.sbiu.enqueue_command(
                LOCAL_CMDQ_0,
                CmdBusOp(BusOpType.FLUSH, frame, st.line_bytes),
            )
        data = yield from fw_dram_read(sp, frame, st.line_bytes, st.staging)
    new_state = CLS_RW if want_rw else CLS_RO
    sp.stats.counter(f"{sp.name}.scoma_forwards").incr()
    yield from sp.sbiu.enqueue_command(
        LOCAL_CMDQ_0,
        CmdForward(requester, CmdWriteDram(frame, data,
                                           set_cls_state=new_state)),
    )
    if not want_rw:
        sp.stats.accumulator("scoma.sharer_occupancy").add(
            float(st.dir.sharer_count(line)))


def _set_own_cls(sp: "ServiceProcessor", line: int, state: int,
                 kill_l2: bool = False, cause: str = None
                 ) -> Generator["Event", None, None]:
    st: ScomaState = sp.state["scoma"]
    cls = sp.state["niu"].cls
    yield sp.compute(sp.fw.cls_update_insns)
    yield from sp.sbiu.immediate(
        lambda: cls.set_state(line, state, cause=cause))
    if kill_l2:
        yield from sp.sbiu.enqueue_command(
            LOCAL_CMDQ_0,
            CmdBusOp(BusOpType.KILL, st.frame_addr(line), st.line_bytes),
        )


def _drain_waiters(sp: "ServiceProcessor", line: int
                   ) -> Generator["Event", None, None]:
    """Replay requests queued while the line was BUSY."""
    st: ScomaState = sp.state["scoma"]
    while True:
        waiter = st.dir.pop_waiter(line)
        if waiter is None:
            return
        want_rw, requester = waiter
        yield from home_request(sp, want_rw, line, requester)


# ----------------------------------------------------------------------
# sharer / owner sides
# ----------------------------------------------------------------------

def handle_invalidate(sp: "ServiceProcessor", src: int, payload: bytes
                      ) -> Generator["Event", None, None]:
    """A sharer drops its copy and acknowledges."""
    offset = proto.unpack_scoma_inv(payload)
    yield sp.compute(sp.fw.cls_update_insns)
    st: ScomaState = sp.state["scoma"]
    line = st.line_of_offset(offset)
    yield from _set_own_cls(sp, line, CLS_INVALID, kill_l2=True, cause="inv")
    yield from _send_proto(
        sp, src, proto.pack_scoma_invack(offset))


def handle_invack(sp: "ServiceProcessor", src: int, payload: bytes
                  ) -> Generator["Event", None, None]:
    """Home collects invalidation acks; the last one releases the grant."""
    offset = proto.unpack_scoma_invack(payload)
    yield sp.compute(sp.fw.scoma_home_insns)
    st: ScomaState = sp.state["scoma"]
    line = st.line_of_offset(offset)
    action = st.dir.ack(line, src)
    if action[0] == "wait":
        return
    sp.stats.counter(f"{sp.name}.scoma_ack_rounds").incr()
    yield from _grant(sp, line, action[1], action[2], None)
    yield from _drain_waiters(sp, line)


def handle_writeback_req(sp: "ServiceProcessor", src: int, payload: bytes
                         ) -> Generator["Event", None, None]:
    """The exclusive owner returns its (possibly dirty) line to the home."""
    offset, downgrade_to_ro = proto.unpack_scoma_wbreq(payload)
    yield sp.compute(sp.fw.scoma_fill_insns)
    st: ScomaState = sp.state["scoma"]
    cls = sp.state["niu"].cls
    line = st.line_of_offset(offset)
    frame = st.frame_addr(line)
    if cls.state(line) != CLS_RW:
        # the copy already left via a voluntary eviction; the EVICT in
        # flight settles the recall at the home.  Answering anyway would
        # resurrect a relinquished line (and ship stale bytes).
        sp.stats.counter(f"{sp.name}.scoma_stale_wbreq").incr()
        return
    # drop write rights BEFORE reading the frame — a store landing after
    # the snapshot would otherwise stay in a copy the writeback missed —
    # then force any Modified L2 data into the frame and read it
    if downgrade_to_ro:
        yield from _set_own_cls(sp, line, CLS_RO, cause="relinquish")
    else:
        yield from _set_own_cls(sp, line, CLS_INVALID, cause="relinquish")
    yield from sp.sbiu.enqueue_command(
        LOCAL_CMDQ_0, CmdBusOp(BusOpType.FLUSH, frame, st.line_bytes)
    )
    data = yield from fw_dram_read(sp, frame, st.line_bytes, st.staging)
    yield from _send_proto(
        sp, src, proto.pack_scoma_wbdata(offset, data))


def handle_writeback_data(sp: "ServiceProcessor", src: int, payload: bytes
                          ) -> Generator["Event", None, None]:
    """Home installs recalled data and completes the pending request."""
    offset, data = proto.unpack_scoma_wbdata(payload)
    yield sp.compute(sp.fw.scoma_home_insns)
    st: ScomaState = sp.state["scoma"]
    line = st.line_of_offset(offset)
    action = st.dir.wbdata(line, src)
    if action[0] == "stale":
        # a dirty eviction raced ahead of the recall and already settled
        # the line; this WBDATA is the recall's late echo — drop it
        sp.stats.counter(f"{sp.name}.scoma_stale_wbdata").incr()
        return
    _kind, want_rw, requester, keep_ro = action
    # fenced: the grant below makes the frame readable (possibly by the
    # home's own retrying aP), so the data must be committed first
    yield from fw_dram_write(sp, st.frame_addr(line), data)
    if keep_ro:
        # the home frame is the memory copy again: home may read it
        yield from _set_own_cls(sp, line, CLS_RO, cause="wb_install")
    yield from _grant(sp, line, want_rw, requester, data)
    yield from _drain_waiters(sp, line)


# ----------------------------------------------------------------------
# capacity management: voluntary frame eviction
# ----------------------------------------------------------------------
#
# The L3 "cache" is local DRAM; when the OS wants a frame back it asks
# firmware to evict the line.  Clean (RO) copies silently leave the
# sharer set; a dirty (RW) copy carries its data home first.  Evictions
# race benignly with the home's own invalidations/recalls: the home
# treats an eviction that crosses a recall as the recall's writeback,
# and late echoes for an already-settled line are counted and dropped.

#: request type for the local "evict this line" ask (application range).
MSG_SCOMA_EVICT_REQ = proto.MSG_USER + 2


def pack_evict_req(line_offset: int) -> bytes:
    """Local eviction request (aP -> own sP service queue)."""
    return bytes([MSG_SCOMA_EVICT_REQ, 0]) + line_offset.to_bytes(4, "big")


def install_eviction(sp: "ServiceProcessor") -> None:
    """Enable eviction support (registered by setup_scoma)."""
    register_msg_handler(sp, MSG_SCOMA_EVICT_REQ, handle_evict_request)
    register_msg_handler(sp, proto.MSG_SCOMA_EVICT, handle_evict_notice)
    register_msg_handler(sp, proto.MSG_SCOMA_EVICT_DIRTY, handle_evict_dirty)


def handle_evict_request(sp: "ServiceProcessor", src: int, payload: bytes
                         ) -> Generator["Event", None, None]:
    """Local side: drop the line, telling the home what it needs to know."""
    offset = int.from_bytes(payload[2:6], "big")
    yield sp.compute(sp.fw.scoma_miss_insns)
    st: ScomaState = sp.state["scoma"]
    cls = sp.state["niu"].cls
    line = st.line_of_offset(offset)
    home = st.home_of[line]
    state = cls.state(line)
    if home == sp.node_id:
        # the home frame IS memory; nothing to evict
        return
    if state == CLS_RO:
        yield from _set_own_cls(sp, line, CLS_INVALID, kill_l2=True,
                                cause="evict")
        yield from _send_proto(
            sp, home, proto.pack_scoma_evict(offset))
    elif state == CLS_RW:
        # drop rights first (stores after the flip queue at the home),
        # flush newer L2 data into the frame, read it, ship it home
        yield from _set_own_cls(sp, line, CLS_INVALID, cause="evict")
        yield from sp.sbiu.enqueue_command(
            LOCAL_CMDQ_0,
            CmdBusOp(BusOpType.FLUSH, st.frame_addr(line), st.line_bytes),
        )
        data = yield from fw_dram_read(sp, st.frame_addr(line),
                                       st.line_bytes, st.staging)
        yield from _send_proto(
            sp, home, proto.pack_scoma_evict_dirty(offset, data))
    # INVALID/PENDING: nothing cached here; the request is a no-op


def handle_evict_notice(sp: "ServiceProcessor", src: int, payload: bytes
                        ) -> Generator["Event", None, None]:
    """Home side: a sharer dropped its clean copy."""
    offset = proto.unpack_scoma_evict(payload)
    yield sp.compute(sp.fw.scoma_home_insns)
    st: ScomaState = sp.state["scoma"]
    st.dir.evict_clean(st.line_of_offset(offset), src)


def handle_evict_dirty(sp: "ServiceProcessor", src: int, payload: bytes
                       ) -> Generator["Event", None, None]:
    """Home side: the owner evicted; its data re-validates the home frame.

    If a recall (WBREQ) was already in flight for this line, the eviction
    *is* the writeback: complete the pending request with this data.  An
    eviction from anyone but the recorded owner is a stale echo of a
    previous ownership epoch — its data must not touch the frame.
    """
    offset, data = proto.unpack_scoma_evict_dirty(payload)
    yield sp.compute(sp.fw.scoma_home_insns)
    st: ScomaState = sp.state["scoma"]
    line = st.line_of_offset(offset)
    action = st.dir.evict_dirty(line, src)
    if action[0] == "stale":
        sp.stats.counter(f"{sp.name}.scoma_stale_evicts").incr()
        return
    # fenced for the same reason as the WBDATA install: the state flips
    # below make the frame readable before an unfenced write would land
    yield from fw_dram_write(sp, st.frame_addr(line), data)
    if action[0] == "settle":
        yield from _set_own_cls(sp, line, CLS_RW, cause="settle")
        return
    _kind, want_rw, requester, keep_ro = action
    if keep_ro:
        yield from _set_own_cls(sp, line, CLS_RO, cause="wb_install")
    yield from _grant(sp, line, want_rw, requester, data)
    yield from _drain_waiters(sp, line)
