"""sP firmware: the programs the NIU's embedded 604 runs.

:func:`install_default_firmware` loads the shipped firmware image onto a
node's service processor: the message dispatcher, miss-queue service,
the DMA engine, and the NUMA and S-COMA shared-memory protocols —
the complete set of §5 "default communication mechanisms" that need
firmware.  Individual engines can also be installed piecemeal (tests do)
and replaced at runtime (experiments do).
"""

from typing import List, Optional

from repro.firmware.base import (
    fw_dram_read,
    fw_dram_write,
    fw_recv_all,
    fw_send,
    fw_wait,
    install_base_firmware,
    register_msg_handler,
    rxmsg_dispatcher,
)
from repro.firmware.blockxfer import setup_blockxfer
from repro.firmware.dma import install_dma_firmware
from repro.firmware.msg import declare_dram_queue, install_missq_firmware
from repro.firmware.numa import NumaMap, setup_numa
from repro.firmware.reflective import install_reflective
from repro.firmware.reliable import ensure_reliable, setup_reliable
from repro.firmware.scoma import setup_scoma

__all__ = [
    "install_default_firmware",
    "install_base_firmware",
    "install_missq_firmware",
    "install_dma_firmware",
    "install_reflective",
    "setup_numa",
    "setup_reliable",
    "ensure_reliable",
    "setup_scoma",
    "declare_dram_queue",
    "register_msg_handler",
    "rxmsg_dispatcher",
    "fw_send",
    "fw_recv_all",
    "fw_wait",
    "fw_dram_read",
    "fw_dram_write",
    "NumaMap",
]


def install_default_firmware(node, n_nodes: int,
                             scoma_home_of: Optional[List[int]] = None) -> None:
    """Load the complete default firmware image onto one node's sP.

    ``scoma_home_of`` assigns a home node per S-COMA line (defaults to
    round-robin by page).  Must run before the machine starts.
    """
    sp = node.sp
    sp.state["niu"] = node.niu
    sp.state["node"] = node
    install_base_firmware(sp)
    install_missq_firmware(sp)
    install_dma_firmware(sp)
    setup_blockxfer(sp)
    numa_map = NumaMap(n_nodes, node.numa_bytes, node.numa_backing_base)
    setup_numa(sp, numa_map)
    if scoma_home_of is None:
        line_bytes = node.config.bus.line_bytes
        lines_per_page = node.config.dram.page_bytes // line_bytes
        n_lines = node.niu.cls.n_lines
        scoma_home_of = [
            (line // lines_per_page) % n_nodes for line in range(n_lines)
        ]
    setup_scoma(sp, scoma_home_of)
    setup_reliable(sp, n_nodes)
    # the CollectiveUnit (lazy import: repro.collectives builds on this
    # package's primitives)
    from repro.collectives.firmware import setup_collectives
    from repro.collectives.plan import binomial_tree

    setup_collectives(sp, binomial_tree(n_nodes))
