"""Miss/overflow queue service: DRAM-resident receive queues.

"Firmware will then process the message in the miss/overflow queue and
write it to its non-resident (DRAM) location.  Selectively caching
queues enables the NIU to support a large number of logical destinations
efficiently, while using only a small amount of resources."

A non-resident logical queue is a ring in ordinary DRAM.  Firmware
appends entries with command-stream DRAM writes; the application polls
the ring's producer counter with plain cached loads — the NIU's write
invalidates the aP's cached copy through normal bus snooping, so polling
is cheap until something actually arrives.

Ring layout (all big-endian):

====== =====================================
offset contents
====== =====================================
0      producer count (u32, firmware-owned)
4      consumer count (u32, reader-owned)
64+    entries: 8-byte header + 88 payload
====== =====================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Generator, Tuple

from repro.firmware.base import fw_dram_write
from repro.niu.msgformat import ENTRY_BYTES, encode_rx_header

if TYPE_CHECKING:  # pragma: no cover
    from repro.niu.sp import ServiceProcessor
    from repro.sim.events import Event

RING_HEADER_BYTES = 64

#: Behavior-model switch for the interleaving explorer
#: (:mod:`repro.explore.models`, model ``"overflow_drop"``).  When
#: False, entries of an sP-owned (interrupt-dispatched) queue that
#: overflowed into the miss queue are *dropped* instead of redelivered
#: to their message handler — the pre-fix behavior whose barrier hang
#: the explorer re-finds as a regression.  Always True in normal runs.
REDELIVER_SP_OVERFLOW = True


@dataclass
class DramRing:
    """Descriptor of one DRAM-resident logical queue."""

    base: int
    depth: int

    @property
    def size_bytes(self) -> int:
        """Total DRAM footprint of the ring."""
        return RING_HEADER_BYTES + self.depth * ENTRY_BYTES

    def entry_addr(self, n: int) -> int:
        """DRAM address of entry number ``n``."""
        return self.base + RING_HEADER_BYTES + (n % self.depth) * ENTRY_BYTES


def declare_dram_queue(sp: "ServiceProcessor", logical: int,
                       base: int, depth: int) -> DramRing:
    """Register a DRAM ring as the home of a non-resident logical queue."""
    rings: Dict[int, DramRing] = sp.state.setdefault("dram_rings", {})
    ring = DramRing(base, depth)
    rings[logical] = ring
    sp.state.setdefault("dram_ring_producer", {})[logical] = 0
    return ring


def missq_service(sp: "ServiceProcessor", event: Tuple
                  ) -> Generator["Event", None, None]:
    """The ``missq`` event handler: drain CTRL's miss/overflow queue."""
    ctrl = sp.ctrl
    rings: Dict[int, DramRing] = sp.state.get("dram_rings", {})
    producers: Dict[int, int] = sp.state.get("dram_ring_producer", {})
    handlers = sp.state.get("msg_handlers", {})
    specials = sp.state.get("queue_dispatchers", {})
    while not ctrl.miss_queue.is_empty:
        kind, logical, src, payload, flags = ctrl.miss_queue.try_get()
        yield sp.compute(sp.fw.missq_service_insns)
        ring = rings.get(logical)
        if ring is None:
            # An sP-owned queue (interrupt-dispatched, no special drain
            # routine) that overflowed under a burst: the message is
            # already in hand, so firmware processes it here exactly as
            # the rxmsg dispatcher would have.
            slot = ctrl.rx_cache.resident().get(logical)
            q = ctrl.rx_queues[slot] if slot is not None else None
            if (REDELIVER_SP_OVERFLOW
                    and q is not None and q.interrupt_on_arrival
                    and logical not in specials and payload
                    and payload[0] in handlers):
                ctrl.stats.counter(f"{ctrl.name}.missq_redelivered").incr()
                yield from handlers[payload[0]](sp, src, payload)
                continue
            # no DRAM home declared: the message is dropped and logged —
            # the OS would tear down the offending sender
            sp.state.setdefault("missq_dropped", []).append((kind, logical, src))
            ctrl.stats.counter(f"{ctrl.name}.missq_dropped").incr()
            continue
        n = producers[logical]
        entry = encode_rx_header(src, len(payload), flags) + payload
        yield from fw_dram_write(sp, ring.entry_addr(n), entry, fence=False)
        producers[logical] = n + 1
        yield from fw_dram_write(
            sp, ring.base, (producers[logical] & 0xFFFFFFFF).to_bytes(4, "big"),
            fence=False,
        )
        ctrl.stats.counter(f"{ctrl.name}.missq_serviced").incr()


def install_missq_firmware(sp: "ServiceProcessor") -> None:
    """Install the miss-queue service handler."""
    sp.register("missq", missq_service)
