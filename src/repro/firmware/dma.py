"""The DMA engine: firmware orchestration of the block units.

"DMA is a combination of blocked operations.  The user sends a message
to the sP requesting a DMA.  The sP breaks up the DMA into as many
blocked operations as are necessary to respect the page limit and
boundary limitations, and issues the appropriate read/transmit block
operation combinations."

The engine double-buffers two page-sized aSRAM staging areas: while one
page's block-transmit streams onto the network, the next page's block
read fills the other buffer.  Chaining (``CmdBlockTx.after``) keeps the
sP out of the per-page critical path — this is Block Transfer Approach 3,
and the reason its sP occupancy is near nil.

The ``mode`` byte of the request selects the §6 experiment variants:

* mode 3 — plain hardware DMA, notification with the final packet;
* mode 4 — optimistic early notification after ~25 % of the data, with
  per-chunk sP wakeups updating clsSRAM state in firmware;
* mode 5 — like 4, but the (reconfigured) destination aBIU updates
  clsSRAM in hardware as each chunk lands, so the destination sP never
  wakes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, List, Tuple

from repro.common.errors import FirmwareError
from repro.firmware import proto
from repro.firmware.base import fw_wait, register_msg_handler
from repro.niu.clssram import CLS_RW
from repro.niu.commands import LOCAL_CMDQ_1, CmdBlockRead, CmdBlockTx
from repro.niu.queues import BANK_A

if TYPE_CHECKING:  # pragma: no cover
    from repro.niu.sp import ServiceProcessor
    from repro.sim.events import Event

#: sub-page piece size used to pipeline block read against block transmit.
DMA_PIECE_BYTES = 1024


def setup_dma_engine(sp: "ServiceProcessor") -> None:
    """Allocate staging buffers, start the engine task, register intake.

    The engine runs as a *background firmware task*: the dispatch kernel
    only validates and queues each request, so a long transfer never
    head-of-line blocks protocol events (S-COMA/NUMA messages keep their
    latency while bulk data streams — the firmware-structure counterpart
    of the two-priority network).  Requests stay FIFO through the intake
    queue.
    """
    from repro.sim.store import Store

    page = sp.ctrl.config.dram.page_bytes
    niu = sp.state["niu"]
    buffers = [niu.alloc_asram(page, align=64) for _ in range(2)]
    sp.state["dma_buffers"] = buffers
    #: per-buffer event: the previous BlockTx using it has completed.
    sp.state["dma_buffer_free"] = [None, None]
    sp.state["dma_requests"] = Store(sp.engine, capacity=None,
                                     name=f"{sp.name}.dmareq")
    register_msg_handler(sp, proto.MSG_DMA_REQ, intake_dma_request)
    sp.engine.process(_dma_engine_task(sp), name=f"{sp.name}.dma_engine",
                      daemon=True)


def intake_dma_request(sp: "ServiceProcessor", src: int, payload: bytes
                       ) -> Generator["Event", None, None]:
    """Kernel-side intake: validate cheaply, queue for the engine task."""
    yield sp.compute(10)
    sp.state["dma_requests"].try_put((src, payload))


def _dma_engine_task(sp: "ServiceProcessor"):
    """The background engine: serves queued requests strictly in order.

    Busy time accrues on the shared sP tracker while the engine computes
    or issues commands, and is released across its waits (fw_wait), so
    occupancy accounting still reflects one processor's time.
    """
    requests = sp.state["dma_requests"]
    while True:
        src, payload = yield requests.get()
        sp.busy.begin()
        try:
            yield from handle_dma_request(sp, src, payload)
        finally:
            sp.busy.end()


def split_pages(addr: int, length: int, page: int) -> List[Tuple[int, int]]:
    """Split ``[addr, addr+length)`` at page boundaries -> (addr, len) list."""
    pieces = []
    while length > 0:
        n = min(page - (addr % page), length)
        pieces.append((addr, n))
        addr += n
        length -= n
    return pieces


def handle_dma_request(sp: "ServiceProcessor", src: int, payload: bytes
                       ) -> Generator["Event", None, None]:
    """Serve one MSG_DMA_REQ: chained block read + block transmit per page."""
    src_addr, dst_node, dst_addr, length, notify_q, mode = \
        proto.unpack_dma_req(payload)
    if mode == 2:
        # Approach 2: the sP packetizes with TagOn messages instead of
        # using the block units
        from repro.firmware.blockxfer import bt2_send

        yield sp.compute(sp.fw.dma_request_insns)
        yield from bt2_send(sp, src_addr, dst_node, dst_addr, length, notify_q)
        return
    if mode not in (3, 4, 5):
        raise FirmwareError(f"unknown DMA mode {mode}")
    yield sp.compute(sp.fw.dma_request_insns)

    # pieces smaller than a page keep the two block units pipelined: one
    # buffer ships on the network while the other fills from DRAM.  The
    # piece size is a firmware tunable (ablated in bench_ablations.py).
    page = sp.ctrl.config.dram.page_bytes
    piece_bytes = min(page, sp.state.get("dma_piece_bytes", DMA_PIECE_BYTES))
    pieces = split_pages(src_addr, length, piece_bytes)
    buffers = sp.state["dma_buffers"]
    buffer_free = sp.state["dma_buffer_free"]
    engine = sp.engine

    # Approach 4/5: early notification once ~25% of the data has landed
    early_cut = None
    if mode in (4, 5):
        early_cut = max(1, (length + 3) // 4)

    sent = 0
    for i, (piece_addr, piece_len) in enumerate(pieces):
        yield sp.compute(sp.fw.dma_per_page_insns)
        buf = buffers[i % 2]
        prev_tx = buffer_free[i % 2]
        if prev_tx is not None:
            yield from fw_wait(sp, prev_tx)  # buffer still shipping: idle
        read_done = engine.event(name=f"dma.read{i}")
        tx_done = engine.event(name=f"dma.tx{i}")
        buffer_free[i % 2] = tx_done
        last = i == len(pieces) - 1
        notify_here = last and mode == 3
        # early-notification piece: the first piece whose *end* crosses the
        # 25% cut carries the optimistic completion message
        early_here = (
            early_cut is not None
            and sent < early_cut <= sent + piece_len
        )
        yield from sp.sbiu.enqueue_command(
            LOCAL_CMDQ_1,
            CmdBlockRead(piece_addr, piece_len, BANK_A, buf, done=read_done),
        )
        yield from sp.sbiu.enqueue_command(
            LOCAL_CMDQ_1,
            CmdBlockTx(
                bank=BANK_A,
                offset=buf,
                length=piece_len,
                dst_node=dst_node,
                dst_addr=dst_addr + sent,
                after=read_done,
                done=tx_done,
                notify_queue=notify_q if (notify_here or early_here) else None,
                notify_payload=length.to_bytes(4, "big"),
                cls_state=CLS_RW if mode == 5 else None,
                notify_sp_each=(mode == 4),
            ),
        )
        sent += piece_len

    final_tx = buffer_free[(len(pieces) - 1) % 2]
    if mode in (4, 5):
        # the receiver was told "done" early; the transfer itself still
        # completes in the background — nothing further for this sP
        yield from fw_wait(sp, final_tx)
    else:
        yield from fw_wait(sp, final_tx)
    sp.stats.counter(f"{sp.name}.dma_served").incr()


def install_dma_firmware(sp: "ServiceProcessor") -> None:
    """Install the DMA engine (requires ``sp.state['niu']``)."""
    setup_dma_engine(sp)
