"""Block-transfer firmware: Approach 2 and the Approach-4/5 receiver side.

**Approach 2** ("the aP issues a request to the local sP, which takes
over the responsibility of reading, packetizing, and sending out the
packets ... neither processor reads the data directly"):

* sender sP: for each 80-byte chunk it pushes ``CmdReadDram`` (aP DRAM →
  sSRAM staging) and ``CmdSendMessage`` with a TagOn pickup of that
  staging — the in-order command queue guarantees the read lands before
  the send reads it, so no fences are needed and no processor touches a
  data byte;
* receiver sP: chunks land in the dedicated bulk queue; firmware reads
  only the 8-byte descriptor and issues ``CmdWriteDramFromSram`` against
  the payload bytes still sitting in receive-queue SRAM, retiring the
  queue slot with an in-order ``CmdCall`` so CTRL cannot overwrite the
  entry before the data has left.

The per-chunk firmware loop is exactly why the paper reports Approach 2
has "a significant impact on sP occupancy".

**Approach 4/5 receiver support**:

* ``MSG_BT45_ARM`` sets the destination lines' clsSRAM state to PENDING
  (retry silently) before the transfer, in firmware (mode 4) or with one
  bulk ``CmdSetClsState`` through the block machinery (mode 5);
* the ``dram_write`` event handler is the mode-4 per-chunk sP wakeup
  that flips landed lines to RW; mode 5 needs no wakeup because the
  reconfigured aBIU updates clsSRAM in hardware.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Tuple

from repro.common.errors import FirmwareError
from repro.firmware import proto
from repro.firmware.base import (
    fw_wait,
    register_msg_handler,
    register_queue_dispatcher,
)
from repro.niu.clssram import CLS_PENDING, CLS_RW
from repro.niu.commands import (
    LOCAL_CMDQ_0,
    LOCAL_CMDQ_1,
    CmdCall,
    CmdNotify,
    CmdReadDram,
    CmdSendMessage,
    CmdSetClsState,
    CmdWriteDramFromSram,
)
from repro.niu.msgformat import (
    FLAG_TAGON,
    HEADER_BYTES,
    TAGON_LARGE_UNITS,
    TAGON_UNIT_BYTES,
    MsgHeader,
    decode_rx_header,
)
from repro.niu.niu import SP_BULK_QUEUE, SP_TX_GENERAL, vdst_for
from repro.niu.queues import BANK_S

if TYPE_CHECKING:  # pragma: no cover
    from repro.niu.sp import ServiceProcessor
    from repro.sim.events import Event

#: Approach-2 chunk: the large TagOn attachment (2.5 lines).
BT2_CHUNK = TAGON_LARGE_UNITS * TAGON_UNIT_BYTES  # 80 bytes
#: firmware cost per Approach-2 chunk on each side.
BT2_SEND_CHUNK_INSNS = 90
BT2_RECV_CHUNK_INSNS = 80
#: MSG_BT45_ARM: type, mode, addr6, len4
ARM_INSNS_PER_LINE = 10


def pack_bt45_arm(dst_addr: int, length: int, mode: int) -> bytes:
    """Arm request for the optimistic-notification experiments."""
    return (bytes([proto.MSG_USER, mode]) + dst_addr.to_bytes(6, "big")
            + length.to_bytes(4, "big"))


def unpack_bt45_arm(p: bytes) -> Tuple[int, int, int]:
    """Returns (dst_addr, length, mode)."""
    if p[0] != proto.MSG_USER:
        raise FirmwareError(f"not an ARM request: {p!r}")
    return int.from_bytes(p[2:8], "big"), int.from_bytes(p[8:12], "big"), p[1]


def setup_blockxfer(sp: "ServiceProcessor") -> None:
    """Install Approach-2 and Approach-4/5 firmware on one sP."""
    niu = sp.state["niu"]
    sp.state["bt2_staging"] = niu.alloc_ssram(BT2_CHUNK, align=16)
    sp.state["bt2_rx_next"] = 0
    register_queue_dispatcher(sp, SP_BULK_QUEUE, bt2_receive_dispatcher)
    register_msg_handler(sp, proto.MSG_USER, handle_arm)
    sp.register("dram_write", handle_dram_write)


# ----------------------------------------------------------------------
# Approach 2: sender side
# ----------------------------------------------------------------------

def bt2_send(sp: "ServiceProcessor", src_addr: int, dst_node: int,
             dst_addr: int, length: int, notify_queue: int
             ) -> Generator["Event", None, None]:
    """Packetize and ship ``length`` bytes through TagOn messages."""
    staging = sp.state["bt2_staging"]
    bulk_vdst = vdst_for(dst_node, SP_BULK_QUEUE)
    offset = 0
    while offset < length:
        chunk = min(BT2_CHUNK, length - offset)
        yield sp.compute(BT2_SEND_CHUNK_INSNS)
        yield from sp.sbiu.enqueue_command(
            LOCAL_CMDQ_0, CmdReadDram(src_addr + offset, chunk, BANK_S, staging)
        )
        hdr = MsgHeader(
            flags=FLAG_TAGON,
            vdst=bulk_vdst,
            length=8,
            tagon_bank=BANK_S,
            tagon_offset=staging,
            tagon_units=TAGON_LARGE_UNITS,
        )
        yield from sp.sbiu.enqueue_command(
            LOCAL_CMDQ_0,
            CmdSendMessage(queue=SP_TX_GENERAL, header=hdr,
                           payload=proto.pack_bt2_chunk(dst_addr + offset)),
        )
        offset += chunk
    # the completion marker follows the data through the same FIFO path
    yield sp.compute(sp.fw.send_msg_insns)
    done_hdr = MsgHeader(vdst=bulk_vdst, length=6)
    yield from sp.sbiu.enqueue_command(
        LOCAL_CMDQ_0,
        CmdSendMessage(queue=SP_TX_GENERAL, header=done_hdr,
                       payload=proto.pack_bt2_done(notify_queue, length)),
    )
    sp.stats.counter(f"{sp.name}.bt2_served").incr()


# ----------------------------------------------------------------------
# Approach 2: receiver side
# ----------------------------------------------------------------------

def bt2_receive_dispatcher(sp: "ServiceProcessor", logical: int
                           ) -> Generator["Event", None, None]:
    """Drain the bulk queue reading descriptors only.

    The chunk payload's TagOn bytes stay in receive-queue SRAM until the
    in-order ``CmdWriteDramFromSram`` has moved them to DRAM; only then
    does the chained ``CmdCall`` free the slot.
    """
    ctrl = sp.ctrl
    slot = ctrl.rx_cache.resident().get(logical)
    if slot is None:
        raise FirmwareError(f"bulk queue {logical} is not resident")
    q = ctrl.rx_queues[slot]
    next_unprocessed = sp.state["bt2_rx_next"]
    while next_unprocessed < q.producer:
        entry = next_unprocessed
        next_unprocessed += 1
        sp.state["bt2_rx_next"] = next_unprocessed
        yield sp.compute(BT2_RECV_CHUNK_INSNS)
        base = q.slot_offset(entry)
        raw = yield from sp.sbiu.read_ssram(base, HEADER_BYTES + 8)
        src, length, _flags = decode_rx_header(raw[:HEADER_BYTES])
        desc = raw[HEADER_BYTES:]
        if desc[0] == proto.MSG_BT2_CHUNK:
            dst_addr, _ = proto.unpack_bt2_chunk(desc)
            data_len = length - 8  # TagOn bytes after the 8-byte descriptor
            yield from sp.sbiu.enqueue_command(
                LOCAL_CMDQ_0,
                CmdWriteDramFromSram(BANK_S, base + HEADER_BYTES + 8,
                                     dst_addr, data_len),
            )
            yield from sp.sbiu.enqueue_command(
                LOCAL_CMDQ_0,
                CmdCall(lambda i=slot, c=entry + 1:
                        ctrl.rx_consumer_update(i, c)),
            )
        elif desc[0] == proto.MSG_BT2_DONE:
            notify_queue, total = proto.unpack_bt2_done(desc[:6])
            # the notification must follow the last data write: same queue
            yield from sp.sbiu.enqueue_command(
                LOCAL_CMDQ_0,
                CmdNotify(notify_queue, total.to_bytes(4, "big"),
                          src_node=src),
            )
            yield from sp.sbiu.enqueue_command(
                LOCAL_CMDQ_0,
                CmdCall(lambda i=slot, c=entry + 1:
                        ctrl.rx_consumer_update(i, c)),
            )
        else:
            raise FirmwareError(f"unexpected bulk-queue message {desc[0]}")


# ----------------------------------------------------------------------
# Approach 4/5: receiver-side arming and per-chunk wakeups
# ----------------------------------------------------------------------

def handle_arm(sp: "ServiceProcessor", src: int, payload: bytes
               ) -> Generator["Event", None, None]:
    """Set the destination lines to PENDING before an optimistic transfer."""
    dst_addr, length, mode = unpack_bt45_arm(payload)
    cls = sp.state["niu"].cls
    line_bytes = cls.line_bytes
    first = cls.line_of(dst_addr)
    n_lines = -(-length // line_bytes)
    if mode == 4:
        # firmware walks the lines one by one
        for line in range(first, first + n_lines):
            yield sp.compute(ARM_INSNS_PER_LINE)
            yield from sp.sbiu.immediate(
                lambda l=line: cls.set_state(l, CLS_PENDING)
            )
    else:
        # mode 5: "the block operation unit can be used to set the
        # clsSRAM bits to their initial retry state" — one command
        yield sp.compute(sp.fw.block_setup_insns)
        done = sp.engine.event(name="arm.done")
        yield from sp.sbiu.enqueue_command(
            LOCAL_CMDQ_1, CmdSetClsState(first, n_lines, CLS_PENDING)
        )
        yield from sp.sbiu.enqueue_command(LOCAL_CMDQ_1, CmdCall(done.succeed))
        yield from fw_wait(sp, done)


def handle_dram_write(sp: "ServiceProcessor", event: Tuple
                      ) -> Generator["Event", None, None]:
    """Mode-4 per-chunk wakeup: mark the landed lines readable."""
    _kind, addr, length = event
    cls = sp.state["niu"].cls
    if not cls.covers(addr):
        return
    first = cls.line_of(addr)
    n_lines = -(-length // cls.line_bytes)
    for line in range(first, first + n_lines):
        yield sp.compute(sp.fw.cls_update_insns)
        yield from sp.sbiu.immediate(lambda l=line: cls.set_state(l, CLS_RW))
