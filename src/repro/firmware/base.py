"""Firmware building blocks shared by every protocol engine.

Provides the timed primitives firmware handlers compose:

* :func:`fw_send` — compose and launch a message through a CTRL command
  queue (the ordered firmware send path);
* :func:`fw_recv_all` — drain an sP-owned receive queue from sSRAM;
* :func:`fw_dram_read` / :func:`fw_dram_write` — move DRAM data through
  the in-order command stream with a CmdCall completion fence;
* :func:`fw_wait` — block on an event *without* accruing sP occupancy
  (the firmware would service other events meanwhile);
* the ``rxmsg`` dispatcher that fans protocol messages out to per-type
  handlers registered in ``sp.state["msg_handlers"]``.

Every primitive charges the instruction budgets from
:class:`~repro.common.config.FirmwareCostConfig` — firmware occupancy is
the paper's central measured quantity, so the costs are explicit and
centralized.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator, List, Optional, Tuple

from repro.niu.commands import (
    LOCAL_CMDQ_0,
    CmdCall,
    CmdReadDram,
    CmdSendMessage,
    CmdWriteDram,
)
from repro.niu.msgformat import (
    FLAG_RAW,
    FLAG_TAGON,
    HEADER_BYTES,
    MsgHeader,
    decode_rx_header,
)
from repro.niu.niu import SP_TX_GENERAL
from repro.niu.queues import BANK_S

if TYPE_CHECKING:  # pragma: no cover
    from repro.niu.sp import ServiceProcessor
    from repro.sim.events import Event


def fw_wait(sp: "ServiceProcessor", event: "Event"
            ) -> Generator["Event", None, object]:
    """Wait on ``event`` without counting the wait as sP occupancy."""
    sp.busy.end()
    try:
        value = yield event
    finally:
        sp.busy.begin()
    return value


def fw_send(
    sp: "ServiceProcessor",
    vdst: int,
    payload: bytes,
    queue: int = SP_TX_GENERAL,
    tagon_bank: Optional[int] = None,
    tagon_offset: int = 0,
    tagon_units: int = 0,
    raw_queue: Optional[int] = None,
) -> Generator["Event", None, None]:
    """Send a message from firmware via the ordered command stream.

    With ``raw_queue`` set, the message uses kernel-mode RAW addressing:
    ``vdst`` is the physical destination node and ``raw_queue`` the
    destination logical queue (required beyond the 16-node byte-vdst
    translation convention; the tx queue must be ``allow_raw``).
    """
    yield sp.compute(sp.fw.send_msg_insns)
    flags = 0
    if tagon_bank is not None:
        flags |= FLAG_TAGON
    if raw_queue is not None:
        flags |= FLAG_RAW
    hdr = MsgHeader(
        flags=flags,
        vdst=vdst,
        length=len(payload),
        dst_queue=raw_queue or 0,
        tagon_bank=tagon_bank or 0,
        tagon_offset=tagon_offset,
        tagon_units=tagon_units,
    )
    yield from sp.sbiu.enqueue_command(
        LOCAL_CMDQ_0, CmdSendMessage(queue=queue, header=hdr, payload=payload)
    )


def fw_recv_all(sp: "ServiceProcessor", logical: int
                ) -> Generator["Event", None, List[Tuple[int, bytes]]]:
    """Drain every queued message from an sP-owned receive queue.

    Returns ``[(src_node, payload), ...]`` oldest first.  Reads entries
    from sSRAM through the sBIU and retires them with consumer-pointer
    updates through the immediate interface.
    """
    ctrl = sp.ctrl
    slot = ctrl.rx_cache.resident().get(logical)
    if slot is None:
        return []
    q = ctrl.rx_queues[slot]
    out: List[Tuple[int, bytes]] = []
    while not q.is_empty:
        yield sp.compute(sp.fw.recv_msg_insns)
        offset = q.slot_offset(q.consumer)
        raw = yield from sp.sbiu.read_ssram(offset, HEADER_BYTES)
        src, length, _flags = decode_rx_header(raw)
        payload = b""
        if length:
            payload = yield from sp.sbiu.read_ssram(offset + HEADER_BYTES, length)
        yield from sp.sbiu.immediate(
            lambda i=slot, c=q.consumer + 1: ctrl.rx_consumer_update(i, c)
        )
        out.append((src, payload))
    return out


def fw_dram_read(sp: "ServiceProcessor", addr: int, length: int, staging: int
                 ) -> Generator["Event", None, bytes]:
    """Read aP DRAM into sSRAM ``staging`` and fetch the bytes.

    Uses the in-order command queue with a :class:`CmdCall` fence — the
    firmware idiom for "issue a bus operation and know when it is done".
    """
    done = sp.engine.event(name="fw.dram_read")
    yield from sp.sbiu.enqueue_command(
        LOCAL_CMDQ_0, CmdReadDram(addr, length, BANK_S, staging)
    )
    yield from sp.sbiu.enqueue_command(LOCAL_CMDQ_0, CmdCall(done.succeed))
    yield from fw_wait(sp, done)
    return (yield from sp.sbiu.read_ssram(staging, length))


def fw_dram_write(sp: "ServiceProcessor", addr: int, data: bytes,
                  fence: bool = True) -> Generator["Event", None, None]:
    """Write ``data`` into aP DRAM through the command stream."""
    yield from sp.sbiu.enqueue_command(LOCAL_CMDQ_0, CmdWriteDram(addr, data))
    if fence:
        done = sp.engine.event(name="fw.dram_write")
        yield from sp.sbiu.enqueue_command(LOCAL_CMDQ_0, CmdCall(done.succeed))
        yield from fw_wait(sp, done)


# ----------------------------------------------------------------------
# the rxmsg dispatcher
# ----------------------------------------------------------------------

#: a protocol message handler: ``handler(sp, src_node, payload) -> gen``.
MsgHandler = Callable[["ServiceProcessor", int, bytes], Generator]


def register_msg_handler(sp: "ServiceProcessor", msg_type: int,
                         handler: MsgHandler) -> None:
    """Bind a protocol message type byte to its firmware handler."""
    sp.state.setdefault("msg_handlers", {})[msg_type] = handler


def register_queue_dispatcher(sp: "ServiceProcessor", logical: int,
                              dispatcher) -> None:
    """Give one sP-owned logical queue its own drain routine.

    Used by paths that must not read payload bytes through the sP (the
    Approach-2 bulk queue): the dispatcher sees the raw queue and decides
    what to read.
    """
    sp.state.setdefault("queue_dispatchers", {})[logical] = dispatcher


def rxmsg_dispatcher(sp: "ServiceProcessor", event: Tuple
                     ) -> Generator["Event", None, None]:
    """The ``rxmsg`` event handler: drain the queue, fan out by type byte."""
    _kind, _slot, logical = event
    special = sp.state.get("queue_dispatchers", {}).get(logical)
    if special is not None:
        yield from special(sp, logical)
        return
    messages = yield from fw_recv_all(sp, logical)
    handlers = sp.state.get("msg_handlers", {})
    for src, payload in messages:
        if not payload:
            continue
        handler = handlers.get(payload[0])
        if handler is None:
            sp.unhandled += 1
            continue
        yield from handler(sp, src, payload)


def install_base_firmware(sp: "ServiceProcessor") -> None:
    """Install the dispatcher and a default protection logger."""
    sp.register("rxmsg", rxmsg_dispatcher)

    def on_protection(sp_, event):
        sp_.state.setdefault("protection_log", []).append(event)
        yield sp_.compute(20)

    sp.register("protection", on_protection)
