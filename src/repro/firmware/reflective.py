"""Reflective-memory emulation (the §5 "Extending Default Mechanisms" demo).

"StarT-Voyager could emulate Shrimp's and Memory Channel's reflective
memory communication support.  The default StarT-Voyager hardware is
sufficient for the sP to implement this functionality."

A *reflective window* is a region of local DRAM whose stores are
propagated to the same offsets of subscriber nodes' windows.  The model
implements it exactly as the paper sketches: a custom aBIU handler (an
installed "FPGA state machine") captures stores to the window, completes
the bus operation immediately, and forwards the captured (offset, data)
to firmware; firmware fans the write out as ``CmdWriteDram`` command
packets that land in each subscriber's DRAM with no remote firmware
involvement.

This module is the repo's working proof that a *new* communication
mechanism can be added to the platform without touching CTRL.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, List, Optional, Tuple

from repro.bus.ops import BusOpType, BusTransaction
from repro.bus.snoop import SnoopResult
from repro.common.errors import SimulationError
from repro.mem.address import Region
from repro.niu.abiu import BusHandler
from repro.niu.commands import LOCAL_CMDQ_0, CmdForward, CmdWriteDram

if TYPE_CHECKING:  # pragma: no cover
    from repro.niu.sp import ServiceProcessor
    from repro.sim.events import Event

#: firmware cost of reflecting one captured store.
REFLECT_INSNS = 70


class ReflectiveWindowHandler(BusHandler):
    """Captures stores to the reflective window and forwards them to sP.

    Loads pass through to DRAM untouched (the window is ordinary memory);
    only stores are reflected.
    """

    handler_name = "reflective"

    def __init__(self, ctrl, region: Region) -> None:
        self.ctrl = ctrl
        self.region = region
        self.captured = 0

    def decide(self, txn: BusTransaction) -> SnoopResult:
        if txn.op in (BusOpType.WRITE, BusOpType.WRITE_LINE):
            return SnoopResult.CLAIM
        return SnoopResult.OK  # reads served by DRAM as usual

    def serve(self, txn: BusTransaction
              ) -> Generator["Event", None, Optional[bytes]]:
        yield self.ctrl.engine.timeout(self.ctrl.op_ns)
        self.captured += 1
        # the write must still reach local DRAM: the handler claimed the
        # tenure, so it applies the store itself (zero extra bus traffic,
        # as the FPGA would merge this into the same tenure)
        offset = txn.addr - self.region.base
        self.ctrl.post_sp_event(("reflect", offset, bytes(txn.data)))  # type: ignore[arg-type]
        dram = self.ctrl.config  # timing only; data applied below
        del dram
        self._apply_local(txn)
        return None

    def _apply_local(self, txn: BusTransaction) -> None:
        # write-through into the local DRAM backing (the claimed tenure
        # replaced the memory controller's)
        self._dram.poke(txn.addr, txn.data)  # type: ignore[arg-type]

    #: set by install_reflective (needs the node's DRAM object).
    _dram = None


def handle_reflect(sp: "ServiceProcessor", event: Tuple
                   ) -> Generator["Event", None, None]:
    """Fan a captured store out to every subscriber's window."""
    _kind, offset, data = event
    yield sp.compute(REFLECT_INSNS)
    window_base, subscribers = sp.state["reflective"]
    for node in subscribers:
        if node == sp.node_id:
            continue
        yield from sp.sbiu.enqueue_command(
            LOCAL_CMDQ_0,
            CmdForward(node, CmdWriteDram(window_base + offset, data)),
        )


def install_reflective(node, window_base: int, window_bytes: int,
                       subscribers: List[int]) -> ReflectiveWindowHandler:
    """Set up a reflective window on one node.

    ``window_base`` must name the same DRAM range on every subscriber
    (symmetric windows, as in Memory Channel).  Returns the installed
    handler for test introspection.
    """
    from repro.mem.address import AccessMode

    if window_base + window_bytes > node.user_dram_bytes:
        raise SimulationError("reflective window outside user DRAM")
    # the window must be uncached so every store appears on the bus —
    # Shrimp/Memory Channel map their windows write-through for the same
    # reason.  Loads keep hitting DRAM through the carved region's owner.
    region = node.address_map.carve(
        f"reflective{node.node_id}", window_base, window_bytes,
        AccessMode.UNCACHED,
    )
    handler = ReflectiveWindowHandler(node.ctrl, region)
    handler._dram = node.dram
    node.niu.abiu.install(region, handler)
    node.sp.state["reflective"] = (window_base, subscribers)
    node.sp.register("reflect", handle_reflect)
    return handler
