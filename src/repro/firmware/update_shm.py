"""Update-based multiple-writer shared memory (the §5 diff-ing extension).

A shared *update region* of ordinary cached DRAM with release
consistency: writers modify their local copy freely (write-back caching
gives full speed), and an explicit **release** propagates exactly the
words that changed — diffed by the :class:`~repro.niu.diffunit.DiffUnit`
TxU extension — to every peer's copy as remote-command DRAM writes.

Why this supports *multiple writers* (the softDSM property the paper
cites): two nodes writing disjoint words of the same line each transmit
only their own changes, so the copies merge instead of ping-ponging
ownership as an invalidate protocol would.

Mechanics per node:

* an observing aBIU handler marks lines dirty when ownership-acquiring
  bus operations (RWITM / KILL / uncached writes) pass by — zero extra
  traffic, the clsSRAM-style line-granularity trick;
* ``MSG_UPDATE_RELEASE`` (to the node's own service queue) triggers the
  firmware release: FLUSH each dirty line out of the L2, read it from
  DRAM, run the hardware diff against the twin, and forward each changed
  run to every peer via ``CmdForward(CmdWriteDram(...))``;
* the remote writes invalidate stale peer L2 lines through ordinary bus
  snooping on arrival; a completion notification lands in the releasing
  program's receive queue.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, List

from repro.bus.ops import BusOpType, BusTransaction
from repro.bus.snoop import SnoopResult
from repro.common.errors import FirmwareError, SimulationError
from repro.firmware import proto
from repro.firmware.base import fw_dram_read, register_msg_handler
from repro.mem.address import Region
from repro.niu.abiu import BusHandler
from repro.niu.commands import LOCAL_CMDQ_0, CmdBusOp, CmdForward, CmdNotify, CmdWriteDram
from repro.niu.diffunit import DiffUnit

if TYPE_CHECKING:  # pragma: no cover
    from repro.niu.sp import ServiceProcessor
    from repro.sim.events import Event

#: protocol type byte for release requests (application range).
MSG_UPDATE_RELEASE = proto.MSG_USER + 1

#: firmware cost of one release dispatch and of handling one dirty line.
RELEASE_INSNS = 80
PER_LINE_INSNS = 25


def pack_release(notify_queue: int) -> bytes:
    """Release request carried on the node's own service queue."""
    return bytes([MSG_UPDATE_RELEASE, notify_queue])


class UpdateRegionHandler(BusHandler):
    """Observes ownership acquisition in the region; never claims.

    The region stays ordinary cached DRAM — this handler is a pure
    listener, which is what makes the mechanism cheap: writers run at
    cache speed between releases.
    """

    handler_name = "update-region"

    _DIRTYING = (BusOpType.RWITM, BusOpType.KILL, BusOpType.WRITE,
                 BusOpType.WRITE_LINE)

    def __init__(self, unit: DiffUnit, node_master: str) -> None:
        self.unit = unit
        self.node_master = node_master  # the NIU's own master tag
        self.observed_dirtying = 0

    def decide(self, txn: BusTransaction) -> SnoopResult:
        # peer updates arrive as NIU-mastered writes; those must NOT mark
        # dirty or releases would echo forever between nodes.  (The aBIU
        # already filters this node's own NIU, but be explicit.)
        if txn.op in self._DIRTYING and not txn.master.startswith("niu"):
            self.unit.mark_dirty(txn.addr)
            self.observed_dirtying += 1
        return SnoopResult.OK

    def serve(self, txn):  # pragma: no cover - never claims
        raise SimulationError("UpdateRegionHandler never claims")
        yield


def handle_release(sp: "ServiceProcessor", src: int, payload: bytes
                   ) -> Generator["Event", None, None]:
    """The firmware release: flush, diff, propagate, notify."""
    if payload[0] != MSG_UPDATE_RELEASE:
        raise FirmwareError(f"not a release request: {payload!r}")
    notify_queue = payload[1]
    yield sp.compute(RELEASE_INSNS)
    unit: DiffUnit = sp.state["update_unit"]
    peers: List[int] = sp.state["update_peers"]
    staging: int = sp.state["update_staging"]
    for line in unit.take_dirty():
        yield sp.compute(PER_LINE_INSNS)
        addr = unit.line_addr(line)
        # push any newer L2 data into DRAM, in order, before reading it
        yield from sp.sbiu.enqueue_command(
            LOCAL_CMDQ_0, CmdBusOp(BusOpType.FLUSH, addr, unit.line_bytes))
        data = yield from fw_dram_read(sp, addr, unit.line_bytes, staging)
        runs = yield from unit.diff(line, data)
        for offset, changed in runs:
            for peer in peers:
                if peer == sp.node_id:
                    continue
                yield from sp.sbiu.enqueue_command(
                    LOCAL_CMDQ_0,
                    CmdForward(peer, CmdWriteDram(addr + offset, changed)),
                )
    # completion: everything above is in the same in-order command queue,
    # so the notification cannot pass the final forward
    yield from sp.sbiu.enqueue_command(
        LOCAL_CMDQ_0, CmdNotify(notify_queue, b"rel", src_node=sp.node_id))
    sp.stats.counter(f"{sp.name}.releases").incr()


def install_update_region(node, base: int, size: int,
                          peers: List[int]) -> DiffUnit:
    """Set up one node's side of a shared update region.

    ``base``/``size`` name the same cached DRAM range on every peer.
    Returns the node's :class:`DiffUnit` for inspection.
    """
    from repro.mem.address import AccessMode

    if base + size > node.user_dram_bytes:
        raise SimulationError("update region outside user DRAM")
    line = node.config.bus.line_bytes
    unit = DiffUnit(node.engine, base, size, line,
                    compare_ns_per_beat=node.config.bus.cycle_ns)
    region = Region(f"update{node.node_id}", base, size, AccessMode.CACHED)
    handler = UpdateRegionHandler(unit, f"niu{node.node_id}")
    node.niu.abiu.install(region, handler)
    sp = node.sp
    sp.state["update_unit"] = unit
    sp.state["update_peers"] = peers
    sp.state["update_staging"] = node.niu.alloc_ssram(line, align=8)
    register_msg_handler(sp, MSG_UPDATE_RELEASE, handle_release)
    return unit
