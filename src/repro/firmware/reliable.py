"""Reliable delivery: go-back-N ack/retransmit firmware over Basic messages.

The paper's Arctic network never drops a packet, so the shipped NIU
firmware assumes lossless links.  This module removes that assumption:
a sender-side go-back-N window with cumulative acknowledgements and
timeout-driven retransmission turns the (possibly faulted, see
:mod:`repro.faults`) datagram fabric into a reliable, in-order channel —
entirely in sP firmware, exactly the "firmware is the flexible layer"
argument of the paper.

Protocol shape (all knobs in
:class:`~repro.common.config.ReliabilityConfig`):

* the aP submits a segment with one Basic *loopback* send of
  ``MSG_REL_SEND`` into its own node's ``SP_REL_TX_QUEUE``
  (:meth:`repro.mp.basic.BasicPort.send_reliable`);
* the sP drains that queue only while the destination flow's window has
  room.  A full window leaves requests queued, the loopback path blocks,
  and the aP's producer-pointer poll spins — end-to-end backpressure
  from a bounded retransmit buffer, with no firmware stall (incoming
  DATA and ACKs ride *other* queues, so two windowed peers cannot
  deadlock each other);
* each drained request gets the flow's next sequence number, is held in
  the window (the retransmit buffer), and travels as ``MSG_REL_DATA`` to
  the destination's ``SP_REL_QUEUE`` on the low-priority network;
* the receiver keeps one expected-seq counter per source and **no**
  reorder buffer (go-back-N): the in-order segment is delivered straight
  into its destination logical queue with the *original* source node in
  the rx header; anything else is dropped.  Every arrival is answered
  with a cumulative ``MSG_REL_ACK`` on the **high-priority** network
  (the protocol transmit queue), so acks overtake bulk data;
* a per-flow retransmit timer resends the whole window on expiry and
  backs off exponentially (capped); any cumulative progress resets it.

Sequence numbers are 16-bit serial numbers; all comparisons go through
:func:`seq_lt`, so windows wrap transparently (the window just has to
stay far below ``SEQ_MOD / 2``).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, Generator, Tuple

from repro.common.errors import FirmwareError
from repro.firmware.base import (
    fw_send,
    register_msg_handler,
    register_queue_dispatcher,
)
from repro.firmware.proto import (
    MSG_REL_ACK,
    MSG_REL_DATA,
    pack_rel_ack,
    pack_rel_data,
    unpack_rel_ack,
    unpack_rel_data,
    unpack_rel_send,
)
from repro.niu.msgformat import HEADER_BYTES, MAX_PAYLOAD
from repro.niu.niu import (
    SP_PROTOCOL_QUEUE,
    SP_REL_QUEUE,
    SP_REL_TX_QUEUE,
    SP_TX_GENERAL,
    SP_TX_PROTOCOL,
    needs_raw_addressing,
    vdst_for,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.niu.sp import ServiceProcessor
    from repro.sim.events import Event

#: sequence-number space (16-bit serial arithmetic).
SEQ_MOD = 1 << 16
#: MSG_REL_DATA overhead: type + dst_queue + 2-byte seq.
REL_HEADER_BYTES = 4
#: largest user payload one reliable segment can carry.
REL_MAX_PAYLOAD = MAX_PAYLOAD - REL_HEADER_BYTES


def seq_lt(a: int, b: int) -> bool:
    """Serial-number ``a < b`` in the 16-bit circular space."""
    return 0 < (b - a) % SEQ_MOD < SEQ_MOD // 2


class _Flow:
    """Sender-side go-back-N state toward one destination node."""

    __slots__ = ("dst", "seq_next", "pending", "rto", "timer_gen",
                 "timer_armed", "acked", "retransmits")

    def __init__(self, dst: int, rto: float) -> None:
        self.dst = dst
        #: next sequence number to assign.
        self.seq_next = 0
        #: the window / retransmit buffer: (seq, dst_queue, payload),
        #: oldest first, never longer than the configured window.
        self.pending: Deque[Tuple[int, int, bytes]] = deque()
        #: current retransmission timeout (backs off on expiry).
        self.rto = rto
        #: timers carry their generation; acks/expiries bump it, so a
        #: stale scheduled callback is recognized and ignored.
        self.timer_gen = 0
        self.timer_armed = False
        self.acked = 0
        self.retransmits = 0


class ReliableState:
    """Per-node reliability firmware state."""

    def __init__(self, n_nodes: int) -> None:
        self.flows: Dict[int, _Flow] = {}
        #: receiver side: next expected seq per source node.
        self.rx_expected: Dict[int, int] = {}
        self.wide = needs_raw_addressing(n_nodes)

    def flow(self, dst: int, rto: float) -> _Flow:
        f = self.flows.get(dst)
        if f is None:
            f = self.flows[dst] = _Flow(dst, rto)
        return f


def setup_reliable(sp: "ServiceProcessor", n_nodes: int) -> None:
    """Install the reliable-delivery engine on one node's sP."""
    sp.state["rel"] = ReliableState(n_nodes)
    register_msg_handler(sp, MSG_REL_DATA, on_rel_data)
    register_msg_handler(sp, MSG_REL_ACK, on_rel_ack)
    register_queue_dispatcher(sp, SP_REL_TX_QUEUE, rel_tx_dispatcher)
    sp.register("rel.timer", on_rel_timer)


def ensure_reliable(machine) -> None:
    """Install the reliable engine cluster-wide where missing."""
    for node in machine.nodes:
        if "rel" not in node.sp.state:
            setup_reliable(node.sp, machine.config.n_nodes)


def _state(sp: "ServiceProcessor") -> ReliableState:
    st = sp.state.get("rel")
    if st is None:
        raise FirmwareError(f"{sp.name}: reliable firmware not installed")
    return st


def _rel_send(sp: "ServiceProcessor", st: ReliableState, node: int,
              queue: int, payload: bytes, protocol: bool = False
              ) -> Generator["Event", None, None]:
    """One firmware message to (node, logical queue), wide-safe.

    ``protocol=True`` rides the high-priority protocol transmit queue
    (acks must overtake the data they acknowledge)."""
    tx = SP_TX_PROTOCOL if protocol else SP_TX_GENERAL
    if st.wide:
        yield from fw_send(sp, node, payload, queue=tx, raw_queue=queue)
    else:
        yield from fw_send(sp, vdst_for(node, queue), payload, queue=tx)


# ----------------------------------------------------------------------
# sender side
# ----------------------------------------------------------------------


def rel_tx_dispatcher(sp: "ServiceProcessor", logical: int
                      ) -> Generator["Event", None, None]:
    """Drain ``SP_REL_TX_QUEUE`` while the window has room.

    A request whose flow's window is full stays in the hardware queue
    (with everything behind it — one tx queue is one FIFO); the queue
    filling up is what backpressures the aP.  ACK processing re-posts
    this dispatcher when cumulative progress opens the window.
    """
    st = _state(sp)
    ctrl = sp.ctrl
    cfg = ctrl.config.reliability
    slot = ctrl.rx_cache.resident().get(logical)
    if slot is None:
        return
    q = ctrl.rx_queues[slot]
    while not q.is_empty:
        offset = q.slot_offset(q.consumer)
        raw = yield from sp.sbiu.read_ssram(offset, HEADER_BYTES)
        length = raw[3]
        payload = yield from sp.sbiu.read_ssram(offset + HEADER_BYTES, length)
        dst_queue, dst_node, user = unpack_rel_send(payload)
        flow = st.flow(dst_node, cfg.timeout_ns)
        if len(flow.pending) >= cfg.window:
            sp.stats.counter(f"{sp.name}.rel.backpressured").incr()
            return
        yield sp.compute(sp.fw.recv_msg_insns)
        yield from sp.sbiu.immediate(
            lambda i=slot, c=q.consumer + 1: ctrl.rx_consumer_update(i, c)
        )
        yield from _send_segment(sp, st, flow, dst_queue, user)


def _send_segment(sp: "ServiceProcessor", st: ReliableState, flow: _Flow,
                  dst_queue: int, user: bytes
                  ) -> Generator["Event", None, None]:
    """Assign the next seq, hold the segment in the window, launch it."""
    yield sp.compute(sp.fw.rel_send_insns)
    seq = flow.seq_next
    flow.seq_next = (seq + 1) % SEQ_MOD
    flow.pending.append((seq, dst_queue, user))
    san = sp.sanitizer
    if san is not None:
        san.on_rel_tx(sp, flow)
    sp.stats.counter(f"{sp.name}.rel.segments").incr()
    yield from _rel_send(sp, st, flow.dst, SP_REL_QUEUE,
                         pack_rel_data(dst_queue, seq) + user)
    if not flow.timer_armed:
        _arm_timer(sp, flow)


def _arm_timer(sp: "ServiceProcessor", flow: _Flow) -> None:
    """Schedule the flow's retransmit timer at its current RTO."""
    flow.timer_armed = True
    gen = flow.timer_gen
    dst = flow.dst
    sp.engine._schedule_call(
        lambda: sp.sbiu.post_event(("rel.timer", dst, gen)),
        delay=flow.rto,
    )


def on_rel_timer(sp: "ServiceProcessor", event: Tuple
                 ) -> Generator["Event", None, None]:
    """Retransmit timer expiry: resend the whole window, back off."""
    _kind, dst_node, gen = event
    st = _state(sp)
    flow = st.flows.get(dst_node)
    if flow is None or gen != flow.timer_gen:
        return  # stale timer: progress re-armed a newer one
    flow.timer_gen += 1
    flow.timer_armed = False
    if not flow.pending:
        return
    yield sp.compute(sp.fw.rel_timer_insns)
    sp.stats.counter(f"{sp.name}.rel.timeouts").incr()
    for seq, dst_queue, user in tuple(flow.pending):
        flow.retransmits += 1
        sp.stats.counter(f"{sp.name}.rel.retransmits").incr()
        yield from _rel_send(sp, st, dst_node, SP_REL_QUEUE,
                             pack_rel_data(dst_queue, seq) + user)
    cfg = sp.ctrl.config.reliability
    flow.rto = min(flow.rto * cfg.backoff, cfg.max_timeout_ns)
    _arm_timer(sp, flow)


def on_rel_ack(sp: "ServiceProcessor", src: int, payload: bytes
               ) -> Generator["Event", None, None]:
    """Cumulative ACK: release the window prefix, reset the timer."""
    yield sp.compute(sp.fw.rel_ack_insns)
    st = _state(sp)
    flow = st.flows.get(src)
    if flow is None:
        return
    ack = unpack_rel_ack(payload)
    progressed = False
    while flow.pending and seq_lt(flow.pending[0][0], ack):
        flow.pending.popleft()
        flow.acked += 1
        progressed = True
    if not progressed:
        sp.stats.counter(f"{sp.name}.rel.dup_acks").incr()
        return
    cfg = sp.ctrl.config.reliability
    flow.rto = cfg.timeout_ns
    flow.timer_gen += 1  # invalidate the outstanding timer
    flow.timer_armed = False
    if flow.pending:
        _arm_timer(sp, flow)
    _kick_tx(sp)


def _kick_tx(sp: "ServiceProcessor") -> None:
    """Re-post the tx dispatcher if backpressured requests are waiting."""
    slot = sp.ctrl.rx_cache.resident().get(SP_REL_TX_QUEUE)
    if slot is not None and not sp.ctrl.rx_queues[slot].is_empty:
        sp.sbiu.post_event(("rxmsg", slot, SP_REL_TX_QUEUE))


# ----------------------------------------------------------------------
# receiver side
# ----------------------------------------------------------------------


def on_rel_data(sp: "ServiceProcessor", src: int, payload: bytes
                ) -> Generator["Event", None, None]:
    """One DATA segment: deliver if in order, always re-ack."""
    yield sp.compute(sp.fw.rel_data_insns)
    st = _state(sp)
    dst_queue, seq, user = unpack_rel_data(payload)
    expected = st.rx_expected.get(src, 0)
    san = sp.sanitizer
    if san is not None:
        san.on_rel_rx(sp, src, seq, expected)
    if seq == expected:
        st.rx_expected[src] = expected = (expected + 1) % SEQ_MOD
        sp.stats.counter(f"{sp.name}.rel.delivered").incr()
        # deliver with the *original* source in the rx header (the sP
        # spoofs src here the way CTRL loopback cannot)
        yield from sp.ctrl.deliver(dst_queue, src, user)
    elif seq_lt(seq, expected):
        # retransmission of something already delivered: the ack below
        # is exactly what the sender is missing
        sp.stats.counter(f"{sp.name}.rel.duplicates").incr()
    else:
        # a gap: go-back-N receivers hold no reorder buffer, so drop and
        # dup-ack; the sender's timer replays the window in order
        sp.stats.counter(f"{sp.name}.rel.out_of_order").incr()
    yield from _rel_send(sp, st, src, SP_PROTOCOL_QUEUE, pack_rel_ack(expected),
                         protocol=True)
