"""NUMA firmware: remote access by bus-operation forwarding.

"NUMA ... is implemented by passing all bus operations within a 1GB
address range to the sP in a special queue implemented by the BIUs ...
The sP firmware does whatever is necessary to ensure coherency,
including sending messages to other sPs."

The model's protocol: every NUMA address has a *home node* determined by
the address (``NUMA_BASE + home*span + offset``), backed by a reserved
window of the home's DRAM.  Loads are retried on the aP bus until the
local firmware has fetched the data (from its own backing if it is the
home, else with a request/reply exchange on the high-priority protocol
queues) and armed the aBIU capture buffer.  Stores are posted: the aBIU
completes the bus operation immediately, and firmware forwards the write
to the home, where the ordered command stream applies it.  Per-location
coherence follows from home-node serialization; there is no caching —
which is exactly why NUMA hammers firmware occupancy and why the paper
also builds S-COMA.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Tuple

from repro.common.errors import FirmwareError
from repro.firmware import proto
from repro.firmware.base import fw_dram_read, fw_send, register_msg_handler
from repro.mem.address import NUMA_BASE
from repro.niu.commands import LOCAL_CMDQ_0, CmdWriteDram
from repro.niu.niu import SP_PROTOCOL_QUEUE, SP_TX_PROTOCOL, vdst_for

if TYPE_CHECKING:  # pragma: no cover
    from repro.niu.sp import ServiceProcessor
    from repro.sim.events import Event


class NumaMap:
    """Address arithmetic for the NUMA global region."""

    def __init__(self, n_nodes: int, span: int, backing_base: int) -> None:
        self.n_nodes = n_nodes
        #: bytes of the global region homed on each node.
        self.span = span
        #: DRAM offset of the home backing window (same on every node).
        self.backing_base = backing_base

    def home_of(self, addr: int) -> int:
        """Home node of a NUMA global address."""
        node = (addr - NUMA_BASE) // self.span
        if not (0 <= node < self.n_nodes):
            raise FirmwareError(f"NUMA address {addr:#x} beyond configured span")
        return node

    def backing_addr(self, addr: int) -> int:
        """Home-local DRAM address backing a NUMA global address."""
        return self.backing_base + (addr - NUMA_BASE) % self.span

    def global_addr(self, home: int, offset: int) -> int:
        """Global NUMA address of ``offset`` within ``home``'s span."""
        if not (0 <= home < self.n_nodes):
            raise FirmwareError(f"no NUMA home node {home}")
        if not (0 <= offset < self.span):
            raise FirmwareError(f"NUMA offset {offset:#x} beyond span")
        return NUMA_BASE + home * self.span + offset


def setup_numa(sp: "ServiceProcessor", numa_map: NumaMap) -> None:
    """Install NUMA firmware on one node's sP."""
    sp.state["numa_map"] = numa_map
    sp.state["numa_staging"] = sp.state["niu"].alloc_ssram(64)
    sp.register("numa_read", handle_local_read)
    sp.register("numa_write", handle_local_write)
    register_msg_handler(sp, proto.MSG_NUMA_RREQ, handle_home_read)
    register_msg_handler(sp, proto.MSG_NUMA_RREP, handle_read_reply)
    register_msg_handler(sp, proto.MSG_NUMA_WREQ, handle_home_write)


def handle_local_read(sp: "ServiceProcessor", event: Tuple
                      ) -> Generator["Event", None, None]:
    """A local aP load of the NUMA region missed: fetch its data."""
    _kind, addr, size = event
    yield sp.compute(sp.fw.numa_local_insns)
    nm: NumaMap = sp.state["numa_map"]
    home = nm.home_of(addr)
    if home == sp.node_id:
        data = yield from fw_dram_read(
            sp, nm.backing_addr(addr), max(size, 8), sp.state["numa_staging"]
        )
        sp.state["niu"].numa_handler.supply(addr, data[:size])
    else:
        yield from fw_send(
            sp, vdst_for(home, SP_PROTOCOL_QUEUE),
            proto.pack_numa_rreq(addr, size), queue=SP_TX_PROTOCOL,
        )


def handle_local_write(sp: "ServiceProcessor", event: Tuple
                       ) -> Generator["Event", None, None]:
    """A local aP store to the NUMA region was captured: forward it home."""
    _kind, addr, data = event
    yield sp.compute(sp.fw.numa_local_insns)
    nm: NumaMap = sp.state["numa_map"]
    home = nm.home_of(addr)
    if home == sp.node_id:
        yield from sp.sbiu.enqueue_command(
            LOCAL_CMDQ_0, CmdWriteDram(nm.backing_addr(addr), data)
        )
    else:
        yield from fw_send(
            sp, vdst_for(home, SP_PROTOCOL_QUEUE),
            proto.pack_numa_wreq(addr, data), queue=SP_TX_PROTOCOL,
        )


def handle_home_read(sp: "ServiceProcessor", src: int, payload: bytes
                     ) -> Generator["Event", None, None]:
    """Home side of a remote NUMA load."""
    addr, size = proto.unpack_numa_rreq(payload)
    yield sp.compute(sp.fw.numa_home_insns)
    nm: NumaMap = sp.state["numa_map"]
    if nm.home_of(addr) != sp.node_id:
        raise FirmwareError(f"misrouted NUMA read for {addr:#x}")
    data = yield from fw_dram_read(
        sp, nm.backing_addr(addr), max(size, 8), sp.state["numa_staging"]
    )
    yield from fw_send(
        sp, vdst_for(src, SP_PROTOCOL_QUEUE),
        proto.pack_numa_rrep(addr, data[:size]), queue=SP_TX_PROTOCOL,
    )


def handle_read_reply(sp: "ServiceProcessor", src: int, payload: bytes
                      ) -> Generator["Event", None, None]:
    """Requester side: arm the aBIU so the retried load completes."""
    addr, data = proto.unpack_numa_rrep(payload)
    yield sp.compute(sp.fw.numa_reply_insns)
    sp.state["niu"].numa_handler.supply(addr, data)


def handle_home_write(sp: "ServiceProcessor", src: int, payload: bytes
                      ) -> Generator["Event", None, None]:
    """Home side of a remote NUMA (posted) store."""
    addr, data = proto.unpack_numa_wreq(payload)
    yield sp.compute(sp.fw.numa_home_insns)
    nm: NumaMap = sp.state["numa_map"]
    if nm.home_of(addr) != sp.node_id:
        raise FirmwareError(f"misrouted NUMA write for {addr:#x}")
    yield from sp.sbiu.enqueue_command(
        LOCAL_CMDQ_0, CmdWriteDram(nm.backing_addr(addr), data)
    )
