"""Systematic interleaving exploration with sanitizer oracles.

The chaos smoke *samples* schedules at random; this package *enumerates*
them.  The engine's :class:`~repro.sim.engine.SchedulePolicy` hook turns
every group of same-timestamp scheduled items into an explicit decision
point; :func:`explore_scenario` drives a bounded canonical-first DFS
over those decisions with partial-order reduction (only alternatives
that *conflict* with an earlier ready item — same store, same process,
same link — branch) and a state-hash visited set, checking every
schedule with the runtime sanitizers, a per-scenario result predicate,
and the schedule-invariance oracle (wall-stripped metrics must not
depend on same-timestamp ordering).

Violating schedules serialize to JSON traces (:mod:`repro.explore.trace`)
that ``python -m repro.explore replay <trace>`` re-executes
deterministically — a shareable counterexample.  Historical races are
re-openable as behavior models (:mod:`repro.explore.models`) so the
regression tests can assert the explorer still finds them.

Front door::

    python -m repro.explore --scenario shm_hash --nodes 2 \\
        --max-schedules 5000 --sanitize all
"""

from repro.explore.conflict import conflict_key, keys_conflict
from repro.explore.driver import (
    CHECKS,
    EXPLORE_DEFAULTS,
    ExploreResult,
    ScheduleOutcome,
    Violation,
    explore_scenario,
    replay_trace,
    run_schedule,
)
from repro.explore.models import MODELS, behavior_model
from repro.explore.policy import Decision, GuidedPolicy
from repro.explore.trace import (
    TRACE_SCHEMA,
    dump_trace,
    normalize_choices,
    parse_trace,
    trace_document,
)

__all__ = [
    "CHECKS",
    "Decision",
    "EXPLORE_DEFAULTS",
    "ExploreResult",
    "GuidedPolicy",
    "MODELS",
    "ScheduleOutcome",
    "TRACE_SCHEMA",
    "Violation",
    "behavior_model",
    "conflict_key",
    "dump_trace",
    "explore_scenario",
    "keys_conflict",
    "normalize_choices",
    "parse_trace",
    "replay_trace",
    "run_schedule",
    "trace_document",
]
