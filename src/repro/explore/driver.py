"""The bounded DFS schedule explorer.

:func:`run_schedule` executes one scenario under one choice prefix on a
fresh machine and reports a :class:`ScheduleOutcome`;
:func:`explore_scenario` drives the depth-first enumeration with
partial-order reduction and a state-hash visited set, checking every
schedule against three oracles:

1. **sanitizers** — the machine runs with the configured runtime
   checkers armed; any :class:`~repro.common.errors.SanitizerError` /
   :class:`~repro.common.errors.DeadlockError` is a violation tagged
   with the raising checker's message.
2. **scenario check** — each scenario's registered result predicate
   (every insert found, every rank released, no lost store, every
   request completed).  A bug that corrupts *every* schedule equally
   would slip past the invariance oracle; this one catches it.
3. **schedule invariance** — every clean schedule's wall-stripped
   metrics snapshot must equal schedule 0's.  A mismatch means the
   scenario's observable behavior depends on same-timestamp ordering:
   it is *racy*, and the explorer reports a minimized witness pair.

Exploration is canonical-first: choice 0 (the engine's native seq
order) is always taken, and an alternative ``i > 0`` is enqueued only
when ``ready[i]`` conflicts with an earlier ready item — commuting
alternatives are counted as ``pruned`` instead of explored.  The
visited set hashes (choices-so-far multiset, ready-set keys), so two
prefixes that merely commuted independent events collapse into one
expansion (``visited_hits``).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.common.errors import ConfigError, ReproError
from repro.explore.models import behavior_model
from repro.explore.policy import Decision, GuidedPolicy
from repro.explore.trace import normalize_choices

#: shard-style scenarios small enough to explore, with their per-run
#: default params at explorer scale (2–4 nodes, short workloads).
EXPLORE_DEFAULTS: Dict[str, Dict[str, Any]] = {
    "shm_hash": {"keys_per_rank": 2, "n_buckets": 8, "stripes": 2,
                 "lock_mode": "endpoint"},
    "shm_takeover": {},
    "sync_burst": {},
    "traffic_kv": {"per_node": 3, "rate_rps": 200_000.0, "n_keys": 16},
    "fig3": {"sizes": (4, 64), "pings": 1},
}

#: per-schedule liveness bounds: a schedule that passes either without
#: quiescing is hung or livelocked (a poller spinning on a barrier that
#: will never release generates events forever, so the drain-based
#: deadlock watchdog never fires).  Both sit far above what any clean
#: explorer-scale scenario reaches (< 1 ms simulated, < 1k decisions).
HORIZON_NS = 20_000_000.0
DECISION_BUDGET = 20_000


class ScheduleOutcome(NamedTuple):
    """Everything one schedule execution produced."""

    prefix: List[int]              #: the prescribed choice prefix
    choices: List[int]             #: full per-decision choices taken
    decisions: List[Decision]      #: per-decision records
    schedule_hash: int             #: order-sensitive schedule identity
    snapshot: Optional[Dict]       #: comparable metrics (None on error)
    result: Optional[Any]          #: shard-0 scenario result (None on error)
    sanitizers: Optional[Dict]     #: per-checker activity counters
    error: Optional[str]           #: violation message, if any
    error_kind: Optional[str]      #: exception class / "CheckFailure"

    @property
    def ok(self) -> bool:
        return self.error is None


class Violation(NamedTuple):
    """One violating schedule, replay-ready."""

    choices: List[int]             #: normalized (trailing 0s stripped)
    error: str
    error_kind: str


class ExploreResult:
    """Aggregate outcome of one bounded exploration."""

    def __init__(self) -> None:
        self.schedules_run = 0
        self.distinct: set = set()          #: order-sensitive hashes
        self.pruned = 0                     #: commuting alts skipped
        self.visited_hits = 0               #: state-hash collapses
        self.depth_capped = 0               #: decisions past --max-depth
        self.frontier_left = 0              #: unexplored when budget hit
        self.max_decisions = 0
        self.max_ready = 0
        self.minimize_runs = 0
        self.violations: List[Violation] = []
        self.racy: Optional[Dict[str, Any]] = None  #: invariance breach
        self.baseline: Optional[ScheduleOutcome] = None

    @property
    def clean(self) -> bool:
        return not self.violations and self.racy is None

    def summary(self) -> Dict[str, Any]:
        return {
            "schedules_run": self.schedules_run,
            "distinct_schedules": len(self.distinct),
            "pruned": self.pruned,
            "visited_hits": self.visited_hits,
            "depth_capped": self.depth_capped,
            "frontier_left": self.frontier_left,
            "max_decisions": self.max_decisions,
            "max_ready": self.max_ready,
            "minimize_runs": self.minimize_runs,
            "violations": [v._asdict() for v in self.violations],
            "racy": self.racy,
            "clean": self.clean,
        }


# ----------------------------------------------------------------------
# scenario result checks (oracle 2)
# ----------------------------------------------------------------------


def _check_shm_hash(result: Dict) -> Optional[str]:
    inserted = result.get("inserted") or {}
    found = result.get("found") or {}
    if not inserted or not all(inserted.values()):
        return f"hash-table inserts failed: {inserted}"
    if len(found) != len(inserted) or not all(found.values()):
        return f"hash-table lookups failed: {found}"
    return None


def _check_sync_burst(result: Dict) -> Optional[str]:
    if not result.get("all_released"):
        return (f"barrier never released every rank: "
                f"{sorted(result.get('done', {}))} done")
    return None


def _check_shm_takeover(result: Dict) -> Optional[str]:
    if not result.get("ok"):
        return (f"home stores lost: line holds {result.get('got')!r}, "
                f"expected {result.get('want')!r}")
    return None


def _check_completed(result: Dict) -> Optional[str]:
    offered, completed = result.get("offered"), result.get("completed")
    if offered != completed or not offered:
        return f"only {completed}/{offered} requests completed"
    return None


def _check_fig3(result: Dict) -> Optional[str]:
    if not result.get("echo_ok"):
        return "ping-pong payload corrupted"
    return None


#: scenario name -> result predicate (None = pass, str = failure).
CHECKS: Dict[str, Callable[[Dict], Optional[str]]] = {
    "shm_hash": _check_shm_hash,
    "sync_burst": _check_sync_burst,
    "shm_takeover": _check_shm_takeover,
    "traffic_kv": _check_completed,
    "traffic_usvc": _check_completed,
    "fig3": _check_fig3,
}


def _comparable(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """Wall-stripped, shard-count-invariant core of a metrics snapshot
    (mirrors :func:`repro.bench.harness.comparable`, kept local so the
    explorer does not drag the bench package in)."""
    sim = snapshot.get("sim")
    if isinstance(sim, dict):
        sim.pop("wall", None)
    snapshot.pop("shards", None)
    cfg = snapshot.get("config")
    if isinstance(cfg, dict):
        cfg.pop("shards", None)
    return snapshot


# ----------------------------------------------------------------------
# one schedule
# ----------------------------------------------------------------------


def run_schedule(scenario: str, params: Optional[Dict[str, Any]] = None,
                 n_nodes: int = 2, seed: int = 0, sanitize: str = "all",
                 prefix: Sequence[int] = (), model: Optional[str] = None,
                 horizon_ns: Optional[float] = HORIZON_NS,
                 max_decisions: Optional[int] = DECISION_BUDGET,
                 ) -> ScheduleOutcome:
    """Execute one scenario under one choice prefix on a fresh machine."""
    from repro.common.config import default_config
    from repro.shard.runner import ShardedMachine
    from repro.shard.scenarios import scenario as make_scenario

    with behavior_model(model):
        config = default_config(n_nodes=n_nodes)
        config.seed = seed
        config.shards = 1
        config.sanitize = sanitize or ()
        scen = make_scenario(scenario, **(params or {}))
        scen.prepare(config)
        sm = ShardedMachine(config, scen, backend="inline")
        machine = sm.machines[0]
        policy = GuidedPolicy(prefix, horizon_ns=horizon_ns,
                              max_decisions=max_decisions)
        machine.engine.schedule_policy = policy
        error = error_kind = None
        snapshot = result = None
        try:
            run = sm.run()
        except ReproError as exc:
            error, error_kind = str(exc), type(exc).__name__
        else:
            snapshot = _comparable(run.snapshot)
            result = run.results[0]
            check = CHECKS.get(scenario)
            if check is not None:
                failure = check(result)
                if failure is not None:
                    error, error_kind = failure, "CheckFailure"
        layer = getattr(machine, "sanitizers", None)
        sanitizers = layer.oracle_report() if layer is not None else None
    return ScheduleOutcome(
        prefix=list(prefix),
        choices=[d.chosen for d in policy.decisions],
        decisions=policy.decisions,
        schedule_hash=policy.schedule_hash,
        snapshot=snapshot,
        result=result,
        sanitizers=sanitizers,
        error=error,
        error_kind=error_kind,
    )


# ----------------------------------------------------------------------
# the DFS
# ----------------------------------------------------------------------


def _minimize(choices: List[int], still_fails: Callable[[List[int]], bool],
              budget: int, counter: List[int]) -> List[int]:
    """Greedy witness minimization: try zeroing each non-canonical
    choice; keep any removal that preserves the verdict."""
    best = normalize_choices(choices)
    progress = True
    while progress and counter[0] < budget:
        progress = False
        for i in range(len(best)):
            if best[i] == 0:
                continue
            candidate = normalize_choices(best[:i] + [0] + best[i + 1:])
            counter[0] += 1
            if still_fails(candidate):
                best = candidate
                progress = True
                break
            if counter[0] >= budget:
                break
    return best


def explore_scenario(scenario: str, params: Optional[Dict[str, Any]] = None,
                     n_nodes: int = 2, seed: int = 0, sanitize: str = "all",
                     model: Optional[str] = None, max_schedules: int = 200,
                     max_depth: Optional[int] = None,
                     minimize_budget: int = 30,
                     progress: Optional[Callable[[str], None]] = None,
                     ) -> ExploreResult:
    """Bounded canonical-first DFS over same-timestamp orderings."""
    if n_nodes < 2 or n_nodes > 4:
        raise ConfigError(
            f"the explorer targets 2-4 node configs, not {n_nodes} "
            f"(schedule counts explode with machine size)")
    if params is None:
        params = EXPLORE_DEFAULTS.get(scenario, {})

    def runner(prefix: Sequence[int]) -> ScheduleOutcome:
        return run_schedule(scenario, params, n_nodes=n_nodes, seed=seed,
                            sanitize=sanitize, prefix=prefix, model=model)

    res = ExploreResult()
    visited: set = set()
    stack: List[List[int]] = [[]]
    min_counter = [0]
    while stack and res.schedules_run < max_schedules:
        prefix = stack.pop()
        outcome = runner(prefix)
        res.schedules_run += 1
        res.distinct.add(outcome.schedule_hash)
        res.max_decisions = max(res.max_decisions, len(outcome.decisions))
        for dec in outcome.decisions:
            res.max_ready = max(res.max_ready, dec.n_ready)

        if outcome.error is not None:
            witness = _minimize(
                outcome.choices,
                lambda c: runner(c).error_kind == outcome.error_kind,
                minimize_budget, min_counter)
            res.violations.append(Violation(
                witness, outcome.error, outcome.error_kind))
            if progress:
                progress(f"violation ({outcome.error_kind}) at "
                         f"schedule {res.schedules_run}: {witness}")
            continue  # a broken schedule's suffix is not worth expanding

        if res.baseline is None:
            res.baseline = outcome
        elif res.racy is None and outcome.snapshot != res.baseline.snapshot:
            base = res.baseline
            witness = _minimize(
                outcome.choices,
                lambda c: runner(c).snapshot != base.snapshot,
                minimize_budget, min_counter)
            res.racy = {
                "witness": normalize_choices(base.choices),
                "witness_other": witness,
                "detail": "wall-stripped metrics differ between the two "
                          "schedules (observable behavior depends on "
                          "same-timestamp ordering)",
            }
            if progress:
                progress(f"schedule-invariance breach at schedule "
                         f"{res.schedules_run}: witness pair "
                         f"{res.racy['witness']} vs {witness}")

        # expand only the suffix this run explored for the first time
        for d in range(len(prefix), len(outcome.decisions)):
            if max_depth is not None and d >= max_depth:
                res.depth_capped += 1
                break
            dec = outcome.decisions[d]
            res.pruned += dec.pruned
            for index, token in dec.branches:
                key = (dec.state_hash, token)
                if key in visited:
                    res.visited_hits += 1
                    continue
                visited.add(key)
                stack.append(outcome.choices[:d] + [index])
    res.frontier_left = len(stack)
    res.minimize_runs = min_counter[0]
    return res


# ----------------------------------------------------------------------
# replay
# ----------------------------------------------------------------------


def replay_trace(doc: Dict[str, Any]) -> ScheduleOutcome:
    """Re-execute the schedule a trace document pins."""
    return run_schedule(
        doc["scenario"], doc.get("params") or {},
        n_nodes=doc["n_nodes"], seed=doc["seed"],
        sanitize=doc.get("sanitize", "all"),
        prefix=doc["choices"], model=doc.get("model"),
    )
