"""Schedule traces: JSON documents that pin one explored interleaving.

A trace stores everything needed to re-execute one schedule bit-for-bit
on a fresh machine: the scenario (name + constructor params), the
machine shape (nodes, seed, sanitizers), the behavior model in force,
and the *choice prefix* — the index the policy took at each decision
point up to the last non-canonical choice (every decision after the
prefix takes index 0, the engine's native order, so canonical suffixes
serialize to nothing).

``python -m repro.explore replay <trace.json>`` is the consumer: it
re-runs the schedule and reports the same verdict the explorer saw, so
a violating trace is a self-contained, shareable counterexample.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from repro.common.errors import ConfigError

#: format tag; bump on incompatible layout changes.
TRACE_SCHEMA = "startv.explore_trace/v1"


def trace_document(scenario: str, params: Dict[str, Any], n_nodes: int,
                   seed: int, sanitize: str, model: Optional[str],
                   choices: Sequence[int],
                   verdict: Optional[Dict[str, Any]] = None
                   ) -> Dict[str, Any]:
    """Assemble a replayable trace document."""
    doc: Dict[str, Any] = {
        "schema": TRACE_SCHEMA,
        "scenario": scenario,
        "params": dict(params or {}),
        "n_nodes": n_nodes,
        "seed": seed,
        "sanitize": sanitize,
        "model": model,
        "choices": list(choices),
    }
    if verdict is not None:
        # advisory: what the producing exploration observed (the replay
        # recomputes its own verdict and compares)
        doc["verdict"] = verdict
    return doc


def normalize_choices(choices: Sequence[int]) -> List[int]:
    """Strip the canonical suffix: trailing 0 choices are implied."""
    out = list(choices)
    while out and out[-1] == 0:
        out.pop()
    return out


def dump_trace(doc: Dict[str, Any]) -> str:
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def parse_trace(text: str) -> Dict[str, Any]:
    """Parse and validate a trace document."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigError(f"not a JSON trace: {exc}") from None
    if not isinstance(doc, dict) or doc.get("schema") != TRACE_SCHEMA:
        raise ConfigError(
            f"not a schedule trace (expected schema {TRACE_SCHEMA!r}, "
            f"got {doc.get('schema') if isinstance(doc, dict) else doc!r})")
    for field in ("scenario", "n_nodes", "seed", "choices"):
        if field not in doc:
            raise ConfigError(f"trace missing required field {field!r}")
    if not all(isinstance(c, int) and c >= 0 for c in doc["choices"]):
        raise ConfigError("trace choices must be non-negative integers")
    return doc
