"""The partial-order-reduction conflict relation.

Two same-timestamp scheduled items need both orders explored only if
they *conflict* — if running them in either order can change what the
simulation does next.  Independent items commute: executing A then B at
the same instant is indistinguishable from B then A, so exploring one
order covers both (the Mazurkiewicz-trace argument behind partial-order
reduction).

The engine's heap entries are opaque ``(time, seq, kind, target, arg)``
tuples, so conflict detection is a *heuristic classification* of each
item's target object:

========== ===========================================================
key tag    derived from
========== ===========================================================
``store``  a :class:`~repro.sim.store.Store` put/get event — the
           store's name (``put:X`` and ``get:X`` share the key ``X``,
           so producers and consumers of one queue conflict)
``proc``   a process wake-up (timeout expiry, first step, interrupt) —
           the sorted names of the processes the item resumes
``ev``     any other named event — the event name
``cells``  a closure (link delivery, credit return...) — the sorted
           names of every named object captured in its cells, so two
           deliveries on one link conflict and deliveries on disjoint
           links commute
========== ===========================================================

Unclassifiable items return ``None`` and conservatively conflict with
everything.  The relation over-approximates (two wake-ups of processes
that never touch shared state still "conflict" when the processes share
a name), which costs exploration breadth but never hides an ordering —
the safe direction for a testing tool.
"""

from __future__ import annotations

import re
from typing import Any, Dict, FrozenSet, Optional, Tuple
from zlib import crc32

#: a classification: (tag, detail) — or None for "conflicts with all".
ConflictKey = Optional[Tuple[str, Any]]


def _callback_owners(callbacks: Any) -> Optional[Tuple[str, ...]]:
    """Names of the objects a callback list resumes (None if opaque)."""
    if not callbacks:
        return ()
    names = []
    for cb in callbacks:
        owner = getattr(cb, "__self__", None)
        name = getattr(owner, "name", None)
        if not isinstance(name, str):
            return None
        names.append(name)
    return tuple(sorted(names))


def _event_key(ev: Any, callbacks: Any = None) -> ConflictKey:
    name = getattr(ev, "name", None)
    if not isinstance(name, str) or not name:
        return None
    if name.startswith("put:") or name.startswith("get:"):
        return ("store", name.split(":", 1)[1])
    if name in ("timeout", "all_of", "any_of", "process"):
        # anonymous plumbing event: classify by who it wakes
        if callbacks is None:
            callbacks = getattr(ev, "_callbacks", None)
        owners = _callback_owners(callbacks)
        if owners is None:
            return None
        if not owners:
            return ("noop", "")
        return ("proc", owners)
    return ("ev", name)


def _call_key(fn: Any) -> ConflictKey:
    owner = getattr(fn, "__self__", None)
    if owner is not None:
        name = getattr(owner, "name", None)
        if isinstance(name, str):
            tag = "proc" if hasattr(owner, "_gen") else "obj"
            detail = (name,) if tag == "proc" else name
            return (tag, detail)
        return None
    cells = getattr(fn, "__closure__", None)
    if cells:
        names = []
        for cell in cells:
            try:
                captured = cell.cell_contents
            except ValueError:  # pragma: no cover - empty cell
                continue
            name = getattr(captured, "name", None)
            if isinstance(name, str) and name:
                names.append(name)
        if names:
            return ("cells", tuple(sorted(names)))
    return None


def conflict_key(item: Tuple) -> ConflictKey:
    """Classify one heap entry ``(time, seq, kind, target, arg)``."""
    _time, _seq, kind, target, arg = item
    if kind == 2:  # KIND_CALLBACKS: arg is the already-triggered event
        return _event_key(arg, callbacks=target)
    if kind == 1:  # KIND_SUCCEED: target is the event about to trigger
        return _event_key(target)
    return _call_key(target)


#: name prefixes that are per-node hardware: every ``ap0``/``sp0``/
#: ``ctrl0``/... object hangs off node 0's bus, SRAM banks, and NIU
#: queues, so two same-instant items on one node contend and must be
#: order-explored; same-instant items on *different* nodes can only
#: interact through a link flight that lands strictly later.
_NODE_PREFIXES = frozenset({
    "ap", "sp", "ctrl", "sbiu", "abiu", "niu", "node", "n", "fw",
})

_TOKEN_RE = re.compile(r"([a-z]+)(\d+)")

#: detail-string -> resource tokens (memoized; details recur heavily).
_token_cache: Dict[str, FrozenSet[Tuple[str, int]]] = {}


def _resource_tokens(key: Tuple[str, Any]) -> FrozenSet[Tuple[str, int]]:
    """The shared-hardware footprint a key's names imply.

    Node-scoped prefixes collapse to ``("node", k)`` so ``ap0.writer``
    and ``ctrl0.cmdproc0`` land on the same token; other indexed names
    (switches, external queues) keep their own prefix.  An empty set
    means the names carry no placement information.
    """
    detail = key[1]
    names = detail if isinstance(detail, tuple) else (str(detail),)
    tokens = set()
    for name in names:
        cached = _token_cache.get(name)
        if cached is None:
            found = set()
            for prefix, num in _TOKEN_RE.findall(name):
                if prefix in _NODE_PREFIXES:
                    found.add(("node", int(num)))
                else:
                    found.add((prefix, int(num)))
            cached = _token_cache[name] = frozenset(found)
        tokens |= cached
    return frozenset(tokens)


def keys_conflict(a: ConflictKey, b: ConflictKey) -> bool:
    """Whether two classifications must be order-explored."""
    # a no-op (triggered event with no callbacks) executes nothing, so
    # it commutes with everything — even unclassifiable items
    if (a is not None and a[0] == "noop") or (b is not None and b[0] == "noop"):
        return False
    if a is None or b is None:
        return True
    if a == b:
        return True
    ta, tb = _resource_tokens(a), _resource_tokens(b)
    if not ta or not tb:
        # no placement information: assume shared state (conservative)
        return True
    return bool(ta & tb)


def key_token(key: ConflictKey) -> str:
    """A stable, JSON/hash-friendly rendering of a conflict key."""
    if key is None:
        return "?"
    tag, detail = key
    if isinstance(detail, tuple):
        detail = ",".join(detail)
    return f"{tag}:{detail}"


def stable_hash(obj: Any) -> int:
    """Process- and run-independent hash (CRC32 of the repr).

    ``hash()`` is salted per interpreter for strings; exploration state
    hashes must be reproducible so that two runs of the explorer prune
    identically."""
    return crc32(repr(obj).encode("utf-8"))
