"""The guided schedule policy: replay a choice prefix, record the rest.

:class:`GuidedPolicy` is the single policy class the explorer needs.
Installed on an engine (``engine.schedule_policy = GuidedPolicy(prefix)``)
it receives every same-timestamp decision point, takes the prescribed
choice while the prefix lasts and the canonical choice (index 0 — the
engine's native seq order) afterwards, and records a
:class:`Decision` per point:

* which alternatives are worth branching to under partial-order
  reduction (an index ``i > 0`` only if ``ready[i]`` conflicts with
  some earlier ``ready[j < i]`` — commuting neighbours are *pruned*),
* a state hash for the DFS driver's visited set.  The hash combines an
  order-insensitive accumulator over the choices made so far with the
  sorted conflict keys of the current ready set, so two schedules that
  merely commuted independent events collide and the second expansion
  is skipped.

The empty prefix is the canonical schedule: every ``choose`` returns 0,
which executes exactly what the policy-free engine would.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Sequence, Tuple

from repro.common.errors import DeadlockError, SimulationError
from repro.explore.conflict import (
    conflict_key,
    key_token,
    keys_conflict,
    stable_hash,
)
from repro.sim.engine import ScheduledItem, SchedulePolicy

_HASH_MASK = (1 << 48) - 1


class Decision(NamedTuple):
    """One recorded decision point."""

    time: float          #: simulated instant of the tie group
    n_ready: int         #: size of the tie group (always >= 2)
    chosen: int          #: index the policy returned
    #: POR branch candidates: (index, conflict-key token) pairs
    branches: Tuple[Tuple[int, str], ...]
    pruned: int          #: alternatives skipped as commuting
    state_hash: int      #: visited-set hash *before* this choice


class GuidedPolicy(SchedulePolicy):
    """Follow ``prefix``, then the canonical order, recording decisions.

    ``horizon_ns`` / ``max_decisions`` bound one schedule in simulated
    time and decision count: a schedule that blows past either is hung
    or livelocked (e.g. pollers spinning on a barrier that will never
    release), and the policy raises :class:`DeadlockError` so the
    explorer records it as a violating schedule instead of running
    forever.  Both bounds are far above anything a quiescing scenario
    reaches, so clean schedules never trip them.
    """

    __slots__ = ("prefix", "decisions", "horizon_ns", "max_decisions",
                 "_acc")

    def __init__(self, prefix: Sequence[int] = (),
                 horizon_ns: Optional[float] = None,
                 max_decisions: Optional[int] = None):
        self.prefix: List[int] = list(prefix)
        self.decisions: List[Decision] = []
        self.horizon_ns = horizon_ns
        self.max_decisions = max_decisions
        self._acc = 0

    def choose(self, time: float, ready: List[ScheduledItem]) -> int:
        depth = len(self.decisions)
        if self.horizon_ns is not None and time > self.horizon_ns:
            raise DeadlockError(
                f"schedule passed the {self.horizon_ns:.0f}ns exploration "
                f"horizon without quiescing at decision {depth} — the "
                f"machine is hung or livelocked")
        if self.max_decisions is not None and depth >= self.max_decisions:
            raise DeadlockError(
                f"schedule hit the {self.max_decisions}-decision budget at "
                f"t={time:.1f}ns without quiescing — the machine is hung "
                f"or livelocked")
        if depth < len(self.prefix):
            choice = self.prefix[depth]
            if not 0 <= choice < len(ready):
                raise SimulationError(
                    f"schedule trace diverged: decision {depth} prescribes "
                    f"choice {choice} but only {len(ready)} items are ready "
                    f"at t={time:.1f}ns (trace from a different build or "
                    f"scenario?)")
        else:
            choice = 0
        keys = [conflict_key(item) for item in ready]
        branches = []
        pruned = 0
        for i in range(1, len(ready)):
            if any(keys_conflict(keys[i], keys[j]) for j in range(i)):
                branches.append((i, key_token(keys[i])))
            else:
                pruned += 1
        tokens = tuple(sorted(key_token(k) for k in keys))
        state_hash = stable_hash((self._acc, time, tokens))
        self.decisions.append(Decision(
            time, len(ready), choice, tuple(branches), pruned, state_hash))
        # order-insensitive: addition commutes, so schedules that execute
        # the same multiset of (time, key) choices reach the same _acc
        self._acc = (self._acc + stable_hash(
            (time, key_token(keys[choice])))) & _HASH_MASK
        return choice

    @property
    def schedule_hash(self) -> int:
        """Order-*sensitive* identity of the executed schedule."""
        return stable_hash(tuple(
            (d.time, d.chosen) for d in self.decisions))
