"""CLI front door: ``python -m repro.explore`` (explore or replay).

Explore::

    python -m repro.explore --scenario shm_hash --nodes 2 \\
        --max-schedules 5000 --sanitize all --json out.json \\
        --trace-out witness.json

Replay a serialized schedule trace::

    python -m repro.explore replay witness.json

Exit status: 0 for a clean sweep (or a replay that reproduces a clean
schedule), 1 when violations / an invariance breach were found (or a
replay reproduces the recorded violation — replay of a violating trace
"succeeding" at violating still exits 1, mirroring what a test harness
wants to assert on).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.common.errors import ConfigError, ReproError
from repro.explore.driver import (
    EXPLORE_DEFAULTS,
    explore_scenario,
    replay_trace,
)
from repro.explore.models import MODELS
from repro.explore.trace import (
    dump_trace,
    normalize_choices,
    parse_trace,
    trace_document,
)


def _coerce(text: str) -> Any:
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    return text


def _parse_params(entries: Sequence[str]) -> Dict[str, Any]:
    params: Dict[str, Any] = {}
    for entry in entries:
        if "=" not in entry:
            raise ConfigError(f"--param wants key=value, got {entry!r}")
        key, _, value = entry.partition("=")
        params[key.strip()] = _coerce(value.strip())
    return params


def _write(path: str, text: str) -> None:
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)


def _cmd_replay(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.explore replay",
        description="Re-execute one serialized schedule trace.")
    parser.add_argument("trace", help="trace JSON written by the explorer")
    parser.add_argument("--json", dest="as_json", action="store_true",
                        help="machine-readable verdict on stdout")
    args = parser.parse_args(argv)

    with open(args.trace, "r", encoding="utf-8") as fh:
        doc = parse_trace(fh.read())
    outcome = replay_trace(doc)
    verdict = {
        "scenario": doc["scenario"],
        "choices": doc["choices"],
        "decisions": len(outcome.decisions),
        "ok": outcome.ok,
        "error_kind": outcome.error_kind,
        "error": outcome.error,
    }
    if args.as_json:
        print(json.dumps(verdict, indent=2, sort_keys=True))
    elif outcome.ok:
        print(f"replayed {doc['scenario']} with choices {doc['choices']}: "
              f"clean ({len(outcome.decisions)} decision points)")
    else:
        print(f"replayed {doc['scenario']} with choices {doc['choices']}: "
              f"{outcome.error_kind}: {outcome.error}")
    recorded = doc.get("verdict")
    if recorded is not None and recorded.get("error_kind") != \
            outcome.error_kind:
        print(f"warning: trace was recorded with verdict "
              f"{recorded.get('error_kind')!r} but replayed to "
              f"{outcome.error_kind!r} (code drifted since capture?)",
              file=sys.stderr)
    return 0 if outcome.ok else 1


def _cmd_explore(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.explore",
        description="Bounded systematic exploration of same-timestamp "
                    "event orderings, every schedule checked by the "
                    "runtime sanitizers + the schedule-invariance oracle.")
    parser.add_argument("--scenario", default="shm_hash",
                        help="scenario name (default shm_hash; see "
                             "repro.shard.scenarios)")
    parser.add_argument("--nodes", type=int, default=2,
                        help="machine size, 2-4 (default 2)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--sanitize", default="all",
                        help="sanitizer spec for every schedule "
                             "(default all)")
    parser.add_argument("--max-schedules", type=int, default=200,
                        help="schedule budget (default 200)")
    parser.add_argument("--max-depth", type=int, default=None,
                        help="stop branching past this decision depth")
    parser.add_argument("--model", default=None, choices=sorted(MODELS),
                        help="re-open a historical bug for the sweep")
    parser.add_argument("--param", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="scenario constructor parameter (repeatable; "
                             "defaults per scenario otherwise)")
    parser.add_argument("--json", dest="json_out", default=None,
                        metavar="FILE", help="write the summary JSON here")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="write the first violating (or racy-witness) "
                             "schedule trace here")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-violation progress lines")
    args = parser.parse_args(argv)

    params = _parse_params(args.param) or None
    progress = (lambda msg: None) if args.quiet else \
        (lambda msg: print(f"  {msg}"))
    res = explore_scenario(
        args.scenario, params, n_nodes=args.nodes, seed=args.seed,
        sanitize=args.sanitize, model=args.model,
        max_schedules=args.max_schedules, max_depth=args.max_depth,
        progress=progress)

    summary = res.summary()
    summary.update({
        "schema": "startv.explore/v1",
        "scenario": args.scenario,
        "params": params or EXPLORE_DEFAULTS.get(args.scenario, {}),
        "n_nodes": args.nodes,
        "seed": args.seed,
        "sanitize": args.sanitize,
        "model": args.model,
    })
    print(f"{args.scenario} @ {args.nodes} nodes"
          + (f" [model={args.model}]" if args.model else "") + ":")
    print(f"  {summary['schedules_run']} schedules run, "
          f"{summary['distinct_schedules']} distinct, "
          f"{summary['pruned']} commuting alternatives pruned, "
          f"{summary['visited_hits']} visited-state hits, "
          f"{summary['frontier_left']} frontier entries unexplored")
    print(f"  max {summary['max_decisions']} decision points / schedule, "
          f"max {summary['max_ready']} ready items / decision")

    witness_choices: Optional[List[int]] = None
    verdict: Optional[Dict[str, Any]] = None
    if res.violations:
        first = res.violations[0]
        witness_choices = first.choices
        verdict = {"error_kind": first.error_kind, "error": first.error}
        print(f"  {len(res.violations)} violating schedule(s); first: "
              f"{first.error_kind}: {first.error}")
    elif res.racy is not None:
        witness_choices = res.racy["witness_other"]
        verdict = {"error_kind": "Racy", "error": res.racy["detail"]}
        print(f"  RACY: {res.racy['detail']}")
        print(f"  witness pair: {res.racy['witness']} vs "
              f"{res.racy['witness_other']}")
    else:
        print("  clean sweep: every schedule passed the sanitizers, the "
              "scenario check, and schedule invariance")

    if args.trace_out and witness_choices is not None:
        doc = trace_document(
            args.scenario, params or EXPLORE_DEFAULTS.get(args.scenario, {}),
            args.nodes, args.seed, args.sanitize, args.model,
            normalize_choices(witness_choices), verdict=verdict)
        _write(args.trace_out, dump_trace(doc))
        print(f"  witness trace -> {args.trace_out}")
    if args.json_out:
        _write(args.json_out, json.dumps(summary, indent=2, sort_keys=True)
               + "\n")
    return 0 if res.clean else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    try:
        if argv and argv[0] == "replay":
            return _cmd_replay(argv[1:])
        return _cmd_explore(argv)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
