"""Behavior models: re-openable historical bugs for regression exploration.

A *behavior model* is a context manager that flips one firmware module
flag to its pre-fix setting for the duration of an exploration, so the
explorer can demonstrate that it (still) finds the schedule that broke
the old code — and that the current code sweeps clean.  Models are
applied around whole schedule batches; schedules run sequentially
in-process, so a module-level flag is race-free here.

======================= ==============================================
model                   re-opened bug
======================= ==============================================
``overflow_drop``       PR 7: sP service-queue entries that overflowed
                        into the miss queue were dropped instead of
                        redelivered — a simultaneous-arrival barrier
                        burst hangs; the waiters poll forever, so the
                        explorer's liveness budget flags the schedule
``kill_grant``          PR 9: a remote RW grant at a home still holding
                        the line Modified revoked with a blunt KILL
                        instead of a FLUSH — stores sitting dirty in
                        the home's L2 were destroyed (wrong reads)
======================= ==============================================
"""

from __future__ import annotations

import contextlib
import importlib
from typing import Dict, Iterator, Optional

from repro.common.errors import ConfigError


@contextlib.contextmanager
def _flag(module: str, attr: str, value: bool) -> Iterator[None]:
    mod = importlib.import_module(module)
    saved = getattr(mod, attr)
    setattr(mod, attr, value)
    try:
        yield
    finally:
        setattr(mod, attr, saved)


def overflow_drop():
    """PR 7 pre-fix: drop (don't redeliver) sP-queue overflow bursts."""
    return _flag("repro.firmware.msg", "REDELIVER_SP_OVERFLOW", False)


def kill_grant():
    """PR 9 pre-fix: grants revoke with KILL, destroying Modified lines."""
    return _flag("repro.firmware.scoma", "GRANT_PRESERVES_HOME_STORES", False)


MODELS: Dict[str, object] = {
    "overflow_drop": overflow_drop,
    "kill_grant": kill_grant,
}


def behavior_model(name: Optional[str]):
    """Resolve a model name (or None) to a context manager instance."""
    if name is None:
        return contextlib.nullcontext()
    try:
        return MODELS[name]()  # type: ignore[operator]
    except KeyError:
        raise ConfigError(
            f"unknown behavior model {name!r}; known: "
            f"{', '.join(sorted(MODELS))}") from None
