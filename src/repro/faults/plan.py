"""Declarative fault plans: what goes wrong, where, and when.

The paper's real Arctic network was engineered to be *reliable* — CRC
per packet, exhaustively verified switch silicon — precisely so that the
NIU firmware above it could be simple.  This module models the opposite
regime so the firmware reliability protocol (:mod:`repro.firmware.
reliable`) has something to survive: a :class:`FaultPlan` describes, up
front and declaratively, every fault the run will inject.

Determinism is the design center.  Fault decisions never consult a
global RNG or wall clock; every per-packet draw hashes ``(plan seed,
link identity, per-link packet ordinal)``, so the same plan on the same
workload produces the same faults — in-process, across processes, and
across ``run_sweep --jobs`` fan-out.  Timed events (link down/up, sP
stalls, node crashes) fire at fixed simulated times.

Fault classes:

* :class:`LinkFault` — per-link packet drop and corrupt probabilities,
  matched by ``fnmatch`` pattern over link names (``"*"`` = everywhere,
  ``"sw1.0->n1"`` = one specific hop);
* :class:`LinkEvent` — a link goes down (or comes back up) at a fixed
  time; routing re-computes around downed links (up/down re-routing);
* :class:`SpStall` — one node's firmware engine stops dispatching for a
  window (models a wedged/overloaded sP);
* :class:`NodeCrash` — a whole node fails silently at a fixed time: its
  aP programs die, its sP halts, its CTRL drops all arrivals.
"""

from __future__ import annotations

import dataclasses
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.common.errors import ConfigError

__all__ = [
    "FaultPlan",
    "LinkFault",
    "LinkEvent",
    "SpStall",
    "NodeCrash",
    "fault_hash01",
    "link_key",
]


def fault_hash01(key: int, ordinal: int, salt: int) -> float:
    """Deterministic uniform draw in [0, 1) from (key, ordinal, salt).

    The same integer-avalanche recipe the fat tree uses for up-link
    spreading: cheap, stateless, and identical on every host and in
    every process layout.
    """
    h = (key ^ (ordinal * 0x9E3779B1) ^ ((salt + 1) * 0xC2B2AE3D)) & 0xFFFFFFFF
    h ^= h >> 13
    h = (h * 0x165667B1) & 0xFFFFFFFF
    h ^= h >> 16
    return h / 4294967296.0


def link_key(seed: int, link_name: str) -> int:
    """Stable 32-bit fault-stream key for one link of one plan."""
    return zlib.crc32(f"{seed}:{link_name}".encode()) & 0xFFFFFFFF


@dataclass
class LinkFault:
    """Probabilistic per-packet faults on links matching ``pattern``."""

    #: fnmatch pattern over link names ("n0->sw1.0", "sw1.0->sw2.0", ...).
    pattern: str = "*"
    #: probability a packet vanishes on the wire.
    drop_p: float = 0.0
    #: probability a packet arrives with flipped bits (checksum catches it).
    corrupt_p: float = 0.0

    def validate(self) -> None:
        for name in ("drop_p", "corrupt_p"):
            p = getattr(self, name)
            if not (0.0 <= p <= 1.0):
                raise ConfigError(f"LinkFault.{name} must be in [0, 1]: {p}")


@dataclass
class LinkEvent:
    """A link changes state at a fixed simulated time."""

    time_ns: float
    #: exact link name, or an fnmatch pattern (every match flips).
    link: str
    #: False = the link goes down; True = it comes back up.
    up: bool = False

    def validate(self) -> None:
        if self.time_ns < 0:
            raise ConfigError(f"LinkEvent.time_ns must be >= 0: {self.time_ns}")


@dataclass
class SpStall:
    """One node's firmware engine freezes for a window."""

    node: int
    time_ns: float
    duration_ns: float

    def validate(self, n_nodes: int) -> None:
        if not (0 <= self.node < n_nodes):
            raise ConfigError(f"SpStall.node {self.node} does not exist")
        if self.time_ns < 0 or self.duration_ns <= 0:
            raise ConfigError("SpStall needs time_ns >= 0 and duration_ns > 0")


@dataclass
class NodeCrash:
    """A whole node fails silently at a fixed simulated time."""

    node: int
    time_ns: float

    def validate(self, n_nodes: int) -> None:
        if not (0 <= self.node < n_nodes):
            raise ConfigError(f"NodeCrash.node {self.node} does not exist")
        if self.time_ns < 0:
            raise ConfigError(f"NodeCrash.time_ns must be >= 0: {self.time_ns}")


@dataclass
class FaultPlan:
    """The complete declarative fault schedule of one run.

    Attach to :class:`~repro.common.config.MachineConfig` via the
    ``faults`` field; the machine assembly arms a
    :class:`~repro.faults.inject.FaultInjector` at build time.  With no
    plan attached nothing in the data plane changes — the hot paths
    check a single ``is None`` attribute.
    """

    #: seed for every probabilistic draw (independent of the machine's
    #: routing seed, so fault streams can vary while routes stay put).
    seed: int = 0
    link_faults: List[LinkFault] = field(default_factory=list)
    link_events: List[LinkEvent] = field(default_factory=list)
    sp_stalls: List[SpStall] = field(default_factory=list)
    node_crashes: List[NodeCrash] = field(default_factory=list)

    # -- convenience constructors -----------------------------------------

    @classmethod
    def uniform_loss(cls, drop_p: float, corrupt_p: float = 0.0,
                     seed: int = 0) -> "FaultPlan":
        """Every link drops/corrupts packets with the given probabilities."""
        return cls(seed=seed, link_faults=[
            LinkFault(pattern="*", drop_p=drop_p, corrupt_p=corrupt_p)
        ])

    # -- config-tree integration ------------------------------------------

    def validate(self, n_nodes: int) -> None:
        for lf in self.link_faults:
            lf.validate()
        for ev in self.link_events:
            ev.validate()
        for st in self.sp_stalls:
            st.validate(n_nodes)
        for cr in self.node_crashes:
            cr.validate(n_nodes)

    def describe(self) -> Dict[str, Any]:
        """Plain-dict form for experiment logs (mirrors config.describe)."""
        return dataclasses.asdict(self)

    def copy(self) -> "FaultPlan":
        """Deep copy (MachineConfig.copy duplicates the plan with this)."""
        return FaultPlan(
            seed=self.seed,
            link_faults=[dataclasses.replace(f) for f in self.link_faults],
            link_events=[dataclasses.replace(e) for e in self.link_events],
            sp_stalls=[dataclasses.replace(s) for s in self.sp_stalls],
            node_crashes=[dataclasses.replace(c) for c in self.node_crashes],
        )
