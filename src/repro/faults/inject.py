"""Arming a :class:`~repro.faults.plan.FaultPlan` onto a live machine.

Two pieces live here:

* :class:`LinkFaultState` — the per-link fault decision engine.  A link
  with no faults keeps ``link.faults is None`` and its send path pays a
  single attribute check (the zero-overhead-when-off contract); an armed
  link consults this object once per packet.
* :class:`FaultInjector` — walks the plan at machine-assembly time:
  attaches link fault states, schedules timed link-down/up flips, posts
  sP stall events, and schedules whole-node crashes.

Every probabilistic decision hashes ``(plan seed, link name, per-link
packet ordinal)`` — per-machine state only, so two machines built from
the same config fault identically regardless of process layout (the
``run_sweep --jobs`` determinism contract).  Notably the decision does
*not* key off ``Packet.seq``, which comes from a process-global counter.
"""

from __future__ import annotations

from fnmatch import fnmatch
from typing import TYPE_CHECKING, List, Optional, Set, Tuple

from repro.faults.plan import FaultPlan, fault_hash01, link_key

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import StarTVoyager
    from repro.net.link import Link
    from repro.net.packet import Packet
    from repro.sim.stats import StatsRegistry
    from repro.sim.trace import Tracer

#: outcomes of one per-packet fault decision (corruption delivers).
FATE_DELIVER = 0
FATE_DROP = 1


class LinkFaultState:
    """Per-link fault decisions: probabilistic drop/corrupt plus down state."""

    __slots__ = ("link_name", "key", "drop_p", "corrupt_p", "down",
                 "ordinal", "dropped", "corrupted", "stats", "tracer")

    def __init__(self, link_name: str, key: int, drop_p: float = 0.0,
                 corrupt_p: float = 0.0,
                 stats: Optional["StatsRegistry"] = None,
                 tracer: Optional["Tracer"] = None) -> None:
        self.link_name = link_name
        self.key = key
        self.drop_p = drop_p
        self.corrupt_p = corrupt_p
        self.down = False
        #: per-link packet ordinal — the deterministic "random" stream index.
        self.ordinal = 0
        self.dropped = 0
        self.corrupted = 0
        self.stats = stats
        self.tracer = tracer

    def fate(self, pkt: "Packet") -> int:
        """Decide one packet's fate; corruption mutates it in place."""
        if self.down:
            self.dropped += 1
            self._note("faults.link_down_drops", "down", pkt)
            return FATE_DROP
        if pkt.sync is not None:
            # switch-resident combining rides the fabric's lossless
            # contract (credit flow control + CRC): a dropped combined
            # request would wedge a whole reduction tree, which is why
            # SHARP-style in-switch collectives run over a reliable
            # transport.  Counted, so the exemption is visible.
            self._note("faults.sync_exempt", "sync_exempt", pkt)
            return FATE_DELIVER
        n = self.ordinal
        self.ordinal = n + 1
        if self.drop_p > 0.0 and fault_hash01(self.key, n, 0) < self.drop_p:
            self.dropped += 1
            self._note("faults.dropped", "loss", pkt)
            return FATE_DROP
        if self.corrupt_p > 0.0 and fault_hash01(self.key, n, 1) < self.corrupt_p:
            pkt.corrupt(n)
            self.corrupted += 1
            self._note("faults.corrupted", "corrupt", pkt)
        return FATE_DELIVER

    def _note(self, counter: str, why: str, pkt: "Packet") -> None:
        if self.stats is not None:
            self.stats.counter(counter).incr()
        tr = self.tracer
        if tr is not None and tr.active:
            tr.instant(f"faults.{why}", source=self.link_name, track="faults",
                       src=pkt.src, dst=pkt.dst, queue=pkt.dst_queue)


def _absorb(_ev) -> None:
    """Join-callback for crashed aP programs: the injector is the parent,
    so the interrupt does not surface as an unjoined process crash."""


class FaultInjector:
    """Arms one plan onto one machine (built by StarTVoyager at assembly)."""

    def __init__(self, machine: "StarTVoyager", plan: FaultPlan) -> None:
        self.machine = machine
        self.plan = plan
        self.crashed_nodes: Set[int] = set()
        self._armed = False

    # -- arming ------------------------------------------------------------

    def arm(self) -> None:
        """Attach link fault states and schedule every timed fault.

        Sharded machines arm the same plan on every shard; each timed
        action is scheduled as an engine event only on the shard that
        canonically owns it (a link's transmitter side, a node's board),
        while the routing-visible down/up timeline — statically known
        from the plan — is installed on every shard's network via
        :meth:`ArcticNetwork.schedule_downs`.  Event counts and timings
        therefore sum across shards to exactly the single-queue run.
        """
        if self._armed:
            return
        self._armed = True
        self._arm_links()
        self._arm_crashes()
        self._arm_link_events()
        self._arm_stalls()
        self._install_downs_timeline()

    def _owns_link(self, name: str) -> bool:
        """True when this machine holds the link's transmitter side (the
        side that makes fault decisions and owns its counters)."""
        net = self.machine.network
        link = net._links_by_name.get(name) if net is not None else None
        return link is not None and hasattr(link, "send")

    def _arm_links(self) -> None:
        net = self.machine.network
        if net is None or not self.plan.link_faults:
            return
        for link in net.links:
            if not hasattr(link, "send"):
                continue  # rx half of a cut link: fate runs on the tx side
            for lf in self.plan.link_faults:
                if fnmatch(link.name, lf.pattern):
                    # first matching entry wins (specific before general)
                    self._state_for(link, drop_p=lf.drop_p,
                                    corrupt_p=lf.corrupt_p)
                    break

    def _timed_flips(self) -> List[Tuple[float, str, bool]]:
        """Every statically known ``(time, link name, up)`` flip: plan
        link events plus the attachment drops implied by node crashes —
        matched against the whole fabric's name universe, so every shard
        derives the identical timeline."""
        net = self.machine.network
        if net is None:
            return []
        flips: List[Tuple[float, str, bool]] = []
        universe = net.all_link_names()
        for ev in self.plan.link_events:
            for name in universe:
                if fnmatch(name, ev.link):
                    flips.append((ev.time_ns, name, ev.up))
        for cr in self.plan.node_crashes:
            for name in net.node_link_names(cr.node):
                flips.append((cr.time_ns, name, False))
        return flips

    def _arm_link_events(self) -> None:
        engine = self.machine.engine
        for time_ns, name, up in self._timed_flips():
            if self._owns_link(name):
                engine._schedule_call(
                    lambda n=name, u=up: self.set_link(n, up=u),
                    delay=time_ns,
                )

    def _install_downs_timeline(self) -> None:
        net = self.machine.network
        if net is None:
            return
        flips = self._timed_flips()
        if flips:
            net.schedule_downs(flips)

    def _arm_stalls(self) -> None:
        if not self.plan.sp_stalls:
            return
        engine = self.machine.engine
        for node in self.machine.nodes:
            if node is not None:
                node.sp.register("fault.stall", _stall_handler)
        for st in self.plan.sp_stalls:
            board = self.machine.nodes[st.node]
            if board is None:
                continue
            engine._schedule_call(
                lambda b=board, d=st.duration_ns:
                    b.niu.sbiu.post_event(("fault.stall", d)),
                delay=st.time_ns,
            )

    def _arm_crashes(self) -> None:
        engine = self.machine.engine
        for cr in self.plan.node_crashes:
            if self.machine.nodes[cr.node] is None:
                continue  # another shard owns the board
            engine._schedule_call(lambda n=cr.node: self._crash_board(n),
                                  delay=cr.time_ns)

    def _state_for(self, link: "Link", drop_p: float = 0.0,
                   corrupt_p: float = 0.0) -> LinkFaultState:
        st = link.faults
        if st is None:
            st = LinkFaultState(
                link.name, link_key(self.plan.seed, link.name),
                drop_p=drop_p, corrupt_p=corrupt_p,
                stats=self.machine.stats, tracer=self.machine.tracer,
            )
            link.faults = st
        return st

    # -- runtime fault actions (also callable directly from tests) ---------

    def set_link(self, name: str, up: bool) -> None:
        """Flip one link's up/down state; routing re-computes around it."""
        net = self.machine.network
        assert net is not None, "no network to fault"
        link = net.link_named(name)
        st = self._state_for(link)
        st.down = not up
        if up:
            net.down_links.discard(name)
        else:
            net.down_links.add(name)
        self.machine.stats.counter(
            "faults.link_up" if up else "faults.link_down").incr()
        tr = self.machine.tracer
        if tr is not None and tr.active:
            tr.instant("faults.link_up" if up else "faults.link_down",
                       source=name, track="faults")

    def crash(self, node_id: int) -> None:
        """Fail one node silently: aP programs die, sP halts, CTRL goes
        deaf, and both attachment links drop.  Nothing is cleaned up —
        exactly the failure the reliability protocol must tolerate.

        This is the direct (test-facing) entry point; plan-driven crashes
        arrive as a :meth:`_crash_board` event plus separately scheduled
        attachment-link flips, so that in a sharded machine each piece
        runs on the shard that owns it."""
        self._crash_board(node_id)
        net = self.machine.network
        if net is not None:
            for name in net.node_link_names(node_id):
                self.set_link(name, up=False)

    def _crash_board(self, node_id: int) -> None:
        if node_id in self.crashed_nodes:
            return
        self.crashed_nodes.add(node_id)
        board = self.machine.nodes[node_id]
        board.ctrl.crashed = True
        board.sp.halted = True
        for proc in board.ap.programs:
            if proc.is_alive:
                # absorb the interrupt: the injector "joins" the victim so
                # the kill is not reported as an unhandled process crash
                proc.add_callback(_absorb)
                proc.interrupt("node crash")
        self.machine.stats.counter("faults.node_crashes").incr()
        tr = self.machine.tracer
        if tr is not None and tr.active:
            tr.instant("faults.crash", source=f"node{node_id}", node=node_id,
                       track="faults")


def _stall_handler(sp, event: Tuple) -> "object":
    """Firmware-level stall: the engine sits busy doing nothing."""
    _kind, duration_ns = event
    sp.stats.counter("faults.sp_stalls").incr()
    yield sp.engine.timeout(duration_ns)


__all__: List[str] = [
    "FaultInjector",
    "LinkFaultState",
    "FATE_DELIVER",
    "FATE_DROP",
]
