"""repro.faults: deterministic fault injection for the Arctic fabric.

The paper's network never drops a packet; this package makes it lie —
on purpose, on schedule, and reproducibly — so the firmware reliability
protocol (:mod:`repro.firmware.reliable`) and the fault benchmarks have
a real adversary.  See :mod:`repro.faults.plan` for the declarative
plan format and :mod:`repro.faults.inject` for how plans arm onto a
machine.

Usage::

    from repro import FaultPlan, StarTVoyager, default_config

    cfg = default_config(n_nodes=4)
    cfg.faults = FaultPlan.uniform_loss(0.01, seed=7)
    machine = StarTVoyager(cfg)          # injector armed automatically
"""

from repro.faults.inject import FATE_DELIVER, FATE_DROP, FaultInjector, LinkFaultState
from repro.faults.plan import (
    FaultPlan,
    LinkEvent,
    LinkFault,
    NodeCrash,
    SpStall,
    fault_hash01,
    link_key,
)

__all__ = [
    "FaultPlan",
    "LinkFault",
    "LinkEvent",
    "SpStall",
    "NodeCrash",
    "FaultInjector",
    "LinkFaultState",
    "FATE_DELIVER",
    "FATE_DROP",
    "fault_hash01",
    "link_key",
]
