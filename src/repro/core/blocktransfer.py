"""The §6 experiments: five implementations of block memory transfer.

"The experiments investigate different ways of implementing block memory
transfer, i.e. copying data from contiguous memory locations in one site
to contiguous locations in another site.  Once the transfer is complete,
a message is put into the receiving job's regular message queue; the
receiver, upon reading this message, can then begin using the
transferred data."

========  =============================================================
approach  implementation (who moves the data)
========  =============================================================
1         sender aP reads/packetizes/sends Basic messages; receiver aP
          copies payloads into memory — data crosses each aP bus twice
2         aPs only file a request; the sPs drive the transfer through
          command-queue DRAM↔SRAM moves and TagOn pickups — one bus
          crossing per side, heavy sP occupancy
3         hardware block-operation units do read/packetize/send and the
          remote command queue does receive/write — both processors idle
4         approach 3 + optimistic early notification at ~25% of the
          data; receiver sP arms clsSRAM retry states and flips lines
          readable as chunks land (firmware per chunk)
5         approach 4 with the aBIU reconfigured to update clsSRAM in
          hardware as data lands; arming uses the block machinery
========  =============================================================

Latency is measured request-to-consumable: from the sender starting work
to the receiver having *touched every byte* of the destination (for 1-3
the completion message precedes the touch; for 4-5 the touch itself may
stall on S-COMA retries — that stall is the experiment).  The harness
also reports notification latency and per-processor occupancy, which §6
discusses qualitatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List

from repro.common.errors import ProgramError
from repro.core.machine import StarTVoyager
from repro.firmware.blockxfer import pack_bt45_arm
from repro.mp.basic import BasicPort
from repro.mp.dma import DmaNotifier, dma_write
from repro.niu.niu import NOTIFY_QUEUE, SP_SERVICE_QUEUE, vdst_for

#: Approach-1 payload per Basic message: a 4-byte offset word plus two
#: cache lines of data (64 B) — 68 <= 88.
A1_CHUNK = 64


@dataclass
class TransferResult:
    """Everything one block-transfer run measures."""

    approach: int
    size: int
    #: sender request start -> receiver notified (completion message read).
    notify_latency_ns: float
    #: sender request start -> receiver has touched every byte.
    data_ready_latency_ns: float
    #: busy-time deltas over the transfer, per processor.
    sender_ap_busy_ns: float = 0.0
    receiver_ap_busy_ns: float = 0.0
    sender_sp_busy_ns: float = 0.0
    receiver_sp_busy_ns: float = 0.0
    verified: bool = False

    @property
    def bandwidth_mb_s(self) -> float:
        """Transfer bandwidth (decimal MB/s) to the completion message.

        This is the Figure-4 metric: data delivered over the time until
        the receiver is told the transfer is done.  (For approaches 4/5
        the notification is optimistic, so compare those on
        :attr:`consume_bandwidth_mb_s` instead.)
        """
        return (self.size / self.notify_latency_ns) * 1000.0

    @property
    def consume_bandwidth_mb_s(self) -> float:
        """Bandwidth to the point every byte has been touched."""
        return (self.size / self.data_ready_latency_ns) * 1000.0

    def occupancy_row(self) -> Dict[str, float]:
        """Occupancy fractions over the transfer window."""
        w = self.data_ready_latency_ns
        return {
            "sender_ap": self.sender_ap_busy_ns / w if w else 0.0,
            "sender_sp": self.sender_sp_busy_ns / w if w else 0.0,
            "receiver_ap": self.receiver_ap_busy_ns / w if w else 0.0,
            "receiver_sp": self.receiver_sp_busy_ns / w if w else 0.0,
        }


class BlockTransferExperiment:
    """Runs one approach at one size on a fresh two-node machine."""

    def __init__(self, machine: StarTVoyager, src: int = 0, dst: int = 1) -> None:
        if machine.config.n_nodes < 2:
            raise ProgramError("block transfer needs at least two nodes")
        self.machine = machine
        self.src = src
        self.dst = dst
        self.src_node = machine.node(src)
        self.dst_node = machine.node(dst)
        #: source data in sender DRAM, destination buffer in receiver DRAM.
        self.src_addr = 0x10000
        self.dst_addr = 0x20000
        self.sender_port = BasicPort(self.src_node, tx_index=0, rx_logical=0)
        self.receiver_port = BasicPort(self.dst_node, tx_index=0, rx_logical=0)
        self.notifier = DmaNotifier(self.dst_node)

    # -- shared pieces ------------------------------------------------------

    def _prepare(self, size: int, approach: int) -> bytes:
        pattern = bytes((7 * i + approach) & 0xFF for i in range(size))
        self.src_node.dram.poke(self.src_addr, pattern)
        self.dst_node.dram.poke(self.dst_addr, bytes(size))
        return pattern

    def _dst_for(self, approach: int, size: int) -> int:
        """Approaches 4/5 land in the clsSRAM-covered S-COMA window."""
        if approach in (4, 5):
            base = self.dst_node.scoma_base
            if size > self.dst_node.scoma_bytes:
                raise ProgramError("transfer exceeds the S-COMA window")
            return base
        return self.dst_addr

    def _snapshot_busy(self) -> Dict[str, float]:
        return {
            "s_ap": self.src_node.ap.busy.current(),
            "s_sp": self.src_node.sp.busy.current(),
            "r_ap": self.dst_node.ap.busy.current(),
            "r_sp": self.dst_node.sp.busy.current(),
        }

    def run(self, approach: int, size: int) -> TransferResult:
        """Execute one transfer and return its measurements."""
        if approach not in (1, 2, 3, 4, 5):
            raise ProgramError(f"no approach {approach}")
        pattern = self._prepare(size, approach)
        dst_addr = self._dst_for(approach, size)
        before = self._snapshot_busy()
        t0 = self.machine.now
        marks: Dict[str, float] = {}

        if approach == 1:
            sender = self.machine.spawn(
                self.src, self._a1_sender, size, name="bt.a1.send")
            receiver = self.machine.spawn(
                self.dst, self._a1_receiver, size, marks, name="bt.a1.recv")
        elif approach == 2:
            sender = self.machine.spawn(
                self.src, self._request_sender, size, dst_addr, 2,
                name="bt.a2.send")
            receiver = self.machine.spawn(
                self.dst, self._notify_receiver, size, dst_addr, marks,
                name="bt.a2.recv")
        elif approach == 3:
            sender = self.machine.spawn(
                self.src, self._request_sender, size, dst_addr, 3,
                name="bt.a3.send")
            receiver = self.machine.spawn(
                self.dst, self._notify_receiver, size, dst_addr, marks,
                name="bt.a3.recv")
        else:
            sender = self.machine.spawn(
                self.src, self._armed_sender, size, dst_addr, approach,
                name=f"bt.a{approach}.send")
            receiver = self.machine.spawn(
                self.dst, self._armed_receiver, size, dst_addr, approach,
                marks, name=f"bt.a{approach}.recv")

        self.machine.run_all([sender, receiver])
        after = self._snapshot_busy()
        got = self.dst_node.peek_coherent(dst_addr, size)
        return TransferResult(
            approach=approach,
            size=size,
            notify_latency_ns=marks.get("notified", self.machine.now) - t0,
            data_ready_latency_ns=marks.get("consumed", self.machine.now) - t0,
            sender_ap_busy_ns=after["s_ap"] - before["s_ap"],
            sender_sp_busy_ns=after["s_sp"] - before["s_sp"],
            receiver_ap_busy_ns=after["r_ap"] - before["r_ap"],
            receiver_sp_busy_ns=after["r_sp"] - before["r_sp"],
            verified=(got == pattern),
        )

    # -- approach 1: aP does everything -------------------------------------------

    def _a1_sender(self, api, size: int) -> Generator:
        port = self.sender_port
        dst_vdst = vdst_for(self.dst, port.rx_logical)
        offset = 0
        while offset < size:
            chunk = min(A1_CHUNK, size - offset)
            data = yield from api.load(self.src_addr + offset, chunk)
            yield from api.compute(20)  # packetization bookkeeping
            payload = offset.to_bytes(4, "big") + data
            yield from port.send(api, dst_vdst, payload)
            offset += chunk

    def _a1_receiver(self, api, size: int, marks: Dict[str, float]
                     ) -> Generator:
        port = self.receiver_port
        received = 0
        while received < size:
            _src, payload = yield from port.recv(api)
            offset = int.from_bytes(payload[:4], "big")
            # zero-copy: the data rides as a view of the received payload
            # down to the aP store (the landing write), which pins it
            data = memoryview(payload)[4:]
            yield from api.store(self.dst_addr + offset, data)
            yield from api.compute(20)
            received += len(data)
        # completion: the receiver has placed every byte
        marks["notified"] = api.now
        # the consume pass mirrors approaches 2-5; it mostly hits the L2
        # since this aP just wrote the data
        yield from self._consume(api, self.dst_addr, size)
        marks["consumed"] = api.now

    # -- approaches 2/3: request + notification -----------------------------------------

    def _request_sender(self, api, size: int, dst_addr: int, mode: int
                        ) -> Generator:
        yield from dma_write(api, self.sender_port, self.dst,
                             self.src_addr, dst_addr, size,
                             notify_queue=NOTIFY_QUEUE, mode=mode)

    def _notify_receiver(self, api, size: int, dst_addr: int,
                         marks: Dict[str, float]) -> Generator:
        yield from self.notifier.wait(api)
        marks["notified"] = api.now
        yield from self._consume(api, dst_addr, size)
        marks["consumed"] = api.now

    def _consume(self, api, dst_addr: int, size: int) -> Generator:
        """Touch every byte, two lines at a time (the §6 'begin using')."""
        offset = 0
        while offset < size:
            chunk = min(64, size - offset)
            yield from api.load(dst_addr + offset, chunk)
            offset += chunk

    # -- approaches 4/5: optimistic notification over S-COMA state ------------------------

    def _armed_sender(self, api, size: int, dst_addr: int, mode: int
                      ) -> Generator:
        # wait for the receiver's "armed and ready" message
        yield from self.sender_port.recv(api)
        yield from dma_write(api, self.sender_port, self.dst,
                             self.src_addr, dst_addr, size,
                             notify_queue=NOTIFY_QUEUE, mode=mode)

    def _armed_receiver(self, api, size: int, dst_addr: int, mode: int,
                        marks: Dict[str, float]) -> Generator:
        # arm the destination lines (firmware for 4, block machinery for 5)
        yield from self.receiver_port.send(
            api, vdst_for(self.dst, SP_SERVICE_QUEUE),
            pack_bt45_arm(dst_addr, size, mode),
        )
        yield from api.compute(50)
        # tell the sender to start
        yield from self.receiver_port.send(
            api, vdst_for(self.src, self.sender_port.rx_logical), b"go")
        # early notification arrives after ~25% of the data
        yield from self.notifier.wait(api)
        marks["notified"] = api.now
        # start consuming immediately: reads of unarrived lines retry
        yield from self._consume(api, dst_addr, size)
        marks["consumed"] = api.now


def sweep(machine_factory, approaches: List[int], sizes: List[int]
          ) -> List[TransferResult]:
    """Run a (approach x size) sweep, one fresh machine per point.

    ``machine_factory() -> StarTVoyager`` keeps runs independent — the
    §6 comparison's whole point is holding everything else constant.
    """
    results = []
    for approach in approaches:
        for size in sizes:
            machine = machine_factory()
            exp = BlockTransferExperiment(machine)
            results.append(exp.run(approach, size))
    return results
