"""The experiment platform: cluster assembly and the §6 experiments."""

from repro.core.machine import StarTVoyager

__all__ = ["StarTVoyager"]
