"""The assembled StarT-Voyager cluster: the library's top-level object.

:class:`StarTVoyager` builds the engine, statistics, the Arctic network,
every node board, installs translation tables and default firmware, and
offers program execution and measurement helpers.  Everything a user of
the library touches starts here::

    from repro import StarTVoyager, default_config

    machine = StarTVoyager(default_config(n_nodes=2))

    def hello(api):
        yield from api.compute(10)
        return api.node_id

    procs = [machine.spawn(n, hello) for n in range(2)]
    machine.run()

One validated :class:`~repro.common.config.MachineConfig` fully
describes a machine — including whether the shipped firmware image is
loaded (``install_firmware``) and the S-COMA home map
(``scoma_home_of``).  Measurement goes through :meth:`metrics` (the
schema-versioned snapshot) and the :class:`~repro.obs.Observability`
facade at :attr:`obs`.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional, Union

from repro.analysis.sanitize import resolve_sanitizers
from repro.common.config import MachineConfig, default_config
from repro.common.errors import ConfigError
from repro.net.packet import PRIORITY_HIGH, PRIORITY_LOW
from repro.net.network import ArcticNetwork
from repro.niu.niu import (
    SP_PROTOCOL_QUEUE,
    SP_SERVICE_QUEUE,
    vdst_for,
)
from repro.niu.translation import TranslationEntry
from repro.node.node import NodeBoard
from repro.obs.core import Observability
from repro.sim.engine import Engine
from repro.sim.process import Process
from repro.sim.stats import StatsRegistry
from repro.sim.trace import Tracer
from repro.firmware import install_default_firmware

class StarTVoyager:
    """A cluster of StarT-Voyager nodes on an Arctic fat tree.

    Construction is fully described by one validated
    :class:`~repro.common.config.MachineConfig` — including firmware
    installation (``install_firmware``) and the S-COMA home map
    (``scoma_home_of``), which earlier revisions accepted as loose
    constructor kwargs.
    """

    def __init__(
        self,
        config: Optional[Union[MachineConfig, int]] = None,
        shard_view=None,
    ) -> None:
        if config is None:
            config = default_config()
        elif isinstance(config, int):
            config = default_config(n_nodes=config)
        config.validate()
        if config.shards > 1 and shard_view is None:
            raise ConfigError(
                f"config asks for {config.shards} shards; construct the "
                "machine through repro.shard.ShardedMachine (or run a "
                "scenario via repro.shard.run_scenario), which builds one "
                "StarTVoyager sub-machine per shard"
            )
        #: in a sharded build, the :class:`repro.shard.boundary.ShardView`
        #: restricting this sub-machine to its shard's nodes and switches;
        #: ``None`` for a whole machine.
        self.shard_view = shard_view
        self.config = config
        self.engine = Engine()
        self.stats = StatsRegistry(self.engine)
        self.tracer = Tracer(self.engine)
        self.obs = Observability(self)
        self.network: Optional[ArcticNetwork] = None
        if config.n_nodes > 1:
            self.network = ArcticNetwork(
                self.engine, config.network, config.n_nodes,
                seed=config.seed, stats=self.stats, tracer=self.tracer,
                shard_view=shard_view,
            )
        owns = (lambda i: True) if shard_view is None else shard_view.owns_node
        # indexed by global node id; remote nodes of a sharded build are
        # None — every local loop below must skip them.
        self.nodes: List[Optional[NodeBoard]] = [
            NodeBoard(
                self.engine, config, i,
                self.network.port(i) if self.network else None,
                # one stats scope per node: float-accumulator partials
                # merge canonically, making metrics shard-count-invariant
                self.stats.scoped(f"n{i}"), self.tracer,
            )
            if owns(i) else None
            for i in range(config.n_nodes)
        ]
        self._install_translation()
        if config.install_firmware:
            for node in self.nodes:
                if node is not None:
                    install_default_firmware(node, config.n_nodes,
                                             config.scoma_home_of)
        for node in self.nodes:
            if node is not None:
                node.start()
        #: fault injector, armed when the config carries a fault plan
        #: (``config.faults``); None on a healthy machine.
        self.fault_injector = None
        if config.faults is not None:
            from repro.faults.inject import FaultInjector

            config.faults.validate(config.n_nodes)
            self.fault_injector = FaultInjector(self, config.faults)
            self.fault_injector.arm()
        #: runtime invariant checkers (:mod:`repro.analysis.sanitize`);
        #: None unless ``config.sanitize`` or ``REPRO_SANITIZE`` names
        #: any — an unsanitized machine carries no checker state at all.
        self.sanitizers = None
        sanitize = resolve_sanitizers(config.sanitize)
        if sanitize:
            from repro.analysis.sanitize import SanitizerLayer

            self.sanitizers = SanitizerLayer(self, sanitize)
            self.sanitizers.install()
        #: lazy in-network-computing context (:mod:`repro.sync`).
        self._sync_fabric = None

    # -- construction helpers ---------------------------------------------------

    def _install_translation(self) -> None:
        """Populate every node's translation table with the global
        ``vdst = node*16 + queue`` convention (protocol queues ride the
        high network priority).

        Machines beyond 16 nodes exceed the byte-vdst packing, so they
        run kernel-mode RAW addressing instead: every tx queue is marked
        ``allow_raw`` and senders put the physical node and destination
        queue directly in the header (see
        :func:`repro.niu.niu.needs_raw_addressing`)."""
        if self.config.n_nodes > 16:
            for node in self.nodes:
                if node is None:
                    continue
                for q in node.ctrl.tx_queues:
                    q.allow_raw = True
            return
        for node in self.nodes:
            if node is None:
                continue
            for dst in range(self.config.n_nodes):
                for queue in range(16):
                    priority = (
                        PRIORITY_HIGH
                        if queue in (SP_SERVICE_QUEUE, SP_PROTOCOL_QUEUE)
                        else PRIORITY_LOW
                    )
                    node.ctrl.table.install(
                        vdst_for(dst, queue),
                        TranslationEntry(True, dst, queue, priority),
                    )

    def sync_fabric(self):
        """The machine's scalable-synchronization context (lazy
        singleton; see :class:`repro.sync.api.SyncFabric`).  Creating it
        installs the sync firmware cluster-wide; combining stages appear
        on switches only as groups are planned through them."""
        if self._sync_fabric is None:
            from repro.sync.api import SyncFabric

            self._sync_fabric = SyncFabric(self)
        return self._sync_fabric

    # -- execution ------------------------------------------------------------------

    def node(self, i: int) -> NodeBoard:
        """Node board ``i``."""
        return self.nodes[i]

    def spawn(self, node: int, program: Callable[..., Generator],
              *args: Any, name: Optional[str] = None, pid: int = 0) -> Process:
        """Run ``program(api, *args)`` on node ``node``'s aP.

        ``pid`` tags the program's bus operations for queue-ownership
        protection (0 = kernel, accepted by every queue).
        """
        return self.nodes[node].ap.run(program, *args, name=name, pid=pid)

    def run(self, until: Optional[float] = None) -> float:
        """Run the simulation (see :meth:`repro.sim.engine.Engine.run`)."""
        return self.engine.run(until)

    def run_until(self, event, limit: Optional[float] = None) -> Any:
        """Run until ``event`` (often a spawned process) triggers."""
        return self.engine.run_until_triggered(event, limit)

    def run_all(self, procs: List[Process], limit: Optional[float] = None
                ) -> List[Any]:
        """Run until every listed process finishes; return their values."""
        joined = self.engine.all_of(procs)
        return self.engine.run_until_triggered(joined, limit)

    @property
    def now(self) -> float:
        """Current simulated time in ns."""
        return self.engine.now

    # -- measurement ---------------------------------------------------------------------

    def metrics(self, include_config: bool = True) -> dict:
        """The machine's schema-versioned metrics snapshot.

        Counters, accumulators with p50/p90/p99 percentiles, busy times,
        and per-node aP/sP occupancy — see
        :mod:`repro.obs.snapshot` for the exact schema.
        """
        return self.obs.snapshot(include_config=include_config)
