"""Machine introspection: a textual map of a built cluster.

``describe_machine`` renders what the hardware actually instantiated —
address maps, queue plans, installed aBIU handlers, registered firmware —
the first thing a user of a platform this configurable needs when a
mechanism misbehaves.  The output is stable and diff-friendly, so tests
can also pin the default configuration's shape.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import StarTVoyager
    from repro.node.node import NodeBoard


def describe_machine(machine: "StarTVoyager") -> str:
    """Full textual description of every node plus the network."""
    lines: List[str] = []
    cfg = machine.config
    lines.append(
        f"StarT-Voyager: {cfg.n_nodes} node(s), aP {cfg.ap.clock_mhz:g} MHz, "
        f"bus {cfg.bus.clock_mhz:g} MHz/{cfg.bus.width_bytes * 8}-bit, "
        f"links {cfg.network.link_mb_per_s:g} MB/s"
    )
    if machine.network is not None:
        topo = machine.network.topology.describe()
        lines.append(
            f"network: fat tree, {topo['levels']} level(s) x "
            f"{topo['switches_per_level']} switch(es), radix {topo['radix']}, "
            f"{len(machine.network.links)} links"
        )
    else:
        lines.append("network: none (single node)")
    for node in machine.nodes:
        lines.extend(describe_node(node))
    return "\n".join(lines) + "\n"


def describe_node(node: "NodeBoard") -> List[str]:
    """One node's address map, queue plan, handlers and firmware."""
    lines = [f"node {node.node_id}:"]
    lines.append("  address map:")
    for region in node.address_map.regions():
        owner = getattr(region.owner, "slave_name", None) or (
            "(claimed)" if region.owner is None else str(region.owner))
        lines.append(
            f"    [{region.base:#010x}, {region.end:#010x}) "
            f"{region.mode.value:8s} {region.name:24s} -> {owner}"
        )
    ctrl = node.ctrl
    lines.append("  tx queues:")
    for q in ctrl.tx_queues:
        lines.append(
            f"    tx{q.index}: bank {'a' if q.bank == 0 else 's'} "
            f"base {q.base:#06x} depth {q.depth} prio {q.priority} "
            f"{'raw-ok ' if q.allow_raw else ''}"
            f"{'owned:' + str(q.owner_pid) if q.owner_pid else ''}"
            f"{'' if q.enabled else ' SHUTDOWN'}"
        )
    lines.append("  rx queues (slot: logical):")
    for q in ctrl.rx_queues:
        lines.append(
            f"    rx{q.index}: logical {q.logical_id} bank "
            f"{'a' if q.bank == 0 else 's'} depth {q.depth} "
            f"policy {q.full_policy.value}"
            f"{' irq' if q.interrupt_on_arrival else ''}"
        )
    resident = ctrl.rx_cache.resident()
    spilled = ctrl.rx_cache.n_logical - len(resident)
    lines.append(
        f"  rx namespace: {ctrl.rx_cache.n_logical} logical, "
        f"{len(resident)} resident, {spilled} miss-serviced"
    )
    lines.append("  aBIU handlers:")
    for region, handler in node.niu.abiu._handlers:
        lines.append(
            f"    [{region.base:#010x}, {region.end:#010x}) "
            f"{handler.handler_name}"
        )
    lines.append("  firmware events: "
                 + ", ".join(sorted(node.sp._handlers)) )
    msg_handlers = node.sp.state.get("msg_handlers", {})
    if msg_handlers:
        lines.append("  firmware message types: "
                     + ", ".join(str(t) for t in sorted(msg_handlers)))
    cls = node.niu.cls
    lines.append(
        f"  clsSRAM: {cls.n_lines} lines over "
        f"[{cls.cover_base:#x}, {cls.cover_end:#x})"
    )
    return lines
