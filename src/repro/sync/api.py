"""Scalable synchronization primitives over combining hardware.

The library half of in-network computing: every primitive here is built
from two tiny verbs a :class:`SyncGroup` provides —

* :meth:`SyncGroup.cell_op` — fetch-and-op on a named 64-bit cell
  (add / min / max / or / swap / compare-and-swap);
* :meth:`SyncGroup.tree_op` — a full-group combining collective
  (barrier when the value is ignored, allreduce when it is not).

Each verb has two transports selected per group:

* ``mode="switch"`` — in-network computing.  ``cell_op`` requests ride
  sync-tagged packets that *combine at the switches* on their way to
  the cell's home switch (Ultracomputer-style fetch-and-add combining);
  ``tree_op`` runs over a planned SHARP-style reduction tree
  (:mod:`repro.sync.plan`), one packet per tree edge per direction.
* ``mode="endpoint"`` — the pure-endpoint fallback: the same wire
  verbs served by a single home sP (:mod:`repro.sync.firmware`).  This
  is both the degraded path for machines without a network and the
  hot-spot baseline ``benchmarks/bench_sync.py`` measures against.

On top of the verbs: :class:`Counter`, three locks of increasing
sophistication (:class:`TasLock`, :class:`TicketLock` — fetch-and-add
tickets, FIFO fair — and :class:`McsLock` — a queue lock whose handoff
is two point-to-point messages), :class:`Barrier` in counting /
software-tree / in-switch variants, and a :class:`WorkDeque` for
work stealing.

Concurrency model: one sync client per node — the per-node port
(aP tx queue ``SYNC_TX_INDEX``, rx logical ``SYNC_RX_LOGICAL``) is a
polled Basic-message endpoint and is not reentrant, exactly like the
MiniMPI port convention.  All methods are generator fragments run on
the calling aP (``yield from``), so every operation pays real bus,
queue and (where applicable) network cost.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, List, Optional, Tuple

from repro.common.errors import ConfigError, ProgramError
from repro.firmware.proto import (
    DEQUE_POP,
    DEQUE_PUSH,
    DEQUE_STEAL,
    MSG_SYNC_REP,
    MSG_SYNC_TREE_REP,
    pack_sync_cbar,
    pack_sync_deque,
    pack_sync_inject,
    pack_sync_req,
    unpack_sync_rep,
    unpack_sync_tree_rep,
)
from repro.mp.basic import BasicPort
from repro.net.combine import (
    MODE_FETCH,
    MODE_TREE,
    OP_ADD,
    OP_CSWAP,
    OP_OR,
    OP_SWAP,
    PHASE_REQ,
    SyncTag,
)
from repro.niu.niu import SP_SERVICE_QUEUE, needs_raw_addressing, vdst_for
from repro.sync.firmware import ensure_sync_firmware
from repro.sync.plan import SwitchTreePlan, plan_group

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import StarTVoyager
    from repro.node.ap import ApApi
    from repro.sim.events import Event

#: the sync library's queue convention (MiniMPI owns tx/rx 2).
SYNC_TX_INDEX = 3
SYNC_RX_LOGICAL = 3

#: aP-to-aP message bytes on the sync port (user type space, >= 64).
BAR_UP = 65  #: software-tree barrier: subtree complete
BAR_DOWN = 66  #: software-tree barrier: release going down
LOCK_LINK = 67  #: MCS: successor announces itself to its predecessor
LOCK_GRANT = 68  #: MCS: predecessor hands the lock over


class _NodeClient:
    """One node's sync endpoint: the port, its demux inbox, request ids."""

    __slots__ = ("node_id", "port", "inbox", "req")

    def __init__(self, board, node_id: int) -> None:
        self.node_id = node_id
        self.port = BasicPort(board, SYNC_TX_INDEX, SYNC_RX_LOGICAL)
        #: arrived-but-unclaimed messages (out-of-order replies, early
        #: LINKs, sibling barrier traffic): (src, payload).
        self.inbox: List[Tuple[int, bytes]] = []
        self.req = 0


class SyncFabric:
    """Machine-wide context for sync groups (one per machine).

    Owns group-id allocation, the per-node client ports, and the hook
    into the combine sanitizer when one is armed.  Obtain via
    :meth:`repro.core.machine.StarTVoyager.sync_fabric`.
    """

    __slots__ = ("machine", "engine", "stats", "wide", "sanitizer",
                 "groups", "_next_gid", "_clients")

    def __init__(self, machine: "StarTVoyager") -> None:
        self.machine = machine
        self.engine = machine.engine
        self.stats = machine.stats
        self.wide = needs_raw_addressing(machine.config.n_nodes)
        sanitizer = None
        layer = machine.sanitizers
        if layer is not None:
            try:
                sanitizer = layer.checker("combine")
            except ConfigError:
                sanitizer = None
        self.sanitizer = sanitizer
        self.groups: Dict[int, "SyncGroup"] = {}
        self._next_gid = 1
        self._clients: Dict[int, _NodeClient] = {}
        ensure_sync_firmware(machine)

    def client(self, node: int) -> _NodeClient:
        """The (lazily created) sync endpoint of one node."""
        cl = self._clients.get(node)
        if cl is None:
            cl = self._clients[node] = _NodeClient(
                self.machine.node(node), node)
        return cl

    def group(self, members, mode: str = "switch") -> "SyncGroup":
        """Create a sync group over ``members`` (node ids).

        ``mode="switch"`` plans a combining tree through the fabric
        (degrading to endpoint service when the machine has no
        network); ``mode="endpoint"`` forces the sP-served path.
        """
        if mode not in ("switch", "endpoint"):
            raise ConfigError(f"unknown sync mode {mode!r}")
        gid = self._next_gid
        self._next_gid += 1
        grp = SyncGroup(self, gid, members, mode)
        self.groups[gid] = grp
        return grp


class SyncGroup:
    """One reduction group: a member set plus its transport."""

    __slots__ = ("fabric", "gid", "members", "mode", "switch", "plan",
                 "_rank", "_seq")

    def __init__(self, fabric: SyncFabric, gid: int, members,
                 mode: str) -> None:
        self.fabric = fabric
        self.gid = gid
        self.members: Tuple[int, ...] = tuple(sorted(set(members)))
        if not self.members:
            raise ConfigError("a sync group needs at least one member")
        machine = fabric.machine
        net = machine.network
        self.switch = mode == "switch" and net is not None
        self.mode = "switch" if self.switch else "endpoint"
        self.plan: Optional[SwitchTreePlan] = None
        if self.switch:
            self.plan = plan_group(net.topology, gid, self.members,
                                   seed=machine.config.seed)
            for key, prog in self.plan.programs.items():
                stage = net.switches[key].ensure_combiner(
                    stats=machine.stats, sanitizer=fabric.sanitizer)
                stage.load(prog)
        self._rank = {m: i for i, m in enumerate(self.members)}
        #: per-member collective sequence counters (must stay aligned:
        #: members call collectives in the same order, as in MPI).
        self._seq: Dict[int, int] = {}

    def rank_of(self, node: int) -> int:
        """The member's dense rank inside the group."""
        try:
            return self._rank[node]
        except KeyError:
            raise ProgramError(
                f"node {node} is not a member of sync group {self.gid}"
            ) from None

    def home(self, cell: int) -> int:
        """Endpoint mode: the member whose sP serves ``cell``."""
        return self.members[cell % len(self.members)]

    # -- transport helpers -------------------------------------------------

    def _to_sp(self, api: "ApApi", cl: _NodeClient, dst_node: int,
               payload: bytes) -> Generator["Event", None, None]:
        """One message into ``dst_node``'s sP service queue, wide-safe."""
        if self.fabric.wide:
            yield from cl.port.send(api, dst_node, payload, raw=True,
                                    dst_queue=SP_SERVICE_QUEUE)
        else:
            yield from cl.port.send(
                api, vdst_for(dst_node, SP_SERVICE_QUEUE), payload)

    def _to_member(self, api: "ApApi", cl: _NodeClient, member: int,
                   payload: bytes) -> Generator["Event", None, None]:
        """One aP-to-aP message onto a member's sync rx queue."""
        if self.fabric.wide:
            yield from cl.port.send(api, member, payload, raw=True,
                                    dst_queue=SYNC_RX_LOGICAL)
        else:
            yield from cl.port.send(
                api, vdst_for(member, SYNC_RX_LOGICAL), payload)

    def _await_rep(self, api: "ApApi", cl: _NodeClient, req: int
                   ) -> Generator["Event", None, Tuple[bool, int]]:
        """Wait for the ``MSG_SYNC_REP`` matching request id ``req``."""
        for i, (_src, p) in enumerate(cl.inbox):
            if p[0] == MSG_SYNC_REP:
                rtok, ok, value = unpack_sync_rep(p)
                if rtok == req:
                    del cl.inbox[i]
                    return ok, value
        while True:
            src, p = yield from cl.port.recv(api)
            if p[0] == MSG_SYNC_REP:
                rtok, ok, value = unpack_sync_rep(p)
                if rtok == req:
                    return ok, value
            cl.inbox.append((src, p))

    def _await_tree(self, api: "ApApi", cl: _NodeClient, seq: int
                    ) -> Generator["Event", None, int]:
        """Wait for this group's ``MSG_SYNC_TREE_REP`` carrying ``seq``."""
        for i, (_src, p) in enumerate(cl.inbox):
            if p[0] == MSG_SYNC_TREE_REP:
                g, s, value = unpack_sync_tree_rep(p)
                if g == self.gid and s == seq:
                    del cl.inbox[i]
                    return value
        while True:
            src, p = yield from cl.port.recv(api)
            if p[0] == MSG_SYNC_TREE_REP:
                g, s, value = unpack_sync_tree_rep(p)
                if g == self.gid and s == seq:
                    return value
            cl.inbox.append((src, p))

    def _await_user(self, api: "ApApi", cl: _NodeClient, kind: int,
                    cell: int) -> Generator["Event", None, int]:
        """Wait for one user-space sync message; returns its origin."""
        want = bytes([kind]) + self.gid.to_bytes(4, "big") \
            + cell.to_bytes(4, "big")
        for i, (_src, p) in enumerate(cl.inbox):
            if p.startswith(want):
                del cl.inbox[i]
                return int.from_bytes(p[9:13], "big")
        while True:
            src, p = yield from cl.port.recv(api)
            if p.startswith(want):
                return int.from_bytes(p[9:13], "big")
            cl.inbox.append((src, p))

    def _user_msg(self, kind: int, cell: int, origin: int) -> bytes:
        return (bytes([kind]) + self.gid.to_bytes(4, "big")
                + cell.to_bytes(4, "big") + origin.to_bytes(4, "big"))

    # -- the two verbs -----------------------------------------------------

    def cell_op(self, api: "ApApi", node: int, cell: int, op: int,
                value: int, aux: int = 0
                ) -> Generator["Event", None, int]:
        """Fetch-and-op on one cell; returns the pre-op value.

        Serializable: the returned values are exactly those of *some*
        serial order of the concurrent requests (in switch mode the
        order fixed by combining; at an sP, arrival order).
        """
        self.rank_of(node)
        cl = self.fabric.client(node)
        cl.req += 1
        req = cl.req
        if self.switch:
            tag = SyncTag(PHASE_REQ, MODE_FETCH, self.gid, op, value=value,
                          cell=cell, aux=aux, token=req, origin=node,
                          reply_queue=SYNC_RX_LOGICAL)
            yield from self._to_sp(api, cl, node,
                                   pack_sync_inject(tag.pack()))
        else:
            yield from self._to_sp(
                api, cl, self.home(cell),
                pack_sync_req(self.gid, cell, op, node, req,
                              SYNC_RX_LOGICAL, value, aux))
        _ok, old = yield from self._await_rep(api, cl, req)
        return old

    def tree_op(self, api: "ApApi", node: int, op: int, value: int = 0
                ) -> Generator["Event", None, int]:
        """Full-group combining collective; returns the folded value.

        Every member must call once per collective, in the same order
        (the MPI collective-call discipline).  Switch mode combines in
        the planned reduction tree; endpoint mode serializes at the
        group's home sP.
        """
        self.rank_of(node)
        cl = self.fabric.client(node)
        seq = self._seq.get(node, 0) + 1
        self._seq[node] = seq
        if self.switch:
            tag = SyncTag(PHASE_REQ, MODE_TREE, self.gid, op, value=value,
                          seq=seq, origin=node,
                          reply_queue=SYNC_RX_LOGICAL)
            yield from self._to_sp(api, cl, node,
                                   pack_sync_inject(tag.pack()))
        else:
            yield from self._to_sp(
                api, cl, self.members[0],
                pack_sync_cbar(self.gid, seq, node, len(self.members),
                               SYNC_RX_LOGICAL, op, value))
        result = yield from self._await_tree(api, cl, seq)
        return result

    # -- primitive factories ----------------------------------------------

    def counter(self, cell: int = 0) -> "Counter":
        return Counter(self, cell)

    def barrier(self, variant: str = "switch") -> "Barrier":
        return Barrier(self, variant)

    def tas_lock(self, cell: int = 0) -> "TasLock":
        return TasLock(self, cell)

    def ticket_lock(self, cell: int = 0) -> "TicketLock":
        return TicketLock(self, cell)

    def mcs_lock(self, cell: int = 0) -> "McsLock":
        return McsLock(self, cell)

    def deque(self, owner_rank: int = 0) -> "WorkDeque":
        return WorkDeque(self, owner_rank)


class Counter:
    """A shared fetch-and-add counter on one cell."""

    __slots__ = ("group", "cell")

    def __init__(self, group: SyncGroup, cell: int) -> None:
        self.group = group
        self.cell = cell

    def add(self, api: "ApApi", node: int, value: int = 1
            ) -> Generator["Event", None, int]:
        """Atomic add; returns the pre-add value."""
        old = yield from self.group.cell_op(api, node, self.cell, OP_ADD,
                                            value)
        return old

    def read(self, api: "ApApi", node: int
             ) -> Generator["Event", None, int]:
        """Current value (a fetch-and-add of zero, so reads combine too)."""
        old = yield from self.group.cell_op(api, node, self.cell, OP_ADD, 0)
        return old


class Barrier:
    """Group barrier in three variants.

    * ``"counting"`` — every member messages the home sP, which counts
      arrivals and unicasts releases: O(N) work at one node, the
      textbook hot spot.
    * ``"tree"`` — a software combining tree over aP-to-aP messages:
      O(log N) depth, but every combine is an endpoint hop.
    * ``"switch"`` — the in-switch reduction tree: combining happens in
      the fabric, one packet per tree edge (endpoint service when the
      group has no switch plan).
    """

    __slots__ = ("group", "variant", "_seq")

    VARIANTS = ("counting", "tree", "switch")

    def __init__(self, group: SyncGroup, variant: str) -> None:
        if variant not in self.VARIANTS:
            raise ConfigError(f"unknown barrier variant {variant!r}")
        self.group = group
        self.variant = variant
        self._seq: Dict[int, int] = {}

    def wait(self, api: "ApApi", node: int
             ) -> Generator["Event", None, None]:
        g = self.group
        if len(g.members) == 1:
            return
        if self.variant == "tree":
            yield from self._tree_wait(api, node)
            return
        if self.variant == "counting":
            # force the central sP server even on a switch-mode group
            cl = g.fabric.client(node)
            seq = self._seq.get(node, 0) + 1
            self._seq[node] = seq
            # barrier sequences must not collide with tree_op sequences
            # at the home sP: offset them into their own space
            yield from g._to_sp(
                api, cl, g.members[0],
                pack_sync_cbar(g.gid, 0x40000000 + seq, node,
                               len(g.members), SYNC_RX_LOGICAL, OP_ADD, 0))
            yield from g._await_tree(api, cl, 0x40000000 + seq)
            return
        yield from g.tree_op(api, node, OP_ADD, 0)

    def _tree_wait(self, api: "ApApi", node: int
                   ) -> Generator["Event", None, None]:
        """Binary software combining tree over group ranks."""
        g = self.group
        cl = g.fabric.client(node)
        rank = g.rank_of(node)
        n = len(g.members)
        seq = self._seq.get(node, 0) + 1
        self._seq[node] = seq
        children = [c for c in (2 * rank + 1, 2 * rank + 2) if c < n]
        for _ in children:
            yield from g._await_user(api, cl, BAR_UP, seq)
        if rank > 0:
            parent = g.members[(rank - 1) // 2]
            yield from g._to_member(api, cl, parent,
                                    g._user_msg(BAR_UP, seq, node))
            yield from g._await_user(api, cl, BAR_DOWN, seq)
        for c in children:
            yield from g._to_member(api, cl, g.members[c],
                                    g._user_msg(BAR_DOWN, seq, node))


class TasLock:
    """Test-and-set spinlock: the simplest — and under contention the
    worst — primitive; every retry is a full round trip."""

    __slots__ = ("group", "cell")

    def __init__(self, group: SyncGroup, cell: int) -> None:
        self.group = group
        self.cell = cell

    def acquire(self, api: "ApApi", node: int
                ) -> Generator["Event", None, int]:
        """Spin (with exponential backoff) until the set wins.  Returns
        the number of failed attempts (contention diagnostics)."""
        tries = 0
        backoff = 60
        while True:
            old = yield from self.group.cell_op(api, node, self.cell,
                                                OP_OR, 1)
            if old == 0:
                return tries
            tries += 1
            yield from api.compute(backoff)
            backoff = min(backoff * 2, 2000)

    def release(self, api: "ApApi", node: int
                ) -> Generator["Event", None, None]:
        yield from self.group.cell_op(api, node, self.cell, OP_SWAP, 0)


class TicketLock:
    """Fetch-and-add ticket lock: FIFO fair by construction.

    Uses two cells: ``cell`` holds the next ticket, ``cell + 1`` the
    now-serving number.  In switch mode both the ticket grab and the
    now-serving poll (a fetch-and-add of zero) *combine*, so a storm of
    spinners costs the home one packet per combining window instead of
    one per spinner — the Ultracomputer polling argument.
    """

    __slots__ = ("group", "cell")

    def __init__(self, group: SyncGroup, cell: int) -> None:
        self.group = group
        self.cell = cell

    def acquire(self, api: "ApApi", node: int
                ) -> Generator["Event", None, int]:
        """Take a ticket, spin until served; returns the ticket."""
        ticket = yield from self.group.cell_op(api, node, self.cell,
                                               OP_ADD, 1)
        while True:
            serving = yield from self.group.cell_op(api, node, self.cell + 1,
                                                    OP_ADD, 0)
            if serving == ticket:
                return ticket
            yield from api.compute(120)

    def release(self, api: "ApApi", node: int
                ) -> Generator["Event", None, None]:
        yield from self.group.cell_op(api, node, self.cell + 1, OP_ADD, 1)


class McsLock:
    """MCS-style queue lock: constant traffic per handoff.

    The tail cell holds the last waiter's node id + 1 (0 = free).
    Acquire swaps itself in; a contended acquirer announces itself to
    its predecessor (``LOCK_LINK``) and blocks for ``LOCK_GRANT``.
    Release compare-and-swaps the tail back to 0 — the one place the
    non-combining CSWAP is required: a plain swap would race a
    concurrent enqueuer and strand it.
    """

    __slots__ = ("group", "cell")

    def __init__(self, group: SyncGroup, cell: int) -> None:
        self.group = group
        self.cell = cell

    def acquire(self, api: "ApApi", node: int
                ) -> Generator["Event", None, None]:
        g = self.group
        prev = yield from g.cell_op(api, node, self.cell, OP_SWAP, node + 1)
        if prev == 0:
            return
        cl = g.fabric.client(node)
        yield from g._to_member(api, cl, prev - 1,
                                g._user_msg(LOCK_LINK, self.cell, node))
        yield from g._await_user(api, cl, LOCK_GRANT, self.cell)

    def release(self, api: "ApApi", node: int
                ) -> Generator["Event", None, None]:
        g = self.group
        old = yield from g.cell_op(api, node, self.cell, OP_CSWAP, 0,
                                   aux=node + 1)
        if old == node + 1:
            return  # no successor; the CSWAP freed the lock
        cl = g.fabric.client(node)
        successor = yield from g._await_user(api, cl, LOCK_LINK, self.cell)
        yield from g._to_member(api, cl, successor,
                                g._user_msg(LOCK_GRANT, self.cell, node))


class WorkDeque:
    """A work-stealing deque owned by one member's sP.

    The owner pushes/pops at the tail (LIFO — locality), thieves steal
    from the head (FIFO — oldest, largest work first).  One deque per
    (group, owner).
    """

    __slots__ = ("group", "owner")

    def __init__(self, group: SyncGroup, owner_rank: int) -> None:
        self.group = group
        self.owner = group.members[owner_rank]

    def _op(self, api: "ApApi", node: int, verb: int, value: int
            ) -> Generator["Event", None, Tuple[bool, int]]:
        g = self.group
        cl = g.fabric.client(node)
        cl.req += 1
        req = cl.req
        yield from g._to_sp(
            api, cl, self.owner,
            pack_sync_deque(g.gid, verb, node, req, SYNC_RX_LOGICAL, value))
        ok, got = yield from g._await_rep(api, cl, req)
        return ok, got

    def push(self, api: "ApApi", node: int, value: int
             ) -> Generator["Event", None, int]:
        """Append one work item; returns the deque depth after the push."""
        _ok, depth = yield from self._op(api, node, DEQUE_PUSH, value)
        return depth

    def pop(self, api: "ApApi", node: int
            ) -> Generator["Event", None, Optional[int]]:
        """Owner-side LIFO pop; None when empty."""
        ok, got = yield from self._op(api, node, DEQUE_POP, 0)
        return got if ok else None

    def steal(self, api: "ApApi", node: int
              ) -> Generator["Event", None, Optional[int]]:
        """Thief-side FIFO steal; None when empty."""
        ok, got = yield from self._op(api, node, DEQUE_STEAL, 0)
        return got if ok else None


__all__ = [
    "SYNC_RX_LOGICAL",
    "SYNC_TX_INDEX",
    "Barrier",
    "Counter",
    "McsLock",
    "SyncFabric",
    "SyncGroup",
    "TasLock",
    "TicketLock",
    "WorkDeque",
]
