"""Planning SHARP-style reduction trees onto the fat tree.

A sync group's combining tree is a *physical* subtree of the folded
butterfly: every member's leaf switch, the ancestors up to one chosen
root switch, and the links between them.  The planner picks the root and
emits one :class:`~repro.net.combine.GroupProgram` per participating
switch — which ports contributions arrive on, which up port the combined
packet leaves by, and (implicitly, the same port set) where replies fan
back out.

Root selection mirrors route computation
(:mod:`repro.net.topology`): the root must sit at the lowest level whose
switches cover every member, i.e. level ``m + 1`` where ``m`` is the
highest leaf-digit position on which two members differ.  At that level
``d^(m)`` parallel copies cover the same leaves; the planner picks the
copy-selector digits by a seeded hash of the group id so concurrent
groups spread over the fabric's redundant switches instead of piling
onto copy 0 (the same load-spreading argument as the route hash).

The plan is pure data — nothing here touches a live machine.  The
fabric side (:class:`repro.sync.api.SyncFabric`) loads the programs into
switch combining stages; the tests validate plans directly against the
topology's wiring.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.common.errors import ConfigError
from repro.net.combine import GroupProgram
from repro.net.topology import FatTreeTopology, _digits, _undigits


def _plan_digit(seed: int, gid: int, pos: int, d: int) -> int:
    """Seeded copy-selector digit (same avalanche mix as route spread)."""
    h = (gid * 0x9E3779B1 ^ pos * 0x85EBCA77
         ^ (seed + 1) * 0xC2B2AE3D) & 0xFFFFFFFF
    h ^= h >> 13
    h = (h * 0x165667B1) & 0xFFFFFFFF
    h ^= h >> 16
    return h % d


class SwitchTreePlan:
    """One group's reduction tree: the root and per-switch programs."""

    __slots__ = ("group", "members", "root", "programs")

    def __init__(self, group: int, members: Tuple[int, ...],
                 root: Tuple[int, int],
                 programs: Dict[Tuple[int, int], GroupProgram]) -> None:
        self.group = group
        self.members = members
        #: ``(level, index)`` of the root switch (the combining apex; in
        #: fetch mode also where the group's cells live).
        self.root = root
        self.programs = programs

    def describe(self) -> Dict[str, object]:
        """Plan summary (diagnostics / tests)."""
        return {
            "group": self.group,
            "members": list(self.members),
            "root": self.root,
            "switches": sorted(self.programs),
        }


def plan_group(topo: FatTreeTopology, group: int, members: Iterable[int],
               seed: int = 0) -> SwitchTreePlan:
    """Map one reduction group onto the fat tree.

    ``members`` are node ids; duplicates collapse and order is
    irrelevant (the plan is canonical for a member *set*).  Works for
    any group size >= 1 including non-power-of-two and single-member
    groups — a single member gets a one-switch tree at its leaf switch.
    """
    d = topo.down_degree
    levels = topo.levels
    mlist = sorted(set(members))
    if not mlist:
        raise ConfigError("a sync group needs at least one member")
    for m in mlist:
        if not (0 <= m < topo.n_nodes):
            raise ConfigError(f"group member {m} is not a node "
                              f"(machine has {topo.n_nodes})")
    leaf_digits = {m: _digits(m, d, levels) for m in mlist}
    # root level: one above the highest digit position where members
    # differ (level-r switches cover leaves sharing digits r..levels-1)
    differing = [
        p for p in range(levels)
        if any(leaf_digits[m][p] != leaf_digits[mlist[0]][p] for m in mlist)
    ]
    root_level = (max(differing) + 1) if differing else 1
    # root identity: coverage digits forced by the members, copy-selector
    # digits (positions 0..root_level-2) spread by the seeded hash
    root_digits: List[int] = [0] * (levels - 1)
    sample = leaf_digits[mlist[0]]
    for pos in range(root_level - 1, levels - 1):
        root_digits[pos] = sample[pos + 1]
    for pos in range(root_level - 1):
        root_digits[pos] = _plan_digit(seed, group, pos, d)
    root_index = _undigits(root_digits, d)

    up_ports: Dict[Tuple[int, int], int] = {}
    down_lists: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    for m in mlist:
        ld = leaf_digits[m]
        for level in range(1, root_level + 1):
            digs = list(root_digits)
            for pos in range(level - 1, levels - 1):
                digs[pos] = ld[pos + 1]
            key = (level, _undigits(digs, d))
            if level < root_level:
                # ascending via up-port b rewrites digit level-1 to b;
                # landing on the root's copy means b = root digit
                up_ports[key] = d + root_digits[level - 1]
            if level == 1:
                entry = (ld[0], m)
            else:
                # parent's down port toward a level-(level-1) child is
                # the child's copy digit at position level-2, which the
                # coverage rule pins to the member's leaf digit level-1
                entry = (ld[level - 1], None)
            entries = down_lists.setdefault(key, [])
            if entry not in entries:
                entries.append(entry)

    programs = {
        key: GroupProgram(group, up_ports.get(key), tuple(down))
        for key, down in down_lists.items()
    }
    return SwitchTreePlan(group, tuple(mlist), (root_level, root_index),
                          programs)


def validate_plan(topo: FatTreeTopology, plan: SwitchTreePlan) -> None:
    """Check a plan against the wiring (property tests call this).

    Every non-root switch's up port must physically reach the unique
    switch one level up that also carries a program; every down entry
    must connect to the claimed child switch or member leaf; and walking
    up from every member's leaf switch must terminate at the root.
    """
    root_key = plan.root
    if root_key not in plan.programs:
        raise ConfigError(f"plan root {root_key} has no program")
    if plan.programs[root_key].up_port is not None:
        raise ConfigError("root program has an up port")
    for (level, index), prog in plan.programs.items():
        if (level, index) != root_key:
            if prog.up_port is None:
                raise ConfigError(f"non-root sw{level}.{index} lacks an "
                                  "up port")
            parent = topo.up_target(level, index, prog.up_port
                                    - topo.down_degree)
            if parent not in plan.programs:
                raise ConfigError(f"sw{level}.{index} ascends to "
                                  f"unprogrammed {parent}")
        for port, member in prog.down:
            target = topo.down_target(level, index, port)
            if member is not None:
                if target != ("leaf", member, 0):
                    raise ConfigError(
                        f"sw{level}.{index} port {port} reaches {target}, "
                        f"not member {member}")
            else:
                child = (target[1], target[2])
                if target[0] != "switch" or child not in plan.programs:
                    raise ConfigError(
                        f"sw{level}.{index} port {port} reaches {target}, "
                        "not a programmed child switch")
    for m in plan.members:
        level, index = 1, topo.leaf_switch(m)
        seen = 0
        while (level, index) != root_key:
            prog = plan.programs.get((level, index))
            if prog is None or prog.up_port is None:
                raise ConfigError(f"member {m} cannot ascend past "
                                  f"sw{level}.{index}")
            level, index = topo.up_target(level, index,
                                          prog.up_port - topo.down_degree)
            seen += 1
            if seen > topo.levels:
                raise ConfigError(f"member {m}'s ascent does not terminate")


__all__ = ["SwitchTreePlan", "plan_group", "validate_plan"]
