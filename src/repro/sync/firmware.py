"""sP firmware for the scalable-synchronization library.

Four services, all running on the node's embedded service processor
(the paper's "library functions may also run on the sP" claim, applied
to synchronization):

* **endpoint cells** (``MSG_SYNC_REQ``) — a serialized fetch-and-op
  server for the cells homed at this node.  This is the pure-endpoint
  fallback every primitive in :mod:`repro.sync.api` degrades to when
  the machine has no network or in-switch combining is off; it is also
  the hot-spot baseline the combining fabric is measured against.
* **central collective** (``MSG_SYNC_CBAR``) — the counting barrier /
  serialized allreduce: every member sends one arrival to the group's
  home sP, which folds values as they arrive and unicasts the result
  back out.  Deliberately O(N) at one node — the classic hot spot.
* **leaf inject** (``MSG_SYNC_INJECT``) — the bridge into in-network
  computing: the aP hands a packed :class:`~repro.net.combine.SyncTag`
  to its local sP, which stamps the fabric-facing fields and injects
  the tagged packet through the CTRL's TX path.  The sP is the
  combining tree's *leaf*: switch-resident combining starts one hop
  above it.
* **work deque** (``MSG_SYNC_DEQUE``) — an owner-resident LIFO/FIFO
  deque: the owner pushes and pops at the tail, thieves steal from the
  head, all serialized through the owner's sP (the standard
  work-stealing memory model, minus the CAS loop the serial firmware
  makes unnecessary).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, List, Tuple

from repro.common.errors import FirmwareError
from repro.firmware.base import fw_send, register_msg_handler
from repro.firmware.proto import (
    DEQUE_POP,
    DEQUE_PUSH,
    DEQUE_STEAL,
    MSG_SYNC_CBAR,
    MSG_SYNC_DEQUE,
    MSG_SYNC_INJECT,
    MSG_SYNC_REQ,
    pack_sync_rep,
    pack_sync_tree_rep,
    unpack_sync_cbar,
    unpack_sync_deque,
    unpack_sync_inject,
    unpack_sync_req,
)
from repro.net.combine import OP_CSWAP, apply_op, unpack_tag
from repro.niu.niu import SP_TX_GENERAL, needs_raw_addressing, vdst_for

if TYPE_CHECKING:  # pragma: no cover
    from repro.niu.sp import ServiceProcessor
    from repro.sim.events import Event


class _CentralOp:
    """One in-flight central collective at the home sP."""

    __slots__ = ("waiters", "acc", "have_acc", "op", "want")

    def __init__(self, op: int, want: int) -> None:
        self.waiters: List[Tuple[int, int]] = []
        self.acc = 0
        self.have_acc = False
        self.op = op
        self.want = want


class SyncFwState:
    """Per-node sync firmware state."""

    __slots__ = ("wide", "cells", "central", "deques")

    def __init__(self, n_nodes: int) -> None:
        self.wide = needs_raw_addressing(n_nodes)
        #: endpoint-mode cells homed here: (group, cell) -> value.
        self.cells: Dict[Tuple[int, int], int] = {}
        #: central collectives in flight: (group, seq) -> _CentralOp.
        self.central: Dict[Tuple[int, int], _CentralOp] = {}
        #: work deques owned here, one per group.
        self.deques: Dict[int, List[int]] = {}


def setup_sync(sp: "ServiceProcessor", n_nodes: int) -> None:
    """Install the sync firmware on one node's sP (idempotent)."""
    if "sync" in sp.state:
        return
    sp.state["sync"] = SyncFwState(n_nodes)
    register_msg_handler(sp, MSG_SYNC_REQ, on_sync_req)
    register_msg_handler(sp, MSG_SYNC_CBAR, on_sync_cbar)
    register_msg_handler(sp, MSG_SYNC_INJECT, on_sync_inject)
    register_msg_handler(sp, MSG_SYNC_DEQUE, on_sync_deque)


def ensure_sync_firmware(machine) -> None:
    """Install the sync firmware cluster-wide (idempotent)."""
    for node in machine.nodes:
        setup_sync(node.sp, machine.config.n_nodes)


def _state(sp: "ServiceProcessor") -> SyncFwState:
    st = sp.state.get("sync")
    if st is None:
        raise FirmwareError(f"{sp.name}: sync firmware not installed")
    return st


def _sync_send(sp: "ServiceProcessor", st: SyncFwState, node: int,
               queue: int, payload: bytes
               ) -> Generator["Event", None, None]:
    """One firmware message to (node, logical queue), wide-safe."""
    if st.wide:
        yield from fw_send(sp, node, payload, queue=SP_TX_GENERAL,
                           raw_queue=queue)
    else:
        yield from fw_send(sp, vdst_for(node, queue), payload,
                           queue=SP_TX_GENERAL)


# ----------------------------------------------------------------------
# handlers
# ----------------------------------------------------------------------


def on_sync_req(sp: "ServiceProcessor", src: int, payload: bytes
                ) -> Generator["Event", None, None]:
    """``MSG_SYNC_REQ``: serialized endpoint fetch-and-op."""
    yield sp.compute(sp.fw.sync_cell_insns)
    st = _state(sp)
    group, cell, op, origin, req, reply_queue, value, aux = \
        unpack_sync_req(payload)
    key = (group, cell)
    old = st.cells.get(key, 0)
    if op == OP_CSWAP:
        if old == aux:
            st.cells[key] = value
    else:
        st.cells[key] = apply_op(op, old, value)
    sp.stats.counter(f"{sp.name}.sync_cell_ops").incr()
    yield from _sync_send(sp, st, origin, reply_queue,
                          pack_sync_rep(req, old))


def on_sync_cbar(sp: "ServiceProcessor", src: int, payload: bytes
                 ) -> Generator["Event", None, None]:
    """``MSG_SYNC_CBAR``: central counting barrier / serial allreduce."""
    yield sp.compute(sp.fw.sync_barrier_insns)
    st = _state(sp)
    group, seq, origin, n, reply_queue, op, value = unpack_sync_cbar(payload)
    key = (group, seq)
    pend = st.central.get(key)
    if pend is None:
        pend = st.central[key] = _CentralOp(op, n)
    if pend.have_acc:
        pend.acc = apply_op(op, pend.acc, value)
    else:
        pend.acc = value
        pend.have_acc = True
    pend.waiters.append((origin, reply_queue))
    if len(pend.waiters) < pend.want:
        return
    # everyone arrived: release serially (the hot-spot cost is the point)
    del st.central[key]
    sp.stats.counter(f"{sp.name}.sync_central_ops").incr()
    rep = pack_sync_tree_rep(group, seq, pend.acc)
    for member, rq in pend.waiters:
        yield from _sync_send(sp, st, member, rq, rep)


def on_sync_inject(sp: "ServiceProcessor", src: int, payload: bytes
                   ) -> Generator["Event", None, None]:
    """``MSG_SYNC_INJECT``: leaf of the combining tree — into the fabric."""
    yield sp.compute(sp.fw.sync_inject_insns)
    tag = unpack_tag(unpack_sync_inject(payload))
    tag.origin = sp.node_id
    sp.stats.counter(f"{sp.name}.sync_injects").incr()
    yield from sp.ctrl.emit_sync(tag)


def on_sync_deque(sp: "ServiceProcessor", src: int, payload: bytes
                  ) -> Generator["Event", None, None]:
    """``MSG_SYNC_DEQUE``: owner-resident work-stealing deque."""
    yield sp.compute(sp.fw.sync_deque_insns)
    st = _state(sp)
    group, verb, origin, req, reply_queue, value = unpack_sync_deque(payload)
    dq = st.deques.setdefault(group, [])
    if verb == DEQUE_PUSH:
        dq.append(value)
        sp.stats.counter(f"{sp.name}.deque_pushes").incr()
        yield from _sync_send(sp, st, origin, reply_queue,
                              pack_sync_rep(req, len(dq)))
        return
    if verb == DEQUE_POP:
        ok = bool(dq)
        got = dq.pop() if ok else 0
    elif verb == DEQUE_STEAL:
        ok = bool(dq)
        got = dq.pop(0) if ok else 0
        if ok:
            sp.stats.counter(f"{sp.name}.deque_steals").incr()
    else:
        raise FirmwareError(f"{sp.name}: unknown deque verb {verb}")
    yield from _sync_send(sp, st, origin, reply_queue,
                          pack_sync_rep(req, got, ok=ok))


__all__ = [
    "SyncFwState",
    "ensure_sync_firmware",
    "setup_sync",
]
