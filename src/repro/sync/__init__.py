"""``repro.sync`` — in-network computing and scalable synchronization.

Switch-resident combining (:mod:`repro.net.combine`) planned over the
fat tree (:mod:`repro.sync.plan`), served at the endpoints by sP
firmware (:mod:`repro.sync.firmware`), and exposed to programs as a
small library of scalable primitives (:mod:`repro.sync.api`):
counters, barriers, locks and a work-stealing deque, each with both an
in-switch transport and a pure-endpoint fallback.
"""

from repro.net.combine import (
    OP_ADD,
    OP_CSWAP,
    OP_MAX,
    OP_MIN,
    OP_OR,
    OP_SWAP,
)
from repro.sync.api import (
    SYNC_RX_LOGICAL,
    SYNC_TX_INDEX,
    Barrier,
    Counter,
    McsLock,
    SyncFabric,
    SyncGroup,
    TasLock,
    TicketLock,
    WorkDeque,
)
from repro.sync.plan import SwitchTreePlan, plan_group, validate_plan

__all__ = [
    "OP_ADD",
    "OP_CSWAP",
    "OP_MAX",
    "OP_MIN",
    "OP_OR",
    "OP_SWAP",
    "SYNC_RX_LOGICAL",
    "SYNC_TX_INDEX",
    "Barrier",
    "Counter",
    "McsLock",
    "SwitchTreePlan",
    "SyncFabric",
    "SyncGroup",
    "TasLock",
    "TicketLock",
    "WorkDeque",
    "plan_group",
    "validate_plan",
]
