"""User-level S-COMA shared memory.

An S-COMA region is a span of the clsSRAM-covered DRAM window shared
coherently across the cluster: the same local addresses on every node
name the same global lines, each line has a home node, and local DRAM
frames act as an L3 cache kept coherent by the firmware directory
protocol (:mod:`repro.firmware.scoma`).

Programs access the region with plain cached loads and stores — the
whole mechanism is invisible except for timing.  This module provides
region setup (home assignment + initial data) and address helpers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.common.errors import ProgramError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import StarTVoyager
    from repro.node.ap import ApApi


class ScomaRegion:
    """A shared, coherent window over the nodes' S-COMA DRAM frames."""

    def __init__(self, machine: "StarTVoyager", n_lines: Optional[int] = None
                 ) -> None:
        self.machine = machine
        # any local node board works: the window layout is identical on
        # every node (a sharded sub-machine may not own node 0)
        ref = next(n for n in machine.nodes if n is not None)
        self.line_bytes = machine.config.bus.line_bytes
        self.base = ref.scoma_base
        self._home_of = ref.sp.state["scoma"].home_of
        total_lines = ref.niu.cls.n_lines
        self.n_lines = n_lines if n_lines is not None else total_lines
        if self.n_lines > total_lines:
            raise ProgramError(
                f"region of {self.n_lines} lines exceeds the "
                f"{total_lines}-line S-COMA window"
            )

    @property
    def size(self) -> int:
        """Region size in bytes."""
        return self.n_lines * self.line_bytes

    def addr(self, offset: int) -> int:
        """Node-local address of region offset ``offset`` (same on every
        node — that symmetry is what lets firmware forward lines by
        offset)."""
        if not (0 <= offset < self.size):
            raise ProgramError(f"offset {offset:#x} outside the region")
        return self.base + offset

    def line_of(self, offset: int) -> int:
        """Line index of a region offset."""
        return offset // self.line_bytes

    def home_of(self, offset: int) -> int:
        """Home node of the line containing ``offset``."""
        return self._home_of[self.line_of(offset)]

    # -- initialization -----------------------------------------------------

    def init_data(self, offset: int, data: bytes) -> None:
        """Pre-load region contents at the homes (untimed setup).

        Writes each line's bytes into its *home* frame; other nodes start
        INVALID, exactly the protocol's initial condition.  On a sharded
        sub-machine only locally-owned homes are written — every shard
        calling with the same arguments covers the whole region.
        """
        line_bytes = self.line_bytes
        start_line = self.line_of(offset)
        if offset % line_bytes or len(data) % line_bytes:
            raise ProgramError("init_data must be line-aligned")
        for i in range(len(data) // line_bytes):
            line = start_line + i
            home = self.home_of(line * line_bytes)
            node = self.machine.node(home)
            if node is None:
                continue
            node.dram.poke(self.addr(line * line_bytes),
                           data[i * line_bytes : (i + 1) * line_bytes])

    # -- capacity management --------------------------------------------------

    def evict(self, api: "ApApi", port, offset: int
              ) -> Generator["ApApi", None, None]:
        """Ask firmware to drop this node's copy of the line at
        ``offset`` (reclaiming the L3 frame).  Clean copies leave the
        sharer set; a dirty copy writes back to the home first.  ``port``
        is any send-capable BasicPort on the caller's node.
        """
        from repro.firmware.scoma import pack_evict_req
        from repro.niu.niu import (
            SP_SERVICE_QUEUE,
            needs_raw_addressing,
            vdst_for,
        )

        line_offset = (offset // self.line_bytes) * self.line_bytes
        if needs_raw_addressing(self.machine.config.n_nodes):
            yield from port.send(api, api.node_id,
                                 pack_evict_req(line_offset), raw=True,
                                 dst_queue=SP_SERVICE_QUEUE)
        else:
            yield from port.send(api, vdst_for(api.node_id, SP_SERVICE_QUEUE),
                                 pack_evict_req(line_offset))

    # -- state inspection (testing) ----------------------------------------------

    def cls_state(self, node: int, offset: int) -> int:
        """clsSRAM state of a line at one node."""
        cls = self.machine.node(node).niu.cls
        return cls.state(self.line_of(offset))

    def frame_peek(self, node: int, offset: int, size: int) -> bytes:
        """Untimed coherent read of one node's frame bytes."""
        return self.machine.node(node).peek_coherent(self.addr(offset), size)
