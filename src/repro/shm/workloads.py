"""Shared-memory workloads over the S-COMA directory protocol.

Real programs — not microbenchmarks — that exercise the home-node MSI
directory (:mod:`repro.firmware.scoma`) with plain cached loads and
stores at cluster scale:

* **parallel graph traversal** — level-synchronous BFS over a seeded
  random graph whose distance array lives in one S-COMA region.  Every
  node owns a vertex slice but relaxes edges anywhere, so frontier lines
  migrate, get invalidated, and end up multi-sharer — the full protocol
  mix.  Cross-node write races are benign by construction (two relaxers
  of the same vertex in the same level store the same distance).
* **shared hash table** — striped-lock open-addressing table, one
  bucket per coherence line, guarded by ticket locks from the
  scalable-synchronization fabric (:mod:`repro.sync`).  Buckets bounce
  between writers (migratory sharing); the stripe locks keep slot
  updates atomic.
* **sharing-pattern kernels** — the four classic access patterns
  (private / migratory / producer-consumer / hotspot) measured as
  ns-per-access, the ``bench_shm`` sweep's inner loops.

Every function here is shard-shape agnostic: workers take explicit
(rank, slice) arguments so the shard scenarios in
:mod:`repro.shard.scenarios` can spawn exactly the ranks a sub-machine
owns.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, Generator, List, Sequence

from repro.common.errors import ProgramError

if TYPE_CHECKING:  # pragma: no cover
    from repro.node.ap import ApApi
    from repro.shm.scoma import ScomaRegion
    from repro.sim.events import Event

#: distance value of an unreached vertex (bounds the graph to < 255
#: levels, plenty for the sparse graphs the workloads build).
UNVISITED = 0xFF


# ----------------------------------------------------------------------
# parallel graph traversal (level-synchronous BFS)
# ----------------------------------------------------------------------


def make_graph(n_vertices: int, degree: int, seed: int) -> List[List[int]]:
    """A connected undirected random graph as an adjacency list.

    Deterministic in ``seed``: a Hamiltonian backbone (guarantees
    connectivity, so BFS reaches everything) plus ``degree`` random
    extra edges per vertex.
    """
    rng = random.Random(seed)
    # dicts as insertion-ordered sets keep edge dedup deterministic
    adj: List[Dict[int, None]] = [{} for _ in range(n_vertices)]
    order = list(range(n_vertices))
    rng.shuffle(order)
    for a, b in zip(order, order[1:]):
        adj[a][b] = None
        adj[b][a] = None
    for v in range(n_vertices):
        for _ in range(degree):
            u = rng.randrange(n_vertices)
            if u != v:
                adj[v][u] = None
                adj[u][v] = None
    return [sorted(neighbors) for neighbors in adj]


def sequential_bfs(adj: Sequence[Sequence[int]], root: int = 0) -> List[int]:
    """Reference single-threaded BFS (the parallel result must match)."""
    dist = [UNVISITED] * len(adj)
    dist[root] = 0
    frontier = [root]
    while frontier:
        nxt = []
        for v in frontier:
            for u in adj[v]:
                if dist[u] == UNVISITED:
                    dist[u] = dist[v] + 1
                    nxt.append(u)
        frontier = nxt
    return dist


def init_bfs_region(region: "ScomaRegion", n_vertices: int,
                    root: int = 0) -> None:
    """Lay the distance array (1 byte per vertex) at region offset 0."""
    if n_vertices > region.size:
        raise ProgramError(
            f"{n_vertices} vertices exceed the {region.size}-byte region")
    dist = bytearray([UNVISITED]) * n_vertices
    dist[root] = 0
    line_bytes = region.line_bytes
    padded = len(dist) + (-len(dist)) % line_bytes
    dist.extend([UNVISITED] * (padded - len(dist)))
    region.init_data(0, bytes(dist))


def bfs_worker(api: "ApApi", comm, region: "ScomaRegion",
               adj: Sequence[Sequence[int]], lo: int, hi: int,
               out: Dict) -> Generator["Event", None, None]:
    """One rank of the level-synchronous BFS.

    Each level: scan the owned slice ``[lo, hi)`` for frontier vertices
    (distance == level), relax their edges anywhere in the graph, then
    allreduce the cluster-wide update count — zero updates terminates.
    ``out['levels']`` records how many levels ran (diagnostics).
    """
    level = 0
    while level < len(adj):
        updates = 0
        for v in range(lo, hi):
            d = (yield from api.load(region.addr(v), 1))[0]
            if d != level:
                continue
            for u in adj[v]:
                du = (yield from api.load(region.addr(u), 1))[0]
                if du == UNVISITED:
                    # benign cross-rank race: every relaxer of ``u`` in
                    # this level stores the identical value
                    yield from api.store(region.addr(u),
                                         bytes([level + 1]))
                    updates += 1
        total = yield from comm.allreduce(api, updates, op="sum")
        level += 1
        if total == 0:
            break
    out["levels"] = level


def bfs_verify(api: "ApApi", region: "ScomaRegion",
               expected: Sequence[int], out: Dict
               ) -> Generator["Event", None, None]:
    """Coherently read the distance array and diff it against the
    sequential reference (run on one rank after the BFS drains)."""
    bad: List[int] = []
    for v, want in enumerate(expected):
        got = (yield from api.load(region.addr(v), 1))[0]
        if got != want:
            bad.append(v)
    out["bfs_ok"] = not bad
    out["bfs_bad_vertices"] = bad[:8]


def vertex_slices(n_vertices: int, n_ranks: int) -> List[range]:
    """Contiguous per-rank vertex slices (remainder spread left-first)."""
    base, extra = divmod(n_vertices, n_ranks)
    slices, start = [], 0
    for rank in range(n_ranks):
        size = base + (1 if rank < extra else 0)
        slices.append(range(start, start + size))
        start += size
    return slices


# ----------------------------------------------------------------------
# shared hash table (striped ticket locks, open addressing)
# ----------------------------------------------------------------------

#: bucket layout: one coherence line = SLOTS slots of (key u32, val u32);
#: key 0 marks an empty slot.
SLOT_BYTES = 8


class SharedHashTable:
    """An open-addressing hash table in an S-COMA region.

    One bucket per coherence line (so bucket contention *is* line
    contention), ``stripes`` ticket locks guarding bucket groups, linear
    probing across buckets on overflow.  Built cooperatively: every rank
    constructs the same descriptor; lock cells live in the sync fabric's
    cell space, the buckets in the shared region.
    """

    def __init__(self, region: "ScomaRegion", n_buckets: int,
                 locks: Sequence, base_offset: int = 0) -> None:
        line_bytes = region.line_bytes
        if base_offset % line_bytes:
            raise ProgramError("hash table must start line-aligned")
        if base_offset + n_buckets * line_bytes > region.size:
            raise ProgramError("hash table exceeds the region")
        self.region = region
        self.n_buckets = n_buckets
        self.base_offset = base_offset
        self.locks = list(locks)
        self.slots_per_bucket = line_bytes // SLOT_BYTES

    def _bucket_of(self, key: int) -> int:
        # multiplicative hashing; keys are small sequential ints
        return (key * 2654435761 & 0xFFFFFFFF) % self.n_buckets

    def _stripe(self, bucket: int):
        return self.locks[bucket % len(self.locks)]

    def _slot_addr(self, bucket: int, slot: int) -> int:
        return self.region.addr(self.base_offset
                                + bucket * self.region.line_bytes
                                + slot * SLOT_BYTES)

    def insert(self, api: "ApApi", rank: int, key: int, value: int
               ) -> Generator["Event", None, bool]:
        """Insert (or overwrite) under the bucket stripe's ticket lock.

        Returns False when every probed bucket is full (the workloads
        size the table so this does not happen; the return value keeps
        the failure observable instead of silent).
        """
        if key == 0:
            raise ProgramError("key 0 is the empty-slot marker")
        for probe in range(self.n_buckets):
            bucket = (self._bucket_of(key) + probe) % self.n_buckets
            lock = self._stripe(bucket)
            yield from lock.acquire(api, rank)
            try:
                for slot in range(self.slots_per_bucket):
                    addr = self._slot_addr(bucket, slot)
                    k = yield from api.load_u32(addr)
                    if k == 0 or k == key:
                        yield from api.store_u32(addr, key)
                        yield from api.store_u32(addr + 4, value)
                        return True
            finally:
                yield from lock.release(api, rank)
        return False

    def lookup(self, api: "ApApi", key: int
               ) -> Generator["Event", None, int]:
        """Lock-free probe; returns the value or -1 when absent.  Safe
        once writers have quiesced (the workloads barrier in between)."""
        for probe in range(self.n_buckets):
            bucket = (self._bucket_of(key) + probe) % self.n_buckets
            for slot in range(self.slots_per_bucket):
                addr = self._slot_addr(bucket, slot)
                k = yield from api.load_u32(addr)
                if k == key:
                    return (yield from api.load_u32(addr + 4))
                if k == 0:
                    return -1
        return -1


def hash_keys_for_rank(rank: int, n_keys: int) -> List[int]:
    """This rank's key set (disjoint across ranks, never 0)."""
    return [rank * 1024 + i + 1 for i in range(n_keys)]


def hash_value_of(key: int) -> int:
    """The value every workload stores for ``key`` (verifiable)."""
    return (key * 7 + 3) & 0xFFFFFFFF


# ----------------------------------------------------------------------
# sharing-pattern kernels (the bench_shm sweep)
# ----------------------------------------------------------------------

#: the four classic coherence access patterns.
SHARING_PATTERNS = ("private", "migratory", "producer_consumer", "hotspot")


def pattern_worker(api: "ApApi", comm, region: "ScomaRegion", pattern: str,
                   rank: int, n_ranks: int, rounds: int, out: Dict
                   ) -> Generator["Event", None, None]:
    """One rank of a sharing-pattern kernel.

    Each kernel performs ``rounds`` rounds of line-sized accesses and
    records ``out[rank] = (accesses, busy_ns)`` — time actually spent in
    loads/stores, excluding the barriers that keep rounds aligned:

    ``private``            every rank writes then reads a line homed at
                           itself — no protocol traffic after warmup.
    ``migratory``          one line visits every rank in turn; each
                           visit reads then writes (a recall per hop).
    ``producer_consumer``  rank 0 rewrites a line, everyone else reads
                           it (one invalidation round + refetches per
                           round).
    ``hotspot``            every rank writes the same line every round
                           (worst case: continuous recalls).
    """
    if pattern not in SHARING_PATTERNS:
        raise ProgramError(f"unknown sharing pattern {pattern!r}")
    line_bytes = region.line_bytes
    # one private line per rank (pattern "private"), line 0... shared
    shared = region.addr(0)
    private = region.addr(((rank + 1) % region.n_lines) * line_bytes)
    accesses = 0
    busy = 0.0
    payload = bytes([rank & 0xFF] * 8)
    for rnd in range(rounds):
        t0 = api.now
        if pattern == "private":
            yield from api.store(private, payload)
            yield from api.load(private, 8)
            accesses += 2
        elif pattern == "migratory":
            if rnd % n_ranks == rank:
                yield from api.load(shared, 8)
                yield from api.store(shared, payload)
                accesses += 2
        elif pattern == "producer_consumer":
            if rank == 0:
                yield from api.store(shared, bytes([rnd & 0xFF] * 8))
            accesses += 1
        elif pattern == "hotspot":
            yield from api.store(shared, payload)
            accesses += 1
        busy += api.now - t0
        # the barrier sequences the rounds (migratory hand-off order,
        # producer-before-consumers) without joining the timed window
        yield from comm.barrier(api)
        if pattern == "producer_consumer" and rank != 0:
            t0 = api.now
            yield from api.load(shared, 8)
            busy += api.now - t0
            yield from comm.barrier(api)
        elif pattern == "producer_consumer":
            yield from comm.barrier(api)
    out[rank] = (accesses, busy)


def pattern_ns_per_access(out: Dict) -> float:
    """Aggregate a pattern run's per-rank (accesses, busy_ns) records."""
    accesses = sum(a for a, _ in out.values())
    busy = sum(b for _, b in out.values())
    return busy / accesses if accesses else 0.0
