"""Shared-memory mechanisms: NUMA, S-COMA, and update-based user APIs."""

from repro.shm.numa import NumaSpace
from repro.shm.scoma import ScomaRegion
from repro.shm.update import UpdateRegion

__all__ = ["NumaSpace", "ScomaRegion", "UpdateRegion"]
