"""User API for update-based (release-consistent) shared memory.

The §5 diff-ing extension's layer-0 wrapper: plain cached loads/stores
between releases, one library call to release.  See
:mod:`repro.firmware.update_shm` for the mechanism.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, List, Optional

from repro.common.errors import ProgramError
from repro.firmware.update_shm import install_update_region, pack_release
from repro.mp.basic import BasicPort
from repro.niu.niu import SP_SERVICE_QUEUE, vdst_for

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import StarTVoyager
    from repro.node.ap import ApApi
    from repro.sim.events import Event


class UpdateRegion:
    """A shared, release-consistent window of cached DRAM."""

    def __init__(self, machine: "StarTVoyager", base: int, size: int,
                 nodes: Optional[List[int]] = None) -> None:
        self.machine = machine
        self.base = base
        self.size = size
        self.nodes = nodes if nodes is not None else \
            list(range(machine.config.n_nodes))
        if len(self.nodes) < 2:
            raise ProgramError("an update region needs at least two peers")
        self.units = {
            n: install_update_region(machine.node(n), base, size, self.nodes)
            for n in self.nodes
        }

    def addr(self, offset: int) -> int:
        """Region-relative address (same on every peer)."""
        if not (0 <= offset < self.size):
            raise ProgramError(f"offset {offset:#x} outside the region")
        return self.base + offset

    def release(self, api: "ApApi", port: BasicPort, notify_queue: int
                ) -> Generator["Event", None, None]:
        """Propagate this node's modifications to every peer.

        ``port`` is any send-capable BasicPort on the caller's node;
        ``notify_queue`` names the logical receive queue (usually the
        port's own) where the completion notification lands.  Returns
        once the local release has fully propagated *from this node* —
        peers apply updates as they arrive.
        """
        yield from port.send(
            api, vdst_for(api.node_id, SP_SERVICE_QUEUE),
            pack_release(notify_queue),
        )
        while True:
            msg = yield from port.poll(api)
            if msg is not None and msg[1] == b"rel":
                return
            yield from api.compute(25)

    def peek(self, node: int, offset: int, size: int) -> bytes:
        """Untimed coherent read of one peer's copy (testing)."""
        return self.machine.node(node).peek_coherent(self.addr(offset), size)
