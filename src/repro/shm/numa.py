"""User-level NUMA shared memory.

The NUMA global region is a flat address space carved across the nodes'
home backing windows; programs simply load and store global addresses —
the aBIU and firmware do the rest.  This module is only address
arithmetic and convenience wrappers; no mechanism lives here (that is
the point: NUMA applications need no library calls at all).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.common.errors import ProgramError
from repro.firmware.numa import NumaMap

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import StarTVoyager
    from repro.node.ap import ApApi
    from repro.sim.events import Event


class NumaSpace:
    """Handle on the cluster's NUMA global address space."""

    def __init__(self, machine: "StarTVoyager") -> None:
        node0 = machine.node(0)
        self.machine = machine
        self.map = NumaMap(machine.config.n_nodes, node0.numa_bytes,
                           node0.numa_backing_base)

    def addr(self, home: int, offset: int) -> int:
        """Global address of ``offset`` within ``home``'s backing."""
        return self.map.global_addr(home, offset)

    @property
    def bytes_per_node(self) -> int:
        """Backing bytes each node contributes."""
        return self.map.span

    # -- convenience wrappers (just api.load/store on global addresses) ------

    def read(self, api: "ApApi", home: int, offset: int, size: int
             ) -> Generator["Event", None, bytes]:
        """Load ``size`` (<= 8) bytes from a NUMA location."""
        if size > 8:
            raise ProgramError("NUMA accesses are single-beat (<= 8 bytes)")
        return (yield from api.load(self.addr(home, offset), size))

    def write(self, api: "ApApi", home: int, offset: int, data: bytes
              ) -> Generator["Event", None, None]:
        """Store ``data`` (<= 8 bytes) to a NUMA location."""
        if len(data) > 8:
            raise ProgramError("NUMA accesses are single-beat (<= 8 bytes)")
        yield from api.store(self.addr(home, offset), data)

    def home_peek(self, home: int, offset: int, size: int) -> bytes:
        """Untimed read of the home backing (testing/verification)."""
        node = self.machine.node(home)
        local = self.map.backing_addr(self.addr(home, offset))
        return node.dram.peek(local, size)
