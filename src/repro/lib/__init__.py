"""Layer-0 libraries built on the message-passing mechanisms."""

from repro.lib.activemsg import AmEndpoint
from repro.lib.channels import TokenChannel
from repro.lib.mpi import MiniMPI, MpiRank

__all__ = ["MiniMPI", "MpiRank", "TokenChannel", "AmEndpoint"]
