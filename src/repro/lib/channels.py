"""CSP-style channels over Express messages.

Express messages carry five bytes in a single store/load pair — ideal
for fine-grained synchronization.  A :class:`TokenChannel` multiplexes
small typed tokens over each node's Express port: one byte of channel
id (riding in the store address), four bytes of value.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, List, Tuple

from repro.common.errors import ProgramError
from repro.mp.express import ExpressPort
from repro.niu.niu import EXPRESS_RX_LOGICAL, vdst_for

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import StarTVoyager
    from repro.node.ap import ApApi
    from repro.sim.events import Event


class TokenChannel:
    """Typed 32-bit tokens between nodes, one Express message each."""

    def __init__(self, machine: "StarTVoyager", node: int) -> None:
        self.machine = machine
        self.node = node
        self.port = ExpressPort(machine.node(node))
        #: tokens that arrived for other channel ids while we waited.
        self._stash: Dict[int, List[Tuple[int, int]]] = {}

    def send(self, api: "ApApi", dst: int, channel: int, value: int
             ) -> Generator["Event", None, None]:
        """Send ``value`` on ``channel`` to node ``dst`` (one store)."""
        if not (0 <= channel <= 255):
            raise ProgramError(f"channel id {channel} outside one byte")
        if not (0 <= value < 1 << 32):
            raise ProgramError(f"value {value:#x} outside 32 bits")
        payload = bytes([channel]) + value.to_bytes(4, "big")
        yield from self.port.send(
            api, vdst_for(dst, EXPRESS_RX_LOGICAL), payload)

    def recv(self, api: "ApApi", channel: int, poll_insns: int = 25
             ) -> Generator["Event", None, Tuple[int, int]]:
        """Receive the next ``(src, value)`` on ``channel`` (blocking)."""
        stash = self._stash.get(channel)
        if stash:
            return stash.pop(0)
        while True:
            msg = yield from self.port.recv(api)
            if msg is None:
                yield from api.compute(poll_insns)
                continue
            src, payload = msg
            got_channel = payload[0]
            value = int.from_bytes(payload[1:5], "big")
            if got_channel == channel:
                return src, value
            self._stash.setdefault(got_channel, []).append((src, value))
