"""A miniature MPI over Basic messages (the paper's layer-0 example).

"Library functions generally run within the communicating process ...
For example, we will provide an MPI library that presents the usual MPI
interface to the user code but uses the underlying NIU support for the
actual communication."

:class:`MiniMPI` is that library: ranks map to nodes, large sends
fragment into Basic messages, receives reassemble and match on
``(source, tag)``, and the usual collectives (barrier, bcast, reduce,
allreduce, gather) are built from point-to-point — all of it ordinary
user code over :class:`~repro.mp.basic.BasicPort`.

Collectives are selectable per machine through ``algo=``:

* ``"flat"`` — the original rank-0-rooted O(N) loops (the baseline);
* ``"tree"`` — host-side spanning-tree / recursive-doubling algorithms
  from :mod:`repro.collectives.api`: O(log N) critical path, still every
  message issued by the aPs;
* ``"nic"`` — NIC-offloaded: the sP ``CollectiveUnit`` firmware
  (:mod:`repro.collectives.firmware`) combines contributions in the
  network interface and the aP issues a single enqueue plus a single
  dequeue per collective.
* ``"switch"`` — in-network computing: barrier and named-op allreduce
  ride a switch-resident combining tree (:mod:`repro.sync`), one
  packet per tree edge with the folding done *inside the fabric*.
  Only those two collectives offload this far; the rest fall back to
  the machine's base algorithm.

``barrier``/``allreduce`` also accept a per-call ``algo=`` override,
so one program can compare families without rebuilding communicators.

Fragment format (within one Basic payload, 88-byte cap):

====== ========================================
bytes  field
====== ========================================
0-1    tag
2-5    total message length
6-9    fragment offset
10+    fragment data (up to 78 bytes)
====== ========================================
"""

from __future__ import annotations

from typing import (TYPE_CHECKING, Callable, Dict, Generator, List, Optional,
                    Tuple, Union)

from repro.collectives import api as coll_api
from repro.collectives import wire
from repro.collectives.firmware import ensure_collectives
from repro.collectives.plan import (OPS, RdSchedule, TreePlan, binomial_tree,
                                    kary_tree, op_by_name, recursive_doubling)
from repro.common.errors import ProgramError
from repro.firmware.proto import MSG_COLL_REQ
from repro.mp.basic import BasicPort
from repro.net import combine
from repro.niu.niu import SP_SERVICE_QUEUE, needs_raw_addressing, vdst_for

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import StarTVoyager
    from repro.node.ap import ApApi
    from repro.sim.events import Event

FRAG_HEADER = 10
FRAG_DATA = 78
#: reliable sends lose 4 bytes of each Basic payload to the go-back-N
#: header (repro.firmware.reliable.REL_HEADER_BYTES), so fragments shrink.
FRAG_DATA_RELIABLE = 74
#: collective traffic owns tags 0x8000..0xFFFF (user tags are 15-bit),
#: sequenced per collective call so that back-to-back collectives never
#: steal each other's messages.  The 32768-tag window means aliasing
#: would need that many collectives simultaneously outstanding between
#: one rank pair; per-(src, tag) in-order delivery plus the FIFO mailbox
#: keep even aliased single-fragment collectives correct.  The firmware
#: path additionally keys its combining state by a 32-bit sequence
#: number, so the NIC never sees a tag wrap at all.
_COLL_TAG_BASE = 0x8000
_COLL_TAG_SPAN = 0x8000

#: the collective algorithm families MiniMPI can route through.
ALGOS = ("flat", "tree", "nic", "switch")

#: named reduction ops the in-switch combining path supports.
_SWITCH_OPS = {"sum": combine.OP_ADD, "min": combine.OP_MIN,
               "max": combine.OP_MAX, "bor": combine.OP_OR}

#: a reduction operator: a name from repro.collectives.plan.OPS, an
#: arbitrary callable (host algorithms only), or None for sum.
OpSpec = Union[None, str, Callable[[int, int], int]]


def _resolve_op(op: OpSpec) -> Tuple[Optional[str], Callable[[int, int], int]]:
    """``(name-or-None, fn)`` for an operator spec (None = sum)."""
    if op is None:
        return "sum", OPS["sum"][1]
    if isinstance(op, str):
        return op, op_by_name(op)[1]
    if callable(op):
        return None, op
    raise ProgramError(f"op must be None, a name, or a callable: {op!r}")


class MiniMPI:
    """Factory for per-rank communicators over one (tx, rx) queue pair.

    ``algo`` selects the collective family (see the module docstring);
    ``tree``/``arity`` pick the spanning-tree shape (``"binomial"`` or
    ``"kary"``) used by the ``"tree"`` and ``"nic"`` paths.

    ``reliable=True`` routes every point-to-point fragment through the
    sP's go-back-N ack/retransmit firmware
    (:mod:`repro.firmware.reliable`), surviving lossy links at the cost
    of a 4-byte header per fragment and the firmware round trip.
    Collectives built from point-to-point (``"flat"``/``"tree"``)
    inherit reliability; the ``"nic"`` combining path does not.
    """

    def __init__(self, machine: "StarTVoyager", tx_index: int = 2,
                 rx_logical: int = 2, algo: str = "flat",
                 tree: str = "binomial", arity: int = 2,
                 reliable: bool = False) -> None:
        if algo not in ALGOS:
            raise ProgramError(f"unknown collective algo {algo!r}; "
                               f"choose from {ALGOS}")
        if tree not in ("binomial", "kary"):
            raise ProgramError(f"unknown tree shape {tree!r}")
        self.machine = machine
        self.size = machine.config.n_nodes
        #: beyond 16 nodes the byte-vdst translation convention runs out;
        #: sends switch to kernel-mode RAW addressing (machine assembly
        #: marks the tx queues allow_raw for such sizes).
        self.wide = needs_raw_addressing(self.size)
        self.tx_index = tx_index
        self.rx_logical = rx_logical
        self.algo = algo
        self.tree = tree
        self.arity = arity
        self.reliable = reliable
        self.frag_data = FRAG_DATA_RELIABLE if reliable else FRAG_DATA
        if reliable:
            # make sure every node's sP carries the go-back-N engine
            # (no-op under the shipped default image)
            from repro.firmware.reliable import ensure_reliable
            ensure_reliable(machine)
        self._ranks: Dict[int, "MpiRank"] = {}
        self._plans: Dict[int, TreePlan] = {}
        self._rd: Optional[RdSchedule] = None
        self.nic_plan: Optional[TreePlan] = None
        self._sync_group = None
        if algo == "nic":
            # installs the CollectiveUnit firmware cluster-wide (no-op if
            # the shipped image already carries it)
            self.nic_plan = ensure_collectives(machine, self._build_plan(0))
        elif algo == "switch":
            self.sync_group()

    def sync_group(self):
        """The whole-communicator sync group backing ``algo="switch"``
        (lazy: created on first use, planning the combining tree through
        the fabric and installing the sync firmware)."""
        if self._sync_group is None:
            fabric = self.machine.sync_fabric()
            self._sync_group = fabric.group(range(self.size), mode="switch")
        return self._sync_group

    def rank(self, node: int) -> "MpiRank":
        """The communicator handle of one rank (cached per node)."""
        if node not in self._ranks:
            self._ranks[node] = MpiRank(self, node)
        return self._ranks[node]

    # -- collective plans -----------------------------------------------------

    def _build_plan(self, root: int) -> TreePlan:
        if self.tree == "binomial":
            return binomial_tree(self.size, root)
        return kary_tree(self.size, root, self.arity)

    def plan(self, root: int) -> TreePlan:
        """The spanning tree rooted at ``root`` (cached per root)."""
        if root not in self._plans:
            self._plans[root] = self._build_plan(root)
        return self._plans[root]

    def rd_schedule(self) -> RdSchedule:
        """The recursive-doubling allreduce schedule (cached)."""
        if self._rd is None:
            self._rd = recursive_doubling(self.size)
        return self._rd


class MpiRank:
    """One rank's communicator: point-to-point plus collectives."""

    def __init__(self, mpi: MiniMPI, node: int) -> None:
        self.mpi = mpi
        self.rank = node
        self.size = mpi.size
        self.port = BasicPort(mpi.machine.node(node), mpi.tx_index,
                              mpi.rx_logical)
        self.stats = self.port.stats
        #: out-of-order arrivals waiting for a matching recv.
        self._mailbox: Dict[Tuple[int, int], List[bytes]] = {}
        #: partially reassembled messages: (src, tag) -> (total, bytearray, got)
        self._partial: Dict[Tuple[int, int], Tuple[int, bytearray, int]] = {}
        #: collective-call sequence number (identical across ranks because
        #: every rank executes the same collective sequence).
        self._coll_seq = 0

    # -- point to point ------------------------------------------------------

    def send(self, api: "ApApi", dst: int, data: bytes, tag: int = 0
             ) -> Generator["Event", None, None]:
        """Blocking-buffered send of arbitrary length.

        User tags are 15-bit (0..0x7FFF); the upper half of the tag space
        is reserved for collective sequencing.
        """
        if not (0 <= tag < _COLL_TAG_BASE):
            raise ProgramError(
                f"user tags are 0..{_COLL_TAG_BASE - 1:#x}; "
                f"{_COLL_TAG_BASE:#x}..0xffff is reserved for collectives"
            )
        t0 = api.now
        yield from self._send(api, dst, data, tag)
        self.stats.accumulator("mpi.send_ns").add(api.now - t0)

    def _send(self, api: "ApApi", dst: int, data: bytes, tag: int
              ) -> Generator["Event", None, None]:
        """The raw send path (full 16-bit tag space; collectives use it)."""
        if not (0 <= dst < self.size):
            raise ProgramError(f"no rank {dst}")
        if not (0 <= tag <= 0xFFFF):
            raise ProgramError(f"tag {tag} outside 16 bits")
        total = len(data)
        frag_data = self.mpi.frag_data
        offset = 0
        while True:
            frag = data[offset : offset + frag_data]
            payload = (tag.to_bytes(2, "big") + total.to_bytes(4, "big")
                       + offset.to_bytes(4, "big") + frag)
            yield from self._launch(api, dst, self.mpi.rx_logical, payload)
            offset += len(frag)
            if offset >= total:
                break

    def _launch(self, api: "ApApi", dst: int, queue: int, payload: bytes,
                reliable: Optional[bool] = None
                ) -> Generator["Event", None, None]:
        """One Basic message to (node, logical queue), wide-safe.

        ``reliable`` overrides the communicator-wide setting (the NIC
        collective enqueue is a local sP hand-off and stays plain).
        """
        if self.mpi.reliable if reliable is None else reliable:
            yield from self.port.send_reliable(api, dst, payload,
                                               dst_queue=queue,
                                               raw=self.mpi.wide)
        elif self.mpi.wide:
            yield from self.port.send(api, dst, payload, raw=True,
                                      dst_queue=queue)
        else:
            yield from self.port.send(api, vdst_for(dst, queue), payload)

    def recv(self, api: "ApApi", src: Optional[int] = None,
             tag: Optional[int] = None
             ) -> Generator["Event", None, Tuple[int, int, bytes]]:
        """Blocking receive; returns ``(src, tag, data)``.

        ``None`` wildcards match any source / any tag, in arrival order.
        """
        t0 = api.now
        while True:
            hit = self._match(src, tag)
            if hit is not None:
                self.stats.accumulator("mpi.recv_ns").add(api.now - t0)
                return hit
            frag_src, payload = yield from self.port.recv(api)
            self._absorb(frag_src, payload)

    def _match(self, src: Optional[int], tag: Optional[int]
               ) -> Optional[Tuple[int, int, bytes]]:
        for (s, t), queue in self._mailbox.items():
            if queue and (src is None or s == src) and (tag is None or t == tag):
                data = queue.pop(0)
                return s, t, data
        return None

    def _absorb(self, src: int, payload: bytes) -> None:
        tag = int.from_bytes(payload[0:2], "big")
        total = int.from_bytes(payload[2:6], "big")
        offset = int.from_bytes(payload[6:10], "big")
        frag = payload[FRAG_HEADER:]
        key = (src, tag)
        if offset == 0 and len(frag) >= total:
            self._mailbox.setdefault(key, []).append(frag[:total])
            return
        if key not in self._partial:
            self._partial[key] = (total, bytearray(total), 0)
        exp_total, buf, got = self._partial[key]
        if exp_total != total:
            raise ProgramError(
                f"interleaved same-(src,tag) messages of different sizes "
                f"({exp_total} vs {total}); use distinct tags"
            )
        buf[offset : offset + len(frag)] = frag
        got += len(frag)
        if got >= total:
            del self._partial[key]
            self._mailbox.setdefault(key, []).append(bytes(buf))
        else:
            self._partial[key] = (total, buf, got)

    # -- collectives -------------------------------------------------------------

    def _next_coll(self) -> Tuple[int, int]:
        """Advance the collective sequence; returns ``(wire_seq, tag)``."""
        seq = self._coll_seq
        self._coll_seq += 1
        return seq & 0xFFFFFFFF, _COLL_TAG_BASE | (seq % _COLL_TAG_SPAN)

    def _pick_algo(self, algo: Optional[str]) -> str:
        """Resolve a per-call algorithm override (None = communicator's)."""
        if algo is None:
            return self.mpi.algo
        if algo not in ALGOS:
            raise ProgramError(f"unknown collective algo {algo!r}; "
                               f"choose from {ALGOS}")
        if algo == "nic" and self.mpi.nic_plan is None:
            self.mpi.nic_plan = ensure_collectives(
                self.mpi.machine, self.mpi._build_plan(0))
        return algo

    def _nic_root(self, root: int) -> None:
        plan = self.mpi.nic_plan
        assert plan is not None
        if root != plan.root:
            raise ProgramError(
                f"NIC-offloaded collectives run on the installed tree "
                f"(root {plan.root}); got root {root}.  Use algo='tree' "
                f"for arbitrary roots."
            )

    def _nic_request(self, api: "ApApi", kind: int, op_code: int, seq: int,
                     tag: int, root: int, data: bytes
                     ) -> Generator["Event", None, None]:
        """The single enqueue: one Basic message to the local sP."""
        payload = wire.pack_coll(MSG_COLL_REQ, kind, op_code, 0, seq, root,
                                 self.mpi.rx_logical, tag, data)
        yield from self._launch(api, self.rank, SP_SERVICE_QUEUE, payload,
                                reliable=False)

    def barrier(self, api: "ApApi", algo: Optional[str] = None
                ) -> Generator["Event", None, None]:
        """All ranks synchronize.

        ``algo`` overrides the communicator's family for this one call
        (every rank must pass the same value — collective-call
        discipline applies to the override too).
        """
        t0 = api.now
        yield from self._do_barrier(api, algo)
        self.stats.accumulator("mpi.barrier_ns").add(api.now - t0)

    def _do_barrier(self, api: "ApApi", algo: Optional[str] = None
                    ) -> Generator["Event", None, None]:
        seq, tag = self._next_coll()
        if self.size == 1:
            return
        algo = self._pick_algo(algo)
        if algo == "switch":
            yield from self.mpi.sync_group().tree_op(api, self.rank,
                                                     combine.OP_ADD, 0)
        elif algo == "tree":
            yield from coll_api.tree_barrier(self, api, self.mpi.plan(0), tag)
        elif algo == "nic":
            yield from self._nic_request(api, wire.KIND_BARRIER, 0, seq, tag,
                                         0, b"")
            yield from self.recv(api, tag=tag)
        elif self.rank == 0:
            for _ in range(self.size - 1):
                yield from self.recv(api, tag=tag)
            for dst in range(1, self.size):
                yield from self._send(api, dst, b"r", tag)
        else:
            yield from self._send(api, 0, b"a", tag)
            yield from self.recv(api, src=0, tag=tag)

    def bcast(self, api: "ApApi", data: Optional[bytes], root: int = 0
              ) -> Generator["Event", None, bytes]:
        """Broadcast ``data`` from ``root``; every rank returns it."""
        t0 = api.now
        out = yield from self._do_bcast(api, data, root)
        self.stats.accumulator("mpi.bcast_ns").add(api.now - t0)
        return out

    def _do_bcast(self, api: "ApApi", data: Optional[bytes], root: int = 0
                  ) -> Generator["Event", None, bytes]:
        seq, tag = self._next_coll()
        if self.size == 1:
            return data or b""
        algo = self.mpi.algo
        if algo == "tree":
            return (yield from coll_api.tree_bcast(
                self, api, data, self.mpi.plan(root), tag))
        if algo == "nic":
            self._nic_root(root)
            if self.rank == root:
                assert data is not None, "root must supply the data"
                if len(data) > wire.COLL_MAX_DATA:
                    raise ProgramError(
                        f"NIC-offloaded bcast carries at most "
                        f"{wire.COLL_MAX_DATA} bytes (got {len(data)}); use "
                        f"algo='tree' for larger payloads"
                    )
                yield from self._nic_request(api, wire.KIND_BCAST, 0, seq,
                                             tag, root, data)
            _src, _tag, got = yield from self.recv(api, tag=tag)
            return got
        if self.rank == root:
            assert data is not None, "root must supply the data"
            for dst in range(self.size):
                if dst != root:
                    yield from self._send(api, dst, data, tag)
            return data
        _src, _tag, got = yield from self.recv(api, src=root, tag=tag)
        return got

    def gather(self, api: "ApApi", data: bytes, root: int = 0
               ) -> Generator["Event", None, Optional[List[bytes]]]:
        """Gather per-rank byte strings at ``root`` (rank order).

        Variable-size data does not fit the firmware combining protocol,
        so ``algo="nic"`` routes gather over the host-side tree.
        """
        t0 = api.now
        out = yield from self._do_gather(api, data, root)
        self.stats.accumulator("mpi.gather_ns").add(api.now - t0)
        return out

    def _do_gather(self, api: "ApApi", data: bytes, root: int = 0
                   ) -> Generator["Event", None, Optional[List[bytes]]]:
        seq, tag = self._next_coll()
        if self.mpi.algo in ("tree", "nic"):
            return (yield from coll_api.tree_gather(
                self, api, data, self.mpi.plan(root), tag))
        if self.rank == root:
            parts: List[Optional[bytes]] = [None] * self.size
            parts[root] = data
            for _ in range(self.size - 1):
                src, _tag, got = yield from self.recv(api, tag=tag)
                parts[src] = got
            return parts  # type: ignore[return-value]
        yield from self._send(api, root, data, tag)
        return None

    def reduce(self, api: "ApApi", value: int, root: int = 0,
               op: OpSpec = None
               ) -> Generator["Event", None, Optional[int]]:
        """Reduce 64-bit integers to ``root`` with ``op`` (default sum).

        ``op`` may be a name from :data:`repro.collectives.plan.OPS` or —
        on the host algorithm paths — an arbitrary callable.  The tree
        path folds in ascending-rank order (MPI's canonical order); the
        flat path folds in *arrival* order, so non-commutative callables
        are rank-order sensitive there.
        """
        t0 = api.now
        out = yield from self._do_reduce(api, value, root, op)
        self.stats.accumulator("mpi.reduce_ns").add(api.now - t0)
        return out

    def _do_reduce(self, api: "ApApi", value: int, root: int = 0,
                   op: OpSpec = None
                   ) -> Generator["Event", None, Optional[int]]:
        seq, tag = self._next_coll()
        name, fn = _resolve_op(op)
        algo = self.mpi.algo
        if algo == "tree":
            return (yield from coll_api.tree_reduce(
                self, api, value, fn, self.mpi.plan(root), tag))
        if algo == "nic":
            self._nic_root(root)
            if name is None:
                raise ProgramError(
                    "NIC-offloaded reduction needs a named op from "
                    f"{sorted(OPS)}; use algo='tree' for callables"
                )
            if self.size == 1:
                return value
            yield from self._nic_request(api, wire.KIND_REDUCE,
                                         OPS[name][0], seq, tag, root,
                                         wire.pack_value(value))
            if self.rank != root:
                return None
            _src, _tag, got = yield from self.recv(api, tag=tag)
            return wire.unpack_value(got)
        if self.rank == root:
            acc = value
            for _ in range(self.size - 1):
                _src, _tag, got = yield from self.recv(api, tag=tag)
                acc = fn(acc, int.from_bytes(got, "big", signed=True))
            return acc
        yield from self._send(api, root,
                              value.to_bytes(8, "big", signed=True),
                              tag)
        return None

    def allreduce(self, api: "ApApi", value: int, op: OpSpec = None,
                  algo: Optional[str] = None
                  ) -> Generator["Event", None, int]:
        """Reduce with ``op`` (default sum); every rank returns the result.

        ``algo`` overrides the communicator's family for this call;
        ``algo="switch"`` supports the named ops sum/min/max/bor (the
        associative folds the combining hardware implements).
        """
        t0 = api.now
        out = yield from self._do_allreduce(api, value, op, algo)
        self.stats.accumulator("mpi.allreduce_ns").add(api.now - t0)
        return out

    def _do_allreduce(self, api: "ApApi", value: int, op: OpSpec = None,
                      algo: Optional[str] = None
                      ) -> Generator["Event", None, int]:
        algo = self._pick_algo(algo)
        if algo == "switch":
            self._next_coll()  # keep tag sequencing aligned across algos
            name, _fn = _resolve_op(op)
            sw_op = _SWITCH_OPS.get(name) if name is not None else None
            if sw_op is None:
                raise ProgramError(
                    "in-switch reduction needs a named op from "
                    f"{sorted(_SWITCH_OPS)}; use algo='tree' for the rest"
                )
            if self.size == 1:
                return value
            result = yield from self.mpi.sync_group().tree_op(
                api, self.rank, sw_op, value)
            return result
        if algo == "tree":
            seq, tag = self._next_coll()
            _name, fn = _resolve_op(op)
            if self.size == 1:
                return value
            return (yield from coll_api.rd_allreduce(
                self, api, value, fn, self.mpi.rd_schedule(), tag))
        if algo == "nic":
            seq, tag = self._next_coll()
            name, _fn = _resolve_op(op)
            if name is None:
                raise ProgramError(
                    "NIC-offloaded reduction needs a named op from "
                    f"{sorted(OPS)}; use algo='tree' for callables"
                )
            if self.size == 1:
                return value
            yield from self._nic_request(api, wire.KIND_ALLREDUCE,
                                         OPS[name][0], seq, tag, 0,
                                         wire.pack_value(value))
            _src, _tag, got = yield from self.recv(api, tag=tag)
            return wire.unpack_value(got)
        # flat: reduce to rank 0, then broadcast the result
        acc = yield from self.reduce(api, value, root=0, op=op)
        if self.rank == 0:
            result = yield from self.bcast(
                api, acc.to_bytes(8, "big", signed=True), root=0)
        else:
            result = yield from self.bcast(api, None, root=0)
        return int.from_bytes(result, "big", signed=True)
