"""A miniature MPI over Basic messages (the paper's layer-0 example).

"Library functions generally run within the communicating process ...
For example, we will provide an MPI library that presents the usual MPI
interface to the user code but uses the underlying NIU support for the
actual communication."

:class:`MiniMPI` is that library: ranks map to nodes, large sends
fragment into Basic messages, receives reassemble and match on
``(source, tag)``, and the usual collectives (barrier, bcast, reduce,
allreduce, gather) are built from point-to-point — all of it ordinary
user code over :class:`~repro.mp.basic.BasicPort`.

Fragment format (within one Basic payload, 88-byte cap):

====== ========================================
bytes  field
====== ========================================
0-1    tag
2-5    total message length
6-9    fragment offset
10+    fragment data (up to 78 bytes)
====== ========================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Generator, List, Optional, Tuple

from repro.common.errors import ProgramError
from repro.mp.basic import BasicPort
from repro.niu.niu import vdst_for

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import StarTVoyager
    from repro.node.ap import ApApi
    from repro.sim.events import Event

FRAG_HEADER = 10
FRAG_DATA = 78
#: collective traffic uses tags 0xFF00..0xFFFF, sequenced per collective
#: call so that back-to-back collectives never steal each other's messages.
_COLL_TAG_BASE = 0xFF00


class MiniMPI:
    """Factory for per-rank communicators over one (tx, rx) queue pair."""

    def __init__(self, machine: "StarTVoyager", tx_index: int = 2,
                 rx_logical: int = 2) -> None:
        self.machine = machine
        self.size = machine.config.n_nodes
        self.tx_index = tx_index
        self.rx_logical = rx_logical
        self._ranks: Dict[int, "MpiRank"] = {}

    def rank(self, node: int) -> "MpiRank":
        """The communicator handle of one rank (cached per node)."""
        if node not in self._ranks:
            self._ranks[node] = MpiRank(self, node)
        return self._ranks[node]


class MpiRank:
    """One rank's communicator: point-to-point plus collectives."""

    def __init__(self, mpi: MiniMPI, node: int) -> None:
        self.mpi = mpi
        self.rank = node
        self.size = mpi.size
        self.port = BasicPort(mpi.machine.node(node), mpi.tx_index,
                              mpi.rx_logical)
        #: out-of-order arrivals waiting for a matching recv.
        self._mailbox: Dict[Tuple[int, int], List[bytes]] = {}
        #: partially reassembled messages: (src, tag) -> (total, bytearray, got)
        self._partial: Dict[Tuple[int, int], Tuple[int, bytearray, int]] = {}
        #: collective-call sequence number (identical across ranks because
        #: every rank executes the same collective sequence).
        self._coll_seq = 0

    # -- point to point ------------------------------------------------------

    def send(self, api: "ApApi", dst: int, data: bytes, tag: int = 0
             ) -> Generator["Event", None, None]:
        """Blocking-buffered send of arbitrary length."""
        if not (0 <= dst < self.size):
            raise ProgramError(f"no rank {dst}")
        if not (0 <= tag <= 0xFFFF):
            raise ProgramError(f"tag {tag} outside 16 bits")
        vdst = vdst_for(dst, self.mpi.rx_logical)
        total = len(data)
        offset = 0
        while True:
            frag = data[offset : offset + FRAG_DATA]
            payload = (tag.to_bytes(2, "big") + total.to_bytes(4, "big")
                       + offset.to_bytes(4, "big") + frag)
            yield from self.port.send(api, vdst, payload)
            offset += len(frag)
            if offset >= total:
                break

    def recv(self, api: "ApApi", src: Optional[int] = None,
             tag: Optional[int] = None
             ) -> Generator["Event", None, Tuple[int, int, bytes]]:
        """Blocking receive; returns ``(src, tag, data)``.

        ``None`` wildcards match any source / any tag, in arrival order.
        """
        while True:
            hit = self._match(src, tag)
            if hit is not None:
                return hit
            frag_src, payload = yield from self.port.recv(api)
            self._absorb(frag_src, payload)

    def _match(self, src: Optional[int], tag: Optional[int]
               ) -> Optional[Tuple[int, int, bytes]]:
        for (s, t), queue in self._mailbox.items():
            if queue and (src is None or s == src) and (tag is None or t == tag):
                data = queue.pop(0)
                return s, t, data
        return None

    def _absorb(self, src: int, payload: bytes) -> None:
        tag = int.from_bytes(payload[0:2], "big")
        total = int.from_bytes(payload[2:6], "big")
        offset = int.from_bytes(payload[6:10], "big")
        frag = payload[FRAG_HEADER:]
        key = (src, tag)
        if total <= FRAG_DATA and offset == 0:
            self._mailbox.setdefault(key, []).append(frag[:total])
            return
        if key not in self._partial:
            self._partial[key] = (total, bytearray(total), 0)
        exp_total, buf, got = self._partial[key]
        if exp_total != total:
            raise ProgramError(
                f"interleaved same-(src,tag) messages of different sizes "
                f"({exp_total} vs {total}); use distinct tags"
            )
        buf[offset : offset + len(frag)] = frag
        got += len(frag)
        if got >= total:
            del self._partial[key]
            self._mailbox.setdefault(key, []).append(bytes(buf))
        else:
            self._partial[key] = (total, buf, got)

    # -- collectives -------------------------------------------------------------

    def _coll_tag(self) -> int:
        tag = _COLL_TAG_BASE | (self._coll_seq & 0xFF)
        self._coll_seq += 1
        return tag

    def barrier(self, api: "ApApi") -> Generator["Event", None, None]:
        """All ranks synchronize (gather-to-0 then broadcast release)."""
        tag = self._coll_tag()
        if self.size == 1:
            return
        if self.rank == 0:
            for _ in range(self.size - 1):
                yield from self.recv(api, tag=tag)
            for dst in range(1, self.size):
                yield from self.send(api, dst, b"r", tag=tag)
        else:
            yield from self.send(api, 0, b"a", tag=tag)
            yield from self.recv(api, src=0, tag=tag)

    def bcast(self, api: "ApApi", data: Optional[bytes], root: int = 0
              ) -> Generator["Event", None, bytes]:
        """Broadcast ``data`` from ``root``; every rank returns it."""
        tag = self._coll_tag()
        if self.size == 1:
            return data or b""
        if self.rank == root:
            assert data is not None, "root must supply the data"
            for dst in range(self.size):
                if dst != root:
                    yield from self.send(api, dst, data, tag=tag)
            return data
        _src, _tag, got = yield from self.recv(api, src=root, tag=tag)
        return got

    def gather(self, api: "ApApi", data: bytes, root: int = 0
               ) -> Generator["Event", None, Optional[List[bytes]]]:
        """Gather per-rank byte strings at ``root`` (rank order)."""
        tag = self._coll_tag()
        if self.rank == root:
            parts: List[Optional[bytes]] = [None] * self.size
            parts[root] = data
            for _ in range(self.size - 1):
                src, _tag, got = yield from self.recv(api, tag=tag)
                parts[src] = got
            return parts  # type: ignore[return-value]
        yield from self.send(api, root, data, tag=tag)
        return None

    def reduce(self, api: "ApApi", value: int, root: int = 0,
               op: Callable[[int, int], int] = lambda a, b: a + b
               ) -> Generator["Event", None, Optional[int]]:
        """Reduce 64-bit integers to ``root`` with ``op`` (default sum)."""
        tag = self._coll_tag()
        if self.rank == root:
            acc = value
            for _ in range(self.size - 1):
                _src, _tag, got = yield from self.recv(api, tag=tag)
                acc = op(acc, int.from_bytes(got, "big", signed=True))
            return acc
        yield from self.send(api, root,
                             value.to_bytes(8, "big", signed=True),
                             tag=tag)
        return None

    def allreduce(self, api: "ApApi", value: int,
                  op: Callable[[int, int], int] = lambda a, b: a + b
                  ) -> Generator["Event", None, int]:
        """Reduce then broadcast; every rank returns the result."""
        acc = yield from self.reduce(api, value, root=0, op=op)
        if self.rank == 0:
            result = yield from self.bcast(
                api, acc.to_bytes(8, "big", signed=True), root=0)
        else:
            result = yield from self.bcast(api, None, root=0)
        return int.from_bytes(result, "big", signed=True)
