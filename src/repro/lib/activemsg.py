"""Active Messages over Basic messages.

§6 of the paper frames its block transfer as "similar to am_store in
Active Message[s]" — data lands in memory, then a message in the regular
receive queue tells the receiver a handler should run.  This library
supplies that programming model as layer-0 code:

* :class:`AmEndpoint` — register handlers by id; an incoming message's
  first payload byte selects the handler, which runs *on the receiving
  aP* when the application polls (true AM semantics: handlers execute in
  the receiver's context, with the receiver's simulated costs);
* :meth:`AmEndpoint.am_store` — the bulk-data form: a hardware DMA moves
  the payload into far memory and the completion notification carries
  the handler id + arguments, so the handler runs only once the data is
  readable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Generator, Optional, Tuple

from repro.common.errors import ProgramError
from repro.mp.basic import BasicPort
from repro.mp.dma import dma_write
from repro.niu.niu import NOTIFY_QUEUE, vdst_for

if TYPE_CHECKING:  # pragma: no cover
    from repro.node.ap import ApApi
    from repro.node.node import NodeBoard
    from repro.sim.events import Event

#: an AM handler: ``fn(api, src_node, args) -> generator`` run on the
#: receiving aP at poll time.
AmHandler = Callable[["ApApi", int, bytes], Generator]

#: handler ids 0..239 are for messages; 240..255 arrive via am_store
#: notifications (so one endpoint can tell the two apart).
STORE_HANDLER_BASE = 240


class AmEndpoint:
    """One node's Active Message endpoint."""

    def __init__(self, node: "NodeBoard", tx_index: int = 0,
                 rx_logical: int = 0) -> None:
        self.node = node
        self.port = BasicPort(node, tx_index, rx_logical)
        #: am_store completions arrive on the notification queue.
        self.notify_port = BasicPort(node, tx_index, NOTIFY_QUEUE)
        self._handlers: Dict[int, AmHandler] = {}
        self.dispatched = 0

    # -- registration -----------------------------------------------------

    def register(self, handler_id: int, fn: AmHandler) -> None:
        """Bind ``handler_id`` (one byte) to a handler function."""
        if not (0 <= handler_id <= 255):
            raise ProgramError(f"handler id {handler_id} outside one byte")
        self._handlers[handler_id] = fn

    # -- sending -----------------------------------------------------------

    def send(self, api: "ApApi", dst_node: int, handler_id: int,
             args: bytes = b"") -> Generator["Event", None, None]:
        """Fire handler ``handler_id`` at ``dst_node`` with ``args``."""
        if len(args) > 87:
            raise ProgramError(f"AM args of {len(args)} bytes exceed 87")
        yield from self.port.send(
            api, vdst_for(dst_node, self.port.rx_logical),
            bytes([handler_id]) + args,
        )

    def am_store(self, api: "ApApi", request_port: BasicPort, dst_node: int,
                 src_addr: int, dst_addr: int, length: int,
                 handler_id: int) -> Generator["Event", None, None]:
        """Bulk store + remote handler: the §6 am_store pattern.

        The data moves by hardware DMA; the completion notification (which
        follows the data through the same FIFO path) selects
        ``handler_id`` at the destination.  ``request_port`` is the
        sender-side port that carries the DMA request to the local sP.
        """
        if not (STORE_HANDLER_BASE <= handler_id <= 255):
            raise ProgramError(
                f"am_store handlers use ids {STORE_HANDLER_BASE}..255"
            )
        # the notification payload is the 4-byte length; the handler id
        # rides in the notify queue selection: we encode it by target
        # queue... the model keeps one notify queue, so the id travels in
        # a preceding registration: store handlers match on the length
        # message source + a per-endpoint pending table
        self._pending_store_handler = handler_id  # type: ignore[attr-defined]
        yield from dma_write(api, request_port, dst_node, src_addr,
                             dst_addr, length, notify_queue=NOTIFY_QUEUE)

    def announce_store_handler(self, api: "ApApi", dst_node: int,
                               handler_id: int, dst_addr: int, length: int
                               ) -> Generator["Event", None, None]:
        """Pre-arm the destination: the next am_store completion from this
        node runs ``handler_id`` (sent as an ordinary AM)."""
        args = (dst_addr.to_bytes(6, "big") + length.to_bytes(4, "big")
                + bytes([handler_id]))
        yield from self.send(api, dst_node, 0xEE, args)

    # -- receiving -------------------------------------------------------------

    def poll(self, api: "ApApi") -> Generator["Event", None, bool]:
        """Dispatch at most one pending message; True if one ran."""
        msg = yield from self.port.poll(api)
        if msg is not None:
            src, payload = msg
            yield from self._dispatch(api, src, payload)
            return True
        note = yield from self.notify_port.poll(api)
        if note is not None:
            src, payload = note
            yield from self._dispatch_store(api, src, payload)
            return True
        return False

    def poll_wait(self, api: "ApApi", poll_insns: int = 25
                  ) -> Generator["Event", None, None]:
        """Poll until one message has been dispatched."""
        while True:
            ran = yield from self.poll(api)
            if ran:
                return
            yield from api.compute(poll_insns)

    # -- dispatch internals ----------------------------------------------------------

    def _dispatch(self, api: "ApApi", src: int, payload: bytes
                  ) -> Generator["Event", None, None]:
        if not payload:
            return
        handler_id = payload[0]
        if handler_id == 0xEE:  # store-handler announcement
            args = payload[1:]
            addr = int.from_bytes(args[0:6], "big")
            length = int.from_bytes(args[6:10], "big")
            store_id = args[10]
            pending = self._pending_stores = getattr(
                self, "_pending_stores", {})
            pending[(src, length)] = (store_id, addr)
            return
        fn = self._handlers.get(handler_id)
        if fn is None:
            raise ProgramError(f"no AM handler {handler_id} registered")
        self.dispatched += 1
        yield from fn(api, src, payload[1:])

    def _dispatch_store(self, api: "ApApi", src: int, payload: bytes
                        ) -> Generator["Event", None, None]:
        length = int.from_bytes(payload[:4], "big") if len(payload) >= 4 else 0
        pending = getattr(self, "_pending_stores", {})
        entry: Optional[Tuple[int, int]] = pending.pop((src, length), None)
        if entry is None:
            return  # plain DMA completion without an armed handler
        store_id, addr = entry
        fn = self._handlers.get(store_id)
        if fn is None:
            raise ProgramError(f"no AM store handler {store_id} registered")
        self.dispatched += 1
        args = addr.to_bytes(6, "big") + length.to_bytes(4, "big")
        yield from fn(api, src, args)
