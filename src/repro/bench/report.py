"""One-shot experiment report: regenerate every table and figure.

``python -m repro.bench.report`` runs the full experiment suite against
the simulator and prints the paper-style tables — the same numbers the
``benchmarks/`` targets assert on and EXPERIMENTS.md records.  Use
``--quick`` to skip the 64 KB sweep points.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.bench.harness import (
    FIG_SIZES,
    basic_oneway_latency,
    basic_stream_rate,
    express_oneway_latency,
    mpi_pingpong_latency,
    print_table,
    run_block_transfer,
)


def report_block_transfer(sizes: List[int], plot: bool = False) -> None:
    """F3 + F4 + T-occ + X-A45 in one sweep."""
    lat_rows, bw_rows, results = [], [], []
    for size in sizes:
        lat, bw = [size], [size]
        for approach in (1, 2, 3, 4, 5):
            r = run_block_transfer(approach, size)
            assert r.verified, f"A{approach}/{size} corrupted data"
            lat.append(r.notify_latency_ns / 1000.0)
            bw.append(r.bandwidth_mb_s)
            results.append(r)
        lat_rows.append(lat)
        bw_rows.append(bw)
    header = ["size_B"] + [f"A{a}" for a in (1, 2, 3, 4, 5)]
    print_table("Figure 3: latency to completion message (us)", header,
                lat_rows)
    print_table("Figure 4: bandwidth to completion message (MB/s)", header,
                bw_rows)
    if plot:
        from repro.bench.plots import figure3, figure4

        # plot approaches 1-3, the paper's published series
        published = [r for r in results if r.approach <= 3]
        print()
        print(figure3(published))
        print(figure4(published))
    occ_rows = []
    for approach in (1, 2, 3, 4, 5):
        occ = run_block_transfer(approach, 8192).occupancy_row()
        occ_rows.append([f"A{approach}", occ["sender_ap"],
                         occ["sender_sp"], occ["receiver_sp"]])
    print_table("Occupancy during an 8 KB transfer",
                ["approach", "sender aP", "sender sP", "receiver sP"],
                occ_rows)


def report_mechanisms() -> None:
    """X-mp microbenchmarks."""
    stream = basic_stream_rate()
    print_table("Mechanism microbenchmarks", ["mechanism", "metric", "value"], [
        ["express", "one-way ns", express_oneway_latency()],
        ["basic", "one-way ns (8 B)", basic_oneway_latency(8)],
        ["basic", "one-way ns (88 B)", basic_oneway_latency(88)],
        ["basic", "stream MB/s (64 B)", stream["mb_per_s"]],
        ["mini-MPI", "one-way ns (64 B)", mpi_pingpong_latency()],
    ])


def report_shared_memory() -> None:
    """X-shm: NUMA vs S-COMA."""
    from repro.bench.harness import fresh_machine
    from repro.shm import NumaSpace, ScomaRegion

    machine = fresh_machine(2)
    numa = NumaSpace(machine)
    out = {}

    def numa_prog(api):
        yield from numa.write(api, 1, 0x100, b"x" * 8)
        t0 = api.now
        for _ in range(10):
            yield from numa.read(api, 1, 0x100, 8)
        out["numa"] = (api.now - t0) / 10

    machine.run_until(machine.spawn(0, numa_prog), limit=1e10)

    machine2 = fresh_machine(2)
    region = ScomaRegion(machine2, n_lines=64)
    region.init_data(0, bytes(32))

    def scoma_prog(api):
        t0 = api.now
        yield from api.load(region.addr(0), 8)
        out["cold"] = api.now - t0
        t0 = api.now
        for _ in range(20):
            yield from api.load(region.addr(0), 8)
        out["warm"] = (api.now - t0) / 20

    machine2.run_until(machine2.spawn(1, scoma_prog), limit=1e10)
    print_table("Shared memory (ns)", ["mechanism", "access", "latency"], [
        ["NUMA", "remote read, every access", out["numa"]],
        ["S-COMA", "cold miss", out["cold"]],
        ["S-COMA", "warm hit", out["warm"]],
    ])


def main(argv=None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        description="Regenerate the StarT-Voyager reproduction's tables")
    parser.add_argument("--quick", action="store_true",
                        help="skip the largest sweep points")
    parser.add_argument("--plot", action="store_true",
                        help="render ASCII versions of Figures 3/4")
    parser.add_argument("--only", choices=["blocks", "mechanisms", "shm"],
                        help="run a single section")
    args = parser.parse_args(argv)
    sizes = [s for s in FIG_SIZES if not (args.quick and s > 16384)]
    if args.only in (None, "blocks"):
        report_block_transfer(sizes, plot=args.plot)
    if args.only in (None, "mechanisms"):
        report_mechanisms()
    if args.only in (None, "shm"):
        report_shared_memory()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
