"""Synthetic workload generators.

The paper argues its platform supports "system workload level studies",
not just single-program runs.  These generators build multi-node,
multi-mechanism workloads with a seeded RNG so every run is
reproducible: uniform random messaging, hotspot traffic, a
producer/consumer pipeline, and a mixed workload that exercises
messaging, DMA and shared memory together.

Each generator returns ``(procs, verify)``: the spawned processes and a
zero-argument callable that checks end-state integrity after the run.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, List, Tuple

from repro.mp.basic import BasicPort
from repro.mp.dma import DmaNotifier, dma_write
from repro.niu.niu import vdst_for

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import StarTVoyager
    from repro.sim.process import Process

VerifyFn = Callable[[], bool]


def uniform_random(machine: "StarTVoyager", messages_per_node: int = 20,
                   payload: int = 32, seed: int = 7
                   ) -> Tuple[List["Process"], VerifyFn]:
    """Every node sends to uniformly random partners; receivers verify
    each payload's (src, seq) stamp."""
    n = machine.config.n_nodes
    rng = random.Random(seed)
    ports = [BasicPort(machine.node(i), 0, 0) for i in range(n)]
    plan = {src: [] for src in range(n)}
    incoming = [0] * n
    for src in range(n):
        for seq in range(messages_per_node):
            dst = rng.randrange(n - 1)
            dst = dst if dst < src else dst + 1
            plan[src].append((dst, seq))
            incoming[dst] += 1
    failures: List[str] = []

    def sender(api, src):
        for dst, seq in plan[src]:
            body = bytes([src, seq]) + bytes(payload - 2)
            yield from ports[src].send(api, vdst_for(dst, 0), body)

    def receiver(api, me):
        for _ in range(incoming[me]):
            src, body = yield from ports[me].recv(api)
            if body[0] != src:
                failures.append(f"node {me}: stamp {body[0]} != src {src}")

    procs = []
    for i in range(n):
        procs.append(machine.spawn(i, sender, i, name=f"ur.send{i}"))
        procs.append(machine.spawn(i, receiver, i, name=f"ur.recv{i}"))
    return procs, lambda: not failures


def hotspot(machine: "StarTVoyager", messages_per_node: int = 20,
            hot_node: int = 0) -> Tuple[List["Process"], VerifyFn]:
    """Everyone hammers one node — the congestion pattern that makes
    receive-queue flow control earn its keep."""
    n = machine.config.n_nodes
    ports = [BasicPort(machine.node(i), 0, 0) for i in range(n)]
    got = {"count": 0}
    total = (n - 1) * messages_per_node

    def sender(api, src):
        for seq in range(messages_per_node):
            yield from ports[src].send(api, vdst_for(hot_node, 0),
                                       bytes([src, seq]))

    def sink(api):
        for _ in range(total):
            yield from ports[hot_node].recv(api)
            got["count"] += 1

    procs = [machine.spawn(i, sender, i, name=f"hs.send{i}")
             for i in range(n) if i != hot_node]
    procs.append(machine.spawn(hot_node, sink, name="hs.sink"))
    return procs, lambda: got["count"] == total


def pipeline(machine: "StarTVoyager", rounds: int = 10, payload: int = 64
             ) -> Tuple[List["Process"], VerifyFn]:
    """A ring pipeline: each node transforms and forwards."""
    n = machine.config.n_nodes
    ports = [BasicPort(machine.node(i), 0, 0) for i in range(n)]
    final = {}

    def stage(api, rank):
        if rank == 0:
            for round_ in range(rounds):
                token = bytes([round_]) + bytes(payload - 1)
                yield from ports[0].send(api, vdst_for(1 % n, 0), token)
            for round_ in range(rounds):
                _s, token = yield from ports[0].recv(api)
                final[token[0]] = token[1]
        else:
            for _ in range(rounds):
                _s, token = yield from ports[rank].recv(api)
                stamped = bytes([token[0], token[1] + 1]) + token[2:]
                yield from ports[rank].send(
                    api, vdst_for((rank + 1) % n, 0), stamped)

    procs = [machine.spawn(i, stage, i, name=f"pl.{i}") for i in range(n)]
    return procs, lambda: all(final.get(r) == machine.config.n_nodes - 1
                              for r in range(rounds))


def mixed(machine: "StarTVoyager", seed: int = 11
          ) -> Tuple[List["Process"], VerifyFn]:
    """Messaging + DMA + S-COMA sharing, simultaneously, on two nodes."""
    from repro.shm import ScomaRegion

    region = ScomaRegion(machine, n_lines=64)
    region.init_data(0, bytes(range(32)))
    msg_port0 = BasicPort(machine.node(0), 0, 0)
    msg_port1 = BasicPort(machine.node(1), 0, 0)
    dma_port = BasicPort(machine.node(0), 1, 1)
    notifier = DmaNotifier(machine.node(1))
    rng = random.Random(seed)
    dma_data = bytes(rng.randrange(256) for _ in range(3000))
    machine.node(0).dram.poke(0x16000, dma_data)
    checks = {}

    def node0(api):
        yield from dma_write(api, dma_port, 1, 0x16000, 0x26000,
                             len(dma_data))
        for i in range(10):
            yield from msg_port0.send(api, vdst_for(1, 0), bytes([i] * 16))
        checks["scoma0"] = yield from api.load(region.addr(0), 8)

    def node1(api):
        for i in range(10):
            _s, body = yield from msg_port1.recv(api)
            assert body[0] == i
        yield from notifier.wait(api)
        checks["dma"] = machine.node(1).dram.peek(0x26000, len(dma_data))
        checks["scoma1"] = yield from api.load(region.addr(0), 8)

    procs = [machine.spawn(0, node0, name="mx.0"),
             machine.spawn(1, node1, name="mx.1")]

    def verify():
        return (checks.get("dma") == dma_data
                and checks.get("scoma0") == checks.get("scoma1")
                == bytes(range(8)))

    return procs, verify
