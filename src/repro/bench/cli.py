"""``python -m repro.bench`` — the unified benchmark front door.

Every benchmark lives in ``benchmarks/bench_*.py``.  Historically each
file carried its own argparse copy; this CLI owns the *shared* flags
once (``--jobs``, ``--shards``, ``--emit-metrics``, ``--trace``,
``--sanitize``, ``--seed``, ``--json``) and discovers the per-file
workers:

* a module that defines a ``BENCH`` registration — ``{"summary": str,
  "run": callable(args), "flags": callable(parser) | None}`` — is a
  *CLI worker*: the CLI builds shared flags + the module's extras and
  calls ``run(args)``;
* any other ``bench_*.py`` is a *pytest worker* and is executed through
  ``pytest`` (the pedantic-benchmark style files).

Usage::

    python -m repro.bench                  # list every benchmark
    python -m repro.bench fig3_latency --emit-metrics --jobs 4
    python -m repro.bench scale --shards 4 --json out.json
    python benchmarks/bench_fig3_latency.py ...   # same thing (shim)
"""

from __future__ import annotations

import argparse
import importlib
import os
import sys
from typing import Any, Dict, List, Optional

#: shared-flag defaults a worker can rely on even when the flag makes no
#: sense for it (documented as ignored in that case).
SHARED_FLAG_HELP = {
    "--jobs": "worker processes for sweeps (byte-identical output for any "
              "value; default 1)",
    "--shards": "conservative-parallel shard count for sharded workloads "
                "(default 1)",
    "--emit-metrics": "write schema-versioned metrics snapshots next to the "
                      "human-readable table",
    "--trace": "render a Perfetto trace of one representative run",
    "--sanitize": "comma-separated runtime sanitizers to install "
                  "(see repro.analysis)",
    "--seed": "topology/workload seed (default 0)",
    "--json": "write the benchmark's machine-readable document to OUT",
}


def repo_root() -> str:
    """The checkout root (parent of ``src``), where ``benchmarks`` lives."""
    import repro

    return os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__))))


def benchmarks_dir() -> str:
    return os.path.join(repo_root(), "benchmarks")


def discover() -> Dict[str, str]:
    """``name -> module file`` for every ``benchmarks/bench_*.py``."""
    found: Dict[str, str] = {}
    bdir = benchmarks_dir()
    if not os.path.isdir(bdir):
        return found
    for entry in sorted(os.listdir(bdir)):
        if entry.startswith("bench_") and entry.endswith(".py"):
            found[entry[len("bench_"):-3]] = os.path.join(bdir, entry)
    return found


def load_bench(name: str):
    """Import one benchmark module (repo root goes on ``sys.path`` so
    ``benchmarks`` imports as the package the files expect)."""
    root = repo_root()
    if root not in sys.path:
        sys.path.insert(0, root)
    return importlib.import_module(f"benchmarks.bench_{name}")


def shared_parser(prog: str, summary: str) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog=prog, description=summary)
    parser.add_argument("--jobs", type=int, default=1,
                        help=SHARED_FLAG_HELP["--jobs"])
    parser.add_argument("--shards", type=int, default=1,
                        help=SHARED_FLAG_HELP["--shards"])
    parser.add_argument("--emit-metrics", action="store_true",
                        help=SHARED_FLAG_HELP["--emit-metrics"])
    parser.add_argument("--trace", action="store_true",
                        help=SHARED_FLAG_HELP["--trace"])
    parser.add_argument("--sanitize", default=None, metavar="NAMES",
                        help=SHARED_FLAG_HELP["--sanitize"])
    parser.add_argument("--seed", type=int, default=0,
                        help=SHARED_FLAG_HELP["--seed"])
    parser.add_argument("--json", default=None, metavar="OUT",
                        help=SHARED_FLAG_HELP["--json"])
    return parser


def _summary_of(module) -> str:
    bench = getattr(module, "BENCH", None)
    if bench and bench.get("summary"):
        return bench["summary"]
    doc = (module.__doc__ or "").strip().splitlines()
    return doc[0] if doc else ""


def list_benchmarks(stream=None) -> int:
    stream = stream or sys.stdout
    names = discover()
    if not names:
        print("no benchmarks/ directory found", file=stream)
        return 1
    print("available benchmarks (python -m repro.bench <name>):",
          file=stream)
    for name in names:
        try:
            module = load_bench(name)
            kind = "cli   " if hasattr(module, "BENCH") else "pytest"
            summary = _summary_of(module)
        except Exception as exc:  # a broken bench must not hide the rest
            kind, summary = "error ", f"import failed: {exc}"
        print(f"  {name:<16s} [{kind}] {summary}", file=stream)
    return 0


def run_pytest_bench(path: str, extra: List[str]) -> int:
    """Execute a pytest-style benchmark file under pytest."""
    import pytest

    return pytest.main([path, "-q", *extra])


def pytest_bench(name: str, summary: str) -> Dict[str, Any]:
    """``BENCH`` registration for a pytest-style benchmark file.

    Gives the pedantic-benchmark files the same front door as the CLI
    workers: shared flags are parsed, ``--sanitize`` maps to the
    ``REPRO_SANITIZE`` environment (installing runtime sanitizers in
    every machine the file builds), and ``--json`` dumps the recorded
    result tables.  ``--jobs``/``--shards``/``--seed`` have no pytest
    equivalent and are accepted but ignored.
    """
    summary = (summary or "").strip().splitlines()[0] if summary else ""

    def run(args) -> int:
        path = os.path.join(benchmarks_dir(), f"bench_{name}.py")
        previous = os.environ.get("REPRO_SANITIZE")
        if args.sanitize:
            os.environ["REPRO_SANITIZE"] = args.sanitize
        try:
            rc = run_pytest_bench(path, ["-s"])
        finally:
            if args.sanitize:
                if previous is None:
                    os.environ.pop("REPRO_SANITIZE", None)
                else:
                    os.environ["REPRO_SANITIZE"] = previous
        if args.json:
            import json

            from benchmarks.conftest import _rows

            document = {
                "benchmark": name,
                "schema": "startv.bench_tables",
                "schema_version": 1,
                "tables": {
                    title: {"header": list(header), "rows": rows}
                    for title, (header, rows) in _rows.items()
                },
            }
            with open(args.json, "w") as fh:
                json.dump(document, fh, indent=2, sort_keys=True)
            print(f"tables: {args.json}")
        return rc

    return {"summary": summary, "run": run, "flags": None}


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("list", "--list", "-l"):
        return list_benchmarks()
    if argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    name, rest = argv[0], argv[1:]
    known = discover()
    if name not in known:
        print(f"unknown benchmark {name!r}; known: {', '.join(known)}",
              file=sys.stderr)
        return 2
    module = load_bench(name)
    bench: Optional[Dict[str, Any]] = getattr(module, "BENCH", None)
    if bench is None:
        return run_pytest_bench(known[name], rest)
    parser = shared_parser(f"python -m repro.bench {name}",
                           _summary_of(module))
    flags = bench.get("flags")
    if flags is not None:
        flags(parser)
    args = parser.parse_args(rest)
    result = bench["run"](args)
    return 0 if result is None else int(result)
