"""ASCII figure rendering: the paper's figures, re-drawn in the terminal.

Figures 3 and 4 are log-x line charts of latency/bandwidth vs transfer
size per approach.  ``render_figure`` draws such a chart with one glyph
per series — good enough to eyeball the orderings and crossovers the
reproduction targets, with zero plotting dependencies.

``python -m repro.bench.report --plot`` uses this to accompany the
numeric tables.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

#: glyphs assigned to series in order.
GLYPHS = "123456789"


def render_figure(
    title: str,
    series: Dict[str, List[Tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    y_label: str = "",
    log_x: bool = True,
) -> str:
    """Render one multi-series scatter/line chart as text.

    ``series`` maps a name to ``(x, y)`` points.  X is log-scaled by
    default (transfer-size sweeps); Y is linear from zero.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return f"{title}\n  (no data)\n"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_hi = max(ys) * 1.05 or 1.0

    def x_col(x: float) -> int:
        if x_hi == x_lo:
            return 0
        if log_x:
            span = math.log(x_hi) - math.log(x_lo)
            frac = (math.log(x) - math.log(x_lo)) / span
        else:
            frac = (x - x_lo) / (x_hi - x_lo)
        return min(width - 1, int(round(frac * (width - 1))))

    def y_row(y: float) -> int:
        frac = y / y_hi
        return min(height - 1, int(round(frac * (height - 1))))

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for i, (name, pts) in enumerate(series.items()):
        glyph = GLYPHS[i % len(GLYPHS)]
        legend.append(f"{glyph}={name}")
        for x, y in pts:
            row, col = y_row(y), x_col(x)
            cell = grid[row][col]
            grid[row][col] = "*" if cell not in (" ", glyph) else glyph

    lines = [f"{title}   [{', '.join(legend)}]"]
    label_w = 9
    for r in range(height - 1, -1, -1):
        y_value = y_hi * r / (height - 1)
        label = f"{y_value:8.1f} " if r % 4 == 0 or r == height - 1 else " " * label_w
        lines.append(label + "|" + "".join(grid[r]))
    lines.append(" " * label_w + "+" + "-" * width)
    ticks = sorted({x for x in xs})
    tick_line = [" "] * width
    for x in ticks:
        text = _fmt_size(x)
        col = min(width - len(text), x_col(x))
        for j, ch in enumerate(text):
            tick_line[col + j] = ch
    lines.append(" " * (label_w + 1) + "".join(tick_line))
    if y_label:
        lines.append(f"  y: {y_label}" + ("   x: log size" if log_x else ""))
    return "\n".join(lines) + "\n"


def _fmt_size(x: float) -> str:
    if x >= 1 << 20:
        return f"{x / (1 << 20):g}M"
    if x >= 1024:
        return f"{x / 1024:g}K"
    return f"{x:g}"


def figure3(results) -> str:
    """Render Figure 3 (latency) from TransferResult rows."""
    series: Dict[str, List[Tuple[float, float]]] = {}
    for r in results:
        series.setdefault(f"A{r.approach}", []).append(
            (r.size, r.notify_latency_ns / 1000.0))
    return render_figure("Figure 3: block-transfer latency (us)",
                         series, y_label="latency (us)")


def figure4(results) -> str:
    """Render Figure 4 (bandwidth) from TransferResult rows."""
    series: Dict[str, List[Tuple[float, float]]] = {}
    for r in results:
        series.setdefault(f"A{r.approach}", []).append(
            (r.size, r.bandwidth_mb_s))
    return render_figure("Figure 4: block-transfer bandwidth (MB/s)",
                         series, y_label="MB/s")
