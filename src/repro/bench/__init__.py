"""Benchmark harness utilities shared by the ``benchmarks/`` targets."""

from repro.bench.harness import (
    FIG_SIZES,
    basic_oneway_latency,
    basic_stream_rate,
    block_transfer_sweep,
    collective_latency,
    emit_json,
    express_oneway_latency,
    fresh_machine,
    mpi_pingpong_latency,
    print_table,
    run_block_transfer,
)

__all__ = [
    "FIG_SIZES",
    "fresh_machine",
    "run_block_transfer",
    "block_transfer_sweep",
    "print_table",
    "emit_json",
    "basic_oneway_latency",
    "express_oneway_latency",
    "basic_stream_rate",
    "collective_latency",
    "mpi_pingpong_latency",
]
