"""Benchmark harness: sweeps, mechanism microbenchmarks, table printing.

Shared by the ``benchmarks/`` targets so that every table and figure is
regenerated through one code path: build a fresh machine per data point,
run the workload, extract the simulated metrics, print the paper-style
rows (and return them for programmatic checks).

Sweeps fan out across processes through :func:`run_sweep`: every data
point is an independent, fully seeded simulation, so the grid is
embarrassingly parallel and the merged output is byte-identical for any
job count (see the function's determinism contract).
"""

from __future__ import annotations

import json
import multiprocessing
import os
from typing import Any, Callable, Dict, List, Sequence, Tuple

import repro
from repro.core.blocktransfer import BlockTransferExperiment, TransferResult
from repro.lib.mpi import MiniMPI
from repro.mp.basic import BasicPort
from repro.mp.express import ExpressPort
from repro.niu.niu import EXPRESS_RX_LOGICAL, vdst_for
from repro.obs.snapshot import metrics_snapshot

#: the size axis used for the Figure 3/4 sweeps.
FIG_SIZES = [256, 1024, 4096, 16384, 65536]


def fresh_machine(n_nodes: int = 2, **overrides) -> "repro.StarTVoyager":
    """One standard-configuration machine (fresh per data point)."""
    return repro.StarTVoyager(repro.default_config(n_nodes=n_nodes, **overrides))


def run_block_transfer(approach: int, size: int) -> TransferResult:
    """One Figure-3/4 data point on a fresh two-node machine."""
    machine = fresh_machine(2)
    return BlockTransferExperiment(machine).run(approach, size)


def block_transfer_sweep(approaches: Sequence[int],
                         sizes: Sequence[int] = FIG_SIZES
                         ) -> List[TransferResult]:
    """The full (approach x size) grid."""
    return [run_block_transfer(a, s) for a in approaches for s in sizes]


def print_table(title: str, header: Sequence[str],
                rows: Sequence[Sequence[object]]) -> None:
    """Fixed-width table, the harness's one output format."""
    widths = [max(len(str(h)), max((len(_fmt(r[i])) for r in rows), default=0))
              for i, h in enumerate(header)]
    print(f"\n== {title} ==")
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(_fmt(v).ljust(w) for v, w in zip(row, widths)))


def _fmt(v: object) -> str:
    if isinstance(v, float):
        return f"{v:.2f}"
    return str(v)


def emit_json(path: str, payload: object) -> str:
    """Write one benchmark's results as a JSON document; returns the path.

    The machine-readable twin of :func:`print_table` — plotting scripts
    consume these instead of scraping stdout.  Parent directories are
    created as needed.
    """
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


# ----------------------------------------------------------------------
# deterministic parallel sweep runner
# ----------------------------------------------------------------------
#
# Every sweep point builds its own machine from a picklable spec and
# runs a fully seeded simulation, so points are independent and the grid
# is embarrassingly parallel.  Determinism contract: ``run_sweep``
# returns results in point order for *any* ``jobs`` value, and point
# workers strip the one nondeterministic part of a metrics snapshot
# (``sim.wall``, the wall-clock gauges) — the merged document is
# byte-identical whether the grid ran serially or across N processes.

def strip_wall(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """Drop the wall-clock gauges from a metrics snapshot, in place.

    ``sim.wall`` (host seconds, events/second) varies run to run with
    machine load; everything else in the snapshot is simulated and
    deterministic.  Sweep workers call this so merged sweep documents
    compare byte-for-byte across job counts and hosts.
    """
    sim = snapshot.get("sim")
    if isinstance(sim, dict):
        sim.pop("wall", None)
    return snapshot


def comparable(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """Reduce a metrics snapshot to its shard-count-invariant core, in place.

    Strips ``sim.wall`` (nondeterministic by nature) and the two fields
    that *record* how the simulation was partitioned (top-level
    ``shards`` and ``config.shards``).  Everything that remains is part
    of the determinism contract: byte-identical at any shard count and
    any ``--jobs`` value.
    """
    strip_wall(snapshot)
    snapshot.pop("shards", None)
    cfg = snapshot.get("config")
    if isinstance(cfg, dict):
        cfg.pop("shards", None)
    return snapshot


def run_sweep(worker: Callable[[Any], Any], points: Sequence[Any],
              jobs: int = 1) -> List[Any]:
    """Run ``worker(point)`` for every point, fanning out over processes.

    ``worker`` must be a module-level (picklable) function that builds
    everything it needs from its point — no shared machine, no closure
    state.  Results come back in ``points`` order regardless of ``jobs``
    (``Pool.map`` preserves input order), so the merged output of a
    deterministic worker is identical for ``jobs=1`` and ``jobs=N``.

    ``jobs <= 1`` runs inline in this process — same code path per
    point, no pool overhead, and usable under debuggers.
    """
    points = list(points)
    if jobs <= 1 or len(points) <= 1:
        return [worker(p) for p in points]
    # fork (where available) inherits the driver's sys.path, which keeps
    # directly-executed benchmark scripts workable; spawn is the fallback
    method = "fork" if "fork" in multiprocessing.get_all_start_methods() \
        else "spawn"
    ctx = multiprocessing.get_context(method)
    with ctx.Pool(processes=min(jobs, len(points))) as pool:
        return pool.map(worker, points, chunksize=1)


def block_transfer_point(spec: Tuple[int, int]) -> Dict[str, Any]:
    """One Figure-3/4 sweep point: ``(approach, size)`` -> result row.

    The row carries the transfer's latencies plus the machine's full
    (wall-stripped) metrics snapshot, so figure scripts get the
    schema-versioned measurement without a second run.
    """
    approach, size = spec
    machine = fresh_machine(2)
    result = BlockTransferExperiment(machine).run(approach, size)
    return {
        "approach": approach,
        "size_bytes": size,
        "notify_latency_ns": result.notify_latency_ns,
        "data_ready_latency_ns": result.data_ready_latency_ns,
        "bandwidth_mb_s": result.bandwidth_mb_s,
        "verified": result.verified,
        "metrics": strip_wall(metrics_snapshot(machine,
                                               include_config=False)),
    }


def block_transfer_metrics_sweep(approaches: Sequence[int],
                                 sizes: Sequence[int] = FIG_SIZES,
                                 jobs: int = 1) -> List[Dict[str, Any]]:
    """The (approach x size) grid with per-point metrics snapshots."""
    specs = [(a, s) for a in approaches for s in sizes]
    return run_sweep(block_transfer_point, specs, jobs=jobs)


def collective_point(spec: Tuple[str, int, str, int]) -> Dict[str, Any]:
    """One collective-scaling point: ``(name, n_nodes, algo, repeats)``."""
    name, n_nodes, algo, repeats = spec
    return {
        "collective": name,
        "n_nodes": n_nodes,
        "algo": algo,
        "latency_ns": collective_latency(name, n_nodes, algo,
                                         repeats=repeats),
    }


def collective_metrics_sweep(names: Sequence[str], nodes: Sequence[int],
                             algos: Sequence[str], repeats: int = 2,
                             jobs: int = 1) -> List[Dict[str, Any]]:
    """The (collective x algo x node-count) grid, in spec order."""
    specs = [(name, n, algo, repeats)
             for name in names for algo in algos for n in nodes]
    return run_sweep(collective_point, specs, jobs=jobs)


# ----------------------------------------------------------------------
# mechanism microbenchmarks (one-way latency / message rate)
# ----------------------------------------------------------------------

def basic_oneway_latency(payload_bytes: int = 8, repeats: int = 20) -> float:
    """Mean one-way Basic-message latency in ns (ping-pong halved)."""
    machine = fresh_machine(2)
    p0 = BasicPort(machine.node(0), 0, 0)
    p1 = BasicPort(machine.node(1), 0, 0)
    payload = bytes(payload_bytes)

    def ping(api):
        for _ in range(repeats):
            yield from p0.send(api, vdst_for(1, 0), payload)
            yield from p0.recv(api)

    def pong(api):
        for _ in range(repeats):
            yield from p1.recv(api)
            yield from p1.send(api, vdst_for(0, 0), payload)

    t0 = machine.now
    a = machine.spawn(0, ping)
    b = machine.spawn(1, pong)
    machine.run_all([a, b])
    return (machine.now - t0) / (2 * repeats)


def express_oneway_latency(repeats: int = 20) -> float:
    """Mean one-way Express-message latency in ns."""
    machine = fresh_machine(2)
    e0, e1 = ExpressPort(machine.node(0)), ExpressPort(machine.node(1))

    def ping(api):
        for _ in range(repeats):
            yield from e0.send(api, vdst_for(1, EXPRESS_RX_LOGICAL), b"01234")
            yield from e0.recv_blocking(api)

    def pong(api):
        for _ in range(repeats):
            yield from e1.recv_blocking(api)
            yield from e1.send(api, vdst_for(0, EXPRESS_RX_LOGICAL), b"43210")

    t0 = machine.now
    a = machine.spawn(0, ping)
    b = machine.spawn(1, pong)
    machine.run_all([a, b])
    return (machine.now - t0) / (2 * repeats)


def collective_latency(name: str, n_nodes: int, algo: str = "flat",
                       repeats: int = 4, payload_bytes: int = 32,
                       **mpi_kwargs) -> float:
    """Mean completion time (ns) of one collective on a fresh machine.

    ``name`` is ``"barrier"``, ``"bcast"`` or ``"allreduce"``; ``algo``
    selects the :class:`~repro.lib.mpi.MiniMPI` collective family
    (``"flat"`` / ``"tree"`` / ``"nic"``).  Back-to-back ``repeats``
    amortize start-up skew.
    """
    machine = fresh_machine(n_nodes)
    mpi = MiniMPI(machine, algo=algo, **mpi_kwargs)
    payload = bytes(payload_bytes)

    def worker(api, rank):
        comm = mpi.rank(rank)
        for _ in range(repeats):
            if name == "barrier":
                yield from comm.barrier(api)
            elif name == "bcast":
                yield from comm.bcast(api, payload if rank == 0 else None)
            elif name == "allreduce":
                yield from comm.allreduce(api, rank + 1, op="sum")
            else:
                raise ValueError(f"unknown collective {name!r}")

    t0 = machine.now
    procs = [machine.spawn(n, worker, n) for n in range(n_nodes)]
    machine.run_all(procs, limit=1e10)
    return (machine.now - t0) / repeats


def basic_stream_rate(payload_bytes: int = 64, count: int = 200
                      ) -> Dict[str, float]:
    """One-directional Basic-message stream: msgs/s and MB/s."""
    machine = fresh_machine(2)
    p0 = BasicPort(machine.node(0), 0, 0)
    p1 = BasicPort(machine.node(1), 0, 0)
    payload = bytes(payload_bytes)

    def producer(api):
        for _ in range(count):
            yield from p0.send(api, vdst_for(1, 0), payload)

    def consumer(api):
        for _ in range(count):
            yield from p1.recv(api)

    t0 = machine.now
    a = machine.spawn(0, producer)
    b = machine.spawn(1, consumer)
    machine.run_all([a, b])
    elapsed = machine.now - t0
    return {
        "msgs_per_s": count / (elapsed / 1e9),
        "mb_per_s": (count * payload_bytes) / elapsed * 1000.0,
        "elapsed_ns": elapsed,
    }


def mpi_pingpong_latency(payload_bytes: int = 64, repeats: int = 10) -> float:
    """Mean one-way mini-MPI latency (library overhead included)."""
    machine = fresh_machine(2)
    mpi = MiniMPI(machine)
    payload = bytes(payload_bytes)

    def ping(api):
        r = mpi.rank(0)
        for _ in range(repeats):
            yield from r.send(api, 1, payload)
            yield from r.recv(api, src=1)

    def pong(api):
        r = mpi.rank(1)
        for _ in range(repeats):
            yield from r.recv(api, src=0)
            yield from r.send(api, 0, payload)

    t0 = machine.now
    a = machine.spawn(0, ping)
    b = machine.spawn(1, pong)
    machine.run_all([a, b])
    return (machine.now - t0) / (2 * repeats)
