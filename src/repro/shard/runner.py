"""The sharded conservative parallel-in-time runner.

One machine, ``K`` event queues.  Each shard builds a sub-machine that
holds only its own node boards and switches (see
:class:`~repro.shard.partition.ShardPlan` /
:class:`~repro.shard.boundary.ShardView`); the runner synchronizes them
with a lower-bound-timestamp window barrier:

1. **exchange** — every boundary message committed in the previous
   window is sorted canonically and injected into its target shard at
   its stamped arrival time; every shard then reports
   :meth:`~repro.sim.engine.Engine.peek_time`.
2. **window** — the global safe bound is ``B = min(peeks) + lookahead``
   where the lookahead is the Arctic wire latency (every cut channel —
   packets forward, credits backward — pays exactly one wire flight, so
   nothing committed during the window can arrive before ``B``).  Every
   shard executes strictly below ``B`` and drains its outbox.
3. Repeat until every heap is empty and no message is in flight; then
   align all clocks on the global maximum and fire drain hooks.

The same coordinator drives two backends through one handle protocol:
``inline`` (all shards in this process — deterministic reference, and
what the parity tests compare against ``shards=1``) and ``process``
(one forked worker per shard, the tentpole's scale path; only boundary
messages and final exports cross the pipes).  Workloads enter through a
:class:`~repro.shard.scenarios.ShardScenario`, which is the piece that
knows how to set up *one shard's slice* of a whole-machine workload.
"""

from __future__ import annotations

import traceback
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.config import MachineConfig
from repro.common.errors import SimulationError
from repro.obs.snapshot import merge_shard_exports, shard_export
from repro.shard.boundary import BoundaryMessage, ShardView
from repro.shard.partition import ShardPlan
from repro.sim.engine import INFINITY

#: guard against a stuck barrier (a lookahead bug would otherwise spin
#: forever injecting nothing); generous — real runs take far fewer.
MAX_WINDOWS = 50_000_000


class ShardRun:
    """Everything a sharded execution produced."""

    def __init__(self, snapshot: Dict[str, Any], results: List[Any],
                 plan: Dict[str, Any], windows: int,
                 shard_events: List[int], shard_wall: List[float]) -> None:
        #: merged, shard-count-invariant metrics snapshot.
        self.snapshot = snapshot
        #: per-shard scenario results, indexed by shard.
        self.results = results
        #: the partition that ran (``ShardPlan.describe()``).
        self.plan = plan
        #: how many window barriers the run took — the sync-cost gauge.
        self.windows = windows
        #: events executed per shard (load balance; the parallelism
        #: ceiling is ``sum(shard_events) / max(shard_events)``).
        self.shard_events = shard_events
        #: wall seconds each shard's engine spent executing.
        self.shard_wall = shard_wall

    @property
    def parallelism(self) -> float:
        """Ideal speedup under this partition: total events over the
        busiest shard's events (what perfectly parallel workers achieve
        when the host has enough cores)."""
        busiest = max(self.shard_events, default=0)
        return sum(self.shard_events) / busiest if busiest else 1.0


# ----------------------------------------------------------------------
# shard handles: one protocol, two backends
# ----------------------------------------------------------------------

class _InlineShard:
    """A shard simulated in the coordinator's own process."""

    def __init__(self, config: MachineConfig, plan: ShardPlan,
                 shard: int, scenario) -> None:
        from repro.core.machine import StarTVoyager

        self.view = ShardView(plan, shard)
        self.machine = StarTVoyager(config, shard_view=self.view)
        self.scenario = scenario
        self.ctx: Dict[str, Any] = {}

    def channels(self) -> Tuple[List[str], List[str]]:
        return (list(self.view.rx_halves), list(self.view.tx_halves))

    def setup(self, phase: int) -> None:
        self.scenario.setup(phase, self.machine, self.view.local_nodes,
                            self.ctx)

    def exchange(self, inbound: Sequence[BoundaryMessage]) -> float:
        engine = self.machine.engine
        for msg in inbound:
            self.view.deliver(engine, msg)
        return engine.peek_time()

    def window(self, until: float) -> List[BoundaryMessage]:
        self.machine.engine.run_window(until)
        return self.view.drain_outbox()

    def now(self) -> float:
        return self.machine.now

    def advance(self, time: float) -> None:
        self.machine.engine.advance_to(time)

    def finish(self) -> None:
        self.machine.engine.finish_windows()

    def result(self) -> Tuple[Any, Dict[str, Any]]:
        res = self.scenario.result(self.machine, self.view.local_nodes,
                                   self.ctx)
        return res, shard_export(self.machine)

    def close(self) -> None:
        pass


def _worker_main(conn, config: MachineConfig, plan: ShardPlan, shard: int,
                 scenario) -> None:
    """Process-backend worker: one shard, driven over a pipe.

    The worker is forked, so config/plan/scenario arrive by inheritance;
    only boundary messages, peeks, and the final export cross the pipe.
    """
    try:
        inner = _InlineShard(config, plan, shard, scenario)
    except BaseException:
        conn.send(("error", traceback.format_exc()))
        conn.close()
        return
    while True:
        op, *args = conn.recv()
        try:
            if op == "exchange":
                conn.send(("ok", inner.exchange(args[0])))
            elif op == "window":
                conn.send(("ok", inner.window(args[0])))
            elif op == "setup":
                inner.setup(args[0])
                conn.send(("ok", None))
            elif op == "now":
                conn.send(("ok", inner.now()))
            elif op == "advance":
                inner.advance(args[0])
                conn.send(("ok", None))
            elif op == "finish":
                inner.finish()
                conn.send(("ok", None))
            elif op == "result":
                conn.send(("ok", inner.result()))
            elif op == "channels":
                conn.send(("ok", inner.channels()))
            else:  # "exit"
                conn.close()
                return
        except BaseException:
            conn.send(("error", traceback.format_exc()))


class _ProcessShard:
    """A shard running in a forked worker, spoken to over a pipe."""

    def __init__(self, config: MachineConfig, plan: ShardPlan,
                 shard: int, scenario) -> None:
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        self._conn, child = ctx.Pipe()
        self._proc = ctx.Process(
            target=_worker_main, args=(child, config, plan, shard, scenario),
            daemon=True, name=f"shard-{shard}",
        )
        self._proc.start()
        child.close()

    def _call(self, op: str, *args: Any) -> Any:
        self._conn.send((op, *args))
        status, value = self._conn.recv()
        if status == "error":
            raise SimulationError(f"shard worker failed:\n{value}")
        return value

    def channels(self):
        return self._call("channels")

    def setup(self, phase: int) -> None:
        self._call("setup", phase)

    def exchange(self, inbound) -> float:
        return self._call("exchange", inbound)

    def window(self, until: float):
        return self._call("window", until)

    def now(self) -> float:
        return self._call("now")

    def advance(self, time: float) -> None:
        self._call("advance", time)

    def finish(self) -> None:
        self._call("finish")

    def result(self):
        return self._call("result")

    def close(self) -> None:
        try:
            self._conn.send(("exit",))
            self._conn.close()
        except (BrokenPipeError, OSError):  # worker already died
            pass
        self._proc.join(timeout=30)


# ----------------------------------------------------------------------
# the coordinator
# ----------------------------------------------------------------------

class ShardedMachine:
    """``K`` shard sub-machines plus the window-barrier coordinator.

    The front door is :func:`run_scenario`; construct this directly only
    when a test wants to poke at the sub-machines between phases (inline
    backend only exposes them as :attr:`machines`).
    """

    def __init__(self, config: MachineConfig, scenario,
                 backend: str = "inline") -> None:
        if backend not in ("inline", "process"):
            raise ValueError(f"unknown shard backend {backend!r}")
        config.validate()
        self.config = config
        self.scenario = scenario
        self.backend = backend
        self.plan = ShardPlan(config)
        cls = _InlineShard if backend == "inline" else _ProcessShard
        self.shards = [cls(config, self.plan, s, scenario)
                       for s in range(config.shards)]
        #: channel name -> shard index holding the rx / tx half.
        self._rx_owner: Dict[str, int] = {}
        self._tx_owner: Dict[str, int] = {}
        for i, h in enumerate(self.shards):
            rx, tx = h.channels()
            for name in rx:
                self._rx_owner[name] = i
            for name in tx:
                self._tx_owner[name] = i
        self.windows = 0

    @property
    def machines(self) -> List[Any]:
        """The shard sub-machines (inline backend only)."""
        return [h.machine for h in self.shards
                if isinstance(h, _InlineShard)]

    # -- the window barrier -------------------------------------------------

    def _route(self, msg: BoundaryMessage) -> int:
        from repro.shard.boundary import MSG_PKT

        _t, channel, _seq, kind, _payload = msg
        owners = self._rx_owner if kind == MSG_PKT else self._tx_owner
        return owners[channel]

    def _drive(self) -> None:
        """Run windows until the whole machine is quiescent."""
        lookahead = self.plan.lookahead_ns
        k = len(self.shards)
        inbound: List[List[BoundaryMessage]] = [[] for _ in range(k)]
        while True:
            peeks = [h.exchange(inbound[i])
                     for i, h in enumerate(self.shards)]
            t_min = min(peeks)
            if t_min == INFINITY:
                return
            self.windows += 1
            if self.windows > MAX_WINDOWS:
                raise SimulationError(
                    f"window barrier did not converge after {MAX_WINDOWS} "
                    "windows (lookahead bug?)")
            bound = t_min + lookahead
            outs = [h.window(bound) for h in self.shards]
            msgs: List[BoundaryMessage] = []
            for out in outs:
                msgs.extend(out)
            # canonical total order: (arrival time, channel, seq, kind) —
            # identical in any backend, so injection order (and thus the
            # target engines' sequence numbering) is reproducible.
            msgs.sort(key=lambda m: m[:4])
            inbound = [[] for _ in range(k)]
            for msg in msgs:
                inbound[self._route(msg)].append(msg)

    def run(self) -> ShardRun:
        """Execute every scenario phase to global quiescence and merge."""
        try:
            for phase in range(self.scenario.phases):
                if phase:
                    # phase barrier: the next phase must start from one
                    # common instant or spawn times would depend on K
                    gmax = max(h.now() for h in self.shards)
                    for h in self.shards:
                        h.advance(gmax)
                for h in self.shards:
                    h.setup(phase)
                self._drive()
            gmax = max(h.now() for h in self.shards)
            for h in self.shards:
                h.advance(gmax)
            for h in self.shards:
                h.finish()
            pairs = [h.result() for h in self.shards]
        finally:
            for h in self.shards:
                h.close()
        results = [res for res, _export in pairs]
        exports = [e for _res, e in pairs]
        snapshot = merge_shard_exports(exports, self.config)
        return ShardRun(snapshot, results, self.plan.describe(), self.windows,
                        [e["events_executed"] for e in exports],
                        [e["wall_seconds"] for e in exports])


def run_scenario(scenario, config: Optional[MachineConfig] = None,
                 n_nodes: int = 4, shards: int = 1, seed: int = 0,
                 backend: str = "inline") -> ShardRun:
    """The front door: run one scenario on a sharded machine.

    Either pass a ready ``config`` (its ``shards`` field wins) or let the
    helper build a default one from ``n_nodes``/``shards``/``seed``.
    ``shards=1`` runs the identical coordinator with one sub-machine —
    the determinism baseline every other shard count must match
    byte-for-byte (wall-clock gauges stripped).
    """
    if config is None:
        from repro.common.config import default_config

        config = default_config(n_nodes=n_nodes)
        config.seed = seed
        config.shards = shards
    scenario.prepare(config)
    return ShardedMachine(config, scenario, backend=backend).run()
