"""The shard boundary: locality queries and cross-shard messages.

One :class:`ShardView` is handed to each sub-machine at construction.
The network build asks it which nodes and switches are local and, for
every link cut by the boundary, registers the local half and obtains an
*emitter*.  During a window, emitters append boundary messages to the
view's outbox; at the barrier the runner drains every outbox, sorts the
union canonically, and injects each message into the target shard's
engine at its stamped arrival time.

A boundary message is a plain tuple — already ordered the way the
runner must inject it::

    (arrival_time_ns, channel_name, channel_seq, kind, payload)

``kind`` is :data:`MSG_PKT` (payload: the :class:`~repro.net.packet.Packet`)
or :data:`MSG_CREDIT` (payload: the priority lane).  ``channel_seq``
counts emissions per (channel, kind), so two messages on one channel
never compare equal — the sort never falls through to comparing
payloads, and injection order is identical at any shard count and in
any backend.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

if False:  # pragma: no cover - import cycle guard (net sits below shard)
    from repro.net.link import CutLinkRx, CutLinkTx
    from repro.shard.partition import ShardPlan

#: boundary message kinds, in tie-break order: at one instant on one
#: channel a returning credit sorts before a fresh delivery (it was
#: committed a full wire-flight earlier).
MSG_CREDIT = 0
MSG_PKT = 1

BoundaryMessage = Tuple[float, str, int, int, Any]


class ShardView:
    """One shard's window onto the partitioned machine."""

    def __init__(self, plan: "ShardPlan", shard: int) -> None:
        self.plan = plan
        self.shard = shard
        self.local_nodes = plan.nodes_of(shard)
        #: messages emitted by local cut halves during the current window.
        self.outbox: List[BoundaryMessage] = []
        #: local rx halves by channel name (packet injection targets).
        self.rx_halves: Dict[str, "CutLinkRx"] = {}
        #: local tx halves by channel name (credit injection targets).
        self.tx_halves: Dict[str, "CutLinkTx"] = {}
        self._seq: Dict[Tuple[str, int], int] = {}

    # -- locality (queried by the network/machine build) -------------------

    def owns_node(self, node: int) -> bool:
        return self.plan.node_shard(node) == self.shard

    def owns_switch(self, level: int, index: int) -> bool:
        return self.plan.switch_shard(level, index) == self.shard

    # -- emitters (handed to cut-link halves at build) ---------------------

    def _next_seq(self, channel: str, kind: int) -> int:
        key = (channel, kind)
        n = self._seq.get(key, 0)
        self._seq[key] = n + 1
        return n

    def pkt_emitter(self, channel: str):
        def emit(arrival_time: float, pkt) -> None:
            self.outbox.append(
                (arrival_time, channel, self._next_seq(channel, MSG_PKT),
                 MSG_PKT, pkt))
        return emit

    def credit_emitter(self, channel: str):
        def emit(arrival_time: float, priority: int) -> None:
            self.outbox.append(
                (arrival_time, channel, self._next_seq(channel, MSG_CREDIT),
                 MSG_CREDIT, priority))
        return emit

    def register_tx(self, channel: str, half: "CutLinkTx") -> None:
        self.tx_halves[channel] = half

    def register_rx(self, channel: str, half: "CutLinkRx") -> None:
        self.rx_halves[channel] = half

    # -- barrier side (called by the runner) -------------------------------

    def drain_outbox(self) -> List[BoundaryMessage]:
        out, self.outbox = self.outbox, []
        return out

    def deliver(self, engine, msg: BoundaryMessage) -> None:
        """Inject one inbound message into this shard's engine."""
        time, channel, _seq, kind, payload = msg
        if kind == MSG_PKT:
            half = self.rx_halves[channel]
            engine.inject(time, lambda: half.deliver(payload))
        else:
            half = self.tx_halves[channel]
            engine.inject(time, lambda: half.credit_return(payload))
