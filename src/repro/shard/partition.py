"""Partitioning a machine's nodes and switches into shards.

A :class:`ShardPlan` assigns every node and every fat-tree switch to one
of ``K`` shards.  Nodes are split into contiguous blocks aligned to leaf
switches where possible (an aligned boundary cuts only switch↔switch
links, which is both fewer channels and deeper traffic); a switch lands
on the shard of the first leaf node it can reach, so the subtree under a
leaf block stays with its nodes.

The plan is pure arithmetic over the topology — every shard computes the
identical plan from the config alone, which is what lets sub-machines be
built independently (including in separate worker processes).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.common.config import MachineConfig
from repro.common.errors import ConfigError
from repro.net.topology import FatTreeTopology


class ShardPlan:
    """Node/switch → shard assignment for one machine configuration."""

    def __init__(self, config: MachineConfig) -> None:
        n, k = config.n_nodes, config.shards
        if not (1 <= k <= n):
            raise ConfigError(f"cannot split {n} nodes into {k} shards")
        self.n_nodes = n
        self.shards = k
        self.topology = FatTreeTopology(
            n, radix=config.network.radix, seed=config.seed)
        #: cross-shard lookahead: the one wire latency every cut channel
        #: pays (packets forward, credits backward), in ns.
        self.lookahead_ns = config.network.wire_latency_ns
        self._bounds = self._split(n, k, self.topology.down_degree)
        self._switch_shard = self._assign_switches()

    @staticmethod
    def _split(n: int, k: int, d: int) -> List[int]:
        """Shard boundaries as ``k + 1`` cumulative node counts.

        Prefers blocks rounded up to whole leaf switches (multiples of
        ``d``); falls back to a plain even split when alignment would
        leave a shard empty.
        """
        aligned = -(-n // k)  # ceil
        aligned = -(-aligned // d) * d
        bounds = [min(i * aligned, n) for i in range(k + 1)]
        bounds[-1] = n
        if all(bounds[i] < bounds[i + 1] for i in range(k)):
            return bounds
        plain = -(-n // k)
        bounds = [min(i * plain, n) for i in range(k + 1)]
        bounds[-1] = n
        return bounds

    def _assign_switches(self) -> Dict[Tuple[int, int], int]:
        """Each switch goes to the shard of the smallest node it covers."""
        topo = self.topology
        d = topo.down_degree
        first_node: Dict[Tuple[int, int], int] = {}
        for index in range(topo.switches_per_level):
            first_node[(1, index)] = min(index * d, self.n_nodes - 1)
        for level in range(1, topo.levels):
            for index in range(topo.switches_per_level):
                child_first = first_node[(level, index)]
                for b in range(d):
                    parent = topo.up_target(level, index, b)
                    prev = first_node.get(parent)
                    if prev is None or child_first < prev:
                        first_node[parent] = child_first
        return {sw: self.node_shard(node) for sw, node in first_node.items()}

    # -- queries -----------------------------------------------------------

    def node_shard(self, node: int) -> int:
        """The shard owning ``node``."""
        if not (0 <= node < self.n_nodes):
            raise ConfigError(f"node {node} does not exist")
        for shard in range(self.shards):
            if node < self._bounds[shard + 1]:
                return shard
        raise AssertionError("unreachable")

    def switch_shard(self, level: int, index: int) -> int:
        """The shard owning switch ``(level, index)``."""
        return self._switch_shard[(level, index)]

    def nodes_of(self, shard: int) -> range:
        """The contiguous node block owned by ``shard``."""
        return range(self._bounds[shard], self._bounds[shard + 1])

    def describe(self) -> Dict[str, object]:
        """Plan summary for logs and benchmark documents."""
        return {
            "n_nodes": self.n_nodes,
            "shards": self.shards,
            "blocks": [[self._bounds[i], self._bounds[i + 1]]
                       for i in range(self.shards)],
            "lookahead_ns": self.lookahead_ns,
        }
