"""``repro.shard`` — conservative parallel-in-time sharded execution.

Partition a machine's nodes into ``K`` contiguous blocks, build one
sub-machine (own event queue, own boards and switches) per block, and
synchronize them at time-window barriers whose lookahead is the Arctic
wire latency.  The determinism contract: the merged metrics snapshot is
byte-identical (wall gauges stripped) at any shard count and in either
backend.

Front door::

    from repro.shard import run_scenario, scenario

    run = run_scenario(scenario("mixed"), n_nodes=8, shards=4)
    run.snapshot   # merged, shard-count-invariant metrics
    run.results    # per-shard scenario results
"""

from repro.shard.boundary import MSG_CREDIT, MSG_PKT, ShardView
from repro.shard.partition import ShardPlan
from repro.shard.runner import ShardRun, ShardedMachine, run_scenario
from repro.shard.scenarios import (
    ChaosScenario,
    MixedScenario,
    PingScenario,
    ShardScenario,
    SyncScenario,
    boundary_link_names,
    scenario,
    scenario_names,
)

__all__ = [
    "ShardPlan",
    "ShardView",
    "ShardRun",
    "ShardedMachine",
    "run_scenario",
    "ShardScenario",
    "PingScenario",
    "MixedScenario",
    "SyncScenario",
    "ChaosScenario",
    "scenario",
    "scenario_names",
    "boundary_link_names",
    "MSG_PKT",
    "MSG_CREDIT",
]
